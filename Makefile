GO ?= go

.PHONY: build test race lint fmt vet fuzz-smoke list all

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runtime/ ./internal/core/

# The problem/algorithm registry (also the README's algorithm table).
list:
	$(GO) run ./cmd/dgp-run -list

# Domain analyzers (internal/analysis, driven by cmd/dgp-lint): map-order
# determinism, seeded randomness, machine purity, CONGEST payload sizing,
# and sentinel error wrapping. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/dgp-lint ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Brief coverage-guided runs of the committed fuzz targets; the seed corpora
# under testdata/fuzz always run as part of `make test`.
fuzz-smoke:
	$(GO) test ./internal/runtime -run '^$$' -fuzz FuzzAdversaryParity -fuzztime 30s
	$(GO) test ./internal/heal -run '^$$' -fuzz FuzzCarve -fuzztime 30s
