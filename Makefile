GO ?= go

.PHONY: build test race lint lint-fixtures fmt vet fuzz-smoke list trace-golden alloc-guard bench-smoke dynamic-smoke shard-smoke perf-ledger perf-gate perf-baseline all

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/runtime/ ./internal/core/ ./internal/shard/

# The problem/algorithm registry (also the README's algorithm table).
list:
	$(GO) run ./cmd/dgp-run -list

# Domain analyzers (internal/analysis, driven by cmd/dgp-lint): map-order
# determinism, seeded randomness, machine purity, CONGEST payload sizing,
# sentinel error wrapping, plus the dataflow checks — inbox slab aliasing,
# the //dgp:hotpath allocation gate, obs emission ordering, and the dynamic
# session Seq-ledger discipline. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/dgp-lint ./...

# The analyzers' own golden fixtures (internal/analysis/testdata), run
# through the stdlib analysistest clone: every diagnostic must match a
# `// want` comment and vice versa.
lint-fixtures:
	$(GO) test -count=1 ./internal/analysis/...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# The trace determinism contract, checked through the CLIs: a fixed-seed
# chaotic self-healing run records the same event stream on both engines
# (durations excepted — `dgp-trace diff` canonicalizes them away).
trace-golden:
	$(GO) build -o /tmp/dgp-run ./cmd/dgp-run
	$(GO) build -o /tmp/dgp-trace ./cmd/dgp-trace
	/tmp/dgp-run -problem mis -graph gnp -n 120 -seed 9 -flips 12 -chaos 0.3 -heal -trace /tmp/seq.jsonl
	/tmp/dgp-run -problem mis -graph gnp -n 120 -seed 9 -flips 12 -chaos 0.3 -heal -parallel -trace /tmp/pool.jsonl
	/tmp/dgp-trace diff /tmp/seq.jsonl /tmp/pool.jsonl

# Disabled tracing must stay near-zero-cost: the steady-state allocation
# budget test fails if the per-round allocation count regresses (0
# allocs/round on every engine mode since the columnar rewrite).
alloc-guard:
	$(GO) test -run 'TestSteadyStateAllocBudget' -count=1 -v ./internal/runtime/

# The 100k-node scale sweep on both engines — a fast end-to-end smoke of
# the columnar hot path (CSR build, arena inboxes, frontier compaction).
# EXPERIMENTS.md's scale table holds the full 1M/10M numbers.
bench-smoke:
	$(GO) run ./cmd/dgp-bench -nodes 100000
	$(GO) run ./cmd/dgp-bench -nodes 100000 -par

# Brief coverage-guided runs of the committed fuzz targets; the seed corpora
# under testdata/fuzz always run as part of `make test`.
fuzz-smoke:
	$(GO) test ./internal/runtime -run '^$$' -fuzz FuzzAdversaryParity -fuzztime 30s
	$(GO) test ./internal/heal -run '^$$' -fuzz FuzzCarve -fuzztime 30s
	$(GO) test . -run '^$$' -fuzz FuzzSessionConvergence -fuzztime 30s
	$(GO) test . -run '^$$' -fuzz FuzzShardParity -fuzztime 30s

# The sharded engine end to end: a sharded CLI run whose trace must match
# the unsharded engine's byte for byte (the determinism contract), then the
# CH8 boundary-traffic sweep at 100k nodes on both engine modes.
shard-smoke:
	$(GO) build -o /tmp/dgp-run ./cmd/dgp-run
	$(GO) build -o /tmp/dgp-trace ./cmd/dgp-trace
	/tmp/dgp-run -problem mis -graph gnp -n 120 -seed 9 -flips 12 -chaos 0.3 -heal -trace /tmp/unsharded.jsonl
	/tmp/dgp-run -problem mis -graph gnp -n 120 -seed 9 -flips 12 -chaos 0.3 -heal -shards 4 -trace /tmp/sharded.jsonl
	/tmp/dgp-trace diff -drop shard-exchange /tmp/unsharded.jsonl /tmp/sharded.jsonl
	$(GO) run ./cmd/dgp-bench -shards 1,2,4,8
	$(GO) run ./cmd/dgp-bench -shards 1,2,4,8 -par

# The performance ledger (DESIGN.md §13): every sweep also emits a
# machine-readable BENCH_<experiment>.json, and dgp-perf gates head ledgers
# against the committed baseline. Deterministic counters (rounds, messages,
# residuals, boundary traffic) must reproduce exactly; allocs/round has a
# small noise band; wall-clock metrics are informational only, so the
# committed baseline is portable across machines.
PERF_LEDGER_DIR ?= /tmp/perf-ledger
perf-ledger:
	$(GO) run ./cmd/dgp-bench -chaos -bench-out $(PERF_LEDGER_DIR) > /dev/null
	$(GO) run ./cmd/dgp-bench -dynamic -bench-out $(PERF_LEDGER_DIR) > /dev/null
	$(GO) run ./cmd/dgp-bench -nodes 100000 -bench-out $(PERF_LEDGER_DIR) > /dev/null
	$(GO) run ./cmd/dgp-bench -shards 1,2,4 -bench-out $(PERF_LEDGER_DIR) > /dev/null

# The CI regression gate: regenerate head ledgers and compare against
# testdata/perf/baseline; exits non-zero on any regression or coverage loss.
perf-gate: perf-ledger
	$(GO) run ./cmd/dgp-perf gate -baseline testdata/perf/baseline $(PERF_LEDGER_DIR)

# Baseline refresh: rerun the sweeps into testdata/perf/baseline and commit
# the result. Do this when a PR intentionally moves a gated metric (fewer
# rounds, lower boundary traffic, changed sweep shape) — the dgp-perf compare
# output belongs in that PR's description.
perf-baseline:
	$(GO) run ./cmd/dgp-bench -chaos -bench-out testdata/perf/baseline > /dev/null
	$(GO) run ./cmd/dgp-bench -dynamic -bench-out testdata/perf/baseline > /dev/null
	$(GO) run ./cmd/dgp-bench -nodes 100000 -bench-out testdata/perf/baseline > /dev/null
	$(GO) run ./cmd/dgp-bench -shards 1,2,4 -bench-out testdata/perf/baseline > /dev/null
	$(GO) run ./cmd/dgp-perf validate testdata/perf/baseline

# The dynamic-session path end to end: the update-stream CLI under stream
# chaos on both engines, then the CH5/CH6 recovery tables (batch-size sweep
# and the 250k-node scale run demonstrating rounds ∝ η, not n).
dynamic-smoke:
	$(GO) build -o /tmp/dgp-run ./cmd/dgp-run
	printf '{"seq":1,"insert":[[0,50],[1,60]]}\n{"seq":2,"delete":[[0,50]],"insert":[[2,70]]}\n{"seq":1,"insert":[[0,50]]}\n' > /tmp/updates.jsonl
	/tmp/dgp-run -problem mis -graph gnp -n 200 -seed 7 -updates /tmp/updates.jsonl -streamchaos 0.3
	/tmp/dgp-run -problem mis -graph gnp -n 200 -seed 7 -updates /tmp/updates.jsonl -streamchaos 0.3 -parallel
	$(GO) run ./cmd/dgp-bench -dynamic
