package repro_test

import (
	"io"
	"testing"

	"repro"
	"repro/internal/bench"
)

// One testing.B benchmark per experiment table: each regenerates the
// experiment (instances, sweeps, bound checks) end to end. The rendered
// tables go to EXPERIMENTS.md via cmd/dgp-bench; here they are discarded.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := bench.Find(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, t := range e.Run() {
			t.Render(io.Discard)
		}
	}
}

func BenchmarkE1GreedyMIS(b *testing.B)           { benchExperiment(b, "E1") }
func BenchmarkE2SimpleTemplate(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3ConsecutiveTemplate(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4InterleavedTemplate(b *testing.B) { benchExperiment(b, "E4") }
func BenchmarkE5ParallelTemplate(b *testing.B)    { benchExperiment(b, "E5") }
func BenchmarkE6WheelDiameter(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7GridBlackWhite(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8RootedTree(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9LubyComponents(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10ErrorMeasures(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE11LineLowerBounds(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12Matching(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE13VertexColoring(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14EdgeColoring(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15NetworkChurn(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE16EngineParity(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17UniformReference(b *testing.B)   { benchExperiment(b, "E17") }
func BenchmarkE18Tradeoff(b *testing.B)           { benchExperiment(b, "E18") }
func BenchmarkE19MessageComplexity(b *testing.B)  { benchExperiment(b, "E19") }
func BenchmarkE20GlobalVsLocal(b *testing.B)      { benchExperiment(b, "E20") }
func BenchmarkE21ActiveDecay(b *testing.B)        { benchExperiment(b, "E21") }
func BenchmarkE22CheckingCost(b *testing.B)       { benchExperiment(b, "E22") }

// Micro-benchmarks of the core algorithms themselves, for engine and
// algorithm performance tracking (rounds are fixed by determinism; this
// measures simulator throughput).

func benchMIS(b *testing.B, n int, alg repro.MISAlgorithm, flips int, parallel bool) {
	b.Helper()
	g := repro.GNP(n, 8.0/float64(n), repro.NewRand(1))
	preds := repro.FlipBits(repro.PerfectMIS(g), flips, repro.NewRand(2))
	opts := repro.Options{Seed: 3, Parallel: parallel}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunMIS(g, preds, alg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSimple1k(b *testing.B)    { benchMIS(b, 1000, repro.MISSimple, 50, false) }
func BenchmarkEngineSimple1kPar(b *testing.B) { benchMIS(b, 1000, repro.MISSimple, 50, true) }
func BenchmarkEngineParallelTemplate1k(b *testing.B) {
	benchMIS(b, 1000, repro.MISParallelColoring, 50, false)
}
func BenchmarkEngineGreedy4k(b *testing.B) { benchMIS(b, 4000, repro.MISGreedy, 0, false) }

// Engine throughput through the public API: greedy MIS on a shuffled-ID
// 4096-node ring (O(log n) expected rounds), both engine modes. The
// engine-only counterpart with a zero-alloc workload is
// BenchmarkEngineThroughput in internal/runtime.
func benchEngineRing(b *testing.B, parallel bool) {
	b.Helper()
	const n = 4096
	g := repro.ShuffleIDs(repro.Ring(n), n, repro.NewRand(7))
	opts := repro.Options{Parallel: parallel}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.RunMIS(g, nil, repro.MISGreedy, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineThroughputRing4k(b *testing.B)    { benchEngineRing(b, false) }
func BenchmarkEngineThroughputRing4kPar(b *testing.B) { benchEngineRing(b, true) }
