package repro

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/runtime"
)

// CheckResult is the outcome of a distributed local verification run
// (Section 1.3's locally-verifiable checking): per-node verdicts and whether
// every node accepted. The predictions form a correct solution if and only
// if AllAccept.
type CheckResult struct {
	// Run carries the round/message metrics (checkers take <= 2 rounds).
	Run Result
	// Verdicts holds 1 (accept) or 0 (reject) per node index.
	Verdicts []int
	// AllAccept reports whether every node accepted.
	AllAccept bool
}

func runChecker(g *Graph, factory runtime.Factory, preds []any, opts Options) (*CheckResult, error) {
	raw, err := runAndCollect(g, factory, preds, opts)
	if err != nil {
		return nil, err
	}
	out := &CheckResult{
		Run:       baseResult(raw),
		Verdicts:  make([]int, g.N()),
		AllAccept: true,
	}
	for i, o := range raw.Outputs {
		v, ok := o.(int)
		if !ok {
			return nil, fmt.Errorf("repro: checker node %d produced %T", g.ID(i), o)
		}
		out.Verdicts[i] = v
		if v == check.Reject {
			out.AllAccept = false
		}
	}
	return out, nil
}

// CheckMIS runs the two-round distributed MIS checker: AllAccept iff preds
// is a maximal independent set of g.
func CheckMIS(g *Graph, preds []int, opts Options) (*CheckResult, error) {
	return runChecker(g, check.MIS(), intPreds(preds), opts)
}

// CheckMatching runs the two-round distributed maximal-matching checker.
func CheckMatching(g *Graph, preds []int, opts Options) (*CheckResult, error) {
	return runChecker(g, check.Matching(), intPreds(preds), opts)
}

// CheckVColor runs the distributed (Δ+1)-coloring checker.
func CheckVColor(g *Graph, preds []int, opts Options) (*CheckResult, error) {
	return runChecker(g, check.VColor(), intPreds(preds), opts)
}

// CheckEColor runs the distributed (2Δ−1)-edge-coloring checker.
func CheckEColor(g *Graph, preds []EdgePrediction, opts Options) (*CheckResult, error) {
	anyPreds := make([]any, len(preds))
	for i, p := range preds {
		anyPreds[i] = []int(p)
	}
	return runChecker(g, check.EColor(), anyPreds, opts)
}
