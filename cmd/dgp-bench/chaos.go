package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/perf"
)

// runChaosSweep regenerates the fault-rate × η degradation tables in
// EXPERIMENTS.md: the Simple Template of every registered problem with
// healing machinery runs under a seeded chaos adversary and self-heals via
// RunProblemWithRecovery; cells report the end-to-end rounds (primary +
// recovery) and the carved residual that the healing run had to re-decide.
// Each problem runs on a graph family its instances accept: sparse GNP, or
// random trees for the tree problem (whose instances must be acyclic), so
// every healing problem appears in the tables. It lives in this command (not
// internal/bench) because it drives the public recovery API. A non-nil
// recorder captures every run's event trace for -metrics; a non-empty
// benchDir additionally writes the BENCH_chaos.json ledger with one row per
// (problem, rate, flips) cell.
func runChaosSweep(rec *obs.Recorder, tel *obs.Telemetry, benchDir string) error {
	const (
		n      = 120
		p      = 0.06
		trials = 3
	)
	rates := []float64{0, 0.1, 0.25, 0.5}
	flipss := []int{0, 8, 32}

	var ledger *perf.Ledger
	if benchDir != "" {
		ledger = perf.New("chaos", map[string]any{
			"n": n, "p": p, "trials": trials, "rates": rates, "flips": flipss,
		})
	}
	tables := 0
	for pi, prob := range repro.Problems() {
		if !prob.CanHeal {
			continue
		}
		family := fmt.Sprintf("GNP(%d, %.2f)", n, p)
		if prob.Name == "tree" {
			family = fmt.Sprintf("random tree, n=%d", n)
		}
		tables++
		t := &bench.Table{
			ID:    fmt.Sprintf("CH%d", tables),
			Title: fmt.Sprintf("chaos degradation, %s: %s, Simple Template, self-healing, %d trials", prob.Name, family, trials),
		}
		t.Columns = append(t.Columns, "fault rate")
		for _, f := range flipss {
			t.Columns = append(t.Columns, fmt.Sprintf("η=%d flips", f))
		}
		healedRuns := 0
		for _, rate := range rates {
			cells := []any{fmt.Sprintf("%.2f", rate)}
			for _, flips := range flipss {
				primary, recovery, residual, cellHealed := 0, 0, 0, 0
				for trial := 0; trial < trials; trial++ {
					seed := int64(1000*pi + 100*trial + flips)
					var g *repro.Graph
					if prob.Name == "tree" {
						g = repro.RandomTree(n, repro.NewRand(seed))
					} else {
						g = repro.GNP(n, p, repro.NewRand(seed))
					}
					preds, err := repro.GeneratePreds(prob.Name, g, flips, seed+1)
					if err != nil {
						return fmt.Errorf("chaos sweep %s rate %.2f flips %d: %w", prob.Name, rate, flips, err)
					}
					// A modest cap cuts off primaries that drop faults have
					// wedged (lost notifications break termination detection);
					// the healing run uses the engine default.
					opts := repro.Options{MaxRounds: 60, Trace: rec, Telemetry: tel}
					if rate > 0 {
						opts.Adversary = repro.NewChaos(repro.ChaosPolicy{
							Seed:      seed + 2,
							Drop:      rate,
							Duplicate: rate / 2,
							Crash:     rate / 4,
						})
					}
					res, err := repro.RunProblemWithRecovery(g, prob.Name, preds, opts)
					if err != nil {
						return fmt.Errorf("chaos sweep %s rate %.2f flips %d: %w", prob.Name, rate, flips, err)
					}
					primary += res.PrimaryRounds
					recovery += res.RecoveryRounds
					residual += res.Residual
					if res.Healed {
						cellHealed++
					}
				}
				healedRuns += cellHealed
				cells = append(cells, fmt.Sprintf("%d+%d rds, %d res", primary/trials, recovery/trials, residual/trials))
				if ledger != nil {
					ledger.AddRow(
						fmt.Sprintf("%s_rate%03d_flips%d", prob.Name, int(rate*100), flips),
						map[string]string{"problem": prob.Name, "rate": fmt.Sprintf("%.2f", rate), "flips": fmt.Sprint(flips)},
						map[string]float64{
							"primary_rounds":  float64(primary) / trials,
							"recovery_rounds": float64(recovery) / trials,
							"residual":        float64(residual) / trials,
							"healed_runs":     float64(cellHealed),
						})
				}
			}
			t.AddRow(cells...)
		}
		t.Note("cells: mean primary+recovery rounds and mean carved residual; %d/%d runs healed", healedRuns, len(rates)*len(flipss)*trials)
		t.Note("policy: drop=rate, duplicate=rate/2, crash=rate/4; corruption aborts template runs outright and is exercised by the recovery tests instead")
		t.Note("per-phase round breakdown: cells split end-to-end rounds into the heal phases (primary -> recovery); the final CH table traces one run's η trajectory")
		t.Render(os.Stdout)
	}
	// CH5 and CH6 are the dynamic-session tables (-dynamic); the trajectory
	// table stays the final CH table after them.
	if err := etaTrajectoryTable(tables+3, rec); err != nil {
		return err
	}
	if ledger != nil {
		return writeLedger(ledger, benchDir)
	}
	return nil
}

// etaTrajectoryTable traces one self-healing MIS run end to end and renders
// its η trajectory: the input prediction error, the carved residual the
// healing run had to re-decide, and the post-heal error (zero by
// construction — the healed output verifies). The wrapper phase marks
// (primary -> recovery -> healed) and per-run round costs come from the same
// trace, so the table is exactly what `dgp-trace summarize` prints for the
// run.
func etaTrajectoryTable(id int, shared *obs.Recorder) error {
	const (
		n     = 120
		p     = 0.06
		rate  = 0.5
		flips = 32
		seed  = int64(42)
	)
	rec := repro.NewTraceRecorder(0)
	g := repro.GNP(n, p, repro.NewRand(seed))
	preds, err := repro.GeneratePreds("mis", g, flips, seed+1)
	if err != nil {
		return fmt.Errorf("eta trajectory: %w", err)
	}
	res, err := repro.RunProblemWithRecovery(g, "mis", preds, repro.Options{
		MaxRounds: 60,
		Trace:     rec,
		Adversary: repro.NewChaos(repro.ChaosPolicy{
			Seed:      seed + 2,
			Drop:      rate,
			Duplicate: rate / 2,
			Crash:     rate / 4,
		}),
	})
	if err != nil {
		return fmt.Errorf("eta trajectory: %w", err)
	}
	events := rec.Events()
	sum := obs.Summarize(events)
	t := &bench.Table{
		ID:      fmt.Sprintf("CH%d", id),
		Title:   fmt.Sprintf("η trajectory of one healed run: mis, GNP(%d, %.2f), fault rate %.2f, %d flips", n, p, rate, flips),
		Columns: []string{"snapshot", "η", "detail"},
	}
	for _, e := range sum.Etas {
		detail := e.Text
		value := fmt.Sprintf("%d", e.Value)
		switch e.Name {
		case "input":
			// The input snapshot is the full measure breakdown in the
			// detail column; there is no single scalar η.
			value = "-"
		case "residual":
			if detail == "" {
				detail = "nodes left undecided by the carve"
			}
		case "healed":
			if detail == "" {
				detail = "healed output verified"
			}
		}
		t.AddRow(e.Name, value, detail)
	}
	t.Note("phases: %s", marksLine(sum))
	t.Note("rounds: primary=%d recovery=%d residual=%d (healed=%v)",
		res.PrimaryRounds, res.RecoveryRounds, res.Residual, res.Healed)
	t.Render(os.Stdout)
	if shared != nil {
		for _, e := range events {
			shared.Emit(e)
		}
	}
	return nil
}

// marksLine renders the wrapper phase marks, or a placeholder for a run that
// was already valid.
func marksLine(sum obs.Summary) string {
	if len(sum.Marks) == 0 {
		return "(none)"
	}
	line := sum.Marks[0]
	for _, m := range sum.Marks[1:] {
		line += " -> " + m
	}
	return line
}
