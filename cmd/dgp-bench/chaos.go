package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/bench"
)

// chaosProblem binds one problem to its prediction generator for the
// degradation sweep.
type chaosProblem struct {
	name  string
	prob  repro.Problem
	preds func(g *repro.Graph, flips int, seed int64) []int
}

func chaosProblems() []chaosProblem {
	return []chaosProblem{
		{"MIS", repro.ProblemMIS, func(g *repro.Graph, flips int, seed int64) []int {
			return repro.FlipBits(repro.PerfectMIS(g), flips, repro.NewRand(seed))
		}},
		{"matching", repro.ProblemMatching, func(g *repro.Graph, flips int, seed int64) []int {
			return repro.PerturbMatching(g, repro.PerfectMatching(g), flips, repro.NewRand(seed))
		}},
		{"vertex coloring", repro.ProblemVColor, func(g *repro.Graph, flips int, seed int64) []int {
			return repro.PerturbVColor(g, repro.PerfectVColor(g), flips, repro.NewRand(seed))
		}},
	}
}

// runChaosSweep regenerates the fault-rate × η degradation tables in
// EXPERIMENTS.md: each problem's Simple Template runs under a seeded chaos
// adversary and self-heals via RunWithRecovery; cells report the end-to-end
// rounds (primary + recovery) and the carved residual that the healing run
// had to re-decide. It lives in this command (not internal/bench) because it
// drives the public recovery API.
func runChaosSweep() error {
	const (
		n      = 120
		p      = 0.06
		trials = 3
	)
	rates := []float64{0, 0.1, 0.25, 0.5}
	flipss := []int{0, 8, 32}

	for pi, prob := range chaosProblems() {
		t := &bench.Table{
			ID:    fmt.Sprintf("CH%d", pi+1),
			Title: fmt.Sprintf("chaos degradation, %s: GNP(%d, %.2f), Simple Template, self-healing, %d trials", prob.name, n, p, trials),
		}
		t.Columns = append(t.Columns, "fault rate")
		for _, f := range flipss {
			t.Columns = append(t.Columns, fmt.Sprintf("η=%d flips", f))
		}
		healedRuns := 0
		for _, rate := range rates {
			cells := []any{fmt.Sprintf("%.2f", rate)}
			for _, flips := range flipss {
				primary, recovery, residual := 0, 0, 0
				for trial := 0; trial < trials; trial++ {
					seed := int64(1000*pi + 100*trial + flips)
					g := repro.GNP(n, p, repro.NewRand(seed))
					preds := prob.preds(g, flips, seed+1)
					// A modest cap cuts off primaries that drop faults have
					// wedged (lost notifications break termination detection);
					// the healing run uses the engine default.
					opts := repro.Options{MaxRounds: 60}
					if rate > 0 {
						opts.Adversary = repro.NewChaos(repro.ChaosPolicy{
							Seed:      seed + 2,
							Drop:      rate,
							Duplicate: rate / 2,
							Crash:     rate / 4,
						})
					}
					res, err := repro.RunWithRecovery(g, prob.prob, preds, opts)
					if err != nil {
						return fmt.Errorf("chaos sweep %s rate %.2f flips %d: %w", prob.name, rate, flips, err)
					}
					primary += res.PrimaryRounds
					recovery += res.RecoveryRounds
					residual += res.Residual
					if res.Healed {
						healedRuns++
					}
				}
				cells = append(cells, fmt.Sprintf("%d+%d rds, %d res", primary/trials, recovery/trials, residual/trials))
			}
			t.AddRow(cells...)
		}
		t.Note("cells: mean primary+recovery rounds and mean carved residual; %d/%d runs healed", healedRuns, len(rates)*len(flipss)*trials)
		t.Note("policy: drop=rate, duplicate=rate/2, crash=rate/4; corruption aborts template runs outright and is exercised by the recovery tests instead")
		t.Render(os.Stdout)
	}
	return nil
}
