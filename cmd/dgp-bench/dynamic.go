package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/perf"
)

// runDynamicSweep regenerates the dynamic-session tables in EXPERIMENTS.md.
//
// CH5 sweeps the update-batch size η across every problem with healing
// machinery: a session absorbs batches of η random edge updates, and cells
// report the mean healed residual and mean recovery rounds per batch — the
// degradation metric of the incremental step. CH6 fixes the batch size and
// scales the graph past 10^5 nodes: recovery rounds stay flat while n grows
// three orders of magnitude, the dynamic reading of the paper's
// damage-proportional recovery bound (rounds scale with η, not n).
// A non-empty benchDir writes BENCH_dynamic.json: one row per CH5
// (problem, η) cell and one per CH6 graph size.
func runDynamicSweep(rec *obs.Recorder, tel *obs.Telemetry, parallel bool, benchDir string) error {
	var ledger *perf.Ledger
	if benchDir != "" {
		ledger = perf.New("dynamic", map[string]any{"parallel": parallel})
	}
	if err := batchSizeTable(rec, tel, parallel, ledger); err != nil {
		return err
	}
	if err := scaleTable(rec, tel, parallel, ledger); err != nil {
		return err
	}
	if ledger != nil {
		return writeLedger(ledger, benchDir)
	}
	return nil
}

// sessionFamily builds the sweep graph for one problem: trees for the tree
// problem (its instances must be acyclic), sparse GNP otherwise.
func sessionFamily(name string, n int, rng *rand.Rand) *repro.Graph {
	if name == "tree" {
		return repro.RandomTree(n, rng)
	}
	return repro.GNP(n, 8.0/float64(n), rng)
}

// randomBatch draws one batch of k updates against the session's current
// graph: deletions of existing edges, mixed with insertions except on trees
// (delete-only churn keeps tree instances acyclic).
func randomBatch(name string, g *repro.Graph, seq, k int, rng *rand.Rand) repro.UpdateBatch {
	b := repro.UpdateBatch{Seq: seq}
	edges := g.Edges()
	for i := 0; i < k; i++ {
		if name != "tree" && rng.Intn(2) == 0 {
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u != v {
				b.Updates = append(b.Updates, repro.EdgeUpdate{Op: repro.EdgeInsert, U: u, V: v})
			}
		} else if len(edges) > 0 {
			e := edges[rng.Intn(len(edges))]
			b.Updates = append(b.Updates, repro.EdgeUpdate{Op: repro.EdgeDelete, U: e[0], V: e[1]})
		}
	}
	return b
}

func batchSizeTable(rec *obs.Recorder, tel *obs.Telemetry, parallel bool, ledger *perf.Ledger) error {
	const (
		n       = 300
		batches = 4
	)
	sizes := []int{1, 2, 4, 8, 16, 32}
	t := &bench.Table{
		ID:    "CH5",
		Title: fmt.Sprintf("dynamic sessions, recovery vs batch size: n=%d, %d batches per cell, all healing problems", n, batches),
	}
	t.Columns = append(t.Columns, "problem")
	for _, k := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("η=%d", k))
	}
	for pi, prob := range repro.Problems() {
		if !prob.CanHeal {
			continue
		}
		cells := []any{prob.Name}
		for _, k := range sizes {
			rng := repro.NewRand(int64(100*pi + k))
			g := sessionFamily(prob.Name, n, rng)
			s, err := repro.NewSession(g, prob.Name, repro.SessionOptions{Parallel: parallel, Trace: rec, Telemetry: tel})
			if err != nil {
				return fmt.Errorf("dynamic sweep %s η=%d: %w", prob.Name, k, err)
			}
			residual, rounds := 0, 0
			for b := 0; b < batches; b++ {
				step, err := s.Apply(randomBatch(prob.Name, s.Graph(), b, k, rng))
				if err != nil {
					return fmt.Errorf("dynamic sweep %s η=%d batch %d: %w", prob.Name, k, b, err)
				}
				residual += step.Residual
				rounds += step.Rounds
			}
			s.Close()
			cells = append(cells, fmt.Sprintf("%d res, %d rds", residual/batches, rounds/batches))
			if ledger != nil {
				ledger.AddRow(
					fmt.Sprintf("%s_eta%d", prob.Name, k),
					map[string]string{"problem": prob.Name, "eta": fmt.Sprint(k)},
					map[string]float64{
						"residual":        float64(residual) / batches,
						"recovery_rounds": float64(rounds) / batches,
					})
			}
		}
		t.AddRow(cells...)
	}
	t.Note("cells: mean healed residual (nodes re-decided) and mean recovery rounds per batch of η random edge updates")
	t.Note("graphs: GNP with mean degree 8 (random trees for the tree problem, delete-only churn); sessions heal via the Simple Template seeded with the stale output")
	t.Render(os.Stdout)
	return nil
}

func scaleTable(rec *obs.Recorder, tel *obs.Telemetry, parallel bool, ledger *perf.Ledger) error {
	const (
		batchSize = 8
		batches   = 3
	)
	sizes := []int{1_000, 10_000, 100_000, 250_000}
	t := &bench.Table{
		ID:      "CH6",
		Title:   fmt.Sprintf("dynamic sessions, recovery vs graph size: mis, Barabási–Albert m=4, batches of η=%d updates", batchSize),
		Columns: []string{"n", "m", "open rounds", "recovery rounds/batch", "residual/batch"},
	}
	for _, n := range sizes {
		rng := repro.NewRand(int64(n))
		g := repro.BarabasiAlbert(n, 4, rng)
		s, err := repro.NewSession(g, "mis", repro.SessionOptions{Parallel: parallel, Trace: rec, Telemetry: tel})
		if err != nil {
			return fmt.Errorf("dynamic scale n=%d: %w", n, err)
		}
		residual, rounds := 0, 0
		for b := 0; b < batches; b++ {
			step, err := s.Apply(randomBatch("mis", s.Graph(), b, batchSize, rng))
			if err != nil {
				return fmt.Errorf("dynamic scale n=%d batch %d: %w", n, b, err)
			}
			residual += step.Residual
			rounds += step.Rounds
		}
		st := s.Close()
		t.AddRow(n, g.M(), st.InitialRounds, rounds/batches, residual/batches)
		if ledger != nil {
			ledger.AddRow(
				fmt.Sprintf("scale_mis_n%d", n),
				map[string]string{"problem": "mis", "n": fmt.Sprint(n)},
				map[string]float64{
					"edges":           float64(g.M()),
					"open_rounds":     float64(st.InitialRounds),
					"recovery_rounds": float64(rounds) / batches,
					"residual":        float64(residual) / batches,
				})
		}
	}
	t.Note("recovery rounds track the batch size, not n: the healed residual and its extension cost stay flat while n grows 250×")
	t.Note("the opening prediction-free run is the contrast: its rounds grow with the graph (≈ log n here), and its per-round work is Θ(n+m) — exactly what a session amortizes away")
	t.Render(os.Stdout)
	return nil
}
