// Command dgp-bench regenerates the experiment tables documented in
// DESIGN.md and EXPERIMENTS.md: every quantitative claim in "Distributed
// Graph Algorithms with Predictions" (lemma and corollary bounds, figure
// constructions, the Section 10 randomized example) as a text table.
//
// Usage:
//
//	dgp-bench            # run every experiment
//	dgp-bench -exp E5    # run one experiment
//	dgp-bench -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "", "run a single experiment id (e.g. E5)")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *exp != "" {
		e := bench.Find(*exp)
		if e == nil {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		for _, t := range e.Run() {
			t.Render(os.Stdout)
		}
		return nil
	}
	bench.RenderAll(os.Stdout)
	return nil
}
