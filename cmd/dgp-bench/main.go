// Command dgp-bench regenerates the experiment tables documented in
// DESIGN.md and EXPERIMENTS.md: every quantitative claim in "Distributed
// Graph Algorithms with Predictions" (lemma and corollary bounds, figure
// constructions, the Section 10 randomized example) as a text table.
//
// Usage:
//
//	dgp-bench                  # run every experiment
//	dgp-bench -exp E5          # run one experiment
//	dgp-bench -list            # list experiment ids and titles
//	dgp-bench -enginestats     # per-round engine instrumentation demo
//	dgp-bench -enginestats -n 8192 -par
//	dgp-bench -shards 1,2,4,8     # sharded-engine boundary-traffic sweep
//	dgp-bench -chaos           # fault-rate × η degradation sweep
//	dgp-bench -dynamic         # dynamic-session recovery sweep
//	dgp-bench -enginestats -metrics -          # Prometheus metrics to stdout
//	dgp-bench -enginestats -metrics - -metrics-format json
//	dgp-bench -chaos -bench-out perf/          # + BENCH_chaos.json ledger
//	dgp-bench -chaos -cpuprofile cpu.pprof     # profile the sweep
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "", "run a single experiment id (e.g. E5)")
	list := flag.Bool("list", false, "list experiments")
	engineStats := flag.Bool("enginestats", false, "print per-round engine stats (Config.Stats) for a greedy-MIS ring run")
	chaos := flag.Bool("chaos", false, "run the fault-rate × η degradation sweep (self-healing runs)")
	dynamic := flag.Bool("dynamic", false, "run the dynamic-session sweep (recovery vs batch size and vs graph size)")
	nodes := flag.String("nodes", "", "run the engine scale sweep at these comma-separated node counts (e.g. 100000,1000000,10000000)")
	shards := flag.String("shards", "", "run the shard sweep at these comma-separated shard counts (e.g. 1,2,4,8)")
	n := flag.Int("n", 4096, "ring size for -enginestats")
	par := flag.Bool("par", false, "use the worker-pool engine for -enginestats and -nodes")
	metrics := flag.String("metrics", "", "with -enginestats, -chaos, or -dynamic: write aggregated run metrics to this file ('-' = stdout)")
	metricsFormat := flag.String("metrics-format", "", "metrics format: 'prom' or 'json' (default: a .json suffix on -metrics selects JSON, otherwise Prometheus text)")
	benchOut := flag.String("bench-out", "", "write the sweep's machine-readable BENCH_<experiment>.json ledger to this directory (sweep modes only; see dgp-perf)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	switch *metricsFormat {
	case "", "prom", "json":
	default:
		return fmt.Errorf("-metrics-format %q: want prom or json", *metricsFormat)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	var rec *obs.Recorder
	var tel *obs.Telemetry
	if *metrics != "" {
		if !*engineStats && !*chaos && !*dynamic {
			return fmt.Errorf("-metrics requires -enginestats, -chaos, or -dynamic (the table experiments are deterministic renders with no run to meter)")
		}
		rec = obs.NewRecorder(0)
		tel = obs.NewTelemetry(nil)
	}
	if *benchOut != "" && !*engineStats && !*chaos && !*dynamic && *nodes == "" && *shards == "" {
		return fmt.Errorf("-bench-out requires a sweep mode (-enginestats, -chaos, -dynamic, -nodes, or -shards)")
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *engineStats {
		if err := runEngineStats(*n, *par, rec, tel, *benchOut); err != nil {
			return err
		}
		return writeMetrics(rec, tel, *metrics, *metricsFormat)
	}
	if *nodes != "" {
		return runScaleSweep(*nodes, *par, *benchOut)
	}
	if *shards != "" {
		return runShardSweep(*shards, *par, *benchOut)
	}
	if *chaos {
		if err := runChaosSweep(rec, tel, *benchOut); err != nil {
			return err
		}
		return writeMetrics(rec, tel, *metrics, *metricsFormat)
	}
	if *dynamic {
		if err := runDynamicSweep(rec, tel, *par, *benchOut); err != nil {
			return err
		}
		return writeMetrics(rec, tel, *metrics, *metricsFormat)
	}
	if *exp != "" {
		e := bench.Find(*exp)
		if e == nil {
			return fmt.Errorf("unknown experiment %q (use -list)", *exp)
		}
		for _, t := range e.Run() {
			t.Render(os.Stdout)
		}
		return nil
	}
	bench.RenderAll(os.Stdout)
	return nil
}

// writeMetrics aggregates the recorded trace into the telemetry registry
// (joining the per-phase wall-time histograms and a final runtime-resource
// sample) and writes the snapshot. The format flag wins; without it a .json
// suffix selects JSON and anything else — including "-" for stdout — gets
// Prometheus text.
func writeMetrics(rec *obs.Recorder, tel *obs.Telemetry, path, format string) error {
	if rec == nil || path == "" {
		return nil
	}
	tel.SampleRuntime()
	snap := obs.AggregateInto(tel.Registry(), rec.Events()).Snapshot()
	useJSON := format == "json" || (format == "" && strings.HasSuffix(path, ".json"))
	emit := func(w *os.File) error {
		if useJSON {
			return snap.WriteJSON(w)
		}
		return snap.WritePrometheus(w)
	}
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeLedger writes a sweep's BENCH ledger when -bench-out was given and
// tells the user where it landed (on stderr, clear of the table stream).
func writeLedger(l *perf.Ledger, dir string) error {
	if dir == "" {
		return nil
	}
	path, err := l.WriteFile(dir)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
	return nil
}

// runEngineStats exercises the engine instrumentation hook: greedy MIS on a
// shuffled-ID ring, one table row per round with wall time, active nodes,
// deliveries, and payload bits. A non-nil recorder additionally captures the
// full event trace for -metrics; telemetry adds per-phase round histograms.
func runEngineStats(n int, parallel bool, rec *obs.Recorder, tel *obs.Telemetry, benchDir string) error {
	if n < 3 {
		return fmt.Errorf("-n %d: need at least 3 nodes for a ring", n)
	}
	g := graph.ShuffleIDs(graph.Ring(n), n, rand.New(rand.NewSource(1)))
	t := &bench.Table{
		ID:      "ENGINE",
		Title:   fmt.Sprintf("per-round engine stats: greedy MIS, ring n=%d, parallel=%v", n, parallel),
		Columns: []string{"round", "wall", "active", "messages", "bits"},
	}
	var stats []runtime.RoundStats
	res, err := runtime.Run(runtime.Config{
		Graph:     g,
		Factory:   mis.Solo(mis.Greedy()),
		Parallel:  parallel,
		Stats:     func(s runtime.RoundStats) { stats = append(stats, s) },
		Trace:     rec,
		Telemetry: tel,
	})
	if err != nil {
		return err
	}
	for _, s := range stats {
		t.AddRow(s.Round, s.Duration.String(), s.Active, s.Messages, s.Bits)
	}
	t.Note("totals: %d rounds, %d messages, max msg bits %d", res.Rounds, res.Messages, res.MaxMsgBits)
	t.Render(os.Stdout)

	if benchDir != "" {
		l := perf.New("enginestats", map[string]any{
			"n": n, "parallel": parallel, "problem": "mis", "family": "ring",
		})
		wall := 0.0
		sample := make([]float64, 0, len(stats))
		for _, s := range stats {
			sample = append(sample, s.Duration.Seconds())
			wall += s.Duration.Seconds()
		}
		row := l.AddRow("run", map[string]string{"n": fmt.Sprint(n)}, map[string]float64{
			"rounds":       float64(res.Rounds),
			"messages":     float64(res.Messages),
			"max_msg_bits": float64(res.MaxMsgBits),
			"wall_seconds": wall,
		})
		row.AddHist("round_seconds", sample)
		return writeLedger(l, benchDir)
	}
	return nil
}
