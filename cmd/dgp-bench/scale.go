package main

import (
	"fmt"
	"math/rand"
	"os"
	gort "runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/perf"
	"repro/internal/runtime"
)

// The scale sweep (-nodes) measures the engine hot path on million-node
// graphs: a flood workload (every node broadcasts one 8-bit payload to all
// neighbors for a fixed number of rounds, then outputs how many messages it
// heard) on a ring and a Barabási–Albert graph at each requested size. The
// workload machines are slab-allocated and allocation-free per round, so
// allocs/round and ns/round measure the engine itself — the numbers the
// columnar-engine acceptance table in EXPERIMENTS.md tracks.

const (
	scaleRounds      = 16
	scaleBAEdgeParam = 3
)

// floodMachine broadcasts a fixed payload for scaleRounds rounds and then
// terminates with the number of messages heard. Machines live in one slab
// and the outbox is engine-owned (Env.Broadcast), so a run's machine-side
// allocations are O(1), not O(n).
type floodMachine struct {
	heard int
}

type floodPayload struct{}

func (floodPayload) Bits() int { return 8 }

func (m *floodMachine) Send(env *runtime.Env) []runtime.Out {
	if env.Round() > scaleRounds {
		env.Output(m.heard)
		env.Terminate()
		return nil
	}
	env.Broadcast(floodPayload{})
	return nil
}

func (m *floodMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	m.heard += len(inbox)
}

func floodFactory(n int) runtime.Factory {
	slab := make([]floodMachine, n)
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		return &slab[info.Index]
	}
}

// parseSizes parses the -nodes flag: a comma-separated list of node counts.
func parseSizes(spec string) ([]int, error) {
	var sizes []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 3 {
			return nil, fmt.Errorf("-nodes %q: %q is not a node count >= 3", spec, part)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("-nodes %q: no sizes", spec)
	}
	return sizes, nil
}

// runScaleSweep renders the scale table: one row per (graph family, n). A
// non-empty benchDir writes the matching BENCH_scale.json ledger.
func runScaleSweep(spec string, parallel bool, benchDir string) error {
	sizes, err := parseSizes(spec)
	if err != nil {
		return err
	}
	var ledger *perf.Ledger
	if benchDir != "" {
		ledger = perf.New("scale", map[string]any{
			"sizes": sizes, "parallel": parallel, "rounds": scaleRounds,
		})
	}
	t := &bench.Table{
		ID:      "SCALE",
		Title:   fmt.Sprintf("engine scale sweep: flood workload, %d message rounds, parallel=%v", scaleRounds, parallel),
		Columns: []string{"graph", "n", "m", "build", "rounds", "wall/round", "msgs/round", "allocs/round", "run wall"},
	}
	for _, n := range sizes {
		for _, fam := range []struct {
			name  string
			build func(n int) *graph.Graph
		}{
			{"ring", graph.Ring},
			{"ba", func(n int) *graph.Graph {
				return graph.BarabasiAlbert(n, scaleBAEdgeParam, rand.New(rand.NewSource(7)))
			}},
		} {
			buildStart := time.Now()
			g := fam.build(n)
			buildDur := time.Since(buildStart)
			res, wall, allocs, err := measureRun(g, parallel)
			if err != nil {
				return err
			}
			rounds := res.Rounds
			if rounds == 0 {
				rounds = 1
			}
			t.AddRow(
				fam.name, n, g.M(),
				roundDur(buildDur),
				res.Rounds,
				roundDur(wall/time.Duration(rounds)),
				res.Messages/rounds,
				fmt.Sprintf("%.1f", float64(allocs)/float64(rounds)),
				roundDur(wall),
			)
			if ledger != nil {
				ledger.AddRow(
					fmt.Sprintf("%s_%d", fam.name, n),
					map[string]string{"family": fam.name, "n": fmt.Sprint(n)},
					map[string]float64{
						"edges":            float64(g.M()),
						"rounds":           float64(res.Rounds),
						"msgs_per_round":   float64(res.Messages / rounds),
						"allocs_per_round": float64(allocs) / float64(rounds),
						"build_seconds":    buildDur.Seconds(),
						"wall_seconds":     wall.Seconds(),
					})
			}
		}
	}
	t.Note("allocs/round = total Run mallocs (setup included) / rounds; flood machines are slab-allocated so the numbers isolate the engine")
	t.Render(os.Stdout)
	if ledger != nil {
		return writeLedger(ledger, benchDir)
	}
	return nil
}

// measureRun executes the flood workload once and reports the result, wall
// time, and the number of heap allocations attributable to the run.
func measureRun(g *graph.Graph, parallel bool) (*runtime.Result, time.Duration, uint64, error) {
	factory := floodFactory(g.N())
	gort.GC()
	var before, after gort.MemStats
	gort.ReadMemStats(&before)
	start := time.Now()
	res, err := runtime.Run(runtime.Config{
		Graph:     g,
		Factory:   factory,
		Parallel:  parallel,
		MaxRounds: scaleRounds + 8,
	})
	wall := time.Since(start)
	gort.ReadMemStats(&after)
	if err != nil {
		return nil, 0, 0, err
	}
	return res, wall, after.Mallocs - before.Mallocs, nil
}

// roundDur trims a duration to three significant units for table display.
func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}
