package main

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/perf"
	"repro/internal/runtime"
	"repro/internal/shard"
)

// The shard sweep (-shards) measures the sharded engine against shard count:
// the flood workload on a ring and a Barabási–Albert graph, contiguous and
// greedy partitions, reporting the partition's edge cut, round throughput,
// and the boundary traffic the exchange phase actually carried. The CH8
// table in EXPERIMENTS.md is generated from this sweep. Results are
// byte-identical across every row of a graph — the sweep varies only where
// the work runs and what crosses shard boundaries.

const shardSweepN = 100_000

// runShardSweep renders the shard-count table: one row per
// (graph family, strategy, S). A non-empty benchDir writes the matching
// BENCH_shards.json ledger.
func runShardSweep(spec string, parallel bool, benchDir string) error {
	shardCounts, err := parseShardCounts(spec)
	if err != nil {
		return err
	}
	var ledger *perf.Ledger
	if benchDir != "" {
		ledger = perf.New("shards", map[string]any{
			"n": shardSweepN, "shards": shardCounts, "parallel": parallel, "rounds": scaleRounds,
		})
	}
	t := &bench.Table{
		ID:      "CH8",
		Title:   fmt.Sprintf("shard sweep: flood workload, n=%d, %d message rounds, parallel=%v", shardSweepN, scaleRounds, parallel),
		Columns: []string{"graph", "strategy", "S", "cut edges", "rounds/sec", "boundary msgs/round", "boundary bits/round", "run wall"},
	}
	for _, fam := range []struct {
		name  string
		build func(n int) *graph.Graph
	}{
		{"ring", graph.Ring},
		{"ba", func(n int) *graph.Graph {
			return graph.BarabasiAlbert(n, scaleBAEdgeParam, rand.New(rand.NewSource(7)))
		}},
	} {
		g := fam.build(shardSweepN)
		off, adj := g.CSR()
		for _, strategy := range []string{"contig", "greedy"} {
			for _, s := range shardCounts {
				var part *shard.Partition
				switch {
				case s == 1:
					part = shard.Contiguous(g.N(), 1)
				case strategy == "contig":
					part = shard.Contiguous(g.N(), s)
				default:
					part = shard.GreedyEdgeCut(g.N(), off, adj, s, 7)
				}
				if s == 1 && strategy == "greedy" {
					continue // S=1 has no cut either way; one row suffices
				}
				row, err := measureShardRun(g, part, parallel)
				if err != nil {
					return err
				}
				cut := part.CutEdges(off, adj)
				t.AddRow(fam.name, strategy, s, cut,
					fmt.Sprintf("%.1f", row.roundsPerSec),
					row.boundaryMsgs, row.boundaryBits, roundDur(row.wall))
				if ledger != nil {
					ledger.AddRow(
						fmt.Sprintf("%s_%s_s%d", fam.name, strategy, s),
						map[string]string{"family": fam.name, "strategy": strategy, "shards": fmt.Sprint(s)},
						map[string]float64{
							"cut_edges":               float64(cut),
							"boundary_msgs_per_round": float64(row.boundaryMsgs),
							"boundary_bits_per_round": float64(row.boundaryBits),
							"rounds_per_sec":          row.roundsPerSec,
							"wall_seconds":            row.wall.Seconds(),
						})
				}
			}
		}
	}
	t.Note("boundary msgs/bits = per-round average traffic crossing shards in the exchange phase; S=1 and the unsharded engine carry none")
	t.Note("outputs and traces are byte-identical across all rows of a graph family (the sharding determinism contract)")
	t.Render(os.Stdout)
	if ledger != nil {
		return writeLedger(ledger, benchDir)
	}
	return nil
}

type shardRow struct {
	roundsPerSec float64
	boundaryMsgs int
	boundaryBits int
	wall         time.Duration
}

// measureShardRun executes the flood workload once on the given partition
// and averages the per-shard boundary ledgers over the message rounds.
func measureShardRun(g *graph.Graph, part *shard.Partition, parallel bool) (shardRow, error) {
	factory := floodFactory(g.N())
	boundaryMsgs, boundaryBits := 0, 0
	start := time.Now()
	res, err := runtime.Run(runtime.Config{
		Graph:     g,
		Factory:   factory,
		Parallel:  parallel,
		Shards:    part.S,
		Partition: part,
		Stats: func(rs runtime.RoundStats) {
			for _, ss := range rs.Shards {
				boundaryMsgs += ss.BoundaryOut
				boundaryBits += ss.BoundaryOutBits
			}
		},
	})
	if err != nil {
		return shardRow{}, err
	}
	wall := time.Since(start)
	rounds := res.Rounds
	if rounds == 0 {
		rounds = 1
	}
	return shardRow{
		roundsPerSec: float64(res.Rounds) / wall.Seconds(),
		boundaryMsgs: boundaryMsgs / rounds,
		boundaryBits: boundaryBits / rounds,
		wall:         wall,
	}, nil
}

// parseShardCounts parses the -shards flag: a comma-separated list of shard
// counts (>= 1; parseSizes is for node counts and floors at 3).
func parseShardCounts(spec string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-shards %q: %q is not a shard count >= 1", spec, part)
		}
		counts = append(counts, v)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-shards %q: no counts", spec)
	}
	return counts, nil
}
