// dgp-lint runs the repository's domain analyzers (see internal/analysis)
// over Go packages. Two modes:
//
// Standalone multichecker (the usual entry point, also `make lint`):
//
//	go run ./cmd/dgp-lint ./...
//
// exits 0 when the tree is clean, 1 when any analyzer reports a finding,
// 2 on operational errors. `-list` prints the suite.
//
// As a vet tool, so the checks ride go vet's caching and package graph:
//
//	go build -o dgp-lint ./cmd/dgp-lint
//	go vet -vettool=$PWD/dgp-lint ./...
//
// In that mode the go command invokes the binary once per package with a
// JSON config file argument (the x/tools unitchecker protocol, implemented
// here on the standard library); see vettool.go.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	fs := flag.NewFlagSet("dgp-lint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version (go vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print flag JSON (go vet protocol)")
	listFlag := fs.Bool("list", false, "list the analyzers and exit")
	jsonUnused := fs.Bool("json", false, "accepted for go vet compatibility")
	_ = jsonUnused
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *versionFlag != "":
		// The go command hashes this line into its action cache key; bump it
		// whenever analyzer behavior changes so cached vet verdicts go stale.
		fmt.Println("dgp-lint version v2.0.0")
		return 0
	case *flagsFlag:
		fmt.Println("[]")
		return 0
	case *listFlag:
		for _, a := range suite.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vettoolMain(rest[0])
	}
	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgp-lint:", err)
		return 2
	}
	diags, err := analysis.Run(cwd, suite.All(), patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgp-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dgp-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
