package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

// vetConfig is the per-package configuration file the go command hands a
// -vettool binary (the x/tools unitchecker protocol). Fields we do not
// consume are accepted and ignored by the JSON decoder.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettoolMain analyzes the single package described by cfgPath. Exit codes
// follow the protocol: 0 clean, 2 findings or failure (the go command
// relays stderr either way).
func vettoolMain(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgp-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dgp-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command expects the facts file regardless of findings; the
	// suite exchanges no facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "dgp-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	all, err := analyzeVetPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "dgp-lint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	// go vet also feeds the suite the test variants of each package; the
	// suite's invariants target shipped code, so findings in _test.go files
	// are dropped to match the standalone multichecker's scope.
	diags := all[:0]
	for _, d := range all {
		if !strings.HasSuffix(d.Pos.Filename, "_test.go") {
			diags = append(diags, d)
		}
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func analyzeVetPackage(cfg *vetConfig) ([]analysis.Diagnostic, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &load.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	return analysis.RunPackages([]*load.Package{pkg}, suite.All())
}
