// Command dgp-perf reads BENCH_*.json performance ledgers (written by
// dgp-bench -bench-out) and compares them across runs.
//
// Subcommands:
//
//	dgp-perf validate DIR            check every ledger in DIR against the schema
//	dgp-perf compare BASE_DIR HEAD_DIR
//	                                 markdown delta report for every shared experiment
//	dgp-perf gate -baseline BASE_DIR HEAD_DIR
//	                                 compare and exit 1 on any regression or
//	                                 coverage loss (CI entry point)
//
// The noise model is perf.DefaultPolicy: deterministic counters gate exactly,
// allocs_per_round gates with a small band, wall-clock metrics never gate.
// See DESIGN.md §13.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "validate":
		err = runValidate(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	case "gate":
		err = runGate(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "dgp-perf: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dgp-perf:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  dgp-perf validate DIR
  dgp-perf compare BASE_DIR HEAD_DIR
  dgp-perf gate -baseline BASE_DIR HEAD_DIR
`)
}

func runValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("validate: want exactly one directory")
	}
	ledgers, err := perf.ReadDir(fs.Arg(0))
	if err != nil {
		return err
	}
	for _, exp := range sortedKeys(ledgers) {
		l := ledgers[exp]
		fmt.Printf("%s: ok (%d rows, %s, %s)\n",
			perf.Filename(exp), len(l.Rows), l.Env.GoVersion, l.Env.GOARCH)
	}
	return nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare: want BASE_DIR HEAD_DIR")
	}
	_, err := compareDirs(fs.Arg(0), fs.Arg(1))
	return err
}

func runGate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	baseline := fs.String("baseline", "", "directory of committed baseline ledgers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" || fs.NArg() != 1 {
		return fmt.Errorf("gate: want -baseline BASE_DIR HEAD_DIR")
	}
	pass, err := compareDirs(*baseline, fs.Arg(0))
	if err != nil {
		return err
	}
	if !pass {
		return fmt.Errorf("gate: regression against baseline %s", *baseline)
	}
	fmt.Println("gate: pass")
	return nil
}

// compareDirs reports every baseline experiment against its head twin and
// returns whether all gates passed. A baseline experiment with no head
// ledger is a gate failure: the benchmark stopped being measured.
func compareDirs(baseDir, headDir string) (bool, error) {
	base, err := perf.ReadDir(baseDir)
	if err != nil {
		return false, fmt.Errorf("baseline: %w", err)
	}
	head, err := perf.ReadDir(headDir)
	if err != nil {
		return false, fmt.Errorf("head: %w", err)
	}
	pass := true
	pol := perf.DefaultPolicy()
	for _, exp := range sortedKeys(base) {
		h, ok := head[exp]
		if !ok {
			fmt.Printf("## %s — FAIL\n\nbaseline ledger %s has no head twin in %s.\n\n",
				exp, perf.Filename(exp), headDir)
			pass = false
			continue
		}
		rep, err := perf.Compare(base[exp], h, pol)
		if err != nil {
			return false, err
		}
		if err := rep.WriteMarkdown(os.Stdout); err != nil {
			return false, err
		}
		if !rep.Gate() {
			pass = false
		}
	}
	for _, exp := range sortedKeys(head) {
		if _, ok := base[exp]; !ok {
			fmt.Printf("## %s — new\n\nno baseline ledger; commit %s to start gating it.\n\n",
				exp, perf.Filename(exp))
		}
	}
	return pass, nil
}

func sortedKeys(m map[string]*perf.Ledger) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
