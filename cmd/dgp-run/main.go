// Command dgp-run executes one (problem, algorithm, graph, prediction)
// configuration and prints the outcome: rounds, message counts, the error
// measures of the instance, and optionally the outputs.
//
// Usage examples:
//
//	dgp-run -problem mis -alg parallel -graph gnp -n 200 -p 0.05 -flips 10
//	dgp-run -problem matching -alg simple -graph grid -n 144 -flips 4
//	dgp-run -problem tree -alg simple -graph line -n 90 -flips 6 -show
//	dgp-run -problem mis -graph gnp -n 150 -chaos 0.3 -heal
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		problem  = flag.String("problem", "mis", "mis | matching | vcolor | ecolor | tree")
		alg      = flag.String("alg", "simple", "algorithm within the problem (see -help text per problem)")
		gname    = flag.String("graph", "gnp", "gnp | grid | ring | line | tree | clique | star | wheel | paths")
		n        = flag.Int("n", 100, "node count (side^2 for grid)")
		p        = flag.Float64("p", 0.05, "edge probability for gnp")
		flips    = flag.Int("flips", 0, "number of perturbed predictions")
		seed     = flag.Int64("seed", 1, "seed for graphs, predictions, and seeded algorithms")
		par      = flag.Bool("parallel", false, "use the goroutine engine")
		show     = flag.Bool("show", false, "print the output vector")
		trace    = flag.Bool("trace", false, "print a per-round trace (active node counts)")
		congest  = flag.Int("congest", 0, "enforce a CONGEST bit budget (0 = LOCAL)")
		chaos    = flag.Float64("chaos", 0, "fault rate r: drop r, duplicate r/2, corrupt r/4, crash r/4 per message/node")
		heal     = flag.Bool("heal", false, "self-heal faulted runs (Options.Recover)")
		deadline = flag.Duration("deadline", 0, "per-phase watchdog deadline (0 = off)")
	)
	flag.Parse()

	rng := repro.NewRand(*seed)
	var g *repro.Graph
	switch *gname {
	case "gnp":
		g = repro.GNP(*n, *p, rng)
	case "grid":
		side := isqrt(*n)
		g = repro.Grid2D(side, side)
	case "ring":
		g = repro.Ring(*n)
	case "line":
		g = repro.Line(*n)
	case "tree":
		g = repro.RandomTree(*n, rng)
	case "clique":
		g = repro.Clique(*n)
	case "star":
		g = repro.Star(*n)
	case "wheel":
		g = repro.WheelFk(*n / 2)
	case "paths":
		g = repro.DisjointPaths(*n/8, 8)
	default:
		return fmt.Errorf("unknown graph %q", *gname)
	}
	opts := repro.Options{
		Parallel:      *par,
		Seed:          *seed,
		CongestBits:   *congest,
		Recover:       *heal,
		RoundDeadline: *deadline,
	}
	var adversary *repro.Chaos
	if *chaos > 0 {
		adversary = repro.NewChaos(repro.ChaosPolicy{
			Seed:      *seed + 2,
			Drop:      *chaos,
			Duplicate: *chaos / 2,
			Corrupt:   *chaos / 4,
			Crash:     *chaos / 4,
		})
		opts.Adversary = adversary
	}
	if *trace {
		last := -1
		opts.OnRound = func(round, active int) {
			if active != last {
				fmt.Printf("round %4d: %d active\n", round, active)
				last = active
			}
		}
	}

	var err error
	switch *problem {
	case "mis":
		err = runMIS(g, *alg, *flips, opts, *show)
	case "matching":
		err = runMatching(g, *alg, *flips, opts, *show)
	case "vcolor":
		err = runVColor(g, *alg, *flips, opts, *show)
	case "ecolor":
		err = runEColor(g, *alg, *flips, opts, *show)
	case "tree":
		err = runTree(g, *alg, *flips, opts, *show)
	default:
		return fmt.Errorf("unknown problem %q", *problem)
	}
	if adversary != nil {
		s := adversary.Stats()
		fmt.Printf("chaos: dropped=%d duplicated=%d corrupted=%d failedLinks=%d crashed=%d\n",
			s.Dropped, s.Duplicated, s.Corrupted, s.FailedLinks, s.Crashed)
	}
	return err
}

func isqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

func runMIS(g *repro.Graph, alg string, flips int, opts repro.Options, show bool) error {
	algs := map[string]repro.MISAlgorithm{
		"greedy":      repro.MISGreedy,
		"uniform":     repro.MISSimpleUniform,
		"simple":      repro.MISSimple,
		"bw":          repro.MISSimpleBW,
		"luby":        repro.MISSimpleLuby,
		"collect":     repro.MISSimpleCollect,
		"consecutive": repro.MISConsecutiveCollect,
		"decomp":      repro.MISConsecutiveDecomp,
		"interleaved": repro.MISInterleavedDecomp,
		"parallel":    repro.MISParallelColoring,
	}
	a, ok := algs[alg]
	if !ok {
		return fmt.Errorf("unknown MIS algorithm %q", alg)
	}
	preds := repro.FlipBits(repro.PerfectMIS(g), flips, repro.NewRand(opts.Seed+1))
	errs, err := repro.MISErrorReport(g, preds)
	if err != nil {
		return err
	}
	res, err := repro.RunMIS(g, preds, a, opts)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d delta=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("errors: eta1=%d eta2=%d eta_bw=%d components=%d\n",
		errs.Eta1, errs.Eta2, errs.EtaBW, errs.Components)
	fmt.Printf("result: rounds=%d messages=%d maxMsgBits=%d\n",
		res.Run.Rounds, res.Run.Messages, res.Run.MaxMsgBits)
	if show {
		fmt.Printf("in-set: %v\n", res.InSet)
	}
	return nil
}

func runMatching(g *repro.Graph, alg string, flips int, opts repro.Options, show bool) error {
	algs := map[string]repro.MatchingAlgorithm{
		"greedy":      repro.MatchingGreedy,
		"simple":      repro.MatchingSimple,
		"collect":     repro.MatchingSimpleCollect,
		"consecutive": repro.MatchingConsecutive,
		"parallel":    repro.MatchingParallel,
	}
	a, ok := algs[alg]
	if !ok {
		return fmt.Errorf("unknown matching algorithm %q", alg)
	}
	preds := repro.PerturbMatching(g, repro.PerfectMatching(g), flips, repro.NewRand(opts.Seed+1))
	res, err := repro.RunMatching(g, preds, a, opts)
	if err != nil {
		return err
	}
	fmt.Printf("errors: eta1=%d\n", repro.MatchingEta1(g, preds))
	fmt.Printf("result: rounds=%d messages=%d\n", res.Run.Rounds, res.Run.Messages)
	if show {
		fmt.Printf("partners: %v\n", res.Partner)
	}
	return nil
}

func runVColor(g *repro.Graph, alg string, flips int, opts repro.Options, show bool) error {
	algs := map[string]repro.VColorAlgorithm{
		"greedy":      repro.VColorGreedy,
		"simple":      repro.VColorSimple,
		"linial":      repro.VColorSimpleLinial,
		"consecutive": repro.VColorConsecutive,
		"standalone":  repro.VColorLinial,
		"interleaved": repro.VColorInterleaved,
		"parallel":    repro.VColorParallel,
	}
	a, ok := algs[alg]
	if !ok {
		return fmt.Errorf("unknown vertex-coloring algorithm %q", alg)
	}
	preds := repro.PerturbVColor(g, repro.PerfectVColor(g), flips, repro.NewRand(opts.Seed+1))
	res, err := repro.RunVColor(g, preds, a, opts)
	if err != nil {
		return err
	}
	fmt.Printf("errors: eta1=%d\n", repro.VColorEta1(g, preds))
	fmt.Printf("result: rounds=%d messages=%d\n", res.Run.Rounds, res.Run.Messages)
	if show {
		fmt.Printf("colors: %v\n", res.Color)
	}
	return nil
}

func runEColor(g *repro.Graph, alg string, flips int, opts repro.Options, show bool) error {
	algs := map[string]repro.EColorAlgorithm{
		"greedy":      repro.EColorGreedy,
		"simple":      repro.EColorSimple,
		"collect":     repro.EColorSimpleCollect,
		"consecutive": repro.EColorConsecutive,
		"parallel":    repro.EColorParallel,
	}
	a, ok := algs[alg]
	if !ok {
		return fmt.Errorf("unknown edge-coloring algorithm %q", alg)
	}
	preds := repro.PerturbEColor(g, repro.PerfectEColor(g), flips, repro.NewRand(opts.Seed+1))
	res, err := repro.RunEColor(g, preds, a, opts)
	if err != nil {
		return err
	}
	fmt.Printf("errors: eta1=%d\n", repro.EColorEta1(g, preds))
	fmt.Printf("result: rounds=%d messages=%d\n", res.Run.Rounds, res.Run.Messages)
	if show {
		fmt.Printf("edge colors: %v\n", res.EdgeColor)
	}
	return nil
}

func runTree(g *repro.Graph, alg string, flips int, opts repro.Options, show bool) error {
	r := repro.RootAt(g, 0)
	if g.M() >= g.N() {
		return fmt.Errorf("tree problem requires an acyclic graph (use -graph line or -graph tree)")
	}
	algs := map[string]repro.TreeMISAlgorithm{
		"greedy":      repro.TreeRootsLeaves,
		"simple":      repro.TreeSimple,
		"parallel":    repro.TreeParallel,
		"consecutive": repro.TreeConsecutive,
	}
	a, ok := algs[alg]
	if !ok {
		return fmt.Errorf("unknown tree algorithm %q", alg)
	}
	preds := repro.FlipBits(repro.PerfectMIS(g), flips, repro.NewRand(opts.Seed+1))
	res, err := repro.RunTreeMIS(r, preds, a, opts)
	if err != nil {
		return err
	}
	fmt.Printf("errors: eta_t=%d\n", repro.TreeEtaT(r, preds))
	fmt.Printf("result: rounds=%d messages=%d\n", res.Run.Rounds, res.Run.Messages)
	if show {
		fmt.Printf("in-set: %v\n", res.InSet)
	}
	return nil
}
