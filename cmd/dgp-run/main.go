// Command dgp-run executes one (problem, algorithm, graph, prediction)
// configuration and prints the outcome: rounds, message counts, the error
// measures of the instance, and optionally the outputs. Problems and
// algorithms come from the registry — `dgp-run -list` enumerates every
// registered pair with its template, reference, and round bound.
//
// Usage examples:
//
//	dgp-run -list
//	dgp-run -problem mis -alg parallel -graph gnp -n 200 -p 0.05 -flips 10
//	dgp-run -problem matching -alg simple -graph grid -n 144 -flips 4
//	dgp-run -problem tree -alg simple -graph line -n 90 -flips 6 -show
//	dgp-run -problem mis -graph gnp -n 150 -chaos 0.3 -heal
//	dgp-run -problem mis -alg simple -graph gnp -n 150 -trace mis.jsonl -chrome mis.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "print the registry (problem, algorithm, template, reference, round bound) and exit")
		problem  = flag.String("problem", "mis", "a registered problem (see -list)")
		alg      = flag.String("alg", "simple", "a registered algorithm within the problem (see -list)")
		gname    = flag.String("graph", "gnp", "gnp | grid | ring | line | tree | clique | star | wheel | paths")
		n        = flag.Int("n", 100, "node count (side^2 for grid)")
		p        = flag.Float64("p", 0.05, "edge probability for gnp")
		flips    = flag.Int("flips", 0, "number of perturbed predictions")
		seed     = flag.Int64("seed", 1, "seed for graphs, predictions, and seeded algorithms")
		par      = flag.Bool("parallel", false, "use the goroutine engine")
		shards   = flag.Int("shards", 0, "run the sharded engine with this many shards (0 = unsharded; results are identical for every value)")
		show     = flag.Bool("show", false, "print the output vector")
		progress = flag.Bool("progress", false, "print a per-round progress line (active node counts)")
		traceOut = flag.String("trace", "", "write a JSONL event trace to this file ('-' = stdout); inspect with dgp-trace")
		chrome   = flag.String("chrome", "", "write a Chrome trace_event timeline to this file (chrome://tracing, Perfetto)")
		tracecap = flag.Int("tracecap", 0, "trace ring-buffer capacity in events (0 = default; oldest events drop on overflow)")
		congest  = flag.Int("congest", 0, "enforce a CONGEST bit budget (0 = LOCAL)")
		chaos    = flag.Float64("chaos", 0, "fault rate r: drop r, duplicate r/2, corrupt r/4, crash r/4 per message/node")
		heal     = flag.Bool("heal", false, "self-heal faulted runs (Options.Recover)")
		deadline = flag.Duration("deadline", 0, "per-phase watchdog deadline (0 = off)")
		updates  = flag.String("updates", "", "drive a dynamic session from this JSONL edge-update stream ('-' = stdin); one {\"seq\":1,\"insert\":[[0,5]],\"delete\":[[1,2]]} per line")
		schaos   = flag.Float64("streamchaos", 0, "update-stream fault rate r: drop r, duplicate r/2, reorder r/2 per batch; step chaos at rate r (with -updates)")
	)
	flag.Parse()

	if *list {
		fmt.Print(repro.RegistryTable())
		return nil
	}

	rng := repro.NewRand(*seed)
	var g *repro.Graph
	switch *gname {
	case "gnp":
		g = repro.GNP(*n, *p, rng)
	case "grid":
		side := isqrt(*n)
		g = repro.Grid2D(side, side)
	case "ring":
		g = repro.Ring(*n)
	case "line":
		g = repro.Line(*n)
	case "tree":
		g = repro.RandomTree(*n, rng)
	case "clique":
		g = repro.Clique(*n)
	case "star":
		g = repro.Star(*n)
	case "wheel":
		g = repro.WheelFk(*n / 2)
	case "paths":
		g = repro.DisjointPaths(*n/8, 8)
	default:
		return fmt.Errorf("unknown graph %q", *gname)
	}
	opts := repro.Options{
		Parallel:      *par,
		Shards:        *shards,
		Seed:          *seed,
		CongestBits:   *congest,
		Recover:       *heal,
		RoundDeadline: *deadline,
	}
	var adversary *repro.Chaos
	if *chaos > 0 {
		adversary = repro.NewChaos(repro.ChaosPolicy{
			Seed:      *seed + 2,
			Drop:      *chaos,
			Duplicate: *chaos / 2,
			Corrupt:   *chaos / 4,
			Crash:     *chaos / 4,
		})
		opts.Adversary = adversary
	}
	if *progress {
		last := -1
		opts.OnRound = func(round, active int) {
			if active != last {
				fmt.Printf("round %4d: %d active\n", round, active)
				last = active
			}
		}
	}
	var rec *repro.TraceRecorder
	if *traceOut != "" || *chrome != "" {
		rec = repro.NewTraceRecorder(*tracecap)
		opts.Trace = rec
	}

	var err error
	if *updates != "" {
		err = runUpdates(g, *problem, *updates, *schaos, *seed, opts, *show)
	} else {
		err = runProblem(g, *problem, *alg, *flips, opts, *show)
	}
	if adversary != nil {
		s := adversary.Stats()
		fmt.Printf("chaos: dropped=%d duplicated=%d corrupted=%d failedLinks=%d crashed=%d\n",
			s.Dropped, s.Duplicated, s.Corrupted, s.FailedLinks, s.Crashed)
	}
	// The trace is written even when the run aborted: a terminal round event
	// with the error is exactly what a failed run's trace is for.
	if werr := writeTraces(rec, *traceOut, *chrome); werr != nil && err == nil {
		err = werr
	}
	return err
}

// writeTraces flushes the recorder to the requested JSONL and Chrome
// trace_event outputs.
func writeTraces(rec *repro.TraceRecorder, jsonlPath, chromePath string) error {
	if rec == nil {
		return nil
	}
	events := rec.Events()
	if d := rec.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "trace: ring buffer overflowed, oldest %d events dropped (raise -tracecap)\n", d)
	}
	write := func(path string, emit func(*os.File) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return emit(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(jsonlPath, func(f *os.File) error { return obs.WriteJSONL(f, events) }); err != nil {
		return err
	}
	return write(chromePath, func(f *os.File) error { return obs.WriteChromeTrace(f, events) })
}

func isqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// runProblem is the single registry-driven execution path: generate the
// problem's predictions, summarize the instance's error measures, run the
// chosen algorithm, and print the outcome.
func runProblem(g *repro.Graph, problem, alg string, flips int, opts repro.Options, show bool) error {
	preds, err := repro.GeneratePreds(problem, g, flips, opts.Seed+1)
	if err != nil {
		if problem == "tree" && strings.Contains(err.Error(), "acyclic") {
			return fmt.Errorf("%w (use -graph line or -graph tree)", err)
		}
		return err
	}
	errs, err := repro.ErrorSummary(problem, g, preds)
	if err != nil {
		return err
	}
	res, err := repro.RunProblem(g, problem, alg, preds, opts)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d delta=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("errors: %s\n", errs)
	fmt.Printf("result: rounds=%d messages=%d maxMsgBits=%d\n",
		res.Run.Rounds, res.Run.Messages, res.Run.MaxMsgBits)
	if r := res.Recovery; r != nil && !r.Valid {
		fmt.Printf("healed: residual=%d recoveryRounds=%d\n", r.Residual, r.RecoveryRounds)
	}
	if show {
		out := res.Output
		if out == nil {
			out = res.EdgeOutput
		}
		fmt.Printf("%s: %v\n", outputLabel(problem), out)
	}
	return nil
}

// outputLabel returns the registry's display label for the problem's output
// vector.
func outputLabel(problem string) string {
	for _, p := range repro.Problems() {
		if p.Name == problem {
			return p.OutputLabel
		}
	}
	return "output"
}
