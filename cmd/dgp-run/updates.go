package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro"
)

// updateLine is one JSONL record of the -updates stream:
//
//	{"seq":1,"insert":[[0,5]],"delete":[[1,2]]}
//
// Endpoints are node indices in [0, n). Lines are delivered in file order;
// seq deduplicates redeliveries (and is perturbed by -streamchaos).
type updateLine struct {
	Seq    int      `json:"seq"`
	Insert [][2]int `json:"insert"`
	Delete [][2]int `json:"delete"`
}

// readBatches parses a JSONL update stream ('-' = stdin).
func readBatches(path string) ([]repro.UpdateBatch, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var batches []repro.UpdateBatch
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var u updateLine
		if err := json.Unmarshal(raw, &u); err != nil {
			return nil, fmt.Errorf("updates line %d: %w", line, err)
		}
		b := repro.UpdateBatch{Seq: u.Seq}
		for _, e := range u.Insert {
			b.Updates = append(b.Updates, repro.EdgeUpdate{Op: repro.EdgeInsert, U: e[0], V: e[1]})
		}
		for _, e := range u.Delete {
			b.Updates = append(b.Updates, repro.EdgeUpdate{Op: repro.EdgeDelete, U: e[0], V: e[1]})
		}
		batches = append(batches, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return batches, nil
}

// runUpdates drives a dynamic session over the JSONL update stream: open on
// the generated graph, stream the batches (optionally under stream chaos),
// and report each step's recovery cost.
func runUpdates(g *repro.Graph, problemName, path string, streamchaos float64, seed int64, opts repro.Options, show bool) error {
	batches, err := readBatches(path)
	if err != nil {
		return err
	}
	s, err := repro.NewSession(g, problemName, repro.SessionOptions{
		Parallel:      opts.Parallel,
		StepMaxRounds: opts.MaxRounds,
		Trace:         opts.Trace,
	})
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d delta=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("session: problem=%s batches=%d\n", problemName, len(batches))
	var sp *repro.StreamPolicy
	if streamchaos > 0 {
		sp = &repro.StreamPolicy{
			Seed:      seed + 3,
			Drop:      streamchaos,
			Duplicate: streamchaos / 2,
			Reorder:   streamchaos / 2,
			StepFault: streamchaos,
			Step: repro.ChaosPolicy{
				Drop:    streamchaos,
				Corrupt: streamchaos / 4,
			},
		}
	}
	steps, stream, err := s.ApplyStream(batches, sp)
	for _, st := range steps {
		switch st.Outcome {
		case "applied":
			extra := ""
			if st.Widened > 0 || st.FullRerun {
				extra = fmt.Sprintf(" widened=%d fullRerun=%v", st.Widened, st.FullRerun)
			}
			fmt.Printf("step seq=%d applied updates=%d damaged=%d residual=%d attempts=%d rounds=%d%s\n",
				st.Seq, st.Updates, st.Damaged, st.Residual, st.Attempts, st.Rounds, extra)
		case "rejected":
			fmt.Printf("step seq=%d rejected: %v\n", st.Seq, st.Err)
		default:
			fmt.Printf("step seq=%d %s\n", st.Seq, st.Outcome)
		}
	}
	if err != nil {
		return err
	}
	stats := s.Close()
	if sp != nil {
		fmt.Printf("streamchaos: dropped=%d duplicated=%d reordered=%d faultedSteps=%d\n",
			stream.Dropped, stream.Duplicated, stream.Reordered, stream.FaultedSteps)
	}
	fg := s.Graph()
	fmt.Printf("final: n=%d m=%d applied=%d duplicates=%d rejected=%d damaged=%d\n",
		fg.N(), fg.M(), stats.Applied, stats.Duplicates, stats.Rejected, stats.Damaged)
	fmt.Printf("recovery: initialRounds=%d recoveryRounds=%d recoveryMessages=%d widened=%d fullReruns=%d\n",
		stats.InitialRounds, stats.RecoveryRounds, stats.RecoveryMessages, stats.Widened, stats.FullReruns)
	if show {
		fmt.Printf("%s: %v\n", outputLabel(problemName), s.Output())
	}
	return nil
}
