// Command dgp-trace inspects JSONL trace files written by dgp-run -trace
// (or any obs.WriteJSONL stream): per-phase round budgets checked against
// the paper bounds, fault timelines, η trajectories, Chrome trace_event
// conversion, metrics aggregation, and canonical diffing of two traces
// (the engine determinism contract: identical streams modulo durations).
//
// Usage:
//
//	dgp-trace summarize trace.jsonl
//	dgp-trace filter -type fault -round 3 trace.jsonl
//	dgp-trace diff seq.jsonl pool.jsonl
//	dgp-trace chrome -o timeline.json trace.jsonl
//	dgp-trace metrics -format json trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf(`usage: dgp-trace <command> [flags] <trace.jsonl>

commands:
  summarize  per-run totals, phase budgets vs observed rounds, fault timeline, η trajectory
  filter     select events (by type, run, round, node, name) and re-emit JSONL
  diff       compare two traces modulo durations; exit 1 at the first difference
  chrome     convert to a Chrome trace_event timeline (chrome://tracing, Perfetto)
  metrics    aggregate the stream into Prometheus text or JSON metrics`)
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "summarize":
		return cmdSummarize(args[1:])
	case "filter":
		return cmdFilter(args[1:])
	case "diff":
		return cmdDiff(args[1:])
	case "chrome":
		return cmdChrome(args[1:])
	case "metrics":
		return cmdMetrics(args[1:])
	default:
		return usage()
	}
}

// readTrace loads one JSONL trace file ("-" = stdin).
func readTrace(path string) ([]obs.Event, error) {
	if path == "-" {
		return obs.ReadJSONL(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// outWriter opens the -o target ("" or "-" = stdout). The caller must call
// the returned close function.
func outWriter(path string) (*os.File, func() error, error) {
	if path == "" || path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func oneTracePath(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one trace file, got %d args", fs.NArg())
	}
	return fs.Arg(0), nil
}

func cmdSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := oneTracePath(fs)
	if err != nil {
		return err
	}
	events, err := readTrace(path)
	if err != nil {
		return err
	}
	return obs.Summarize(events).WriteText(os.Stdout)
}

func cmdFilter(args []string) error {
	fs := flag.NewFlagSet("filter", flag.ContinueOnError)
	var (
		typ   = fs.String("type", "", "keep only this event type (e.g. fault, span, round-end)")
		runIx = fs.Int("run", -1, "keep only the i-th run (0-based; run-start opens a run)")
		round = fs.Int("round", 0, "keep only this round (0 = all)")
		node  = fs.Int("node", -1, "keep only this node identifier (-1 = all)")
		name  = fs.String("name", "", "keep only events whose name contains this substring")
		out   = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := oneTracePath(fs)
	if err != nil {
		return err
	}
	events, err := readTrace(path)
	if err != nil {
		return err
	}
	var kept []obs.Event
	cur := -1
	for _, e := range events {
		if e.Type == obs.EvRunStart {
			cur++
		}
		if *typ != "" && string(e.Type) != *typ {
			continue
		}
		if *runIx >= 0 && cur != *runIx {
			continue
		}
		if *round > 0 && e.Round != *round {
			continue
		}
		if *node >= 0 && e.Node != *node {
			continue
		}
		if *name != "" && !strings.Contains(e.Name, *name) {
			continue
		}
		kept = append(kept, e)
	}
	w, closeFn, err := outWriter(*out)
	if err != nil {
		return err
	}
	if err := obs.WriteJSONL(w, kept); err != nil {
		closeFn()
		return err
	}
	if err := closeFn(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kept %d/%d events\n", len(kept), len(events))
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	drop := fs.String("drop", "", "comma-separated event types to drop before comparing (e.g. shard-exchange, which legally varies with -shards)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("expected two trace files, got %d args", fs.NArg())
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		return err
	}
	if *drop != "" {
		dropped := make(map[obs.EventType]bool)
		for _, t := range strings.Split(*drop, ",") {
			dropped[obs.EventType(strings.TrimSpace(t))] = true
		}
		keep := func(events []obs.Event) []obs.Event {
			kept := events[:0:0]
			for _, e := range events {
				if !dropped[e.Type] {
					kept = append(kept, e)
				}
			}
			return kept
		}
		a, b = keep(a), keep(b)
	}
	index, desc, ok := obs.Diff(obs.Canonical(a), obs.Canonical(b))
	if ok {
		fmt.Printf("traces match: %d events (durations ignored)\n", len(a))
		return nil
	}
	return fmt.Errorf("traces differ at event %d: %s", index, desc)
}

func cmdChrome(args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := oneTracePath(fs)
	if err != nil {
		return err
	}
	events, err := readTrace(path)
	if err != nil {
		return err
	}
	w, closeFn, err := outWriter(*out)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(w, events); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	var (
		format = fs.String("format", "prom", "prom | json")
		out    = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := oneTracePath(fs)
	if err != nil {
		return err
	}
	events, err := readTrace(path)
	if err != nil {
		return err
	}
	snap := obs.Aggregate(events).Snapshot()
	w, closeFn, err := outWriter(*out)
	if err != nil {
		return err
	}
	switch *format {
	case "prom":
		err = snap.WritePrometheus(w)
	case "json":
		err = snap.WriteJSON(w)
	default:
		err = fmt.Errorf("unknown -format %q (prom | json)", *format)
	}
	if err != nil {
		closeFn()
		return err
	}
	return closeFn()
}
