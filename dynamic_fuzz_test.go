package repro_test

import (
	"reflect"
	"testing"

	"repro"
	"repro/internal/heal"
	"repro/internal/problem"
	"repro/internal/runtime"
)

// FuzzSessionConvergence is the dynamic-session convergence contract under
// fuzzed shapes and chaos: after K chaos-perturbed batches, the session's
// final output must (a) be byte-identical between the sequential and pool
// engines — reports, stats, and final graph included, (b) be a valid
// solution on the session's final graph, and (c) be a fixed point of the
// from-scratch Simple Template on that graph: feeding it back as the
// prediction vector reproduces it byte-for-byte (Observation 7, η = 0). An
// incrementally healed output is indistinguishable from a prediction the
// template has nothing to fix.
func FuzzSessionConvergence(f *testing.F) {
	f.Add(uint64(0x1a2b3c4d5e), uint64(0x9f8e7d6c5b))
	f.Add(uint64(2), uint64(0))
	f.Add(uint64(0xffff_ffff_ffff), uint64(0xffff_ffff_ffff))
	f.Add(uint64(0x03_77_1234), uint64(0x42_00_ff_40_20_80))
	f.Fuzz(func(t *testing.T, shape, chaos uint64) {
		frac := func(b uint64) float64 { return float64(b&0xff) / 256 }
		problems := []string{"mis", "matching", "vcolor", "tree"}
		name := problems[shape&3]
		n := 12 + int((shape>>2)%48)
		k := 1 + int((shape>>8)%10)
		rng := repro.NewRand(int64(shape >> 18 % (1 << 20)))
		var g *repro.Graph
		if name == "tree" {
			g = repro.RandomTree(n, rng)
		} else {
			g = repro.GNP(n, 0.04+frac(shape>>10)*0.15, rng)
		}
		batches := make([]repro.UpdateBatch, k)
		edges := g.Edges()
		for b := range batches {
			var ups []repro.EdgeUpdate
			for i := 0; i < 1+rng.Intn(4); i++ {
				// Tree sessions get delete-only updates so the from-scratch
				// comparison stays on a forest.
				if name != "tree" && rng.Intn(2) == 0 {
					u, v := rng.Intn(n), rng.Intn(n)
					if u != v {
						ups = append(ups, repro.EdgeUpdate{Op: repro.EdgeInsert, U: u, V: v})
					}
				} else if len(edges) > 0 {
					e := edges[rng.Intn(len(edges))]
					ups = append(ups, repro.EdgeUpdate{Op: repro.EdgeDelete, U: e[0], V: e[1]})
				}
			}
			batches[b] = repro.UpdateBatch{Seq: b, Updates: ups}
		}
		sp := &repro.StreamPolicy{
			Seed:      int64(chaos >> 40 % (1 << 20)),
			Drop:      frac(chaos) * 0.4,
			Duplicate: frac(chaos>>8) * 0.4,
			Reorder:   frac(chaos>>16) * 0.4,
			StepFault: frac(chaos>>24) * 0.6,
			Step: repro.ChaosPolicy{
				Drop:    frac(chaos>>32) * 0.4,
				Corrupt: frac(chaos>>36) * 0.3,
			},
		}
		run := func(parallel bool) *repro.SessionReport {
			rep, err := repro.RunSession(g, name, batches, sp, repro.SessionOptions{Parallel: parallel})
			if err != nil {
				t.Fatalf("parallel=%v: %v", parallel, err)
			}
			return rep
		}
		seq, pool := run(false), run(true)
		if !reflect.DeepEqual(seq.Output, pool.Output) || !reflect.DeepEqual(seq.Steps, pool.Steps) ||
			seq.Stats != pool.Stats || !reflect.DeepEqual(seq.FinalGraph.Edges(), pool.FinalGraph.Edges()) {
			t.Fatalf("engine modes disagree:\nseq  %+v\npool %+v", seq, pool)
		}
		d, err := problem.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := heal.SpecFor(d)
		if err != nil {
			t.Fatal(err)
		}
		if verr := spec.Verify(seq.FinalGraph, seq.Output); verr != nil {
			t.Fatalf("final output invalid on final graph: %v", verr)
		}
		preds := make([]any, len(seq.Output))
		for i, v := range seq.Output {
			preds[i] = v
		}
		res, err := runtime.Run(runtime.Config{Graph: seq.FinalGraph, Factory: spec.HealFactory, Predictions: preds})
		if err != nil {
			t.Fatalf("fixed-point run: %v", err)
		}
		for i, o := range res.Outputs {
			if v, ok := o.(int); !ok || v != seq.Output[i] {
				t.Fatalf("node %d: from-scratch template moved the session output %v -> %v", i, seq.Output[i], o)
			}
		}
	})
}
