package repro_test

import (
	"fmt"

	"repro"
)

// ExampleRunMIS runs the Corollary 12 algorithm on a ring whose predictions
// contain one error: the two adjacent prediction-1 nodes form the only error
// component, so the algorithm finishes within a few rounds of the
// consistency bound.
func ExampleRunMIS() {
	g := repro.Ring(12)
	preds := repro.PerfectMIS(g)
	preds[1] = 1 // corrupt one bit

	res, err := repro.RunMIS(g, preds, repro.MISParallelColoring, repro.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("valid:", len(res.InSet) == g.N())
	fmt.Println("rounds <= 7:", res.Run.Rounds <= 7)
	// Output:
	// valid: true
	// rounds <= 7: true
}

// ExampleMISErrorReport computes the paper's error measures for a grid with
// the Figure 2 black/white prediction pattern: the whole grid is one error
// component (η₁ = n) but the black and white components have 4 nodes each.
func ExampleMISErrorReport() {
	g := repro.Grid2D(8, 8)
	preds := repro.GridBW(8, 8)
	errs, err := repro.MISErrorReport(g, preds)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("eta1:", errs.Eta1)
	fmt.Println("eta_bw:", errs.EtaBW)
	// Output:
	// eta1: 64
	// eta_bw: 4
}

// ExampleRunTreeMIS demonstrates the Section 9.2 example: the mod-3 line has
// η₁ = n but the rooted-tree initialization finishes it in three rounds.
func ExampleRunTreeMIS() {
	r := repro.DirectedLine(30)
	preds := repro.Mod3Line(10)
	res, err := repro.RunTreeMIS(r, preds, repro.TreeSimple, repro.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("eta_t:", repro.TreeEtaT(r, preds))
	fmt.Println("rounds:", res.Run.Rounds)
	// Output:
	// eta_t: 2
	// rounds: 3
}

// ExampleRunMIS_congest runs the Greedy algorithm under an enforced CONGEST
// bandwidth budget — its constant-size notifications fit easily.
func ExampleRunMIS_congest() {
	g := repro.Ring(64)
	res, err := repro.RunMIS(g, nil, repro.MISGreedy, repro.Options{CongestBits: 32})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("max message bits <= 32:", res.Run.MaxMsgBits <= 32)
	// Output:
	// max message bits <= 32: true
}

// ExampleRunMatching solves maximal matching reusing a perfect prediction.
func ExampleRunMatching() {
	g := repro.Line(8)
	preds := repro.PerfectMatching(g)
	res, err := repro.RunMatching(g, preds, repro.MatchingSimple, repro.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("rounds:", res.Run.Rounds)
	// Output:
	// rounds: 2
}

// ExampleRunMIS_onRoundStats streams the engine's per-round instrumentation
// (wall time, deliveries, payload bits) to library code via
// Options.OnRoundStats.
func ExampleRunMIS_onRoundStats() {
	g := repro.Line(8)
	var rounds, messages int
	res, err := repro.RunMIS(g, repro.PerfectMIS(g), repro.MISSimple, repro.Options{
		OnRoundStats: func(s repro.RoundStats) {
			rounds++
			messages += s.Messages
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("stats records == rounds:", rounds == res.Run.Rounds)
	fmt.Println("per-round messages sum to total:", messages == res.Run.Messages)
	// Output:
	// stats records == rounds: true
	// per-round messages sum to total: true
}

// ExampleRunWithRecovery heals a chaos-damaged MIS run: the faulted outputs
// are carved into an extendable partial solution and the paper's clean-up
// machinery extends it back to a verified maximal independent set.
func ExampleRunWithRecovery() {
	g := repro.GNP(40, 0.15, repro.NewRand(2))
	res, err := repro.RunWithRecovery(g, repro.ProblemMIS, nil, repro.Options{
		MaxRounds: 150,
		Adversary: repro.NewChaos(repro.ChaosPolicy{Seed: 5, Drop: 0.45, Crash: 0.1}),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("verified solution:", len(res.Output) == g.N())
	fmt.Println("healed:", res.Healed)
	// Output:
	// verified solution: true
	// healed: true
}
