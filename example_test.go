package repro_test

import (
	"fmt"

	"repro"
)

// ExampleRunMIS runs the Corollary 12 algorithm on a ring whose predictions
// contain one error: the two adjacent prediction-1 nodes form the only error
// component, so the algorithm finishes within a few rounds of the
// consistency bound.
func ExampleRunMIS() {
	g := repro.Ring(12)
	preds := repro.PerfectMIS(g)
	preds[1] = 1 // corrupt one bit

	res, err := repro.RunMIS(g, preds, repro.MISParallelColoring, repro.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("valid:", len(res.InSet) == g.N())
	fmt.Println("rounds <= 7:", res.Run.Rounds <= 7)
	// Output:
	// valid: true
	// rounds <= 7: true
}

// ExampleMISErrorReport computes the paper's error measures for a grid with
// the Figure 2 black/white prediction pattern: the whole grid is one error
// component (η₁ = n) but the black and white components have 4 nodes each.
func ExampleMISErrorReport() {
	g := repro.Grid2D(8, 8)
	preds := repro.GridBW(8, 8)
	errs, err := repro.MISErrorReport(g, preds)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("eta1:", errs.Eta1)
	fmt.Println("eta_bw:", errs.EtaBW)
	// Output:
	// eta1: 64
	// eta_bw: 4
}

// ExampleRunTreeMIS demonstrates the Section 9.2 example: the mod-3 line has
// η₁ = n but the rooted-tree initialization finishes it in three rounds.
func ExampleRunTreeMIS() {
	r := repro.DirectedLine(30)
	preds := repro.Mod3Line(10)
	res, err := repro.RunTreeMIS(r, preds, repro.TreeSimple, repro.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("eta_t:", repro.TreeEtaT(r, preds))
	fmt.Println("rounds:", res.Run.Rounds)
	// Output:
	// eta_t: 2
	// rounds: 3
}

// ExampleRunMIS_congest runs the Greedy algorithm under an enforced CONGEST
// bandwidth budget — its constant-size notifications fit easily.
func ExampleRunMIS_congest() {
	g := repro.Ring(64)
	res, err := repro.RunMIS(g, nil, repro.MISGreedy, repro.Options{CongestBits: 32})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("max message bits <= 32:", res.Run.MaxMsgBits <= 32)
	// Output:
	// max message bits <= 32: true
}

// ExampleRunMatching solves maximal matching reusing a perfect prediction.
func ExampleRunMatching() {
	g := repro.Line(8)
	preds := repro.PerfectMatching(g)
	res, err := repro.RunMatching(g, preds, repro.MatchingSimple, repro.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("rounds:", res.Run.Rounds)
	// Output:
	// rounds: 2
}
