// All problems, one network: the framework covers all four problems from the
// paper's Section 8 with the same template machinery. This example solves
// MIS, Maximal Matching, (Δ+1)-Vertex Coloring, and (2Δ−1)-Edge Coloring on
// the same random network, each with mildly corrupted predictions, and
// reports how the Simple and Parallel templates behave side by side.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g := repro.GNP(400, 0.015, repro.NewRand(7))
	fmt.Printf("network: n=%d m=%d Δ=%d\n\n", g.N(), g.M(), g.MaxDegree())
	fmt.Println("problem       eta1  simple rounds  parallel rounds")

	// MIS.
	misPreds := repro.FlipBits(repro.PerfectMIS(g), 12, repro.NewRand(1))
	misErrs, err := repro.MISErrorReport(g, misPreds)
	if err != nil {
		return err
	}
	misSimple, err := repro.RunMIS(g, misPreds, repro.MISSimple, repro.Options{})
	if err != nil {
		return err
	}
	misParallel, err := repro.RunMIS(g, misPreds, repro.MISParallelColoring, repro.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s  %4d  %13d  %15d\n", "mis", misErrs.Eta1, misSimple.Run.Rounds, misParallel.Run.Rounds)

	// Maximal matching.
	mPreds := repro.PerturbMatching(g, repro.PerfectMatching(g), 12, repro.NewRand(2))
	mSimple, err := repro.RunMatching(g, mPreds, repro.MatchingSimple, repro.Options{})
	if err != nil {
		return err
	}
	mParallel, err := repro.RunMatching(g, mPreds, repro.MatchingParallel, repro.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s  %4d  %13d  %15d\n", "matching",
		repro.MatchingEta1(g, mPreds), mSimple.Run.Rounds, mParallel.Run.Rounds)

	// Vertex coloring.
	vPreds := repro.PerturbVColor(g, repro.PerfectVColor(g), 12, repro.NewRand(3))
	vSimple, err := repro.RunVColor(g, vPreds, repro.VColorSimple, repro.Options{})
	if err != nil {
		return err
	}
	vParallel, err := repro.RunVColor(g, vPreds, repro.VColorParallel, repro.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s  %4d  %13d  %15d\n", "vcolor",
		repro.VColorEta1(g, vPreds), vSimple.Run.Rounds, vParallel.Run.Rounds)

	// Edge coloring.
	ePreds := repro.PerturbEColor(g, repro.PerfectEColor(g), 12, repro.NewRand(4))
	eSimple, err := repro.RunEColor(g, ePreds, repro.EColorSimple, repro.Options{})
	if err != nil {
		return err
	}
	eParallel, err := repro.RunEColor(g, ePreds, repro.EColorParallel, repro.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%-12s  %4d  %13d  %15d\n", "ecolor",
		repro.EColorEta1(g, ePreds), eSimple.Run.Rounds, eParallel.Run.Rounds)

	// The distributed checkers (constant rounds) report whether each
	// prediction set was already a correct solution.
	fmt.Println("\n2-round local verification of the predictions:")
	cm, _ := repro.CheckMIS(g, misPreds, repro.Options{})
	cmm, _ := repro.CheckMatching(g, mPreds, repro.Options{})
	cv, _ := repro.CheckVColor(g, vPreds, repro.Options{})
	ce, _ := repro.CheckEColor(g, ePreds, repro.Options{})
	fmt.Printf("mis accept=%v  matching accept=%v  vcolor accept=%v  ecolor accept=%v\n",
		cm.AllAccept, cmm.AllAccept, cv.AllAccept, ce.AllAccept)
	return nil
}
