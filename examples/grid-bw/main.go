// Grid black/white components: the paper's Figure 2 instance and the
// Section 9.1 algorithm. The 4-block pattern makes the whole grid a single
// error component (η₁ = n) yet its black and white components have only four
// nodes each (η_bw = 4); the black/white alternating measure-uniform
// algorithm U_bw exploits exactly that.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("grid    n     eta1  eta_bw  greedy after base  U_bw after base")
	for _, side := range []int{8, 16, 32, 48} {
		g := repro.Grid2D(side, side)
		preds := repro.GridBW(side, side)
		errs, err := repro.MISErrorReport(g, preds)
		if err != nil {
			return err
		}
		greedy, err := repro.RunMIS(g, preds, repro.MISSimpleBase, repro.Options{})
		if err != nil {
			return err
		}
		bw, err := repro.RunMIS(g, preds, repro.MISSimpleBW, repro.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-6s  %-5d %-5d %-7d %-18d %d\n",
			fmt.Sprintf("%dx%d", side, side), g.N(), errs.Eta1, errs.EtaBW,
			greedy.Run.Rounds, bw.Run.Rounds)
	}
	fmt.Println()
	fmt.Println("eta1 equals n on every instance, while eta_bw stays at 4: splitting the")
	fmt.Println("error components by the predicted color is a symmetry-breaking mechanism,")
	fmt.Println("and U_bw's running time tracks the finer measure.")
	return nil
}
