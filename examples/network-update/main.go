// Network update: the paper's Section 1.1 motivating scenario, run as a
// dynamic session. A maximal independent set is computed once; then the
// network drifts day by day (links added and removed in batches). Instead of
// recomputing from scratch, the session re-encodes yesterday's output as
// today's prediction and self-heals only the damaged region, so each day's
// cost tracks the day's churn — not the network size. The example streams a
// week of churn through repro.Session, shows a duplicated delivery being
// absorbed, and contrasts every day's recovery rounds with a from-scratch
// run on the same graph.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	rng := repro.NewRand(42)
	g := repro.GNP(250, 0.025, rng)
	s, err := repro.NewSession(g, "mis", repro.SessionOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "day 0 network: n=%d m=%d; initial MIS in %d rounds\n\n",
		g.N(), g.M(), s.Stats().InitialRounds)

	fmt.Fprintln(w, "day  churn  damaged  residual  recovery  scratch")
	for day := 1; day <= 7; day++ {
		churn := []int{0, 2, 2, 5, 10, 25, 50, 100}[day]
		batch := churnBatch(s.Graph(), day, churn)
		step, err := s.Apply(batch)
		if err != nil {
			return err
		}
		// The from-scratch contrast: the same template, no predictions.
		scratch, err := repro.RunProblem(s.Graph(), "mis", "simple", nil, repro.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%3d  %5d  %7d  %8d  %8d  %7d\n",
			day, step.Updates, step.Damaged, step.Residual, step.Rounds, scratch.Run.Rounds)
	}

	// A flaky transport redelivers day 7's batch: the session deduplicates
	// by sequence number and the graph and output are untouched.
	dup, err := s.Apply(churnBatch(s.Graph(), 7, 100))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nredelivered day 7 batch: outcome=%s\n", dup.Outcome)

	// Convergence check (Observation 7): feeding the session's output back
	// into the from-scratch template as an error-free prediction reproduces
	// it — the incrementally healed MIS is a fixed point.
	out := s.Output()
	replay, err := repro.RunProblem(s.Graph(), "mis", "simple", out, repro.Options{})
	if err != nil {
		return err
	}
	same := len(replay.Output) == len(out)
	for i := range out {
		if same && replay.Output[i] != out[i] {
			same = false
		}
	}
	stats := s.Close()
	fmt.Fprintf(w, "fixed point under replay: %v\n", same)
	fmt.Fprintf(w, "week total: applied=%d duplicates=%d damaged=%d recoveryRounds=%d (one from-scratch run: %d rounds)\n",
		stats.Applied, stats.Duplicates, stats.Damaged, stats.RecoveryRounds, stats.InitialRounds)
	return nil
}

// churnBatch toggles `churn` random node pairs as one update batch,
// deterministically per day: pairs currently non-adjacent are inserted,
// adjacent ones deleted.
func churnBatch(g *repro.Graph, day, churn int) repro.UpdateBatch {
	rng := repro.NewRand(int64(1000 + day))
	b := repro.UpdateBatch{Seq: day}
	for i := 0; i < churn; i++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		op := repro.EdgeInsert
		if g.HasEdge(u, v) {
			op = repro.EdgeDelete
		}
		b.Updates = append(b.Updates, repro.EdgeUpdate{Op: op, U: u, V: v})
	}
	return b
}
