// Network update: the paper's Section 1.1 motivating scenario. A maximal
// independent set was computed on yesterday's network; overnight the network
// drifted (links added and removed). Instead of recomputing from scratch,
// every node reuses its old output as a prediction. The example compares all
// four templates under increasing churn, for both MIS and maximal matching.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := repro.NewRand(42)
	yesterday := repro.GNP(250, 0.025, rng)
	fmt.Printf("yesterday's network: n=%d m=%d\n\n", yesterday.N(), yesterday.M())

	fmt.Println("--- MIS: reuse yesterday's solution as predictions ---")
	fmt.Println("churn  eta1  simple  consecutive  interleaved  parallel  scratch")
	for _, churn := range []int{0, 2, 5, 10, 25, 50, 100} {
		today := flip(yesterday, churn)
		preds := repro.MISFromRelatedGraph(today, yesterday)
		errs, err := repro.MISErrorReport(today, preds)
		if err != nil {
			return err
		}
		rounds := make(map[repro.MISAlgorithm]int)
		for _, alg := range []repro.MISAlgorithm{
			repro.MISSimple, repro.MISConsecutiveDecomp,
			repro.MISInterleavedDecomp, repro.MISParallelColoring,
		} {
			res, err := repro.RunMIS(today, preds, alg, repro.Options{Seed: 9})
			if err != nil {
				return err
			}
			rounds[alg] = res.Run.Rounds
		}
		scratch, err := repro.RunMIS(today, nil, repro.MISGreedy, repro.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %4d  %6d  %11d  %11d  %8d  %7d\n",
			churn, errs.Eta1,
			rounds[repro.MISSimple], rounds[repro.MISConsecutiveDecomp],
			rounds[repro.MISInterleavedDecomp], rounds[repro.MISParallelColoring],
			scratch.Run.Rounds)
	}

	fmt.Println()
	fmt.Println("--- Maximal matching: same story ---")
	fmt.Println("churn  eta1  simple  consecutive")
	for _, churn := range []int{0, 2, 10, 50} {
		today := flip(yesterday, churn)
		// A matching predictor: yesterday's canonical matching restricted to
		// the pairs whose edge survived.
		preds := repro.PerfectMatching(yesterday)
		simple, err := repro.RunMatching(today, preds, repro.MatchingSimple, repro.Options{})
		if err != nil {
			return err
		}
		consecutive, err := repro.RunMatching(today, preds, repro.MatchingConsecutive, repro.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %4d  %6d  %11d\n",
			churn, repro.MatchingEta1(today, preds), simple.Run.Rounds, consecutive.Run.Rounds)
	}
	return nil
}

// flip toggles churn random node pairs, deterministically per churn level.
func flip(g *repro.Graph, churn int) *repro.Graph {
	return repro.FlipEdges(g, churn, repro.NewRand(int64(1000+churn)))
}
