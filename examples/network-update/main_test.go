package main

import (
	"bytes"
	"os"
	"testing"
)

// TestOutputPinned keeps the example's output in sync with the library: the
// session is fully deterministic, so the printed week is byte-stable. On an
// intentional behavior change, regenerate with
//
//	go run ./examples/network-update > examples/network-update/testdata/output.golden
func TestOutputPinned(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/output.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("example output drifted from testdata/output.golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
