// Quickstart: run the Maximal Independent Set problem with predictions on a
// random graph, sweeping the number of corrupted prediction bits, and watch
// the round complexity track the prediction error η instead of the graph
// size — the paper's core promise (consistency + smooth degradation +
// robustness).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := repro.NewRand(1)
	g := repro.GNP(300, 0.02, rng)
	fmt.Printf("graph: n=%d m=%d Δ=%d\n\n", g.N(), g.M(), g.MaxDegree())

	perfect := repro.PerfectMIS(g)
	fmt.Println("flips  eta1  eta2  rounds(simple)  rounds(parallel)  rounds(no predictions)")
	for _, flips := range []int{0, 1, 2, 5, 10, 20, 50, 100, 300} {
		preds := repro.FlipBits(perfect, flips, repro.NewRand(int64(flips)))
		errs, err := repro.MISErrorReport(g, preds)
		if err != nil {
			return err
		}
		simple, err := repro.RunMIS(g, preds, repro.MISSimple, repro.Options{})
		if err != nil {
			return err
		}
		parallel, err := repro.RunMIS(g, preds, repro.MISParallelColoring, repro.Options{})
		if err != nil {
			return err
		}
		scratch, err := repro.RunMIS(g, nil, repro.MISGreedy, repro.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %4d  %4d  %14d  %16d  %22d\n",
			flips, errs.Eta1, errs.Eta2, simple.Run.Rounds, parallel.Run.Rounds, scratch.Run.Rounds)
	}
	fmt.Println("\nWith zero flips every algorithm terminates in 3 rounds (consistency);")
	fmt.Println("rounds then grow with eta, not with n (degradation), and never beyond the")
	fmt.Println("prediction-free baseline's ballpark (robustness).")
	return nil
}
