// Rooted trees: the paper's Section 9.2 specialization. On rooted trees a
// better initialization leaves monochromatic components, the error measure
// η_t (monochromatic upward path length) replaces η₁, and the reference is
// the O(log* d) Goldberg–Plotkin–Shannon 3-coloring — so MIS with
// predictions runs in min{⌈η_t/2⌉+5, O(log* d)} rounds, independent of Δ.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's showcase: a directed line of 3k nodes, white at distance
	// 0 mod 3 from the root. eta1 = 3k, but eta_t = 2.
	fmt.Println("--- mod-3 directed line (paper example) ---")
	fmt.Println("n     eta_t  tree simple  tree parallel  general-graph simple")
	for _, k := range []int{20, 60, 200} {
		r := repro.DirectedLine(3 * k)
		preds := repro.Mod3Line(k)
		simple, err := repro.RunTreeMIS(r, preds, repro.TreeSimple, repro.Options{})
		if err != nil {
			return err
		}
		parallel, err := repro.RunTreeMIS(r, preds, repro.TreeParallel, repro.Options{})
		if err != nil {
			return err
		}
		general, err := repro.RunMIS(r.G, preds, repro.MISSimple, repro.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-5d %5d  %11d  %13d  %20d\n",
			3*k, repro.TreeEtaT(r, preds), simple.Run.Rounds, parallel.Run.Rounds, general.Run.Rounds)
	}

	fmt.Println()
	fmt.Println("--- random rooted trees, corrupted predictions ---")
	fmt.Println("n    flips  eta_t  simple  bound ceil(eta_t/2)+5  parallel")
	for _, n := range []int{100, 400} {
		r := repro.RandomRooted(n, repro.NewRand(int64(n)))
		perfect := repro.PerfectMIS(r.G)
		for _, flips := range []int{0, 2, 8, 32, n} {
			preds := repro.FlipBits(perfect, flips, repro.NewRand(int64(flips)))
			etaT := repro.TreeEtaT(r, preds)
			simple, err := repro.RunTreeMIS(r, preds, repro.TreeSimple, repro.Options{})
			if err != nil {
				return err
			}
			parallel, err := repro.RunTreeMIS(r, preds, repro.TreeParallel, repro.Options{})
			if err != nil {
				return err
			}
			fmt.Printf("%-4d %5d  %5d  %6d  %21d  %8d\n",
				n, flips, etaT, simple.Run.Rounds, (etaT+1)/2+5, parallel.Run.Rounds)
		}
	}
	return nil
}
