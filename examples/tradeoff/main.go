// Trade-off: the paper's Section 10 closes by asking whether the
// consistency/robustness trade-offs known from online algorithms with
// predictions exist in the distributed setting. This example explores the
// obvious knob: the Consecutive Template's measure-uniform budget, set to
// λ·n rounds. Large λ trusts the predictions (linear degradation, but the
// worst case approaches the measure-uniform algorithm's Θ(n)); small λ bails
// out to the decomposition reference early (worst case near the reference,
// but even moderately wrong predictions pay the reference's price).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The adversarial instance for the Greedy lane: a long line with
	// ascending identifiers, where Greedy really needs Θ(n) rounds — long
	// enough that the polylogarithmic-style decomposition reference (whose
	// round count is nearly independent of n) is genuinely faster.
	n := 2048
	g := repro.Line(n)
	perfect := repro.PerfectMIS(g)
	fmt.Printf("instance: %d-node line with ascending identifiers\n\n", n)
	fmt.Println("lambda  k=0  k=4  k=16  k=64  all-wrong")
	for _, lambda := range []float64{0, 0.05, 0.125, 0.25, 0.5, 1.0} {
		fmt.Printf("%6.3f", lambda)
		for _, k := range []int{0, 4, 16, 64} {
			preds := repro.FlipBits(perfect, k, repro.NewRand(int64(k)))
			res, err := repro.RunMISTradeoff(g, preds, lambda, repro.Options{MaxRounds: 64 * n})
			if err != nil {
				return err
			}
			fmt.Printf("  %3d", res.Run.Rounds)
		}
		worst, err := repro.RunMISTradeoff(g, repro.Uniform(n, 1), lambda, repro.Options{MaxRounds: 64 * n})
		if err != nil {
			return err
		}
		fmt.Printf("  %9d\n", worst.Run.Rounds)
	}
	fmt.Println()
	fmt.Println("Reading the table: every lambda is consistent (3 rounds at k=0). With")
	fmt.Println("lambda = 0 the reference runs even for small errors — degradation is poor.")
	fmt.Println("Small positive lambda gets good degradation AND a worst case near the")
	fmt.Println("reference's; large lambda pushes the worst case toward Greedy's Θ(n) —")
	fmt.Println("the same consistency/robustness dial known from online algorithms.")
	return nil
}
