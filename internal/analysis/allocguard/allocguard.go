// Package allocguard turns the engine's 0-allocs/round bench guard into a
// compile-time gate. A function annotated with a
//
//	//dgp:hotpath
//
// doc-comment line (the round loop, the Broadcast fast path, the frontier
// advance) must not contain allocation-inducing constructs:
//
//   - make of a slice, map, or channel, and new(T);
//   - map and slice composite literals, and &T{...} (heap candidate);
//   - append without preallocated-cap evidence — self-append to a field
//     (persistent amortized buffer) and self-append to a local whose
//     def-use chain shows a [:0] truncation or make-with-cap are the
//     recognized-safe shapes;
//   - function literals that capture variables (closure allocation),
//     unless deferred or immediately invoked, and go statements;
//   - calls into fmt and errors, string concatenation, and
//     string<->[]byte conversions;
//   - interface boxing: a concrete non-pointer-shaped value (basic,
//     string, struct, array, slice) assigned, passed, returned, or stored
//     into an interface-typed slot.
//
// Cold exits are exempt: a branch whose block ends by returning or
// panicking, or that is guarded by recover(), is an error/abort path and
// may allocate — that is where the engine builds its wrapped sentinel
// errors. Anything deliberate beyond that carries a
// //lint:allow allocguard (reason) directive.
package allocguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the allocguard check.
var Analyzer = &analysis.Analyzer{
	Name: "allocguard",
	Doc: "//dgp:hotpath functions must be allocation-free at steady state: no " +
		"make/new, map or slice literals, unbounded appends, capturing closures, " +
		"fmt/errors calls, or interface boxing outside cold error exits",
	Run: run,
}

func run(pass *analysis.Pass) error {
	units := dataflow.Functions(pass.Files)
	roots := map[*dataflow.Func][]*dataflow.Func{}
	for _, u := range units {
		r := u
		for r.Parent != nil {
			r = r.Parent
		}
		roots[r] = append(roots[r], u)
	}
	for r, us := range roots {
		if r.Decl == nil || !hotpath(r.Decl) {
			continue
		}
		g := &guard{
			pass: pass,
			name: r.Decl.Name.Name,
			cold: coldRegions(r.Decl.Body),
			du:   dataflow.NewDefUse(pass.TypesInfo, r.Decl.Body),
		}
		g.findSafeLits(r.Decl.Body)
		for _, u := range us {
			g.checkUnit(u)
		}
	}
	return nil
}

// hotpath reports whether fd carries the //dgp:hotpath annotation.
func hotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "dgp:hotpath" {
			return true
		}
	}
	return false
}

// interval is a cold half-open source region.
type interval struct{ lo, hi token.Pos }

// guard checks one annotated declaration and its nested literals.
type guard struct {
	pass     *analysis.Pass
	name     string
	cold     []interval
	du       *dataflow.DefUse
	safeLits map[*ast.FuncLit]bool
	handled  map[*ast.CallExpr]bool // appends already judged at their assignment
}

// coldRegions returns the regions exempt from the allocation gate: blocks
// that end by returning or panicking (error exits) and recover()-guarded
// branches (panic containment).
func coldRegions(body ast.Node) []interval {
	var out []interval
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if exits(n.Body.List) || hasRecover(n.Init) || hasRecover(n.Cond) {
				out = append(out, interval{n.Body.Pos(), n.Body.End()})
			}
			if els, ok := n.Else.(*ast.BlockStmt); ok && exits(els.List) {
				out = append(out, interval{els.Pos(), els.End()})
			}
		case *ast.CaseClause:
			if exits(n.Body) {
				out = append(out, interval{n.Pos(), n.End()})
			}
		}
		return true
	})
	return out
}

// exits reports whether the statement list ends by leaving the function.
func exits(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := dataflow.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}

// hasRecover reports whether n contains a call to the recover builtin.
func hasRecover(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := dataflow.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}

func (g *guard) isCold(pos token.Pos) bool {
	for _, iv := range g.cold {
		if iv.lo <= pos && pos < iv.hi {
			return true
		}
	}
	return false
}

func (g *guard) flag(pos token.Pos, format string, args ...any) {
	if g.isCold(pos) {
		return
	}
	g.pass.Reportf(pos, "hot path %s: %s", g.name, fmt.Sprintf(format, args...))
}

// findSafeLits records literals that run within the call: deferred and
// immediately invoked.
func (g *guard) findSafeLits(body ast.Node) {
	g.safeLits = map[*ast.FuncLit]bool{}
	g.handled = map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := dataflow.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				g.safeLits[lit] = true
			}
		case *ast.CallExpr:
			if lit, ok := dataflow.Unparen(n.Fun).(*ast.FuncLit); ok {
				g.safeLits[lit] = true
			}
		}
		return true
	})
}

// checkUnit walks one unit's own statements.
func (g *guard) checkUnit(u *dataflow.Func) {
	results := resultTypes(g.pass.TypesInfo, u)
	dataflow.InspectOwn(u, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			g.checkAssign(n)
		case *ast.CallExpr:
			g.checkCall(n)
		case *ast.CompositeLit:
			g.checkComposite(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := dataflow.Unparen(n.X).(*ast.CompositeLit); ok {
					g.flag(n.Pos(), "&composite literal is a heap allocation; hoist it into state")
				}
			}
		case *ast.GoStmt:
			g.flag(n.Pos(), "starts a goroutine (allocates); use the persistent worker pool")
		case *ast.FuncLit:
			if !g.safeLits[n] {
				if obj := g.captures(n); obj != nil {
					g.flag(n.Pos(), "closure captures %s (allocates); hoist the function or pass state explicitly", obj.Name())
				}
			}
		case *ast.BinaryExpr:
			g.checkConcat(n)
		case *ast.ReturnStmt:
			g.checkReturn(n, results)
		}
		return true
	})
}

// checkAssign judges appends in context (self-append is the reuse idiom)
// and interface boxing on the assignment.
func (g *guard) checkAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		rhs := s.Rhs[i]
		if call, ok := dataflow.Unparen(rhs).(*ast.CallExpr); ok && g.isBuiltin(call, "append") {
			g.handled[call] = true
			g.checkAppend(call, exprPath(lhs))
		}
		g.checkBox(typeOf(g.pass.TypesInfo, lhs), rhs)
	}
}

// checkCall flags allocating builtins and library calls, then interface
// boxing of arguments.
func (g *guard) checkCall(call *ast.CallExpr) {
	info := g.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		g.checkConversion(call, tv.Type)
		return
	}
	if id, ok := dataflow.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil && obj.Parent() == types.Universe {
			g.checkBuiltin(call, id.Name)
			return
		}
	}
	if pkg, fn := pkgCall(info, call); pkg == "fmt" || pkg == "errors" {
		g.flag(call.Pos(), "calls %s.%s, which allocates; hot paths report via preallocated state", pkg, fn)
		return // boxing of the arguments is subsumed
	}
	g.checkArgBoxing(call)
}

func (g *guard) checkBuiltin(call *ast.CallExpr, name string) {
	switch name {
	case "make":
		if len(call.Args) == 0 {
			return
		}
		switch typeOf(g.pass.TypesInfo, call.Args[0]).Underlying().(type) {
		case *types.Map:
			g.flag(call.Pos(), "make(map) allocates; hoist the map into state and reuse it")
		case *types.Chan:
			g.flag(call.Pos(), "make(chan) allocates; hoist the channel into state")
		case *types.Slice:
			g.flag(call.Pos(), "make(slice) allocates; hoist the buffer into state and truncate-reuse it")
		}
	case "new":
		g.flag(call.Pos(), "new(T) allocates; hoist the value into state")
	case "append":
		if !g.handled[call] {
			g.checkAppend(call, "")
		}
	}
}

// checkAppend enforces the preallocated-cap evidence rule. lhsPath is the
// dotted path of the assignment destination, "" when the append result is
// used some other way.
func (g *guard) checkAppend(call *ast.CallExpr, lhsPath string) {
	if len(call.Args) == 0 {
		return
	}
	base := call.Args[0]
	basePath := exprPath(base)
	if lhsPath != "" && lhsPath == basePath {
		if strings.Contains(basePath, ".") {
			return // self-append to a field: persistent amortized buffer
		}
		if id, ok := dataflow.Unparen(base).(*ast.Ident); ok {
			if g.capEvidence(g.pass.TypesInfo.ObjectOf(id), nil, 0) {
				return // local carved with [:0] or make-with-cap
			}
		}
	}
	g.flag(call.Pos(), "append without preallocated-cap evidence; truncate-reuse a state buffer ([:0]) or size it up front")
}

// capEvidence reports whether obj's def-use chain shows a zero-length
// truncation ([:0]) or a make with explicit capacity.
func (g *guard) capEvidence(obj types.Object, seen map[types.Object]bool, depth int) bool {
	if obj == nil || depth > 4 || seen[obj] {
		return false
	}
	if seen == nil {
		seen = map[types.Object]bool{}
	}
	seen[obj] = true
	for _, def := range g.du.Defs(obj) {
		switch def := dataflow.Unparen(def).(type) {
		case *ast.SliceExpr:
			if isZero(g.pass.TypesInfo, def.High) {
				return true
			}
		case *ast.CallExpr:
			if g.isBuiltin(def, "make") && len(def.Args) == 3 {
				return true
			}
			if g.isBuiltin(def, "append") && len(def.Args) > 0 {
				if id, ok := dataflow.Unparen(def.Args[0]).(*ast.Ident); ok {
					if g.capEvidence(g.pass.TypesInfo.ObjectOf(id), seen, depth+1) {
						return true
					}
				}
			}
		case *ast.Ident:
			if g.capEvidence(g.pass.TypesInfo.ObjectOf(def), seen, depth+1) {
				return true
			}
		}
	}
	return false
}

func (g *guard) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := dataflow.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := g.pass.TypesInfo.ObjectOf(id)
	return obj != nil && obj.Parent() == types.Universe
}

func (g *guard) checkComposite(cl *ast.CompositeLit) {
	tv, ok := g.pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		g.flag(cl.Pos(), "map literal allocates; hoist the map into state")
	case *types.Slice:
		g.flag(cl.Pos(), "slice literal allocates; hoist the buffer into state")
	}
}

func (g *guard) checkConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := typeOf(g.pass.TypesInfo, call.Args[0])
	if src == nil {
		return
	}
	if (isString(target) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(target) && isString(src)) {
		g.flag(call.Pos(), "string<->slice conversion copies its data (allocates)")
	}
}

func (g *guard) checkConcat(e *ast.BinaryExpr) {
	if e.Op != token.ADD {
		return
	}
	tv, ok := g.pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constant folding is free
		return
	}
	if isString(tv.Type) {
		g.flag(e.Pos(), "string concatenation allocates; stage bytes in a reused buffer")
	}
}

// checkArgBoxing flags concrete values passed into interface parameters.
func (g *guard) checkArgBoxing(call *ast.CallExpr) {
	if call.Ellipsis.IsValid() {
		return // spread passes an existing slice, no per-element boxing
	}
	tv, ok := g.pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		g.checkBox(pt, arg)
	}
}

func (g *guard) checkReturn(s *ast.ReturnStmt, results []types.Type) {
	if len(s.Results) != len(results) {
		return
	}
	for i, res := range s.Results {
		g.checkBox(results[i], res)
	}
}

// checkBox flags e when storing it into a slot of type target boxes a
// concrete value into an interface.
func (g *guard) checkBox(target types.Type, e ast.Expr) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	src := typeOf(g.pass.TypesInfo, e)
	if src == nil || !boxes(src) {
		return
	}
	g.flag(e.Pos(), "boxes a %s into an interface (allocates); keep the concrete type or preallocate", src.String())
}

// boxes reports whether storing a value of type t in an interface
// allocates: pointer-shaped kinds (pointers, channels, funcs, maps,
// unsafe pointers) and interfaces themselves do not.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.Invalid
	case *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}

// captures returns a variable n closes over: declared outside the
// literal, not package-scoped, not a struct field.
func (g *guard) captures(lit *ast.FuncLit) types.Object {
	info := g.pass.TypesInfo
	var found types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own local or parameter
		}
		if scope := v.Parent(); scope == types.Universe || scope == g.pass.Pkg.Scope() {
			return true // package-scoped: no capture
		}
		found = v
		return false
	})
	return found
}

// resultTypes returns u's declared result types in order, nil when the
// signature could not be resolved.
func resultTypes(info *types.Info, u *dataflow.Func) []types.Type {
	ft := u.FuncType()
	if ft.Results == nil {
		return nil
	}
	var out []types.Type
	for _, field := range ft.Results.List {
		t := info.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

// typeOf resolves an expression or defining identifier to its type.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	e = dataflow.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// pkgCall resolves pkg.Fn() calls to their package path and name.
func pkgCall(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := dataflow.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// exprPath renders ident/selector chains as dotted paths ("st.buf"), ""
// for anything else.
func exprPath(e ast.Expr) string {
	switch e := dataflow.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// isZero reports whether e is the constant 0.
func isZero(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tv, ok := info.Types[e]
	return ok && tv.Value != nil && tv.Value.String() == "0"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
