package allocguard_test

import (
	"testing"

	"repro/internal/analysis/allocguard"
	"repro/internal/analysis/analysistest"
)

func TestAllocGuard(t *testing.T) {
	analysistest.Run(t, "../testdata", allocguard.Analyzer, "fixtures/hotpath")
}
