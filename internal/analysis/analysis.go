// Package analysis is a self-contained static-analysis framework for the
// repository's domain checks (dgp-lint). It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so the
// analyzers can migrate to the upstream framework verbatim if the dependency
// ever becomes available, but it is built entirely on the standard library:
// packages are loaded with `go list -export` and type-checked through the
// gc export-data importer (see the load subpackage).
//
// Suppression: a diagnostic can be silenced with a justified directive
//
//	//lint:allow <analyzer> (reason)
//
// placed on the flagged line or on the line immediately above it. The reason
// is mandatory; a directive without one is itself a diagnostic, as is a
// directive for an analyzer that ran but flagged nothing there (stale
// suppressions must not accumulate).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	// Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards, shown by `dgp-lint -help`.
	Doc string
	// Run executes the check on one package and reports findings via
	// pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file in Files.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded: dgp-lint
	// checks the shipped tree, and fixture packages never have test files).
	Files []*ast.File
	// Pkg is the package's type information.
	Pkg *types.Package
	// TypesInfo holds the type-checker's recordings for Files.
	TypesInfo *types.Info
	// report receives diagnostics.
	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos is the finding's position.
	Pos token.Position
	// Message describes the violation and, where possible, the fix.
	Message string
}

// Report emits a diagnostic at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  msg,
	})
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// NewPass assembles a Pass; drivers (the multichecker, the vettool mode, and
// analysistest) use it to run one analyzer over one loaded package.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
	}
}
