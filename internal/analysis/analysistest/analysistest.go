// Package analysistest is a golden-file test harness for the dgp-lint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// packages live under testdata/src (their own module, so `go list` resolves
// them offline), and expectations are written next to the code they
// describe as
//
//	code() // want "regexp"
//
// Every diagnostic must be matched by a want on its line, and every want
// must be matched by a diagnostic; lintdirective diagnostics (malformed or
// unused //lint:allow) participate like any other, so suppression behaviour
// is testable in fixtures too.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one parsed want pattern.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture packages (import paths relative to testdata/src)
// and checks analyzer a's diagnostics against the want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcdir, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := load.Load(srcdir, pkgs...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(loaded) == 0 {
		t.Fatalf("no fixture packages matched %v under %s", pkgs, srcdir)
	}
	diags, err := analysis.RunPackages(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	expects := collectWants(t, loaded)
	for _, d := range diags {
		if !matchWant(expects, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

func collectWants(t *testing.T, pkgs []*load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					out = append(out, parseWant(t, pkg, c)...)
				}
			}
		}
	}
	return out
}

func parseWant(t *testing.T, pkg *load.Package, c *ast.Comment) []*expectation {
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*expectation
	for _, q := range quotedRE.FindAllString(m[1], -1) {
		var pat string
		if q[0] == '`' {
			pat = q[1 : len(q)-1]
		} else {
			var err error
			pat, err = strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
	}
	return out
}

func matchWant(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if e.matched || e.file != file || e.line != line {
			continue
		}
		if e.pattern.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}
