// Package bitsize enforces CONGEST accounting: every concrete type used as
// a message payload must implement the bit-size interface (Bits() int,
// i.e. runtime.BitSized). An unsized payload silently flips the run to
// LOCAL-only accounting, so Result.MaxMsgBits stops vouching for the
// algorithm's bandwidth claim — the exact undercount the paper's CONGEST
// results depend on ruling out.
//
// Checked sites: composite literals of the runtime.Out message struct,
// assignments to an Out's Payload field, and the payload argument of
// Broadcast/BroadcastTo. Payloads typed as interfaces are skipped (they are
// checked where their concrete values are built).
package bitsize

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the bitsize check.
var Analyzer = &analysis.Analyzer{
	Name: "bitsize",
	Doc: "every concrete CONGEST payload type must implement Bits() int so " +
		"MaxMsgBits accounting cannot silently undercount",
	Run: run,
}

func run(pass *analysis.Pass) error {
	analysis.Inspect(pass, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			checkOutLiteral(pass, n)
		case *ast.CallExpr:
			checkBroadcast(pass, n)
		case *ast.AssignStmt:
			checkPayloadAssign(pass, n)
		}
		return true
	})
	return nil
}

// isOutStruct reports whether t is (a pointer to) a named struct "Out" with
// To and Payload fields — the engine's outbound message type, matched
// structurally so fixtures need not import the real runtime package.
func isOutStruct(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Out" {
		return nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	hasTo, hasPayload := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "To":
			hasTo = true
		case "Payload":
			hasPayload = true
		}
	}
	if !hasTo || !hasPayload {
		return nil, false
	}
	return st, true
}

func checkOutLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	st, ok := isOutStruct(tv.Type)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Payload" {
				checkPayloadExpr(pass, kv.Value)
			}
			continue
		}
		// Positional literal: match the field index.
		if i < st.NumFields() && st.Field(i).Name() == "Payload" {
			checkPayloadExpr(pass, elt)
		}
	}
}

func checkBroadcast(pass *analysis.Pass, call *ast.CallExpr) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return
	}
	if name != "Broadcast" && name != "BroadcastTo" {
		return
	}
	if _, ok := exprFunc(pass, call.Fun); !ok {
		return
	}
	if len(call.Args) != 2 {
		return
	}
	checkPayloadExpr(pass, call.Args[1])
}

func checkPayloadAssign(pass *analysis.Pass, s *ast.AssignStmt) {
	for i, l := range s.Lhs {
		sel, ok := l.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Payload" {
			continue
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			continue
		}
		if _, isOut := isOutStruct(tv.Type); !isOut {
			continue
		}
		if i < len(s.Rhs) {
			checkPayloadExpr(pass, s.Rhs[i])
		}
	}
}

// checkPayloadExpr reports when the expression's static type is a concrete
// type without a Bits() int method.
func checkPayloadExpr(pass *analysis.Pass, e ast.Expr) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return // checked where the concrete value is constructed
	}
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	if analysis.HasBitsMethod(t) {
		return
	}
	pass.Reportf(e.Pos(), "payload type %s does not implement BitSized (Bits() int): "+
		"the engine downgrades the whole run to LOCAL accounting and MaxMsgBits can no longer "+
		"certify a CONGEST bound; implement Bits, or suppress with //lint:allow bitsize (reason)",
		types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

// exprFunc resolves the called function object, if any.
func exprFunc(pass *analysis.Pass, e ast.Expr) (*types.Func, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		f, ok := pass.TypesInfo.Uses[e].(*types.Func)
		return f, ok
	case *ast.SelectorExpr:
		f, ok := pass.TypesInfo.Uses[e.Sel].(*types.Func)
		return f, ok
	}
	return nil, false
}
