package bitsize_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bitsize"
)

func TestBitSize(t *testing.T) {
	analysistest.Run(t, "../testdata", bitsize.Analyzer, "fixtures/payloads")
}
