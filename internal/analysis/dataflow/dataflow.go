// Package dataflow is the light intraprocedural layer under the dgp-lint
// dataflow analyzers (slabalias, allocguard, emitorder, seqmono). It stays
// deliberately short of SSA: def-use chains over the go/types-resolved AST,
// a slice-alias taint closure, and a package-level function-value flow
// solver (execflow.go) are enough to answer the questions the suite asks —
// "what may this variable hold", "does this value view that backing
// array", "can this body execute on a worker goroutine" — while remaining
// stdlib-only and simple enough to audit by eye.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Func is one unit of analysis: a declared function or method, or a
// function literal. Literals are units of their own, separate from the
// declaration that encloses them, because execution context is per-body —
// a literal handed to a goroutine runs in a different context than the
// function that built it.
type Func struct {
	Decl   *ast.FuncDecl // non-nil for declarations
	Lit    *ast.FuncLit  // non-nil for literals
	Parent *Func         // enclosing unit for literals, nil for declarations
}

// Body returns the unit's statement block.
func (f *Func) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// FuncType returns the unit's signature syntax.
func (f *Func) FuncType() *ast.FuncType {
	if f.Decl != nil {
		return f.Decl.Type
	}
	return f.Lit.Type
}

// Pos returns the unit's source position.
func (f *Func) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Name returns the declared name, or a placeholder naming the enclosing
// declaration for literals.
func (f *Func) Name() string {
	if f.Decl != nil {
		return f.Decl.Name.Name
	}
	for p := f.Parent; p != nil; p = p.Parent {
		if p.Decl != nil {
			return "func literal in " + p.Decl.Name.Name
		}
	}
	return "func literal"
}

// Functions enumerates every unit in files: each declaration followed by
// the literal units nested in it, outermost first.
func Functions(files []*ast.File) []*Func {
	var out []*Func
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = appendUnit(out, &Func{Decl: fd})
		}
	}
	return out
}

// appendUnit appends f and, recursively, the literal units nested in it.
func appendUnit(out []*Func, f *Func) []*Func {
	out = append(out, f)
	InspectOwn(f, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = appendUnit(out, &Func{Lit: lit, Parent: f})
		}
		return true
	})
	return out
}

// InspectOwn walks the nodes that execute as part of f's own body,
// visiting nested function literals as leaves without descending into
// them — each literal is its own unit.
func InspectOwn(f *Func, visit func(ast.Node) bool) {
	ast.Inspect(f.Body(), func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if !visit(n) {
			return false
		}
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}

// Unparen strips any parentheses around e.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// DefUse indexes, for one function body, every expression bound to each
// variable object — short declarations, assignments, and var specs, in
// source order. It is flow-insensitive and walks nested literals too:
// enough to ask "could x ever hold a view of y" or "was x ever carved
// with explicit capacity" without SSA.
type DefUse struct {
	defs map[types.Object][]ast.Expr
}

// NewDefUse builds the index over body.
func NewDefUse(info *types.Info, body ast.Node) *DefUse {
	du := &DefUse{defs: map[types.Object][]ast.Expr{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if id, ok := Unparen(lhs).(*ast.Ident); ok {
					du.bind(info.ObjectOf(id), s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) != len(s.Values) {
				return true
			}
			for i, name := range s.Names {
				du.bind(info.ObjectOf(name), s.Values[i])
			}
		}
		return true
	})
	return du
}

func (du *DefUse) bind(obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	du.defs[obj] = append(du.defs[obj], rhs)
}

// Defs returns the expressions bound to obj, in source order.
func (du *DefUse) Defs(obj types.Object) []ast.Expr { return du.defs[obj] }

// SliceTaint computes, within one function body, the alias closure of a
// set of seed slice objects: direct assignment, re-slicing, and
// append-onto all yield views of the seed's backing array, as does taking
// the address of an element. Indexing alone does not — elements are
// copied out by value — and neither does appending the seed's elements
// onto a fresh destination (append(dst, seed...) copies).
//
// The walk covers the whole body including nested literals: a literal
// that executes within the round (deferred or immediately invoked) works
// on the same backing array, and one that escapes is the caller's finding
// to make.
type SliceTaint struct {
	info    *types.Info
	tainted map[types.Object]bool
}

// NewSliceTaint seeds the given objects and propagates to a fixpoint over
// body's assignments.
func NewSliceTaint(info *types.Info, body ast.Node, seeds ...types.Object) *SliceTaint {
	t := &SliceTaint{info: info, tainted: map[types.Object]bool{}}
	for _, s := range seeds {
		if s != nil {
			t.tainted[s] = true
		}
	}
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					changed = t.taintIdent(lhs, s.Rhs[i]) || changed
				}
			case *ast.ValueSpec:
				if len(s.Names) != len(s.Values) {
					return true
				}
				for i, name := range s.Names {
					changed = t.taintIdent(name, s.Values[i]) || changed
				}
			}
			return true
		})
		if !changed {
			return t
		}
	}
}

func (t *SliceTaint) taintIdent(lhs, rhs ast.Expr) bool {
	id, ok := Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := t.info.ObjectOf(id)
	if obj == nil || t.tainted[obj] || !t.Tainted(rhs) {
		return false
	}
	t.tainted[obj] = true
	return true
}

// Tainted reports whether e evaluates to a view of a seed's backing array.
func (t *SliceTaint) Tainted(e ast.Expr) bool {
	switch e := Unparen(e).(type) {
	case *ast.Ident:
		obj := t.info.ObjectOf(e)
		return obj != nil && t.tainted[obj]
	case *ast.SliceExpr:
		return t.Tainted(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if ix, ok := Unparen(e.X).(*ast.IndexExpr); ok {
				return t.Tainted(ix.X) // pointer into the backing array
			}
		}
	case *ast.CallExpr:
		// append(tainted, ...) may return a view of the same array when
		// spare capacity exists; append(fresh, tainted...) copies elements
		// out and is clean.
		if id, ok := Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if obj := t.info.ObjectOf(id); obj != nil && obj.Parent() == types.Universe {
				return t.Tainted(e.Args[0])
			}
		}
	}
	return false
}

// TaintedObj reports whether obj itself is in the alias closure.
func (t *SliceTaint) TaintedObj(obj types.Object) bool { return t.tainted[obj] }

// IsFuncType reports whether t's underlying type is a function signature.
func IsFuncType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}
