package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ExecFlow is a package-level function-value flow solver: it answers which
// units may execute in a "marked" context (for emitorder: off the run's
// main goroutine). Marking starts from seeds the analyzer supplies —
// goroutine bodies, machine callbacks — and propagates through direct
// calls, calls through function-typed variables and fields, and every
// binding that can carry a function value to such a call site: plain
// assignment, var specs, composite-literal fields, and arguments at
// resolved call sites.
//
// This is exactly the plumbing the engine's worker pool is built from
// (Run → phase closure → runPhase → poolTask.phase field → worker
// goroutine): the solver follows a phase body to the worker without
// modelling the channel itself, because the composite-literal binding at
// the send site and the field call at the receive site meet at the same
// *types.Var.
type ExecFlow struct {
	info *types.Info

	funcs []*Func
	byObj map[types.Object]*Func
	byLit map[*ast.FuncLit]*Func

	bindFns  map[types.Object][]*Func        // obj ← function body
	bindObjs map[types.Object][]types.Object // obj ← another function-typed obj

	calls map[*Func][]*Func   // direct calls to package-local bodies
	sites map[*Func][]objSite // calls through function-typed objects
	gos   []goSite            // go-statement launch sites

	bound map[boundKey]bool // call-site args already bound to a target

	marked   map[*Func]string
	sinkWhy  map[types.Object]string
	sinkList []types.Object
}

// objSite is one call through a function-typed variable, field, or
// parameter.
type objSite struct {
	obj  types.Object
	args []ast.Expr
	pos  token.Pos
}

// goSite is one goroutine launch.
type goSite struct {
	fn  *Func        // go func(){...}() / go pkgFn()
	obj types.Object // go someVar()
}

// boundKey dedupes argument binding per (call site, resolved target).
type boundKey struct {
	pos token.Pos
	fn  *Func
}

// NewExecFlow builds the flow graph for one package.
func NewExecFlow(info *types.Info, files []*ast.File) *ExecFlow {
	x := &ExecFlow{
		info:     info,
		byObj:    map[types.Object]*Func{},
		byLit:    map[*ast.FuncLit]*Func{},
		bindFns:  map[types.Object][]*Func{},
		bindObjs: map[types.Object][]types.Object{},
		calls:    map[*Func][]*Func{},
		sites:    map[*Func][]objSite{},
		bound:    map[boundKey]bool{},
		marked:   map[*Func]string{},
		sinkWhy:  map[types.Object]string{},
	}
	x.funcs = Functions(files)
	for _, f := range x.funcs {
		if f.Decl != nil {
			if obj := info.ObjectOf(f.Decl.Name); obj != nil {
				x.byObj[obj] = f
			}
		} else {
			x.byLit[f.Lit] = f
		}
	}
	for _, f := range x.funcs {
		x.scan(f)
	}
	return x
}

// Funcs returns every unit in the package, declarations before the
// literals nested in them.
func (x *ExecFlow) Funcs() []*Func { return x.funcs }

// scan records f's bindings, call edges, and goroutine launches.
func (x *ExecFlow) scan(f *Func) {
	InspectOwn(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				x.bindLValue(lhs, n.Rhs[i])
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, name := range n.Names {
				x.bindLValue(name, n.Values[i])
			}
		case *ast.CompositeLit:
			x.scanComposite(n)
		case *ast.CallExpr:
			fn, obj := x.value(n.Fun)
			switch {
			case fn != nil:
				x.calls[f] = append(x.calls[f], fn)
				x.bindArgs(fn, n.Args)
			case obj != nil:
				x.sites[f] = append(x.sites[f], objSite{obj: obj, args: n.Args, pos: n.Pos()})
			}
		case *ast.GoStmt:
			gfn, gobj := x.value(n.Call.Fun)
			x.gos = append(x.gos, goSite{fn: gfn, obj: gobj})
		}
		return true
	})
}

// scanComposite records function values stored into struct-literal fields:
// the binding meets any later call through the same field object, which is
// how work travels through channels of task structs.
func (x *ExecFlow) scanComposite(cl *ast.CompositeLit) {
	tv, ok := x.info.Types[cl]
	if !ok {
		return
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				x.bindObj(x.info.ObjectOf(key), kv.Value)
			}
			continue
		}
		if i < st.NumFields() {
			x.bindObj(st.Field(i), elt)
		}
	}
}

// bindLValue records value flowing into the object behind lhs (a local,
// or a field via selector).
func (x *ExecFlow) bindLValue(lhs, value ast.Expr) {
	switch lhs := Unparen(lhs).(type) {
	case *ast.Ident:
		x.bindObj(x.info.ObjectOf(lhs), value)
	case *ast.SelectorExpr:
		x.bindObj(x.info.ObjectOf(lhs.Sel), value)
	}
}

// bindObj records value flowing into obj, if value carries a function.
func (x *ExecFlow) bindObj(obj types.Object, value ast.Expr) bool {
	if obj == nil {
		return false
	}
	fn, vobj := x.value(value)
	switch {
	case fn != nil:
		x.bindFns[obj] = append(x.bindFns[obj], fn)
		return true
	case vobj != nil:
		x.bindObjs[obj] = append(x.bindObjs[obj], vobj)
		return true
	}
	return false
}

// bindArgs flows function-valued arguments into fn's parameters. It
// reports whether any new binding was recorded.
func (x *ExecFlow) bindArgs(fn *Func, args []ast.Expr) bool {
	params := x.paramObjs(fn)
	changed := false
	for i, arg := range args {
		if i >= len(params) || params[i] == nil {
			break
		}
		changed = x.bindObj(params[i], arg) || changed
	}
	return changed
}

// paramObjs returns fn's parameter objects in declaration order (nil for
// unnamed parameters, which still consume a position).
func (x *ExecFlow) paramObjs(fn *Func) []types.Object {
	ft := fn.FuncType()
	if ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range field.Names {
			out = append(out, x.info.ObjectOf(name))
		}
	}
	return out
}

// value resolves e to a package-local function body, or to a
// function-typed object (variable, field, or parameter), or to neither.
func (x *ExecFlow) value(e ast.Expr) (*Func, types.Object) {
	switch e := Unparen(e).(type) {
	case *ast.FuncLit:
		return x.byLit[e], nil
	case *ast.Ident:
		return x.valueObj(x.info.ObjectOf(e))
	case *ast.SelectorExpr:
		return x.valueObj(x.info.ObjectOf(e.Sel))
	}
	return nil, nil
}

func (x *ExecFlow) valueObj(obj types.Object) (*Func, types.Object) {
	switch obj := obj.(type) {
	case *types.Func:
		return x.byObj[obj], nil
	case *types.Var:
		if IsFuncType(obj.Type()) {
			return nil, obj
		}
	}
	return nil, nil
}

// Mark seeds f as executing in the marked context for the given reason.
func (x *ExecFlow) Mark(f *Func, reason string) { x.mark(f, reason) }

// MarkGo seeds every goroutine launch site: bodies started with a go
// statement run off the launching goroutine by definition.
func (x *ExecFlow) MarkGo(reason string) {
	for _, g := range x.gos {
		if g.fn != nil {
			x.mark(g.fn, reason)
		}
		if g.obj != nil {
			x.sink(g.obj, reason)
		}
	}
}

// Marked reports whether f may execute in the marked context, and the
// seed reason that reached it.
func (x *ExecFlow) Marked(f *Func) (string, bool) {
	why, ok := x.marked[f]
	return why, ok
}

func (x *ExecFlow) mark(f *Func, why string) bool {
	if f == nil {
		return false
	}
	if _, ok := x.marked[f]; ok {
		return false
	}
	x.marked[f] = why
	return true
}

func (x *ExecFlow) sink(obj types.Object, why string) bool {
	if obj == nil {
		return false
	}
	if _, ok := x.sinkWhy[obj]; ok {
		return false
	}
	x.sinkWhy[obj] = why
	x.sinkList = append(x.sinkList, obj)
	return true
}

// Solve propagates markings to a fixpoint.
func (x *ExecFlow) Solve() {
	for changed := true; changed; {
		changed = false
		// A call through a function-typed object is a call to every body
		// that can flow into the object: bind the site's arguments to those
		// bodies' parameters wherever the site appears, marked or not —
		// the binding itself is context-free.
		for _, f := range x.funcs {
			for _, site := range x.sites[f] {
				for _, target := range x.resolve(site.obj, nil) {
					if x.bindArgsOnce(site, target) {
						changed = true
					}
				}
			}
		}
		// Marked body → direct callees marked; objects it calls through
		// become sinks and their bodies marked.
		for _, f := range x.funcs {
			why, ok := x.marked[f]
			if !ok {
				continue
			}
			for _, callee := range x.calls[f] {
				changed = x.mark(callee, why) || changed
			}
			for _, site := range x.sites[f] {
				changed = x.sink(site.obj, why) || changed
				for _, target := range x.resolve(site.obj, nil) {
					changed = x.mark(target, why) || changed
				}
			}
		}
		// Sunk object → every body that can flow into it is marked.
		for i := 0; i < len(x.sinkList); i++ {
			obj := x.sinkList[i]
			for _, target := range x.resolve(obj, nil) {
				changed = x.mark(target, x.sinkWhy[obj]) || changed
			}
		}
	}
}

// resolve returns every body that can flow into obj, following chained
// object-to-object bindings.
func (x *ExecFlow) resolve(obj types.Object, seen map[types.Object]bool) []*Func {
	if seen[obj] {
		return nil
	}
	if seen == nil {
		seen = map[types.Object]bool{}
	}
	seen[obj] = true
	out := append([]*Func(nil), x.bindFns[obj]...)
	for _, o2 := range x.bindObjs[obj] {
		out = append(out, x.resolve(o2, seen)...)
	}
	return out
}

func (x *ExecFlow) bindArgsOnce(site objSite, target *Func) bool {
	k := boundKey{pos: site.pos, fn: target}
	if x.bound[k] {
		return false
	}
	x.bound[k] = true
	return x.bindArgs(target, site.args)
}
