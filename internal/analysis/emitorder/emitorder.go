// Package emitorder guards the trace determinism contract: every obs event
// is emitted from the engine's main run goroutine, so the seq and pool
// engine modes produce byte-identical streams. Machines never emit — they
// stage per-node annotations through Env.Annotate, and the engine drains
// the staging buffers after the round barrier in node-index order.
//
// The analyzer computes, per package, which function bodies may execute
// off the main goroutine — seeded by go statements and by machine
// callbacks (Send/Receive methods taking *Env or *StageCtx), propagated
// through direct calls, function-valued assignments, composite-literal
// fields, and call arguments (the exact plumbing the worker pool uses to
// hand phase closures to its workers) — and flags any call to
// (*Recorder).Emit reachable there. Recorder is matched structurally by
// type name, so fixtures need no obs import.
package emitorder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the emitorder check.
var Analyzer = &analysis.Analyzer{
	Name: "emitorder",
	Doc: "obs events may only be emitted from the main run goroutine: no " +
		"(*Recorder).Emit call may be reachable from a goroutine body or a " +
		"machine callback — stage per-node data with Env.Annotate and let the " +
		"engine drain it after the round barrier",
	Run: run,
}

// obsPkgs is the observability layer itself: its Recorder methods are the
// funnel this analyzer protects, not a violation.
var obsPkgs = []string{"internal/obs"}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !analysis.PathInScope(path, analysis.DeterministicPkgs) ||
		analysis.PathInScope(path, obsPkgs) {
		return nil
	}
	x := dataflow.NewExecFlow(pass.TypesInfo, pass.Files)
	x.MarkGo("launched with a go statement")
	for _, f := range x.Funcs() {
		if f.Decl != nil && isMachineCallback(pass, f.Decl) {
			x.Mark(f, "a machine callback (runs inside worker-pool chunks)")
		}
	}
	x.Solve()
	for _, f := range x.Funcs() {
		why, ok := x.Marked(f)
		if !ok {
			continue
		}
		reportEmits(pass, f, why)
	}
	return nil
}

// isMachineCallback reports whether fd is a machine's Send/Receive method
// (first parameter *Env or *StageCtx), matched structurally like
// machinepurity does.
func isMachineCallback(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || (fd.Name.Name != "Send" && fd.Name.Name != "Receive") {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	t := pass.TypesInfo.Types[params.List[0].Type].Type
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Env" || name == "StageCtx"
}

// reportEmits flags Recorder.Emit calls in f's own body.
func reportEmits(pass *analysis.Pass, f *dataflow.Func, why string) {
	dataflow.InspectOwn(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRecorderEmit(pass, call) {
			pass.Reportf(call.Pos(),
				"obs emission off the main goroutine: %s calls (*Recorder).Emit but is %s; "+
					"stage per-node data with Env.Annotate and emit after the round barrier",
				f.Name(), why)
		}
		return true
	})
}

// isRecorderEmit matches method calls named Emit whose receiver's type is
// named Recorder (any pointer depth).
func isRecorderEmit(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := dataflow.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Recorder"
}
