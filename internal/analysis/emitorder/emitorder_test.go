package emitorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/emitorder"
)

func TestEmitOrder(t *testing.T) {
	analysistest.Run(t, "../testdata", emitorder.Analyzer, "fixtures/internal/runtime")
}
