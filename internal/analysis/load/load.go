// Package load turns `go list` package patterns into parsed, type-checked
// packages using only the standard library. It shells out to
// `go list -export -deps -json`, which compiles dependencies and reports the
// export-data file for every package in the build; each target package is
// then parsed with go/parser and type-checked with go/types through the gc
// export-data importer. This replaces golang.org/x/tools/go/packages, which
// is unavailable in this build environment.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked target package.
type Package struct {
	// ImportPath is the package's canonical import path.
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset positions the package's files (shared across one Load).
	Fset *token.FileSet
	// Files are the parsed non-test Go files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records the type-checker's findings for Files.
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir into type-checked
// packages. Dependencies are consumed as compiled export data, so only the
// matched packages themselves are parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	// With -e the go command reports per-package errors in the JSON stream
	// instead of failing the list. Surface broken packages up front,
	// attributed to their own import path: a broken dependency would
	// otherwise be skipped by the DepOnly filter below and resurface during
	// type-checking of some downstream target as a bare "no export data"
	// failure naming the wrong package.
	for _, p := range listed {
		if p.Error != nil && (p.DepOnly || p.Standard) {
			return nil, fmt.Errorf("load %s (dependency): %s", p.ImportPath, p.Error.Err)
		}
	}
	// Export map for the importer: canonical path -> export-data file.
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (the package failed to compile or was missing from the go list walk)", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("load %s: cgo packages are not supported", lp.ImportPath)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,GoFiles,CgoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errBuf.String())
	}
	var listed []listedPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
