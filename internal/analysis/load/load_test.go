package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/load"
)

// writeTree lays out a throwaway module under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadAttributesBrokenDependency pins the error-attribution contract:
// when a dependency of the matched pattern is broken, the load error names
// the dependency's import path — not a downstream target, and not a bare
// "no export data" from inside the importer.
func TestLoadAttributesBrokenDependency(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":       "module brokentest\n\ngo 1.22\n",
		"dep/dep.go":   "package dep\n\nfunc F() int { return 1 // syntax error: unclosed body\n",
		"root/root.go": "package root\n\nimport \"brokentest/dep\"\n\nfunc G() int { return dep.F() }\n",
	})
	_, err := load.Load(dir, "./root")
	if err == nil {
		t.Fatal("Load succeeded; want an error naming the broken dependency")
	}
	if !strings.Contains(err.Error(), "brokentest/dep") {
		t.Fatalf("load error does not name the broken dependency's import path:\n%v", err)
	}
}

// TestLoadAttributesBrokenTarget checks the same for a directly matched
// package: the error carries the target's import path.
func TestLoadAttributesBrokenTarget(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":       "module brokentest\n\ngo 1.22\n",
		"bad/bad.go":   "package bad\n\nfunc F( {}\n",
		"good/good.go": "package good\n\nfunc G() int { return 1 }\n",
	})
	_, err := load.Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded; want an error naming the broken package")
	}
	if !strings.Contains(err.Error(), "brokentest/bad") {
		t.Fatalf("load error does not name the broken package's import path:\n%v", err)
	}
}

// TestLoadCleanModule is the happy-path control: a well-formed module loads
// with its files parsed and type-checked.
func TestLoadCleanModule(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":     "module cleantest\n\ngo 1.22\n",
		"pkg/pkg.go": "package pkg\n\nfunc F() int { return 1 }\n",
	})
	pkgs, err := load.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "cleantest/pkg" {
		t.Fatalf("got %d packages, want exactly cleantest/pkg", len(pkgs))
	}
	if pkgs[0].Types == nil || len(pkgs[0].Files) != 1 {
		t.Fatal("package loaded without types or files")
	}
}
