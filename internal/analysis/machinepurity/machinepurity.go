// Package machinepurity enforces the LOCAL model on machine code: a node's
// Send/Receive may touch per-node state only. The engine runs machines on a
// persistent worker pool, so a machine that writes state captured from an
// enclosing scope, or reaches for sync/atomic/channel primitives, is not
// just a model violation — it is a data race.
//
// Checked functions: methods named Send or Receive whose first parameter is
// a *Env or *StageCtx (the runtime.Machine and core.StageMachine
// contracts), including any function literals declared inside them, and
// function literals passed as Factory/StageFactory/MemoryFactory arguments
// (factories run once on the main goroutine, so only concurrency
// primitives — not captured-state writes — are flagged there).
package machinepurity

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the machinepurity check.
var Analyzer = &analysis.Analyzer{
	Name: "machinepurity",
	Doc: "machine Send/Receive bodies must not write captured shared state or use " +
		"sync/atomic/channel primitives (LOCAL model; pool execution makes it a race)",
	Run: run,
}

// envParamNames are the context types that mark a machine method.
var envParamNames = map[string]bool{"Env": true, "StageCtx": true}

// factoryTypeNames are the named function types whose literals are checked
// for concurrency primitives.
var factoryTypeNames = map[string]bool{"Factory": true, "StageFactory": true, "MemoryFactory": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isMachineMethod(pass, fd) {
				checkBody(pass, fd.Body, fd, fmt.Sprintf("%s.%s", recvName(fd), fd.Name.Name), true)
			}
			// Factory literals may appear in any function.
			ast.Inspect(fd, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkFactoryArgs(pass, call)
				return true
			})
		}
	}
	return nil
}

// isMachineMethod reports whether fd is a method named Send or Receive
// whose first parameter is *Env or *StageCtx.
func isMachineMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || (fd.Name.Name != "Send" && fd.Name.Name != "Receive") {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[params.List[0].Type]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && envParamNames[named.Obj().Name()]
}

func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "?"
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

// checkFactoryArgs flags concurrency primitives inside function literals
// passed where a Factory/StageFactory/MemoryFactory parameter is expected.
func checkFactoryArgs(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok || i >= sig.Params().Len() {
			continue
		}
		named, ok := sig.Params().At(i).Type().(*types.Named)
		if !ok || !factoryTypeNames[named.Obj().Name()] {
			continue
		}
		checkBody(pass, lit.Body, lit, named.Obj().Name()+" literal", false)
	}
}

// checkBody walks one machine (or factory) body. When strict is true,
// writes to variables declared outside fn are flagged too.
func checkBody(pass *analysis.Pass, bodyNode *ast.BlockStmt, fn ast.Node, label string, strict bool) {
	ast.Inspect(bodyNode, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "%s sends on a channel: machines are per-node state machines; "+
				"the engine owns all communication", label)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "%s receives from a channel: machines may only consume their inbox", label)
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s spawns a goroutine: machine code runs on the engine's worker pool "+
				"and must stay single-threaded", label)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "%s uses select: no channel operations in machine code", label)
		case *ast.CallExpr:
			checkCall(pass, n, label)
		case *ast.AssignStmt:
			if strict {
				for _, l := range n.Lhs {
					checkWrite(pass, l, fn, label)
				}
			}
		case *ast.IncDecStmt:
			if strict {
				checkWrite(pass, n.X, fn, label)
			}
		}
		return true
	})
}

// checkCall flags sync/atomic package functions, methods on sync types, and
// channel construction.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, label string) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isb := pass.TypesInfo.Uses[id].(*types.Builtin); isb && b.Name() == "close" {
			pass.Reportf(call.Pos(), "%s closes a channel: no channel operations in machine code", label)
		}
		if b, isb := pass.TypesInfo.Uses[id].(*types.Builtin); isb && b.Name() == "make" && len(call.Args) > 0 {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(call.Pos(), "%s makes a channel: machines must not construct concurrency state", label)
				}
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "sync", "sync/atomic":
		pass.Reportf(call.Pos(), "%s calls %s.%s: sync/atomic primitives are forbidden in machine code "+
			"(per-node state needs no locks; needing one means state is shared)",
			label, fn.Pkg().Name(), fn.Name())
	}
}

// checkWrite flags assignments whose root identifier resolves to a variable
// declared outside fn (captured shared state). Writes through the receiver
// or parameters are per-node by construction and stay legal.
func checkWrite(pass *analysis.Pass, lhs ast.Expr, fn ast.Node, label string) {
	root := lhs
	for {
		switch r := root.(type) {
		case *ast.IndexExpr:
			root = r.X
			continue
		case *ast.StarExpr:
			root = r.X
			continue
		case *ast.SelectorExpr:
			root = r.X
			continue
		case *ast.ParenExpr:
			root = r.X
			continue
		}
		break
	}
	id, ok := root.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	// Declared inside fn (including receiver and parameters, whose
	// positions sit in the signature) => per-node state.
	if v.Pos() >= fn.Pos() && v.Pos() < fn.End() {
		return
	}
	pass.Reportf(lhs.Pos(), "%s writes %s, which is declared outside the machine: captured shared state "+
		"violates the LOCAL model and races under the worker pool; "+
		"keep state in the machine struct, or suppress with //lint:allow machinepurity (reason)",
		label, id.Name)
}
