package machinepurity_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/machinepurity"
)

func TestMachinePurity(t *testing.T) {
	analysistest.Run(t, "../testdata", machinepurity.Analyzer, "fixtures/machines")
}
