// Package maporder flags range statements over maps whose bodies have
// order-dependent effects in packages that must be bit-for-bit
// reproducible. Go randomizes map iteration order, so any map range that
// appends to a slice, returns a loop-dependent value, writes an outer
// variable, or calls out feeds that randomness into graph construction,
// routing, or output ordering — exactly the bug class fixed in the
// BarabasiAlbert/FlipEdges generators (PR 1).
//
// Order-independent bodies are accepted: integer counters, stores keyed by
// the loop variables, delete, existence checks that return constants, and
// the collect-then-sort idiom (append the keys to a slice that is sorted
// later in the same function).
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration with order-dependent effects in deterministic packages " +
		"(engine, graph, framework, algorithms); iterate over sorted keys instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathInScope(pass.Pkg.Path(), analysis.DeterministicPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		// Track the innermost enclosing function body for the
		// collect-then-sort lookahead.
		var funcStack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, n)
				ast.Inspect(body(n), walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				checkRange(pass, n, enclosing(funcStack))
			}
			return true
		}
		for _, decl := range f.Decls {
			ast.Inspect(decl, walk)
		}
	}
	return nil
}

func body(n ast.Node) ast.Node {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return &ast.BlockStmt{}
		}
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return n
}

func enclosing(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// ctx carries the classification context for one map range.
type ctx struct {
	pass *analysis.Pass
	rs   *ast.RangeStmt
	// loopVars are the key/value objects of the range statement.
	loopVars map[types.Object]bool
	// fn is the enclosing function node (for the sorted-later lookahead).
	fn ast.Node
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, fn ast.Node) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	c := &ctx{pass: pass, rs: rs, loopVars: map[types.Object]bool{}, fn: fn}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				c.loopVars[obj] = true
			}
		}
	}
	if why := c.classifyBlock(rs.Body); why != "" {
		pass.Reportf(rs.Pos(), "map iteration order is randomized but this loop %s; "+
			"iterate over sorted keys, or suppress with //lint:allow maporder (reason)", why)
	}
}

// classifyBlock returns "" when every statement is order-independent, else a
// description of the first order-dependent statement.
func (c *ctx) classifyBlock(b *ast.BlockStmt) string {
	for _, s := range b.List {
		if why := c.classify(s); why != "" {
			return why
		}
	}
	return ""
}

func (c *ctx) classify(s ast.Stmt) string {
	switch s := s.(type) {
	case nil:
		return ""
	case *ast.BlockStmt:
		return c.classifyBlock(s)
	case *ast.IfStmt:
		if why := c.classify(s.Init); why != "" {
			return why
		}
		if why := c.classifyBlock(s.Body); why != "" {
			return why
		}
		return c.classify(s.Else)
	case *ast.SwitchStmt:
		return c.classifyCases(s.Body)
	case *ast.TypeSwitchStmt:
		return c.classifyCases(s.Body)
	case *ast.ForStmt:
		if why := c.classify(s.Init); why != "" {
			return why
		}
		if why := c.classify(s.Post); why != "" {
			return why
		}
		return c.classifyBlock(s.Body)
	case *ast.RangeStmt:
		// A nested map range is reported on its own; classify the body
		// relative to this loop either way.
		return c.classifyBlock(s.Body)
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			return "jumps with goto"
		}
		return ""
	case *ast.DeclStmt:
		return ""
	case *ast.IncDecStmt:
		if isInteger(c.pass, s.X) {
			return ""
		}
		return "updates a non-integer accumulator (non-commutative)"
	case *ast.AssignStmt:
		return c.classifyAssign(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(c.pass, call, "delete") {
			return ""
		}
		return "calls a function with effects that depend on iteration order"
	case *ast.ReturnStmt:
		// Returning a value that does not mention the loop variables is the
		// any/all early-exit idiom: whichever iteration fires, the result is
		// the same. Returning a loop variable means first-match-wins.
		for _, r := range s.Results {
			if !isConstantish(r) && c.mentionsLoopVar(r) {
				return "returns a loop-dependent value (first match wins nondeterministically)"
			}
		}
		return ""
	default:
		// send, go, defer, select, labeled, goto targets, ...
		return "contains a statement the checker cannot prove order-independent"
	}
}

func (c *ctx) classifyCases(b *ast.BlockStmt) string {
	for _, s := range b.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, st := range cc.Body {
			if why := c.classify(st); why != "" {
				return why
			}
		}
	}
	return ""
}

// classifyAssign accepts commutative integer updates, stores keyed by the
// loop variables, writes to loop-local temporaries, and the
// collect-then-sort idiom.
func (c *ctx) classifyAssign(s *ast.AssignStmt) string {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, l := range s.Lhs {
			if !isInteger(c.pass, l) {
				return "accumulates into a non-integer (non-commutative update)"
			}
		}
		return ""
	case token.ASSIGN, token.DEFINE:
		// keys = append(keys, ...) is fine when keys is sorted afterwards.
		if ok, why := c.collectThenSort(s); ok {
			return ""
		} else if why != "" {
			return why
		}
		// Assigning constants is idempotent (any iteration writes the same
		// value), which accepts the found=true / win=false any/all idiom.
		if allConstantish(s.Rhs) {
			return ""
		}
		for _, l := range s.Lhs {
			if why := c.classifyWrite(l); why != "" {
				return why
			}
		}
		return ""
	default:
		return "updates state with a non-commutative operator"
	}
}

func (c *ctx) classifyWrite(l ast.Expr) string {
	switch l := l.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return ""
		}
		obj := c.pass.TypesInfo.Defs[l]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[l]
		}
		if obj != nil && obj.Pos() >= c.rs.Pos() && obj.Pos() < c.rs.End() {
			return "" // loop-local temporary
		}
		return "overwrites an outer variable (last iteration wins nondeterministically)"
	case *ast.IndexExpr:
		if c.mentionsLoopVar(l.Index) {
			return "" // store keyed by the loop variable: one write per key
		}
		if _, isMap := typeOf(c.pass, l.X).(*types.Map); isMap && c.mentionsLoopVar(l) {
			return ""
		}
		return "stores at an index unrelated to the loop key (write order leaks)"
	default:
		return "writes through a reference the checker cannot prove per-key"
	}
}

// collectThenSort recognizes x = append(x, args...) where args mention only
// loop variables and x is sorted later in the enclosing function. Returns
// (true, "") on the accepted idiom, (false, reason) on an append that is
// NOT sorted later, and (false, "") when s is not an append at all.
func (c *ctx) collectThenSort(s *ast.AssignStmt) (bool, string) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false, ""
	}
	targetPath := exprPath(s.Lhs[0])
	if targetPath == "" {
		return false, ""
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(c.pass, call, "append") || len(call.Args) == 0 {
		return false, ""
	}
	if exprPath(call.Args[0]) != targetPath {
		return false, ""
	}
	if c.sortedLater(targetPath) {
		return true, ""
	}
	return false, "appends to " + targetPath + " in map order without sorting it afterwards"
}

// sortedLater reports whether the collected slice (identified by its
// dotted path, e.g. "m.fresh") is passed to a sort call after the range
// statement, within the enclosing function.
func (c *ctx) sortedLater(targetPath string) bool {
	if c.fn == nil {
		return false
	}
	found := false
	ast.Inspect(body(c.fn), func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < c.rs.End() {
			return true
		}
		if !c.isSortCall(call) || len(call.Args) == 0 {
			return true
		}
		mentions := false
		ast.Inspect(call.Args[0], func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok && exprPath(e) == targetPath {
				mentions = true
			}
			return !mentions
		})
		if mentions {
			found = true
		}
		return !found
	})
	return found
}

// exprPath renders an ident/selector chain as a dotted path ("m.fresh"),
// or "" for anything else.
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// isSortCall recognizes anything from the sort or slices packages plus
// user-defined helpers whose name mentions Sort.
func (c *ctx) isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		if id, ok := call.Fun.(*ast.Ident); ok {
			return strings.Contains(id.Name, "Sort")
		}
		return false
	}
	if fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort", "slices":
			return true
		}
	}
	return strings.Contains(sel.Sel.Name, "Sort")
}

func allConstantish(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !isConstantish(e) {
			return false
		}
	}
	return len(exprs) > 0
}

func (c *ctx) mentionsLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.loopVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	b, ok := typeOf(pass, e).(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isb := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isb
}

func isConstantish(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return e.Name == "true" || e.Name == "false" || e.Name == "nil"
	case *ast.UnaryExpr:
		return isConstantish(e.X)
	}
	return false
}
