package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file      string
	line      int
	analyzer  string
	reason    string
	used      bool
	malformed string // non-empty: why the directive is unusable
}

var allowRE = regexp.MustCompile(`^lint:allow\s+([A-Za-z0-9_-]+)\s*(?:\((.*)\))?\s*$`)

// Run loads patterns relative to dir and applies every analyzer, returning
// the surviving diagnostics sorted by position. Suppressions
// (//lint:allow <analyzer> (reason), on the flagged line or the line above)
// are honoured; malformed or unused directives are themselves reported.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers)
}

// RunPackages applies every analyzer to every loaded package. Exposed for
// the analysistest harness, which loads fixture packages itself.
func RunPackages(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		directives := collectAllows(pkg)
		var diags []Diagnostic
		sink := func(d Diagnostic) { diags = append(diags, d) }
		for _, a := range analyzers {
			pass := NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, sink)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
		all = append(all, applyAllows(diags, directives, ran)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// collectAllows parses every //lint:allow directive in the package.
func collectAllows(pkg *load.Package) []*allowDirective {
	var out []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // block comments don't carry directives
				}
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &allowDirective{file: pos.Filename, line: pos.Line}
				m := allowRE.FindStringSubmatch(text)
				switch {
				case m == nil:
					d.malformed = "cannot parse directive"
				case strings.TrimSpace(m[2]) == "":
					d.analyzer = m[1]
					d.malformed = "missing (reason): every suppression must say why the violation is acceptable"
				default:
					d.analyzer = m[1]
					d.reason = strings.TrimSpace(m[2])
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyAllows drops diagnostics matched by a well-formed directive on the
// same or preceding line, then reports directive problems: malformed
// directives always, unused ones when their analyzer actually ran.
func applyAllows(diags []Diagnostic, directives []*allowDirective, ran map[string]bool) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.malformed != "" || dir.analyzer != d.Analyzer || dir.file != d.Pos.Filename {
				continue
			}
			if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range directives {
		switch {
		case dir.malformed != "":
			kept = append(kept, Diagnostic{
				Analyzer: "lintdirective",
				Pos:      position(dir),
				Message:  fmt.Sprintf("malformed //lint:allow directive: %s", dir.malformed),
			})
		case !dir.used && ran[dir.analyzer]:
			kept = append(kept, Diagnostic{
				Analyzer: "lintdirective",
				Pos:      position(dir),
				Message:  fmt.Sprintf("unused //lint:allow %s directive: nothing to suppress here", dir.analyzer),
			})
		}
	}
	return kept
}

func position(d *allowDirective) (p token.Position) {
	p.Filename = d.file
	p.Line = d.line
	p.Column = 1
	return p
}

// Inspect walks every file of the pass with fn (ast.Inspect semantics).
func Inspect(pass *Pass, fn func(ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}
