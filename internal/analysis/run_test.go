package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/maporder"
)

// TestDirectiveBookkeeping checks the //lint:allow lifecycle on the
// directives fixture: malformed directives are always reported, and a
// well-formed directive whose analyzer ran but suppressed nothing is
// reported as unused. These diagnostics land on the directive's own line,
// so they cannot be asserted with want comments.
func TestDirectiveBookkeeping(t *testing.T) {
	srcdir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(srcdir, "fixtures/directives")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.RunPackages(pkgs, []*analysis.Analyzer{maporder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"unused //lint:allow maporder directive",
		"malformed //lint:allow directive: missing (reason)",
		"malformed //lint:allow directive: cannot parse",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "lintdirective" {
			t.Errorf("diagnostic from %q, want lintdirective: %s", d.Analyzer, d.Message)
		}
	}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in %v", want, diags)
		}
	}
}

// TestSuppressionRemovesDiagnostic checks end to end that a well-formed
// directive placed on the line above a finding removes it: the graph
// fixture's UniqueMatch loop is flagged without suppression support only.
func TestSuppressionRemovesDiagnostic(t *testing.T) {
	srcdir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(srcdir, "fixtures/internal/graph")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.RunPackages(pkgs, []*analysis.Analyzer{maporder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "lintdirective" {
			t.Errorf("graph fixture's directives should all be used: %s: %s", d.Pos, d.Message)
		}
		if strings.Contains(d.Message, "UniqueMatch") {
			t.Errorf("suppressed finding leaked: %s", d.Message)
		}
	}
}
