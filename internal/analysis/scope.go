package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterministicPkgs are the import-path suffixes of packages whose behaviour
// must be bit-for-bit reproducible: the engine, the graph layer, the
// framework combinators, and every algorithm package. Scope checks match by
// suffix so analysistest fixtures can mirror real paths under testdata.
var DeterministicPkgs = []string{
	"internal/graph",
	"internal/runtime",
	"internal/runtime/fault",
	"internal/shard",
	"internal/core",
	"internal/heal",
	"internal/dynamic",
	"internal/mis",
	"internal/matching",
	"internal/vcolor",
	"internal/ecolor",
	"internal/tree",
	"internal/linegraph",
	"internal/decomp",
	"internal/predict",
	"internal/exact",
	"internal/verify",
	"internal/check",
	"internal/stats",
	"internal/bench",
	"internal/problem",
	"internal/obs",
	"internal/perf",
}

// SeededPkgs are the suffixes of packages where every random draw and clock
// read must come from an explicitly seeded source: engine, fault injection,
// graph and prediction generators, and the experiment harness.
var SeededPkgs = []string{
	"internal/runtime",
	"internal/runtime/fault",
	"internal/shard",
	"internal/graph",
	"internal/predict",
	"internal/tree",
	"internal/bench",
	"internal/mis",
	"internal/matching",
	"internal/vcolor",
	"internal/ecolor",
	"internal/obs",
}

// ObservationalClockPkgs are the suffixes of packages whose wall-clock reads
// are sanctioned as a package-scoped policy: the observability layer reads
// the clock to decorate trace records and metrics, and funnels every read
// through obs.Now/obs.Since so the exemption is one audited package rather
// than a scatter of per-line //lint:allow directives. Unseeded randomness
// stays forbidden in these packages; only the clock rule is relaxed, and the
// clock values must never feed back into algorithm or engine state.
var ObservationalClockPkgs = []string{
	"internal/obs",
}

// SessionPkgs are the suffixes of packages hosting dynamic update
// sessions, whose batch handling must route every accept/reject/dedupe
// decision through the monotone Seq ledger (the seen-set) — the
// fixed-point argument behind self-healing runs assumes no batch is
// applied twice and no decision bypasses the ledger.
var SessionPkgs = []string{
	"internal/dynamic",
}

// WrapErrPkgs are the suffixes of the framework packages whose errors must
// wrap the runtime sentinels (ErrConfig, ErrProtocol, ErrMachinePanic, ...).
var WrapErrPkgs = []string{
	"internal/runtime",
	"internal/runtime/fault",
	"internal/shard",
	"internal/core",
	"internal/heal",
	"internal/dynamic",
}

// PathInScope reports whether path is the module root or ends with one of
// the scope suffixes.
func PathInScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// HasBitsMethod reports whether t's method set (value or pointer receiver)
// contains the CONGEST accounting method `Bits() int`, i.e. whether values
// of t satisfy runtime.BitSized. The check is structural so fixtures need
// not import the real runtime package.
func HasBitsMethod(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			f, ok := ms.At(i).Obj().(*types.Func)
			if !ok || f.Name() != "Bits" {
				continue
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
				continue
			}
			if basic, ok := sig.Results().At(0).Type().(*types.Basic); ok && basic.Kind() == types.Int {
				return true
			}
		}
	}
	return false
}

// FuncName returns the name of the function or method declaration enclosing
// pos-bearing node n when n is a *ast.FuncDecl, else "".
func FuncName(n ast.Node) string {
	if fd, ok := n.(*ast.FuncDecl); ok {
		return fd.Name.Name
	}
	return ""
}
