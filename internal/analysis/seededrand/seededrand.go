// Package seededrand forbids unseeded randomness and wall-clock reads in
// the paths that must replay exactly: the round engine, the fault injector,
// and the graph/prediction generators. The repository's contract is that a
// seed reproduces a run bit for bit; math/rand's global functions draw from
// process-global state, and time.Now varies across runs, so both break
// replay silently.
//
// Allowed: rand.New and rand.NewSource (the caller supplies the seed) and
// every method on an explicit *rand.Rand value. Packages listed in
// analysis.ObservationalClockPkgs (the observability layer) may read the
// wall clock — their reads only decorate trace records — but their
// randomness is still held to the seeded rule.
package seededrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the seededrand check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "forbid math/rand global functions and time.Now/time.Since in engine, " +
		"fault, and generator paths; all randomness must flow from an explicit seed",
	Run: run,
}

// seedConstructors are the math/rand package-level functions that take an
// explicit seed or source and are therefore fine.
var seedConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// clockReads are the time package functions that read the wall clock.
var clockReads = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathInScope(pass.Pkg.Path(), analysis.SeededPkgs) {
		return nil
	}
	clockOK := analysis.PathInScope(pass.Pkg.Path(), analysis.ObservationalClockPkgs)
	analysis.Inspect(pass, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Intn) are explicitly seeded
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if !seedConstructors[fn.Name()] {
				pass.Reportf(sel.Pos(), "%s.%s draws from process-global random state and breaks seeded replay; "+
					"draw from an explicit rand.New(rand.NewSource(seed)), or suppress with //lint:allow seededrand (reason)",
					fn.Pkg().Name(), fn.Name())
			}
		case "time":
			if clockReads[fn.Name()] && !clockOK {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic path; "+
					"derive timing from round numbers or a seeded source, or suppress with //lint:allow seededrand (reason)",
					fn.Name())
			}
		}
		return true
	})
	return nil
}
