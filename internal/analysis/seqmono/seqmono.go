// Package seqmono guards the dynamic session's Seq ledger discipline.
// dynamic.Session dedupes and orders update batches through a monotone
// seen-set (a map field named seen keyed by batch Seq); the degradation
// ladder's fixed-point argument assumes every accept/reject/dedupe
// decision consults that ledger and that the ledger only grows. The
// analyzer enforces, for the session packages:
//
//   - ledger writes record true, never false — the seen-set is monotone;
//   - delete on the ledger is forbidden for the same reason;
//   - a ledger write's key derives from a batch's Seq field (directly or
//     through a def-use chain), not from loop counters or other state;
//   - a method that takes a Batch and mutates receiver state must read
//     the ledger before its first mutation — no accept path may bypass
//     the dedupe check.
//
// Session, Batch, and the ledger are matched structurally (a struct with
// a map-typed field named seen; a named type Batch with a Seq field), so
// fixtures need no dynamic import.
package seqmono

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the seqmono check.
var Analyzer = &analysis.Analyzer{
	Name: "seqmono",
	Doc: "dynamic session batch handling must route every accept/reject/dedupe " +
		"decision through the Seq ledger: seen-set writes record true keyed by " +
		"Batch.Seq, are never deleted, and precede any other state mutation in " +
		"batch-taking methods",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathInScope(pass.Pkg.Path(), analysis.SessionPkgs) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc applies the ledger rules to one function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	du := dataflow.NewDefUse(info, fd.Body)
	recv := receiverObj(info, fd)

	firstWrite := token.NoPos // first receiver-state mutation
	firstRead := token.NoPos  // first ledger read
	writeIsLedger := false    // the first mutation is itself a ledger write

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if ix, ok := dataflow.Unparen(lhs).(*ast.IndexExpr); ok && isLedger(info, ix.X) {
					if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
						checkLedgerWrite(pass, du, ix, n.Rhs[i])
					}
					noteWrite(&firstWrite, &writeIsLedger, lhs.Pos(), true)
					continue
				}
				if recv != nil && mutatesReceiver(info, lhs, recv) {
					noteWrite(&firstWrite, &writeIsLedger, lhs.Pos(), false)
				}
			}
		case *ast.IncDecStmt:
			if recv != nil && mutatesReceiver(info, n.X, recv) {
				noteWrite(&firstWrite, &writeIsLedger, n.Pos(), false)
			}
		case *ast.CallExpr:
			if id, ok := dataflow.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if obj := info.ObjectOf(id); obj != nil && obj.Parent() == types.Universe && isLedger(info, n.Args[0]) {
					pass.Reportf(n.Pos(),
						"delete on the Seq ledger: the seen-set is monotone — record rejections as seen, never unsee")
				}
			}
		case *ast.IndexExpr:
			if isLedger(info, n.X) && !isWriteTarget(fd.Body, n) {
				if !firstRead.IsValid() || n.Pos() < firstRead {
					firstRead = n.Pos()
				}
			}
		}
		return true
	})

	if !takesBatch(info, fd) || !firstWrite.IsValid() {
		return
	}
	consulted := firstRead.IsValid() && firstRead <= firstWrite
	if !consulted && !writeIsLedger {
		pass.Reportf(firstWrite,
			"session state mutated before consulting the Seq ledger: read the seen-set "+
				"(dedupe/accept decision) before any other mutation in a batch-taking method")
	} else if !consulted && writeIsLedger {
		pass.Reportf(firstWrite,
			"ledger written without a prior read: the dedupe decision must consult the "+
				"seen-set before recording the batch")
	}
}

func noteWrite(first *token.Pos, firstIsLedger *bool, pos token.Pos, ledger bool) {
	if first.IsValid() && *first <= pos {
		return
	}
	*first = pos
	*firstIsLedger = ledger
}

// checkLedgerWrite enforces monotone true values keyed by Batch.Seq.
func checkLedgerWrite(pass *analysis.Pass, du *dataflow.DefUse, ix *ast.IndexExpr, rhs ast.Expr) {
	if !isTrue(pass.TypesInfo, rhs) {
		pass.Reportf(rhs.Pos(),
			"Seq ledger write must record true: the seen-set is monotone, rejections are recorded as seen too")
	}
	if !derivesFromSeq(pass.TypesInfo, du, ix.Index, 0) {
		pass.Reportf(ix.Index.Pos(),
			"Seq ledger keyed by something other than a batch Seq: dedupe decisions must key on Batch.Seq")
	}
}

// isLedger matches expressions selecting a map-typed struct field named
// seen.
func isLedger(info *types.Info, e ast.Expr) bool {
	sel, ok := dataflow.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "seen" {
		return false
	}
	v, ok := info.ObjectOf(sel.Sel).(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	_, isMap := v.Type().Underlying().(*types.Map)
	return isMap
}

// isWriteTarget reports whether ix is the assignment target of some
// statement in body.
func isWriteTarget(body ast.Node, ix *ast.IndexExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if dataflow.Unparen(lhs) == ix {
				found = true
			}
		}
		return true
	})
	return found
}

// derivesFromSeq reports whether e mentions a Seq field selection,
// directly or through the def-use chain of an identifier.
func derivesFromSeq(info *types.Info, du *dataflow.DefUse, e ast.Expr, depth int) bool {
	if depth > 4 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if n.Sel.Name == "Seq" {
				found = true
				return false
			}
		case *ast.Ident:
			for _, def := range du.Defs(info.ObjectOf(n)) {
				if derivesFromSeq(info, du, def, depth+1) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// receiverObj returns the method receiver's object when the receiver's
// struct type carries the seen ledger, nil otherwise.
func receiverObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	obj := info.ObjectOf(fd.Recv.List[0].Names[0])
	if obj == nil {
		return nil
	}
	t := obj.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "seen" {
			if _, isMap := f.Type().Underlying().(*types.Map); isMap {
				return obj
			}
		}
	}
	return nil
}

// mutatesReceiver reports whether lhs writes through the receiver object
// (s.field, s.field[i], s.a.b, ...).
func mutatesReceiver(info *types.Info, lhs ast.Expr, recv types.Object) bool {
	for {
		switch e := dataflow.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.Ident:
			return info.ObjectOf(e) == recv
		default:
			return false
		}
	}
}

// takesBatch reports whether fd has a parameter of (or of a slice of) a
// named type Batch carrying a Seq field.
func takesBatch(info *types.Info, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil {
		return false
	}
	for _, field := range params.List {
		t := info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if sl, ok := t.Underlying().(*types.Slice); ok {
			t = sl.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "Batch" {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == "Seq" {
				return true
			}
		}
	}
	return false
}

// isTrue matches the predeclared true constant.
func isTrue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[dataflow.Unparen(e)]
	return ok && tv.Value != nil && tv.Value.String() == "true"
}
