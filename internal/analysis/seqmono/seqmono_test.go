package seqmono_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seqmono"
)

func TestSeqMono(t *testing.T) {
	analysistest.Run(t, "../testdata", seqmono.Analyzer, "fixtures/internal/dynamic")
}
