// Package slabalias guards the arena inbox lifetime contract. The columnar
// engine carves each node's inbox out of a single reusable slab
// (msgSlab.acquire) and passes the carved region to Machine.Receive; the
// slab is recycled every round and shrunk at high-water boundaries, so any
// view of the inbox that survives the round barrier silently decays into
// reading someone else's messages. Receive's documented contract is "copy
// it (not just re-slice it) to retain messages beyond the call" — this
// analyzer makes the contract a compile-time gate.
//
// For every function with a []Msg parameter (Msg matched structurally:
// a named struct with From and Payload fields, so fixtures and helper
// packages need no runtime import), the parameter and its alias closure
// (re-slices, appends onto it, pointers to its elements) must not
//
//   - be stored to a field or any other non-local lvalue,
//   - be returned,
//   - be sent on a channel, or
//   - be captured by a function value that may outlive the call
//     (deferred and immediately-invoked literals run within the round
//     and are exempt).
//
// Copying the messages out — element-wise, append(dst, inbox...), or
// copy(dst, inbox) — is the recognized-safe pattern: elements are values,
// so only slice headers alias the arena.
package slabalias

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the slabalias check.
var Analyzer = &analysis.Analyzer{
	Name: "slabalias",
	Doc: "a view of an arena-backed inbox slice ([]Msg parameter) must not escape " +
		"the round barrier: no field stores, returns, channel sends, or captures " +
		"by escaping closures — the slab is reused and shrunk between rounds",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathInScope(pass.Pkg.Path(), analysis.DeterministicPkgs) {
		return nil
	}
	for _, f := range dataflow.Functions(pass.Files) {
		if f.Decl == nil {
			continue // literals are checked as part of their declaration
		}
		seeds := inboxParams(pass, f)
		if len(seeds) == 0 {
			continue
		}
		check(pass, f, seeds)
	}
	return nil
}

// inboxParams returns the objects of f's []Msg parameters.
func inboxParams(pass *analysis.Pass, f *dataflow.Func) []types.Object {
	var seeds []types.Object
	params := f.FuncType().Params
	if params == nil {
		return nil
	}
	for _, field := range params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.ObjectOf(name)
			if obj != nil && isMsgSlice(obj.Type()) {
				seeds = append(seeds, obj)
			}
		}
	}
	return seeds
}

// isMsgSlice reports whether t is a slice of a named struct Msg with From
// and Payload fields — the engine's message type, matched structurally.
func isMsgSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Msg" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasFrom, hasPayload := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "From":
			hasFrom = true
		case "Payload":
			hasPayload = true
		}
	}
	return hasFrom && hasPayload
}

// check reports every escape of the seeds' alias closure out of f.
func check(pass *analysis.Pass, f *dataflow.Func, seeds []types.Object) {
	body := f.Body()
	taint := dataflow.NewSliceTaint(pass.TypesInfo, body, seeds...)

	// Literal contexts that run within the round: deferred and
	// immediately-invoked literals don't outlive the call.
	safeLits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := dataflow.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				safeLits[lit] = true
			}
		case *ast.CallExpr:
			if lit, ok := dataflow.Unparen(n.Fun).(*ast.FuncLit); ok {
				safeLits[lit] = true
			}
		}
		return true
	})

	const remedy = "; the slab is reused and shrunk between rounds — copy the messages instead"
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if _, ok := dataflow.Unparen(lhs).(*ast.Ident); ok {
					continue // local alias: tracked by the taint closure
				}
				if taint.Tainted(n.Rhs[i]) {
					pass.Reportf(n.Pos(),
						"arena inbox view escapes %s: stored to a non-local location%s",
						f.Name(), remedy)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if taint.Tainted(res) {
					pass.Reportf(n.Pos(),
						"arena inbox view escapes %s: returned to the caller%s",
						f.Name(), remedy)
				}
			}
		case *ast.SendStmt:
			if taint.Tainted(n.Value) {
				pass.Reportf(n.Pos(),
					"arena inbox view escapes %s: sent on a channel%s",
					f.Name(), remedy)
			}
		case *ast.FuncLit:
			if safeLits[n] {
				return true // runs within the round; its body is still walked
			}
			if obj := capturedTaint(pass, taint, n); obj != nil {
				pass.Reportf(n.Pos(),
					"arena inbox view escapes %s: %s is captured by a function value that may outlive the round%s",
					f.Name(), obj.Name(), remedy)
			}
		}
		return true
	})
}

// capturedTaint returns a tainted object referenced inside lit, if any.
func capturedTaint(pass *analysis.Pass, taint *dataflow.SliceTaint, lit *ast.FuncLit) types.Object {
	var found types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil && taint.TaintedObj(obj) {
			found = obj
		}
		return true
	})
	return found
}
