package slabalias_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/slabalias"
)

func TestSlabAlias(t *testing.T) {
	analysistest.Run(t, "../testdata", slabalias.Analyzer, "fixtures/internal/core")
}
