// Package suite assembles the dgp-lint analyzer set. cmd/dgp-lint (both
// the standalone multichecker and the go vet -vettool mode) and any future
// driver consume the suite from here.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/bitsize"
	"repro/internal/analysis/machinepurity"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/wraperrcheck"
)

// All returns every analyzer in the dgp-lint suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bitsize.Analyzer,
		machinepurity.Analyzer,
		maporder.Analyzer,
		seededrand.Analyzer,
		wraperrcheck.Analyzer,
	}
}
