// Package suite assembles the dgp-lint analyzer set. cmd/dgp-lint (both
// the standalone multichecker and the go vet -vettool mode) and any future
// driver consume the suite from here.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/allocguard"
	"repro/internal/analysis/bitsize"
	"repro/internal/analysis/emitorder"
	"repro/internal/analysis/machinepurity"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/seqmono"
	"repro/internal/analysis/slabalias"
	"repro/internal/analysis/wraperrcheck"
)

// All returns every analyzer in the dgp-lint suite, in reporting order:
// the five AST-pattern checks from the original suite and the four
// dataflow checks (allocguard, emitorder, seqmono, slabalias) built on
// internal/analysis/dataflow.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allocguard.Analyzer,
		bitsize.Analyzer,
		emitorder.Analyzer,
		machinepurity.Analyzer,
		maporder.Analyzer,
		seededrand.Analyzer,
		seqmono.Analyzer,
		slabalias.Analyzer,
		wraperrcheck.Analyzer,
	}
}
