// Package directives exercises //lint:allow bookkeeping: well-formed unused
// directives and malformed ones are findings in their own right (analyzer
// "lintdirective"). Asserted programmatically in run_test.go because the
// diagnostics land on the directive's own line, where a want comment cannot
// sit.
package directives

func unusedDirective() {
	//lint:allow maporder (nothing here to suppress)
	_ = 1
}

func missingReason(m map[int]int) {
	//lint:allow maporder
	for k := range m {
		_ = k
	}
}

//lint:allow this is not a parseable directive
func unparseable() {}
