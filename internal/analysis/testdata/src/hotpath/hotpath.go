// Package hotpath is an allocguard fixture: annotated functions with every
// allocation-inducing construct the gate must flag, next to the
// recognized-safe idioms the engine's hot path actually uses.
package hotpath

import "fmt"

type event struct {
	id   int
	name string
}

type state struct {
	buf     []int
	scratch []int
	errs    []error
	out     chan int
	cb      func() int
	slot    any
	other   any
	ev      event
	name    string
	err     error
}

func (s *state) work() {}

func sink(v any) { _ = v }

// step is the annotated hot function: every construct below allocates.
//
//dgp:hotpath
func (s *state) step(n int, a, b string) {
	m := make(map[int]int) // want `make\(map\) allocates`
	_ = m
	sl := make([]int, n) // want `make\(slice\) allocates`
	_ = sl
	ch := make(chan int) // want `make\(chan\) allocates`
	_ = ch
	p := new(int) // want `new\(T\) allocates`
	_ = p
	lit := map[int]int{n: n} // want `map literal allocates`
	_ = lit
	sls := []int{n} // want `slice literal allocates`
	_ = sls
	ptr := &event{id: n} // want `&composite literal is a heap allocation`
	_ = ptr
	grown := append(s.buf, n) // want `append without preallocated-cap evidence`
	_ = grown
	go s.work()                      // want `starts a goroutine`
	s.cb = func() int { return n }   // want `closure captures n`
	s.err = fmt.Errorf("step %d", n) // want `calls fmt\.Errorf, which allocates`
	s.name = a + b                   // want `string concatenation allocates`
	bs := []byte(a)                  // want `string<->slice conversion copies its data`
	_ = bs
	s.slot = n // want `boxes a int into an interface`
	sink(n)    // want `boxes a int into an interface`
}

// boxedReturn boxes its concrete result into the interface return slot.
//
//dgp:hotpath
func boxedReturn(n int) any {
	return n // want `boxes a int into an interface`
}

// steady is the recognized-safe shape: truncate-reuse buffers, field
// self-appends, struct values, interface-to-interface moves, and cold
// error exits that may allocate.
//
//dgp:hotpath
func (s *state) steady(n int, bad bool) {
	s.buf = append(s.buf, n) // field self-append: persistent amortized buffer
	local := s.scratch[:0]
	local = append(local, n) // truncate-reuse evidence on the local's def
	s.scratch = local
	s.ev = event{id: n} // struct value, no heap
	s.slot = s.other    // interface to interface, no boxing
	s.cb = pick         // package function value, no capture
	if bad {
		// Cold exit: ends by returning, so the error construction and its
		// boxed arguments are exempt.
		s.errs = append(s.errs, fmt.Errorf("bad input %d", n))
		return
	}
	func() { s.buf[0] = n }() // immediately invoked: no closure allocation flagged
	defer func() {
		if r := recover(); r != nil {
			s.err = fmt.Errorf("panic: %v", r) // recover-guarded: cold
		}
	}()
}

func pick() int { return 1 }

// unannotated may allocate freely: the gate is opt-in.
func (s *state) unannotated(n int) {
	m := map[int]int{n: n}
	_ = m
	s.slot = n
}
