// Package core is a slabalias fixture: functions handling arena-backed
// inbox slices. Msg mirrors the runtime message type structurally, so the
// fixture needs no import of the real module.
package core

// Msg mirrors runtime.Msg.
type Msg struct {
	From    int
	Payload any
}

// Env stands in for runtime.Env.
type Env struct{ id int }

// leaky stores inbox views beyond the round barrier: every escape shape
// the analyzer must catch.
type leaky struct {
	held   []Msg
	hold   *Msg
	last   Msg
	ch     chan []Msg
	notify func() int
}

// Receive stores the raw inbox slice to a field.
func (m *leaky) Receive(env *Env, inbox []Msg) {
	m.held = inbox // want `arena inbox view escapes Receive: stored to a non-local location`
}

// storeReslice stores a re-slice: still the same backing array.
func (m *leaky) storeReslice(inbox []Msg) {
	m.held = inbox[1:] // want `stored to a non-local location`
}

// storeAliasChain leaks through a local alias.
func (m *leaky) storeAliasChain(inbox []Msg) {
	tail := inbox[1:]
	view := tail
	m.held = view // want `stored to a non-local location`
}

// storeElemPtr keeps a pointer into the arena.
func (m *leaky) storeElemPtr(inbox []Msg) {
	m.hold = &inbox[0] // want `stored to a non-local location`
}

// storeAppendOnto appends onto the inbox, which may share its array.
func (m *leaky) storeAppendOnto(inbox []Msg) {
	m.held = append(inbox, Msg{}) // want `stored to a non-local location`
}

// tail returns a view to the caller.
func tail(inbox []Msg) []Msg {
	return inbox[1:] // want `returned to the caller`
}

// ship sends the view to another goroutine's round.
func (m *leaky) ship(inbox []Msg) {
	m.ch <- inbox // want `sent on a channel`
}

// capture closes over the inbox in a function value that outlives the call.
func (m *leaky) capture(inbox []Msg) {
	m.notify = func() int { // want `captured by a function value that may outlive the round`
		return len(inbox)
	}
}

// clean shows every recognized-safe pattern: copying out, element reads,
// and views that die within the call.
type clean struct {
	held []Msg
	last Msg
	sum  int
}

// Receive copies the messages it wants to keep — the documented contract.
func (m *clean) Receive(env *Env, inbox []Msg) {
	cp := make([]Msg, len(inbox))
	copy(cp, inbox)
	m.held = cp
}

// keepByAppend copies elements onto a fresh (owned) destination.
func (m *clean) keepByAppend(inbox []Msg) {
	m.held = append(m.held[:0], inbox...)
}

// readOnly ranges and copies single elements by value.
func (m *clean) readOnly(inbox []Msg) {
	for _, msg := range inbox {
		m.sum += msg.From
	}
	if len(inbox) > 0 {
		m.last = inbox[0]
	}
}

// scopedViews re-slices locally and runs literals within the round.
func (m *clean) scopedViews(inbox []Msg) {
	head := inbox[:1]
	_ = head
	func() {
		m.sum += len(inbox) // immediately invoked: runs within the round
	}()
	defer func() {
		m.sum += len(inbox) // deferred: runs within the round
	}()
}
