// Package dynamic is a seqmono fixture mirroring the session shapes
// structurally: a Batch with a Seq field and a Session whose seen map is
// the monotone Seq ledger.
package dynamic

// Batch mirrors dynamic.Batch.
type Batch struct {
	Seq     int
	Updates []int
}

type stats struct {
	applied int
	dupes   int
}

// Session mirrors dynamic.Session: seen is the Seq ledger.
type Session struct {
	seen  map[int]bool
	out   []int
	stats stats
}

// applyGood follows the contract: consult the ledger, decide, record.
func (s *Session) applyGood(b Batch) {
	if s.seen[b.Seq] {
		s.stats.dupes++
		return
	}
	s.out = append(s.out, b.Updates...)
	s.seen[b.Seq] = true
	s.stats.applied++
}

// applyVia keys through a local whose def-use chain reaches Seq: fine.
func (s *Session) applyVia(b Batch) {
	key := b.Seq
	if s.seen[key] {
		return
	}
	s.seen[key] = true
}

// applyBlind mutates session state before consulting the ledger.
func (s *Session) applyBlind(b Batch) {
	s.out = append(s.out, b.Seq) // want `session state mutated before consulting the Seq ledger`
	if s.seen[b.Seq] {
		return
	}
	s.seen[b.Seq] = true
}

// record books a batch without any dedupe read.
func (s *Session) record(b Batch) {
	s.seen[b.Seq] = true // want `ledger written without a prior read`
}

// applyFalse un-marks a batch by writing false: the ledger is monotone.
func (s *Session) applyFalse(b Batch) {
	if s.seen[b.Seq] {
		return
	}
	s.seen[b.Seq] = false // want `Seq ledger write must record true`
}

// applyKeyedLoop keys the ledger off a loop counter, not the batch Seq.
func (s *Session) applyKeyedLoop(bs []Batch) {
	for i := range bs {
		if s.seen[i] {
			continue
		}
		s.seen[i] = true // want `keyed by something other than a batch Seq`
	}
}

// forget deletes from the ledger: monotone means never unsee.
func (s *Session) forget(seq int) {
	delete(s.seen, seq) // want `delete on the Seq ledger`
}

// reject is a helper without receiver mutation: no ordering obligation.
func (s *Session) reject(b Batch) bool {
	return len(b.Updates) == 0
}

// toPatch is a free function on batches: the ledger rules don't apply.
func toPatch(b Batch) []int {
	return b.Updates
}
