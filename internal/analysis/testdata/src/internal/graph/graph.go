// Package graph is a maporder fixture. Its import path ends in
// internal/graph, so it sits inside the deterministic scope.
package graph

import "sort"

// AppendUnsorted leaks map order into the returned slice.
func AppendUnsorted(m map[int]int) []int {
	out := []int{}
	for k := range m { // want `appends to out in map order without sorting it afterwards`
		out = append(out, k)
	}
	return out
}

// CollectThenSort is the accepted idiom: the collected keys are sorted
// before anything observes them.
func CollectThenSort(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// fieldCollector collects into a struct field, sorted afterwards.
type fieldCollector struct {
	fresh []int
}

func (c *fieldCollector) drain(m map[int]struct{}) {
	for k := range m {
		c.fresh = append(c.fresh, k)
	}
	sort.Ints(c.fresh)
}

// Count and Sum are commutative integer accumulations.
func Count(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// FirstMatch returns whichever matching key the runtime serves up first.
func FirstMatch(m map[int]int) int {
	for k, v := range m { // want `returns a loop-dependent value`
		if v > 0 {
			return k
		}
	}
	return -1
}

// AnyPositive is the any/all idiom: every iteration writes the same
// constant, so the result is order-independent.
func AnyPositive(m map[int]int) bool {
	found := false
	for _, v := range m {
		if v > 0 {
			found = true
		}
	}
	return found
}

// Overwrite keeps the last key served, i.e. a random one.
func Overwrite(m map[int]int) int {
	last := 0
	for k := range m { // want `overwrites an outer variable`
		last = k
	}
	return last
}

// KeyedStore writes once per key: order-independent.
func KeyedStore(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v
	}
}

// CallsOut calls into code whose effects the checker cannot order.
func CallsOut(m map[int]int) {
	for k := range m { // want `calls a function with effects`
		println(k)
	}
}

// DeleteAll is the sanctioned delete-during-range pattern.
func DeleteAll(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// UniqueMatch documents a justified suppression: the directive on the line
// above the loop silences the finding.
func UniqueMatch(m map[int]int) int {
	//lint:allow maporder (at most one entry matches by construction)
	for k, v := range m {
		if v == 42 {
			return k
		}
	}
	return -1
}
