// Package heal is a wraperrcheck fixture. Its import path ends in
// internal/heal, so it sits inside the wrap-error scope.
package heal

import (
	"errors"
	"fmt"
)

// ErrConfig is a package-level sentinel definition: exempt.
var ErrConfig = errors.New("heal: invalid configuration")

// validateBudget is a config path by naming convention, so the diagnostic
// names ErrConfig specifically.
func validateBudget(n int) error {
	if n < 0 {
		return fmt.Errorf("negative budget %d", n) // want `fmt.Errorf without %w.*wrap ErrConfig`
	}
	if n == 0 {
		return fmt.Errorf("%w: zero budget", ErrConfig)
	}
	return nil
}

// runPhase is a runtime path: the diagnostic points at the runtime
// sentinels.
func runPhase() error {
	return errors.New("phase failed") // want `errors.New inside a function drops the error out of errors.Is`
}

// bareErrorf builds an unclassifiable error.
func bareErrorf(round int) error {
	return fmt.Errorf("round %d wedged", round) // want `fmt.Errorf without %w`
}

// wrapped chains an upstream error: legal.
func wrapped(err error, round int) error {
	return fmt.Errorf("round %d: %w", round, err)
}

// dynamicFormat cannot be judged statically and is left to vet.
func dynamicFormat(format string) error {
	return fmt.Errorf(format)
}

// allowedBare documents a justified suppression.
func allowedBare() error {
	//lint:allow wraperrcheck (scratch diagnostics helper, never classified by errors.Is)
	return errors.New("heal: scratch")
}
