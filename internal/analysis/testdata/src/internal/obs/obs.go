// Package obs is a seededrand fixture for the observational-clock policy.
// Its import path ends in internal/obs, which sits in both SeededPkgs and
// ObservationalClockPkgs: wall-clock reads pass without per-line directives,
// while unseeded randomness is still a finding.
package obs

import (
	"math/rand"
	"time"
)

// Now mirrors the real obs.Now funnel: a bare clock read, sanctioned for the
// whole package by the observational-clock policy — no allow directive.
func Now() time.Time {
	return time.Now()
}

// Since likewise passes under the package policy.
func Since(t time.Time) time.Duration {
	return time.Since(t)
}

// Jitter draws from process-global random state: the policy relaxes only the
// clock rule, so this is still a finding.
func Jitter() int {
	return rand.Intn(10) // want `rand.Intn draws from process-global random state`
}

// SeededJitter threads an explicit seed and passes as everywhere else.
func SeededJitter(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
