// Package predict is a seededrand fixture. Its import path ends in
// internal/predict, so it sits inside the seeded scope.
package predict

import (
	"math/rand"
	"time"
)

// GlobalDraw uses the process-global generator: unreproducible.
func GlobalDraw() int {
	return rand.Intn(10) // want `rand.Intn draws from process-global random state`
}

// Clock reads wall-clock time in a deterministic path.
func Clock() time.Duration {
	t := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(t) // want `time.Since reads the wall clock`
}

// SeededDraw threads an explicit seed: every draw is replayable.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// ConstantTime constructs times without reading the clock.
func ConstantTime() time.Time {
	return time.Unix(0, 0)
}

// AllowedClock documents a justified suppression.
func AllowedClock() time.Time {
	//lint:allow seededrand (observational instrumentation, never affects semantics)
	return time.Now()
}
