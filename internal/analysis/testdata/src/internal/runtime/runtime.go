// Package runtime is an emitorder fixture mirroring the engine's shapes
// structurally: a Recorder with an Emit method, a worker pool that hands
// phase closures through a task struct on a channel, and machine
// callbacks. No obs import needed — the analyzer matches by type name.
package runtime

// Event mirrors obs.Event.
type Event struct {
	Type int
	Node int
}

// Recorder mirrors obs.Recorder: Emit is the funnel the contract guards.
type Recorder struct{ events []Event }

// Emit appends one event.
func (r *Recorder) Emit(e Event) { r.events = append(r.events, e) }

// Env stands in for runtime.Env.
type Env struct{ id int }

// task carries a phase closure to the workers, like poolTask.
type task struct {
	phase func(int)
	node  int
}

type engine struct {
	trace *Recorder
	tasks chan task
	notes []Event
}

// mainLoop emits from the main run goroutine: the legal pattern.
func (e *engine) mainLoop(rounds int) {
	for round := 0; round < rounds; round++ {
		e.trace.Emit(Event{Type: 1, Node: round})
		e.dispatch(e.goodPhase)
		e.dispatch(e.badPhase)
		e.drain()
	}
}

// drain flushes staged annotations after the barrier, on the main
// goroutine: legal.
func (e *engine) drain() {
	for _, ev := range e.notes {
		e.trace.Emit(ev)
	}
	e.notes = e.notes[:0]
}

// dispatch hands a phase to the workers through the task channel.
func (e *engine) dispatch(phase func(int)) {
	e.tasks <- task{phase: phase, node: 0}
}

// worker drains the task channel off the main goroutine, like the
// persistent pool.
func (e *engine) worker() {
	go func() {
		for t := range e.tasks {
			t.phase(t.node)
		}
	}()
}

// goodPhase stages data for the post-barrier drain instead of emitting.
func (e *engine) goodPhase(i int) {
	e.notes = append(e.notes, Event{Type: 2, Node: i})
}

// badPhase emits from worker context: the task-struct flow reaches it.
func (e *engine) badPhase(i int) {
	e.trace.Emit(Event{Type: 3, Node: i}) // want `obs emission off the main goroutine`
}

// spawn launches a method directly on a goroutine.
func (e *engine) spawn() {
	go e.tick()
}

// tick runs off the main goroutine.
func (e *engine) tick() {
	e.trace.Emit(Event{Type: 4}) // want `obs emission off the main goroutine`
}

// machine is a Send/Receive callback holder: callbacks run inside
// worker-pool chunks by construction.
type machine struct {
	r      *Recorder
	staged []Event
}

// Receive must stage, never emit.
func (m *machine) Receive(env *Env, inbox []int) {
	m.staged = append(m.staged, Event{Type: 5})
	m.r.Emit(Event{Type: 6}) // want `obs emission off the main goroutine`
}

// Send is clean: staging only.
func (m *machine) Send(env *Env) []int {
	m.staged = append(m.staged, Event{Type: 7})
	return nil
}
