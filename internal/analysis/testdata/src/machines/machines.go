// Package machines is a machinepurity fixture. The Env/StageCtx/Out types
// mirror the runtime's shapes structurally, so the fixture needs no import
// of the real module.
package machines

import "sync"

// Env stands in for runtime.Env.
type Env struct{ id int }

// ID returns the node identifier.
func (e *Env) ID() int { return e.id }

// StageCtx stands in for core.StageCtx.
type StageCtx struct{ round int }

// Msg and Out mirror the runtime message types.
type Msg struct {
	From    int
	Payload any
}

type Out struct {
	To      int
	Payload any
}

var shared int
var mu sync.Mutex

// goodMachine keeps all state in its own struct: legal.
type goodMachine struct{ state int }

func (m *goodMachine) Send(env *Env) []Out {
	m.state++
	local := m.state * 2
	_ = local
	return nil
}

func (m *goodMachine) Receive(env *Env, inbox []Msg) {
	for range inbox {
		m.state++
	}
}

// badMachine reaches outside its own state.
type badMachine struct{}

func (m *badMachine) Send(env *Env) []Out {
	shared++          // want `writes shared, which is declared outside the machine`
	mu.Lock()         // want `calls sync.Lock`
	defer mu.Unlock() // want `calls sync.Unlock`
	return nil
}

func helper(ch chan int) {}

func (m *badMachine) Receive(env *Env, inbox []Msg) {
	ch := make(chan int) // want `makes a channel`
	go helper(ch)        // want `spawns a goroutine`
	ch <- 1              // want `sends on a channel`
	<-ch                 // want `receives from a channel`
	close(ch)            // want `closes a channel`
}

// stageMachine exercises the StageCtx variant of the contract.
type stageMachine struct{ done bool }

func (s *stageMachine) Send(c *StageCtx) []Out {
	s.done = true
	return nil
}

func (s *stageMachine) Receive(c *StageCtx, inbox []Msg) {
	shared = len(inbox) // want `writes shared, which is declared outside the machine`
}

// closureMachine shows that literals declared inside a machine method are
// checked with it: writes to method-local state stay legal, captured
// package state does not.
type closureMachine struct{}

func (m *closureMachine) Send(env *Env) []Out {
	n := 0
	visit := func() {
		n++        // method-local: fine
		shared = n // want `writes shared, which is declared outside the machine`
	}
	visit()
	return nil
}

// Factory mirrors runtime.Factory: literals passed as factories run on the
// main goroutine, so captured-state writes are legal there but concurrency
// primitives are not.
type Factory func(id int) *goodMachine

// Use anchors the Factory parameter type.
func Use(f Factory) {}

func registerFactories() {
	Use(func(id int) *goodMachine {
		shared++             // factory runs before the pool starts: legal
		ch := make(chan int) // want `makes a channel`
		_ = ch
		return &goodMachine{}
	})
}

// notAMachine has a Send method without an Env/StageCtx first parameter:
// out of contract, unchecked.
type notAMachine struct{}

func (n *notAMachine) Send(round int) []Out {
	shared++
	return nil
}
