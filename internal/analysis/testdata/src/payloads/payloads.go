// Package payloads is a bitsize fixture. Out and Broadcast mirror the
// runtime's shapes structurally, so the fixture needs no import of the real
// module.
package payloads

// Out mirrors runtime.Out.
type Out struct {
	To      int
	Payload any
}

// sized implements the bit-size interface on the value receiver.
type sized struct{ V int }

func (sized) Bits() int { return 32 }

// ptrSized implements it on the pointer receiver.
type ptrSized struct{ V int }

func (*ptrSized) Bits() int { return 64 }

// unsized implements nothing.
type unsized struct{ V int }

// Broadcast and BroadcastTo mirror the runtime helpers.
func Broadcast(n int, p any) []Out { return nil }

func BroadcastTo(ids []int, p any) []Out { return nil }

func build(to int) []Out {
	outs := []Out{
		{To: to, Payload: sized{V: 1}},
		{To: to, Payload: unsized{V: 1}}, // want `payload type unsized does not implement BitSized`
	}
	outs = append(outs, Out{to, &ptrSized{}})
	outs = append(outs, Out{to, unsized{}}) // want `payload type unsized does not implement BitSized`
	var o Out
	o.Payload = unsized{} // want `payload type unsized does not implement BitSized`
	o.Payload = sized{}
	o.Payload = nil
	outs = append(outs, o)
	outs = append(outs, Broadcast(to, unsized{})...) // want `payload type unsized does not implement BitSized`
	outs = append(outs, BroadcastTo([]int{to}, sized{})...)
	return outs
}

// forward re-sends an interface-typed payload: checked where the concrete
// value was built, not here.
func forward(to int, p any) Out {
	return Out{To: to, Payload: p}
}

// allowedRelay documents a justified suppression.
func allowedRelay(to int) Out {
	//lint:allow bitsize (diagnostic-only payload, never sent under a CONGEST budget)
	return Out{To: to, Payload: unsized{}}
}
