// Package plain sits outside every scoped analyzer's path list: code that
// would be flagged in a scoped package must produce no findings here.
package plain

import (
	"errors"
	"math/rand"
	"time"
)

// AppendUnsorted would be a maporder finding under internal/graph.
func AppendUnsorted(m map[int]int) []int {
	out := []int{}
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Clock would be two seededrand findings under internal/predict.
func Clock() (int, time.Time) {
	return rand.Intn(10), time.Now()
}

// Bare would be a wraperrcheck finding under internal/heal.
func Bare() error {
	return errors.New("bare")
}
