// Package wraperrcheck enforces the repository's error taxonomy in the
// framework packages (runtime, fault, core, heal): every error constructed
// inside a function must wrap something with %w — configuration errors wrap
// runtime.ErrConfig, protocol and runtime failures wrap the sentinels
// introduced with the chaos engine (ErrProtocol, ErrMachinePanic,
// ErrRoundDeadline, ErrCongestViolation, ...). Callers classify failures
// with errors.Is — the recovery wrapper, for one, heals damaged runs but
// must give up on misconfigured ones — so a bare errors.New or a %w-less
// fmt.Errorf silently drops an error out of every such decision.
//
// Package-level `var ErrX = errors.New(...)` declarations are the sentinel
// definitions themselves and are exempt.
package wraperrcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the wraperrcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "wraperrcheck",
	Doc: "framework errors must wrap a sentinel with %w (config paths: ErrConfig; " +
		"runtime paths: the chaos-engine sentinels) so errors.Is classification works",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathInScope(pass.Pkg.Path(), analysis.WrapErrPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			configPath := isConfigFunc(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call, configPath)
				return true
			})
		}
	}
	return nil
}

// isConfigFunc reports whether the function is a configuration-validation
// path by naming convention.
func isConfigFunc(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "valid") || strings.Contains(lower, "config")
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, configPath bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sentinel := "a sentinel (ErrProtocol, ErrMachinePanic, ErrRoundDeadline, ...)"
	if configPath {
		sentinel = "ErrConfig"
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		pass.Reportf(call.Pos(), "errors.New inside a function drops the error out of errors.Is classification; "+
			"wrap %s with fmt.Errorf(\"%%w: ...\", ...) — errors.New belongs only in package-level sentinel definitions",
			sentinel)
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if len(call.Args) == 0 {
			return
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return // non-literal format: cannot judge, leave to vet
		}
		if !strings.Contains(lit.Value, "%w") {
			pass.Reportf(call.Pos(), "fmt.Errorf without %%w builds an unclassifiable error; "+
				"wrap %s, or suppress with //lint:allow wraperrcheck (reason)", sentinel)
		}
	}
}
