package wraperrcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wraperrcheck"
)

func TestWrapErrCheck(t *testing.T) {
	analysistest.Run(t, "../testdata", wraperrcheck.Analyzer,
		"fixtures/internal/heal", "fixtures/plain")
}
