package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestAllExperimentsSatisfyTheirBounds regenerates every experiment and
// fails if any bound-check cell reports a violation ("NO"). This pins every
// quantitative claim of the paper as a regression test.
func TestAllExperimentsSatisfyTheirBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long; skipped with -short")
	}
	for _, e := range bench.Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run()
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s table %s has no rows", e.ID, tab.ID)
				}
				for _, row := range tab.Rows {
					for ci, cell := range row {
						if cell == "NO" {
							t.Errorf("%s table %s: bound violated in column %q, row %v",
								e.ID, tab.ID, tab.Columns[ci], row)
						}
					}
				}
			}
		})
	}
}

func TestRegistryAndFind(t *testing.T) {
	reg := bench.Registry()
	if len(reg) != 22 {
		t.Errorf("registry has %d experiments, want 22", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if bench.Find(e.ID) == nil {
			t.Errorf("Find(%s) = nil", e.ID)
		}
		if bench.Find(strings.ToLower(e.ID)) == nil {
			t.Errorf("Find is not case-insensitive for %s", e.ID)
		}
	}
	if bench.Find("E99") != nil {
		t.Error("Find accepted unknown id")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &bench.Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
	}
	tab.AddRow(1, "x")
	tab.AddRow("yy", 2.5)
	tab.AddRow(true, false)
	tab.Note("note %d", 7)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== T: demo ==", "long-column", "yy", "2.50", "yes", "NO", "note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
