package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/vcolor"
)

// E1 — Lemmas 1 and 2: the Greedy MIS Algorithm's round complexity is at
// most max μ₁(S) and at most max μ₂(S)+1 over the components S.
func E1() []*Table {
	t := &Table{
		ID:      "E1",
		Title:   "Greedy MIS rounds vs mu1 and mu2 bounds",
		Columns: []string{"graph", "n", "rounds", "mu1", "mu2+1", "<=mu1", "<=mu2+1"},
	}
	rng := rand.New(rand.NewSource(2))
	cases := []instance{
		{"line-64", graph.Line(64)},
		{"line-256", graph.Line(256)},
		{"ring-65", graph.Ring(65)},
		{"clique-32", graph.Clique(32)},
		{"star-64", graph.Star(64)},
		{"grid-8x8", graph.Grid2D(8, 8)},
		{"gnp-48-.1", graph.GNP(48, 0.1, rng)},
		{"paths-8x7", graph.DisjointPaths(8, 7)},
	}
	for _, c := range cases {
		res := mustMIS(c.g, mis.Solo(mis.Greedy()), nil)
		mu1, mu2 := 0, 0
		for _, comp := range c.g.Components() {
			if len(comp) > mu1 {
				mu1 = len(comp)
			}
			sub, _ := c.g.InducedSubgraph(comp)
			m2, err := exact.Mu2(sub)
			if err != nil {
				m2 = -1
			}
			if m2 > mu2 {
				mu2 = m2
			}
		}
		t.AddRow(c.name, c.g.N(), res.Rounds, mu1, mu2+1,
			boolCell(res.Rounds <= mu1), boolCell(mu2 < 0 || res.Rounds <= mu2+1))
	}
	t.Note("paper: rounds <= max mu1(S) (Lemma 1) and <= max mu2(S)+1 (Lemma 2)")
	return []*Table{t}
}

// E2 — Observation 7: Simple(Init, Greedy) has consistency 3 and rounds at
// most η₁+3 and η₂+4.
func E2() []*Table {
	t := &Table{
		ID:      "E2",
		Title:   "Simple Template rounds vs eta1/eta2 (flip sweep)",
		Columns: []string{"graph", "flips", "eta1", "eta2", "rounds", "<=eta1+3", "<=eta2+4"},
	}
	for _, c := range misInstances() {
		for _, k := range []int{0, 1, 2, 4, 8, 16, 32, c.g.N()} {
			preds := perturbed(c.g, k, int64(100+k))
			eta1, eta2 := misErrors(c.g, preds)
			res := mustMIS(c.g, mis.SimpleGreedy(), preds)
			t.AddRow(c.name, k, eta1, eta2, res.Rounds,
				boolCell(res.Rounds <= eta1+3),
				boolCell(eta2 < 0 || res.Rounds <= eta2+4))
		}
	}
	t.Note("paper: consistency 3; eta1- and eta2-degrading (Observation 7 + Lemmas 1-2)")
	return []*Table{t}
}

// E3 — Lemma 8: the Consecutive Template has consistency 3, is 2f(η)-
// degrading, and is robust with respect to its reference.
func E3() []*Table {
	deg := &Table{
		ID:      "E3",
		Title:   "Consecutive Template degradation",
		Columns: []string{"graph", "ref", "flips", "eta1", "rounds", "<=2*eta1+4"},
	}
	rob := &Table{
		ID:      "E3b",
		Title:   "Consecutive Template robustness (worst predictions: all ones)",
		Columns: []string{"graph", "ref", "rounds", "ref alone", "ratio"},
	}
	for _, c := range misInstances() {
		for _, k := range []int{0, 2, 8, 32} {
			preds := perturbed(c.g, k, int64(200+k))
			eta1, _ := misErrors(c.g, preds)
			resC := mustMIS(c.g, mis.ConsecutiveCollect(), preds)
			deg.AddRow(c.name, "collect", k, eta1, resC.Rounds, boolCell(resC.Rounds <= 2*eta1+4))
			resD := mustMIS(c.g, mis.ConsecutiveDecomp(7), preds)
			deg.AddRow(c.name, "decomp", k, eta1, resD.Rounds, boolCell(resD.Rounds <= 2*eta1+4))
		}
		worst := predict.Uniform(c.g.N(), 1)
		resC := mustMIS(c.g, mis.ConsecutiveCollect(), worst)
		refAloneC := mustMIS(c.g, mis.SimpleCollect(), worst)
		rob.AddRow(c.name, "collect", resC.Rounds, refAloneC.Rounds,
			float64(resC.Rounds)/float64(refAloneC.Rounds))
		resD := mustMIS(c.g, mis.ConsecutiveDecomp(7), worst)
		refAloneD := mustMIS(c.g, mis.Solo(decomp.Stage(7)), nil)
		rob.AddRow(c.name, "decomp", resD.Rounds, refAloneD.Rounds,
			float64(resD.Rounds)/float64(refAloneD.Rounds))
	}
	deg.Note("paper: rounds <= 2f(eta)+c(n) with f=mu1, c=3 (Lemma 8); checked as 2*eta1+4")
	rob.Note("paper: robust w.r.t. R — rounds within a constant factor of R's bound (ratio <= ~3)")
	return []*Table{deg, rob}
}

// E4 — Lemma 9 / Corollary 10: the Interleaved Template is 2f(η)-degrading
// and robust; the reference's phases shrink the active set geometrically.
func E4() []*Table {
	t := &Table{
		ID:      "E4",
		Title:   "Interleaved Template (decomposition reference)",
		Columns: []string{"graph", "flips", "eta1", "rounds", "<=2*eta1+4", "sched bound"},
	}
	for _, c := range misInstances() {
		sched := decomp.Phases(c.g.N()) * decomp.PhaseRounds(c.g.N())
		for _, k := range []int{0, 1, 4, 16, c.g.N()} {
			preds := perturbed(c.g, k, int64(300+k))
			eta1, _ := misErrors(c.g, preds)
			res := mustMIS(c.g, mis.InterleavedDecomp(11), preds)
			// Lemma 9's degradation counts only the U rounds plus matched R
			// slices; with whole-phase slices the bound is 3 + 2*(eta1
			// rounded up to whole slices).
			slice := decomp.PhaseRounds(c.g.N())
			slices := (eta1 + slice - 1) / slice
			bound := 3 + 2*slices*slice
			if eta1 == 0 {
				bound = 3
			}
			t.AddRow(c.name, k, eta1, res.Rounds, boolCell(res.Rounds <= bound), 3+2*sched)
		}
	}
	t.Note("paper: consistency 3, 2f(eta)-degrading, robust w.r.t. R (Lemma 9);")
	t.Note("slices here are whole reference phases, so the degradation bound is per-slice")
	return []*Table{t}
}

// E5 — Lemma 11 / Corollary 12: the Parallel Template is η₂-degrading (no
// factor 2) and robust with respect to the coloring reference.
func E5() []*Table {
	t := &Table{
		ID:      "E5",
		Title:   "Parallel Template (coloring reference, Corollary 12)",
		Columns: []string{"graph", "flips", "eta1", "eta2", "rounds", "<=eta2+4", "ref bound"},
	}
	for _, c := range misInstances() {
		delta := c.g.MaxDegree()
		refBound := 3 + vcolor.Rounds(c.g.D(), delta) + 1 + (delta + 1) + 3
		for _, k := range []int{0, 1, 2, 4, 8, 16, c.g.N()} {
			preds := perturbed(c.g, k, int64(400+k))
			eta1, eta2 := misErrors(c.g, preds)
			res := mustMIS(c.g, mis.ParallelColoring(), preds)
			ok := eta2 < 0 || res.Rounds <= eta2+4 || res.Rounds <= refBound
			t.AddRow(c.name, k, eta1, eta2, res.Rounds, boolCell(ok), refBound)
		}
	}
	t.Note("paper: rounds <= min{eta2+4, O(Delta+log* d)} (Corollary 12);")
	t.Note("our reference part 1 is O(Delta^2+log* d) — see DESIGN.md substitutions")
	return []*Table{t}
}

// E6 — Figure 1: the diameter measure is not monotone — F_k has diameter 4
// but its rim error component has diameter ⌊k/2⌋.
func E6() []*Table {
	t := &Table{
		ID:      "E6",
		Title:   "Wheel F_k: diameter of graph vs error component",
		Columns: []string{"k", "n", "diam(F_k)", "eta1(center=1)", "comp diam", "eta1(all 1)", "comp diam (all 1)"},
	}
	for _, k := range []int{8, 16, 32, 64, 128} {
		g := graph.WheelFk(k)
		predsCenter := predict.WheelCenterOne(k)
		activeC := predict.MISBaseActive(g, predsCenter)
		compsC := predict.ErrorComponents(g, activeC)
		diamC := -1
		for _, comp := range compsC {
			if d := comp.Graph.Diameter(); d > diamC {
				diamC = d
			}
		}
		predsAll := predict.Uniform(g.N(), 1)
		activeA := predict.MISBaseActive(g, predsAll)
		compsA := predict.ErrorComponents(g, activeA)
		diamA := -1
		for _, comp := range compsA {
			if d := comp.Graph.Diameter(); d > diamA {
				diamA = d
			}
		}
		t.AddRow(k, g.N(), g.Diameter(), predict.Eta1(compsC), diamC, predict.Eta1(compsA), diamA)
	}
	t.Note("paper: diam(F_k)=4; the rim component under center-one predictions has diameter floor(k/2),")
	t.Note("while the strictly worse all-ones predictions give a smaller-diameter component -> diameter is not a valid (monotone) measure")
	return []*Table{t}
}

// E7 — Figure 2 / Section 9.1: on the 4-block grid pattern η₁ = n but
// η_bw = 4, and the black/white alternating algorithm exploits it.
func E7() []*Table {
	t := &Table{
		ID:      "E7",
		Title:   "Grid black/white components: eta1 vs eta_bw and U_bw speedup",
		Columns: []string{"instance", "n", "eta1", "eta_bw", "base+greedy", "base+U_bw", "init+greedy"},
	}
	for _, side := range []int{8, 12, 16, 24, 32} {
		g := graph.Grid2D(side, side)
		preds := predict.GridBW(side, side)
		addBWRow(t, sprintGrid(side), g, preds)
	}
	// Ascending-ID lines with the 1-1-0-0 block pattern: eta1 = n while
	// eta_bw = 2, and the Greedy MIS Algorithm really does pay Θ(n) rounds
	// on this identifier assignment while U_bw stays constant.
	for _, n := range []int{64, 128, 256} {
		g := graph.Line(n)
		preds := make([]int, n)
		for i := range preds {
			if i%4 <= 1 {
				preds[i] = 1
			}
		}
		addBWRow(t, fmt.Sprintf("line-%d", n), g, preds)
	}
	t.Note("paper: eta1 = n while eta_bw stays constant on these instances; after the *Base*")
	t.Note("algorithm (which defines the error components), plain Greedy pays its eta1 guarantee")
	t.Note("on adversarial identifiers while U_bw tracks eta_bw; the Initialization algorithm's")
	t.Note("identifier tie-break happens to crack these periodic patterns by itself (last column)")
	return []*Table{t}
}

func addBWRow(t *Table, name string, g *graph.Graph, preds []int) {
	active := predict.MISBaseActive(g, preds)
	comps := predict.ErrorComponents(g, active)
	eta1 := predict.Eta1(comps)
	etaBW := predict.EtaBW(g, preds, active)
	resG := mustMIS(g, mis.SimpleBase(), preds)
	resBW := mustMIS(g, core.Sequence(mis.NewMemory, mis.Base(), mis.BWGreedy(0)), preds)
	resInit := mustMIS(g, mis.SimpleGreedy(), preds)
	t.AddRow(name, g.N(), eta1, etaBW, resG.Rounds, resBW.Rounds, resInit.Rounds)
}

func sprintGrid(side int) string {
	return fmt.Sprintf("%dx%d", side, side)
}
