package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/ecolor"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/vcolor"
	"repro/internal/verify"
)

// E8 — Section 9.2 / Corollary 15: rooted-tree MIS with predictions tracks
// η_t, which can be far below η₁.
func E8() []*Table {
	t := &Table{
		ID:      "E8",
		Title:   "Rooted-tree MIS: eta_t sweeps",
		Columns: []string{"tree", "flips", "eta1", "eta_t", "simple", "<=ceil(eta_t/2)+5", "parallel", "cv bound"},
	}
	rng := rand.New(rand.NewSource(8))
	trees := []struct {
		name string
		r    *tree.Rooted
	}{
		{"line-90", tree.DirectedLine(90)},
		{"rand-127", tree.RandomRooted(127, rng)},
		{"rand-255", tree.RandomRooted(255, rng)},
		{"cat-16x4", tree.RootAt(graph.Caterpillar(16, 4), 0)},
	}
	for _, tc := range trees {
		for _, k := range []int{0, 1, 2, 4, 8, tc.r.G.N()} {
			preds := perturbed(tc.r.G, k, int64(800+k))
			active := predict.MISBaseActive(tc.r.G, preds)
			eta1 := predict.Eta1(predict.ErrorComponents(tc.r.G, active))
			etaT := tree.EtaT(tc.r, preds, active)
			resS := mustMIS(tc.r.G, tree.SimpleRootsLeaves(tc.r), preds)
			resP := mustMIS(tc.r.G, tree.ParallelColoring(tc.r), preds)
			cvBound := 4 + tree.CVRounds(tc.r.G.D()) + 1 + 2 + 2
			t.AddRow(tc.name, k, eta1, etaT, resS.Rounds,
				boolCell(resS.Rounds <= (etaT+1)/2+5), resP.Rounds, cvBound)
		}
	}
	mod3 := &Table{
		ID:      "E8b",
		Title:   "Mod-3 directed line (Section 9.2 example)",
		Columns: []string{"3k", "eta1", "eta_t", "rounds tree-init", "rounds general-init"},
	}
	for _, k := range []int{10, 30, 100} {
		r := tree.DirectedLine(3 * k)
		preds := predict.Mod3Line(k)
		active := predict.MISBaseActive(r.G, preds)
		eta1 := predict.Eta1(predict.ErrorComponents(r.G, active))
		etaT := tree.EtaT(r, preds, active)
		resTree := mustMIS(r.G, tree.SimpleRootsLeaves(r), preds)
		resGen := mustMIS(r.G, mis.SimpleGreedy(), preds)
		mod3.AddRow(3*k, eta1, etaT, resTree.Rounds, resGen.Rounds)
	}
	mod3.Note("paper: eta1 = 3k but the tree initialization terminates everyone by round 2 (eta_t = 2)")
	return []*Table{t, mod3}
}

// E9 — Section 10: Luby's algorithm as the Simple reference takes expected
// rounds logarithmic in the *sum* of component sizes, not in η₁: on many
// small components its expected maximum grows with the component count.
func E9() []*Table {
	t := &Table{
		ID:      "E9",
		Title:   "Luby reference on many small components",
		Columns: []string{"path len L", "count", "n", "eta1", "many: mean±std (p90)", "single: mean±std (p90)", "greedy"},
	}
	const trials = 25
	for _, pathLen := range []int{3, 4, 6, 8} {
		count := 512
		g := graph.DisjointPaths(count, pathLen)
		single := graph.DisjointPaths(1, pathLen)
		preds := predict.Uniform(g.N(), 1)
		predsSingle := predict.Uniform(single.N(), 1)
		eta1, _ := misErrors(g, preds)
		var many, one []int
		for s := int64(0); s < trials; s++ {
			many = append(many, mustMIS(g, mis.SimpleLuby(1000+s), preds).Rounds)
			one = append(one, mustMIS(single, mis.SimpleLuby(2000+s), predsSingle).Rounds)
		}
		sm, so := stats.Summarize(many), stats.Summarize(one)
		resG := mustMIS(g, mis.SimpleGreedy(), preds)
		t.AddRow(pathLen, count, g.N(), eta1,
			fmt.Sprintf("%.2f±%.2f (%d)", sm.Mean, sm.Std, sm.P90),
			fmt.Sprintf("%.2f±%.2f (%d)", so.Mean, so.Std, so.P90),
			resG.Rounds)
	}
	t.Note("paper: E[rounds] over all components grows with log(sum of sizes) ~ L, while a single")
	t.Note("component of size L finishes in O(log L) expected rounds; the gap widens with count")
	return []*Table{t}
}

// E10 — Section 5: relations between the error measures.
func E10() []*Table {
	t := &Table{
		ID:      "E10",
		Title:   "Error measure relations over random instances",
		Columns: []string{"graph", "flips", "etaH", "eta1", "eta2", "eta_bw", "eta2<=eta1", "bw<=eta1", "init<=base"},
	}
	rng := rand.New(rand.NewSource(10))
	cases := []instance{
		{"gnp-24-.15", graph.GNP(24, 0.15, rng)},
		{"grid-5x5", graph.Grid2D(5, 5)},
		{"ring-20", graph.Ring(20)},
		{"tree-24", graph.RandomTree(24, rng)},
	}
	for _, c := range cases {
		for _, k := range []int{0, 1, 2, 4, 8} {
			preds := perturbed(c.g, k, int64(150+k))
			active := predict.MISBaseActive(c.g, preds)
			comps := predict.ErrorComponents(c.g, active)
			eta1 := predict.Eta1(comps)
			eta2, err := predict.Eta2(comps)
			if err != nil {
				eta2 = -1
			}
			etaBW := predict.EtaBW(c.g, preds, active)
			etaH, err := predict.EtaH(c.g, preds)
			if err != nil {
				etaH = -1
			}
			// η computed from a reasonable initialization's remaining
			// components is at most η from the base algorithm: approximate
			// the init-active set by running Simple and observing the
			// survivors after round 3 via the smaller measure directly.
			initEta1 := initActiveEta1(c.g, preds)
			t.AddRow(c.name, k, etaH, eta1, eta2, etaBW,
				boolCell(eta2 <= eta1), boolCell(etaBW <= eta1), boolCell(initEta1 <= eta1))
		}
	}
	t.Note("paper: eta2 <= eta1, eta_bw <= eta1, and measures over a reasonable initialization's")
	t.Note("components never exceed those over the base algorithm's (Section 5)")
	return []*Table{t}
}

// initActiveEta1 computes η₁ over the components left by the MIS
// Initialization Algorithm (rather than the Base Algorithm).
func initActiveEta1(g *graph.Graph, preds []int) int {
	inI := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if preds[v] != 1 {
			continue
		}
		ok := true
		for _, u := range g.Neighbors(v) {
			if preds[u] == 1 && g.ID(int(u)) > g.ID(v) {
				ok = false
				break
			}
		}
		inI[v] = ok
	}
	active := make([]bool, g.N())
	for v := range active {
		active[v] = !inI[v]
	}
	for v := 0; v < g.N(); v++ {
		if inI[v] {
			for _, u := range g.Neighbors(v) {
				active[u] = false
			}
		}
	}
	return predict.Eta1(predict.ErrorComponents(g, active))
}

// E11 — Lemmas 4, 5, 13, 14: on lines with adversarial (ascending)
// identifiers, the measure-uniform algorithms take Θ(n) rounds, matching the
// (n−c)/2 lower bounds for measure-uniform algorithms.
func E11() []*Table {
	t := &Table{
		ID:      "E11",
		Title:   "Measure-uniform algorithms on ascending-ID lines vs lower bounds",
		Columns: []string{"n", "mis", "(n-5)/2", "matching", "(n-3)/2", "vcolor", "ecolor", "mis rnd-ids"},
	}
	for _, n := range []int{64, 128, 256, 512} {
		g := graph.Line(n)
		resMIS := mustMIS(g, mis.Solo(mis.Greedy()), nil)
		resMatch := mustRun(g, matching.Solo(matching.MeasureUniform(0)), nil)
		resV := mustRun(g, vcolor.Solo(vcolor.MeasureUniform(0)), nil)
		resE := mustRun(g, ecolor.Solo(ecolor.MeasureUniform(0)), nil)
		rng := rand.New(rand.NewSource(int64(n)))
		shuffled := graph.ShuffleIDs(g, n, rng)
		resRand := mustMIS(shuffled, mis.Solo(mis.Greedy()), nil)
		t.AddRow(n, resMIS.Rounds, (n-5)/2, resMatch.Rounds, (n-3)/2,
			resV.Rounds, resE.Rounds, resRand.Rounds)
	}
	t.Note("paper: any measure-uniform algorithm needs >= (n-5)/2 rounds on some ID assignment of the line")
	t.Note("(Ramsey argument); ascending IDs realize the worst case here, random IDs do much better")

	// Constructive check of the lower bounds on small lines: exhaust every
	// identifier assignment and record the worst-case round count, which must
	// meet the Ramsey-style lower bounds of Lemmas 5 and 13.
	worst := &Table{
		ID:      "E11b",
		Title:   "Exhaustive worst case over all ID assignments (small lines)",
		Columns: []string{"n", "assignments", "mis worst", "(n-5)/2", "matching worst", "(n-3)/2"},
	}
	for _, n := range []int{5, 6, 7, 8} {
		misWorst := worstOverPermutations(n, func(g *graph.Graph) int {
			return mustMIS(g, mis.Solo(mis.Greedy()), nil).Rounds
		})
		matchWorst := worstOverPermutations(n, func(g *graph.Graph) int {
			return mustMatching(g, matching.Solo(matching.MeasureUniform(0)), nil).Rounds
		})
		worst.AddRow(n, factorial(n), misWorst, (n-5)/2, matchWorst, (n-3)/2)
	}
	worst.Note("every lower bound is met by some assignment, confirming the Ramsey-style argument")
	worst.Note("constructively at small n (the bound is asymptotic; small-n constants differ)")
	return []*Table{t, worst}
}

// worstOverPermutations runs the measured algorithm on the n-node line under
// every identifier permutation and returns the maximum round count.
func worstOverPermutations(n int, rounds func(*graph.Graph) int) int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	worst := 0
	permute(ids, 0, func(perm []int) {
		if r := rounds(graph.LineWithIDs(perm)); r > worst {
			worst = r
		}
	})
	return worst
}

// permute enumerates all permutations of ids[k:] in place.
func permute(ids []int, k int, visit func([]int)) {
	if k == len(ids)-1 {
		visit(ids)
		return
	}
	for i := k; i < len(ids); i++ {
		ids[k], ids[i] = ids[i], ids[k]
		permute(ids, k+1, visit)
		ids[k], ids[i] = ids[i], ids[k]
	}
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// E12 — Section 8.1: maximal matching with predictions.
func E12() []*Table {
	t := &Table{
		ID:      "E12",
		Title:   "Maximal matching with predictions",
		Columns: []string{"graph", "perturbed", "eta1", "simple", "<=3*floor(eta1/2)+5", "consecutive", "parallel"},
	}
	rng := rand.New(rand.NewSource(12))
	for _, c := range misInstances() {
		perfect := predict.PerfectMatching(c.g)
		for _, k := range []int{0, 1, 2, 4, 16, c.g.N()} {
			preds := predict.PerturbMatching(c.g, perfect, k, rng)
			active := predict.MatchingBaseActive(c.g, preds)
			eta1 := predict.Eta1(predict.ErrorComponents(c.g, active))
			resS := mustMatching(c.g, matching.SimpleGreedy(), preds)
			resC := mustMatching(c.g, matching.ConsecutiveCollect(), preds)
			resP := mustMatching(c.g, matching.ParallelColoring(), preds)
			t.AddRow(c.name, k, eta1, resS.Rounds,
				boolCell(resS.Rounds <= 3*(eta1/2)+5), resC.Rounds, resP.Rounds)
		}
	}
	t.Note("paper: base 2 rounds; measure-uniform <= 3*floor(s/2) per component (Section 8.1)")
	return []*Table{t}
}

func mustMatching(g *graph.Graph, factory runtime.Factory, preds []int) *runtime.Result {
	res := mustRun(g, factory, intPreds(preds))
	out := intOutputs(g, res)
	if err := verify.Matching(g, out); err != nil {
		panic(fmt.Sprintf("bench: invalid matching: %v", err))
	}
	return res
}

// E13 — Section 8.2: (Δ+1)-vertex coloring with predictions.
func E13() []*Table {
	t := &Table{
		ID:      "E13",
		Title:   "Vertex coloring with predictions",
		Columns: []string{"graph", "perturbed", "eta1", "simple", "<=eta1+2", "consecutive", "interleaved", "parallel", "linial bound"},
	}
	rng := rand.New(rand.NewSource(13))
	for _, c := range misInstances() {
		perfect := predict.PerfectVColor(c.g)
		bound := 2 + vcolor.RoundsList(c.g.D(), c.g.MaxDegree())
		for _, k := range []int{0, 1, 2, 4, 16, c.g.N()} {
			preds := predict.PerturbVColor(c.g, perfect, k, rng)
			active := predict.VColorBaseActive(c.g, preds)
			eta1 := predict.Eta1(predict.ErrorComponents(c.g, active))
			resS := mustVColor(c.g, vcolor.SimpleGreedy(), preds)
			resC := mustVColor(c.g, vcolor.ConsecutiveLinial(), preds)
			resI := mustVColor(c.g, vcolor.InterleavedLinial(), preds)
			resP := mustVColor(c.g, vcolor.ParallelLinial(), preds)
			t.AddRow(c.name, k, eta1, resS.Rounds,
				boolCell(resS.Rounds <= eta1+2), resC.Rounds, resI.Rounds, resP.Rounds, bound)
		}
	}
	t.Note("paper: base 2 rounds, no clean-up needed; measure-uniform <= s per component (Section 8.2)")
	return []*Table{t}
}

func mustVColor(g *graph.Graph, factory runtime.Factory, preds []int) *runtime.Result {
	res := mustRun(g, factory, intPreds(preds))
	out := intOutputs(g, res)
	if err := verify.VColor(g, out); err != nil {
		panic(fmt.Sprintf("bench: invalid coloring: %v", err))
	}
	return res
}

// E14 — Section 8.3: (2Δ−1)-edge coloring with predictions.
func E14() []*Table {
	t := &Table{
		ID:      "E14",
		Title:   "Edge coloring with predictions",
		Columns: []string{"graph", "perturbed", "eta1", "simple", "<=2*eta1+2", "consecutive", "parallel"},
	}
	rng := rand.New(rand.NewSource(14))
	for _, c := range misInstances() {
		perfect := predict.PerfectEColor(c.g)
		for _, k := range []int{0, 1, 2, 4, 16, c.g.M()} {
			preds := predict.PerturbEColor(c.g, perfect, k, rng)
			uncolored := predict.EColorBaseUncolored(c.g, preds)
			eta1 := predict.Eta1(predict.EdgeErrorComponents(c.g, uncolored))
			resS := mustEColor(c.g, ecolor.SimpleGreedy(), preds)
			resC := mustEColor(c.g, ecolor.ConsecutiveCollect(), preds)
			resP := mustEColor(c.g, ecolor.ParallelColoring(), preds)
			bound := 2*eta1 + 2
			if eta1 == 0 {
				bound = 2
			}
			t.AddRow(c.name, k, eta1, resS.Rounds, boolCell(resS.Rounds <= bound), resC.Rounds, resP.Rounds)
		}
	}
	t.Note("paper: base <= 2 rounds; measure-uniform <= 2s-3 per component (Section 8.3)")
	return []*Table{t}
}

func mustEColor(g *graph.Graph, factory runtime.Factory, preds []predict.EdgePrediction) *runtime.Result {
	var anyPreds []any
	if preds != nil {
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = []int(p)
		}
	}
	res := mustRun(g, factory, anyPreds)
	outs := make([][]int, g.N())
	for i, o := range res.Outputs {
		v, ok := o.([]int)
		if !ok {
			panic(fmt.Sprintf("bench: node %d output %T", g.ID(i), o))
		}
		outs[i] = v
	}
	colors, err := verify.NodeEdgeColorsAgree(g, outs)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	if g.M() > 0 {
		if err := verify.EColor(g, colors); err != nil {
			panic(fmt.Sprintf("bench: invalid edge coloring: %v", err))
		}
	}
	return res
}

// E15 — Section 1.1: the motivating scenario — an MIS computed on one
// network reused as predictions after the network drifts.
func E15() []*Table {
	t := &Table{
		ID:      "E15",
		Title:   "Network churn: reuse of a stale MIS as predictions",
		Columns: []string{"churn", "eta1", "eta2", "simple", "consecutive", "interleaved", "parallel", "from scratch"},
	}
	rng := rand.New(rand.NewSource(15))
	base := graph.GNP(192, 0.03, rng)
	for _, churn := range []int{0, 1, 2, 4, 8, 16, 32, 64, 128} {
		g := graph.FlipEdges(base, churn, rng)
		preds := predict.MISFromRelatedGraph(g, base)
		eta1, eta2 := misErrors(g, preds)
		rS := mustMIS(g, mis.SimpleGreedy(), preds)
		rC := mustMIS(g, mis.ConsecutiveDecomp(15), preds)
		rI := mustMIS(g, mis.InterleavedDecomp(15), preds)
		rP := mustMIS(g, mis.ParallelColoring(), preds)
		rScratch := mustMIS(g, mis.Solo(mis.Greedy()), nil)
		t.AddRow(churn, eta1, eta2, rS.Rounds, rC.Rounds, rI.Rounds, rP.Rounds, rScratch.Rounds)
	}
	t.Note("paper motivation (Section 1.1): small churn -> small eta -> near-consistent rounds,")
	t.Note("versus recomputing from scratch with the prediction-less measure-uniform algorithm")
	return []*Table{t}
}

// E16 — Section 2: engine self-checks — the goroutine and sequential engines
// agree exactly, and CONGEST-accountable algorithms stay within O(log n)
// bits per message.
func E16() []*Table {
	t := &Table{
		ID:      "E16",
		Title:   "Engine parity and message accounting",
		Columns: []string{"config", "rounds seq", "rounds par", "agree", "messages", "max msg bits"},
	}
	rng := rand.New(rand.NewSource(16))
	g := graph.GNP(96, 0.06, rng)
	preds := perturbed(g, 20, 99)
	cases := []struct {
		name    string
		factory runtime.Factory
		preds   []int
	}{
		{"greedy-solo", mis.Solo(mis.Greedy()), nil},
		{"simple", mis.SimpleGreedy(), preds},
		{"parallel-coloring", mis.ParallelColoring(), preds},
		{"interleaved", mis.InterleavedDecomp(3), preds},
		{"collect", mis.SimpleCollect(), preds},
	}
	for _, c := range cases {
		seq := mustRun(g, c.factory, intPreds(c.preds))
		par, err := runtime.Run(runtime.Config{
			Graph: g, Factory: c.factory, Predictions: intPreds(c.preds), Parallel: true,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: parallel run: %v", err))
		}
		agree := seq.Rounds == par.Rounds
		for i := range seq.Outputs {
			if seq.Outputs[i] != par.Outputs[i] {
				agree = false
			}
		}
		t.AddRow(c.name, seq.Rounds, par.Rounds, boolCell(agree), seq.Messages, seq.MaxMsgBits)
	}
	t.Note("every payload is size-accounted: LOCAL-by-design algorithms (collect/decomp floods)")
	t.Note("report their true linear payload sizes; max msg bits -1 marks runs that delivered")
	t.Note("no messages; the greedy/base/clean-up family fits CONGEST with O(1)-bit payloads")
	return []*Table{t}
}
