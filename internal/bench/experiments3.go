package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// E17 — Section 7.1 (second Simple-Template example): a reference that is
// uniform with respect to Δ has round complexity governed by the error
// components' maximum degree Δ', not the global Δ. A perfectly-predicted
// star of growing size is attached to a badly-predicted ring: the
// Δ-doubling reference's rounds stay flat while a global-Δ-bound reference
// scales with the star.
func E17() []*Table {
	t := &Table{
		ID:    "E17",
		Title: "Uniform (Delta-doubling) reference: local vs global parameters",
		Columns: []string{
			"star size", "n", "global delta", "delta'", "uniform rounds", "collect-ref rounds",
		},
	}
	ring := graph.Ring(24)
	ringPreds := predict.Uniform(24, 1)
	for _, starSize := range []int{25, 50, 100, 200, 400, 800} {
		star := graph.Star(starSize)
		g := graph.DisjointUnion(star, ring)
		preds := append(predict.PerfectMIS(star), ringPreds...)
		res := mustUniform(g, preds)
		collect := mustMIS(g, mis.SimpleCollect(), preds)
		t.AddRow(starSize, g.N(), g.MaxDegree(), 2, res.Rounds, collect.Rounds)
	}
	t.Note("paper: with a Delta-uniform reference the Simple Template runs in rounds governed by")
	t.Note("Delta' (the error components' maximum degree) and log* d — flat as the perfectly")
	t.Note("predicted star grows — while a reference with a global bound (collect: n+1) scales with n")
	return []*Table{t}
}

func mustUniform(g *graph.Graph, preds []int) *runtime.Result {
	info := runtime.NodeInfo{N: g.N(), D: g.D(), Delta: g.MaxDegree()}
	res, err := runtime.Run(runtime.Config{
		Graph:       g,
		Factory:     mis.SimpleUniform(),
		Predictions: intPreds(preds),
		MaxRounds:   mis.UniformMaxRounds(info),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: uniform run: %v", err))
	}
	out := intOutputs(g, res)
	if err := verify.MIS(g, out); err != nil {
		panic(fmt.Sprintf("bench: invalid MIS: %v", err))
	}
	return res
}

// E18 — Section 10 open problem: a consistency/robustness trade-off knob.
// The Consecutive Template's measure-uniform budget is λ·n: λ large trusts
// the predictions (best degradation, worst case ~n), λ small bails out to
// the reference early (worst case ~reference, degradation pays the switch).
func E18() []*Table {
	t := &Table{
		ID:      "E18",
		Title:   "Consistency/robustness trade-off (lambda sweep)",
		Columns: []string{"lambda", "rounds k=0", "rounds k=8", "rounds k=64", "rounds worst (all 1s)"},
	}
	// Ascending IDs make the line Greedy's worst case; the length is chosen
	// so the decomposition reference (nearly n-independent) is faster than
	// Greedy's Θ(n).
	g := graph.LineWithIDs(identity(1024))
	perfect := predict.PerfectMIS(g)
	for _, lambda := range []float64{0, 0.05, 0.125, 0.25, 0.5, 1} {
		row := []any{fmt.Sprintf("%.3f", lambda)}
		for _, k := range []int{0, 8, 64} {
			preds := predict.FlipBits(perfect, k, rand.New(rand.NewSource(int64(700+k))))
			res := mustTradeoff(g, preds, lambda)
			row = append(row, res.Rounds)
		}
		worst := mustTradeoff(g, predict.Uniform(g.N(), 1), lambda)
		row = append(row, worst.Rounds)
		t.AddRow(row...)
	}
	t.Note("small lambda caps the worst case near the reference's cost but pays the reference")
	t.Note("even at moderate error; large lambda degrades linearly with eta but risks ~n rounds —")
	t.Note("the trade-off the paper asks about in Section 10")
	return []*Table{t}
}

func mustTradeoff(g *graph.Graph, preds []int, lambda float64) *runtime.Result {
	res, err := runtime.Run(runtime.Config{
		Graph:       g,
		Factory:     mis.ConsecutiveTradeoff(lambda, 13),
		Predictions: intPreds(preds),
		MaxRounds:   64 * g.N(),
	})
	if err != nil {
		panic(fmt.Sprintf("bench: tradeoff run: %v", err))
	}
	out := intOutputs(g, res)
	if err := verify.MIS(g, out); err != nil {
		panic(fmt.Sprintf("bench: invalid MIS: %v", err))
	}
	return res
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

// E19 — message complexity of the templates: rounds are the paper's
// performance measure, but the templates differ markedly in communication;
// this table records delivered messages and the largest message size per
// template across prediction quality, on both a sparse random graph and a
// heavy-tailed (Barabási–Albert) one.
func E19() []*Table {
	t := &Table{
		ID:      "E19",
		Title:   "Message complexity of the templates",
		Columns: []string{"graph", "error", "template", "rounds", "messages", "max msg bits"},
	}
	rng := rand.New(rand.NewSource(19))
	cases := []instance{
		{"gnp-160-.03", graph.GNP(160, 0.03, rng)},
		{"ba-160-2", graph.BarabasiAlbert(160, 2, rng)},
		// Ascending-ID line with all-wrong predictions: the Greedy lane is
		// slow, so the reference algorithms actually run and the templates'
		// communication profiles separate.
		{"line-256-asc", graph.Line(256)},
	}
	templates := []struct {
		name    string
		factory runtime.Factory
	}{
		{"simple", mis.SimpleGreedy()},
		{"consecutive", mis.ConsecutiveDecomp(19)},
		{"interleaved", mis.InterleavedDecomp(19)},
		{"parallel", mis.ParallelColoring()},
	}
	for _, c := range cases {
		for _, k := range []string{"0", "8", "all-1s"} {
			var preds []int
			switch k {
			case "0":
				preds = predict.PerfectMIS(c.g)
			case "8":
				preds = perturbed(c.g, 8, 1908)
			default:
				preds = predict.Uniform(c.g.N(), 1)
			}
			for _, tmpl := range templates {
				res := mustMIS(c.g, tmpl.factory, preds)
				t.AddRow(c.name, k, tmpl.name, res.Rounds, res.Messages, res.MaxMsgBits)
			}
		}
	}
	t.Note("the parallel template pays extra messages for the coloring lane even when the")
	t.Note("measure-uniform lane wins; LOCAL-size floods (max msg bits -1) appear only when the")
	t.Note("decomposition reference is actually reached")
	return []*Table{t}
}
