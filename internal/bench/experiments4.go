package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/ecolor"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/vcolor"
)

// E20 — Section 5's case against global error measures: scattered and
// concentrated prediction errors with the *same* η_H behave completely
// differently, because nodes in different error components work
// independently. On a union of k short paths, flipping one bit per path
// (scattered) and flipping every bit of one path (concentrated) give similar
// global error counts but very different η₁ — and the measured rounds track
// η₁, not η_H.
func E20() []*Table {
	t := &Table{
		ID:      "E20",
		Title:   "Global vs local error measures (scattered vs concentrated errors)",
		Columns: []string{"pattern", "flipped bits", "eta1", "rounds simple", "rounds parallel"},
	}
	const paths, pathLen = 16, 16
	g := graph.DisjointPaths(paths, pathLen)
	perfect := predict.PerfectMIS(g)

	// Scattered: set the second node of eight different paths to 1, creating
	// eight independent two-node error components (8 corrupted bits).
	scattered := append([]int(nil), perfect...)
	for p := 0; p < 8; p++ {
		scattered[p*pathLen+1] = 1
	}
	// Concentrated: set every node of the first path to 1 (also 8 corrupted
	// bits — the zeros of the alternating solution), making the entire path
	// one error component.
	concentrated := append([]int(nil), perfect...)
	for i := 0; i < pathLen; i++ {
		concentrated[i] = 1
	}

	for _, c := range []struct {
		name  string
		preds []int
	}{
		{"scattered (1 per path)", scattered},
		{"concentrated (1 path)", concentrated},
	} {
		flips := 0
		for i := range c.preds {
			if c.preds[i] != perfect[i] {
				flips++
			}
		}
		eta1, _ := misErrors(g, c.preds)
		resS := mustMIS(g, mis.SimpleGreedy(), c.preds)
		resP := mustMIS(g, mis.ParallelColoring(), c.preds)
		t.AddRow(c.name, flips, eta1, resS.Rounds, resP.Rounds)
	}
	t.Note("both patterns corrupt 8 bits, but the scattered errors split across 8 components")
	t.Note("(small eta1, fast) while the concentrated ones form one large component (eta1 = path")
	t.Note("length); a global measure like eta_H cannot distinguish them (Section 5)")
	return []*Table{t}
}

// E21 — active-set decay series: the per-round number of active nodes for
// each template on a fixed adversarial instance — the repository's analogue
// of a convergence figure. Series are printed at a coarse sampling so the
// table stays readable.
func E21() []*Table {
	t := &Table{
		ID:      "E21",
		Title:   "Active-set decay (per-round active node counts)",
		Columns: []string{"template", "series (round:active, sampled)"},
	}
	g := graph.Line(256)
	preds := predict.Uniform(g.N(), 1) // all wrong: the whole line is one error component
	templates := []struct {
		name    string
		factory runtime.Factory
	}{
		{"simple", mis.SimpleGreedy()},
		{"interleaved", mis.InterleavedDecomp(21)},
		{"parallel", mis.ParallelColoring()},
	}
	for _, tmpl := range templates {
		var series []string
		last := -1
		_, err := runtime.Run(runtime.Config{
			Graph:       g,
			Factory:     tmpl.factory,
			Predictions: intPreds(preds),
			Observer: func(round int, outputs []any, active []bool) {
				count := 0
				for _, a := range active {
					if a {
						count++
					}
				}
				// Sample: record when the count changes materially or at
				// every 32nd round.
				if count != last && (last < 0 || last-count >= 16 || count == 0 || round%32 == 0) {
					series = append(series, fmt.Sprintf("%d:%d", round, count))
					last = count
				}
			},
		})
		if err != nil {
			panic(fmt.Sprintf("bench: decay run: %v", err))
		}
		t.AddRow(tmpl.name, joinSeries(series))
	}
	t.Note("simple (Greedy on ascending IDs) sheds ~2 nodes per round; the parallel template's")
	t.Note("coloring lane clears the line right after its O(log* d) section; the interleaved")
	t.Note("template alternates Greedy slices with decomposition phases")
	return []*Table{t}
}

func joinSeries(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

// E22 — Section 1.2's consistency calibration: an algorithm with predictions
// is consistent when its round complexity at η = 0 is within a constant of
// the optimal cost of *checking* a predicted solution. The table puts the
// distributed checkers' constant round counts next to the initialization
// algorithms' consistency for each problem.
func E22() []*Table {
	t := &Table{
		ID:      "E22",
		Title:   "Checking cost vs consistency (Section 1.2 / 1.3)",
		Columns: []string{"problem", "checker rounds", "consistency (rounds at eta=0)", "ratio <= 2"},
	}
	rng := rand.New(rand.NewSource(22))
	g := graph.GNP(80, 0.08, rng)

	misPreds := predict.PerfectMIS(g)
	checkRounds := mustRun(g, check.MIS(), intPreds(misPreds)).Rounds
	consist := mustMIS(g, mis.SimpleGreedy(), misPreds).Rounds
	t.AddRow("mis", checkRounds, consist, boolCell(consist <= 2*checkRounds))

	mPreds := predict.PerfectMatching(g)
	checkRounds = mustRun(g, check.Matching(), intPreds(mPreds)).Rounds
	consist = mustMatching(g, matching.SimpleGreedy(), mPreds).Rounds
	t.AddRow("matching", checkRounds, consist, boolCell(consist <= 2*checkRounds))

	vPreds := predict.PerfectVColor(g)
	checkRounds = mustRun(g, check.VColor(), intPreds(vPreds)).Rounds
	consist = mustVColor(g, vcolor.SimpleGreedy(), vPreds).Rounds
	t.AddRow("vcolor", checkRounds, consist, boolCell(consist <= 2*checkRounds))

	ePreds := predict.PerfectEColor(g)
	anyE := make([]any, len(ePreds))
	for i, p := range ePreds {
		anyE[i] = []int(p)
	}
	checkRounds = mustRun(g, check.EColor(), anyE).Rounds
	consist = mustEColor(g, ecolor.SimpleGreedy(), ePreds).Rounds
	t.AddRow("ecolor", checkRounds, consist, boolCell(consist <= 2*checkRounds))

	t.Note("paper: consistency is defined relative to the optimal checking cost; every")
	t.Note("initialization here finishes error-free instances within 2x its problem's checker")
	return []*Table{t}
}
