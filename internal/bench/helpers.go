package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// The harness treats any engine or verification error as a programming bug
// and panics with context; experiments are deterministic, so a panic here is
// reproducible and caught by the benchmark tests.

// mustRun executes a factory and returns the result.
func mustRun(g *graph.Graph, factory runtime.Factory, preds []any) *runtime.Result {
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: preds})
	if err != nil {
		panic(fmt.Sprintf("bench: run failed: %v", err))
	}
	return res
}

// mustMIS runs an MIS factory and verifies the output.
func mustMIS(g *graph.Graph, factory runtime.Factory, preds []int) *runtime.Result {
	res := mustRun(g, factory, intPreds(preds))
	out := intOutputs(g, res)
	if err := verify.MIS(g, out); err != nil {
		panic(fmt.Sprintf("bench: invalid MIS: %v", err))
	}
	return res
}

func intPreds(preds []int) []any {
	if preds == nil {
		return nil
	}
	out := make([]any, len(preds))
	for i, p := range preds {
		out[i] = p
	}
	return out
}

func intOutputs(g *graph.Graph, res *runtime.Result) []int {
	out := make([]int, g.N())
	for i, o := range res.Outputs {
		v, ok := o.(int)
		if !ok {
			panic(fmt.Sprintf("bench: node %d output %T, want int", g.ID(i), o))
		}
		out[i] = v
	}
	return out
}

// misErrors computes (η₁, η₂) for an MIS instance; η₂ is -1 when a component
// is too large for the exact solver.
func misErrors(g *graph.Graph, preds []int) (eta1, eta2 int) {
	active := predict.MISBaseActive(g, preds)
	comps := predict.ErrorComponents(g, active)
	eta1 = predict.Eta1(comps)
	e2, err := predict.Eta2(comps)
	if err != nil {
		return eta1, -1
	}
	return eta1, e2
}

// perturbed returns a perturbed perfect MIS prediction with k flips.
func perturbed(g *graph.Graph, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	return predict.FlipBits(predict.PerfectMIS(g), k, rng)
}

// instance couples a named graph with its construction.
type instance struct {
	name string
	g    *graph.Graph
}

// misInstances is the shared instance family for the MIS sweeps.
func misInstances() []instance {
	rng := rand.New(rand.NewSource(1))
	return []instance{
		{"ring-129", graph.Ring(129)},
		{"grid-12x12", graph.Grid2D(12, 12)},
		{"gnp-128-.04", graph.GNP(128, 0.04, rng)},
		{"tree-127", graph.RandomTree(127, rng)},
		{"hcube-7", graph.Hypercube(7)},
	}
}

// boolCell renders a bound check.
func boolCell(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
