// Package check implements distributed local verification of predicted
// solutions: constant-round algorithms in which every node outputs whether
// its own prediction is locally consistent, so that the predictions form a
// correct solution if and only if every node accepts.
//
// These are the "locally verifiable" checkers of the paper's Section 1.3
// (Göös–Suomela style), and they calibrate the consistency definition of
// Section 1.2: an algorithm with predictions is consistent when its round
// complexity with error-free predictions is within a constant of the
// checking cost below — 2 rounds for MIS and maximal matching, 1 round for
// the colorings.
package check

import (
	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/runtime"
)

// Accept and Reject are the checker outputs.
const (
	Reject = 0
	Accept = 1
)

// bitMsg carries a prediction bit or color.
type bitMsg struct{ V int }

// Bits sizes the message for CONGEST accounting.
func (bitMsg) Bits() int { return 16 }

// flagMsg carries a local deficiency flag during the second MIS round.
type flagMsg struct{ Covered bool }

// Bits sizes the message for CONGEST accounting.
func (flagMsg) Bits() int { return 1 }

// MIS returns the two-round MIS checker: round 1 exchanges prediction bits;
// a node accepts unless it predicts 1 beside a neighbor predicting 1, or it
// predicts 0 with no neighbor predicting 1.
func MIS() runtime.Factory {
	return core.Sequence(nil, core.Stage{
		Name: "check/mis",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			bit, _ := pred.(int)
			return &misChecker{bit: bit}
		},
	})
}

type misChecker struct {
	bit     int
	sawOne  bool
	sawSame bool
}

func (m *misChecker) Send(c *core.StageCtx) []runtime.Out {
	if c.StageRound() == 1 {
		return runtime.Broadcast(c.Info(), bitMsg{V: m.bit})
	}
	verdict := Accept
	if m.bit == 1 && m.sawSame {
		verdict = Reject // independence violated
	}
	if m.bit == 0 && !m.sawOne {
		verdict = Reject // maximality violated
	}
	if m.bit != 0 && m.bit != 1 {
		verdict = Reject
	}
	c.Output(verdict)
	return nil
}

func (m *misChecker) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		if bm, ok := msg.Payload.(bitMsg); ok {
			if bm.V == 1 {
				m.sawOne = true
				if m.bit == 1 {
					m.sawSame = true
				}
			}
		}
	}
}

// Matching returns the two-round maximal-matching checker: nodes exchange
// predicted partners; a node accepts when its prediction is mutual (or it
// predicts ⊥ and every neighbor is mutually matched elsewhere).
func Matching() runtime.Factory {
	return core.Sequence(nil, core.Stage{
		Name: "check/matching",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			p, _ := pred.(int)
			return &matchChecker{pred: p, nbrPred: make(map[int]int, len(info.NeighborIDs))}
		},
	})
}

type matchChecker struct {
	pred    int
	nbrPred map[int]int
}

func (m *matchChecker) Send(c *core.StageCtx) []runtime.Out {
	if c.StageRound() == 1 {
		return runtime.Broadcast(c.Info(), bitMsg{V: m.pred})
	}
	c.Output(m.verdict(c.Info()))
	return nil
}

func (m *matchChecker) verdict(info runtime.NodeInfo) int {
	if m.pred == predict.Unmatched {
		// Maximality: every neighbor must be matched — mutually, to a node
		// that is not me.
		for _, nb := range info.NeighborIDs {
			if m.nbrPred[nb] == predict.Unmatched || m.nbrPred[nb] == info.ID {
				return Reject
			}
		}
		return Accept
	}
	// Must point at a neighbor that points back.
	if p, ok := m.nbrPred[m.pred]; ok && p == info.ID {
		return Accept
	}
	return Reject
}

func (m *matchChecker) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		if bm, ok := msg.Payload.(bitMsg); ok {
			m.nbrPred[msg.From] = bm.V
		}
	}
}

// VColor returns the one-round-exchange (Δ+1)-coloring checker.
func VColor() runtime.Factory {
	return core.Sequence(nil, core.Stage{
		Name: "check/vcolor",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			p, _ := pred.(int)
			return &vcolorChecker{pred: p}
		},
	})
}

type vcolorChecker struct {
	pred int
	bad  bool
}

func (m *vcolorChecker) Send(c *core.StageCtx) []runtime.Out {
	if c.StageRound() == 1 {
		return runtime.Broadcast(c.Info(), bitMsg{V: m.pred})
	}
	if m.bad || m.pred < 1 || m.pred > c.Info().Delta+1 {
		c.Output(Reject)
	} else {
		c.Output(Accept)
	}
	return nil
}

func (m *vcolorChecker) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		if bm, ok := msg.Payload.(bitMsg); ok && bm.V == m.pred {
			m.bad = true
		}
	}
}

// EColor returns the (2Δ−1)-edge-coloring checker: each node sends each
// neighbor the color it predicts for their shared edge; a node accepts when
// its own predictions are in range and pairwise distinct and every neighbor
// offered the same color for the shared edge.
func EColor() runtime.Factory {
	return core.Sequence(nil, core.Stage{
		Name: "check/ecolor",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			p, _ := pred.([]int)
			return &ecolorChecker{pred: p, nbrOffer: make(map[int]int, len(info.NeighborIDs))}
		},
	})
}

type ecolorChecker struct {
	pred     []int
	nbrOffer map[int]int
}

func (m *ecolorChecker) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	if c.StageRound() == 1 {
		if len(m.pred) != len(info.NeighborIDs) {
			return nil // verdict will reject
		}
		outs := make([]runtime.Out, len(info.NeighborIDs))
		for j, nb := range info.NeighborIDs {
			outs[j] = runtime.Out{To: nb, Payload: bitMsg{V: m.pred[j]}}
		}
		return outs
	}
	c.Output(m.verdict(info))
	return nil
}

func (m *ecolorChecker) verdict(info runtime.NodeInfo) int {
	palette := 2*info.Delta - 1
	if len(m.pred) != len(info.NeighborIDs) {
		return Reject
	}
	seen := make(map[int]bool, len(m.pred))
	for _, col := range m.pred {
		if col < 1 || col > palette || seen[col] {
			return Reject
		}
		seen[col] = true
	}
	for j, nb := range info.NeighborIDs {
		if offer, ok := m.nbrOffer[nb]; !ok || offer != m.pred[j] {
			return Reject
		}
	}
	return Accept
}

func (m *ecolorChecker) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		if bm, ok := msg.Payload.(bitMsg); ok {
			m.nbrOffer[msg.From] = bm.V
		}
	}
}
