package check_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// runChecker executes a checker and returns whether every node accepted,
// also asserting the constant round bound.
func runChecker(t *testing.T, g *graph.Graph, factory runtime.Factory, preds []any, maxRounds int) bool {
	t.Helper()
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: preds})
	if err != nil {
		t.Fatalf("checker run: %v", err)
	}
	if res.Rounds > maxRounds {
		t.Fatalf("checker took %d rounds, want <= %d", res.Rounds, maxRounds)
	}
	for _, o := range res.Outputs {
		if o.(int) == check.Reject {
			return false
		}
	}
	return true
}

func intAny(v []int) []any {
	out := make([]any, len(v))
	for i, x := range v {
		out[i] = x
	}
	return out
}

// TestQuickMISCheckerSoundAndComplete: the checker accepts everywhere iff
// the predictions form a maximal independent set.
func TestQuickMISCheckerSoundAndComplete(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%25) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.2, rng)
		preds := predict.FlipProb(predict.PerfectMIS(g), 0.2, rng)
		res, err := runtime.Run(runtime.Config{Graph: g, Factory: check.MIS(), Predictions: intAny(preds)})
		if err != nil {
			return false
		}
		allAccept := true
		for _, o := range res.Outputs {
			if o.(int) == check.Reject {
				allAccept = false
			}
		}
		valid := verify.MIS(g, preds) == nil
		return allAccept == valid && res.Rounds <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickMatchingChecker: accept everywhere iff a maximal matching.
func TestQuickMatchingChecker(t *testing.T) {
	f := func(seed int64, rawN uint8, k uint8) bool {
		n := int(rawN%20) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.25, rng)
		preds := predict.PerturbMatching(g, predict.PerfectMatching(g), int(k)%(n+1), rng)
		res, err := runtime.Run(runtime.Config{Graph: g, Factory: check.Matching(), Predictions: intAny(preds)})
		if err != nil {
			return false
		}
		allAccept := true
		for _, o := range res.Outputs {
			if o.(int) == check.Reject {
				allAccept = false
			}
		}
		valid := verify.Matching(g, preds) == nil
		return allAccept == valid && res.Rounds <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickVColorChecker: accept everywhere iff a proper (Δ+1)-coloring.
func TestQuickVColorChecker(t *testing.T) {
	f := func(seed int64, rawN uint8, k uint8) bool {
		n := int(rawN%20) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.25, rng)
		preds := predict.PerturbVColor(g, predict.PerfectVColor(g), int(k)%(n+1), rng)
		res, err := runtime.Run(runtime.Config{Graph: g, Factory: check.VColor(), Predictions: intAny(preds)})
		if err != nil {
			return false
		}
		allAccept := true
		for _, o := range res.Outputs {
			if o.(int) == check.Reject {
				allAccept = false
			}
		}
		valid := verify.VColor(g, preds) == nil
		return allAccept == valid && res.Rounds <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEColorChecker: accept everywhere iff a proper (2Δ−1)-edge
// coloring with agreeing endpoints.
func TestQuickEColorChecker(t *testing.T) {
	f := func(seed int64, rawN uint8, k uint8) bool {
		n := int(rawN%16) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		preds := predict.PerturbEColor(g, predict.PerfectEColor(g), int(k)%(g.M()+1), rng)
		anyPreds := make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = []int(p)
		}
		res, err := runtime.Run(runtime.Config{Graph: g, Factory: check.EColor(), Predictions: anyPreds})
		if err != nil {
			return false
		}
		allAccept := true
		for _, o := range res.Outputs {
			if o.(int) == check.Reject {
				allAccept = false
			}
		}
		valid := ecolorValid(g, preds)
		return allAccept == valid && res.Rounds <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// ecolorValid reports whether per-node edge predictions form a proper
// (2Δ−1)-edge coloring with agreeing endpoints.
func ecolorValid(g *graph.Graph, preds []predict.EdgePrediction) bool {
	outs := make([][]int, g.N())
	for i, p := range preds {
		outs[i] = p
	}
	colors, err := verify.NodeEdgeColorsAgree(g, outs)
	if err != nil {
		return false
	}
	if g.M() == 0 {
		return true
	}
	return verify.EColor(g, colors) == nil
}

func TestCheckersOnKnownInstances(t *testing.T) {
	g := graph.Ring(10)
	if !runChecker(t, g, check.MIS(), intAny(predict.PerfectMIS(g)), 2) {
		t.Error("perfect MIS rejected")
	}
	if runChecker(t, g, check.MIS(), intAny(predict.Uniform(10, 1)), 2) {
		t.Error("all-ones accepted")
	}
	if runChecker(t, g, check.MIS(), intAny(predict.Uniform(10, 0)), 2) {
		t.Error("all-zeros accepted")
	}
	if !runChecker(t, g, check.Matching(), intAny(predict.PerfectMatching(g)), 2) {
		t.Error("perfect matching rejected")
	}
	if !runChecker(t, g, check.VColor(), intAny(predict.PerfectVColor(g)), 2) {
		t.Error("perfect coloring rejected")
	}
	eAny := make([]any, g.N())
	for i, p := range predict.PerfectEColor(g) {
		eAny[i] = []int(p)
	}
	if !runChecker(t, g, check.EColor(), eAny, 2) {
		t.Error("perfect edge coloring rejected")
	}
}
