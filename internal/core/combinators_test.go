package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/runtime"
)

// laneRecorder is a stage machine that appends a label to the shared trace
// every time it is stepped, and finishes after a given number of steps.
type laneRecorder struct {
	label  string
	limit  int // 0 = never finishes on its own
	out    any // output on finish (nil = yield)
	tr     *trace
	result string // when set, written into the shared resultBox on finish
}

func (m *laneRecorder) Send(c *core.StageCtx) []runtime.Out {
	m.tr.events = append(m.tr.events, m.label)
	return runtime.Broadcast(c.Info(), ping{Stage: m.label})
}

func (m *laneRecorder) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		p, ok := msg.Payload.(ping)
		if !ok || p.Stage != m.label {
			c.Fail(errTrace("lane " + m.label + " saw foreign message"))
			return
		}
	}
	if m.limit > 0 && c.StageRound() >= m.limit {
		if m.result != "" {
			if box, ok := c.Memory().(*laneMemory); ok {
				box.result = m.result
			}
		}
		if m.out != nil {
			c.Output(m.out)
		} else {
			c.Yield()
		}
	}
}

type laneMemory struct {
	trace
	result string
}

func recorderFactory(label string, limit int, out any, result string) core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		lm := mem.(*laneMemory)
		return &laneRecorder{label: label, limit: limit, out: out, tr: &lm.trace, result: result}
	}
}

func laneMem(info runtime.NodeInfo, pred any) any { return &laneMemory{} }

// TestInterleavedSchedule verifies the slicing: with schedule [2, 3], the
// lanes run U U R R | U U U R R R, with the initialization stage first.
func TestInterleavedSchedule(t *testing.T) {
	g := graph.Line(3)
	var mems []*laneMemory
	factory := func(info runtime.NodeInfo, pred any) runtime.Machine {
		inner := core.Interleaved(
			func(i runtime.NodeInfo, p any) any {
				lm := &laneMemory{}
				mems = append(mems, lm)
				return lm
			},
			core.Stage{Name: "b", Budget: 1, New: recorderFactory("b", 1, nil, "")},
			recorderFactory("u", 0, nil, ""),
			// The reference outputs after 5 of its own rounds: exactly at
			// the end of its second slice.
			recorderFactory("r", 5, "done", ""),
			func(info runtime.NodeInfo) []int { return []int{2, 3} },
		)
		return inner(info, pred)
	}
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	// b(1) + 2u + 2r + 3u + 3r = 11 rounds.
	if res.Rounds != 11 {
		t.Fatalf("rounds = %d, want 11", res.Rounds)
	}
	for _, o := range res.Outputs {
		if o != "done" {
			t.Errorf("output %v", o)
		}
	}
	for _, lm := range mems {
		got := joinEvents(lm.trace.events)
		if got != "buurruuurrr" {
			t.Errorf("trace %q, want buurruuurrr", got)
		}
	}
}

// TestInterleavedOvershoot: a reference slower than its declared schedule
// keeps running on the reference lane after the schedule is exhausted.
func TestInterleavedOvershoot(t *testing.T) {
	g := graph.Line(2)
	var mems []*laneMemory
	factory := func(info runtime.NodeInfo, pred any) runtime.Machine {
		inner := core.Interleaved(
			func(i runtime.NodeInfo, p any) any {
				lm := &laneMemory{}
				mems = append(mems, lm)
				return lm
			},
			core.Stage{Name: "b", Budget: 1, New: recorderFactory("b", 1, nil, "")},
			recorderFactory("u", 0, nil, ""),
			recorderFactory("r", 4, 1, ""), // needs 4 R rounds; schedule provides 2
			func(info runtime.NodeInfo) []int { return []int{2} },
		)
		return inner(info, pred)
	}
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	// b + uu + rr + rr(overshoot) = 7.
	if res.Rounds != 7 {
		t.Fatalf("rounds = %d, want 7", res.Rounds)
	}
	for _, lm := range mems {
		if got := joinEvents(lm.trace.events); got != "buurrrr" {
			t.Errorf("trace %q, want buurrrr", got)
		}
	}
}

// TestInterleavedUTerminatesEarly: when the measure-uniform lane finishes
// the whole problem inside its first slice, the reference never runs.
func TestInterleavedUFinishesFirst(t *testing.T) {
	g := graph.Line(2)
	factory := core.Interleaved(
		laneMem,
		core.Stage{Name: "b", Budget: 1, New: recorderFactory("b", 1, nil, "")},
		recorderFactory("u", 2, 7, ""), // outputs in its second round
		recorderFactory("r", 1, 9, ""),
		func(info runtime.NodeInfo) []int { return []int{4} },
	)
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3 (b + 2u)", res.Rounds)
	}
	for _, o := range res.Outputs {
		if o != 7 {
			t.Errorf("output %v, want 7 (from U)", o)
		}
	}
}

// TestParallelSection verifies the Parallel Template mechanics: both lanes
// step each round of the section, part 1's result lands in shared memory,
// and part 2 reads it after the section.
func TestParallelSection(t *testing.T) {
	g := graph.Line(3)
	var mems []*laneMemory
	readResult := core.StageFactory(func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return &resultReader{mem: mem.(*laneMemory)}
	})
	factory := core.Parallel(core.ParallelSpec{
		Mem: func(i runtime.NodeInfo, p any) any {
			lm := &laneMemory{}
			mems = append(mems, lm)
			return lm
		},
		B: core.Stage{Name: "b", Budget: 1, New: recorderFactory("b", 1, nil, "")},
		U: recorderFactory("u", 0, nil, ""),
		// R1 finishes (yields) after 2 rounds, storing its result; the
		// section budget is 4, so its lane idles for 2 rounds.
		R1:       recorderFactory("r", 2, nil, "colored"),
		R1Budget: func(info runtime.NodeInfo) int { return 4 },
		C:        nil,
		R2:       readResult,
	})
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	// b(1) + section(4) + r2(1) = 6.
	if res.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", res.Rounds)
	}
	for _, o := range res.Outputs {
		if o != "colored" {
			t.Errorf("output %v, want part 1's stored result", o)
		}
	}
	for _, lm := range mems {
		// Per section round both lanes step; R1 idles after yielding.
		if got := joinEvents(lm.trace.events); got != "bururuu" {
			t.Errorf("trace %q, want bururuu", got)
		}
	}
}

type resultReader struct{ mem *laneMemory }

func (m *resultReader) Send(c *core.StageCtx) []runtime.Out { return nil }
func (m *resultReader) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	c.Output(m.mem.result)
}

// TestParallelUWins: a measure-uniform lane that finishes everyone during
// the section ends the run; part 2 never executes.
func TestParallelUWins(t *testing.T) {
	g := graph.Line(2)
	factory := core.Parallel(core.ParallelSpec{
		Mem:      laneMem,
		B:        core.Stage{Name: "b", Budget: 1, New: recorderFactory("b", 1, nil, "")},
		U:        recorderFactory("u", 2, "fast", ""),
		R1:       recorderFactory("r", 0, nil, ""),
		R1Budget: func(info runtime.NodeInfo) int { return 10 },
		R2:       recorderFactory("r2", 1, "slow", ""),
	})
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	for _, o := range res.Outputs {
		if o != "fast" {
			t.Errorf("output %v, want U's", o)
		}
	}
}

// TestParallelPart1MustNotOutput: a reference part 1 that outputs is a
// composition bug and must abort the run.
func TestParallelPart1MustNotOutput(t *testing.T) {
	g := graph.Line(2)
	factory := core.Parallel(core.ParallelSpec{
		Mem:      laneMem,
		B:        core.Stage{Name: "b", Budget: 1, New: recorderFactory("b", 1, nil, "")},
		U:        recorderFactory("u", 0, nil, ""),
		R1:       recorderFactory("r", 2, "illegal", ""),
		R1Budget: func(info runtime.NodeInfo) int { return 6 },
		R2:       recorderFactory("r2", 1, "x", ""),
	})
	if _, err := runtime.Run(runtime.Config{Graph: g, Factory: factory}); err == nil {
		t.Fatal("part 1 output should abort the run")
	}
}

// TestParallelWithCleanup: the clean-up stage runs between the section and
// part 2.
func TestParallelWithCleanup(t *testing.T) {
	g := graph.Line(2)
	var mems []*laneMemory
	cleanup := core.Stage{Name: "c", Budget: 2, New: recorderFactory("c", 0, nil, "")}
	factory := core.Parallel(core.ParallelSpec{
		Mem: func(i runtime.NodeInfo, p any) any {
			lm := &laneMemory{}
			mems = append(mems, lm)
			return lm
		},
		B:        core.Stage{Name: "b", Budget: 1, New: recorderFactory("b", 1, nil, "")},
		U:        recorderFactory("u", 0, nil, ""),
		R1:       recorderFactory("r", 1, nil, "v"),
		R1Budget: func(info runtime.NodeInfo) int { return 2 },
		C:        &cleanup,
		R2:       recorderFactory("r2", 1, "end", ""),
	})
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	// b(1) + section(2) + cleanup(2) + r2(1) = 6.
	if res.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", res.Rounds)
	}
	for _, lm := range mems {
		if got := joinEvents(lm.trace.events); got != "buruccr2" {
			t.Errorf("trace %q, want buruccr2", got)
		}
	}
}

func joinEvents(events []string) string {
	out := ""
	for _, e := range events {
		out += e
	}
	return out
}
