// Package core implements the paper's framework for distributed graph
// algorithms with predictions (Sections 4, 6, 7): algorithms are composed
// from stages — a reasonable initialization algorithm, a measure-uniform
// algorithm, a clean-up algorithm, and a reference algorithm — and the four
// templates (Simple, Consecutive, Interleaved, Parallel) are generic
// combinators over those stages.
//
// Stage machines are written exactly like ordinary per-node machines; the
// combinators multiplex their messages onto the underlying network by tagging
// each payload with the stage or lane it belongs to, so the composed
// algorithms use their components as black boxes, as the paper prescribes.
// A per-node shared memory (created once per node, visible to every stage of
// that node) carries the knowledge the paper assumes persists across stages,
// such as which neighbors have terminated with which outputs.
package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// StageMachine is the per-node behaviour of one algorithm stage. The
// send/receive contract matches runtime.Machine; the StageCtx additionally
// allows the machine to yield (finish the stage without a final output,
// handing the node to the next stage).
type StageMachine interface {
	Send(c *StageCtx) []runtime.Out
	Receive(c *StageCtx, inbox []runtime.Msg)
}

// StageFactory creates the stage machine for one node. mem is the node's
// shared memory (see Compose); pred is the node's prediction.
type StageFactory func(info runtime.NodeInfo, pred any, mem any) StageMachine

// Stage is one stage of a composed algorithm.
type Stage struct {
	// Name identifies the stage in error messages and traces.
	Name string
	// Budget caps the stage at a fixed number of rounds; after the budget
	// elapses every node still in the stage is forcibly yielded (the paper's
	// "interrupted after a given number of rounds"). Budget 0 means the
	// stage runs until every node outputs or yields.
	Budget int
	// New builds the per-node machine for this stage.
	New StageFactory
}

// MemoryFactory creates the per-node shared memory visible to all stages of
// that node. It may return nil when stages need no shared state.
type MemoryFactory func(info runtime.NodeInfo, pred any) any

// StageCtx is the environment a stage machine sees. It wraps the node's
// runtime environment and adds stage-local control flow.
type StageCtx struct {
	env        *runtime.Env
	mem        any
	stageRound int
	yielded    bool
}

// Info returns the node's static information.
func (c *StageCtx) Info() runtime.NodeInfo { return c.env.Info() }

// ID returns the node's identifier.
func (c *StageCtx) ID() int { return c.env.ID() }

// Round returns the global round number (1-based).
func (c *StageCtx) Round() int { return c.env.Round() }

// StageRound returns the number of rounds this stage has been stepped on
// this node, counting the current round (1-based).
func (c *StageCtx) StageRound() int { return c.stageRound }

// Memory returns the node's shared memory.
func (c *StageCtx) Memory() any { return c.mem }

// Output assigns the node's final output and terminates it; later stages
// never run on this node.
func (c *StageCtx) Output(v any) {
	c.env.Output(v)
	c.env.Terminate()
}

// PartialOutput records an output value without terminating the node. Used
// by problems whose nodes emit outputs over several rounds (edge coloring);
// the final call to Output fixes the complete value.
func (c *StageCtx) PartialOutput(v any) {
	c.env.Output(v)
}

// Yield finishes this stage for the node without a final output; the next
// stage takes over starting next round.
func (c *StageCtx) Yield() { c.yielded = true }

// Fail records a protocol error that aborts the run.
func (c *StageCtx) Fail(err error) { c.env.Fail(err) }

// Tracing reports whether a trace recorder is attached to the run; guard
// annotation-string construction on it to keep the disabled path free.
func (c *StageCtx) Tracing() bool { return c.env.Tracing() }

// Annotate stages a trace annotation for this node (see runtime.Env's
// Annotate); the combinators use it to mark stage and lane transitions.
func (c *StageCtx) Annotate(name string, value int64) { c.env.Annotate(name, value) }

// annotateStage stages the span annotation for entering a named stage with
// the given round budget. All combinators funnel through this so stage
// spans share one naming convention (obs.SpanStagePrefix + name).
func annotateStage(env *runtime.Env, name string, budget int) {
	env.Annotate(obs.SpanStagePrefix+name, int64(budget))
}

// taggedMsg wraps a stage payload with the lane and stage it belongs to.
type taggedMsg struct {
	lane    uint8
	stage   uint16
	payload any
}

// Bits implements runtime.BitSized when the payload does, adding a small
// fixed header for the tags.
func (m taggedMsg) Bits() int {
	const header = 8
	if bs, ok := m.payload.(runtime.BitSized); ok {
		return header + bs.Bits()
	}
	return -1 // forces LOCAL accounting upstream
}

func wrapOuts(outs []runtime.Out, lane uint8, stage uint16) []runtime.Out {
	for i := range outs {
		outs[i].Payload = taggedMsg{lane: lane, stage: stage, payload: outs[i].Payload}
	}
	return outs
}

func unwrapInbox(inbox []runtime.Msg, lane uint8, stage uint16) ([]runtime.Msg, error) {
	out := make([]runtime.Msg, 0, len(inbox))
	for _, m := range inbox {
		tm, ok := m.Payload.(taggedMsg)
		if !ok {
			return nil, fmt.Errorf("%w: core: untagged message from node %d", runtime.ErrProtocol, m.From)
		}
		if tm.lane != lane || tm.stage != stage {
			return nil, fmt.Errorf("%w: core: lockstep violation: message from node %d on lane %d stage %d, expected lane %d stage %d",
				runtime.ErrProtocol, m.From, tm.lane, tm.stage, lane, stage)
		}
		out = append(out, runtime.Msg{From: m.From, Payload: tm.payload})
	}
	return out, nil
}
