package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/runtime"
)

// countStage yields (or outputs) after a fixed number of rounds, recording
// its execution trace into the shared memory for assertions.
type trace struct {
	events []string
}

func mem(info runtime.NodeInfo, pred any) any { return &trace{} }

// stage runs for `rounds` stage rounds and then either outputs `out` (when
// terminal) or yields.
func stage(name string, rounds int, out any) core.Stage {
	return core.Stage{
		Name: name,
		New: func(info runtime.NodeInfo, pred any, m any) core.StageMachine {
			return &stageMachine{name: name, rounds: rounds, out: out, tr: m.(*trace)}
		},
	}
}

type stageMachine struct {
	name   string
	rounds int
	out    any
	tr     *trace
}

type ping struct{ Stage string }

func (m *stageMachine) Send(c *core.StageCtx) []runtime.Out {
	m.tr.events = append(m.tr.events, m.name)
	return runtime.Broadcast(c.Info(), ping{Stage: m.name})
}

func (m *stageMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		p, ok := msg.Payload.(ping)
		if !ok || p.Stage != m.name {
			c.Fail(errTrace("cross-stage message leaked"))
			return
		}
	}
	if c.StageRound() >= m.rounds {
		if m.out != nil {
			c.Output(m.out)
		} else {
			c.Yield()
		}
	}
}

type errTrace string

func (e errTrace) Error() string { return string(e) }

func TestSequenceRunsStagesInOrder(t *testing.T) {
	g := graph.Ring(5)
	var traces []*trace
	factory := func(info runtime.NodeInfo, pred any) runtime.Machine {
		inner := core.Sequence(
			func(i runtime.NodeInfo, p any) any {
				tr := &trace{}
				traces = append(traces, tr)
				return tr
			},
			stage("a", 2, nil),
			stage("b", 3, nil),
			stage("c", 1, "done"),
		)
		return inner(info, pred)
	}
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 6 {
		t.Fatalf("rounds = %d, want 2+3+1 = 6", res.Rounds)
	}
	for _, o := range res.Outputs {
		if o != "done" {
			t.Errorf("output %v", o)
		}
	}
	for _, tr := range traces {
		got := strings.Join(tr.events, "")
		if got != "aabbbc" {
			t.Errorf("trace %q, want aabbbc", got)
		}
	}
}

func TestSequenceBudgetInterrupts(t *testing.T) {
	g := graph.Line(3)
	factory := core.Sequence(mem,
		core.Stage{
			Name:   "long",
			Budget: 2, // interrupt a 100-round stage after 2 rounds
			New:    stage("long", 100, nil).New,
		},
		stage("fin", 1, 7),
	)
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 2 (budget) + 1", res.Rounds)
	}
	for _, o := range res.Outputs {
		if o != 7 {
			t.Errorf("output %v, want 7", o)
		}
	}
}

func TestSequencePastFinalStageFails(t *testing.T) {
	g := graph.Line(2)
	factory := core.Sequence(mem, stage("only", 1, nil)) // yields, nothing follows
	_, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err == nil || !strings.Contains(err.Error(), "past final stage") {
		t.Fatalf("want past-final-stage error, got %v", err)
	}
}

// desyncStage yields at different rounds on different nodes, breaking the
// lockstep contract; the tag checks must catch the resulting cross-stage
// message.
func TestSequenceLockstepViolationDetected(t *testing.T) {
	g := graph.Line(2)
	factory := core.Sequence(mem,
		core.Stage{
			Name: "desync",
			New: func(info runtime.NodeInfo, pred any, m any) core.StageMachine {
				rounds := 1
				if info.ID == 2 {
					rounds = 3
				}
				return &stageMachine{name: "desync", rounds: rounds, tr: m.(*trace)}
			},
		},
		stage("next", 5, "x"),
	)
	_, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err == nil {
		t.Fatal("want lockstep violation error")
	}
	if !strings.Contains(err.Error(), "lockstep") && !strings.Contains(err.Error(), "leaked") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSharedMemoryAcrossStages(t *testing.T) {
	g := graph.Line(2)
	writer := core.Stage{
		Name: "writer",
		New: func(info runtime.NodeInfo, pred any, m any) core.StageMachine {
			return writerMachine{st: m.(*sharedState)}
		},
	}
	reader := core.Stage{
		Name: "reader",
		New: func(info runtime.NodeInfo, pred any, m any) core.StageMachine {
			return readerMachine{st: m.(*sharedState)}
		},
	}
	factory := core.Sequence(
		func(runtime.NodeInfo, any) any { return &sharedState{} },
		writer, reader,
	)
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outputs {
		if o != 42 {
			t.Errorf("output %v, want 42 via shared memory", o)
		}
	}
}

type sharedState struct{ v int }

type writerMachine struct{ st *sharedState }

func (m writerMachine) Send(c *core.StageCtx) []runtime.Out { return nil }
func (m writerMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	m.st.v = 42
	c.Yield()
}

type readerMachine struct{ st *sharedState }

func (m readerMachine) Send(c *core.StageCtx) []runtime.Out { return nil }
func (m readerMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	c.Output(m.st.v)
}

func TestPredictionsReachStageFactories(t *testing.T) {
	g := graph.Line(3)
	factory := core.Sequence(mem, core.Stage{
		Name: "pred-echo",
		New: func(info runtime.NodeInfo, pred any, m any) core.StageMachine {
			return predEcho{pred: pred}
		},
	})
	preds := []any{10, 20, 30}
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: preds})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range res.Outputs {
		if o != preds[i] {
			t.Errorf("node %d output %v, want %v", i, o, preds[i])
		}
	}
}

type predEcho struct{ pred any }

func (m predEcho) Send(c *core.StageCtx) []runtime.Out { return nil }
func (m predEcho) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	c.Output(m.pred)
}
