package core

import (
	"fmt"

	"repro/internal/runtime"
)

// PhaseSchedule returns the per-phase round budgets r_1, ..., r_m that every
// node can compute from its static information (paper Section 7.3). The
// Interleaved combinator runs r_i rounds of the measure-uniform lane followed
// by r_i rounds of the reference lane for each phase i.
type PhaseSchedule func(info runtime.NodeInfo) []int

// Interleaved composes the Interleaved Template (paper Algorithm 4): a
// reasonable initialization stage B, then alternating slices of a
// measure-uniform algorithm U and a phase-decomposed reference algorithm R.
//
// Both U and R must leave an extendable partial solution at the end of every
// slice (for the algorithms in this repository this holds when every r_i is
// even, matching the paper's choice). If a node is still active after the
// schedule is exhausted, the combinator keeps running the reference lane, so
// a reference whose true round complexity exceeds its declared schedule still
// terminates; the overshoot is visible in the round count.
func Interleaved(mem MemoryFactory, b Stage, u StageFactory, r StageFactory, sched PhaseSchedule) runtime.Factory {
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		var m any
		if mem != nil {
			m = mem(info, pred)
		}
		im := &interleavedMachine{
			info:    info,
			pred:    pred,
			mem:     m,
			b:       b.New(info, pred, m),
			bName:   b.Name,
			bBudget: b.Budget,
			bCtx:    StageCtx{mem: m},
			bLeft:   b.Budget,
			u:       u,
			r:       r,
			sched:   sched(info),
			uCtx:    StageCtx{mem: m},
			rCtx:    StageCtx{mem: m},
		}
		if im.bLeft <= 0 {
			im.bLeft = 1
		}
		return im
	}
}

const (
	laneInit uint8 = 0
	laneU    uint8 = 1
	laneR    uint8 = 2
)

// Lane span names: the interleaved lanes are anonymous StageFactories, so
// their trace spans carry fixed combinator-level names.
const (
	spanLaneU = "interleave/U"
	spanLaneR = "interleave/R"
)

type interleavedMachine struct {
	info runtime.NodeInfo
	pred any
	mem  any

	// Initialization stage.
	b       StageMachine
	bName   string
	bBudget int
	bCtx    StageCtx
	bLeft   int

	// Lane machines, created lazily when initialization completes.
	u, r         StageFactory
	uMach, rMach StageMachine
	uCtx, rCtx   StageCtx
	uDone        bool // U yielded; its lane idles thereafter

	sched []int
	// pos counts rounds since the interleaving started (0-based).
	pos int
	// curLane caches the lane chosen in Send for the matching Receive.
	curLane uint8
}

// laneAt maps an interleaving round index to the lane scheduled for it:
// phase i contributes sched[i] rounds of U then sched[i] rounds of R; past
// the schedule, the reference lane runs every round.
func (m *interleavedMachine) laneAt(pos int) uint8 {
	for _, ri := range m.sched {
		if pos < ri {
			return laneU
		}
		pos -= ri
		if pos < ri {
			return laneR
		}
		pos -= ri
	}
	return laneR
}

func (m *interleavedMachine) Send(env *runtime.Env) []runtime.Out {
	if m.b != nil {
		if env.Tracing() {
			annotateStage(env, m.bName, m.bBudget)
		}
		m.bCtx.env = env
		m.bCtx.stageRound++
		return wrapOuts(m.b.Send(&m.bCtx), laneInit, 0)
	}
	m.curLane = m.laneAt(m.pos)
	if env.Tracing() {
		if m.curLane == laneU {
			annotateStage(env, spanLaneU, 0)
		} else {
			annotateStage(env, spanLaneR, 0)
		}
	}
	if m.curLane == laneU {
		if m.uDone {
			return nil
		}
		m.uCtx.env = env
		m.uCtx.stageRound++
		return wrapOuts(m.uMach.Send(&m.uCtx), laneU, 0)
	}
	m.rCtx.env = env
	m.rCtx.stageRound++
	return wrapOuts(m.rMach.Send(&m.rCtx), laneR, 0)
}

func (m *interleavedMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	if m.b != nil {
		m.bCtx.env = env
		plain, err := unwrapInbox(inbox, laneInit, 0)
		if err != nil {
			env.Fail(fmt.Errorf("%w (interleaved init)", err))
			return
		}
		m.b.Receive(&m.bCtx, plain)
		if env.Terminated() {
			return
		}
		m.bLeft--
		if m.bCtx.yielded || m.bLeft == 0 {
			m.b = nil
			m.uMach = m.u(m.info, m.pred, m.mem)
			m.rMach = m.r(m.info, m.pred, m.mem)
		}
		return
	}
	plain, err := unwrapInbox(inbox, m.curLane, 0)
	if err != nil {
		env.Fail(fmt.Errorf("%w (interleaved lane %d)", err, m.curLane))
		return
	}
	if m.curLane == laneU {
		if !m.uDone {
			m.uCtx.env = env
			m.uMach.Receive(&m.uCtx, plain)
			if m.uCtx.yielded {
				m.uDone = true
			}
		}
	} else {
		m.rCtx.env = env
		m.rMach.Receive(&m.rCtx, plain)
		if m.rCtx.yielded && !env.Terminated() {
			env.Fail(fmt.Errorf("%w: core: interleaved reference yielded without output at node %d", runtime.ErrProtocol, env.ID()))
			return
		}
	}
	if !env.Terminated() {
		m.pos++
	}
}
