package core

import (
	"fmt"

	"repro/internal/runtime"
)

// ParallelSpec configures the Parallel Template (paper Algorithm 5).
type ParallelSpec struct {
	// Mem creates the per-node shared memory. Part 1 of the reference stores
	// its locally held result (e.g. the node's color) here for part 2.
	Mem MemoryFactory
	// B is the reasonable initialization stage (fixed budget).
	B Stage
	// U is the measure-uniform algorithm run in parallel with part 1.
	U StageFactory
	// R1 is the fault-tolerant first part of the reference algorithm. Its
	// machines must not call Output; they record results in shared memory
	// and may Yield early (the lane then idles until the budget elapses).
	R1 StageFactory
	// R1Budget computes the known upper bound r_1(n, Δ, d) on part 1's round
	// complexity; every node runs the parallel section exactly this long.
	R1Budget func(info runtime.NodeInfo) int
	// C is the optional clean-up stage (nil to skip, e.g. when the partial
	// solution at the budget boundary is always extendable).
	C *Stage
	// R2 is the second part of the reference, run to completion on the nodes
	// still active; it reads part 1's result from shared memory.
	R2 StageFactory
}

// Parallel composes the Parallel Template: after initialization, the
// measure-uniform algorithm and part 1 of the reference run simultaneously on
// separate message lanes. A node that terminates through the measure-uniform
// lane is, from the reference's point of view, crashed — part 1 must be fault
// tolerant, exactly as the paper requires. After r_1 rounds the clean-up runs
// and the survivors finish with part 2 of the reference.
func Parallel(spec ParallelSpec) runtime.Factory {
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		var m any
		if spec.Mem != nil {
			m = spec.Mem(info, pred)
		}
		pm := &parallelMachine{
			spec:  spec,
			info:  info,
			pred:  pred,
			mem:   m,
			b:     spec.B.New(info, pred, m),
			bCtx:  StageCtx{mem: m},
			bLeft: spec.B.Budget,
			uCtx:  StageCtx{mem: m},
			r1Ctx: StageCtx{mem: m},
			cCtx:  StageCtx{mem: m},
			r2Ctx: StageCtx{mem: m},
		}
		if pm.bLeft <= 0 {
			pm.bLeft = 1
		}
		return pm
	}
}

const (
	planeB uint8 = 0
	planeU uint8 = 1
	planeR uint8 = 3
	planeC uint8 = 4
	plane2 uint8 = 5
)

type parallelMachine struct {
	spec ParallelSpec
	info runtime.NodeInfo
	pred any
	mem  any

	b     StageMachine
	bCtx  StageCtx
	bLeft int

	uMach  StageMachine
	r1Mach StageMachine
	uCtx   StageCtx
	r1Ctx  StageCtx
	r1Done bool // R1 yielded early; its lane idles
	left   int  // rounds remaining in the parallel section

	cMach StageMachine
	cCtx  StageCtx
	cLeft int

	r2Mach StageMachine
	r2Ctx  StageCtx
}

// Section span names for the anonymous parallel-template lanes.
const (
	spanParallel = "parallel/U+R1"
	spanR2       = "parallel/R2"
)

func (m *parallelMachine) Send(env *runtime.Env) []runtime.Out {
	switch {
	case m.b != nil:
		if env.Tracing() {
			annotateStage(env, m.spec.B.Name, m.spec.B.Budget)
		}
		m.bCtx.env = env
		m.bCtx.stageRound++
		return wrapOuts(m.b.Send(&m.bCtx), planeB, 0)
	case m.left > 0:
		if env.Tracing() {
			// The parallel section runs exactly R1's declared budget, which
			// at section entry is the full residual m.left (summaries keep
			// the first declared budget).
			annotateStage(env, spanParallel, m.left)
		}
		m.uCtx.env = env
		m.uCtx.stageRound++
		outs := wrapOuts(m.uMach.Send(&m.uCtx), planeU, 0)
		if env.Terminated() {
			// The node leaves through the measure-uniform lane; part 1 sees
			// a crash and sends nothing further.
			return outs
		}
		if !m.r1Done {
			m.r1Ctx.env = env
			m.r1Ctx.stageRound++
			r1Outs := wrapOuts(m.r1Mach.Send(&m.r1Ctx), planeR, 0)
			if env.Terminated() {
				env.Fail(fmt.Errorf("%w: core: parallel reference part 1 output at node %d", runtime.ErrProtocol, env.ID()))
				return nil
			}
			outs = append(outs, r1Outs...)
		}
		return outs
	case m.cMach != nil:
		if env.Tracing() {
			annotateStage(env, m.spec.C.Name, m.spec.C.Budget)
		}
		m.cCtx.env = env
		m.cCtx.stageRound++
		return wrapOuts(m.cMach.Send(&m.cCtx), planeC, 0)
	case m.r2Mach != nil:
		if env.Tracing() {
			annotateStage(env, spanR2, 0)
		}
		m.r2Ctx.env = env
		m.r2Ctx.stageRound++
		return wrapOuts(m.r2Mach.Send(&m.r2Ctx), plane2, 0)
	default:
		env.Fail(fmt.Errorf("%w: core: parallel machine exhausted at node %d", runtime.ErrProtocol, env.ID()))
		return nil
	}
}

func (m *parallelMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	switch {
	case m.b != nil:
		m.bCtx.env = env
		plain, err := unwrapInbox(inbox, planeB, 0)
		if err != nil {
			env.Fail(fmt.Errorf("%w (parallel init)", err))
			return
		}
		m.b.Receive(&m.bCtx, plain)
		if env.Terminated() {
			return
		}
		m.bLeft--
		if m.bCtx.yielded || m.bLeft == 0 {
			m.b = nil
			m.uMach = m.spec.U(m.info, m.pred, m.mem)
			m.r1Mach = m.spec.R1(m.info, m.pred, m.mem)
			m.left = m.spec.R1Budget(m.info)
		}
	case m.left > 0:
		uIn, rIn, err := splitInbox(inbox)
		if err != nil {
			env.Fail(fmt.Errorf("%w (parallel section)", err))
			return
		}
		m.uCtx.env = env
		m.uMach.Receive(&m.uCtx, uIn)
		terminated := env.Terminated()
		if !m.r1Done && !terminated {
			m.r1Ctx.env = env
			m.r1Mach.Receive(&m.r1Ctx, rIn)
			if env.Terminated() {
				env.Fail(fmt.Errorf("%w: core: parallel reference part 1 output at node %d", runtime.ErrProtocol, env.ID()))
				return
			}
			if m.r1Ctx.yielded {
				m.r1Done = true
			}
		}
		if terminated {
			return
		}
		m.left--
		if m.left == 0 {
			m.uMach, m.r1Mach = nil, nil
			if m.spec.C != nil {
				m.cMach = m.spec.C.New(m.info, m.pred, m.mem)
				m.cLeft = m.spec.C.Budget
				if m.cLeft <= 0 {
					m.cLeft = 1
				}
			} else {
				m.r2Mach = m.spec.R2(m.info, m.pred, m.mem)
			}
		}
	case m.cMach != nil:
		m.cCtx.env = env
		plain, err := unwrapInbox(inbox, planeC, 0)
		if err != nil {
			env.Fail(fmt.Errorf("%w (parallel clean-up)", err))
			return
		}
		m.cMach.Receive(&m.cCtx, plain)
		if env.Terminated() {
			return
		}
		m.cLeft--
		if m.cCtx.yielded || m.cLeft == 0 {
			m.cMach = nil
			m.r2Mach = m.spec.R2(m.info, m.pred, m.mem)
		}
	case m.r2Mach != nil:
		m.r2Ctx.env = env
		plain, err := unwrapInbox(inbox, plane2, 0)
		if err != nil {
			env.Fail(fmt.Errorf("%w (parallel part 2)", err))
			return
		}
		m.r2Mach.Receive(&m.r2Ctx, plain)
	}
}

// splitInbox separates a parallel-section inbox into the measure-uniform and
// reference-part-1 lanes, preserving order.
func splitInbox(inbox []runtime.Msg) (uIn, rIn []runtime.Msg, err error) {
	for _, msg := range inbox {
		tm, ok := msg.Payload.(taggedMsg)
		if !ok {
			return nil, nil, fmt.Errorf("%w: core: untagged message from node %d", runtime.ErrProtocol, msg.From)
		}
		plain := runtime.Msg{From: msg.From, Payload: tm.payload}
		switch tm.lane {
		case planeU:
			uIn = append(uIn, plain)
		case planeR:
			rIn = append(rIn, plain)
		default:
			return nil, nil, fmt.Errorf("%w: core: lane %d message from node %d during parallel section", runtime.ErrProtocol, tm.lane, msg.From)
		}
	}
	return uIn, rIn, nil
}
