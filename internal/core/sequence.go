package core

import (
	"fmt"

	"repro/internal/runtime"
)

// Sequence composes stages to run one after another: every node executes
// stage k until it outputs (terminating the node) or yields, after which the
// next stage takes over. Transitions must be lockstep across nodes — every
// stage in this repository either has a fixed length or is entered and left
// by all nodes in the same round — and the message tags enforce this at run
// time.
//
// The Simple Template (paper Algorithm 2) is Sequence(mem, B, R); the
// Consecutive Template (Algorithm 3) is Sequence(mem, B, U(budget), C, R).
func Sequence(mem MemoryFactory, stages ...Stage) runtime.Factory {
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		var m any
		if mem != nil {
			m = mem(info, pred)
		}
		sm := &seqMachine{info: info, pred: pred, mem: m, stages: stages}
		sm.enter(0)
		return sm
	}
}

type seqMachine struct {
	info   runtime.NodeInfo
	pred   any
	mem    any
	stages []Stage

	cur     int
	machine StageMachine
	ctx     StageCtx
	pending bool // yield observed; advance at end of round
}

func (s *seqMachine) enter(k int) {
	s.cur = k
	if k < len(s.stages) {
		s.machine = s.stages[k].New(s.info, s.pred, s.mem)
	} else {
		s.machine = nil
	}
	s.ctx = StageCtx{mem: s.mem}
	s.pending = false
}

func (s *seqMachine) Send(env *runtime.Env) []runtime.Out {
	if s.machine == nil {
		env.Fail(fmt.Errorf("%w: core: node %d active past final stage without output", runtime.ErrProtocol, env.ID()))
		return nil
	}
	// One span note per round in the stage: summaries then see the stage's
	// true round span and node-rounds, not just its entry.
	if env.Tracing() {
		annotateStage(env, s.stages[s.cur].Name, s.stages[s.cur].Budget)
	}
	s.ctx.env = env
	s.ctx.stageRound++
	outs := s.machine.Send(&s.ctx)
	if s.ctx.yielded {
		s.pending = true
	}
	return wrapOuts(outs, 0, uint16(s.cur))
}

func (s *seqMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	s.ctx.env = env
	plain, err := unwrapInbox(inbox, 0, uint16(s.cur))
	if err != nil {
		env.Fail(fmt.Errorf("%w (stage %q)", err, s.stages[s.cur].Name))
		return
	}
	// A node whose stage already yielded this round still receives the
	// round's messages (the model delivers them), but the stage is done; we
	// require stages to have nothing useful left to hear after yielding, and
	// drop the inbox in that case.
	if !s.pending {
		s.machine.Receive(&s.ctx, plain)
		if s.ctx.yielded {
			s.pending = true
		}
	}
	if env.Terminated() {
		return
	}
	budget := s.stages[s.cur].Budget
	if s.pending || (budget > 0 && s.ctx.stageRound >= budget) {
		s.enter(s.cur + 1)
	}
}
