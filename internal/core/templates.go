package core

import "repro/internal/runtime"

// This file holds the two sequential template combinators of the paper's
// framework. Together with Interleaved (interleaved.go) and Parallel
// (parallel.go) they are the four templates of Section 7, each implemented
// exactly once; the problem packages instantiate them with their stages and
// register the instantiations in internal/problem.

// Simple composes the Simple Template (paper Algorithm 2, Observation 7): a
// reasonable initialization algorithm followed by one or more reference
// stages run to completion. With a measure-uniform reference the composition
// is η-degrading; with any reference it inherits the initialization's
// consistency.
func Simple(mem MemoryFactory, b Stage, ref ...Stage) runtime.Factory {
	return Sequence(mem, append([]Stage{b}, ref...)...)
}

// ConsecutiveSpec configures the Consecutive Template (paper Algorithm 3,
// Lemma 8): initialization, the measure-uniform algorithm budgeted at the
// reference's round bound, an optional clean-up, then the reference.
type ConsecutiveSpec struct {
	// Mem creates the per-node shared memory.
	Mem MemoryFactory
	// B is the reasonable initialization stage.
	B Stage
	// U builds the budgeted measure-uniform stage.
	U func(budget int) Stage
	// Budget computes the measure-uniform budget r(n, Δ, d) + c'(n, Δ, d)
	// from static information (all nodes compute the same value, as the
	// paper requires).
	Budget func(info runtime.NodeInfo) int
	// Align rounds the budget up to a multiple (a group boundary), so the
	// interruption point carries an extendable partial solution: 2 for
	// black/white alternation, 3 for the matching proposal groups. 0 or 1
	// leaves the budget as computed.
	Align int
	// C is the optional clean-up stage (nil when every interruption point is
	// already extendable, e.g. vertex coloring).
	C *Stage
	// Ref returns the reference stages; most problems have exactly one. The
	// info parameter lets references with per-instance budgets (the
	// rooted-tree coloring) size their stages.
	Ref func(info runtime.NodeInfo) []Stage
}

// Consecutive composes the Consecutive Template from a spec. The budget is
// evaluated per node from static information and aligned to the spec's group
// boundary.
func Consecutive(spec ConsecutiveSpec) runtime.Factory {
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		budget := AlignUp(spec.Budget(info), spec.Align)
		stages := make([]Stage, 0, 4)
		stages = append(stages, spec.B, spec.U(budget))
		if spec.C != nil {
			stages = append(stages, *spec.C)
		}
		stages = append(stages, spec.Ref(info)...)
		return Sequence(spec.Mem, stages...)(info, pred)
	}
}

// FixedRef adapts a fixed stage list to ConsecutiveSpec.Ref.
func FixedRef(stages ...Stage) func(runtime.NodeInfo) []Stage {
	return func(runtime.NodeInfo) []Stage { return stages }
}

// AlignUp rounds r up to the next multiple of align (align <= 1 means no
// rounding). The templates use it to interrupt measure-uniform stages only at
// extendable group boundaries.
func AlignUp(r, align int) int {
	if align <= 1 {
		return r
	}
	if rem := r % align; rem != 0 {
		r += align - rem
	}
	return r
}
