// Package decomp implements a deterministic low-diameter clustering MIS
// reference in the style the paper's Interleaved Template expects from its
// Ghaffari et al. reference (Corollary 10): the algorithm proceeds in phases
// of a fixed, node-computable length; each phase carves the remaining graph
// into low-diameter clusters (an MPX-style shifted BFS driven by a seeded
// hash of node identifiers — the documented substitution for the
// derandomized decomposition of [31]), lets an independent set of clusters
// win, solves MIS exactly inside each winning cluster by gathering it at its
// center, and outputs with a built-in clean-up so the partial solution at
// every phase boundary is extendable.
//
// At least one cluster in every remaining component wins each phase (the
// component's maximum-priority cluster), so the algorithm always terminates;
// empirically the active node count shrinks geometrically, matching the
// halving structure of the paper's reference.
package decomp

import (
	"math"

	"repro/internal/runtime"
)

// hash64 is splitmix64 over the concatenation of its arguments; it drives
// the per-phase delays and cluster priorities deterministically.
func hash64(seed int64, phase, id int) uint64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(phase)*0xBF58476D1CE4E5B9 + uint64(id)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// delay returns the node's MPX-style start delay for a phase: an
// exponential-like value ⌊−4·ln(x)⌋ truncated to [0, limit).
func delay(seed int64, phase, id, limit int) int {
	x := (float64(hash64(seed, phase, id)) + 1) / (1 << 63) / 2
	d := int(math.Floor(-4 * math.Log(x)))
	if d < 0 {
		d = 0
	}
	if d >= limit {
		d = limit - 1
	}
	return d
}

// priority returns the cluster priority of a center for a phase; adjacent
// clusters compare priorities (ties broken by center ID) to decide winners.
func priority(seed int64, phase, centerID int) uint64 {
	return hash64(seed^0x5851F42D4C957F2D, phase, centerID)
}

// DelayLimit returns L, the delay range and BFS depth bound for an n-node
// graph: about 4·ln(n+3)+4, rounded up to an even value so that PhaseRounds
// is even — the Greedy MIS lane interleaved with this reference leaves an
// extendable partial solution only at even-round boundaries.
func DelayLimit(n int) int {
	l := int(math.Ceil(4*math.Log(float64(n+3)))) + 4
	if l%2 == 1 {
		l++
	}
	return l
}

// PhaseRounds returns the fixed length of one phase for an n-node graph:
// carving (L+2 rounds: L+1 shifted-BFS rounds plus a center exchange),
// convergecast (L+2), decision broadcast (L+2), and two output rounds.
func PhaseRounds(n int) int {
	l := DelayLimit(n)
	return 3*(l+2) + 2
}

// Phases returns the declared number of phases for the reference's round
// bound: ⌈log₂ n⌉ + 3, matching the empirical geometric decay of the active
// set (the paper's reference halves the active set per phase by
// construction; ours does so empirically — see DESIGN.md).
func Phases(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n)))) + 3
}

// Bound returns the declared round bound r(n) = Phases(n) · PhaseRounds(n),
// computable by every node, as the Consecutive Template requires.
func Bound(info runtime.NodeInfo) int {
	return Phases(info.N) * PhaseRounds(info.N)
}

// Schedule returns the Interleaved Template phase budgets: Phases(n) slices
// of PhaseRounds(n) rounds each.
func Schedule(info runtime.NodeInfo) []int {
	sched := make([]int, Phases(info.N))
	for i := range sched {
		sched[i] = PhaseRounds(info.N)
	}
	return sched
}
