package decomp_test

import (
	"math/rand"
	"testing"

	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/runtime"
	"repro/internal/verify"
)

func runDecomp(t *testing.T, g *graph.Graph, seed int64) *runtime.Result {
	t.Helper()
	res, err := runtime.Run(runtime.Config{
		Graph:     g,
		Factory:   mis.Solo(decomp.Stage(seed)),
		MaxRounds: 200 * decomp.PhaseRounds(g.N()),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]int, g.N())
	for i, o := range res.Outputs {
		out[i] = o.(int)
	}
	if err := verify.MIS(g, out); err != nil {
		t.Fatalf("invalid MIS: %v", err)
	}
	return res
}

func TestDecompProducesMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	cases := map[string]*graph.Graph{
		"single":   graph.Line(1),
		"line40":   graph.Line(40),
		"ring33":   graph.Ring(33),
		"clique12": graph.Clique(12),
		"star20":   graph.Star(20),
		"grid7x7":  graph.Grid2D(7, 7),
		"gnp80":    graph.GNP(80, 0.06, rng),
		"tree60":   graph.RandomTree(60, rng),
		"paths":    graph.DisjointPaths(5, 9),
		"shuffled": graph.ShuffleIDs(graph.Grid2D(6, 6), 360, rng),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			runDecomp(t, g, 3)
		})
	}
}

func TestDecompDeterministicPerSeed(t *testing.T) {
	g := graph.GNP(50, 0.1, rand.New(rand.NewSource(52)))
	a := runDecomp(t, g, 9)
	b := runDecomp(t, g, 9)
	if a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatalf("same seed differs: %d/%d vs %d/%d", a.Rounds, a.Messages, b.Rounds, b.Messages)
	}
	for i := range a.Outputs {
		if a.Outputs[i] != b.Outputs[i] {
			t.Fatalf("output %d differs", i)
		}
	}
}

func TestDecompPhaseStructure(t *testing.T) {
	// Rounds are always a multiple of the phase length... more precisely,
	// every node terminates inside an output segment, so the total round
	// count modulo PhaseRounds(n) lands in the two final output rounds.
	g := graph.GNP(60, 0.08, rand.New(rand.NewSource(53)))
	res := runDecomp(t, g, 4)
	p := decomp.PhaseRounds(g.N())
	within := (res.Rounds-1)%p + 1
	l := decomp.DelayLimit(g.N())
	if within != 3*l+7 && within != 3*l+8 {
		t.Errorf("finished at in-phase round %d, want one of the output rounds %d/%d",
			within, 3*l+7, 3*l+8)
	}
	// Empirical geometric decay: the run should finish well under the
	// declared bound.
	if res.Rounds > decomp.Bound(runtimeInfo(g)) {
		t.Errorf("rounds %d exceed the declared bound %d", res.Rounds, decomp.Bound(runtimeInfo(g)))
	}
}

func runtimeInfo(g *graph.Graph) runtime.NodeInfo {
	return runtime.NodeInfo{N: g.N(), D: g.D(), Delta: g.MaxDegree()}
}

func TestDecompExtendableAtPhaseBoundaries(t *testing.T) {
	// At the end of every phase the partial solution must be extendable
	// (winning clusters' outputs plus the built-in clean-up).
	g := graph.GNP(48, 0.1, rand.New(rand.NewSource(54)))
	p := decomp.PhaseRounds(g.N())
	snapshots := make(map[int][]int)
	_, err := runtime.Run(runtime.Config{
		Graph:     g,
		Factory:   mis.Solo(decomp.Stage(5)),
		MaxRounds: 200 * p,
		Observer: func(round int, outputs []any, active []bool) {
			if round%p != 0 {
				return
			}
			snap := make([]int, len(outputs))
			for i, o := range outputs {
				if v, ok := o.(int); ok && !active[i] {
					snap[i] = v
				} else {
					snap[i] = verify.Undecided
				}
			}
			snapshots[round] = snap
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snapshots) == 0 {
		t.Fatal("no phase boundaries observed")
	}
	for round, snap := range snapshots {
		if err := verify.MISPartialExtendable(g, snap); err != nil {
			t.Errorf("round %d: %v", round, err)
		}
	}
}

func TestScheduleAndBounds(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 1000} {
		l := decomp.DelayLimit(n)
		if l%2 != 0 {
			t.Errorf("n=%d: DelayLimit %d must be even", n, l)
		}
		p := decomp.PhaseRounds(n)
		if p != 3*(l+2)+2 {
			t.Errorf("n=%d: PhaseRounds %d != 3(L+2)+2", n, p)
		}
		if p%2 != 0 {
			t.Errorf("n=%d: PhaseRounds %d must be even (Greedy lane boundaries)", n, p)
		}
		info := runtime.NodeInfo{N: n}
		sched := decomp.Schedule(info)
		if len(sched) != decomp.Phases(n) {
			t.Errorf("n=%d: schedule length %d", n, len(sched))
		}
		total := 0
		for _, r := range sched {
			if r != p {
				t.Errorf("n=%d: slice %d != PhaseRounds", n, r)
			}
			total += r
		}
		if total != decomp.Bound(info) {
			t.Errorf("n=%d: bound mismatch", n)
		}
	}
}
