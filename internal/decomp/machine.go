package decomp

import (
	"sort"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/runtime"
)

// Memory is the slice of shared per-node state the reference needs: which
// neighbors remain active, and a place to record the outputs of neighbors
// that terminate. mis.Memory satisfies it.
type Memory interface {
	ActiveNeighbors(info runtime.NodeInfo) []int
	RecordNeighborOutput(id, bit int)
}

// MISReference returns the clustering MIS reference as a stage factory for
// the templates. The seed drives the per-phase delays and priorities; runs
// are deterministic given the seed.
func MISReference(seed int64) core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		m, ok := mem.(Memory)
		if !ok {
			m = nil
		}
		return &machine{seed: seed, mem: m, l: DelayLimit(info.N)}
	}
}

// Stage wraps MISReference as a standalone unbounded stage.
func Stage(seed int64) core.Stage {
	return core.Stage{Name: "decomp/mis", New: MISReference(seed)}
}

// best is a shifted-BFS candidate: the paper-of-record ordering is
// lexicographic on (key, center), where key = delay(center) + distance.
type best struct {
	Key    int
	Center int
}

func (b best) better(o best) bool {
	if b.Key != o.Key {
		return b.Key < o.Key
	}
	return b.Center < o.Center
}

// bfMsg carries the sender's current candidate during carving, and the final
// (key, center) in the exchange round.
type bfMsg struct {
	Key    int
	Center int
}

// Bits sizes the message for CONGEST accounting.
func (bfMsg) Bits() int { return 64 }

// row is one cluster member's report, convergecast to the center.
type row struct {
	ID         int
	Nbrs       []int // active same-cluster neighbor IDs
	Foreign    uint64
	ForeignID  int
	HasForeign bool
}

// bits sizes one row: ID, Foreign, ForeignID, HasForeign, and the
// same-cluster neighbor list.
func (r row) bits() int {
	return 32 + 64 + 32 + 1 + 32*len(r.Nbrs)
}

// rowsMsg carries newly learned rows up the cluster tree (LOCAL-size).
type rowsMsg struct{ Rows []row }

// Bits sizes the convergecast batch for CONGEST accounting (LOCAL-size by
// design; honest accounting keeps Result.Bits meaningful).
func (m rowsMsg) Bits() int {
	n := 0
	for _, r := range m.Rows {
		n += r.bits()
	}
	return n
}

// decideMsg floods the center's decision through the cluster (LOCAL-size).
// MIS maps member ID to its bit of the cluster's canonical MIS.
type decideMsg struct {
	Phase  int
	Center int
	Win    bool
	MIS    map[int]int
}

// Bits sizes the decision for CONGEST accounting: header plus one (ID, bit)
// pair per cluster member. Clusters have LOCAL-size diameter, so this is
// large by design; accounting it honestly keeps Result.Bits meaningful.
func (m decideMsg) Bits() int {
	return 64 + 1 + 33*len(m.MIS)
}

// outMsg is the pre-termination notification carrying the output bit.
type outMsg struct{ Bit int }

// Bits sizes the message for CONGEST accounting.
func (outMsg) Bits() int { return 2 }

type machine struct {
	seed int64
	mem  Memory
	l    int

	phase int
	// Carving state.
	cur       best
	center    int
	parent    int // 0 when root or unset
	sameNbrs  []int
	foreign   uint64
	foreignID int
	hasForppn bool
	// Convergecast state.
	rows    map[int]row
	pending []row
	// Decision state.
	decided  bool
	decision decideMsg
	sent     bool
	gotOne   bool
}

// segment boundaries within a phase of length 3(L+2)+2.
func (m *machine) seg(q int) (segment string, idx int) {
	l := m.l
	switch {
	case q <= l+1:
		return "carve", q
	case q == l+2:
		return "exchange", 1
	case q <= 2*l+4:
		return "up", q - (l + 2)
	case q <= 3*l+6:
		return "down", q - (2*l + 4)
	case q == 3*l+7:
		return "outA", 1
	default:
		return "outB", 1
	}
}

func (m *machine) phaseRound(c *core.StageCtx) (phase, q int) {
	p := PhaseRounds(c.Info().N)
	r := c.StageRound() - 1
	return r / p, r%p + 1
}

func (m *machine) active(c *core.StageCtx) []int {
	if m.mem != nil {
		return m.mem.ActiveNeighbors(c.Info())
	}
	return c.Info().NeighborIDs
}

func (m *machine) record(id, bit int) {
	if m.mem != nil {
		m.mem.RecordNeighborOutput(id, bit)
	}
}

func (m *machine) Send(c *core.StageCtx) []runtime.Out {
	phase, q := m.phaseRound(c)
	seg, _ := m.seg(q)
	switch seg {
	case "carve":
		if q == 1 {
			m.resetPhase(c, phase)
		}
		return runtime.BroadcastTo(m.active(c), bfMsg(m.cur))
	case "exchange":
		return runtime.BroadcastTo(m.active(c), bfMsg(m.cur))
	case "up":
		if m.parent == 0 || len(m.pending) == 0 {
			return nil
		}
		out := []runtime.Out{{To: m.parent, Payload: rowsMsg{Rows: m.pending}}}
		m.pending = nil
		return out
	case "down":
		if m.decided && !m.sent {
			m.sent = true
			outs := make([]runtime.Out, 0, len(m.sameNbrs))
			for _, nb := range m.sameNbrs {
				outs = append(outs, runtime.Out{To: nb, Payload: m.decision})
			}
			return outs
		}
		return nil
	case "outA":
		if m.decided && m.decision.Win && m.decision.MIS[c.ID()] == 1 {
			outs := runtime.BroadcastTo(m.active(c), outMsg{Bit: 1})
			c.Output(1)
			return outs
		}
		return nil
	default: // outB
		if (m.decided && m.decision.Win) || m.gotOne {
			outs := runtime.BroadcastTo(m.active(c), outMsg{Bit: 0})
			c.Output(0)
			return outs
		}
		return nil
	}
}

// resetPhase reinitializes the per-phase state at the first carving round.
func (m *machine) resetPhase(c *core.StageCtx, phase int) {
	m.phase = phase
	m.cur = best{Key: delay(m.seed, phase, c.ID(), m.l), Center: c.ID()}
	m.center = 0
	m.parent = 0
	m.sameNbrs = nil
	m.foreign = 0
	m.foreignID = 0
	m.hasForppn = false
	m.rows = map[int]row{}
	m.pending = nil
	m.decided = false
	m.decision = decideMsg{}
	m.sent = false
	m.gotOne = false
}

func (m *machine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	_, q := m.phaseRound(c)
	seg, _ := m.seg(q)
	switch seg {
	case "carve":
		for _, msg := range inbox {
			bm, ok := msg.Payload.(bfMsg)
			if !ok {
				continue
			}
			cand := best{Key: bm.Key + 1, Center: bm.Center}
			if cand.better(m.cur) {
				m.cur = cand
			}
		}
	case "exchange":
		m.finishCarve(c, inbox)
	case "up":
		for _, msg := range inbox {
			rm, ok := msg.Payload.(rowsMsg)
			if !ok {
				continue
			}
			for _, r := range rm.Rows {
				if _, seen := m.rows[r.ID]; !seen {
					m.rows[r.ID] = r
					m.pending = append(m.pending, r)
				}
			}
		}
		if q == 2*m.l+4 && m.center == c.ID() {
			m.decide(c)
		}
	case "down":
		for _, msg := range inbox {
			dm, ok := msg.Payload.(decideMsg)
			if !ok || dm.Center != m.center {
				continue
			}
			if !m.decided {
				m.decided = true
				m.decision = dm
			}
		}
	case "outA":
		m.recordOut(inbox)
	default:
		m.recordOut(inbox)
	}
}

func (m *machine) recordOut(inbox []runtime.Msg) {
	for _, msg := range inbox {
		om, ok := msg.Payload.(outMsg)
		if !ok {
			continue
		}
		m.record(msg.From, om.Bit)
		if om.Bit == 1 {
			m.gotOne = true
		}
	}
}

// finishCarve fixes the node's cluster, parent, same-cluster neighbors, and
// the strongest foreign priority seen, from the final exchange.
func (m *machine) finishCarve(c *core.StageCtx, inbox []runtime.Msg) {
	m.center = m.cur.Center
	m.parent = 0
	m.sameNbrs = nil
	for _, msg := range inbox {
		bm, ok := msg.Payload.(bfMsg)
		if !ok {
			continue
		}
		if bm.Center == m.center {
			m.sameNbrs = append(m.sameNbrs, msg.From)
			if m.center != c.ID() && bm.Key == m.cur.Key-1 && (m.parent == 0 || msg.From < m.parent) {
				m.parent = msg.From
			}
		} else {
			prio := priority(m.seed, m.phase, bm.Center)
			if !m.hasForppn || prio > m.foreign || (prio == m.foreign && bm.Center > m.foreignID) {
				m.hasForppn = true
				m.foreign = prio
				m.foreignID = bm.Center
			}
		}
	}
	sort.Ints(m.sameNbrs)
	mine := row{
		ID:         c.ID(),
		Nbrs:       m.sameNbrs,
		Foreign:    m.foreign,
		ForeignID:  m.foreignID,
		HasForeign: m.hasForppn,
	}
	m.rows = map[int]row{c.ID(): mine}
	m.pending = []row{mine}
}

// decide runs at the center once the convergecast window closes: the cluster
// wins when its priority beats every adjacent cluster's, in which case the
// center computes the canonical MIS of the cluster subgraph and floods it.
func (m *machine) decide(c *core.StageCtx) {
	myPrio := priority(m.seed, m.phase, c.ID())
	win := true
	for _, r := range m.rows {
		if !r.HasForeign {
			continue
		}
		if r.Foreign > myPrio || (r.Foreign == myPrio && r.ForeignID > c.ID()) {
			win = false
			break
		}
	}
	dec := decideMsg{Phase: m.phase, Center: m.center, Win: win}
	if win {
		ids := make([]int, 0, len(m.rows))
		for id := range m.rows {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		idx := make(map[int]int, len(ids))
		for i, id := range ids {
			idx[id] = i
		}
		b := graph.NewBuilder(len(ids))
		b.SetDomain(c.Info().D)
		for i, id := range ids {
			b.SetID(i, id)
		}
		for i, id := range ids {
			for _, nb := range m.rows[id].Nbrs {
				if j, ok := idx[nb]; ok && i < j {
					b.AddEdge(i, j)
				}
			}
		}
		sub := b.MustBuild()
		bitsOut := exact.GreedyMISByID(sub)
		dec.MIS = make(map[int]int, len(ids))
		for i, id := range ids {
			dec.MIS[id] = bitsOut[i]
		}
	}
	m.decided = true
	m.decision = dec
}
