// Package dynamic runs a problem as a long-lived session over an evolving
// graph: batched edge updates arrive between runs, and each batch is
// absorbed by self-healing instead of re-solving from scratch.
//
// The paper's recovery machinery (internal/heal) is built for transient
// damage inside one run; this package turns the same machinery into an
// incremental algorithm. The session keeps the previous valid output. When a
// batch of edge inserts and deletes lands, the output is re-encoded as the
// next run's prediction: carving it against the patched graph demotes
// exactly the decisions the updates invalidated, and the problem's Simple
// Template extends the carved partial solution, so recovery rounds scale
// with the damage radius of the batch (the error measure η of the stale
// prediction), not with the graph size — the dynamic reading of the paper's
// Observation 7 (η = 0 ⇒ the template reproduces the prediction verbatim).
//
// Each incremental step runs under a robustness envelope: a per-step round
// cap and deadline, and a bounded degradation ladder on failure. Attempt 0
// heals from the plain carve; attempt k (1 ≤ k < MaxRetries) widens the
// carve by a 2k-hop ball around the residual before healing (the damage
// estimate was too tight); the final attempt abandons incrementality and
// re-runs the template prediction-free and fault-free — chaos is transient,
// so a session degrades to a from-scratch run but never wedges.
//
// Chaos extends to the update stream itself via fault.StreamPolicy: batches
// may be dropped, duplicated, or reordered, and individual steps may run
// under engine-level chaos. The session is order-tolerant by construction —
// batches are deduplicated by sequence number and graph patches are
// idempotent — so a perturbed stream still yields a well-defined final graph
// and a valid output on it. Everything in this package runs on the caller's
// goroutine and draws no randomness of its own: a session over a fixed
// stream and policy is deterministic and byte-identical across the
// sequential and pool engines.
package dynamic

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
	"repro/internal/verify"
)

// Op is the kind of one edge update.
type Op int

// The update kinds.
const (
	// Insert adds the edge {U, V} (a no-op if present).
	Insert Op = iota
	// Delete removes the edge {U, V} (a no-op if absent).
	Delete
)

// Update is one edge mutation. Endpoints are node indices in [0, n); the
// session's node set is fixed at Open.
type Update struct {
	Op   Op
	U, V int
}

// Batch is one atomically-applied group of updates. Seq identifies the batch
// for deduplication: a session applies each sequence number at most once, so
// duplicated deliveries (stream chaos) are absorbed.
type Batch struct {
	Seq     int
	Updates []Update
}

// Config configures a session.
type Config struct {
	// Problem names the registered problem; it must register healing
	// machinery (ProblemInfo.CanHeal).
	Problem string
	// Parallel selects the worker-pool engine for every run in the session.
	Parallel bool
	// MaxRetries bounds the degradation ladder: attempts 1..MaxRetries-1
	// widen the carve, attempt MaxRetries re-runs from scratch. 0 selects the
	// default of 2 (one widening rung, then the full re-run).
	MaxRetries int
	// StepMaxRounds caps each incremental attempt's rounds (0 = engine
	// default). The final from-scratch rung always runs uncapped.
	StepMaxRounds int
	// StepDeadline bounds each incremental attempt's per-round wall time
	// (0 = none). The final from-scratch rung always runs without one.
	StepDeadline time.Duration
	// Adversary, when non-nil, supplies the engine fault adversary for
	// incremental attempt `attempt` of step `step` (counted over applied
	// batches, 0-based). Return nil for a fault-free attempt. The final
	// from-scratch rung never consults it.
	Adversary func(step, attempt int) runtime.Adversary
	// Trace, when non-nil, receives session lifecycle, update, retry, and
	// engine events.
	Trace *obs.Recorder
	// Telemetry, when non-nil, records per-phase round wall-time histograms
	// for every engine run the session executes (the opening run, every
	// healing attempt, and from-scratch reruns). Purely observational.
	Telemetry *obs.Telemetry
}

// StepReport describes how one delivered batch was absorbed.
type StepReport struct {
	// Seq is the batch's sequence number.
	Seq int
	// Outcome is "applied", "duplicate", or "rejected".
	Outcome string
	// Err is the rejection cause when Outcome is "rejected".
	Err error
	// Updates is the number of updates in the batch; Damaged the number of
	// nodes whose adjacency actually changed.
	Updates, Damaged int
	// Residual is the number of undecided nodes the successful attempt
	// healed (0 when the stale output survived verification untouched).
	Residual int
	// Attempts counts healing runs executed (0 when the stale output was
	// still valid); Widened counts widening rungs taken; FullRerun reports
	// that the final from-scratch rung produced the output.
	Attempts, Widened int
	FullRerun         bool
	// Rounds is the recovery cost of the step — engine rounds summed over
	// all attempts, failed ones included; Messages counts the successful
	// attempt's deliveries.
	Rounds, Messages int
}

// Stats accumulates a session's lifetime counters.
type Stats struct {
	// Applied, Duplicates, and Rejected count delivered batches by outcome.
	Applied, Duplicates, Rejected int
	// Damaged totals nodes whose adjacency changed across applied batches.
	Damaged int
	// Widened and FullReruns count degradation-ladder escalations.
	Widened, FullReruns int
	// InitialRounds is the cost of the opening from-scratch run;
	// RecoveryRounds and RecoveryMessages total the incremental steps.
	InitialRounds                    int
	RecoveryRounds, RecoveryMessages int
}

// ErrClosed is returned by operations on a closed session.
var ErrClosed = errors.New("dynamic: session is closed")

// Session owns a mutable graph and the current valid output on it.
// Not safe for concurrent use.
type Session struct {
	cfg    Config
	d      *problem.Descriptor
	spec   heal.Spec
	g      *graph.Graph
	out    []int
	seen   map[int]bool
	step   int
	stats  Stats
	closed bool
}

// Open starts a session on g: it resolves the problem's healing machinery,
// runs the problem's Simple Template prediction-free to obtain the initial
// valid output, and returns the live session.
func Open(g *graph.Graph, cfg Config) (*Session, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: dynamic: a graph is required", runtime.ErrConfig)
	}
	d, err := problem.Get(cfg.Problem)
	if err != nil {
		return nil, fmt.Errorf("dynamic: %w", err)
	}
	spec, err := heal.SpecFor(d)
	if err != nil {
		return nil, fmt.Errorf("dynamic: %w", err)
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	s := &Session{cfg: cfg, d: d, spec: spec, g: g, seen: make(map[int]bool)}
	out, res, err := s.fullRun()
	if err != nil {
		return nil, fmt.Errorf("dynamic: opening run failed: %w", err)
	}
	s.out = out
	s.stats.InitialRounds = res.Rounds
	if cfg.Trace != nil {
		cfg.Trace.Emit(obs.Event{
			Type: obs.EvSession, Name: "open", Text: d.Name,
			Value: int64(g.N()), Aux: int64(g.M()),
		})
	}
	return s, nil
}

// Graph returns the session's current graph (immutable; a new graph is
// swapped in per applied batch).
func (s *Session) Graph() *graph.Graph { return s.g }

// Output returns a copy of the current valid output vector.
func (s *Session) Output() []int {
	out := make([]int, len(s.out))
	copy(out, s.out)
	return out
}

// Stats returns the session's lifetime counters so far.
func (s *Session) Stats() Stats { return s.stats }

// Problem returns the session's problem name.
func (s *Session) Problem() string { return s.d.Name }

// Close ends the session, emits the closing lifecycle event, and returns the
// final counters. Further Apply calls fail with ErrClosed.
func (s *Session) Close() Stats {
	if !s.closed {
		s.closed = true
		if s.cfg.Trace != nil {
			s.cfg.Trace.Emit(obs.Event{
				Type: obs.EvSession, Name: "close", Text: s.d.Name,
				Value: int64(s.stats.Applied), Aux: int64(s.stats.RecoveryRounds),
			})
		}
	}
	return s.stats
}

// Apply delivers one batch: deduplicate by sequence number, patch the graph,
// and heal the stale output on the patched graph under the degradation
// ladder. Malformed batches are rejected and skipped (the session stays
// live); only a failed final from-scratch rung — or a misconfiguration — is
// an error.
func (s *Session) Apply(b Batch) (StepReport, error) {
	return s.apply(b, s.configuredAdversary)
}

func (s *Session) configuredAdversary(attempt int) runtime.Adversary {
	if s.cfg.Adversary == nil {
		return nil
	}
	return s.cfg.Adversary(s.step, attempt)
}

func (s *Session) apply(b Batch, advFor func(attempt int) runtime.Adversary) (StepReport, error) {
	rep := StepReport{Seq: b.Seq, Updates: len(b.Updates)}
	if s.closed {
		return rep, ErrClosed
	}
	if s.seen[b.Seq] {
		rep.Outcome = "duplicate"
		s.stats.Duplicates++
		s.emitUpdate(rep, nil)
		return rep, nil
	}
	patch, err := toPatch(b.Updates)
	var ng *graph.Graph
	var changed []int
	if err == nil {
		ng, changed, err = s.g.ApplyPatch(patch)
	}
	if err != nil {
		rep.Outcome = "rejected"
		rep.Err = err
		s.stats.Rejected++
		s.emitUpdate(rep, err)
		return rep, nil
	}
	s.seen[b.Seq] = true
	s.g = ng
	rep.Outcome = "applied"
	rep.Damaged = len(changed)
	s.stats.Applied++
	s.stats.Damaged += len(changed)
	s.emitUpdate(rep, nil)
	if err := s.healStep(&rep, advFor); err != nil {
		return rep, err
	}
	s.step++
	s.stats.Widened += rep.Widened
	if rep.FullRerun {
		s.stats.FullReruns++
	}
	s.stats.RecoveryRounds += rep.Rounds
	s.stats.RecoveryMessages += rep.Messages
	return rep, nil
}

func (s *Session) emitUpdate(rep StepReport, cause error) {
	if s.cfg.Trace == nil {
		return
	}
	e := obs.Event{
		Type: obs.EvUpdate, Name: rep.Outcome, Node: rep.Seq,
		Value: int64(rep.Updates), Aux: int64(rep.Damaged),
	}
	if cause != nil {
		e.Err = cause.Error()
	}
	s.cfg.Trace.Emit(e)
}

// healStep restores output validity on the freshly patched graph, walking
// the degradation ladder until an attempt verifies.
func (s *Session) healStep(rep *StepReport, advFor func(attempt int) runtime.Adversary) error {
	g := s.g
	if s.spec.Verify(g, s.out) == nil {
		// The stale output survived the patch untouched: 0 recovery rounds.
		return nil
	}
	basePartial, baseResidual := s.spec.Carve(g, s.out)
	tr := s.cfg.Trace
	for attempt := 0; ; attempt++ {
		partial, residual := basePartial, baseResidual
		full := attempt >= s.cfg.MaxRetries
		switch {
		case full:
			partial = make([]int, g.N())
			for i := range partial {
				partial[i] = verify.Undecided
			}
			residual = residualAll(g.N())
			rep.FullRerun = true
		case attempt > 0:
			// The previous rung's damage estimate was too tight: demote a
			// 2·attempt-hop ball around the residual and re-carve. Two hops
			// per rung so the ball reaches past forced clean-up closures.
			partial, residual = heal.WidenCarve(g, basePartial, 2*attempt, s.spec.Carve)
			rep.Widened++
		}
		if tr != nil {
			tr.Emit(obs.Event{Type: obs.EvCarve, Value: int64(len(residual)), Aux: int64(demotedBy(s.out, partial))})
		}
		preds := make([]any, g.N())
		for i, p := range partial {
			if p == verify.Undecided {
				preds[i] = s.spec.UndecidedPred
			} else {
				preds[i] = p
			}
		}
		cfg := runtime.Config{
			Graph:       g,
			Factory:     s.spec.HealFactory,
			Predictions: preds,
			Parallel:    s.cfg.Parallel,
			Trace:       tr,
			Telemetry:   s.cfg.Telemetry,
		}
		if !full {
			// The final rung abandons the envelope: prediction-free,
			// fault-free, uncapped — chaos is transient, and a session must
			// degrade to a from-scratch run rather than wedge.
			cfg.MaxRounds = s.cfg.StepMaxRounds
			cfg.RoundDeadline = s.cfg.StepDeadline
			cfg.Adversary = advFor(attempt)
		}
		lastRound := 0
		cfg.Observer = func(round int, outputs []any, active []bool) { lastRound = round }
		res, err := runtime.Run(cfg)
		rep.Attempts++
		if err != nil && errors.Is(err, runtime.ErrConfig) {
			// The run never started; retrying cannot help.
			return fmt.Errorf("dynamic: healing run misconfigured: %w", err)
		}
		if err == nil {
			rep.Rounds += res.Rounds
			healed := intsOf(res.Outputs)
			verr := s.spec.Verify(g, healed)
			if verr == nil {
				s.out = healed
				rep.Residual = len(residual)
				rep.Messages = res.Messages
				return nil
			}
			err = verr
		} else {
			rep.Rounds += lastRound
		}
		if full {
			return fmt.Errorf("dynamic: from-scratch rerun failed: %w", err)
		}
		if tr != nil {
			rung := "widen"
			if attempt+1 >= s.cfg.MaxRetries {
				rung = "full"
			}
			tr.Emit(obs.Event{Type: obs.EvRetry, Name: rung, Value: int64(attempt), Err: err.Error()})
		}
	}
}

// ApplyStream delivers batches under stream chaos: the policy's seeded plan
// drops, duplicates, and reorders deliveries, and marks individual steps to
// run under engine chaos (a fresh, seed-shifted adversary per ladder
// attempt, so retries draw independent fault schedules). A nil policy
// delivers the stream verbatim through Apply. The returned reports are in
// delivery order.
func (s *Session) ApplyStream(batches []Batch, sp *fault.StreamPolicy) ([]StepReport, fault.StreamStats, error) {
	if sp == nil {
		reports := make([]StepReport, 0, len(batches))
		for _, b := range batches {
			rep, err := s.Apply(b)
			reports = append(reports, rep)
			if err != nil {
				return reports, fault.StreamStats{Batches: len(batches)}, err
			}
		}
		return reports, fault.StreamStats{Batches: len(batches)}, nil
	}
	slots, stats := fault.PlanStream(*sp, len(batches))
	reports := make([]StepReport, 0, len(slots))
	for _, slot := range slots {
		advFor := s.configuredAdversary
		if slot.Step != nil {
			pol := *slot.Step
			advFor = func(attempt int) runtime.Adversary {
				p := pol
				// A fresh seed-shifted adversary per attempt: retries must
				// draw independent fault schedules or they wedge identically.
				p.Seed += int64(attempt) * 104_729
				return fault.New(p)
			}
		}
		rep, err := s.apply(batches[slot.Batch], advFor)
		reports = append(reports, rep)
		if err != nil {
			return reports, stats, err
		}
	}
	return reports, stats, nil
}

// fullRun executes the problem's Simple Template prediction-free and
// fault-free on the current graph and verifies the result.
func (s *Session) fullRun() ([]int, *runtime.Result, error) {
	n := s.g.N()
	preds := make([]any, n)
	for i := range preds {
		preds[i] = s.spec.UndecidedPred
	}
	res, err := runtime.Run(runtime.Config{
		Graph:       s.g,
		Factory:     s.spec.HealFactory,
		Predictions: preds,
		Parallel:    s.cfg.Parallel,
		Trace:       s.cfg.Trace,
		Telemetry:   s.cfg.Telemetry,
	})
	if err != nil {
		return nil, nil, err
	}
	out := intsOf(res.Outputs)
	if verr := s.spec.Verify(s.g, out); verr != nil {
		return nil, nil, fmt.Errorf("dynamic: prediction-free run produced an invalid solution: %w", verr)
	}
	return out, res, nil
}

func toPatch(updates []Update) (graph.Patch, error) {
	var p graph.Patch
	for _, u := range updates {
		switch u.Op {
		case Insert:
			p.Insert = append(p.Insert, [2]int{u.U, u.V})
		case Delete:
			p.Delete = append(p.Delete, [2]int{u.U, u.V})
		default:
			return graph.Patch{}, fmt.Errorf("%w: dynamic: unknown update op %d", runtime.ErrConfig, int(u.Op))
		}
	}
	return p, nil
}

func intsOf(outputs []any) []int {
	out := make([]int, len(outputs))
	for i, o := range outputs {
		out[i] = verify.Undecided
		if v, ok := o.(int); ok {
			out[i] = v
		}
	}
	return out
}

func residualAll(n int) []int {
	res := make([]int, n)
	for i := range res {
		res[i] = i
	}
	return res
}

// demotedBy counts decided entries of out that partial leaves undecided —
// the carve's collateral beyond the directly damaged region.
func demotedBy(out, partial []int) int {
	demoted := 0
	for i := range partial {
		if partial[i] == verify.Undecided && i < len(out) && out[i] != verify.Undecided {
			demoted++
		}
	}
	return demoted
}
