package dynamic_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dynamic"
	_ "repro/internal/ecolor"
	"repro/internal/graph"
	"repro/internal/heal"
	_ "repro/internal/matching"
	_ "repro/internal/mis"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
	_ "repro/internal/tree"
	_ "repro/internal/vcolor"
	"repro/internal/verify"
)

// sessionProblems are the CanHeal problems a session supports; tree heals
// through the MIS machinery, so its sessions use tree-shaped graphs but the
// same output contract.
var sessionProblems = []string{"matching", "mis", "tree", "vcolor"}

func sessionGraph(t *testing.T, name string, n int, rng *rand.Rand) *graph.Graph {
	t.Helper()
	if name == "tree" {
		return graph.RandomTree(n, rng)
	}
	return graph.GNP(n, 0.08, rng)
}

func verifyOut(t *testing.T, name string, g *graph.Graph, out []int) {
	t.Helper()
	d, err := problem.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := heal.SpecFor(d)
	if err != nil {
		t.Fatal(err)
	}
	if verr := spec.Verify(g, out); verr != nil {
		t.Fatalf("%s: session output invalid: %v", name, verr)
	}
}

// randomBatches derives k batches of edge updates against an n-node graph.
// Tree sessions get delete-only batches so a from-scratch comparison graph
// stays a forest; the others mix inserts and deletes.
func randomBatches(name string, g *graph.Graph, k int, rng *rand.Rand) []dynamic.Batch {
	batches := make([]dynamic.Batch, 0, k)
	edges := g.Edges()
	for b := 0; b < k; b++ {
		var ups []dynamic.Update
		for i := 0; i < 1+rng.Intn(4); i++ {
			if name != "tree" && rng.Intn(2) == 0 {
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				if u != v {
					ups = append(ups, dynamic.Update{Op: dynamic.Insert, U: u, V: v})
				}
			} else if len(edges) > 0 {
				e := edges[rng.Intn(len(edges))]
				ups = append(ups, dynamic.Update{Op: dynamic.Delete, U: e[0], V: e[1]})
			}
		}
		batches = append(batches, dynamic.Batch{Seq: b, Updates: ups})
	}
	return batches
}

func TestSessionIncrementalStaysValid(t *testing.T) {
	for _, name := range sessionProblems {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			g := sessionGraph(t, name, 60, rng)
			s, err := dynamic.Open(g, dynamic.Config{Problem: name})
			if err != nil {
				t.Fatal(err)
			}
			verifyOut(t, name, s.Graph(), s.Output())
			for _, b := range randomBatches(name, g, 8, rng) {
				rep, err := s.Apply(b)
				if err != nil {
					t.Fatalf("batch %d: %v", b.Seq, err)
				}
				if rep.Outcome != "applied" {
					t.Fatalf("batch %d: outcome %q", b.Seq, rep.Outcome)
				}
				verifyOut(t, name, s.Graph(), s.Output())
			}
			st := s.Close()
			if st.Applied != 8 {
				t.Fatalf("stats.Applied = %d, want 8", st.Applied)
			}
			if _, err := s.Apply(dynamic.Batch{Seq: 99}); err != dynamic.ErrClosed {
				t.Fatalf("Apply after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// The session output must be a fixed point of the from-scratch Simple
// Template on the final graph: feeding it back as the prediction vector
// reproduces it byte-for-byte (the paper's Observation 7, η = 0). This is
// the convergence contract — an incrementally healed output is
// indistinguishable from a prediction the template has nothing to fix.
func TestSessionOutputIsTemplateFixedPoint(t *testing.T) {
	for _, name := range sessionProblems {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			g := sessionGraph(t, name, 50, rng)
			s, err := dynamic.Open(g, dynamic.Config{Problem: name})
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range randomBatches(name, g, 6, rng) {
				if _, err := s.Apply(b); err != nil {
					t.Fatal(err)
				}
			}
			assertFixedPoint(t, name, s.Graph(), s.Output())
		})
	}
}

func assertFixedPoint(t *testing.T, name string, g *graph.Graph, out []int) {
	t.Helper()
	d, err := problem.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := heal.SpecFor(d)
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]any, len(out))
	for i, v := range out {
		preds[i] = v
	}
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: spec.HealFactory, Predictions: preds})
	if err != nil {
		t.Fatalf("fixed-point run: %v", err)
	}
	for i, o := range res.Outputs {
		if v, ok := o.(int); !ok || v != out[i] {
			t.Fatalf("node %d: template moved the output %v -> %v (not a fixed point)", i, out[i], o)
		}
	}
}

func TestSessionDuplicateAndRejectedBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNP(30, 0.1, rng)
	rec := obs.NewRecorder(0)
	s, err := dynamic.Open(g, dynamic.Config{Problem: "mis", Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	b := dynamic.Batch{Seq: 1, Updates: []dynamic.Update{{Op: dynamic.Delete, U: 0, V: 1}}}
	if rep, err := s.Apply(b); err != nil || rep.Outcome != "applied" {
		t.Fatalf("first delivery: %+v, %v", rep, err)
	}
	if rep, err := s.Apply(b); err != nil || rep.Outcome != "duplicate" {
		t.Fatalf("second delivery: %+v, %v", rep, err)
	}
	bad := dynamic.Batch{Seq: 2, Updates: []dynamic.Update{{Op: dynamic.Insert, U: 4, V: 4}}}
	rep, err := s.Apply(bad)
	if err != nil || rep.Outcome != "rejected" || rep.Err == nil {
		t.Fatalf("self-loop batch: %+v, %v", rep, err)
	}
	// The session stays live and the rejection did not touch the graph.
	good := dynamic.Batch{Seq: 3, Updates: []dynamic.Update{{Op: dynamic.Insert, U: 0, V: 1}}}
	if rep, err := s.Apply(good); err != nil || rep.Outcome != "applied" {
		t.Fatalf("post-rejection delivery: %+v, %v", rep, err)
	}
	verifyOut(t, "mis", s.Graph(), s.Output())
	st := s.Close()
	want := dynamic.Stats{Applied: 2, Duplicates: 1, Rejected: 1}
	if st.Applied != want.Applied || st.Duplicates != want.Duplicates || st.Rejected != want.Rejected {
		t.Fatalf("stats = %+v, want counts %+v", st, want)
	}
	sum := obs.Summarize(rec.Events())
	if sum.Stream == nil || sum.Stream.Applied != 2 || sum.Stream.Duplicates != 1 || sum.Stream.Rejected != 1 {
		t.Fatalf("trace summary = %+v", sum.Stream)
	}
}

// A session is deterministic and engine-independent: the same stream and
// chaos policy yield byte-identical outputs, reports, and canonical traces
// in sequential and pool mode.
func TestSessionEngineParity(t *testing.T) {
	for _, name := range sessionProblems {
		t.Run(name, func(t *testing.T) {
			type outcome struct {
				out     []int
				reports []dynamic.StepReport
				stats   dynamic.Stats
				edges   [][2]int
			}
			run := func(parallel bool) outcome {
				rng := rand.New(rand.NewSource(7))
				g := sessionGraph(t, name, 40, rng)
				s, err := dynamic.Open(g, dynamic.Config{Problem: name, Parallel: parallel})
				if err != nil {
					t.Fatal(err)
				}
				batches := randomBatches(name, g, 6, rng)
				sp := &fault.StreamPolicy{
					Seed: 99, Drop: 0.2, Duplicate: 0.25, Reorder: 0.25,
					StepFault: 0.5, Step: fault.Policy{Drop: 0.3},
				}
				reports, _, err := s.ApplyStream(batches, sp)
				if err != nil {
					t.Fatal(err)
				}
				verifyOut(t, name, s.Graph(), s.Output())
				return outcome{s.Output(), reports, s.Close(), s.Graph().Edges()}
			}
			seq, pool := run(false), run(true)
			if !reflect.DeepEqual(seq, pool) {
				t.Fatalf("engine modes disagree:\nseq  %+v\npool %+v", seq, pool)
			}
		})
	}
}

// TestSessionReorderHeavyEngineParity stresses the parity contract where
// delivery order diverges hardest from batch order: at Reorder 0.9 nearly
// every adjacent slot pair is swapped, so the session's accept/reject/dedupe
// decisions run against a maximally shuffled stream. Sequential and pool
// engines must still agree byte for byte.
func TestSessionReorderHeavyEngineParity(t *testing.T) {
	type outcome struct {
		out     []int
		reports []dynamic.StepReport
		stats   dynamic.Stats
		stream  fault.StreamStats
	}
	run := func(parallel bool) outcome {
		rng := rand.New(rand.NewSource(17))
		g := graph.GNP(40, 0.12, rng)
		s, err := dynamic.Open(g, dynamic.Config{Problem: "mis", Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		batches := randomBatches("mis", g, 10, rng)
		sp := &fault.StreamPolicy{
			Seed: 23, Duplicate: 0.3, Reorder: 0.9,
			StepFault: 0.4, Step: fault.Policy{Drop: 0.3},
		}
		reports, stats, err := s.ApplyStream(batches, sp)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Reordered == 0 {
			t.Fatal("reorder-heavy stream had no swaps; the test exercises nothing")
		}
		verifyOut(t, "mis", s.Graph(), s.Output())
		return outcome{s.Output(), reports, s.Close(), stats}
	}
	seq, pool := run(false), run(true)
	if !reflect.DeepEqual(seq, pool) {
		t.Fatalf("engine modes disagree under a reorder-heavy stream:\nseq  %+v\npool %+v", seq, pool)
	}
}

func TestSessionStreamChaosConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.GNP(50, 0.1, rng)
	s, err := dynamic.Open(g, dynamic.Config{Problem: "mis"})
	if err != nil {
		t.Fatal(err)
	}
	batches := randomBatches("mis", g, 12, rng)
	sp := &fault.StreamPolicy{
		Seed: 5, Drop: 0.25, Duplicate: 0.25, Reorder: 0.3,
		StepFault: 0.6, Step: fault.Policy{Drop: 0.4, Corrupt: 0.2},
	}
	reports, stats, err := s.ApplyStream(batches, sp)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 12 {
		t.Fatalf("stream stats %+v", stats)
	}
	if len(reports) == 0 {
		t.Fatal("no deliveries at drop rate 0.25")
	}
	verifyOut(t, "mis", s.Graph(), s.Output())
	assertFixedPoint(t, "mis", s.Graph(), s.Output())
	if err := verify.MIS(s.Graph(), s.Output()); err != nil {
		t.Fatalf("final output not a valid MIS: %v", err)
	}
}

func TestOpenRejectsMisconfiguration(t *testing.T) {
	if _, err := dynamic.Open(nil, dynamic.Config{Problem: "mis"}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := graph.Ring(4)
	if _, err := dynamic.Open(g, dynamic.Config{Problem: "nope"}); err == nil {
		t.Fatal("unknown problem accepted")
	}
	if _, err := dynamic.Open(g, dynamic.Config{Problem: "ecolor"}); err == nil {
		t.Fatal("unhealable problem accepted")
	}
}
