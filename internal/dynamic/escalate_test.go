package dynamic_test

import (
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/problem"
	"repro/internal/runtime"
)

// blackhole drops every message: an incremental attempt under it cannot make
// progress and fails its round cap, forcing the degradation ladder.
type blackhole struct{}

func (blackhole) Crashes(n int) map[int]int { return nil }
func (blackhole) Intercept(round, from, to int, payload runtime.Payload) runtime.Fate {
	return runtime.Fate{Drop: true}
}

// damagingBatch returns a batch that invalidates the MIS: an inserted edge
// between two in-set nodes.
func damagingBatch(t *testing.T, g *graph.Graph, out []int) dynamic.Batch {
	t.Helper()
	for u := 0; u < g.N(); u++ {
		if out[u] != 1 {
			continue
		}
		for v := u + 1; v < g.N(); v++ {
			if out[v] == 1 && !g.HasEdge(u, v) {
				return dynamic.Batch{Seq: 1, Updates: []dynamic.Update{{Op: dynamic.Insert, U: u, V: v}}}
			}
		}
	}
	t.Fatal("no non-adjacent in-set pair to damage")
	return dynamic.Batch{}
}

// checkerAccepts runs the problem's constant-round distributed checker on
// the output and requires a unanimous accept.
func checkerAccepts(t *testing.T, name string, g *graph.Graph, out []int) {
	t.Helper()
	d, err := problem.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	factory, preds, err := d.Checker(problem.Solution{Node: out})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: preds})
	if err != nil {
		t.Fatalf("checker run: %v", err)
	}
	for i, o := range res.Outputs {
		if v, ok := o.(int); !ok || v != check.Accept {
			t.Fatalf("checker node %d rejected (%v)", i, o)
		}
	}
}

func retryEvents(rec *obs.Recorder) []obs.Event {
	var out []obs.Event
	for _, e := range rec.Events() {
		if e.Type == obs.EvRetry {
			out = append(out, e)
		}
	}
	return out
}

// Every incremental attempt fails under the blackhole, so the ladder must
// walk its full length — carve, widen, from-scratch — in order, and the
// final fault-free rung must still produce a checker-accepted solution.
func TestEscalationLadderWalksToFullRerun(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.GNP(40, 0.1, rng)
	rec := obs.NewRecorder(0)
	s, err := dynamic.Open(g, dynamic.Config{
		Problem:       "mis",
		StepMaxRounds: 20,
		Trace:         rec,
		Adversary: func(step, attempt int) runtime.Adversary {
			return blackhole{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Apply(damagingBatch(t, g, s.Output()))
	if err != nil {
		t.Fatalf("session wedged instead of degrading: %v", err)
	}
	if rep.Attempts != 3 || rep.Widened != 1 || !rep.FullRerun {
		t.Fatalf("ladder shape: %+v, want 3 attempts, 1 widening, full re-run", rep)
	}
	if rep.Residual != s.Graph().N() {
		t.Fatalf("full re-run residual = %d, want whole graph %d", rep.Residual, s.Graph().N())
	}
	evs := retryEvents(rec)
	if len(evs) != 2 || evs[0].Name != "widen" || evs[1].Name != "full" {
		t.Fatalf("retry events = %+v, want widen then full", evs)
	}
	if evs[0].Value != 0 || evs[1].Value != 1 || evs[0].Err == "" || evs[1].Err == "" {
		t.Fatalf("retry events missing attempt index or cause: %+v", evs)
	}
	verifyOut(t, "mis", s.Graph(), s.Output())
	checkerAccepts(t, "mis", s.Graph(), s.Output())
	st := s.Close()
	if st.Widened != 1 || st.FullReruns != 1 {
		t.Fatalf("stats escalations = %+v", st)
	}
	sum := obs.Summarize(rec.Events())
	if sum.Stream == nil || sum.Stream.Widened != 1 || sum.Stream.FullReruns != 1 {
		t.Fatalf("trace summary escalations = %+v", sum.Stream)
	}
}

// Failing only attempt 0 must stop the ladder at the widening rung: one
// escalation event, no from-scratch run.
func TestEscalationStopsAtWidenRung(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.GNP(40, 0.1, rng)
	rec := obs.NewRecorder(0)
	s, err := dynamic.Open(g, dynamic.Config{
		Problem:       "mis",
		StepMaxRounds: 20,
		Trace:         rec,
		Adversary: func(step, attempt int) runtime.Adversary {
			if attempt == 0 {
				return blackhole{}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Apply(damagingBatch(t, g, s.Output()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 2 || rep.Widened != 1 || rep.FullRerun {
		t.Fatalf("ladder shape: %+v, want 2 attempts, 1 widening, no full re-run", rep)
	}
	if rep.Residual <= 0 || rep.Residual >= s.Graph().N() {
		t.Fatalf("widened rung residual = %d, want strictly between 0 and n", rep.Residual)
	}
	evs := retryEvents(rec)
	if len(evs) != 1 || evs[0].Name != "widen" {
		t.Fatalf("retry events = %+v, want exactly one widen", evs)
	}
	verifyOut(t, "mis", s.Graph(), s.Output())
	checkerAccepts(t, "mis", s.Graph(), s.Output())
	if st := s.Close(); st.FullReruns != 0 {
		t.Fatalf("stats report a from-scratch run: %+v", st)
	}
}

// A deeper ladder (MaxRetries = 3) takes two widening rungs before the
// from-scratch run, and the widen → widen → full event order is preserved.
func TestEscalationDeeperLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.GNP(40, 0.1, rng)
	rec := obs.NewRecorder(0)
	s, err := dynamic.Open(g, dynamic.Config{
		Problem:       "mis",
		MaxRetries:    3,
		StepMaxRounds: 20,
		Trace:         rec,
		Adversary: func(step, attempt int) runtime.Adversary {
			return blackhole{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Apply(damagingBatch(t, g, s.Output()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 4 || rep.Widened != 2 || !rep.FullRerun {
		t.Fatalf("ladder shape: %+v, want 4 attempts, 2 widenings, full re-run", rep)
	}
	evs := retryEvents(rec)
	if len(evs) != 3 || evs[0].Name != "widen" || evs[1].Name != "widen" || evs[2].Name != "full" {
		t.Fatalf("retry events = %+v, want widen, widen, full", evs)
	}
	verifyOut(t, "mis", s.Graph(), s.Output())
}

// The pre-verify shortcut: a batch that leaves the output valid (deleting an
// edge between an in-set and an out-set node keeps both justified when the
// out-set node has another in-set neighbor) heals for free.
func TestStepSkipsHealWhenOutputSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := graph.GNP(40, 0.15, rng)
	s, err := dynamic.Open(g, dynamic.Config{Problem: "mis"})
	if err != nil {
		t.Fatal(err)
	}
	out := s.Output()
	var b *dynamic.Batch
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if out[u]+out[v] != 1 {
			continue
		}
		zero := u
		if out[v] == 0 {
			zero = v
		}
		inset := 0
		for _, w := range g.Neighbors(zero) {
			if out[w] == 1 {
				inset++
			}
		}
		if inset >= 2 {
			b = &dynamic.Batch{Seq: 1, Updates: []dynamic.Update{{Op: dynamic.Delete, U: u, V: v}}}
			break
		}
	}
	if b == nil {
		t.Skip("no survivable deletion in this instance")
	}
	rep, err := s.Apply(*b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 0 || rep.Rounds != 0 || rep.Residual != 0 {
		t.Fatalf("survivable batch still healed: %+v", rep)
	}
	verifyOut(t, "mis", s.Graph(), s.Output())
}
