package ecolor

import (
	"sort"

	"repro/internal/core"
	"repro/internal/runtime"
)

// ecRow is one node's state for the collect-and-solve reference: its
// uncolored-edge endpoints and the colors already used at it.
type ecRow struct {
	ID        int
	Uncolored []int
	Used      []int
}

// ecRows carries newly learned rows (LOCAL-size).
type ecRows struct{ Rows []ecRow }

// Bits sizes the flooding batch for CONGEST accounting (LOCAL-size by
// design; honest accounting keeps Result.Bits meaningful).
func (m ecRows) Bits() int {
	n := 0
	for _, r := range m.Rows {
		n += 32 * (1 + len(r.Uncolored) + len(r.Used))
	}
	return n
}

// Collect returns the collect-and-solve reference for (2Δ−1)-edge coloring:
// n rounds of flooding the uncolored subgraph's structure and the colors
// already used at each node, then every node extends the coloring
// canonically — uncolored edges in ascending (min ID, max ID) order each get
// the smallest color free at both endpoints — and outputs its edge vector.
// Bound: CollectBound(info) = n+1.
func Collect() core.Stage {
	return core.Stage{
		Name: "ecolor/collect",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &collectMachine{mem: mem.(*Memory), rows: map[int]ecRow{}}
		},
	}
}

// CollectBound is the round bound of Collect.
func CollectBound(info runtime.NodeInfo) int { return info.N + 1 }

type collectMachine struct {
	mem   *Memory
	rows  map[int]ecRow
	fresh []ecRow
}

func (m *collectMachine) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	if c.StageRound() == 1 {
		mine := ecRow{ID: info.ID, Uncolored: m.mem.Uncolored(info), Used: m.mem.UsedColors()}
		m.rows[info.ID] = mine
		m.fresh = []ecRow{mine}
	}
	if c.StageRound() > info.N {
		m.solveAndOutput(c)
		return nil
	}
	if len(m.fresh) == 0 {
		return nil
	}
	payload := ecRows{Rows: m.fresh}
	m.fresh = nil
	return runtime.BroadcastTo(m.mem.Uncolored(info), payload)
}

func (m *collectMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		r, ok := msg.Payload.(ecRows)
		if !ok {
			continue
		}
		for _, row := range r.Rows {
			if _, seen := m.rows[row.ID]; !seen {
				m.rows[row.ID] = row
				m.fresh = append(m.fresh, row)
			}
		}
	}
	sort.Slice(m.fresh, func(i, j int) bool { return m.fresh[i].ID < m.fresh[j].ID })
}

// solveAndOutput extends the coloring canonically over the known uncolored
// subgraph and outputs this node's edge vector.
func (m *collectMachine) solveAndOutput(c *core.StageCtx) {
	info := c.Info()
	used := make(map[int]map[int]bool, len(m.rows))
	for id, r := range m.rows {
		set := make(map[int]bool, len(r.Used))
		for _, col := range r.Used {
			set[col] = true
		}
		used[id] = set
	}
	type edge struct{ a, b int }
	var edges []edge
	for id, r := range m.rows {
		for _, nb := range r.Uncolored {
			if _, known := m.rows[nb]; known && id < nb {
				edges = append(edges, edge{a: id, b: nb})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	colors := make(map[edge]int, len(edges))
	for _, e := range edges {
		for col := 1; col <= 2*info.Delta-1; col++ {
			if !used[e.a][col] && !used[e.b][col] {
				colors[e] = col
				used[e.a][col] = true
				used[e.b][col] = true
				break
			}
		}
	}
	for _, nb := range m.mem.Uncolored(info) {
		e := edge{a: info.ID, b: nb}
		if nb < info.ID {
			e = edge{a: nb, b: info.ID}
		}
		if col, ok := colors[e]; ok {
			m.mem.SetColor(info, nb, col)
		}
	}
	c.Output(m.mem.OutputVector(info))
}

// Solo runs a single edge-coloring stage as a complete algorithm. The
// measure-uniform algorithm assumes the two-hop uncolored-edge lists
// distributed by round 2 of the initialization (Section 8.3), so Solo
// prepends the one-round clean-up, which distributes exactly that state.
func Solo(stage core.Stage) runtime.Factory {
	return core.Sequence(NewMemory, Cleanup(), stage)
}

// SimpleGreedy is the Simple Template for edge coloring: the base algorithm
// followed by the distance-2 measure-uniform algorithm.
func SimpleGreedy() runtime.Factory {
	return core.Simple(NewMemory, Base(), MeasureUniform(0))
}

// SimpleCollect is the Simple Template with the collect-and-solve reference.
func SimpleCollect() runtime.Factory {
	return core.Simple(NewMemory, Base(), Collect())
}

// ConsecutiveCollect is the Consecutive Template: base, the measure-uniform
// algorithm for r(n)+c'(n) rounds (rounded up to an even group boundary),
// clean-up, then the reference.
func ConsecutiveCollect() runtime.Factory {
	cleanup := Cleanup()
	return core.Consecutive(core.ConsecutiveSpec{
		Mem:    NewMemory,
		B:      Base(),
		U:      MeasureUniform,
		Budget: func(info runtime.NodeInfo) int { return CollectBound(info) + 1 },
		Align:  2,
		C:      &cleanup,
		Ref:    core.FixedRef(Collect()),
	})
}
