package ecolor

import (
	"sort"

	"repro/internal/core"
	"repro/internal/linegraph"
	"repro/internal/runtime"
)

// This file assembles the Parallel Template for (2Δ−1)-edge coloring:
//
//   part 1 — the fault-tolerant line-graph Linial coloring
//   (internal/linegraph) computes tentative colors for the edges that are
//   still uncolored, while the distance-2 measure-uniform algorithm colors
//   edges for real on the side (an edge leaving the computation looks like a
//   crash to part 1, which tolerates it);
//
//   part 2 — one repair round per color class reconciles the tentative
//   colors with everything output in the meantime, symmetrically at both
//   endpoints, and a final round outputs. No terminations occur during part
//   2, so the repaired colors stay correct.

// edgeFix is the part 2 per-edge message: the sender's used (final) colors
// and the tentative colors of its other repairing edges.
type edgeFix struct {
	Used   []int
	Others []int
}

// Bits sizes the repair message for CONGEST accounting: one color (≤ 2Δ−1,
// so 32 bits is generous) per listed edge.
func (m edgeFix) Bits() int {
	return 32 * (len(m.Used) + len(m.Others))
}

// ColorToEdges returns part 2 of the edge-coloring reference.
func ColorToEdges() core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return &colorToEdgesMachine{mem: mem.(*Memory)}
	}
}

type colorToEdgesMachine struct {
	mem  *Memory
	sent map[int][]int
}

// tentative returns the still-uncolored edges and their tentative classes.
func (m *colorToEdgesMachine) tentative(info runtime.NodeInfo) map[int]int {
	out := make(map[int]int)
	for _, nb := range m.mem.Uncolored(info) {
		if col, ok := m.mem.R1Colors[nb]; ok {
			out[nb] = col
		}
	}
	return out
}

func (m *colorToEdgesMachine) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	palette := 2*info.Delta - 1
	tent := m.tentative(info)
	// Iterate repairing edges in sorted neighbor order: the Others slices
	// travel in payloads, so their layout must not depend on map iteration.
	nbs := make([]int, 0, len(tent))
	for nb := range tent {
		nbs = append(nbs, nb)
	}
	sort.Ints(nbs)
	if c.StageRound() > palette || len(tent) == 0 {
		// All classes repaired (or nothing left to color): fix and output.
		for _, nb := range nbs {
			m.mem.SetColor(info, nb, tent[nb])
		}
		c.Output(m.mem.OutputVector(info))
		return nil
	}
	m.sent = make(map[int][]int, len(tent))
	used := m.mem.UsedColors()
	outs := make([]runtime.Out, 0, len(tent))
	for _, nb := range nbs {
		others := make([]int, 0, len(tent)-1)
		for _, other := range nbs {
			if other != nb {
				others = append(others, tent[other])
			}
		}
		m.sent[nb] = others
		outs = append(outs, runtime.Out{To: nb, Payload: edgeFix{Used: used, Others: others}})
	}
	return outs
}

func (m *colorToEdgesMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	info := c.Info()
	palette := 2*info.Delta - 1
	class := c.StageRound() // repair class 1..palette
	myUsed := m.mem.UsedColors()
	for _, msg := range inbox {
		ef, ok := msg.Payload.(edgeFix)
		if !ok {
			continue
		}
		nb := msg.From
		col, ok := m.mem.R1Colors[nb]
		if !ok || col != class {
			continue
		}
		// Both endpoints see the same constraint set: final colors used at
		// either endpoint plus the tentative colors of both endpoints' other
		// repairing edges.
		conflict := false
		taken := make([]bool, palette+1)
		mark := func(cols []int) {
			for _, x := range cols {
				if x >= 1 && x <= palette {
					taken[x] = true
				}
			}
		}
		mark(myUsed)
		mark(ef.Used)
		for _, x := range myUsed {
			if x == col {
				conflict = true
			}
		}
		for _, x := range ef.Used {
			if x == col {
				conflict = true
			}
		}
		if !conflict {
			continue
		}
		mark(m.sent[nb])
		mark(ef.Others)
		for v := 1; v <= palette; v++ {
			if !taken[v] {
				m.mem.R1Colors[nb] = v
				break
			}
		}
	}
}

// ParallelColoring is the Parallel Template for (2Δ−1)-edge coloring: base,
// the distance-2 measure-uniform algorithm in parallel with the tentative
// line-graph coloring (budget rounded to even so the interruption point is
// extendable), the one-round clean-up, then the repair-and-output part.
func ParallelColoring() runtime.Factory {
	cleanup := Cleanup()
	return core.Parallel(core.ParallelSpec{
		Mem: NewMemory,
		B:   Base(),
		U:   MeasureUniform(0).New,
		R1:  linegraph.Part1(),
		R1Budget: func(info runtime.NodeInfo) int {
			return core.AlignUp(linegraph.Rounds(info.D, info.Delta), 2)
		},
		C:  &cleanup,
		R2: ColorToEdges(),
	})
}
