// Package ecolor implements the (2Δ−1)-Edge Coloring problem with
// predictions (paper Section 8.3): the two-round base algorithm, the
// one-round clean-up, the distance-2 measure-uniform algorithm, and a
// collect-and-solve reference. A node's output is the vector of colors of
// its incident edges, in sorted-neighbor order; both endpoints must output
// the same color for their shared edge.
package ecolor

import (
	"sort"

	"repro/internal/core"
	"repro/internal/runtime"
)

// Memory is the per-node shared state across stages: agreed edge colors,
// per-edge palette removals, and the two-hop uncolored-edge information the
// measure-uniform algorithm needs (maintained as Section 8.3 prescribes).
type Memory struct {
	// Pred holds the predicted colors by sorted-neighbor order.
	Pred []int
	// EdgeColor maps neighbor ID to the agreed color of the shared edge
	// (0 while uncolored).
	EdgeColor map[int]int
	// Removed maps neighbor ID to the set of colors struck from the shared
	// edge's palette by the *other* endpoint's announcements.
	Removed map[int]map[int]bool
	// NbrUncolored maps neighbor ID to the other endpoints of its uncolored
	// edges — the two-hop information.
	NbrUncolored map[int][]int
	// R1Colors holds the tentative colors (1-based, keyed by neighbor ID)
	// stored by the fault-tolerant line-graph coloring when it serves as
	// part 1 of the Parallel Template reference.
	R1Colors map[int]int
}

// LiveEdges implements linegraph.Host: the still-uncolored edges participate
// in the reference's tentative coloring.
func (m *Memory) LiveEdges(info runtime.NodeInfo) []int {
	return m.Uncolored(info)
}

// StoreEdgeColors implements linegraph.Host.
func (m *Memory) StoreEdgeColors(colors map[int]int) { m.R1Colors = colors }

// NewMemory is the MemoryFactory for edge-coloring compositions.
func NewMemory(info runtime.NodeInfo, pred any) any {
	m := &Memory{
		EdgeColor:    make(map[int]int, len(info.NeighborIDs)),
		Removed:      make(map[int]map[int]bool, len(info.NeighborIDs)),
		NbrUncolored: make(map[int][]int, len(info.NeighborIDs)),
	}
	if p, ok := pred.([]int); ok {
		m.Pred = p
	} else {
		m.Pred = make([]int, len(info.NeighborIDs))
	}
	for _, nb := range info.NeighborIDs {
		m.Removed[nb] = make(map[int]bool)
	}
	return m
}

// Uncolored returns the neighbor IDs of this node's uncolored edges.
func (m *Memory) Uncolored(info runtime.NodeInfo) []int {
	out := make([]int, 0, len(info.NeighborIDs))
	for _, nb := range info.NeighborIDs {
		if m.EdgeColor[nb] == 0 {
			out = append(out, nb)
		}
	}
	return out
}

// UsedColors returns the colors of this node's colored edges, sorted.
func (m *Memory) UsedColors() []int {
	out := make([]int, 0, len(m.EdgeColor))
	for _, c := range m.EdgeColor {
		if c != 0 {
			out = append(out, c)
		}
	}
	sort.Ints(out)
	return out
}

// SetColor fixes the color of the edge to nb and removes it from the
// palettes of this node's other uncolored edges.
func (m *Memory) SetColor(info runtime.NodeInfo, nb, color int) {
	m.EdgeColor[nb] = color
}

// PaletteFree reports whether color is available for the edge to nb: inside
// {1, ..., 2Δ−1}, not used at this node, and not struck by the other
// endpoint.
func (m *Memory) PaletteFree(info runtime.NodeInfo, nb, color int) bool {
	if color < 1 || color > 2*info.Delta-1 {
		return false
	}
	if m.Removed[nb][color] {
		return false
	}
	for _, c := range m.EdgeColor {
		if c == color {
			return false
		}
	}
	return true
}

// SmallestFree returns the least palette color for the edge to nb also
// avoiding the extra set (same-round picks at this node).
func (m *Memory) SmallestFree(info runtime.NodeInfo, nb int, extra map[int]bool) int {
	for c := 1; c <= 2*info.Delta-1; c++ {
		if extra[c] {
			continue
		}
		if m.PaletteFree(info, nb, c) {
			return c
		}
	}
	return 0
}

// OutputVector builds the final per-edge output in sorted-neighbor order.
func (m *Memory) OutputVector(info runtime.NodeInfo) []int {
	out := make([]int, len(info.NeighborIDs))
	for i, nb := range info.NeighborIDs {
		out[i] = m.EdgeColor[nb]
	}
	return out
}

// offer proposes the sender's predicted color for the shared edge.
type offer struct{ C int }

// Bits sizes the message for CONGEST accounting.
func (offer) Bits() int { return 16 }

// update carries palette removals and uncolored-edge bookkeeping: the colors
// now used at the sender, and the other endpoints of the sender's still
// uncolored edges.
type update struct {
	Used      []int
	Uncolored []int
}

// Bits sizes the message for CONGEST accounting: one color or endpoint ID
// (32 bits each, generous) per listed entry.
func (m update) Bits() int {
	return 32 * (len(m.Used) + len(m.Uncolored))
}

// assign fixes the shared edge's color (sent by a measure-uniform winner).
type assign struct{ C int }

// Bits sizes the message for CONGEST accounting.
func (assign) Bits() int { return 16 }

// applyUpdate folds an update from nb into memory.
func (m *Memory) applyUpdate(nb int, u update) {
	for _, c := range u.Used {
		m.Removed[nb][c] = true
	}
	m.NbrUncolored[nb] = u.Uncolored
}

// updateFor builds the update message for this node's current state,
// omitting the receiver from the uncolored list.
func (m *Memory) updateFor(info runtime.NodeInfo, to int) update {
	unc := make([]int, 0, len(info.NeighborIDs))
	for _, nb := range m.Uncolored(info) {
		if nb != to {
			unc = append(unc, nb)
		}
	}
	return update{Used: m.UsedColors(), Uncolored: unc}
}

// broadcastUpdates sends the current update to every uncolored neighbor.
func (m *Memory) broadcastUpdates(info runtime.NodeInfo) []runtime.Out {
	unc := m.Uncolored(info)
	outs := make([]runtime.Out, 0, len(unc))
	for _, nb := range unc {
		outs = append(outs, runtime.Out{To: nb, Payload: m.updateFor(info, nb)})
	}
	return outs
}

// Base returns the (2Δ−1)-Edge Coloring Base Algorithm (Section 8.3): nodes
// offer their predicted colors (where unique among their own predictions);
// matching offers color the edge; fully colored nodes terminate after round
// 1; round 2 distributes used colors and the two-hop uncolored-edge lists.
func Base() core.Stage {
	return core.Stage{
		Name:   "ecolor/base",
		Budget: 2,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &baseMachine{mem: mem.(*Memory)}
		},
	}
}

type baseMachine struct {
	mem  *Memory
	sent map[int]int // nb -> offered color
}

func (m *baseMachine) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	switch c.StageRound() {
	case 1:
		counts := make(map[int]int, len(m.mem.Pred))
		for _, col := range m.mem.Pred {
			counts[col]++
		}
		m.sent = make(map[int]int, len(info.NeighborIDs))
		outs := make([]runtime.Out, 0, len(info.NeighborIDs))
		for j, nb := range info.NeighborIDs {
			col := m.mem.Pred[j]
			if col < 1 || col > 2*info.Delta-1 || counts[col] > 1 {
				continue
			}
			m.sent[nb] = col
			outs = append(outs, runtime.Out{To: nb, Payload: offer{C: col}})
		}
		return outs
	default:
		return m.mem.broadcastUpdates(info)
	}
}

func (m *baseMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	info := c.Info()
	switch c.StageRound() {
	case 1:
		for _, msg := range inbox {
			of, ok := msg.Payload.(offer)
			if !ok {
				continue
			}
			if m.sent[msg.From] == of.C {
				m.mem.SetColor(info, msg.From, of.C)
			}
		}
		if len(m.mem.Uncolored(info)) == 0 {
			c.Output(m.mem.OutputVector(info))
		}
	default:
		for _, msg := range inbox {
			if u, ok := msg.Payload.(update); ok {
				m.mem.applyUpdate(msg.From, u)
			}
		}
		c.Yield()
	}
}

// Cleanup returns the edge-coloring clean-up (Section 8.3): one round in
// which every active node sends its used colors (and refreshed two-hop
// lists) along its uncolored edges.
func Cleanup() core.Stage {
	return core.Stage{
		Name:   "ecolor/cleanup",
		Budget: 1,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &cleanupMachine{mem: mem.(*Memory)}
		},
	}
}

type cleanupMachine struct{ mem *Memory }

func (m *cleanupMachine) Send(c *core.StageCtx) []runtime.Out {
	return m.mem.broadcastUpdates(c.Info())
}

func (m *cleanupMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		if u, ok := msg.Payload.(update); ok {
			m.mem.applyUpdate(msg.From, u)
		}
	}
	c.Yield()
}
