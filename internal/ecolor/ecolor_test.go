package ecolor_test

import (
	"math/rand"
	"testing"

	"repro/internal/ecolor"
	"repro/internal/graph"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

func runEColor(t *testing.T, g *graph.Graph, factory runtime.Factory, preds []predict.EdgePrediction) *runtime.Result {
	t.Helper()
	var anyPreds []any
	if preds != nil {
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = []int(p)
		}
	}
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: anyPreds})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	outs := make([][]int, g.N())
	for i, o := range res.Outputs {
		v, ok := o.([]int)
		if !ok {
			t.Fatalf("node %d output %v (%T)", g.ID(i), o, o)
		}
		outs[i] = v
	}
	colors, err := verify.NodeEdgeColorsAgree(g, outs)
	if err != nil {
		t.Fatalf("endpoint disagreement: %v", err)
	}
	if g.M() > 0 {
		if err := verify.EColor(g, colors); err != nil {
			t.Fatalf("invalid edge coloring: %v", err)
		}
	}
	return res
}

func testGraphs() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(17))
	return map[string]*graph.Graph{
		"pair":    graph.Line(2),
		"line14":  graph.Line(14),
		"ring15":  graph.Ring(15),
		"star8":   graph.Star(8),
		"clique7": graph.Clique(7),
		"grid5x5": graph.Grid2D(5, 5),
		"gnp30":   graph.GNP(30, 0.15, rng),
		"tree22":  graph.RandomTree(22, rng),
		"paths":   graph.DisjointPaths(3, 6),
		// Shuffled identifiers catch any index-order vs identifier-order
		// confusion in per-edge vectors (a real bug found by the matrix
		// test).
		"shuffled": graph.ShuffleIDs(graph.Grid2D(4, 5), 200, rng),
	}
}

func TestMeasureUniformSolo(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			res := runEColor(t, g, ecolor.Solo(ecolor.MeasureUniform(0)), nil)
			if limit := 2*g.N() - 3 + 2; res.Rounds > limit {
				t.Errorf("rounds %d > 2s-1 = %d", res.Rounds, limit)
			}
		})
	}
}

func TestBaseConsistency(t *testing.T) {
	for name, g := range testGraphs() {
		preds := predict.PerfectEColor(g)
		t.Run(name, func(t *testing.T) {
			res := runEColor(t, g, ecolor.SimpleGreedy(), preds)
			if res.Rounds > 1 {
				t.Errorf("consistency: got %d rounds, want 1 (correct predictions)", res.Rounds)
			}
		})
	}
}

func TestEColorTemplatesAcrossErrors(t *testing.T) {
	factories := map[string]runtime.Factory{
		"simple-greedy":    ecolor.SimpleGreedy(),
		"simple-collect":   ecolor.SimpleCollect(),
		"consecutive-coll": ecolor.ConsecutiveCollect(),
	}
	rng := rand.New(rand.NewSource(23))
	for gname, g := range testGraphs() {
		for _, k := range []int{0, 1, 3, g.M()} {
			preds := predict.PerturbEColor(g, predict.PerfectEColor(g), k, rng)
			for fname, f := range factories {
				t.Run(gname+"/"+fname, func(t *testing.T) {
					runEColor(t, g, f, preds)
				})
			}
		}
	}
}

func TestEColorDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for gname, g := range testGraphs() {
		for _, k := range []int{0, 1, 2} {
			preds := predict.PerturbEColor(g, predict.PerfectEColor(g), k, rng)
			uncolored := predict.EColorBaseUncolored(g, preds)
			comps := predict.EdgeErrorComponents(g, uncolored)
			eta1 := predict.Eta1(comps)
			res := runEColor(t, g, ecolor.SimpleGreedy(), preds)
			limit := 2*eta1 + 2 // 2s-3 measure-uniform + 2 base + slack
			if eta1 == 0 {
				limit = 2
			}
			if res.Rounds > limit {
				t.Errorf("%s k=%d: rounds %d > %d (eta1=%d)", gname, k, res.Rounds, limit, eta1)
			}
		}
	}
}
