package ecolor_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ecolor"
	"repro/internal/graph"
	"repro/internal/linegraph"
	"repro/internal/runtime"
)

// tentativeProbe runs the fault-tolerant line-graph coloring standalone on
// edge coloring's shared memory, emitting each node's tentative edge-color
// map (keyed by neighbor ID) as its output.
func tentativeProbe() runtime.Factory {
	part1 := core.Stage{Name: "lg", New: linegraph.Part1()}
	emit := core.Stage{
		Name: "emit",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return emitTentative{mem: mem.(*ecolor.Memory)}
		},
	}
	return core.Sequence(ecolor.NewMemory, part1, emit)
}

type emitTentative struct{ mem *ecolor.Memory }

func (m emitTentative) Send(c *core.StageCtx) []runtime.Out { return nil }
func (m emitTentative) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	out := make(map[int]int, len(m.mem.R1Colors))
	for nb, col := range m.mem.R1Colors {
		out[nb] = col
	}
	c.Output(out)
}

// TestTentativeColoringFaultTolerance crashes random subsets of nodes at
// random rounds during the tentative line-graph coloring and checks that
// edges between survivors still carry an agreed, proper (2Δ−1)-coloring —
// the property Section 8's Parallel Template needs from its reference's
// part 1 under faults: the surviving edges form an extendable partial edge
// coloring (edges to crashed endpoints drop out of the computation, so
// their stale colors are excluded from the check).
func TestTentativeColoringFaultTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 25; trial++ {
		g := graph.GNP(32, 0.15, rng)
		total := linegraph.Rounds(g.D(), g.MaxDegree())
		crashes := map[int]int{}
		for i := 0; i < g.N(); i++ {
			if rng.Float64() < 0.25 {
				crashes[i] = 1 + rng.Intn(total+1)
			}
		}
		res, err := runtime.Run(runtime.Config{
			Graph:     g,
			Factory:   tentativeProbe(),
			Crashes:   crashes,
			MaxRounds: total + 8, // the Linial countdown exceeds the engine default
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		palette := 2*g.MaxDegree() - 1
		colors := make([]map[int]int, g.N())
		for i, o := range res.Outputs {
			if o != nil {
				colors[i] = o.(map[int]int)
			}
		}
		for v := 0; v < g.N(); v++ {
			if colors[v] == nil {
				continue
			}
			seen := map[int]int{}
			for _, u32 := range g.Neighbors(v) {
				u := int(u32)
				if colors[u] == nil {
					continue
				}
				cv, okV := colors[v][g.ID(u)]
				cu, okU := colors[u][g.ID(v)]
				if !okV || !okU {
					t.Fatalf("trial %d: surviving edge (%d,%d) missing a color", trial, g.ID(v), g.ID(u))
				}
				if cv != cu {
					t.Fatalf("trial %d: edge (%d,%d) endpoint colors disagree: %d vs %d",
						trial, g.ID(v), g.ID(u), cv, cu)
				}
				if cv < 1 || cv > palette {
					t.Fatalf("trial %d: edge (%d,%d) color %d outside palette [1,%d]",
						trial, g.ID(v), g.ID(u), cv, palette)
				}
				if prev, dup := seen[cv]; dup {
					t.Fatalf("trial %d: node %d has surviving edges to %d and %d both colored %d",
						trial, g.ID(v), prev, g.ID(u), cv)
				}
				seen[cv] = g.ID(u)
			}
		}
	}
}
