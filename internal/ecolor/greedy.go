package ecolor

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// MeasureUniform returns the distance-2 measure-uniform edge-coloring
// algorithm of Section 8.3, in 2-round groups: in each odd round, every
// active node whose identifier exceeds those of all nodes reachable by at
// most two uncolored edges colors all its uncolored edges from their
// palettes, informs the other endpoints, outputs, and terminates; in the
// following even round, the recipients propagate the palette removals and
// updated uncolored-edge lists to their other neighbors. At least one node
// terminates per odd round, so the round complexity on a component with
// s ≥ 2 nodes is at most 2s−3; the code consults no graph parameter.
// Budgets should be even (group boundaries carry extendable partials).
func MeasureUniform(budget int) core.Stage {
	return core.Stage{
		Name:   "ecolor/greedy",
		Budget: budget,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &greedyMachine{mem: mem.(*Memory)}
		},
	}
}

type greedyMachine struct {
	mem     *Memory
	changed bool // received assignments last odd round; must update
}

// wins reports whether this node beats every identifier within two
// uncolored hops.
func (m *greedyMachine) wins(info runtime.NodeInfo) bool {
	for _, nb := range m.mem.Uncolored(info) {
		if nb > info.ID {
			return false
		}
		for _, far := range m.mem.NbrUncolored[nb] {
			if far != info.ID && far > info.ID {
				return false
			}
		}
	}
	return true
}

func (m *greedyMachine) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	if c.StageRound()%2 == 1 {
		m.changed = false
		unc := m.mem.Uncolored(info)
		if len(unc) == 0 {
			// Entering the stage with everything colored (possible when a
			// prior stage was interrupted right after our last edge was
			// assigned); just finish.
			c.Output(m.mem.OutputVector(info))
			return nil
		}
		if !m.wins(info) {
			return nil
		}
		picks := make(map[int]bool, len(unc))
		outs := make([]runtime.Out, 0, len(unc))
		for _, nb := range unc {
			col := m.mem.SmallestFree(info, nb, picks)
			picks[col] = true
			m.mem.SetColor(info, nb, col)
			outs = append(outs, runtime.Out{To: nb, Payload: assign{C: col}})
		}
		c.Output(m.mem.OutputVector(info))
		return outs
	}
	if m.changed {
		return m.mem.broadcastUpdates(info)
	}
	return nil
}

func (m *greedyMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	info := c.Info()
	if c.StageRound()%2 == 1 {
		for _, msg := range inbox {
			if a, ok := msg.Payload.(assign); ok {
				m.mem.SetColor(info, msg.From, a.C)
				m.changed = true
			}
		}
		if m.changed {
			if len(m.mem.Uncolored(info)) == 0 {
				c.Output(m.mem.OutputVector(info))
			} else {
				// Per the model (Section 8.3) a node outputs edge colors as
				// they are fixed, terminating only once all are; expose the
				// partial vector without terminating.
				c.PartialOutput(m.mem.OutputVector(info))
			}
		}
		return
	}
	for _, msg := range inbox {
		if u, ok := msg.Payload.(update); ok {
			m.mem.applyUpdate(msg.From, u)
		}
	}
}
