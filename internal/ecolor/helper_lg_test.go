package ecolor_test

import (
	"repro/internal/graph"
	"repro/internal/linegraph"
)

// linegraphRounds mirrors the R1 budget used by the Parallel template.
func linegraphRounds(g *graph.Graph) int {
	b := linegraph.Rounds(g.D(), g.MaxDegree())
	if b%2 == 1 {
		b++
	}
	return b
}
