package ecolor_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ecolor"
	"repro/internal/graph"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// partialColorsAt reconstructs per-edge colors from the nodes' current
// memory as exposed through partial outputs; since edge-coloring nodes
// output full vectors only at termination, we instead re-run and capture the
// final result while asserting the color-agreement invariant at the end.
// The extendability invariant for this problem is palette consistency: at
// every even round of the measure-uniform algorithm, the two endpoints of
// every uncolored edge agree on the edge's palette. That state lives in node
// memory; we verify it indirectly but sharply by interrupting the algorithm
// at every possible even budget and completing with the collect reference —
// any palette desynchronization would surface as an improper final coloring.
func TestInterruptAnywhereStaysProper(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	g := graph.GNP(18, 0.3, rng)
	preds := predict.PerturbEColor(g, predict.PerfectEColor(g), 6, rng)
	anyPreds := make([]any, len(preds))
	for i, p := range preds {
		anyPreds[i] = []int(p)
	}
	for budget := 2; budget <= 20; budget += 2 {
		factory := interruptedFactory(budget)
		res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: anyPreds})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		outs := make([][]int, g.N())
		for i, o := range res.Outputs {
			outs[i] = o.([]int)
		}
		colors, err := verify.NodeEdgeColorsAgree(g, outs)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := verify.EColor(g, colors); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
	}
}

// interruptedFactory builds Base + MeasureUniform(budget) + Cleanup +
// Collect: the measure-uniform algorithm is cut at an arbitrary even budget
// and the collect reference must complete the coloring from whatever palette
// state the interruption left behind.
func interruptedFactory(budget int) runtime.Factory {
	return core.Sequence(ecolor.NewMemory,
		ecolor.Base(), ecolor.MeasureUniform(budget), ecolor.Cleanup(), ecolor.Collect())
}

// TestQuickEColorAlwaysValid property-checks the pipeline over random graphs
// and garbage predictions.
func TestQuickEColorAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%22) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.25, rng)
		palette := 2*g.MaxDegree() - 1
		preds := make([]any, n)
		for v := 0; v < n; v++ {
			vec := make([]int, g.Degree(v))
			for j := range vec {
				vec[j] = rng.Intn(palette + 3) // possibly invalid colors
			}
			preds[v] = vec
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: ecolor.SimpleGreedy(), Predictions: preds,
		})
		if err != nil {
			return false
		}
		outs := make([][]int, n)
		for i, o := range res.Outputs {
			v, ok := o.([]int)
			if !ok {
				return false
			}
			outs[i] = v
		}
		colors, err := verify.NodeEdgeColorsAgree(g, outs)
		if err != nil {
			return false
		}
		if g.M() == 0 {
			return true
		}
		return verify.EColor(g, colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestParallelEColor exercises the Parallel Template for edge coloring
// across graphs, error levels, and shuffled identifiers.
func TestParallelEColor(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	graphs := map[string]*graph.Graph{
		"ring15":   graph.Ring(15),
		"grid5x5":  graph.Grid2D(5, 5),
		"star9":    graph.Star(9),
		"clique6":  graph.Clique(6),
		"gnp30":    graph.GNP(30, 0.15, rng),
		"shuffled": graph.ShuffleIDs(graph.Grid2D(4, 5), 120, rng),
	}
	for name, g := range graphs {
		perfect := predict.PerfectEColor(g)
		for _, k := range []int{0, 1, 4, g.M()} {
			preds := predict.PerturbEColor(g, perfect, k, rng)
			anyPreds := make([]any, len(preds))
			for i, p := range preds {
				anyPreds[i] = []int(p)
			}
			t.Run(name, func(t *testing.T) {
				res, err := runtime.Run(runtime.Config{
					Graph: g, Factory: ecolor.ParallelColoring(), Predictions: anyPreds,
					MaxRounds: 64*g.N() + 4096,
				})
				if err != nil {
					t.Fatal(err)
				}
				outs := make([][]int, g.N())
				for i, o := range res.Outputs {
					outs[i] = o.([]int)
				}
				colors, err := verify.NodeEdgeColorsAgree(g, outs)
				if err != nil {
					t.Fatal(err)
				}
				if g.M() > 0 {
					if err := verify.EColor(g, colors); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}

// TestQuickParallelEColorAlwaysValid hammers it with garbage predictions.
func TestQuickParallelEColorAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN uint8, shuffle bool) bool {
		n := int(rawN%18) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.25, rng)
		if shuffle {
			g = graph.ShuffleIDs(g, 3*n, rng)
		}
		palette := 2*g.MaxDegree() - 1
		preds := make([]any, n)
		for v := 0; v < n; v++ {
			vec := make([]int, g.Degree(v))
			for j := range vec {
				vec[j] = rng.Intn(palette + 3)
			}
			preds[v] = vec
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: ecolor.ParallelColoring(), Predictions: preds,
			MaxRounds: 64*n + 4096,
		})
		if err != nil {
			return false
		}
		outs := make([][]int, n)
		for i, o := range res.Outputs {
			v, ok := o.([]int)
			if !ok {
				return false
			}
			outs[i] = v
		}
		colors, err := verify.NodeEdgeColorsAgree(g, outs)
		if err != nil {
			return false
		}
		if g.M() == 0 {
			return true
		}
		return verify.EColor(g, colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestParallelEColorReferenceTakesOver forces the repair part: on a long
// ascending-ID line the distance-2 measure-uniform algorithm needs ~2n
// rounds while the line-graph coloring of a Δ=2 graph takes a few dozen, so
// part 2's per-class repair-and-output must finish the coloring.
func TestParallelEColorReferenceTakesOver(t *testing.T) {
	n := 400
	g := graph.Line(n)
	preds := make([]any, n)
	for v := 0; v < n; v++ {
		preds[v] = make([]int, g.Degree(v)) // all-zero predictions: nothing colored by base
	}
	res, err := runtime.Run(runtime.Config{
		Graph: g, Factory: ecolor.ParallelColoring(), Predictions: preds,
		MaxRounds: 16 * n,
	})
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]int, n)
	for i, o := range res.Outputs {
		outs[i] = o.([]int)
	}
	colors, err := verify.NodeEdgeColorsAgree(g, outs)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EColor(g, colors); err != nil {
		t.Fatal(err)
	}
	budget := linegraphRounds(g)
	if res.Rounds <= budget {
		t.Fatalf("rounds %d <= R1 budget %d: part 2 never ran", res.Rounds, budget)
	}
	refBound := 2 + budget + 1 + 1 + (2*g.MaxDegree() - 1) + 4
	if res.Rounds > refBound {
		t.Errorf("rounds %d > reference bound %d", res.Rounds, refBound)
	}
}
