package ecolor

import (
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/linegraph"
	"repro/internal/predict"
	"repro/internal/problem"
	"repro/internal/runtime"
	"repro/internal/verify"
)

func init() { problem.Register(descriptor()) }

// descriptor registers (2Δ−1)-edge coloring (Section 8.3). The outputs are
// per-node color vectors whose endpoint agreement is verified centrally;
// there is no healing machinery (the int-vector carving does not apply).
func descriptor() problem.Descriptor {
	return problem.Descriptor{
		Name:        "ecolor",
		Doc:         "(2Delta-1)-edge coloring (Section 8.3)",
		OutputLabel: "edge colors",
		Preds: func(g *graph.Graph, aux any, k int, seed int64) any {
			return predict.PerturbEColor(g, predict.PerfectEColor(g), k, rand.New(rand.NewSource(seed)))
		},
		EncodePreds: func(preds any) ([]any, error) {
			switch p := preds.(type) {
			case nil:
				return nil, nil
			case []predict.EdgePrediction:
				if p == nil {
					return nil, nil
				}
				out := make([]any, len(p))
				for i, v := range p {
					out[i] = []int(v)
				}
				return out, nil
			case []any:
				return p, nil
			default:
				return nil, fmt.Errorf("ecolor: predictions must be []predict.EdgePrediction, got %T", preds)
			}
		},
		Errors: func(g *graph.Graph, aux any, preds any) (string, error) {
			p, ok := preds.([]predict.EdgePrediction)
			if !ok {
				return "", fmt.Errorf("ecolor: predictions must be []predict.EdgePrediction, got %T", preds)
			}
			uncolored := predict.EColorBaseUncolored(g, p)
			return fmt.Sprintf("eta1=%d", predict.Eta1(predict.EdgeErrorComponents(g, uncolored))), nil
		},
		Finalize: func(g *graph.Graph, aux any, outs []any) (problem.Solution, error) {
			vecs := make([][]int, g.N())
			for i, o := range outs {
				v, ok := o.([]int)
				if !ok {
					return problem.Solution{}, fmt.Errorf("ecolor: node %d produced %T, want []int", g.ID(i), o)
				}
				vecs[i] = v
			}
			colors, err := verify.NodeEdgeColorsAgree(g, vecs)
			if err != nil {
				return problem.Solution{}, err
			}
			if g.M() > 0 {
				if err := verify.EColor(g, colors); err != nil {
					return problem.Solution{}, err
				}
			}
			return problem.Solution{Vectors: vecs, Edge: colors}, nil
		},
		Checker: func(sol problem.Solution) (runtime.Factory, []any, error) {
			if len(sol.Vectors) == 0 {
				return nil, nil, fmt.Errorf("ecolor: solution carries no per-node color vectors")
			}
			preds := make([]any, len(sol.Vectors))
			for i, v := range sol.Vectors {
				preds[i] = v
			}
			return check.EColor(), preds, nil
		},
		Algorithms: []problem.Algorithm{
			{
				Name: "greedy", Template: problem.TemplateSolo,
				Reference: "distance-2 measure-uniform algorithm alone", Bound: "2*mu1+O(1)",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return Solo(MeasureUniform(0)), nil },
			},
			{
				Name: "simple", Template: problem.TemplateSimple,
				Reference: "Base + distance-2 measure-uniform algorithm", Bound: "2eta1+2",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleGreedy(), nil },
			},
			{
				Name: "collect", Template: problem.TemplateSimple,
				Reference: "Base + collect-and-solve", Bound: "min{2eta1+2, n+3}",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleCollect(), nil },
			},
			{
				Name: "consecutive", Template: problem.TemplateConsecutive,
				Reference: "collect-and-solve", Bound: "2eta+O(1), robust",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return ConsecutiveCollect(), nil },
			},
			{
				Name: "parallel", Template: problem.TemplateParallel,
				Reference: "fault-tolerant line-graph coloring + repair", Bound: "min{2eta1+O(1), O(Delta^2 log* d)}",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return ParallelColoring(), nil },
				MaxRounds: func(g *graph.Graph) int {
					return linegraph.EngineCap(g.N(), g.D(), g.MaxDegree())
				},
			},
		},
	}
}
