// Package exact computes the exact graph quantities the paper's error
// measures are defined in terms of: the independence number α(G), the vertex
// cover number τ(G) (= n − α(G) by complementation), and the minimum Hamming
// distance from a prediction vector to the characteristic vector of a maximal
// independent set (the paper's η_H, Section 5).
//
// These are definitions, not distributed algorithms; they are evaluated
// offline on error components, which the experiment configurations keep small
// enough for exact branch-and-bound search.
package exact

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// MaxExactNodes bounds the component size accepted by the exponential-time
// routines in this package.
const MaxExactNodes = 512

// ErrTooLarge is returned when a graph exceeds MaxExactNodes.
var ErrTooLarge = errors.New("exact: graph too large for exact computation")

// ErrBudget is returned when the branch-and-bound search exceeds its step
// budget; it matches ErrTooLarge under errors.Is.
var ErrBudget = fmt.Errorf("search budget exhausted: %w", ErrTooLarge)

// alphaStepBudget bounds the number of branch nodes explored per call.
const alphaStepBudget = 4_000_000

// Alpha returns α(G), the size of a maximum independent set of g.
func Alpha(g *graph.Graph) (int, error) {
	if g.N() > MaxExactNodes {
		return 0, fmt.Errorf("%w: n=%d", ErrTooLarge, g.N())
	}
	total := 0
	for _, comp := range g.Components() {
		sub, _ := g.InducedSubgraph(comp)
		a, err := alphaConnected(sub)
		if err != nil {
			return 0, err
		}
		total += a
	}
	return total, nil
}

// Tau returns τ(G), the size of a minimum vertex cover of g. The complement
// of a maximum independent set is a minimum vertex cover, so τ = n − α.
func Tau(g *graph.Graph) (int, error) {
	a, err := Alpha(g)
	if err != nil {
		return 0, err
	}
	return g.N() - a, nil
}

// Mu2 returns the paper's measure μ₂(G) = 2·min{α(G), τ(G)}.
func Mu2(g *graph.Graph) (int, error) {
	a, err := Alpha(g)
	if err != nil {
		return 0, err
	}
	t := g.N() - a
	if t < a {
		a = t
	}
	return 2 * a, nil
}

// alphaConnected runs branch and bound on one connected graph using adjacency
// masks over a working vertex set. Standard two-way branching on a
// maximum-degree vertex with isolated/degree-1 simplification.
func alphaConnected(g *graph.Graph) (int, error) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	words := (n + 63) / 64
	adj := make([][]uint64, n)
	for i := 0; i < n; i++ {
		adj[i] = make([]uint64, words)
		for _, v := range g.Neighbors(i) {
			adj[i][v/64] |= 1 << (uint(v) % 64)
		}
	}
	full := make([]uint64, words)
	for i := 0; i < n; i++ {
		full[i/64] |= 1 << (uint(i) % 64)
	}
	s := &alphaSolver{n: n, words: words, adj: adj, budget: alphaStepBudget}
	a := s.solve(full)
	if s.exceeded {
		return 0, fmt.Errorf("alpha on %d nodes: %w", n, ErrBudget)
	}
	return a, nil
}

type alphaSolver struct {
	n        int
	words    int
	adj      [][]uint64
	budget   int
	exceeded bool
}

func popcount(mask []uint64) int {
	c := 0
	for _, w := range mask {
		c += bits.OnesCount64(w)
	}
	return c
}

func (s *alphaSolver) solve(mask []uint64) int {
	if s.budget--; s.budget < 0 {
		s.exceeded = true
		return 0
	}
	// Simplification loop: take isolated and degree-1 vertices greedily
	// (always optimal for maximum independent set).
	work := make([]uint64, s.words)
	copy(work, mask)
	taken := 0
	for {
		progress := false
		for v := 0; v < s.n; v++ {
			if work[v/64]&(1<<(uint(v)%64)) == 0 {
				continue
			}
			deg, only := s.degreeIn(v, work)
			switch deg {
			case 0:
				taken++
				clearBit(work, v)
				progress = true
			case 1:
				taken++
				clearBit(work, v)
				clearBit(work, only)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	if popcount(work) == 0 {
		return taken
	}
	// Split into connected components of the remaining mask; sparse error
	// components splinter quickly, which keeps the search tractable.
	comps := s.splitComponents(work)
	if len(comps) > 1 {
		for _, comp := range comps {
			taken += s.solve(comp)
		}
		return taken
	}
	// Branch on a maximum-degree vertex v: either exclude v, or include v and
	// exclude N(v).
	v, _ := s.maxDegreeIn(work)
	without := make([]uint64, s.words)
	copy(without, work)
	clearBit(without, v)
	best := s.solve(without)
	with := make([]uint64, s.words)
	for w := 0; w < s.words; w++ {
		with[w] = work[w] &^ s.adj[v][w]
	}
	clearBit(with, v)
	if r := 1 + s.solve(with); r > best {
		best = r
	}
	return taken + best
}

// splitComponents partitions the masked vertex set into connected components
// (as masks).
func (s *alphaSolver) splitComponents(mask []uint64) [][]uint64 {
	remaining := make([]uint64, s.words)
	copy(remaining, mask)
	var comps [][]uint64
	for {
		seed := -1
		for w := 0; w < s.words; w++ {
			if remaining[w] != 0 {
				seed = w*64 + bits.TrailingZeros64(remaining[w])
				break
			}
		}
		if seed < 0 {
			return comps
		}
		comp := make([]uint64, s.words)
		queue := []int{seed}
		setBit(comp, seed)
		clearBit(remaining, seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for w := 0; w < s.words; w++ {
				x := s.adj[v][w] & remaining[w]
				for x != 0 {
					u := w*64 + bits.TrailingZeros64(x)
					x &= x - 1
					setBit(comp, u)
					clearBit(remaining, u)
					queue = append(queue, u)
				}
			}
		}
		comps = append(comps, comp)
	}
}

func setBit(mask []uint64, v int) {
	mask[v/64] |= 1 << (uint(v) % 64)
}

func (s *alphaSolver) degreeIn(v int, mask []uint64) (deg, only int) {
	only = -1
	for w := 0; w < s.words; w++ {
		x := s.adj[v][w] & mask[w]
		deg += bits.OnesCount64(x)
		if x != 0 {
			only = w*64 + bits.TrailingZeros64(x)
		}
	}
	return deg, only
}

func (s *alphaSolver) maxDegreeIn(mask []uint64) (v, deg int) {
	v, deg = -1, -1
	for u := 0; u < s.n; u++ {
		if mask[u/64]&(1<<(uint(u)%64)) == 0 {
			continue
		}
		d, _ := s.degreeIn(u, mask)
		if d > deg {
			v, deg = u, d
		}
	}
	return v, deg
}

func clearBit(mask []uint64, v int) {
	mask[v/64] &^= 1 << (uint(v) % 64)
}

// MaxHammingNodes bounds the graph size for MinHammingToMIS, which explores
// maximal independent sets exhaustively.
const MaxHammingNodes = 28

// MinHammingToMIS returns the paper's η_H for the MIS problem: the minimum,
// over all maximal independent sets M of g, of the Hamming distance between
// pred and the characteristic vector of M. pred[i] must be 0 or 1.
func MinHammingToMIS(g *graph.Graph, pred []int) (int, error) {
	n := g.N()
	if n > MaxHammingNodes {
		return 0, fmt.Errorf("%w: n=%d (limit %d)", ErrTooLarge, n, MaxHammingNodes)
	}
	if len(pred) != n {
		return 0, fmt.Errorf("exact: %d predictions for %d nodes", len(pred), n)
	}
	adj := make([]uint32, n)
	for i := 0; i < n; i++ {
		for _, v := range g.Neighbors(i) {
			adj[i] |= 1 << uint(v)
		}
	}
	predMask := uint32(0)
	for i, p := range pred {
		if p == 1 {
			predMask |= 1 << uint(i)
		}
	}
	best := n + 1
	// Enumerate all maximal independent sets by branching on the lowest
	// undecided vertex: in or out. Maximality is checked at the leaves.
	var rec func(idx int, set, excluded uint32)
	rec = func(idx int, set, excluded uint32) {
		if idx == n {
			// Maximal iff every vertex outside set has a neighbor inside.
			for v := 0; v < n; v++ {
				bit := uint32(1) << uint(v)
				if set&bit == 0 && adj[v]&set == 0 {
					return
				}
			}
			d := bits.OnesCount32(set ^ predMask)
			if d < best {
				best = d
			}
			return
		}
		bit := uint32(1) << uint(idx)
		if excluded&bit == 0 && adj[idx]&set == 0 {
			rec(idx+1, set|bit, excluded)
		}
		rec(idx+1, set, excluded|bit)
	}
	rec(0, 0, 0)
	return best, nil
}

// GreedyMISByID returns the canonical maximal independent set obtained by
// scanning nodes in ascending identifier order and taking every node none of
// whose neighbors has been taken. Returned as a 0/1 vector by node index.
// This is the deterministic "solve locally" rule shared by every
// collect-and-solve reference in the repository, so distinct nodes computing
// the MIS of the same component agree.
func GreedyMISByID(g *graph.Graph) []int {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Sort by identifier.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && g.ID(order[j]) < g.ID(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for _, v := range order {
		take := true
		for _, u := range g.Neighbors(v) {
			if out[u] == 1 {
				take = false
				break
			}
		}
		if take {
			out[v] = 1
		} else {
			out[v] = 0
		}
	}
	return out
}

// GreedyMatchingByID returns the canonical maximal matching obtained by
// scanning edges in ascending (smaller endpoint ID, larger endpoint ID)
// order, taking every edge whose endpoints are both free. Returned as
// partner identifiers per node index, 0 for unmatched. This is the shared
// deterministic rule used by collect-and-solve matching references.
func GreedyMatchingByID(g *graph.Graph) []int {
	type edge struct{ a, b, ia, ib int }
	edges := make([]edge, 0, g.M())
	for _, e := range g.Edges() {
		a, b := g.ID(e[0]), g.ID(e[1])
		ia, ib := e[0], e[1]
		if a > b {
			a, b = b, a
			ia, ib = ib, ia
		}
		edges = append(edges, edge{a, b, ia, ib})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	out := make([]int, g.N())
	for _, e := range edges {
		if out[e.ia] == 0 && out[e.ib] == 0 {
			out[e.ia] = e.b
			out[e.ib] = e.a
		}
	}
	return out
}

// MaxMatchingSize returns the size of a maximum matching of g, via simple
// augmenting-path search (Hungarian-style for general graphs using
// Blossom-free DFS is not exact on odd cycles, so this uses exhaustive
// branch and bound on edges; intended for small component analysis).
func MaxMatchingSize(g *graph.Graph) (int, error) {
	if g.N() > 2*MaxHammingNodes {
		return 0, fmt.Errorf("%w: n=%d", ErrTooLarge, g.N())
	}
	edges := g.Edges()
	used := make([]bool, g.N())
	var rec func(idx, size int) int
	rec = func(idx, size int) int {
		best := size
		for i := idx; i < len(edges); i++ {
			e := edges[i]
			if used[e[0]] || used[e[1]] {
				continue
			}
			used[e[0]], used[e[1]] = true, true
			if r := rec(i+1, size+1); r > best {
				best = r
			}
			used[e[0]], used[e[1]] = false, false
			// Pruning: skipping a free edge entirely is covered by later
			// iterations; continue scanning.
		}
		return best
	}
	return rec(0, 0), nil
}
