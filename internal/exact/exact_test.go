package exact_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/verify"
)

func TestAlphaKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.NewBuilder(0).MustBuild(), 0},
		{"single", graph.Line(1), 1},
		{"line2", graph.Line(2), 1},
		{"line5", graph.Line(5), 3},
		{"line10", graph.Line(10), 5},
		{"ring6", graph.Ring(6), 3},
		{"ring7", graph.Ring(7), 3},
		{"clique8", graph.Clique(8), 1},
		{"star9", graph.Star(9), 8},
		{"grid4x4", graph.Grid2D(4, 4), 8},
		{"grid5x5", graph.Grid2D(5, 5), 13},
		{"k34", graph.CompleteBipartite(3, 4), 4},
		{"hcube3", graph.Hypercube(3), 4},
		{"paths3x4", graph.DisjointPaths(3, 4), 6},
	}
	for _, c := range cases {
		got, err := exact.Alpha(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: alpha = %d, want %d", c.name, got, c.want)
		}
		tau, err := exact.Tau(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if tau != c.g.N()-c.want {
			t.Errorf("%s: tau = %d, want %d", c.name, tau, c.g.N()-c.want)
		}
	}
}

func TestMu2KnownValues(t *testing.T) {
	// Clique: alpha=1 -> mu2=2. Star K1,8: tau=1 -> mu2=2. Ring6: min(3,3)=3 -> 6.
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"clique9", graph.Clique(9), 2},
		{"star9", graph.Star(9), 2},
		{"ring6", graph.Ring(6), 6},
		{"line4", graph.Line(4), 4},
	}
	for _, c := range cases {
		got, err := exact.Mu2(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: mu2 = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestQuickAlphaAgainstBruteForce cross-checks the branch-and-bound against
// exhaustive enumeration on small random graphs.
func TestQuickAlphaAgainstBruteForce(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%12) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		want := bruteForceAlpha(g)
		got, err := exact.Alpha(g)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func bruteForceAlpha(g *graph.Graph) int {
	n := g.N()
	best := 0
	for set := 0; set < 1<<uint(n); set++ {
		ok := true
		size := 0
		for u := 0; u < n && ok; u++ {
			if set&(1<<uint(u)) == 0 {
				continue
			}
			size++
			for _, v := range g.Neighbors(u) {
				if set&(1<<uint(v)) != 0 {
					ok = false
					break
				}
			}
		}
		if ok && size > best {
			best = size
		}
	}
	return best
}

func TestGreedyMISByIDValid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	graphs := []*graph.Graph{
		graph.Line(17), graph.Ring(12), graph.Clique(7), graph.Star(9),
		graph.Grid2D(5, 6), graph.GNP(40, 0.15, rng),
		graph.ShuffleIDs(graph.Grid2D(4, 4), 64, rng),
	}
	for i, g := range graphs {
		out := exact.GreedyMISByID(g)
		if err := verify.MIS(g, out); err != nil {
			t.Errorf("graph %d: %v", i, err)
		}
	}
}

func TestGreedyMatchingByIDValid(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	graphs := []*graph.Graph{
		graph.Line(17), graph.Ring(12), graph.Clique(7), graph.Star(9),
		graph.GNP(30, 0.2, rng),
	}
	for i, g := range graphs {
		out := exact.GreedyMatchingByID(g)
		if err := verify.Matching(g, out); err != nil {
			t.Errorf("graph %d: %v", i, err)
		}
	}
}

func TestMinHammingToMIS(t *testing.T) {
	// A perfect MIS prediction has distance 0.
	g := graph.Ring(8)
	mis := exact.GreedyMISByID(g)
	if d, err := exact.MinHammingToMIS(g, mis); err != nil || d != 0 {
		t.Errorf("perfect prediction: d=%d err=%v", d, err)
	}
	// All-ones on a triangle: closest MIS has one node -> distance 2.
	tri := graph.Ring(3)
	if d, err := exact.MinHammingToMIS(tri, []int{1, 1, 1}); err != nil || d != 2 {
		t.Errorf("triangle all-ones: d=%d err=%v", d, err)
	}
	// All-zeros on a single node: must flip it -> distance 1.
	single := graph.Line(1)
	if d, err := exact.MinHammingToMIS(single, []int{0}); err != nil || d != 1 {
		t.Errorf("single all-zeros: d=%d err=%v", d, err)
	}
	// Size guard.
	if _, err := exact.MinHammingToMIS(graph.Line(40), make([]int, 40)); err == nil {
		t.Error("want ErrTooLarge for n=40")
	}
}

// TestQuickHammingUpperBound: flipping k bits of a valid MIS moves at most
// distance k from some MIS.
func TestQuickHammingUpperBound(t *testing.T) {
	f := func(seed int64, rawN, rawK uint8) bool {
		n := int(rawN%14) + 2
		k := int(rawK) % n
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.25, rng)
		base := exact.GreedyMISByID(g)
		pred := make([]int, n)
		copy(pred, base)
		for _, i := range rng.Perm(n)[:k] {
			pred[i] ^= 1
		}
		d, err := exact.MinHammingToMIS(g, pred)
		return err == nil && d <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxMatchingSize(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Line(5), 2},
		{graph.Line(6), 3},
		{graph.Ring(7), 3},
		{graph.Star(9), 1},
		{graph.Clique(6), 3},
		{graph.CompleteBipartite(3, 5), 3},
	}
	for i, c := range cases {
		got, err := exact.MaxMatchingSize(c.g)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: matching size %d, want %d", i, got, c.want)
		}
	}
}
