package graph_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// TestFromEdgesMatchesBuilder pins the contract of the flat-array
// constructor: for any edge multiset (unsorted, unnormalized, with
// duplicates), FromEdges produces a graph identical to feeding the same
// edges through the Builder.
func TestFromEdgesMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		b := graph.NewBuilder(n)
		var edges [][2]int
		for e := 0; e < rng.Intn(4*n); e++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			b.AddEdge(u, v)
			if rng.Intn(3) == 0 {
				u, v = v, u // leave some edges reversed for FromEdges to normalize
			}
			edges = append(edges, [2]int{u, v})
			if rng.Intn(4) == 0 {
				edges = append(edges, [2]int{u, v}) // and some duplicated
			}
		}
		want := b.MustBuild()
		got, err := graph.FromEdges(n, nil, 0, edges)
		if err != nil {
			t.Fatalf("trial %d: FromEdges: %v", trial, err)
		}
		if got.N() != want.N() || got.M() != want.M() || got.D() != want.D() {
			t.Fatalf("trial %d: shape mismatch: got (n=%d m=%d d=%d) want (n=%d m=%d d=%d)",
				trial, got.N(), got.M(), got.D(), want.N(), want.M(), want.D())
		}
		for k, e := range want.Edges() {
			if got.Edges()[k] != e {
				t.Fatalf("trial %d: edge %d: got %v want %v", trial, k, got.Edges()[k], e)
			}
		}
		for i := 0; i < n; i++ {
			if got.ID(i) != want.ID(i) {
				t.Fatalf("trial %d: node %d id %d != %d", trial, i, got.ID(i), want.ID(i))
			}
			if !reflect.DeepEqual(got.Neighbors(i), want.Neighbors(i)) {
				t.Fatalf("trial %d: node %d adjacency %v != %v", trial, i, got.Neighbors(i), want.Neighbors(i))
			}
		}
	}
}

func TestFromEdgesValidation(t *testing.T) {
	if _, err := graph.FromEdges(3, nil, 0, [][2]int{{0, 0}}); err == nil {
		t.Error("want error for self-loop")
	}
	if _, err := graph.FromEdges(3, nil, 0, [][2]int{{0, 3}}); err == nil {
		t.Error("want error for out-of-range edge")
	}
	if _, err := graph.FromEdges(2, []int{1}, 0, nil); err == nil {
		t.Error("want error for short id slice")
	}
	if _, err := graph.FromEdges(2, []int{5, 5}, 0, nil); err == nil {
		t.Error("want error for duplicate identifiers (bitmap path)")
	}
	if _, err := graph.FromEdges(2, []int{1 << 30, 1 << 30}, 0, nil); err == nil {
		t.Error("want error for duplicate identifiers (map path)")
	}
	if _, err := graph.FromEdges(2, []int{0, 1}, 0, nil); err == nil {
		t.Error("want error for non-positive identifier")
	}
	g, err := graph.FromEdges(3, []int{7, 2, 9}, 0, [][2]int{{1, 0}, {1, 2}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.D() != 9 {
		t.Errorf("domain = %d, want 9 (raised to max id)", g.D())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Errorf("unexpected degrees %d/%d", g.Degree(1), g.Degree(0))
	}
}
