package graph

import (
	"math/rand"
	"sort"
)

// mustFromEdges is FromEdges for generators whose inputs are valid by
// construction.
func mustFromEdges(n int, ids []int, domain int, edges [][2]int) *Graph {
	g, err := FromEdges(n, ids, domain, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Line returns a path with n nodes 0-1-2-...-(n-1), identifiers 1..n.
func Line(n int) *Graph {
	edges := make([][2]int, 0, n)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return mustFromEdges(n, nil, 0, edges)
}

// LineWithIDs returns a path whose node at position i has identifier ids[i].
// Used by the Ramsey-style lower-bound demonstrations, which need control
// over the identifier sequence along the line.
func LineWithIDs(ids []int) *Graph {
	b := NewBuilder(len(ids))
	for i, id := range ids {
		b.SetID(i, id)
	}
	for i := 0; i+1 < len(ids); i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

// Ring returns a cycle with n >= 3 nodes.
func Ring(n int) *Graph {
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return mustFromEdges(n, nil, 0, edges)
}

// Star returns a star with one center (index 0) and n-1 leaves.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.MustBuild()
}

// Clique returns the complete graph on n nodes.
func Clique(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.MustBuild()
}

// CompleteBipartite returns K_{a,b}: indices 0..a-1 on one side,
// a..a+b-1 on the other.
func CompleteBipartite(a, b int) *Graph {
	bld := NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := a; j < a+b; j++ {
			bld.AddEdge(i, j)
		}
	}
	return bld.MustBuild()
}

// Grid2D returns the rows x cols grid graph. Node (r, c) has index r*cols+c.
func Grid2D(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(idx(r, c), idx(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(idx(r, c), idx(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// WheelFk returns the paper's graph F_k (Figure 1): a wheel with k rim nodes
// and one extra node on each spoke. Index 0 is the hub; indices 1..k are the
// spoke midpoints; indices k+1..2k are the rim nodes. The rim node i is
// connected to rim node i+1 (mod k) and to spoke midpoint i, which is
// connected to the hub. Total 2k+1 nodes; diameter 4; the rim induces a cycle
// of diameter floor(k/2).
func WheelFk(k int) *Graph {
	b := NewBuilder(2*k + 1)
	for i := 0; i < k; i++ {
		spoke := 1 + i
		rim := 1 + k + i
		b.AddEdge(0, spoke)
		b.AddEdge(spoke, rim)
		b.AddEdge(rim, 1+k+(i+1)%k)
	}
	return b.MustBuild()
}

// RimNodes returns the node indices of the rim cycle of WheelFk(k).
func RimNodes(k int) []int {
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = 1 + k + i
	}
	return out
}

// GNP returns an Erdős–Rényi random graph G(n, p) using rng.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild()
}

// RandomTree returns a uniformly random labelled tree on n nodes via a random
// Prüfer sequence.
func RandomTree(n int, rng *rand.Rand) *Graph {
	if n == 1 {
		return NewBuilder(1).MustBuild()
	}
	if n == 2 {
		return NewBuilder(2).AddEdge(0, 1).MustBuild()
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range prufer {
		deg[v]++
	}
	b := NewBuilder(n)
	// Classic Prüfer decoding with a linear scan; n is small in experiments.
	used := make([]bool, n)
	for _, v := range prufer {
		for u := 0; u < n; u++ {
			if deg[u] == 1 && !used[u] {
				b.AddEdge(u, v)
				used[u] = true
				deg[v]--
				break
			}
		}
	}
	last := make([]int, 0, 2)
	for u := 0; u < n; u++ {
		if deg[u] == 1 && !used[u] {
			last = append(last, u)
		}
	}
	b.AddEdge(last[0], last[1])
	return b.MustBuild()
}

// Caterpillar returns a caterpillar tree: a spine path of length spine with
// legs pendant leaves attached to every spine node.
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	b := NewBuilder(n)
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(i, next)
			next++
		}
	}
	return b.MustBuild()
}

// Hypercube returns the dim-dimensional hypercube graph on 2^dim nodes.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < dim; bit++ {
			v := u ^ (1 << bit)
			if v > u {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// DisjointPaths returns count disjoint paths, each with pathLen nodes.
// Path p occupies indices [p*pathLen, (p+1)*pathLen). Used by the Section 10
// Luby experiment.
func DisjointPaths(count, pathLen int) *Graph {
	edges := make([][2]int, 0, count*pathLen)
	for p := 0; p < count; p++ {
		base := p * pathLen
		for i := 0; i+1 < pathLen; i++ {
			edges = append(edges, [2]int{base + i, base + i + 1})
		}
	}
	return mustFromEdges(count*pathLen, nil, 0, edges)
}

// BarabasiAlbert returns a preferential-attachment random graph: starting
// from a small clique, each new node attaches m edges to existing nodes with
// probability proportional to their degree. Produces the heavy-tailed degree
// distributions typical of real networks, used by the churn experiments.
func BarabasiAlbert(n, m int, rng *rand.Rand) *Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	// Flat edge-list construction: no Builder map, so million-node instances
	// build in seconds. The rng draw sequence is pinned — one Intn per
	// attachment attempt, retrying duplicates — and matches the original
	// map-based implementation draw for draw, so seeded instances (and the
	// golden tables derived from them) are unchanged.
	seedEdges := m * (m + 1) / 2
	edges := make([][2]int, 0, seedEdges+(n-m-1)*m)
	// Repeated-endpoint list: picking a uniform element is degree-biased.
	endpoints := make([]int, 0, 2*cap(edges))
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			edges = append(edges, [2]int{i, j})
			endpoints = append(endpoints, i, j)
		}
	}
	picks := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		picks = picks[:0]
		for len(picks) < m {
			u := endpoints[rng.Intn(len(endpoints))]
			dup := false
			for _, p := range picks {
				if p == u {
					dup = true
					break
				}
			}
			if !dup {
				picks = append(picks, u)
			}
		}
		// Attach in sorted order so the endpoint list (which feeds every
		// later draw) is independent of pick order.
		sort.Ints(picks)
		for _, u := range picks {
			edges = append(edges, [2]int{u, v})
			endpoints = append(endpoints, v, u)
		}
	}
	return mustFromEdges(n, nil, 0, edges)
}

// DisjointUnion returns the disjoint union of the given graphs; node
// indices (and identifiers) of later graphs are shifted past the earlier
// ones, so identifiers stay distinct.
func DisjointUnion(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	b := NewBuilder(n)
	offset, idOffset := 0, 0
	for _, g := range gs {
		for i := 0; i < g.N(); i++ {
			b.SetID(offset+i, idOffset+g.ID(i))
		}
		for _, e := range g.Edges() {
			b.AddEdge(offset+e[0], offset+e[1])
		}
		offset += g.N()
		idOffset += g.D()
	}
	return b.MustBuild()
}

// FlipEdges returns a copy of g with k random node pairs toggled (edge
// added if absent, removed if present) — the "related network" churn of the
// paper's Section 1.1 motivation. Identifiers are preserved.
func FlipEdges(g *Graph, k int, rng *rand.Rand) *Graph {
	// Record the toggled pairs, then form the symmetric difference with the
	// (already sorted) edge list by a linear merge: no edge map, so churning
	// a million-node graph costs O(m + k log k) and flat memory. A pair
	// toggled an even number of times cancels out, exactly as repeated map
	// toggles did. The rng draw sequence is unchanged from the map-based
	// implementation.
	toggles := make([][2]int, 0, k)
	for i := 0; i < k && g.N() >= 2; i++ {
		u := rng.Intn(g.N())
		v := rng.Intn(g.N())
		for v == u {
			v = rng.Intn(g.N())
		}
		if u > v {
			u, v = v, u
		}
		toggles = append(toggles, [2]int{u, v})
	}
	sort.Slice(toggles, func(a, b int) bool {
		if toggles[a][0] != toggles[b][0] {
			return toggles[a][0] < toggles[b][0]
		}
		return toggles[a][1] < toggles[b][1]
	})
	flips := make([][2]int, 0, len(toggles))
	for i := 0; i < len(toggles); {
		j := i
		for j < len(toggles) && toggles[j] == toggles[i] {
			j++
		}
		if (j-i)%2 == 1 {
			flips = append(flips, toggles[i])
		}
		i = j
	}
	old := g.Edges()
	kept := make([][2]int, 0, len(old)+len(flips))
	i, j := 0, 0
	for i < len(old) && j < len(flips) {
		switch {
		case old[i][0] < flips[j][0] || (old[i][0] == flips[j][0] && old[i][1] < flips[j][1]):
			kept = append(kept, old[i])
			i++
		case old[i] == flips[j]:
			// Present edge toggled off.
			i++
			j++
		default:
			kept = append(kept, flips[j])
			j++
		}
	}
	kept = append(kept, old[i:]...)
	kept = append(kept, flips[j:]...)
	return mustFromEdges(g.N(), g.IDs(), g.D(), kept)
}

// ShuffleIDs returns a copy of g with identifiers drawn without replacement
// from {1, ..., domain} uniformly at random. domain must be >= g.N().
func ShuffleIDs(g *Graph, domain int, rng *rand.Rand) *Graph {
	perm := rng.Perm(domain)
	b := NewBuilder(g.N())
	b.SetDomain(domain)
	for i := 0; i < g.N(); i++ {
		b.SetID(i, perm[i]+1)
	}
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}
