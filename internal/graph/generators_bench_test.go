package graph_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// The generator benchmarks track the flat-array construction path
// (FromEdges): regressions here show up directly in the dgp-bench scale
// sweep's build column.

func BenchmarkRing100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := graph.Ring(100_000)
		if g.N() != 100_000 {
			b.Fatal("wrong size")
		}
	}
}

func BenchmarkBarabasiAlbert100k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(7))
		g := graph.BarabasiAlbert(100_000, 3, rng)
		if g.N() != 100_000 {
			b.Fatal("wrong size")
		}
	}
}

func BenchmarkFlipEdges100k(b *testing.B) {
	g := graph.Ring(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(11))
		h := graph.FlipEdges(g, 1000, rng)
		if h.N() != g.N() {
			b.Fatal("wrong size")
		}
	}
}
