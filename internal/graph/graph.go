// Package graph provides the immutable graph representation used by every
// algorithm in this repository, together with generators for the instance
// families appearing in the paper and standard structural queries
// (components, BFS, diameter, induced subgraphs, line graphs).
//
// Nodes carry distinct identifiers from {1, ..., d} as in the paper's model
// (Section 2). Internally nodes are indexed 0..n-1; the identifier of index i
// is stored in IDs[i]. Most algorithmic code works with indices and consults
// identifiers only to break ties, exactly as the paper's algorithms do.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected graph. The zero value is the empty graph.
//
// Adjacency is stored in compressed sparse row form: the neighbors of node i
// (as indices) are adj[offsets[i]:offsets[i+1]], sorted ascending. Neighbor
// slices returned by methods alias internal storage and must not be modified.
type Graph struct {
	n       int
	d       int // upper bound on identifiers; >= max(ids)
	ids     []int
	offsets []int32
	adj     []int32
	edges   [][2]int // each edge once, u < v by index
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	ids   []int
	d     int
	edges map[[2]int]struct{}
}

// NewBuilder creates a builder for a graph with n nodes whose identifiers
// default to 1..n (so d = n). Use SetID to override.
func NewBuilder(n int) *Builder {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	return &Builder{
		n:     n,
		ids:   ids,
		d:     n,
		edges: make(map[[2]int]struct{}),
	}
}

// SetID assigns identifier id to node index i. Identifiers must be distinct
// and positive; this is validated in Build.
func (b *Builder) SetID(i, id int) *Builder {
	b.ids[i] = id
	if id > b.d {
		b.d = id
	}
	return b
}

// SetDomain sets d, the upper bound on identifiers. Build raises it if any
// identifier exceeds it.
func (b *Builder) SetDomain(d int) *Builder {
	b.d = d
	return b
}

// AddEdge adds the undirected edge {u, v} (node indices). Self-loops and
// duplicate edges are rejected in Build via error; duplicates are coalesced.
func (b *Builder) AddEdge(u, v int) *Builder {
	if u > v {
		u, v = v, u
	}
	b.edges[[2]int{u, v}] = struct{}{}
	return b
}

// Build validates the accumulated structure and returns the immutable graph.
func (b *Builder) Build() (*Graph, error) {
	seen := make(map[int]struct{}, b.n)
	for i, id := range b.ids {
		if id <= 0 {
			return nil, fmt.Errorf("graph: node %d has non-positive identifier %d", i, id)
		}
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("graph: duplicate identifier %d", id)
		}
		seen[id] = struct{}{}
		if id > b.d {
			b.d = id
		}
	}
	edges := make([][2]int, 0, len(b.edges))
	for e := range b.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	// Validate after sorting so the reported edge is the canonical first
	// offender, not whichever the map served up this run.
	for _, e := range edges {
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self-loop at node %d", e[0])
		}
		if e[0] < 0 || e[1] >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e[0], e[1], b.n)
		}
	}

	deg := make([]int32, b.n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, b.n+1)
	for i := 0; i < b.n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]int32, offsets[b.n])
	fill := make([]int32, b.n)
	copy(fill, offsets[:b.n])
	for _, e := range edges {
		u, v := int32(e[0]), int32(e[1])
		adj[fill[u]] = v
		fill[u]++
		adj[fill[v]] = u
		fill[v]++
	}
	for i := 0; i < b.n; i++ {
		s := adj[offsets[i]:offsets[i+1]]
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	}
	ids := make([]int, b.n)
	copy(ids, b.ids)
	return &Graph{
		n:       b.n,
		d:       b.d,
		ids:     ids,
		offsets: offsets,
		adj:     adj,
		edges:   edges,
	}, nil
}

// MustBuild is Build that panics on error; intended for generators and tests
// whose inputs are valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges assembles a graph directly from an edge list on flat arrays,
// skipping the Builder's per-edge map — the fast path for million-node
// generators. The edge slice is taken over and normalized in place (u < v,
// sorted, duplicates coalesced). ids supplies the identifier of each node
// index and may be nil for the identity assignment 1..n; domain is the
// identifier upper bound d (0 selects the smallest valid bound). The
// resulting graph is identical to feeding the same edges through a Builder.
func FromEdges(n int, ids []int, domain int, edges [][2]int) (*Graph, error) {
	for i, e := range edges {
		if e[0] > e[1] {
			edges[i] = [2]int{e[1], e[0]}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	w := 0
	for i, e := range edges {
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self-loop at node %d", e[0])
		}
		if e[0] < 0 || e[1] >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e[0], e[1], n)
		}
		if i > 0 && e == edges[w-1] {
			continue
		}
		edges[w] = e
		w++
	}
	edges = edges[:w]

	if ids == nil {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i + 1
		}
		if domain < n {
			domain = n
		}
	} else {
		if len(ids) != n {
			return nil, fmt.Errorf("graph: %d identifiers for %d nodes", len(ids), n)
		}
		own := make([]int, n)
		copy(own, ids)
		ids = own
		for i, id := range ids {
			if id <= 0 {
				return nil, fmt.Errorf("graph: node %d has non-positive identifier %d", i, id)
			}
			if id > domain {
				domain = id
			}
		}
		// Distinctness check: a flat bitmap over the identifier domain when
		// it is comparably sized to n, a map otherwise (huge sparse domains).
		if domain <= 4*n+1024 {
			seen := make([]bool, domain+1)
			for _, id := range ids {
				if seen[id] {
					return nil, fmt.Errorf("graph: duplicate identifier %d", id)
				}
				seen[id] = true
			}
		} else {
			seen := make(map[int]struct{}, n)
			for _, id := range ids {
				if _, dup := seen[id]; dup {
					return nil, fmt.Errorf("graph: duplicate identifier %d", id)
				}
				seen[id] = struct{}{}
			}
		}
	}

	deg := make([]int32, n)
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]int32, offsets[n])
	fill := deg // reuse: overwritten below as the insertion cursor
	copy(fill, offsets[:n])
	for _, e := range edges {
		u, v := int32(e[0]), int32(e[1])
		adj[fill[u]] = v
		fill[u]++
		adj[fill[v]] = u
		fill[v]++
	}
	// No per-range sort is needed: with edges sorted by (u, v), node x first
	// receives its neighbors w < x in ascending w (as second endpoints of the
	// (w, x) groups) and then its neighbors v > x in ascending v (within the
	// first == x group), so every adjacency range comes out ascending.
	return &Graph{
		n:       n,
		d:       domain,
		ids:     ids,
		offsets: offsets,
		adj:     adj,
		edges:   edges,
	}, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// D returns the upper bound on node identifiers (the paper's d).
func (g *Graph) D() int { return g.d }

// ID returns the identifier of node index i.
func (g *Graph) ID(i int) int { return g.ids[i] }

// IDs returns a copy of the identifier slice, indexed by node index.
func (g *Graph) IDs() []int {
	out := make([]int, g.n)
	copy(out, g.ids)
	return out
}

// IndexOfID returns the node index whose identifier is id, or -1.
func (g *Graph) IndexOfID(id int) int {
	for i, x := range g.ids {
		if x == id {
			return i
		}
	}
	return -1
}

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int {
	return int(g.offsets[i+1] - g.offsets[i])
}

// MaxDegree returns Δ, the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for i := 0; i < g.n; i++ {
		if d := g.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Neighbors returns the neighbor indices of node i, ascending. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) Neighbors(i int) []int32 {
	return g.adj[g.offsets[i]:g.offsets[i+1]]
}

// CSR exposes the graph's compressed-sparse-row adjacency: node i's
// neighbor indices are adj[offsets[i]:offsets[i+1]], ascending, with
// len(offsets) == N()+1. Both slices alias internal storage and must not be
// modified; they let hot paths (the columnar engine) walk the whole edge
// set without per-node accessor calls or copies.
func (g *Graph) CSR() (offsets, adj []int32) {
	return g.offsets, g.adj
}

// NeighborsByID returns the neighbor indices of node i ordered by ascending
// identifier — the order in which per-edge values (predictions, outputs) are
// exchanged with node machines, whose neighbor lists are identifier-sorted.
func (g *Graph) NeighborsByID(i int) []int {
	nbrs := g.Neighbors(i)
	out := make([]int, len(nbrs))
	for j, v := range nbrs {
		out[j] = int(v)
	}
	sort.Slice(out, func(a, b int) bool { return g.ids[out[a]] < g.ids[out[b]] })
	return out
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	t := int32(v)
	lo, hi := 0, len(nb)
	for lo < hi {
		mid := (lo + hi) / 2
		if nb[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nb) && nb[lo] == t
}

// Edges returns the edge list; each undirected edge appears once with
// e[0] < e[1] (indices). The returned slice must not be modified.
func (g *Graph) Edges() [][2]int { return g.edges }

// EdgeIndex returns a map from edge (u<v) to a dense edge id 0..M-1 matching
// the order of Edges.
func (g *Graph) EdgeIndex() map[[2]int]int {
	idx := make(map[[2]int]int, len(g.edges))
	for i, e := range g.edges {
		idx[e] = i
	}
	return idx
}

// Components returns the connected components as slices of node indices,
// each sorted ascending, ordered by smallest contained index.
func (g *Graph) Components() [][]int {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		c := len(comps)
		comp[s] = c
		queue = queue[:0]
		queue = append(queue, int32(s))
		members := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(int(u)) {
				if comp[v] < 0 {
					comp[v] = c
					queue = append(queue, v)
					members = append(members, int(v))
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	return comps
}

// InducedSubgraph returns the subgraph induced by the given node indices,
// preserving identifiers and the identifier domain d. The second return maps
// new indices to old.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	old2new := make(map[int]int, len(nodes))
	newNodes := make([]int, len(nodes))
	copy(newNodes, nodes)
	sort.Ints(newNodes)
	for newIdx, oldIdx := range newNodes {
		old2new[oldIdx] = newIdx
	}
	b := NewBuilder(len(newNodes))
	b.SetDomain(g.d)
	for newIdx, oldIdx := range newNodes {
		b.SetID(newIdx, g.ids[oldIdx])
	}
	for newIdx, oldIdx := range newNodes {
		for _, w := range g.Neighbors(oldIdx) {
			if nw, ok := old2new[int(w)]; ok && nw > newIdx {
				b.AddEdge(newIdx, nw)
			}
		}
	}
	return b.MustBuild(), newNodes
}

// BFS returns distances from src (-1 where unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Diameter returns the largest eccentricity over the graph; it returns -1
// if the graph is disconnected or empty. Runs BFS from every node.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for s := 0; s < g.n; s++ {
		dist := g.BFS(s)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// LineGraph returns the line graph L(G): one node per edge of g, adjacent
// when the edges share an endpoint. Node i of L(G) corresponds to g.Edges()[i]
// and its identifier is i+1.
func (g *Graph) LineGraph() *Graph {
	m := len(g.edges)
	b := NewBuilder(m)
	// Group edge ids by endpoint, then connect all pairs within a group.
	byNode := make([][]int, g.n)
	for i, e := range g.edges {
		byNode[e[0]] = append(byNode[e[0]], i)
		byNode[e[1]] = append(byNode[e[1]], i)
	}
	for _, group := range byNode {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				b.AddEdge(group[i], group[j])
			}
		}
	}
	return b.MustBuild()
}

// DegeneracyOrder returns a node ordering (indices) obtained by repeatedly
// removing a minimum-degree node, together with the degeneracy.
func (g *Graph) DegeneracyOrder() ([]int, int) {
	deg := make([]int, g.n)
	removed := make([]bool, g.n)
	for i := 0; i < g.n; i++ {
		deg[i] = g.Degree(i)
	}
	order := make([]int, 0, g.n)
	degeneracy := 0
	for len(order) < g.n {
		best, bestDeg := -1, g.n+1
		for i := 0; i < g.n; i++ {
			if !removed[i] && deg[i] < bestDeg {
				best, bestDeg = i, deg[i]
			}
		}
		if bestDeg > degeneracy {
			degeneracy = bestDeg
		}
		removed[best] = true
		order = append(order, best)
		for _, v := range g.Neighbors(best) {
			if !removed[v] {
				deg[v]--
			}
		}
	}
	return order, degeneracy
}
