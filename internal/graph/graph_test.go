package graph_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestBuilderValidation(t *testing.T) {
	t.Run("duplicate identifier", func(t *testing.T) {
		b := graph.NewBuilder(2)
		b.SetID(0, 5)
		b.SetID(1, 5)
		if _, err := b.Build(); err == nil {
			t.Error("want error for duplicate identifiers")
		}
	})
	t.Run("non-positive identifier", func(t *testing.T) {
		b := graph.NewBuilder(1)
		b.SetID(0, 0)
		if _, err := b.Build(); err == nil {
			t.Error("want error for identifier 0")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		b := graph.NewBuilder(2)
		b.AddEdge(1, 1)
		if _, err := b.Build(); err == nil {
			t.Error("want error for self loop")
		}
	})
	t.Run("out of range edge", func(t *testing.T) {
		b := graph.NewBuilder(2)
		b.AddEdge(0, 2)
		if _, err := b.Build(); err == nil {
			t.Error("want error for out-of-range endpoint")
		}
	})
	t.Run("duplicate edges coalesce", func(t *testing.T) {
		g := graph.NewBuilder(2).AddEdge(0, 1).AddEdge(1, 0).MustBuild()
		if g.M() != 1 {
			t.Errorf("M = %d, want 1", g.M())
		}
	})
}

func TestAdjacencyConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.GNP(40, 0.2, rng)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.HasEdge(u, int(v)) || !g.HasEdge(int(v), u) {
				t.Fatalf("edge (%d,%d) not symmetric", u, v)
			}
		}
		if g.HasEdge(u, u) {
			t.Fatalf("self loop at %d", u)
		}
	}
	degSum := 0
	for u := 0; u < g.N(); u++ {
		degSum += g.Degree(u)
	}
	if degSum != 2*g.M() {
		t.Errorf("degree sum %d != 2m = %d", degSum, 2*g.M())
	}
	for _, e := range g.Edges() {
		if e[0] >= e[1] {
			t.Errorf("edge %v not normalized", e)
		}
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("edge %v missing from adjacency", e)
		}
	}
}

func TestComponents(t *testing.T) {
	g := graph.DisjointPaths(4, 5)
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	for _, c := range comps {
		if len(c) != 5 {
			t.Errorf("component size %d, want 5", len(c))
		}
	}
	if ring := graph.Ring(9); len(ring.Components()) != 1 {
		t.Error("ring should be one component")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"line10", graph.Line(10), 9},
		{"ring10", graph.Ring(10), 5},
		{"ring11", graph.Ring(11), 5},
		{"clique5", graph.Clique(5), 1},
		{"star7", graph.Star(7), 2},
		{"grid3x4", graph.Grid2D(3, 4), 5},
		{"hcube4", graph.Hypercube(4), 4},
		{"wheel8", graph.WheelFk(8), 4},
		{"wheel64", graph.WheelFk(64), 4},
		{"single", graph.Line(1), 0},
	}
	for _, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Errorf("%s: diameter %d, want %d", c.name, got, c.want)
		}
	}
	if graph.DisjointPaths(2, 3).Diameter() != -1 {
		t.Error("disconnected graph should have diameter -1")
	}
	dist := graph.Line(6).BFS(0)
	for i, d := range dist {
		if d != i {
			t.Errorf("BFS dist[%d] = %d", i, d)
		}
	}
}

func TestWheelStructure(t *testing.T) {
	// Figure 1: hub + k spoke midpoints + k rim nodes; rim induces a cycle.
	for _, k := range []int{4, 8, 16} {
		g := graph.WheelFk(k)
		if g.N() != 2*k+1 {
			t.Fatalf("k=%d: n=%d", k, g.N())
		}
		if g.M() != 3*k {
			t.Fatalf("k=%d: m=%d, want 3k=%d", k, g.M(), 3*k)
		}
		if g.Degree(0) != k {
			t.Errorf("hub degree %d, want %d", g.Degree(0), k)
		}
		rim, _ := g.InducedSubgraph(graph.RimNodes(k))
		if rim.Diameter() != k/2 {
			t.Errorf("rim diameter %d, want %d", rim.Diameter(), k/2)
		}
		for i := 0; i < rim.N(); i++ {
			if rim.Degree(i) != 2 {
				t.Errorf("rim node degree %d, want 2", rim.Degree(i))
			}
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 10, 50, 200} {
		g := graph.RandomTree(n, rng)
		if g.M() != n-1 && n > 0 {
			t.Fatalf("n=%d: m=%d, want %d", n, g.M(), n-1)
		}
		if len(g.Components()) != 1 {
			t.Fatalf("n=%d: not connected", n)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := graph.Grid2D(4, 4)
	nodes := []int{0, 1, 2, 5, 10, 15}
	sub, orig := g.InducedSubgraph(nodes)
	if sub.N() != len(nodes) {
		t.Fatalf("n = %d", sub.N())
	}
	for i := 0; i < sub.N(); i++ {
		if sub.ID(i) != g.ID(orig[i]) {
			t.Errorf("identifier not preserved at %d", i)
		}
		for j := 0; j < sub.N(); j++ {
			if i != j && sub.HasEdge(i, j) != g.HasEdge(orig[i], orig[j]) {
				t.Errorf("edge (%d,%d) mismatch", orig[i], orig[j])
			}
		}
	}
	if sub.D() != g.D() {
		t.Errorf("domain not preserved: %d vs %d", sub.D(), g.D())
	}
}

func TestLineGraph(t *testing.T) {
	// L(P4) = P3; L(K3) = K3; L(star) = clique.
	if lg := graph.Line(4).LineGraph(); lg.N() != 3 || lg.M() != 2 {
		t.Errorf("L(P4): n=%d m=%d, want 3, 2", lg.N(), lg.M())
	}
	if lg := graph.Ring(3).LineGraph(); lg.N() != 3 || lg.M() != 3 {
		t.Errorf("L(C3): n=%d m=%d, want 3, 3", lg.N(), lg.M())
	}
	if lg := graph.Star(5).LineGraph(); lg.M() != 4*3/2 {
		t.Errorf("L(K1,4): m=%d, want 6", lg.M())
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.Line(10), 1},
		{graph.Ring(10), 2},
		{graph.Clique(6), 5},
		{graph.Grid2D(5, 5), 2},
		{graph.Star(9), 1},
	}
	for i, c := range cases {
		order, d := c.g.DegeneracyOrder()
		if d != c.want {
			t.Errorf("case %d: degeneracy %d, want %d", i, d, c.want)
		}
		if len(order) != c.g.N() {
			t.Errorf("case %d: order has %d nodes", i, len(order))
		}
	}
}

func TestShuffleIDsPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Grid2D(5, 5)
	s := graph.ShuffleIDs(g, 100, rng)
	if s.N() != g.N() || s.M() != g.M() || s.D() != 100 {
		t.Fatalf("structure changed: n=%d m=%d d=%d", s.N(), s.M(), s.D())
	}
	seen := map[int]bool{}
	for i := 0; i < s.N(); i++ {
		id := s.ID(i)
		if id < 1 || id > 100 || seen[id] {
			t.Fatalf("bad identifier %d", id)
		}
		seen[id] = true
	}
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if g.HasEdge(u, v) != s.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) changed", u, v)
			}
		}
	}
}

func TestFlipEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Ring(20)
	// Zero flips is the identity.
	same := graph.FlipEdges(g, 0, rand.New(rand.NewSource(1)))
	if same.M() != g.M() {
		t.Errorf("0 flips changed m: %d vs %d", same.M(), g.M())
	}
	// Deterministic for a fixed seed.
	a := graph.FlipEdges(g, 10, rand.New(rand.NewSource(2)))
	b := graph.FlipEdges(g, 10, rand.New(rand.NewSource(2)))
	if a.M() != b.M() {
		t.Errorf("flip not deterministic: %d vs %d", a.M(), b.M())
	}
	// Flips change at most k edges.
	c := graph.FlipEdges(g, 5, rng)
	diff := 0
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if g.HasEdge(u, v) != c.HasEdge(u, v) {
				diff++
			}
		}
	}
	if diff > 5 {
		t.Errorf("%d edges changed, want <= 5", diff)
	}
}

func TestHypercubeAndBipartite(t *testing.T) {
	h := graph.Hypercube(5)
	if h.N() != 32 || h.M() != 32*5/2 {
		t.Errorf("Q5: n=%d m=%d", h.N(), h.M())
	}
	for i := 0; i < h.N(); i++ {
		if h.Degree(i) != 5 {
			t.Errorf("Q5 degree %d", h.Degree(i))
		}
	}
	kb := graph.CompleteBipartite(3, 4)
	if kb.N() != 7 || kb.M() != 12 {
		t.Errorf("K3,4: n=%d m=%d", kb.N(), kb.M())
	}
}

// TestQuickInducedSubgraphComponents property-checks that the component
// decomposition of random induced subgraphs partitions exactly the selected
// nodes and that every cross-component pair is non-adjacent.
func TestQuickInducedSubgraphComponents(t *testing.T) {
	f := func(seed int64, rawN uint8, pick uint16) bool {
		n := int(rawN%30) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.15, rng)
		var nodes []int
		for i := 0; i < n; i++ {
			if pick&(1<<(uint(i)%16)) != 0 || rng.Intn(2) == 0 {
				nodes = append(nodes, i)
			}
		}
		sub, _ := g.InducedSubgraph(nodes)
		comps := sub.Components()
		seen := map[int]int{}
		total := 0
		for ci, comp := range comps {
			total += len(comp)
			for _, v := range comp {
				if _, dup := seen[v]; dup {
					return false
				}
				seen[v] = ci
			}
		}
		if total != sub.N() {
			return false
		}
		for u := 0; u < sub.N(); u++ {
			for _, v := range sub.Neighbors(u) {
				if seen[u] != seen[int(v)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickLineGraphDegrees property-checks the line-graph degree identity
// deg_{L(G)}(uv) = deg(u) + deg(v) - 2.
func TestQuickLineGraphDegrees(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		lg := g.LineGraph()
		for e, ends := range g.Edges() {
			want := g.Degree(ends[0]) + g.Degree(ends[1]) - 2
			if lg.Degree(e) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, m := range []int{1, 2, 3} {
		g := graph.BarabasiAlbert(100, m, rng)
		if g.N() != 100 {
			t.Fatalf("m=%d: n=%d", m, g.N())
		}
		if len(g.Components()) != 1 {
			t.Errorf("m=%d: not connected", m)
		}
		// Each arriving node contributes m edges (seed clique aside).
		wantMin := (100-m-1)*m + m*(m+1)/2 - 10 // attachment may dedup rarely
		if g.M() < wantMin/2 {
			t.Errorf("m=%d: m(edges)=%d suspiciously low", m, g.M())
		}
		// Heavy tail: some node far exceeds the mean degree.
		mean := 2 * g.M() / g.N()
		if g.MaxDegree() < 2*mean {
			t.Errorf("m=%d: max degree %d not heavy-tailed (mean %d)", m, g.MaxDegree(), mean)
		}
	}
}

func TestDisjointUnion(t *testing.T) {
	a := graph.Ring(5)
	b := graph.Star(4)
	u := graph.DisjointUnion(a, b)
	if u.N() != 9 || u.M() != a.M()+b.M() {
		t.Fatalf("n=%d m=%d", u.N(), u.M())
	}
	if len(u.Components()) != 2 {
		t.Errorf("components = %d", len(u.Components()))
	}
	seen := map[int]bool{}
	for i := 0; i < u.N(); i++ {
		if seen[u.ID(i)] {
			t.Fatalf("duplicate identifier %d", u.ID(i))
		}
		seen[u.ID(i)] = true
	}
}

func TestSmallHelpers(t *testing.T) {
	g := graph.LineWithIDs([]int{5, 2, 9})
	if g.ID(0) != 5 || g.ID(1) != 2 || g.ID(2) != 9 {
		t.Fatalf("ids: %v %v %v", g.ID(0), g.ID(1), g.ID(2))
	}
	if got := g.IDs(); len(got) != 3 || got[1] != 2 {
		t.Errorf("IDs() = %v", got)
	}
	if g.IndexOfID(9) != 2 || g.IndexOfID(100) != -1 {
		t.Error("IndexOfID wrong")
	}
	// Node index 1 (id 2) has neighbors with ids 5 (index 0) and 9 (index 2):
	// identifier-sorted order is [0, 2].
	nbrs := g.NeighborsByID(1)
	if len(nbrs) != 2 || nbrs[0] != 0 || nbrs[1] != 2 {
		t.Errorf("NeighborsByID = %v", nbrs)
	}
	idx := g.EdgeIndex()
	if len(idx) != 2 || idx[[2]int{0, 1}] == idx[[2]int{1, 2}] {
		t.Errorf("EdgeIndex = %v", idx)
	}
	cat := graph.Caterpillar(4, 2)
	if cat.N() != 4+8 || cat.M() != 3+8 {
		t.Errorf("caterpillar: n=%d m=%d", cat.N(), cat.M())
	}
}
