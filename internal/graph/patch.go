package graph

import (
	"fmt"
	"sort"
)

// Patch is an edge-set delta for ApplyPatch: the dynamic-session layer's
// unit of graph change. Node set, identifiers, and identifier domain are
// fixed for the life of a session; only edges move.
type Patch struct {
	// Insert lists edges to add (node-index pairs, either orientation).
	Insert [][2]int
	// Delete lists edges to remove.
	Delete [][2]int
}

// normalizePairs orients each pair u < v, sorts, and coalesces duplicates,
// validating ranges. It copies its input: callers' slices are not disturbed.
func normalizePairs(n int, pairs [][2]int) ([][2]int, error) {
	out := make([][2]int, 0, len(pairs))
	for _, e := range pairs {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self-loop at node %d", e[0])
		}
		if e[0] < 0 || e[1] >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e[0], e[1], n)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	w := 0
	for i, e := range out {
		if i > 0 && e == out[w-1] {
			continue
		}
		out[w] = e
		w++
	}
	return out[:w], nil
}

// edgeLess orders canonical (u < v) edges lexicographically.
func edgeLess(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// ApplyPatch returns a new graph with the patch applied, together with the
// sorted list of node indices whose adjacency actually changed (the damaged
// region a healing run must inspect). The receiver is not modified.
//
// Semantics are idempotent so that duplicated or replayed update batches
// converge: inserting an edge that already exists and deleting an edge that
// does not are no-ops (and contribute no changed nodes). An edge listed in
// both Insert and Delete is rejected as a malformed patch, as are self-loops
// and out-of-range endpoints.
//
// The rebuild is a single merge over the sorted edge list — O(m + k log k)
// for k patch entries — not a Builder round trip; identifiers and the
// identifier domain carry over unchanged.
func (g *Graph) ApplyPatch(p Patch) (*Graph, []int, error) {
	ins, err := normalizePairs(g.n, p.Insert)
	if err != nil {
		return nil, nil, err
	}
	del, err := normalizePairs(g.n, p.Delete)
	if err != nil {
		return nil, nil, err
	}
	// Reject contradictory patches before touching anything: both lists are
	// sorted, so one linear scan finds a common edge.
	for i, j := 0, 0; i < len(ins) && j < len(del); {
		switch {
		case ins[i] == del[j]:
			return nil, nil, fmt.Errorf("graph: edge (%d,%d) in both Insert and Delete", ins[i][0], ins[i][1])
		case edgeLess(ins[i], del[j]):
			i++
		default:
			j++
		}
	}

	// Merge the existing sorted edge list with the inserts, minus the
	// deletes, recording which endpoints actually changed.
	merged := make([][2]int, 0, len(g.edges)+len(ins))
	changedSet := make(map[int]struct{})
	touch := func(e [2]int) {
		changedSet[e[0]] = struct{}{}
		changedSet[e[1]] = struct{}{}
	}
	i, j, k := 0, 0, 0 // g.edges, ins, del cursors
	for i < len(g.edges) || j < len(ins) {
		// Existing edge first when it sorts lower (or the insert duplicates it).
		if j >= len(ins) || (i < len(g.edges) && !edgeLess(ins[j], g.edges[i])) {
			e := g.edges[i]
			i++
			if j < len(ins) && ins[j] == e {
				j++ // insert of an existing edge: no-op
			}
			for k < len(del) && edgeLess(del[k], e) {
				k++ // delete of an absent edge: no-op
			}
			if k < len(del) && del[k] == e {
				k++
				touch(e) // actually deleted
				continue
			}
			merged = append(merged, e)
			continue
		}
		e := ins[j]
		j++
		merged = append(merged, e)
		touch(e) // actually inserted
	}

	changed := make([]int, 0, len(changedSet))
	for v := range changedSet {
		changed = append(changed, v)
	}
	sort.Ints(changed)

	// Rebuild CSR by counting sort; merged is already edge-sorted, so every
	// adjacency range comes out ascending (same argument as FromEdges).
	deg := make([]int32, g.n)
	for _, e := range merged {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, g.n+1)
	for v := 0; v < g.n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]int32, offsets[g.n])
	fill := deg // reuse: overwritten below as the insertion cursor
	copy(fill, offsets[:g.n])
	for _, e := range merged {
		u, v := int32(e[0]), int32(e[1])
		adj[fill[u]] = v
		fill[u]++
		adj[fill[v]] = u
		fill[v]++
	}
	return &Graph{
		n:       g.n,
		d:       g.d,
		ids:     g.ids, // both graphs are immutable; sharing is safe
		offsets: offsets,
		adj:     adj,
		edges:   merged,
	}, changed, nil
}
