package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// rebuildWith reconstructs the patched graph through the Builder — the slow
// reference ApplyPatch must match exactly.
func rebuildWith(t *testing.T, g *Graph, p Patch) *Graph {
	t.Helper()
	have := make(map[[2]int]bool, g.M())
	for _, e := range g.Edges() {
		have[e] = true
	}
	norm := func(e [2]int) [2]int {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		return e
	}
	for _, e := range p.Insert {
		have[norm(e)] = true
	}
	for _, e := range p.Delete {
		delete(have, norm(e))
	}
	b := NewBuilder(g.N())
	b.SetDomain(g.D())
	for i := 0; i < g.N(); i++ {
		b.SetID(i, g.ID(i))
	}
	for e := range have {
		b.AddEdge(e[0], e[1])
	}
	built, err := b.Build()
	if err != nil {
		t.Fatalf("reference rebuild: %v", err)
	}
	return built
}

func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() || got.D() != want.D() {
		t.Fatalf("shape differs: got n=%d m=%d d=%d, want n=%d m=%d d=%d",
			got.N(), got.M(), got.D(), want.N(), want.M(), want.D())
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatalf("edge lists differ:\ngot  %v\nwant %v", got.Edges(), want.Edges())
	}
	for v := 0; v < got.N(); v++ {
		if got.ID(v) != want.ID(v) {
			t.Fatalf("node %d: id %d vs %d", v, got.ID(v), want.ID(v))
		}
		if !reflect.DeepEqual(got.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("node %d: neighbors %v vs %v", v, got.Neighbors(v), want.Neighbors(v))
		}
	}
}

func TestApplyPatchBasic(t *testing.T) {
	g := Ring(6) // edges (0,1)..(4,5),(0,5)
	ng, changed, err := g.ApplyPatch(Patch{
		Insert: [][2]int{{2, 0}, {3, 5}}, // unoriented input accepted
		Delete: [][2]int{{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, ng, rebuildWith(t, g, Patch{Insert: [][2]int{{0, 2}, {3, 5}}, Delete: [][2]int{{1, 2}}}))
	if want := []int{0, 1, 2, 3, 5}; !reflect.DeepEqual(changed, want) {
		t.Fatalf("changed = %v, want %v", changed, want)
	}
	// The receiver is untouched.
	if g.M() != 6 || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatalf("ApplyPatch mutated its receiver: %v", g.Edges())
	}
}

func TestApplyPatchIdempotent(t *testing.T) {
	g := Line(5)
	p := Patch{
		Insert: [][2]int{{0, 1}, {0, 4}, {0, 4}}, // existing edge + duplicate listing
		Delete: [][2]int{{2, 4}},                 // absent edge
	}
	ng, changed, err := g.ApplyPatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 4}; !reflect.DeepEqual(changed, want) {
		t.Fatalf("changed = %v, want %v (no-ops must not count)", changed, want)
	}
	sameGraph(t, ng, rebuildWith(t, g, p))
	// Applying the same patch again changes nothing.
	again, changed2, err := ng.ApplyPatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed2) != 0 {
		t.Fatalf("second application changed %v, want nothing", changed2)
	}
	sameGraph(t, again, ng)
}

func TestApplyPatchRejectsMalformed(t *testing.T) {
	g := Ring(4)
	cases := []Patch{
		{Insert: [][2]int{{1, 1}}},                           // self-loop
		{Delete: [][2]int{{0, 9}}},                           // out of range
		{Insert: [][2]int{{-1, 2}}},                          // negative index
		{Insert: [][2]int{{1, 3}}, Delete: [][2]int{{3, 1}}}, // contradictory
	}
	for i, p := range cases {
		if _, _, err := g.ApplyPatch(p); err == nil {
			t.Errorf("case %d: malformed patch accepted", i)
		}
	}
}

func TestApplyPatchPreservesIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ShuffleIDs(GNP(40, 0.1, rng), 200, rng)
	ng, _, err := g.ApplyPatch(Patch{Insert: [][2]int{{0, 1}}, Delete: [][2]int{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if ng.D() != g.D() {
		t.Fatalf("domain changed: %d vs %d", ng.D(), g.D())
	}
	for v := 0; v < g.N(); v++ {
		if ng.ID(v) != g.ID(v) {
			t.Fatalf("node %d: id changed %d -> %d", v, g.ID(v), ng.ID(v))
		}
	}
}

func TestApplyPatchRandomizedAgainstBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := GNP(30, 0.12, rng)
	for trial := 0; trial < 60; trial++ {
		var p Patch
		for i := 0; i < 1+rng.Intn(6); i++ {
			u, v := rng.Intn(30), rng.Intn(30)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				p.Insert = append(p.Insert, [2]int{u, v})
			} else {
				p.Delete = append(p.Delete, [2]int{u, v})
			}
		}
		// Contradictory entries are rejected by design; skip those draws.
		ng, changed, err := g.ApplyPatch(p)
		if err != nil {
			continue
		}
		sameGraph(t, ng, rebuildWith(t, g, p))
		for _, v := range changed {
			if v < 0 || v >= g.N() {
				t.Fatalf("changed node %d out of range", v)
			}
		}
		g = ng
	}
}
