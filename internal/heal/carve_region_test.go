package heal_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/mis"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// fixedOutputMachine terminates in round one with a preassigned output,
// letting a test feed RunRecovered an exactly-chosen damaged vector.
type fixedOutputMachine struct{ value int }

func (m *fixedOutputMachine) Send(env *runtime.Env) []runtime.Out {
	env.Output(m.value)
	env.Terminate()
	return nil
}

func (m *fixedOutputMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {}

// TestHealReactivatesExactlyCarvedRegion pins the carve/heal frontier
// contract: the healing run re-solves exactly the carved residual and
// nothing else. Every node the carve kept decided must reach the healed
// output with its carved value intact (the Simple Template's initialization
// keeps decided predictions), every residual node must end decided, and the
// trace's EvCarve event must agree with the independently computed residual
// and demotion counts.
func TestHealReactivatesExactlyCarvedRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := graph.GNP(40, 0.15, rng)
	n := g.N()

	// Start from a valid MIS, then damage a deterministic block of nodes
	// with an out-of-range value so the carve demotes (at least) them.
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: mis.SimpleGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	damaged := make([]int, n)
	for i, o := range res.Outputs {
		damaged[i] = o.(int)
	}
	if err := verify.MIS(g, damaged); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		damaged[i] = -7
	}

	// Independent ground truth for what the carve should decide.
	partial, residual := heal.CarveMIS(g, damaged)
	if len(residual) == 0 {
		t.Fatal("damage carved away nothing; the test exercises no residual")
	}
	demoted := 0
	for i := 0; i < n; i++ {
		if damaged[i] != verify.Undecided && partial[i] == verify.Undecided {
			demoted++
		}
	}

	rec := obs.NewRecorder(0)
	report, err := heal.RunRecovered(runtime.Config{
		Graph: g,
		Factory: func(info runtime.NodeInfo, pred any) runtime.Machine {
			return &fixedOutputMachine{value: damaged[info.Index]}
		},
		Trace: rec,
	}, misSpec())
	if err != nil {
		t.Fatal(err)
	}
	if report.Valid {
		t.Fatal("damaged vector verified as valid")
	}
	if !report.Healed {
		t.Fatalf("damage not healed: %+v", report)
	}
	if report.Residual != len(residual) {
		t.Fatalf("report residual %d, want %d", report.Residual, len(residual))
	}

	// Carve-decided nodes keep their carved values: the healing run
	// re-activated only the residual region.
	inResidual := make(map[int]bool, len(residual))
	for _, v := range residual {
		inResidual[v] = true
	}
	for i := 0; i < n; i++ {
		if inResidual[i] {
			if report.Output[i] == verify.Undecided {
				t.Fatalf("residual node %d left undecided by the heal", i)
			}
			continue
		}
		if report.Output[i] != partial[i] {
			t.Fatalf("carve-decided node %d changed: carved %d, healed %d", i, partial[i], report.Output[i])
		}
	}
	if err := verify.MIS(g, report.Output); err != nil {
		t.Fatalf("healed output invalid: %v", err)
	}

	// The trace agrees: one EvCarve with the residual and demotion counts,
	// and within the recovery phase every carve-decided node commits its
	// carved value (EvOutput), never a fresh one.
	carves := 0
	recovery := false
	for _, e := range rec.Events() {
		switch e.Type {
		case obs.EvCarve:
			carves++
			if e.Value != int64(len(residual)) || e.Aux != int64(demoted) {
				t.Fatalf("carve event Value=%d Aux=%d, want %d/%d", e.Value, e.Aux, len(residual), demoted)
			}
		case obs.EvPhase:
			recovery = e.Name == "recovery"
		case obs.EvOutput:
			if !recovery {
				continue
			}
			idx := g.IndexOfID(e.Node)
			if idx < 0 {
				t.Fatalf("output event for unknown id %d", e.Node)
			}
			if !inResidual[idx] && e.Value != int64(partial[idx]) {
				t.Fatalf("recovery re-decided carve-decided node %d: carved %d, committed %d",
					idx, partial[idx], e.Value)
			}
		}
	}
	if carves != 1 {
		t.Fatalf("saw %d carve events, want 1", carves)
	}
}
