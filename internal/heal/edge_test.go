package heal_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/mis"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// TestCarveSingleNode: every carve handles the degenerate one-node graph —
// no neighbors to conflict with, but justification rules still apply.
func TestCarveSingleNode(t *testing.T) {
	g := graph.NewBuilder(1).MustBuild()
	t.Run("mis", func(t *testing.T) {
		// An isolated in-set node stands.
		partial, residual := heal.CarveMIS(g, []int{1})
		if partial[0] != 1 || len(residual) != 0 {
			t.Fatalf("valid singleton MIS carved to %v / %v", partial, residual)
		}
		// An isolated out-of-set node has no in-set neighbor: unjustified.
		partial, residual = heal.CarveMIS(g, []int{0})
		if partial[0] != verify.Undecided || len(residual) != 1 {
			t.Fatalf("unjustified 0 survived: %v / %v", partial, residual)
		}
	})
	t.Run("matching", func(t *testing.T) {
		// Decided-unmatched with no neighbors is maximal.
		partial, residual := heal.CarveMatching(g, []int{0})
		if partial[0] != 0 || len(residual) != 0 {
			t.Fatalf("isolated unmatched carved to %v / %v", partial, residual)
		}
		// A partner identifier with no such neighbor is invalid.
		partial, _ = heal.CarveMatching(g, []int{7})
		if partial[0] != 0 {
			// The clean-up closes it back to unmatched (all zero neighbors
			// are matched, vacuously).
			t.Fatalf("invalid partner carved to %v", partial)
		}
	})
	t.Run("vcolor", func(t *testing.T) {
		// Palette is Δ+1 = 1: color 1 stands, color 2 is out of palette.
		partial, residual := heal.CarveVColor(g, []int{1})
		if partial[0] != 1 || len(residual) != 0 {
			t.Fatalf("valid singleton color carved to %v / %v", partial, residual)
		}
		partial, residual = heal.CarveVColor(g, []int{2})
		if partial[0] != verify.Undecided || len(residual) != 1 {
			t.Fatalf("out-of-palette color survived: %v / %v", partial, residual)
		}
	})
}

// TestCarveEmptyPartial: a fully damaged vector carves to the empty partial
// solution — everything undecided, which is trivially extendable — and the
// residual is the whole graph.
func TestCarveEmptyPartial(t *testing.T) {
	g := graph.Clique(8)
	damaged := make([]int, g.N())
	for i := range damaged {
		damaged[i] = verify.Undecided
	}
	for _, carve := range []struct {
		name string
		fn   func(*graph.Graph, []int) ([]int, []int)
		chk  func(*graph.Graph, []int) error
	}{
		{"mis", heal.CarveMIS, verify.MISPartialExtendable},
		{"matching", heal.CarveMatching, verify.MatchingPartialExtendable},
		{"vcolor", heal.CarveVColor, func(g *graph.Graph, out []int) error {
			return verify.VColorPartial(g, out, g.MaxDegree()+1)
		}},
	} {
		t.Run(carve.name, func(t *testing.T) {
			partial, residual := carve.fn(g, damaged)
			if len(residual) != g.N() {
				t.Fatalf("residual %d, want all %d nodes", len(residual), g.N())
			}
			for v, pv := range partial {
				if pv != verify.Undecided {
					t.Fatalf("node %d decided as %d from pure damage", v, pv)
				}
			}
			if err := carve.chk(g, partial); err != nil {
				t.Fatalf("empty partial not accepted: %v", err)
			}
		})
	}
}

// TestCarveShortVector: vectors shorter than the graph (a run aborted
// before every node reported) are padded with undecided, not misread.
func TestCarveShortVector(t *testing.T) {
	g := graph.Line(5)
	partial, residual := heal.CarveMIS(g, []int{1, 0})
	if len(partial) != g.N() {
		t.Fatalf("partial has %d entries, want %d", len(partial), g.N())
	}
	if partial[0] != 1 || partial[1] != 0 {
		t.Fatalf("prefix not preserved: %v", partial)
	}
	if len(residual) != 3 {
		t.Fatalf("residual %v, want the 3 unreported nodes", residual)
	}
}

// TestRunRecoveredSingleNode: the recovery pipeline works end to end on a
// one-node graph, both clean and with the node crashed at round 1 (an empty
// partial solution: the healing run re-solves from scratch).
func TestRunRecoveredSingleNode(t *testing.T) {
	g := graph.NewBuilder(1).MustBuild()
	report, err := heal.RunRecovered(runtime.Config{
		Graph:   g,
		Factory: mis.SimpleGreedy(),
	}, misSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Valid || report.Output[0] != 1 {
		t.Fatalf("clean single-node run not valid: %+v", report)
	}

	report, err = heal.RunRecovered(runtime.Config{
		Graph:   g,
		Factory: mis.SimpleGreedy(),
		Crashes: map[int]int{0: 1},
	}, misSpec())
	if err != nil {
		t.Fatal(err)
	}
	if report.Valid {
		t.Fatalf("crashed run reported valid: %+v", report)
	}
	if !report.Healed || report.Residual != 1 {
		t.Fatalf("crash not healed from empty partial: %+v", report)
	}
	if err := verify.MIS(g, report.Output); err != nil {
		t.Fatalf("healed output invalid: %v", err)
	}
}
