package heal_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/verify"
)

// FuzzCarve drives the three carving functions with arbitrary damage: for
// any topology (single node included) and any output vector — wrong length,
// out-of-range values, arbitrary garbage — the carved result must be an
// extendable partial solution whose residual matches its undecided set.
//
// shape packs the topology parameters; data supplies the damaged entries.
func FuzzCarve(f *testing.F) {
	f.Add(int64(5), uint64(12|30<<8), []byte{0, 1, 255, 120, 119, 121, 7})
	f.Add(int64(1), uint64(0), []byte{})                  // single node, all undecided
	f.Add(int64(77), uint64(39|95<<8|1<<16), []byte{121}) // dense, truncated vector
	f.Fuzz(func(t *testing.T, seed int64, shape uint64, data []byte) {
		n := 1 + int(shape%40)
		p := float64((shape>>8)%100) / 100
		g := graph.GNP(n, p, rand.New(rand.NewSource(seed)))
		// The damaged vector may be shorter than the graph: carving treats
		// missing entries as undecided.
		vlen := n
		if (shape>>16)&1 == 1 {
			vlen = n / 2
		}
		damaged := make([]int, vlen)
		for i := range damaged {
			b := 0
			if len(data) > 0 {
				b = int(data[i%len(data)])
			}
			damaged[i] = b - 120 // wide range: negatives, Undecided, valid, huge
		}
		partial, residual := heal.CarveMIS(g, damaged)
		if err := verify.MISPartialExtendable(g, partial); err != nil {
			t.Fatalf("carved MIS not extendable: %v\ndamaged: %v\npartial: %v", err, damaged, partial)
		}
		checkResidual(t, partial, residual)

		partial, residual = heal.CarveMatching(g, damaged)
		if err := verify.MatchingPartialExtendable(g, partial); err != nil {
			t.Fatalf("carved matching not extendable: %v\ndamaged: %v\npartial: %v", err, damaged, partial)
		}
		checkResidual(t, partial, residual)

		partial, residual = heal.CarveVColor(g, damaged)
		if err := verify.VColorPartial(g, partial, g.MaxDegree()+1); err != nil {
			t.Fatalf("carved coloring not proper: %v\ndamaged: %v\npartial: %v", err, damaged, partial)
		}
		checkResidual(t, partial, residual)
	})
}
