// Package heal turns a faulted run's outputs back into a valid solution.
//
// A run under chaos (message loss, corruption, crashes, contained panics)
// leaves behind a possibly-invalid, possibly-incomplete output vector. The
// carving functions demote every output that cannot stand — invalid values,
// conflicting pairs, decisions whose justification is gone — to
// verify.Undecided, yielding an extendable partial solution in the paper's
// Section 3 sense: some maximal/proper solution of the whole graph contains
// it. RunRecovered then replays the paper's machinery on that partial
// solution: the carved outputs are handed to the problem's Simple Template
// as predictions, whose initialization (Section 4) keeps every decided node
// — the one-round clean-up finds nothing to repair on an extendable partial
// solution — and whose measure-uniform part extends the residual, so the
// recovery cost is the degradation metric: rounds proportional to the
// damage, not to the graph.
package heal

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// CarveMIS reduces a damaged MIS output vector (entries outside {0, 1} mean
// undecided) to an extendable partial MIS: conflicting 1–1 pairs are
// demoted, undecided neighbors of surviving in-set nodes are closed to 0
// (the Section 4 clean-up rule, applied centrally), and 0s with no in-set
// neighbor are demoted. The result passes verify.MISPartialExtendable; the
// returned residual lists the node indices left undecided.
func CarveMIS(g *graph.Graph, out []int) (partial []int, residual []int) {
	n := g.N()
	partial = make([]int, n)
	for v := 0; v < n; v++ {
		partial[v] = verify.Undecided
		if v < len(out) && (out[v] == 0 || out[v] == 1) {
			partial[v] = out[v]
		}
	}
	// Demote both endpoints of every in-set conflict.
	var demote []int
	for v := 0; v < n; v++ {
		if partial[v] != 1 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if partial[u] == 1 {
				demote = append(demote, v, int(u))
			}
		}
	}
	for _, v := range demote {
		partial[v] = verify.Undecided
	}
	// Clean-up: undecided neighbors of surviving in-set nodes are out.
	for v := 0; v < n; v++ {
		if partial[v] != 1 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if partial[u] == verify.Undecided {
				partial[u] = 0
			}
		}
	}
	// A 0 with no surviving in-set neighbor has lost its justification.
	for v := 0; v < n; v++ {
		if partial[v] != 0 {
			continue
		}
		justified := false
		for _, u := range g.Neighbors(v) {
			if partial[u] == 1 {
				justified = true
				break
			}
		}
		if !justified {
			partial[v] = verify.Undecided
		}
	}
	return partial, residualOf(partial)
}

// CarveMatching reduces a damaged matching output vector (partner
// identifier per node, 0 for decided-unmatched, anything else invalid) to
// an extendable partial matching: non-mutual or non-neighbor matches are
// demoted, undecided nodes whose neighbors are all matched are closed to
// unmatched (the clean-up rule), and unmatched decisions with a
// not-yet-matched neighbor are demoted. Passes
// verify.MatchingPartialExtendable.
func CarveMatching(g *graph.Graph, out []int) (partial []int, residual []int) {
	n := g.N()
	partial = make([]int, n)
	for v := 0; v < n; v++ {
		partial[v] = verify.Undecided
		if v >= len(out) {
			continue
		}
		switch {
		case out[v] == 0:
			partial[v] = 0
		case out[v] > 0:
			u := g.IndexOfID(out[v])
			if u >= 0 && g.HasEdge(v, u) && u < len(out) && out[u] == g.ID(v) {
				partial[v] = out[v]
			}
		}
	}
	// Clean-up: an undecided node whose neighbors are all matched can only
	// ever be unmatched.
	for v := 0; v < n; v++ {
		if partial[v] != verify.Undecided {
			continue
		}
		all := true
		for _, u := range g.Neighbors(v) {
			if partial[u] <= 0 {
				all = false
				break
			}
		}
		if all {
			partial[v] = 0
		}
	}
	// A decided-unmatched node next to an unmatched or undecided neighbor
	// may yet be needed for maximality: demote it.
	for v := 0; v < n; v++ {
		if partial[v] != 0 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if partial[u] <= 0 {
				partial[v] = verify.Undecided
				break
			}
		}
	}
	return partial, residualOf(partial)
}

// CarveVColor reduces a damaged (Δ+1)-coloring output vector to a proper
// partial coloring: out-of-palette values and both endpoints of every
// monochromatic edge are demoted. Passes verify.VColorPartial (every proper
// partial (Δ+1)-coloring is extendable).
func CarveVColor(g *graph.Graph, out []int) (partial []int, residual []int) {
	n := g.N()
	palette := g.MaxDegree() + 1
	partial = make([]int, n)
	for v := 0; v < n; v++ {
		partial[v] = verify.Undecided
		if v < len(out) && out[v] >= 1 && out[v] <= palette {
			partial[v] = out[v]
		}
	}
	var demote []int
	for v := 0; v < n; v++ {
		if partial[v] == verify.Undecided {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if int(u) > v && partial[u] == partial[v] {
				demote = append(demote, v, int(u))
			}
		}
	}
	for _, v := range demote {
		partial[v] = verify.Undecided
	}
	return partial, residualOf(partial)
}

func residualOf(partial []int) []int {
	var res []int
	for v, p := range partial {
		if p == verify.Undecided {
			res = append(res, v)
		}
	}
	return res
}

// Spec describes one problem's recovery machinery for RunRecovered.
type Spec struct {
	// Verify accepts a complete output vector iff it is a valid solution.
	Verify func(g *graph.Graph, out []int) error
	// Carve reduces a damaged output vector to an extendable partial
	// solution plus the residual (undecided node indices).
	Carve func(g *graph.Graph, out []int) (partial, residual []int)
	// HealFactory is the problem's Simple Template: fed the carved partial
	// solution as predictions, its initialization keeps every decided node
	// and its measure-uniform part extends the residual.
	HealFactory runtime.Factory
	// UndecidedPred is the prediction value standing in for an undecided
	// node in the healing run (the problem's "no prediction" value).
	UndecidedPred int
	// HealMaxRounds caps the healing run (0 = engine default).
	HealMaxRounds int
}

// Report is the outcome of RunRecovered.
type Report struct {
	// PrimaryErr is the primary run's error, if it aborted (contained
	// panic, round deadline, no termination, protocol violation). The
	// recovery then proceeds from the last observed outputs.
	PrimaryErr error
	// PrimaryRounds is the last round the primary run executed; equal to
	// the primary Result's Rounds when it completed.
	PrimaryRounds int
	// PrimaryMessages counts the primary run's delivered messages.
	PrimaryMessages int
	// Valid reports whether the primary outputs already verified; no
	// healing runs in that case.
	Valid bool
	// Healed reports that a healing run executed and its output verified.
	Healed bool
	// Residual is the number of undecided nodes after carving — the size of
	// the re-solved subproblem.
	Residual int
	// RecoveryRounds and RecoveryMessages are the healing run's cost — the
	// degradation metric (0 when Valid).
	RecoveryRounds   int
	RecoveryMessages int
	// Output is the final, verified output vector.
	Output []int
}

// TotalRounds is the end-to-end degradation metric: primary rounds plus
// recovery rounds.
func (r *Report) TotalRounds() int { return r.PrimaryRounds + r.RecoveryRounds }

// RunRecovered executes cfg, validates its outputs with spec.Verify, and on
// any damage — an invalid solution, or an aborted run — carves the last
// observed outputs into an extendable partial solution and re-runs the
// problem's Simple Template over it to heal. Crashed nodes are treated as
// recovered in the healing run (chaos is transient): the healed solution
// covers the whole graph. Config errors (a run that never started) are
// returned as-is; a healing run that itself fails or produces an invalid
// solution is an error.
func RunRecovered(cfg runtime.Config, spec Spec) (*Report, error) {
	g := cfg.Graph
	if g == nil {
		return nil, fmt.Errorf("%w: heal: Config.Graph is required", runtime.ErrConfig)
	}
	n := g.N()
	snapshot := make([]any, n)
	lastRound := 0
	chain := cfg.Observer
	cfg.Observer = func(round int, outputs []any, active []bool) {
		lastRound = round
		for i := range outputs {
			// Record only settled outputs: a still-active node's partial
			// output may yet change.
			if active[i] {
				snapshot[i] = nil
			} else {
				snapshot[i] = outputs[i]
			}
		}
		if chain != nil {
			chain(round, outputs, active)
		}
	}
	tr := cfg.Trace
	if tr != nil {
		tr.Emit(obs.Event{Type: obs.EvPhase, Name: "primary"})
	}
	res, err := runtime.Run(cfg)
	if err != nil && errors.Is(err, runtime.ErrConfig) {
		// The run never started: misconfiguration, not damage.
		return nil, err
	}
	report := &Report{PrimaryErr: err, PrimaryRounds: lastRound}
	raw := snapshot
	if err == nil {
		raw = res.Outputs
		report.PrimaryRounds = res.Rounds
		report.PrimaryMessages = res.Messages
	}
	outs := make([]int, n)
	for i := 0; i < n; i++ {
		outs[i] = verify.Undecided
		if v, ok := raw[i].(int); ok {
			outs[i] = v
		}
	}
	if err == nil && spec.Verify(g, outs) == nil {
		report.Valid = true
		report.Output = outs
		if tr != nil {
			tr.Emit(obs.Event{Type: obs.EvPhase, Name: "valid"})
		}
		return report, nil
	}
	partial, residual := spec.Carve(g, outs)
	report.Residual = len(residual)
	if tr != nil {
		// Carve stats: Value = residual (nodes left undecided), Aux = how
		// many previously decided outputs the carve demoted.
		demoted := 0
		for i := 0; i < n; i++ {
			if outs[i] != verify.Undecided && partial[i] == verify.Undecided {
				demoted++
			}
		}
		tr.Emit(obs.Event{Type: obs.EvCarve, Value: int64(len(residual)), Aux: int64(demoted)})
		tr.Emit(obs.Event{Type: obs.EvPhase, Name: "recovery"})
	}
	preds := make([]any, n)
	for i, p := range partial {
		if p == verify.Undecided {
			preds[i] = spec.UndecidedPred
		} else {
			preds[i] = p
		}
	}
	healRes, healErr := runtime.Run(runtime.Config{
		Graph:       g,
		Factory:     spec.HealFactory,
		Predictions: preds,
		Parallel:    cfg.Parallel,
		Shards:      cfg.Shards,
		Partition:   cfg.Partition,
		MaxRounds:   spec.HealMaxRounds,
		Trace:       tr,
	})
	if healErr != nil {
		return nil, fmt.Errorf("heal: recovery run failed: %w", healErr)
	}
	healed := make([]int, n)
	for i := 0; i < n; i++ {
		healed[i] = verify.Undecided
		if v, ok := healRes.Outputs[i].(int); ok {
			healed[i] = v
		}
	}
	if verr := spec.Verify(g, healed); verr != nil {
		return nil, fmt.Errorf("heal: recovery produced an invalid solution: %w", verr)
	}
	report.Healed = true
	report.RecoveryRounds = healRes.Rounds
	report.RecoveryMessages = healRes.Messages
	report.Output = healed
	if tr != nil {
		tr.Emit(obs.Event{Type: obs.EvPhase, Name: "healed"})
	}
	return report, nil
}
