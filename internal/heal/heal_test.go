package heal_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
	"repro/internal/vcolor"
	"repro/internal/verify"
)

// TestCarveFuzz: carving arbitrarily damaged output vectors always yields
// an extendable partial solution, and carving a valid solution is the
// identity with an empty residual.
func TestCarveFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(40)
		g := graph.GNP(n, 0.05+rng.Float64()*0.4, rng)
		damaged := make([]int, n)
		t.Run("mis", func(t *testing.T) {
			for i := range damaged {
				damaged[i] = rng.Intn(5) - 2 // {-2..2}: invalid, undecided, valid
			}
			partial, residual := heal.CarveMIS(g, damaged)
			if err := verify.MISPartialExtendable(g, partial); err != nil {
				t.Fatalf("carved MIS not extendable: %v\ndamaged: %v\npartial: %v", err, damaged, partial)
			}
			checkResidual(t, partial, residual)
		})
		t.Run("matching", func(t *testing.T) {
			for i := range damaged {
				switch rng.Intn(4) {
				case 0:
					damaged[i] = 0
				case 1:
					damaged[i] = verify.Undecided
				case 2:
					damaged[i] = 1 + rng.Intn(g.D()) // arbitrary id, often invalid
				default:
					if nbrs := g.Neighbors(i); len(nbrs) > 0 {
						damaged[i] = g.ID(int(nbrs[rng.Intn(len(nbrs))]))
					} else {
						damaged[i] = 0
					}
				}
			}
			partial, residual := heal.CarveMatching(g, damaged)
			if err := verify.MatchingPartialExtendable(g, partial); err != nil {
				t.Fatalf("carved matching not extendable: %v\ndamaged: %v\npartial: %v", err, damaged, partial)
			}
			checkResidual(t, partial, residual)
		})
		t.Run("vcolor", func(t *testing.T) {
			palette := g.MaxDegree() + 1
			for i := range damaged {
				damaged[i] = rng.Intn(palette+3) - 1 // under, in, and over palette
			}
			partial, residual := heal.CarveVColor(g, damaged)
			if err := verify.VColorPartial(g, partial, palette); err != nil {
				t.Fatalf("carved coloring not proper: %v\ndamaged: %v\npartial: %v", err, damaged, partial)
			}
			checkResidual(t, partial, residual)
		})
	}
}

func checkResidual(t *testing.T, partial, residual []int) {
	t.Helper()
	count := 0
	for _, p := range partial {
		if p == verify.Undecided {
			count++
		}
	}
	if count != len(residual) {
		t.Fatalf("residual size %d, want %d", len(residual), count)
	}
}

// TestCarveValidIsIdentity: a valid full solution survives carving intact.
func TestCarveValidIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.GNP(30, 0.2, rng)
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: mis.SimpleGreedy()})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, g.N())
	for i, o := range res.Outputs {
		out[i] = o.(int)
	}
	if err := verify.MIS(g, out); err != nil {
		t.Fatal(err)
	}
	partial, residual := heal.CarveMIS(g, out)
	if len(residual) != 0 {
		t.Fatalf("valid MIS left residual %v", residual)
	}
	for i := range out {
		if partial[i] != out[i] {
			t.Fatalf("node %d changed: %d -> %d", i, out[i], partial[i])
		}
	}
}

func misSpec() heal.Spec {
	return heal.Spec{
		Verify:        verify.MIS,
		Carve:         heal.CarveMIS,
		HealFactory:   mis.SimpleGreedy(),
		UndecidedPred: 0,
	}
}

// TestRunRecoveredMIS: drop-heavy chaos produces invalid or aborted MIS
// runs; RunRecovered must still return a verified-valid MIS every time.
func TestRunRecoveredMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sawDamage := false
	for trial := 0; trial < 15; trial++ {
		g := graph.GNP(25+rng.Intn(20), 0.15, rng)
		report, err := heal.RunRecovered(runtime.Config{
			Graph:     g,
			Factory:   mis.SimpleGreedy(),
			MaxRounds: 80,
			Adversary: fault.New(fault.Policy{Seed: rng.Int63(), Drop: 0.4, Crash: 0.1}),
		}, misSpec())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := verify.MIS(g, report.Output); err != nil {
			t.Fatalf("trial %d: recovered output invalid: %v", trial, err)
		}
		if !report.Valid {
			sawDamage = true
			if !report.Healed {
				t.Fatalf("trial %d: invalid primary not healed: %+v", trial, report)
			}
			if report.RecoveryRounds <= 0 {
				t.Fatalf("trial %d: healed without recovery rounds", trial)
			}
		}
	}
	if !sawDamage {
		t.Fatal("no trial was damaged; the fuzz is vacuous — raise the fault rate")
	}
}

// TestRunRecoveredFromAbort: corruption makes the template machinery abort
// (unrecognizable payloads are protocol errors); recovery proceeds from the
// last observed outputs.
func TestRunRecoveredFromAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	sawAbort := false
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(30, 0.2, rng)
		report, err := heal.RunRecovered(runtime.Config{
			Graph:     g,
			Factory:   mis.SimpleGreedy(),
			MaxRounds: 80,
			Adversary: fault.New(fault.Policy{Seed: rng.Int63(), Corrupt: 0.2}),
		}, misSpec())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if report.PrimaryErr != nil {
			sawAbort = true
		}
		if err := verify.MIS(g, report.Output); err != nil {
			t.Fatalf("trial %d: recovered output invalid: %v", trial, err)
		}
	}
	if !sawAbort {
		t.Fatal("no trial aborted; corruption should break the template protocol")
	}
}

// TestRunRecoveredMatchingAndVColor: the other two problems heal too.
func TestRunRecoveredMatchingAndVColor(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	specs := []struct {
		name string
		spec heal.Spec
		fac  runtime.Factory
		chk  func(g *graph.Graph, out []int) error
	}{
		{"matching", heal.Spec{
			Verify:        verify.Matching,
			Carve:         heal.CarveMatching,
			HealFactory:   matching.SimpleGreedy(),
			UndecidedPred: 0,
		}, matching.SimpleGreedy(), verify.Matching},
		{"vcolor", heal.Spec{
			Verify:        verify.VColor,
			Carve:         heal.CarveVColor,
			HealFactory:   vcolor.SimpleGreedy(),
			UndecidedPred: 0,
		}, vcolor.SimpleGreedy(), verify.VColor},
	}
	for _, s := range specs {
		t.Run(s.name, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				g := graph.GNP(25, 0.2, rng)
				report, err := heal.RunRecovered(runtime.Config{
					Graph:     g,
					Factory:   s.fac,
					MaxRounds: 120,
					Adversary: fault.New(fault.Policy{Seed: rng.Int63(), Drop: 0.3, Crash: 0.1}),
				}, s.spec)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if err := s.chk(g, report.Output); err != nil {
					t.Fatalf("trial %d: recovered output invalid: %v", trial, err)
				}
			}
		})
	}
}

// TestRunRecoveredConfigError: a run that never starts is a plain error,
// not something to heal.
func TestRunRecoveredConfigError(t *testing.T) {
	g := graph.Line(3)
	_, err := heal.RunRecovered(runtime.Config{
		Graph:   g,
		Factory: mis.SimpleGreedy(),
		Crashes: map[int]int{9: 1},
	}, misSpec())
	if err == nil {
		t.Fatal("config error swallowed by recovery")
	}
}
