package heal

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/problem"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// SpecFor assembles the engine-level healing Spec from a descriptor's
// registered recovery machinery: the carved partial solution is extended by
// the registered healing algorithm's Simple Template (the problem's own
// "simple" variant unless the descriptor redirects, as the tree problem does
// to the general MIS template). It is the one resolution path shared by the
// registry run helpers and the dynamic session supervisor, so the two always
// agree on what "healing problem X" means.
func SpecFor(d *problem.Descriptor) (Spec, error) {
	h := d.Heal
	if h == nil {
		return Spec{}, fmt.Errorf("%w: heal: recovery is not supported for problem %q", runtime.ErrConfig, d.Name)
	}
	healProblem := h.HealProblem
	if healProblem == "" {
		healProblem = d.Name
	}
	healAlg := h.HealAlg
	if healAlg == "" {
		healAlg = "simple"
	}
	hd, err := problem.Get(healProblem)
	if err != nil {
		return Spec{}, fmt.Errorf("heal: resolve healing problem: %w", err)
	}
	a, err := hd.Algorithm(healAlg)
	if err != nil {
		return Spec{}, fmt.Errorf("heal: resolve healing algorithm: %w", err)
	}
	factory, err := a.Build(problem.BuildCtx{})
	if err != nil {
		return Spec{}, fmt.Errorf("heal: build healing template: %w", err)
	}
	return Spec{
		Verify:        h.Verify,
		Carve:         h.Carve,
		HealFactory:   factory,
		UndecidedPred: h.UndecidedPred,
	}, nil
}

// WidenCarve grows the undecided region of an extendable partial solution by
// a BFS ball of the given hop radius and re-carves. It is the middle rung of
// the dynamic session's degradation ladder: when healing from a carve fails,
// the damage estimate was too tight — demoting every node within hops of the
// current residual forgets the decisions nearest the damage, and re-carving
// restores extendability (the carve functions treat verify.Undecided as "no
// decision"). hops <= 0 re-carves without widening.
func WidenCarve(g *graph.Graph, partial []int, hops int, carve func(*graph.Graph, []int) (p, r []int)) (widened, residual []int) {
	n := g.N()
	next := make([]int, n)
	copy(next, partial)
	frontier := residualOf(partial)
	seen := make([]bool, n)
	for _, v := range frontier {
		seen[v] = true
	}
	for h := 0; h < hops && len(frontier) > 0; h++ {
		var grow []int
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					next[u] = verify.Undecided
					grow = append(grow, int(u))
				}
			}
		}
		frontier = grow
	}
	return carve(g, next)
}
