package heal_test

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/problem"
	"repro/internal/runtime"
	_ "repro/internal/tree"
	"repro/internal/verify"
)

func TestSpecForResolvesRegisteredHeal(t *testing.T) {
	for _, name := range []string{"mis", "matching", "vcolor", "tree"} {
		d, err := problem.Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec, err := heal.SpecFor(d)
		if err != nil {
			t.Fatalf("%s: SpecFor: %v", name, err)
		}
		if spec.Verify == nil || spec.Carve == nil || spec.HealFactory == nil {
			t.Fatalf("%s: SpecFor left machinery unset: %+v", name, spec)
		}
	}
}

func TestSpecForRejectsUnhealable(t *testing.T) {
	d := &problem.Descriptor{Name: "bare"}
	if _, err := heal.SpecFor(d); !errors.Is(err, runtime.ErrConfig) {
		t.Fatalf("SpecFor(descriptor without Heal) = %v, want ErrConfig", err)
	}
}

func TestWidenCarveGrowsResidualByHops(t *testing.T) {
	g := graph.Line(9)
	// Valid MIS on the line: alternate 1,0,1,0,... then knock out the center.
	partial := make([]int, 9)
	for v := range partial {
		if v%2 == 0 {
			partial[v] = 1
		}
	}
	partial[4] = verify.Undecided
	base, res0 := heal.WidenCarve(g, partial, 0, heal.CarveMIS)
	if err := verify.MISPartialExtendable(g, base); err != nil {
		t.Fatalf("hops=0 re-carve not extendable: %v", err)
	}
	prev := len(res0)
	for hops := 1; hops <= 4; hops++ {
		widened, res := heal.WidenCarve(g, partial, hops, heal.CarveMIS)
		if err := verify.MISPartialExtendable(g, widened); err != nil {
			t.Fatalf("hops=%d: widened carve not extendable: %v", hops, err)
		}
		if len(res) < prev {
			t.Fatalf("hops=%d: residual shrank %d -> %d", hops, prev, len(res))
		}
		prev = len(res)
	}
	// One hop only reaches forced clean-up closures, which re-close; two hops
	// reach the in-set justifications and genuinely grow the residual.
	if _, res := heal.WidenCarve(g, partial, 2, heal.CarveMIS); len(res) <= len(res0) {
		t.Fatalf("hops=2 residual %d did not grow beyond %d", len(res), len(res0))
	}
	// An empty residual stays empty: nothing to widen from.
	full := make([]int, 9)
	for v := range full {
		if v%2 == 0 {
			full[v] = 1
		}
	}
	if _, res := heal.WidenCarve(g, full, 5, heal.CarveMIS); len(res) != 0 {
		t.Fatalf("widening a complete solution produced residual %v", res)
	}
}
