package heal_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/problem"
	"repro/internal/runtime"
	_ "repro/internal/tree"
	"repro/internal/verify"
)

func TestSpecForResolvesRegisteredHeal(t *testing.T) {
	for _, name := range []string{"mis", "matching", "vcolor", "tree"} {
		d, err := problem.Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec, err := heal.SpecFor(d)
		if err != nil {
			t.Fatalf("%s: SpecFor: %v", name, err)
		}
		if spec.Verify == nil || spec.Carve == nil || spec.HealFactory == nil {
			t.Fatalf("%s: SpecFor left machinery unset: %+v", name, spec)
		}
	}
}

func TestSpecForRejectsUnhealable(t *testing.T) {
	d := &problem.Descriptor{Name: "bare"}
	if _, err := heal.SpecFor(d); !errors.Is(err, runtime.ErrConfig) {
		t.Fatalf("SpecFor(descriptor without Heal) = %v, want ErrConfig", err)
	}
}

func TestWidenCarveGrowsResidualByHops(t *testing.T) {
	g := graph.Line(9)
	// Valid MIS on the line: alternate 1,0,1,0,... then knock out the center.
	partial := make([]int, 9)
	for v := range partial {
		if v%2 == 0 {
			partial[v] = 1
		}
	}
	partial[4] = verify.Undecided
	base, res0 := heal.WidenCarve(g, partial, 0, heal.CarveMIS)
	if err := verify.MISPartialExtendable(g, base); err != nil {
		t.Fatalf("hops=0 re-carve not extendable: %v", err)
	}
	prev := len(res0)
	for hops := 1; hops <= 4; hops++ {
		widened, res := heal.WidenCarve(g, partial, hops, heal.CarveMIS)
		if err := verify.MISPartialExtendable(g, widened); err != nil {
			t.Fatalf("hops=%d: widened carve not extendable: %v", hops, err)
		}
		if len(res) < prev {
			t.Fatalf("hops=%d: residual shrank %d -> %d", hops, prev, len(res))
		}
		prev = len(res)
	}
	// One hop only reaches forced clean-up closures, which re-close; two hops
	// reach the in-set justifications and genuinely grow the residual.
	if _, res := heal.WidenCarve(g, partial, 2, heal.CarveMIS); len(res) <= len(res0) {
		t.Fatalf("hops=2 residual %d did not grow beyond %d", len(res), len(res0))
	}
	// An empty residual stays empty: nothing to widen from.
	full := make([]int, 9)
	for v := range full {
		if v%2 == 0 {
			full[v] = 1
		}
	}
	if _, res := heal.WidenCarve(g, full, 5, heal.CarveMIS); len(res) != 0 {
		t.Fatalf("widening a complete solution produced residual %v", res)
	}
}

// TestWidenCarveDegenerateInputs pins WidenCarve's contract at the edges of
// its domain: zero (and negative) hops must be a pure re-carve, a ball that
// swallows the whole graph must leave everything undecided, and a
// single-node graph must round-trip both the decided and undecided cases.
func TestWidenCarveDegenerateInputs(t *testing.T) {
	t.Run("zero hops is a pure re-carve", func(t *testing.T) {
		g := graph.Line(9)
		partial := make([]int, 9)
		for v := range partial {
			if v%2 == 0 {
				partial[v] = 1
			}
		}
		partial[4] = verify.Undecided
		before := append([]int(nil), partial...)
		direct, directRes := heal.CarveMIS(g, partial)
		for _, hops := range []int{0, -3} {
			widened, res := heal.WidenCarve(g, partial, hops, heal.CarveMIS)
			if !reflect.DeepEqual(widened, direct) || !reflect.DeepEqual(res, directRes) {
				t.Fatalf("hops=%d: WidenCarve diverged from a direct carve:\n got %v %v\nwant %v %v",
					hops, widened, res, direct, directRes)
			}
		}
		if !reflect.DeepEqual(partial, before) {
			t.Fatalf("WidenCarve mutated its input: %v -> %v", before, partial)
		}
	})

	t.Run("ball covering the whole graph demotes every node", func(t *testing.T) {
		g := graph.Line(5)
		partial := []int{1, 0, verify.Undecided, 0, 1}
		widened, res := heal.WidenCarve(g, partial, 10, heal.CarveMIS)
		if len(res) != g.N() {
			t.Fatalf("residual covers %d of %d nodes; a 10-hop ball on Line(5) must swallow the graph", len(res), g.N())
		}
		for v, p := range widened {
			if p != verify.Undecided {
				t.Fatalf("node %d survived a whole-graph widening with value %d", v, p)
			}
		}
	})

	t.Run("single-node graph", func(t *testing.T) {
		g := graph.Line(1)
		widened, res := heal.WidenCarve(g, []int{verify.Undecided}, 3, heal.CarveMIS)
		if len(res) != 1 || res[0] != 0 || widened[0] != verify.Undecided {
			t.Fatalf("undecided singleton: got widened=%v residual=%v, want the node back in the residual", widened, res)
		}
		widened, res = heal.WidenCarve(g, []int{1}, 3, heal.CarveMIS)
		if len(res) != 0 || widened[0] != 1 {
			t.Fatalf("decided singleton: got widened=%v residual=%v, want the decision kept and no residual", widened, res)
		}
		if err := verify.MIS(g, widened); err != nil {
			t.Fatalf("decided singleton is not a valid MIS after widening: %v", err)
		}
	})
}
