// Package linegraph implements a fault-tolerant distributed (2Δ−1)-edge
// coloring by running the Linial reduction on the line graph: each edge's
// color is maintained symmetrically by both endpoints, which exchange the
// colors of their other live edges every round and apply the same
// deterministic reduction to the same inputs, so the two copies never
// diverge. An endpoint that terminates or crashes simply removes its edges
// from the computation.
//
// The stage serves as the fault-tolerant first part of Parallel-Template
// references for edge-output problems: maximal matching (match one color
// class at a time) and (2Δ−1)-edge coloring itself (repair the tentative
// colors against already-output ones, then output).
package linegraph

import (
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/vcolor"
)

// Host adapts the stage to a problem's shared memory: which incident edges
// still need a color this round, and where to store the result.
type Host interface {
	// LiveEdges returns the neighbor IDs across the edges that still
	// participate in the coloring (sorted ascending; may shrink between
	// rounds as endpoints terminate or edges get final colors elsewhere).
	LiveEdges(info runtime.NodeInfo) []int
	// StoreEdgeColors receives the final colors (1-based classes, keyed by
	// neighbor ID) when the stage completes.
	StoreEdgeColors(colors map[int]int)
}

// Rounds returns the stage's round bound: the Linial bound on the line
// graph, whose palette starts at d² (an edge's initial color encodes its
// endpoints) and whose maximum degree is 2Δ−2.
func Rounds(d, delta int) int {
	if delta == 0 {
		return 1
	}
	return vcolor.Rounds(d*d, 2*delta-2)
}

// EngineCap returns a safe engine round cap for the algorithms whose
// reference is the line-graph Linial coloring: the engine's O(n)-algorithm
// default (8n+64) plus the coloring's bound, two rounds per color class of
// the 2Δ−1 palette, and slack for the surrounding template stages. The
// reference can legitimately exceed the plain default on small dense graphs
// (its bound is O(Δ²·polylog), the documented substitution cost).
func EngineCap(n, d, delta int) int {
	return 8*n + 64 + Rounds(d, delta) + 2*(2*delta+1) + 16
}

// sync is the per-edge message: the sender's view of the shared edge's
// color and the colors of the sender's other live edges.
type sync struct {
	Color  int
	Others []int
}

// Bits sizes the message: O(Δ·log d²) bits.
func (m sync) Bits() int {
	return bits.Len(uint(m.Color)) + 1 + 18*len(m.Others)
}

// Part1 returns the stage factory; the shared memory must implement Host.
func Part1() core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		host, ok := mem.(Host)
		if !ok {
			return &failMachine{}
		}
		var steps []vcolor.ReductionStep
		kStar := 1
		if info.Delta > 0 {
			steps, kStar = vcolor.Schedule(info.D*info.D, 2*info.Delta-2)
		}
		m := &machine{
			host:   host,
			steps:  steps,
			kStar:  kStar,
			total:  Rounds(info.D, info.Delta),
			colors: make(map[int]int, len(info.NeighborIDs)),
			sent:   make(map[int][]int, len(info.NeighborIDs)),
		}
		for _, nb := range info.NeighborIDs {
			lo, hi := info.ID, nb
			if lo > hi {
				lo, hi = hi, lo
			}
			m.colors[nb] = (lo-1)*info.D + (hi - 1) // distinct 0-based seeds
		}
		return m
	}
}

type failMachine struct{}

func (failMachine) Send(c *core.StageCtx) []runtime.Out {
	c.Fail(errNoHost)
	return nil
}
func (failMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {}

type hostError string

func (e hostError) Error() string { return string(e) }

const errNoHost = hostError("linegraph: shared memory does not implement Host")

type machine struct {
	host   Host
	steps  []vcolor.ReductionStep
	kStar  int
	total  int
	colors map[int]int
	sent   map[int][]int
}

func (m *machine) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	live := m.host.LiveEdges(info)
	outs := make([]runtime.Out, 0, len(live))
	for _, nb := range live {
		others := make([]int, 0, len(live)-1)
		for _, other := range live {
			if other != nb {
				others = append(others, m.colors[other])
			}
		}
		sort.Ints(others)
		m.sent[nb] = others
		outs = append(outs, runtime.Out{To: nb, Payload: sync{Color: m.colors[nb], Others: others}})
	}
	return outs
}

func (m *machine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	info := c.Info()
	delta2 := 2*info.Delta - 2
	r := c.StageRound()
	for _, msg := range inbox {
		es, ok := msg.Payload.(sync)
		if !ok {
			continue
		}
		nb := msg.From
		adjacent := append(append([]int(nil), m.sent[nb]...), es.Others...)
		switch {
		case r <= len(m.steps):
			m.colors[nb] = vcolor.ApplyReduction(m.steps[r-1], m.colors[nb], adjacent)
		default:
			target := m.kStar - (r - len(m.steps))
			if m.colors[nb] == target && target > delta2 {
				m.colors[nb] = vcolor.SmallestFreeColor(adjacent, delta2+1)
			}
		}
	}
	if r >= m.total {
		final := make(map[int]int, len(m.colors))
		for nb, col := range m.colors {
			final[nb] = col + 1
		}
		m.host.StoreEdgeColors(final)
		c.Yield()
	}
}
