package linegraph_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/linegraph"
	"repro/internal/runtime"
)

// probeMemory hosts the stage with every edge live and captures the result.
type probeMemory struct {
	info   runtime.NodeInfo
	colors map[int]int
}

func (m *probeMemory) LiveEdges(info runtime.NodeInfo) []int { return info.NeighborIDs }
func (m *probeMemory) StoreEdgeColors(colors map[int]int)    { m.colors = colors }

// probeFactory runs Part1 and then outputs the stored per-edge colors in
// identifier order.
func probeFactory() runtime.Factory {
	emit := core.Stage{
		Name: "emit",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return emitMachine{mem: mem.(*probeMemory)}
		},
	}
	part1 := core.Stage{Name: "lg", New: linegraph.Part1()}
	return core.Sequence(func(info runtime.NodeInfo, pred any) any {
		return &probeMemory{info: info}
	}, part1, emit)
}

type emitMachine struct{ mem *probeMemory }

func (m emitMachine) Send(c *core.StageCtx) []runtime.Out { return nil }
func (m emitMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	out := make([]int, len(c.Info().NeighborIDs))
	for j, nb := range c.Info().NeighborIDs {
		out[j] = m.mem.colors[nb]
	}
	c.Output(out)
}

func checkColoring(t *testing.T, g *graph.Graph, res *runtime.Result, crashed map[int]int) {
	t.Helper()
	// Build per-edge colors from the surviving endpoints and check
	// agreement + properness on the surviving subgraph.
	colors := map[[2]int]int{}
	for v := 0; v < g.N(); v++ {
		if res.Outputs[v] == nil {
			continue
		}
		vec := res.Outputs[v].([]int)
		for j, u := range g.NeighborsByID(v) {
			if _, dead := crashed[u]; dead {
				continue
			}
			a, b := v, u
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if prev, seen := colors[key]; seen {
				if prev != vec[j] {
					t.Fatalf("edge %v: endpoints disagree (%d vs %d)", key, prev, vec[j])
				}
			} else {
				colors[key] = vec[j]
			}
		}
	}
	palette := 2*g.MaxDegree() - 1
	used := map[int]map[int]bool{}
	for e, c := range colors {
		if c < 1 || c > palette {
			t.Fatalf("edge %v color %d outside palette %d", e, c, palette)
		}
		for _, v := range e {
			if used[v] == nil {
				used[v] = map[int]bool{}
			}
			if used[v][c] {
				t.Fatalf("node %d repeats color %d", g.ID(v), c)
			}
			used[v][c] = true
		}
	}
}

func TestLineGraphColoringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for name, g := range map[string]*graph.Graph{
		"line12":   graph.Line(12),
		"ring9":    graph.Ring(9),
		"star8":    graph.Star(8),
		"clique6":  graph.Clique(6),
		"grid4x4":  graph.Grid2D(4, 4),
		"gnp24":    graph.GNP(24, 0.2, rng),
		"shuffled": graph.ShuffleIDs(graph.Grid2D(4, 4), 64, rng),
	} {
		t.Run(name, func(t *testing.T) {
			want := linegraph.Rounds(g.D(), g.MaxDegree()) + 1
			res, err := runtime.Run(runtime.Config{
				Graph: g, Factory: probeFactory(), MaxRounds: want + 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds != want {
				t.Errorf("rounds %d, want %d", res.Rounds, want)
			}
			checkColoring(t, g, res, nil)
		})
	}
}

func TestLineGraphFaultTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 20; trial++ {
		g := graph.GNP(20, 0.25, rng)
		total := linegraph.Rounds(g.D(), g.MaxDegree())
		crashes := map[int]int{}
		for i := 0; i < g.N(); i++ {
			if rng.Float64() < 0.25 {
				crashes[i] = 1 + rng.Intn(total+1)
			}
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: probeFactory(), Crashes: crashes,
			MaxRounds: total + 32,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkColoring(t, g, res, crashes)
	}
}

func TestHostRequired(t *testing.T) {
	g := graph.Line(2)
	factory := core.Sequence(nil, core.Stage{Name: "lg", New: linegraph.Part1()})
	if _, err := runtime.Run(runtime.Config{Graph: g, Factory: factory}); err == nil {
		t.Fatal("want error when the shared memory does not implement Host")
	}
}
