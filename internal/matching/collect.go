package matching

import (
	"sort"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/runtime"
)

// Collect returns the collect-and-solve reference for maximal matching:
// n rounds of adjacency flooding, then every node outputs its partner in the
// canonical greedy-by-identifier maximal matching of its component. The
// round bound CollectBound(info) = n+1 is computable by all nodes, as the
// Consecutive Template requires.
func Collect() core.Stage {
	return core.Stage{
		Name: "matching/collect",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &collectMachine{mem: mem.(*Memory), rows: map[int][]int{}}
		},
	}
}

// CollectBound is the round bound of Collect.
func CollectBound(info runtime.NodeInfo) int { return info.N + 1 }

// row carries newly learned adjacency rows (LOCAL-size).
type row struct {
	Entries map[int][]int
}

// Bits sizes the flooding batch for CONGEST accounting: one ID (32 bits)
// per key and per adjacency entry. The collect-and-solve reference is
// LOCAL-size by design; honest accounting keeps Result.Bits meaningful.
func (r row) Bits() int {
	n := 0
	for _, nbrs := range r.Entries {
		n += 32 * (1 + len(nbrs))
	}
	return n
}

type collectMachine struct {
	mem   *Memory
	rows  map[int][]int
	fresh []int
}

func (m *collectMachine) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	if c.StageRound() == 1 {
		mine := m.mem.ActiveNeighbors(info)
		m.rows[info.ID] = mine
		m.fresh = []int{info.ID}
	}
	if c.StageRound() > info.N {
		m.solveAndOutput(c)
		return nil
	}
	if len(m.fresh) == 0 {
		return nil
	}
	entries := make(map[int][]int, len(m.fresh))
	for _, id := range m.fresh {
		entries[id] = m.rows[id]
	}
	m.fresh = nil
	return runtime.BroadcastTo(m.mem.ActiveNeighbors(info), row{Entries: entries})
}

func (m *collectMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		r, ok := msg.Payload.(row)
		if !ok {
			continue
		}
		for id, nbrs := range r.Entries {
			if _, known := m.rows[id]; !known {
				m.rows[id] = nbrs
				m.fresh = append(m.fresh, id)
			}
		}
	}
	sort.Ints(m.fresh)
}

func (m *collectMachine) solveAndOutput(c *core.StageCtx) {
	ids := make([]int, 0, len(m.rows))
	for id := range m.rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	b := graph.NewBuilder(len(ids))
	b.SetDomain(c.Info().D)
	for i, id := range ids {
		b.SetID(i, id)
	}
	for i, id := range ids {
		for _, nb := range m.rows[id] {
			if j, ok := idx[nb]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
	}
	sub := b.MustBuild()
	out := exact.GreedyMatchingByID(sub)
	c.Output(out[idx[c.ID()]])
}

// Solo runs a single matching stage as a complete algorithm.
func Solo(stage core.Stage) runtime.Factory {
	return core.Sequence(NewMemory, stage)
}

// SimpleGreedy is the Simple Template for maximal matching: initialization
// followed by the measure-uniform proposal algorithm.
func SimpleGreedy() runtime.Factory {
	return core.Simple(NewMemory, Init(), MeasureUniform(0))
}

// SimpleBase is SimpleGreedy with the Base Algorithm as initialization.
func SimpleBase() runtime.Factory {
	return core.Simple(NewMemory, Base(), MeasureUniform(0))
}

// SimpleCollect is the Simple Template with the collect-and-solve reference.
func SimpleCollect() runtime.Factory {
	return core.Simple(NewMemory, Init(), Collect())
}

// ConsecutiveCollect is the Consecutive Template: initialization, the
// measure-uniform algorithm for r(n)+c'(n) rounds (rounded up to a 3-round
// proposal-group boundary), clean-up, then the reference.
func ConsecutiveCollect() runtime.Factory {
	cleanup := Cleanup()
	return core.Consecutive(core.ConsecutiveSpec{
		Mem:    NewMemory,
		B:      Init(),
		U:      MeasureUniform,
		Budget: func(info runtime.NodeInfo) int { return CollectBound(info) + 1 },
		Align:  3,
		C:      &cleanup,
		Ref:    core.FixedRef(Collect()),
	})
}
