package matching

import (
	"repro/internal/core"
	"repro/internal/linegraph"
	"repro/internal/runtime"
)

// This file builds a two-part reference for Maximal Matching in the style of
// Corollary 12, demonstrating the Parallel Template on a second problem
// (Section 8 leaves the choice of reference open):
//
//   part 1 — a fault-tolerant (2Δ−1)-edge coloring of the still-active
//   subgraph, computed by running the Linial reduction on the line graph:
//   each edge's color is maintained symmetrically by both endpoints, which
//   exchange the colors of their other incident edges every round and apply
//   the same deterministic reduction, so the two copies never diverge and a
//   crashed endpoint simply removes its edges;
//
//   part 2 — one color class per two rounds: the endpoints of a class-c edge
//   that are both still free propose to each other and match. Edge colors
//   are distinct around every node, so each node handles at most one edge
//   per class, and every remaining edge loses an endpoint by the time its
//   class is processed, which makes the matching maximal.

// EdgeColorRounds returns part 1's round bound (see internal/linegraph).
func EdgeColorRounds(d, delta int) int { return linegraph.Rounds(d, delta) }

// EdgeColorPart1 returns the fault-tolerant edge-coloring stage, hosted by
// this package's Memory (live edges = edges to still-active neighbors).
func EdgeColorPart1() core.StageFactory { return linegraph.Part1() }

// propose asks the class-c partner to match this round.
type propose2 struct{}

// Bits sizes the message for CONGEST accounting.
func (propose2) Bits() int { return 1 }

// ColorToMatching returns part 2: classes 1..2Δ−1 processed two rounds each
// (mutual proposal, then announce-and-terminate); one final round lets the
// leftover nodes — whose neighbors are all matched by then — output ⊥.
func ColorToMatching() core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return &colorToMatchingMachine{mem: mem.(*Memory)}
	}
}

type colorToMatchingMachine struct {
	mem      *Memory
	proposed int // neighbor proposed to this class (0 = none)
	partner  int // sealed partner (0 = none)
}

// classEdge returns the active neighbor across this node's class-c edge, or
// 0 when there is none (edge colors are distinct per node, so it is unique).
func (m *colorToMatchingMachine) classEdge(info runtime.NodeInfo, class int) int {
	//lint:allow maporder (edge colors are distinct per node, so at most one entry matches and first-match is deterministic)
	for nb, col := range m.mem.R1Colors {
		if col != class {
			continue
		}
		if _, gone := m.mem.NbrOut[nb]; !gone {
			return nb
		}
	}
	return 0
}

func (m *colorToMatchingMachine) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	palette := 2*info.Delta - 1
	r := c.StageRound()
	switch {
	case r > 2*palette || info.Delta == 0:
		// Final round: every neighbor is matched (each remaining edge lost
		// an endpoint during its class), so ⊥ is safe.
		c.Output(Unmatched)
		return nil
	case r%2 == 1:
		class := (r + 1) / 2
		m.proposed = 0
		if nb := m.classEdge(info, class); nb != 0 {
			m.proposed = nb
			return []runtime.Out{{To: nb, Payload: propose2{}}}
		}
		return nil
	default:
		if m.partner != 0 {
			outs := runtime.BroadcastTo(m.mem.ActiveNeighbors(info), matched{Partner: m.partner})
			c.Output(m.partner)
			return outs
		}
		return nil
	}
}

func (m *colorToMatchingMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		switch p := msg.Payload.(type) {
		case propose2:
			// Mutual proposals seal the pair (both sides hold the same
			// class edge this round).
			if msg.From == m.proposed {
				m.partner = msg.From
			}
		case matched:
			m.mem.NbrOut[msg.From] = p.Partner
		}
	}
}

// ParallelColoring is the Parallel Template for Maximal Matching: the
// initialization, the 3-round-group measure-uniform algorithm running in
// parallel with the fault-tolerant edge coloring (budget rounded to a group
// boundary so the interruption point is extendable), the one-round clean-up,
// and the color-class matching.
func ParallelColoring() runtime.Factory {
	cleanup := Cleanup()
	return core.Parallel(core.ParallelSpec{
		Mem: NewMemory,
		B:   Init(),
		U:   MeasureUniform(0).New,
		R1:  EdgeColorPart1(),
		R1Budget: func(info runtime.NodeInfo) int {
			return core.AlignUp(EdgeColorRounds(info.D, info.Delta), 3)
		},
		C:  &cleanup,
		R2: ColorToMatching(),
	})
}
