package matching_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/runtime"
)

// ecProbe runs the fault-tolerant edge coloring standalone on matching's
// shared memory, emitting each node's final edge-color map (keyed by
// neighbor ID) as its output.
func ecProbe() runtime.Factory {
	part1 := core.Stage{Name: "ec", New: matching.EdgeColorPart1()}
	emit := core.Stage{
		Name: "emit",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return emitColors{mem: mem.(*matching.Memory)}
		},
	}
	return core.Sequence(matching.NewMemory, part1, emit)
}

type emitColors struct{ mem *matching.Memory }

func (m emitColors) Send(c *core.StageCtx) []runtime.Out { return nil }
func (m emitColors) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	out := make(map[int]int, len(m.mem.R1Colors))
	for nb, col := range m.mem.R1Colors {
		out[nb] = col
	}
	c.Output(out)
}

// checkSurvivorEdgeColors verifies the coloring restricted to edges between
// surviving nodes: both endpoints hold the same color, the color is within
// the (2Δ−1) palette, and no two surviving edges at a node share a color.
// Edges to crashed neighbors are excluded — a crashed endpoint stops
// syncing, so the survivor's copy of that edge's color is stale by design.
func checkSurvivorEdgeColors(t *testing.T, trial int, g *graph.Graph, outputs []any, palette int) {
	t.Helper()
	colors := make([]map[int]int, g.N())
	for i, o := range outputs {
		if o != nil {
			colors[i] = o.(map[int]int)
		}
	}
	for v := 0; v < g.N(); v++ {
		if colors[v] == nil {
			continue
		}
		seen := map[int]int{}
		for _, u32 := range g.Neighbors(v) {
			u := int(u32)
			if colors[u] == nil {
				continue
			}
			cv, okV := colors[v][g.ID(u)]
			cu, okU := colors[u][g.ID(v)]
			if !okV || !okU {
				t.Fatalf("trial %d: surviving edge (%d,%d) missing a color", trial, g.ID(v), g.ID(u))
			}
			if cv != cu {
				t.Fatalf("trial %d: edge (%d,%d) endpoint colors disagree: %d vs %d",
					trial, g.ID(v), g.ID(u), cv, cu)
			}
			if cv < 1 || cv > palette {
				t.Fatalf("trial %d: edge (%d,%d) color %d outside palette [1,%d]",
					trial, g.ID(v), g.ID(u), cv, palette)
			}
			if prev, dup := seen[cv]; dup {
				t.Fatalf("trial %d: node %d has surviving edges to %d and %d both colored %d",
					trial, g.ID(v), prev, g.ID(u), cv)
			}
			seen[cv] = g.ID(u)
		}
	}
}

// TestEdgeColoringFaultTolerance crashes random subsets of nodes at random
// rounds during the reference's fault-tolerant edge coloring and checks that
// the surviving edges still carry an agreed, proper (2Δ−1)-coloring — the
// extendability property the Parallel Template relies on when the coloring
// serves as its part 1 (a crashed endpoint's edges drop out; the rest form a
// partial solution some full coloring contains).
func TestEdgeColoringFaultTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		g := graph.GNP(32, 0.15, rng)
		total := matching.EdgeColorRounds(g.D(), g.MaxDegree())
		crashes := map[int]int{}
		for i := 0; i < g.N(); i++ {
			if rng.Float64() < 0.25 {
				crashes[i] = 1 + rng.Intn(total+1)
			}
		}
		res, err := runtime.Run(runtime.Config{
			Graph:     g,
			Factory:   ecProbe(),
			Crashes:   crashes,
			MaxRounds: total + 8, // the Linial countdown exceeds the engine default
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkSurvivorEdgeColors(t, trial, g, res.Outputs, 2*g.MaxDegree()-1)
	}
}
