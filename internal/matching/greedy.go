package matching

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// MeasureUniform returns the measure-uniform maximal matching algorithm of
// Section 8.1, working in groups of three rounds: local-maximum nodes
// propose to their smallest-identifier active neighbor; each proposee
// accepts its largest proposer; the new pair informs its active neighbors
// and terminates; nodes left with no active neighbors output ⊥. Its round
// complexity on a component with s ≥ 2 nodes is at most 3⌊s/2⌋, and the code
// consults no graph parameter, so it is measure-uniform with respect to μ₁.
// Budgets should be multiples of 3 (group boundaries carry extendable
// partial solutions).
func MeasureUniform(budget int) core.Stage {
	return core.Stage{
		Name:   "matching/greedy",
		Budget: budget,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &greedyMachine{mem: mem.(*Memory)}
		},
	}
}

// propose asks the receiver to match with the sender.
type propose struct{}

// Bits sizes the message for CONGEST accounting.
func (propose) Bits() int { return 1 }

// accept tells the proposer the match is on.
type accept struct{}

// Bits sizes the message for CONGEST accounting.
func (accept) Bits() int { return 1 }

type greedyMachine struct {
	mem      *Memory
	proposed int // neighbor we proposed to this group (0 = none)
	chosen   int // proposer we accepted this group (0 = none)
	partner  int // agreed partner (0 = none)
}

func (m *greedyMachine) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	switch (c.StageRound()-1)%3 + 1 {
	case 1:
		m.proposed, m.chosen, m.partner = 0, 0, 0
		active := m.mem.ActiveNeighbors(info)
		if len(active) == 0 {
			c.Output(Unmatched)
			return nil
		}
		for _, nb := range active {
			if nb > info.ID {
				return nil
			}
		}
		m.proposed = active[0] // smallest active neighbor
		return []runtime.Out{{To: m.proposed, Payload: propose{}}}
	case 2:
		if m.chosen != 0 {
			m.partner = m.chosen
			return []runtime.Out{{To: m.chosen, Payload: accept{}}}
		}
	case 3:
		if m.partner != 0 {
			outs := runtime.BroadcastTo(m.mem.ActiveNeighbors(info), matched{Partner: m.partner})
			c.Output(m.partner)
			return outs
		}
	}
	return nil
}

func (m *greedyMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	switch (c.StageRound()-1)%3 + 1 {
	case 1:
		for _, msg := range inbox {
			if _, ok := msg.Payload.(propose); ok && msg.From > m.chosen {
				m.chosen = msg.From
			}
		}
	case 2:
		for _, msg := range inbox {
			if _, ok := msg.Payload.(accept); ok {
				// We proposed to exactly one node; its accept seals the pair.
				m.partner = msg.From
			}
		}
	case 3:
		m.mem.recordMatched(inbox)
		if len(m.mem.ActiveNeighbors(c.Info())) == 0 {
			// No active neighbors remain; safe to leave unmatched (every
			// neighbor is matched, so maximality is preserved).
			c.Output(Unmatched)
		}
	}
}
