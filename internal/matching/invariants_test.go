package matching_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// TestGreedyExtendableAtGroupBoundaries verifies the invariant the
// Consecutive Template relies on for matching: the measure-uniform
// algorithm's partial solution is extendable at the end of every 3-round
// group (Section 8.1).
func TestGreedyExtendableAtGroupBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(35, 0.15, rng)
		_, err := runtime.Run(runtime.Config{
			Graph:   g,
			Factory: matching.Solo(matching.MeasureUniform(0)),
			Observer: func(round int, outputs []any, active []bool) {
				if round%3 != 0 {
					return
				}
				partial := make([]int, len(outputs))
				for i := range outputs {
					if active[i] {
						partial[i] = verify.Undecided
					} else if v, ok := outputs[i].(int); ok {
						partial[i] = v
					} else {
						partial[i] = verify.Undecided
					}
				}
				if err := verify.MatchingPartialExtendable(g, partial); err != nil {
					t.Errorf("trial %d round %d: %v", trial, round, err)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBaseExtendable: the matching base/initialization algorithms leave
// extendable partial solutions.
func TestBaseExtendable(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 15; trial++ {
		g := graph.GNP(30, 0.2, rng)
		preds := predict.PerturbMatching(g, predict.PerfectMatching(g), 8, rng)
		anyPreds := make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = p
		}
		for name, f := range map[string]runtime.Factory{
			"base": matching.SimpleBase(),
			"init": matching.SimpleGreedy(),
		} {
			_, err := runtime.Run(runtime.Config{
				Graph:       g,
				Factory:     f,
				Predictions: anyPreds,
				Observer: func(round int, outputs []any, active []bool) {
					if round != 2 {
						return
					}
					partial := make([]int, len(outputs))
					for i := range outputs {
						if active[i] {
							partial[i] = verify.Undecided
						} else if v, ok := outputs[i].(int); ok {
							partial[i] = v
						} else {
							partial[i] = verify.Undecided
						}
					}
					if err := verify.MatchingPartialExtendable(g, partial); err != nil {
						t.Errorf("trial %d %s: %v", trial, name, err)
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestQuickMatchingAlwaysValid property-checks the pipeline over random
// graphs and garbage predictions (arbitrary identifiers, not just perturbed
// solutions).
func TestQuickMatchingAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%30) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.2, rng)
		preds := make([]any, n)
		for i := range preds {
			// Random garbage: sometimes a real id, sometimes nonsense.
			switch rng.Intn(3) {
			case 0:
				preds[i] = matching.Unmatched
			case 1:
				preds[i] = 1 + rng.Intn(n)
			default:
				preds[i] = n + 100 // non-existent identifier
			}
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: matching.SimpleGreedy(), Predictions: preds,
		})
		if err != nil {
			return false
		}
		out := make([]int, n)
		for i, o := range res.Outputs {
			v, ok := o.(int)
			if !ok {
				return false
			}
			out[i] = v
		}
		return verify.Matching(g, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickParallelMatchingAlwaysValid property-checks the Parallel
// Template for matching with garbage predictions, including on graphs whose
// identifiers are shuffled.
func TestQuickParallelMatchingAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN uint8, shuffle bool) bool {
		n := int(rawN%24) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.2, rng)
		if shuffle {
			g = graph.ShuffleIDs(g, 4*n, rng)
		}
		preds := make([]any, n)
		for i := range preds {
			switch rng.Intn(3) {
			case 0:
				preds[i] = matching.Unmatched
			case 1:
				preds[i] = 1 + rng.Intn(4*n)
			default:
				preds[i] = g.ID(rng.Intn(n))
			}
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: matching.ParallelColoring(), Predictions: preds,
			MaxRounds: 64*n + 1024,
		})
		if err != nil {
			return false
		}
		out := make([]int, n)
		for i, o := range res.Outputs {
			v, ok := o.(int)
			if !ok {
				return false
			}
			out[i] = v
		}
		return verify.Matching(g, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
