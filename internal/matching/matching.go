// Package matching implements the Maximal Matching problem with predictions
// (paper Section 8.1): the two-round base algorithm, the reasonable
// initialization that additionally lets a node output ⊥ whenever all its
// neighbors are matched, the one-round clean-up, the 3-round-group
// measure-uniform proposal algorithm, and a collect-and-solve reference.
//
// Outputs and predictions are partner identifiers, with Unmatched (0)
// meaning ⊥.
package matching

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// Unmatched is the output/prediction for an unmatched node (the paper's ⊥).
const Unmatched = 0

// Memory is the per-node shared state across stages.
type Memory struct {
	// Pred is the predicted partner identifier, or Unmatched.
	Pred int
	// NbrPred maps neighbor ID to its announced prediction.
	NbrPred map[int]int
	// NbrOut maps neighbor ID to its output (partner or Unmatched);
	// presence means the neighbor has terminated.
	NbrOut map[int]int
	// R1Colors holds the edge colors (1-based classes, keyed by neighbor
	// ID) stored by the fault-tolerant edge coloring when it serves as part
	// 1 of the Parallel Template reference.
	R1Colors map[int]int
}

// NewMemory is the MemoryFactory for matching compositions.
func NewMemory(info runtime.NodeInfo, pred any) any {
	p := Unmatched
	if v, ok := pred.(int); ok {
		p = v
	}
	return &Memory{
		Pred:    p,
		NbrPred: make(map[int]int, len(info.NeighborIDs)),
		NbrOut:  make(map[int]int, len(info.NeighborIDs)),
	}
}

// LiveEdges implements linegraph.Host: the edges to still-active neighbors
// participate in the reference's edge coloring.
func (m *Memory) LiveEdges(info runtime.NodeInfo) []int {
	return m.ActiveNeighbors(info)
}

// StoreEdgeColors implements linegraph.Host.
func (m *Memory) StoreEdgeColors(colors map[int]int) { m.R1Colors = colors }

// ActiveNeighbors returns neighbors not known to have terminated.
func (m *Memory) ActiveNeighbors(info runtime.NodeInfo) []int {
	out := make([]int, 0, len(info.NeighborIDs))
	for _, nb := range info.NeighborIDs {
		if _, gone := m.NbrOut[nb]; !gone {
			out = append(out, nb)
		}
	}
	return out
}

// allNeighborsMatched reports whether every neighbor has terminated with a
// partner (so outputting ⊥ is safe and the partial solution stays
// extendable).
func (m *Memory) allNeighborsMatched(info runtime.NodeInfo) bool {
	for _, nb := range info.NeighborIDs {
		out, gone := m.NbrOut[nb]
		if !gone || out == Unmatched {
			return false
		}
	}
	return true
}

// predAnnounce carries the sender's predicted partner.
type predAnnounce struct{ Partner int }

// Bits sizes the message for CONGEST accounting.
func (predAnnounce) Bits() int { return 32 }

// matched announces that the sender terminates matched to Partner.
type matched struct{ Partner int }

// Bits sizes the message for CONGEST accounting.
func (matched) Bits() int { return 32 }

func (m *Memory) recordMatched(inbox []runtime.Msg) {
	for _, msg := range inbox {
		if mm, ok := msg.Payload.(matched); ok {
			m.NbrOut[msg.From] = mm.Partner
		}
	}
}

// Base returns the Maximal Matching Base Algorithm (Section 8.1): nodes
// exchange predictions; mutual predictions become matches, announced in
// round 2; a node predicted ⊥ whose neighbors all matched outputs ⊥.
// Two rounds.
func Base() core.Stage {
	return core.Stage{Name: "matching/base", Budget: 2, New: newInitLike(false)}
}

// Init returns the reasonable (non-pruning) initialization: additionally,
// any node all of whose neighbors are matched outputs ⊥, even if its own
// prediction was a partner.
func Init() core.Stage {
	return core.Stage{Name: "matching/init", Budget: 2, New: newInitLike(true)}
}

func newInitLike(relaxed bool) core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return &initMachine{mem: mem.(*Memory), relaxed: relaxed}
	}
}

type initMachine struct {
	mem     *Memory
	relaxed bool
}

func (m *initMachine) Send(c *core.StageCtx) []runtime.Out {
	switch c.StageRound() {
	case 1:
		return runtime.Broadcast(c.Info(), predAnnounce{Partner: m.mem.Pred})
	case 2:
		p := m.mem.Pred
		if p != Unmatched && p != c.ID() && m.isNeighbor(c.Info(), p) && m.mem.NbrPred[p] == c.ID() {
			outs := runtime.Broadcast(c.Info(), matched{Partner: p})
			c.Output(p)
			return outs
		}
	}
	return nil
}

func (m *initMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	switch c.StageRound() {
	case 1:
		for _, msg := range inbox {
			if pa, ok := msg.Payload.(predAnnounce); ok {
				m.mem.NbrPred[msg.From] = pa.Partner
			}
		}
	case 2:
		m.mem.recordMatched(inbox)
		eligible := m.mem.Pred == Unmatched || m.relaxed
		if eligible && m.mem.allNeighborsMatched(c.Info()) {
			// All neighbors terminated matched; nobody needs a notification.
			c.Output(Unmatched)
			return
		}
		c.Yield()
	}
}

func (m *initMachine) isNeighbor(info runtime.NodeInfo, id int) bool {
	for _, nb := range info.NeighborIDs {
		if nb == id {
			return true
		}
	}
	return false
}

// Cleanup returns the matching clean-up (Section 7.2 adapted per Section
// 8.1): in one round, every active node whose neighbors are all matched
// outputs ⊥; matches themselves complete within the measure-uniform
// algorithm's groups, so no pending pairs exist at group boundaries.
func Cleanup() core.Stage {
	return core.Stage{
		Name:   "matching/cleanup",
		Budget: 1,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &cleanupMachine{mem: mem.(*Memory)}
		},
	}
}

type cleanupMachine struct{ mem *Memory }

func (m *cleanupMachine) Send(c *core.StageCtx) []runtime.Out {
	if m.mem.allNeighborsMatched(c.Info()) {
		c.Output(Unmatched)
	}
	return nil
}

func (m *cleanupMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	m.mem.recordMatched(inbox)
	c.Yield()
}
