package matching_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

func runMatching(t *testing.T, g *graph.Graph, factory runtime.Factory, preds []int) *runtime.Result {
	t.Helper()
	var anyPreds []any
	if preds != nil {
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = p
		}
	}
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: anyPreds})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]int, g.N())
	for i, o := range res.Outputs {
		v, ok := o.(int)
		if !ok {
			t.Fatalf("node %d output %v (%T)", g.ID(i), o, o)
		}
		out[i] = v
	}
	if err := verify.Matching(g, out); err != nil {
		t.Fatalf("invalid matching: %v", err)
	}
	return res
}

func testGraphs() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(13))
	return map[string]*graph.Graph{
		"single":  graph.Line(1),
		"pair":    graph.Line(2),
		"line15":  graph.Line(15),
		"ring16":  graph.Ring(16),
		"star9":   graph.Star(9),
		"clique8": graph.Clique(8),
		"grid6x5": graph.Grid2D(6, 5),
		"gnp36":   graph.GNP(36, 0.12, rng),
		"tree25":  graph.RandomTree(25, rng),
		"paths":   graph.DisjointPaths(4, 5),
	}
}

func TestMeasureUniformSolo(t *testing.T) {
	for name, g := range testGraphs() {
		t.Run(name, func(t *testing.T) {
			res := runMatching(t, g, matching.Solo(matching.MeasureUniform(0)), nil)
			// Paper Section 8.1: at most 3*floor(s/2) rounds per component
			// (one extra group can be needed to let isolated leftovers
			// observe their last neighbor leaving).
			if limit := 3*(g.N()/2) + 3; res.Rounds > limit {
				t.Errorf("rounds %d > %d", res.Rounds, limit)
			}
		})
	}
}

func TestSimpleMatchingConsistency(t *testing.T) {
	for name, g := range testGraphs() {
		preds := predict.PerfectMatching(g)
		t.Run(name, func(t *testing.T) {
			res := runMatching(t, g, matching.SimpleGreedy(), preds)
			if res.Rounds > 2 {
				t.Errorf("consistency: got %d rounds, want <= 2", res.Rounds)
			}
			for i, o := range res.Outputs {
				if o.(int) != preds[i] {
					t.Errorf("node %d output %v, prediction %d", g.ID(i), o, preds[i])
				}
			}
		})
	}
}

func TestMatchingTemplatesAcrossErrors(t *testing.T) {
	factories := map[string]runtime.Factory{
		"simple-greedy":    matching.SimpleGreedy(),
		"simple-base":      matching.SimpleBase(),
		"simple-collect":   matching.SimpleCollect(),
		"consecutive-coll": matching.ConsecutiveCollect(),
	}
	rng := rand.New(rand.NewSource(99))
	for gname, g := range testGraphs() {
		for _, k := range []int{0, 1, 3, g.N()} {
			preds := predict.PerturbMatching(g, predict.PerfectMatching(g), k, rng)
			for fname, f := range factories {
				t.Run(gname+"/"+fname, func(t *testing.T) {
					runMatching(t, g, f, preds)
				})
			}
		}
	}
}

func TestMatchingDegradation(t *testing.T) {
	// Simple template with the measure-uniform algorithm: rounds <=
	// 3*floor(eta1/2) + base rounds + slack.
	rng := rand.New(rand.NewSource(7))
	for gname, g := range testGraphs() {
		for _, k := range []int{0, 1, 2, 4} {
			preds := predict.PerturbMatching(g, predict.PerfectMatching(g), k, rng)
			active := predict.MatchingBaseActive(g, preds)
			comps := predict.ErrorComponents(g, active)
			eta1 := predict.Eta1(comps)
			res := runMatching(t, g, matching.SimpleGreedy(), preds)
			if limit := 3*(eta1/2) + 2 + 3; res.Rounds > limit {
				t.Errorf("%s k=%d: rounds %d > 3*floor(eta1/2)+5 = %d (eta1=%d)",
					gname, k, res.Rounds, limit, eta1)
			}
		}
	}
}

func TestParallelColoringMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for name, g := range testGraphs() {
		for _, k := range []int{0, 1, 3, g.N()} {
			preds := predict.PerturbMatching(g, predict.PerfectMatching(g), k, rng)
			t.Run(name, func(t *testing.T) {
				res := runMatching(t, g, matching.ParallelColoring(), preds)
				eta1 := 0
				{
					active := predict.MatchingBaseActive(g, preds)
					eta1 = predict.Eta1(predict.ErrorComponents(g, active))
				}
				// Degradation side of the min: the measure-uniform lane
				// finishes small error components within 3*floor(eta1/2)+2
				// of the initialization; the reference side caps the rest.
				refBound := 2 + matching.EdgeColorRounds(g.D(), g.MaxDegree()) + 3 + 1 +
					2*(2*g.MaxDegree()-1) + 2
				if res.Rounds > 3*(eta1/2)+5 && res.Rounds > refBound {
					t.Errorf("k=%d: rounds %d exceed both 3*floor(eta1/2)+5 (%d) and ref bound (%d)",
						k, res.Rounds, 3*(eta1/2)+5, refBound)
				}
			})
		}
	}
}

func TestParallelColoringMatchingShuffledIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	g := graph.ShuffleIDs(graph.Grid2D(5, 6), 300, rng)
	for _, k := range []int{0, 2, 10, g.N()} {
		preds := predict.PerturbMatching(g, predict.PerfectMatching(g), k, rng)
		runMatching(t, g, matching.ParallelColoring(), preds)
	}
}

// TestParallelColoringReferenceTakesOver forces the reference path: on a
// long ascending-ID line the measure-uniform lane needs ~3n/2 rounds but the
// line-graph coloring of a Δ=2 graph finishes in a few dozen, so part 2 (the
// color-class matching) must produce the solution.
func TestParallelColoringReferenceTakesOver(t *testing.T) {
	n := 400
	g := graph.Line(n)
	preds := make([]int, n) // all ⊥: everything is one error component
	res := runMatching(t, g, matching.ParallelColoring(), preds)
	budget := matching.EdgeColorRounds(g.D(), g.MaxDegree())
	if res.Rounds <= budget {
		t.Fatalf("rounds %d <= R1 budget %d: part 2 never ran", res.Rounds, budget)
	}
	refBound := 2 + budget + 3 + 1 + 2*(2*g.MaxDegree()-1) + 4
	if res.Rounds > refBound {
		t.Errorf("rounds %d > reference bound %d", res.Rounds, refBound)
	}
}
