package matching

import (
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/linegraph"
	"repro/internal/predict"
	"repro/internal/problem"
	"repro/internal/runtime"
	"repro/internal/verify"
)

func init() { problem.Register(descriptor()) }

// descriptor registers maximal matching (Section 8.1): the template
// instantiations, the η₁ error measure, the distributed checker, and the
// Simple-Template healing machinery.
func descriptor() problem.Descriptor {
	return problem.Descriptor{
		Name:        "matching",
		Doc:         "maximal matching (Section 8.1)",
		OutputLabel: "partners",
		Preds: func(g *graph.Graph, aux any, k int, seed int64) any {
			return predict.PerturbMatching(g, predict.PerfectMatching(g), k, rand.New(rand.NewSource(seed)))
		},
		EncodePreds: problem.IntPredCodec("matching"),
		Errors: func(g *graph.Graph, aux any, preds any) (string, error) {
			p, ok := preds.([]int)
			if !ok {
				return "", fmt.Errorf("matching: predictions must be []int, got %T", preds)
			}
			active := predict.MatchingBaseActive(g, p)
			return fmt.Sprintf("eta1=%d", predict.Eta1(predict.ErrorComponents(g, active))), nil
		},
		Finalize: problem.IntFinalizer("matching", verify.Matching),
		Checker: func(sol problem.Solution) (runtime.Factory, []any, error) {
			return check.Matching(), problem.EncodeInts(sol.Node), nil
		},
		Heal: &problem.Heal{
			Verify:        verify.Matching,
			Carve:         heal.CarveMatching,
			UndecidedPred: Unmatched,
		},
		Algorithms: []problem.Algorithm{
			{
				Name: "greedy", Template: problem.TemplateSolo,
				Reference: "3-round-group proposal algorithm alone", Bound: "3*ceil(n/2)+O(1)",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return Solo(MeasureUniform(0)), nil },
			},
			{
				Name: "simple", Template: problem.TemplateSimple,
				Reference: "Init + proposal algorithm", Bound: "3*floor(eta1/2)+5",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleGreedy(), nil },
			},
			{
				Name: "collect", Template: problem.TemplateSimple,
				Reference: "Init + collect-and-solve", Bound: "min{3*floor(eta1/2)+5, n+3}",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleCollect(), nil },
			},
			{
				Name: "consecutive", Template: problem.TemplateConsecutive,
				Reference: "collect-and-solve", Bound: "2eta+O(1), robust",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return ConsecutiveCollect(), nil },
			},
			{
				Name: "parallel", Template: problem.TemplateParallel,
				Reference: "fault-tolerant line-graph coloring + color classes", Bound: "min{3*floor(eta1/2)+5, O(Delta^2 log* d)}",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return ParallelColoring(), nil },
				MaxRounds: func(g *graph.Graph) int {
					return linegraph.EngineCap(g.N(), g.D(), g.MaxDegree())
				},
			},
		},
	}
}
