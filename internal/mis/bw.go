package mis

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// BWGreedy returns the black/white alternating measure-uniform algorithm of
// Section 9.1, U_bw, obtained from the Greedy MIS Algorithm: 2-round phases
// run alternately on the black nodes (prediction 1) and the white nodes
// (prediction 0). In a phase for color c, every active color-c node whose
// identifier exceeds those of its active *same-color* neighbors joins the
// independent set and informs all its active neighbors, including those of
// the other color; any notified node leaves in the phase's second round
// (Greedy's clean-up is part of each phase). Its round complexity is at most
// twice Greedy's, but when the black and white components are much smaller
// than the error components — as on the Figure 2 grid — it is much faster.
//
// The stage requires neighbor predictions in shared memory, so it must
// follow Base or Init.
func BWGreedy(budget int) core.Stage {
	return core.Stage{
		Name:   "mis/bw-greedy",
		Budget: budget,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &bwMachine{mem: mem.(*Memory)}
		},
	}
}

type bwMachine struct {
	mem    *Memory
	gotOne bool
}

// phaseColor returns the prediction bit whose nodes act in the phase
// containing stage round r (black first), and whether r is the phase's
// joining round (true) or clean-up round (false).
func phaseColor(r int) (color int, joining bool) {
	phase := (r - 1) / 2
	if phase%2 == 0 {
		color = 1
	}
	return color, (r-1)%2 == 0
}

func (m *bwMachine) Send(c *core.StageCtx) []runtime.Out {
	color, joining := phaseColor(c.StageRound())
	if joining {
		if m.mem.Pred != color || m.gotOne {
			return nil
		}
		active := m.mem.ActiveNeighbors(c.Info())
		for _, nb := range active {
			if m.mem.NbrPred[nb] == color && nb > c.ID() {
				return nil
			}
		}
		return runtime.BroadcastTo(active, notifyThenOutput(c, 1))
	}
	if m.gotOne {
		return notifyAndOutput(c, m.mem, 0)
	}
	return nil
}

func (m *bwMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		if nt, ok := msg.Payload.(notify); ok {
			m.mem.NbrOut[msg.From] = nt.Bit
			if nt.Bit == 1 {
				m.gotOne = true
			}
		}
	}
}
