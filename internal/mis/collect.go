package mis

import (
	"sort"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/runtime"
)

// Collect returns the collect-and-solve LOCAL reference algorithm: every
// active node floods adjacency rows for exactly n rounds (by which time each
// node knows the entire subgraph induced by the nodes that entered the stage
// with it), then computes the canonical greedy-by-identifier MIS of its
// component locally and outputs its own bit.
//
// Its round complexity is exactly n+1 regardless of the input, so every node
// can compute the bound CollectBound from its static information — the
// property the Consecutive Template requires of its reference (Section 7.2).
// It exists to exercise the templates with a reference whose bound is known
// and simple; the decomposition reference in internal/decomp plays the role
// of the paper's sophisticated references.
func Collect() core.Stage {
	return core.Stage{
		Name: "mis/collect",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &collectMachine{
				mem:  mem.(*Memory),
				rows: map[int][]int{},
			}
		},
	}
}

// CollectBound is the round bound r(n) of Collect, computable by every node.
func CollectBound(info runtime.NodeInfo) int { return info.N + 1 }

// row carries newly learned adjacency rows during flooding. Arbitrarily
// large, so the algorithm is LOCAL-only.
type row struct {
	Entries map[int][]int
}

// Bits sizes the flooding batch for CONGEST accounting: one ID (32 bits)
// per key and per adjacency entry. The collect-and-solve reference is
// LOCAL-size by design; honest accounting keeps Result.Bits meaningful.
func (r row) Bits() int {
	n := 0
	for _, nbrs := range r.Entries {
		n += 32 * (1 + len(nbrs))
	}
	return n
}

type collectMachine struct {
	mem   *Memory
	rows  map[int][]int // id -> neighbor ids, learned so far
	fresh []int         // ids learned last round, to forward
}

func (m *collectMachine) Send(c *core.StageCtx) []runtime.Out {
	info := c.Info()
	if c.StageRound() == 1 {
		// Start by flooding our own row, restricted to neighbors that are
		// still active (terminated neighbors are not part of the remaining
		// problem; extendability guarantees solving without them is safe).
		mine := m.mem.ActiveNeighbors(info)
		m.rows[info.ID] = mine
		m.fresh = []int{info.ID}
	}
	if c.StageRound() > info.N {
		m.solveAndOutput(c)
		return nil
	}
	if len(m.fresh) == 0 {
		return nil
	}
	entries := make(map[int][]int, len(m.fresh))
	for _, id := range m.fresh {
		entries[id] = m.rows[id]
	}
	m.fresh = nil
	return runtime.BroadcastTo(m.mem.ActiveNeighbors(info), row{Entries: entries})
}

func (m *collectMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		r, ok := msg.Payload.(row)
		if !ok {
			continue
		}
		for id, nbrs := range r.Entries {
			if _, known := m.rows[id]; !known {
				m.rows[id] = nbrs
				m.fresh = append(m.fresh, id)
			}
		}
	}
	sort.Ints(m.fresh)
}

// solveAndOutput reconstructs the known component and outputs this node's
// bit of its canonical MIS.
func (m *collectMachine) solveAndOutput(c *core.StageCtx) {
	ids := make([]int, 0, len(m.rows))
	for id := range m.rows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	b := graph.NewBuilder(len(ids))
	b.SetDomain(c.Info().D)
	for i, id := range ids {
		b.SetID(i, id)
	}
	for i, id := range ids {
		for _, nb := range m.rows[id] {
			if j, ok := idx[nb]; ok && i < j {
				b.AddEdge(i, j)
			}
		}
	}
	sub := b.MustBuild()
	out := exact.GreedyMISByID(sub)
	c.Output(out[idx[c.ID()]])
}
