package mis

import (
	"math/bits"

	"repro/internal/core"
	"repro/internal/runtime"
)

// ColorToMIS returns part 2 of the two-part reference of Corollary 12: given
// the proper coloring stored by part 1, color classes are added to the
// independent set one per round, augmented with the Greedy MIS rule — an
// active node with a color greater than the current class, no active
// neighbor in the current class, and an identifier larger than all its
// active neighbors' also joins — which makes the combined algorithm
// η₂-degrading (a node joins at least every other round in every remaining
// component).
func ColorToMIS() core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return &colorToMISMachine{mem: mem.(*Memory), nbrColor: map[int]int{}}
	}
}

// myColor announces the node's stored color at the start of part 2.
type myColor struct{ C int }

// Bits sizes the message for CONGEST accounting.
func (m myColor) Bits() int { return bits.Len(uint(m.C)) + 1 }

type colorToMISMachine struct {
	mem      *Memory
	nbrColor map[int]int
	pending0 bool
}

func (m *colorToMISMachine) Send(c *core.StageCtx) []runtime.Out {
	if c.StageRound() == 1 {
		color, _ := m.mem.LoadColor()
		return runtime.BroadcastTo(m.mem.ActiveNeighbors(c.Info()), myColor{C: color})
	}
	if m.pending0 {
		return notifyAndOutput(c, m.mem, 0)
	}
	i := c.StageRound() - 1 // the color class considered this round
	if m.joins(c.Info(), i) {
		return runtime.BroadcastTo(m.mem.ActiveNeighbors(c.Info()), notifyThenOutput(c, 1))
	}
	return nil
}

// joins decides whether the node enters the independent set in class round i.
func (m *colorToMISMachine) joins(info runtime.NodeInfo, i int) bool {
	color, _ := m.mem.LoadColor()
	if color == i {
		return true
	}
	if color < i {
		return false
	}
	// Greedy augmentation (Corollary 12): no active neighbor holds class i
	// and this node's identifier beats all active neighbors'.
	for _, nb := range m.mem.ActiveNeighbors(info) {
		if m.nbrColor[nb] == i || nb > info.ID {
			return false
		}
	}
	return true
}

func (m *colorToMISMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		switch p := msg.Payload.(type) {
		case myColor:
			m.nbrColor[msg.From] = p.C
		case notify:
			m.mem.NbrOut[msg.From] = p.Bit
			if p.Bit == 1 {
				m.pending0 = true
			}
		}
	}
}
