package mis

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// Greedy returns the Greedy MIS Algorithm (paper Algorithm 1), the
// measure-uniform algorithm used throughout the templates. In each odd
// stage round, every node whose identifier exceeds those of all its active
// neighbors notifies them, outputs 1, and terminates; in the following even
// round, notified nodes output 0 and terminate. The partial solution at the
// end of every even round is extendable, so interrupting the stage at an
// even budget is always safe.
//
// Its round complexity on a component S is at most μ₁(S) (Lemma 1) and at
// most μ₂(S)+1 (Lemma 2); it is measure-uniform with respect to both — the
// code consults no graph parameter.
func Greedy() core.Stage { return GreedyBudget(0) }

// GreedyBudget is Greedy interrupted after the given number of rounds (0 for
// unbounded); budgets should be even so the interruption point carries an
// extendable partial solution.
func GreedyBudget(budget int) core.Stage {
	return core.Stage{
		Name:   "mis/greedy",
		Budget: budget,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &greedyMachine{mem: mem.(*Memory)}
		},
	}
}

type greedyMachine struct {
	mem    *Memory
	gotOne bool
}

func (m *greedyMachine) Send(c *core.StageCtx) []runtime.Out {
	if c.StageRound()%2 == 1 {
		active := m.mem.ActiveNeighbors(c.Info())
		for _, nb := range active {
			if nb > c.ID() {
				return nil
			}
		}
		return runtime.BroadcastTo(active, notifyThenOutput(c, 1))
	}
	if m.gotOne {
		return notifyAndOutput(c, m.mem, 0)
	}
	return nil
}

func (m *greedyMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	for _, msg := range inbox {
		if nt, ok := msg.Payload.(notify); ok {
			m.mem.NbrOut[msg.From] = nt.Bit
			if nt.Bit == 1 {
				m.gotOne = true
			}
		}
	}
}

// notifyThenOutput sets the node's final output and returns the notification
// payload to broadcast in the same round.
func notifyThenOutput(c *core.StageCtx, bit int) notify {
	c.Output(bit)
	return notify{Bit: bit}
}
