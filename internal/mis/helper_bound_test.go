package mis_test

import (
	"repro/internal/decomp"
	"repro/internal/runtime"
)

// decompBound mirrors the budget computation of ConsecutiveDecomp.
func decompBound(info runtime.NodeInfo) int {
	b := decomp.Bound(info) + 1
	if b%2 == 1 {
		b++
	}
	return b
}
