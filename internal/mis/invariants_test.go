package mis_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// observeRun executes factory and hands every end-of-round snapshot (as a
// partial output vector with Undecided for active nodes) to check.
func observeRun(t *testing.T, g *graph.Graph, factory runtime.Factory, preds []int,
	check func(round int, partial []int)) {
	t.Helper()
	var anyPreds []any
	if preds != nil {
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = p
		}
	}
	_, err := runtime.Run(runtime.Config{
		Graph:       g,
		Factory:     factory,
		Predictions: anyPreds,
		Observer: func(round int, outputs []any, active []bool) {
			partial := make([]int, len(outputs))
			for i := range outputs {
				if active[i] {
					partial[i] = verify.Undecided
				} else if v, ok := outputs[i].(int); ok {
					partial[i] = v
				} else {
					partial[i] = verify.Undecided
				}
			}
			check(round, partial)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGreedyExtendableAtEvenRounds verifies the extendability invariant the
// templates rely on: the Greedy MIS Algorithm's partial solution is an
// extendable partial solution at the end of every even round (Section 6).
func TestGreedyExtendableAtEvenRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(40, 0.12, rng)
		observeRun(t, g, mis.Solo(mis.Greedy()), nil, func(round int, partial []int) {
			if round%2 != 0 {
				return
			}
			if err := verify.MISPartialExtendable(g, partial); err != nil {
				t.Errorf("trial %d round %d: %v", trial, round, err)
			}
		})
	}
}

// TestInitLeavesExtendablePartial verifies that both initialization
// algorithms leave extendable partial solutions (Section 4).
func TestInitLeavesExtendablePartial(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(35, 0.15, rng)
		preds := predict.FlipProb(predict.PerfectMIS(g), 0.3, rng)
		for name, f := range map[string]runtime.Factory{
			"base": mis.SimpleBase(),
			"init": mis.SimpleGreedy(),
		} {
			observeRun(t, g, f, preds, func(round int, partial []int) {
				if round != 3 {
					return
				}
				if err := verify.MISPartialExtendable(g, partial); err != nil {
					t.Errorf("trial %d %s: %v", trial, name, err)
				}
			})
		}
	}
}

// TestInitContainsBase verifies the "reasonable initialization" property:
// the partial solution of the Initialization Algorithm contains the Base
// Algorithm's (Section 4).
func TestInitContainsBase(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 20; trial++ {
		g := graph.GNP(30, 0.2, rng)
		preds := predict.FlipProb(predict.PerfectMIS(g), 0.35, rng)
		var basePartial, initPartial []int
		observeRun(t, g, mis.SimpleBase(), preds, func(round int, partial []int) {
			if round == 3 {
				basePartial = append([]int(nil), partial...)
			}
		})
		observeRun(t, g, mis.SimpleGreedy(), preds, func(round int, partial []int) {
			if round == 3 {
				initPartial = append([]int(nil), partial...)
			}
		})
		for i := range basePartial {
			if basePartial[i] != verify.Undecided && initPartial[i] != basePartial[i] {
				t.Fatalf("trial %d node %d: base decided %d, init decided %d",
					trial, g.ID(i), basePartial[i], initPartial[i])
			}
		}
	}
}

// TestBWGreedyExtendableAtEvenRounds does the same for the black/white
// alternating algorithm of Section 9.1.
func TestBWGreedyExtendableAtEvenRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 10; trial++ {
		g := graph.Grid2D(6, 6)
		preds := predict.FlipProb(predict.GridBW(6, 6), 0.1, rng)
		observeRun(t, g, mis.SimpleBW(), preds, func(round int, partial []int) {
			if round <= 3 || (round-3)%2 != 0 {
				return
			}
			if err := verify.MISPartialExtendable(g, partial); err != nil {
				t.Errorf("trial %d round %d: %v", trial, round, err)
			}
		})
	}
}

// TestGreedyCONGEST: the Greedy MIS family is a CONGEST algorithm — every
// message fits in O(log n) bits (here: constant payload + lane header).
func TestGreedyCONGEST(t *testing.T) {
	g := graph.GNP(60, 0.1, rand.New(rand.NewSource(65)))
	preds := predict.FlipBits(predict.PerfectMIS(g), 10, rand.New(rand.NewSource(66)))
	for name, f := range map[string]runtime.Factory{
		"greedy-solo": mis.Solo(mis.Greedy()),
		"simple":      mis.SimpleGreedy(),
		"bw":          mis.SimpleBW(),
		"cleanup-seq": mis.ConsecutiveCollect(), // collect part is LOCAL
	} {
		res := runMIS(t, g, f, preds, false)
		switch name {
		case "cleanup-seq":
			// Contains the LOCAL collect reference only if it is reached;
			// with small eta it never is, so accept either.
			if res.MaxMsgBits > 16 && res.MaxMsgBits != -1 {
				t.Errorf("%s: MaxMsgBits=%d", name, res.MaxMsgBits)
			}
		default:
			if res.MaxMsgBits < 0 || res.MaxMsgBits > 16 {
				t.Errorf("%s: MaxMsgBits=%d, want small and sized", name, res.MaxMsgBits)
			}
		}
	}
}

// TestLubyManySeeds: Luby's algorithm yields a valid MIS for every seed.
func TestLubyManySeeds(t *testing.T) {
	g := graph.GNP(50, 0.12, rand.New(rand.NewSource(67)))
	for seed := int64(0); seed < 20; seed++ {
		runMIS(t, g, mis.Solo(mis.Luby(seed)), nil, false)
	}
}

// TestQuickSimpleTemplateAlwaysValid property-checks the full pipeline over
// random graphs and random predictions.
func TestQuickSimpleTemplateAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN uint8, p8 uint8) bool {
		n := int(rawN%40) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.15, rng)
		preds := make([]int, n)
		for i := range preds {
			if rng.Float64() < float64(p8)/255 {
				preds[i] = 1
			}
		}
		var anyPreds []any
		anyPreds = make([]any, n)
		for i, p := range preds {
			anyPreds[i] = p
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: mis.SimpleGreedy(), Predictions: anyPreds,
		})
		if err != nil {
			return false
		}
		out := make([]int, n)
		for i, o := range res.Outputs {
			v, ok := o.(int)
			if !ok {
				return false
			}
			out[i] = v
		}
		return verify.MIS(g, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickParallelTemplateAlwaysValid does the same for the Corollary 12
// algorithm, whose moving parts (fault-tolerant coloring + greedy-augmented
// conversion + crash semantics) are the most intricate in the repository.
func TestQuickParallelTemplateAlwaysValid(t *testing.T) {
	f := func(seed int64, rawN uint8, p8 uint8) bool {
		n := int(rawN%30) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.2, rng)
		preds := make([]any, n)
		for i := range preds {
			bit := 0
			if rng.Float64() < float64(p8)/255 {
				bit = 1
			}
			preds[i] = bit
		}
		res, err := runtime.Run(runtime.Config{
			Graph: g, Factory: mis.ParallelColoring(), Predictions: preds,
		})
		if err != nil {
			return false
		}
		out := make([]int, n)
		for i, o := range res.Outputs {
			v, ok := o.(int)
			if !ok {
				return false
			}
			out[i] = v
		}
		return verify.MIS(g, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestPruningProperty: with correct predictions, both initializations output
// exactly the predictions (the pruning property of Section 4) — already
// covered for Init by the consistency test; here for arbitrary *correct*
// predicted solutions, not just the canonical one.
func TestPruningProperty(t *testing.T) {
	g := graph.Ring(9)
	// A different valid MIS of C9 than the canonical greedy one.
	preds := []int{0, 1, 0, 1, 0, 1, 0, 0, 1}
	if err := verify.MIS(g, preds); err != nil {
		t.Fatalf("test fixture invalid: %v", err)
	}
	res := runMIS(t, g, mis.SimpleGreedy(), preds, false)
	for i, o := range res.Outputs {
		if o.(int) != preds[i] {
			t.Errorf("node %d output %v, predicted %d", g.ID(i), o, preds[i])
		}
	}
	if res.Rounds > 3 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

// TestInterruptAnywhereStaysValid interrupts Greedy at every even budget and
// completes with clean-up + collect; the final output must be a valid MIS no
// matter where the interruption lands. This is the Consecutive Template's
// switching machinery exercised directly (with realistic budgets the
// measure-uniform stage provably finishes first, since its round bound mu1
// never exceeds the collect reference's n+1).
func TestInterruptAnywhereStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	g := graph.GNP(24, 0.15, rng)
	preds := predict.FlipProb(predict.PerfectMIS(g), 0.5, rng)
	for budget := 2; budget <= 16; budget += 2 {
		factory := core.Sequence(mis.NewMemory,
			mis.Init(), mis.GreedyBudget(budget), mis.Cleanup(), mis.Collect())
		runMIS(t, g, factory, preds, false)
	}
}

// TestConsecutiveDecompActuallySwitches: on a long adversarial line the
// Greedy lane exceeds the decomposition reference's declared bound, so the
// template interrupts it, runs the clean-up, and lets the reference finish —
// the switch that Lemma 8's second case describes.
func TestConsecutiveDecompActuallySwitches(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance; skipped with -short")
	}
	n := 3000
	g := graph.Line(n)
	info := runtime.NodeInfo{N: n, D: n, Delta: 2}
	bound := decompBound(info)
	if bound >= n {
		t.Fatalf("test premise broken: decomp bound %d >= n %d", bound, n)
	}
	preds := predict.Uniform(n, 1)
	var anyPreds []any
	anyPreds = make([]any, n)
	for i, p := range preds {
		anyPreds[i] = p
	}
	res, err := runtime.Run(runtime.Config{
		Graph:       g,
		Factory:     mis.ConsecutiveDecomp(31),
		Predictions: anyPreds,
		MaxRounds:   16 * n,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, n)
	for i, o := range res.Outputs {
		out[i] = o.(int)
	}
	if err := verify.MIS(g, out); err != nil {
		t.Fatal(err)
	}
	// The run must have gone past the interruption point (3 + budget) and
	// finished well before Greedy's ~n rounds would allow on its own;
	// crucially it must also stay within the robustness bound O(r).
	if res.Rounds <= bound {
		t.Errorf("rounds %d <= budget %d: the reference never ran", res.Rounds, bound)
	}
	if res.Rounds > 3*bound+8 {
		t.Errorf("rounds %d > 3*bound+8 = %d: robustness violated", res.Rounds, 3*bound+8)
	}
}
