package mis

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/runtime"
)

// Luby returns Luby's randomized MIS algorithm [48], used by the Section 10
// discussion of randomized references. Each 3-round phase: nodes draw fresh
// random priorities and exchange them; local maxima (ties broken by
// identifier) join the independent set, notify, and terminate; notified
// nodes then output 0 and terminate.
//
// The algorithm is randomized but the run is reproducible: node i draws from
// a PRNG seeded with seed and its identifier.
func Luby(seed int64) core.Stage {
	return core.Stage{
		Name: "mis/luby",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &lubyMachine{
				mem: mem.(*Memory),
				rng: rand.New(rand.NewSource(seed ^ (int64(info.ID) * 0x5851F42D4C957F2D))),
			}
		},
	}
}

// prio carries a phase priority draw.
type prio struct{ V uint64 }

// Bits sizes the message for CONGEST accounting (a Θ(log n)-bit priority
// suffices in theory; we account the full 64-bit draw).
func (prio) Bits() int { return 64 }

type lubyMachine struct {
	mem    *Memory
	rng    *rand.Rand
	myPrio uint64
	isMax  bool
	gotOne bool
}

func (m *lubyMachine) Send(c *core.StageCtx) []runtime.Out {
	switch c.StageRound() % 3 {
	case 1: // draw and exchange priorities
		m.myPrio = m.rng.Uint64()
		m.isMax = true
		return runtime.BroadcastTo(m.mem.ActiveNeighbors(c.Info()), prio{V: m.myPrio})
	case 2: // local maxima join
		if m.isMax {
			return runtime.BroadcastTo(m.mem.ActiveNeighbors(c.Info()), notifyThenOutput(c, 1))
		}
	case 0: // notified nodes leave
		if m.gotOne {
			return notifyAndOutput(c, m.mem, 0)
		}
	}
	return nil
}

func (m *lubyMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	switch c.StageRound() % 3 {
	case 1:
		for _, msg := range inbox {
			p, ok := msg.Payload.(prio)
			if !ok {
				continue
			}
			if p.V > m.myPrio || (p.V == m.myPrio && msg.From > c.ID()) {
				m.isMax = false
			}
		}
	default:
		for _, msg := range inbox {
			if nt, ok := msg.Payload.(notify); ok {
				m.mem.NbrOut[msg.From] = nt.Bit
				if nt.Bit == 1 {
					m.gotOne = true
				}
			}
		}
	}
}
