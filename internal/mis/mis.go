// Package mis implements the paper's Maximal Independent Set algorithms with
// predictions: the MIS Base Algorithm and MIS Initialization Algorithm
// (Section 4), the one-round clean-up (Section 7.2), the Greedy MIS
// measure-uniform algorithm (Algorithm 1), Luby's randomized algorithm
// (Section 10), a collect-and-solve LOCAL reference, the coloring-based
// two-part reference of Corollary 12, and the black/white alternating
// measure-uniform algorithm of Section 9.1 — together with ready-made
// instantiations of the four templates.
package mis

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// Memory is the per-node shared state that persists across stages: the
// node's prediction, the predictions its neighbors announced during
// initialization, and the outputs of neighbors that have terminated. It also
// carries the color computed by part 1 of the coloring-based reference for
// part 2 (the Parallel template's "locally stored outputs").
type Memory struct {
	// Pred is the node's own prediction bit.
	Pred int
	// NbrPred maps neighbor ID to its announced prediction.
	NbrPred map[int]int
	// NbrOut maps neighbor ID to its output bit; presence means the neighbor
	// has terminated.
	NbrOut map[int]int
	// Color and Palette are part 1's locally stored coloring result.
	Color, Palette int
}

// NewMemory is the MemoryFactory for all MIS compositions.
func NewMemory(info runtime.NodeInfo, pred any) any {
	bit := 0
	if p, ok := pred.(int); ok {
		bit = p
	}
	return &Memory{
		Pred:    bit,
		NbrPred: make(map[int]int, len(info.NeighborIDs)),
		NbrOut:  make(map[int]int, len(info.NeighborIDs)),
	}
}

// StoreColor implements the color store used by reference part 1.
func (m *Memory) StoreColor(color, palette int) {
	m.Color, m.Palette = color, palette
}

// LoadColor returns part 1's stored color and palette size.
func (m *Memory) LoadColor() (color, palette int) {
	return m.Color, m.Palette
}

// RecordNeighborOutput notes that a neighbor terminated with the given
// output bit; it satisfies the memory interface of the decomposition
// reference.
func (m *Memory) RecordNeighborOutput(id, bit int) {
	m.NbrOut[id] = bit
}

// ActiveNeighbors returns the IDs of neighbors not known to have terminated.
func (m *Memory) ActiveNeighbors(info runtime.NodeInfo) []int {
	out := make([]int, 0, len(info.NeighborIDs))
	for _, nb := range info.NeighborIDs {
		if _, gone := m.NbrOut[nb]; !gone {
			out = append(out, nb)
		}
	}
	return out
}

// hasOutNeighbor reports whether some terminated neighbor output bit.
func (m *Memory) hasOutNeighbor(bit int) bool {
	for _, b := range m.NbrOut {
		if b == bit {
			return true
		}
	}
	return false
}

// notify is the message a node sends just before terminating: its output
// bit, as the paper's "inform their active neighbors about their output
// values".
type notify struct{ Bit int }

// Bits sizes the message for CONGEST accounting.
func (notify) Bits() int { return 2 }

// predMsg announces the sender's prediction (initialization round 1).
type predMsg struct{ Bit int }

// Bits sizes the message for CONGEST accounting.
func (predMsg) Bits() int { return 2 }

// recordNotifies folds termination notifications into memory.
func recordNotifies(mem *Memory, inbox []runtime.Msg) {
	for _, m := range inbox {
		if nt, ok := m.Payload.(notify); ok {
			mem.NbrOut[m.From] = nt.Bit
		}
	}
}

// notifyAndOutput broadcasts the node's output bit to its active neighbors
// and terminates with that output.
func notifyAndOutput(c *core.StageCtx, mem *Memory, bit int) []runtime.Out {
	outs := runtime.BroadcastTo(mem.ActiveNeighbors(c.Info()), notify{Bit: bit})
	c.Output(bit)
	return outs
}
