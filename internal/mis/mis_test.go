package mis_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// runMIS executes a factory on g with the given predictions and returns the
// result after verifying the output is a maximal independent set.
func runMIS(t *testing.T, g *graph.Graph, factory runtime.Factory, preds []int, parallel bool) *runtime.Result {
	t.Helper()
	var anyPreds []any
	if preds != nil {
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = p
		}
	}
	res, err := runtime.Run(runtime.Config{
		Graph:       g,
		Factory:     factory,
		Predictions: anyPreds,
		Parallel:    parallel,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]int, g.N())
	for i, o := range res.Outputs {
		bit, ok := o.(int)
		if !ok {
			t.Fatalf("node %d output %v (%T), want int", g.ID(i), o, o)
		}
		out[i] = bit
	}
	if err := verify.MIS(g, out); err != nil {
		t.Fatalf("invalid MIS: %v", err)
	}
	return res
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return map[string]*graph.Graph{
		"single":    graph.Line(1),
		"pair":      graph.Line(2),
		"line16":    graph.Line(16),
		"line64":    graph.Line(64),
		"ring17":    graph.Ring(17),
		"star12":    graph.Star(12),
		"clique9":   graph.Clique(9),
		"grid8x8":   graph.Grid2D(8, 8),
		"wheel8":    graph.WheelFk(8),
		"gnp40":     graph.GNP(40, 0.15, rng),
		"gnp60":     graph.GNP(60, 0.08, rng),
		"tree33":    graph.RandomTree(33, rng),
		"bipart5x7": graph.CompleteBipartite(5, 7),
		"hcube4":    graph.Hypercube(4),
		"paths":     graph.DisjointPaths(5, 7),
		"shuffled":  graph.ShuffleIDs(graph.Grid2D(6, 6), 100, rng),
	}
}

func perturbedPreds(g *graph.Graph, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	return predict.FlipBits(predict.PerfectMIS(g), k, rng)
}

func TestGreedySoloProducesMIS(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			res := runMIS(t, g, mis.Solo(mis.Greedy()), nil, false)
			if res.Rounds > g.N()+1 {
				t.Errorf("greedy took %d rounds on %d nodes, want <= n+1", res.Rounds, g.N())
			}
		})
	}
}

func TestSimpleGreedyAcrossErrorLevels(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, k := range []int{0, 1, 3, g.N() / 2, g.N()} {
			preds := perturbedPreds(g, k, int64(k)+11)
			t.Run(name, func(t *testing.T) {
				runMIS(t, g, mis.SimpleGreedy(), preds, false)
			})
		}
	}
}

func TestSimpleGreedyConsistency(t *testing.T) {
	// With error-free predictions, every algorithm built on the MIS
	// Initialization Algorithm terminates in exactly 3 rounds.
	for name, g := range testGraphs(t) {
		preds := predict.PerfectMIS(g)
		t.Run(name, func(t *testing.T) {
			res := runMIS(t, g, mis.SimpleGreedy(), preds, false)
			if res.Rounds > 3 {
				t.Errorf("consistency: got %d rounds, want <= 3", res.Rounds)
			}
			// The outputs must equal the predictions (pruning property).
			for i, o := range res.Outputs {
				if o.(int) != preds[i] {
					t.Errorf("node %d output %v, prediction %d", g.ID(i), o, preds[i])
				}
			}
		})
	}
}

func TestSimpleGreedyDegradationBound(t *testing.T) {
	// Observation 7 with Lemmas 1 and 2: rounds <= eta1 + 3 and <= eta2 + 4.
	for name, g := range testGraphs(t) {
		for _, k := range []int{0, 1, 2, 5, g.N() / 3} {
			preds := perturbedPreds(g, k, int64(3*k)+5)
			active := predict.MISBaseActive(g, preds)
			comps := predict.ErrorComponents(g, active)
			eta1 := predict.Eta1(comps)
			eta2, err := predict.Eta2(comps)
			if err != nil {
				t.Fatalf("eta2: %v", err)
			}
			res := runMIS(t, g, mis.SimpleGreedy(), preds, false)
			if res.Rounds > eta1+3 {
				t.Errorf("%s k=%d: rounds %d > eta1+3 = %d", name, k, res.Rounds, eta1+3)
			}
			if res.Rounds > eta2+4 {
				t.Errorf("%s k=%d: rounds %d > eta2+4 = %d", name, k, res.Rounds, eta2+4)
			}
		}
	}
}

func TestTemplatesAgreeOnValidity(t *testing.T) {
	factories := map[string]runtime.Factory{
		"simple-greedy":      mis.SimpleGreedy(),
		"simple-base":        mis.SimpleBase(),
		"simple-bw":          mis.SimpleBW(),
		"simple-collect":     mis.SimpleCollect(),
		"simple-luby":        mis.SimpleLuby(5),
		"consecutive-coll":   mis.ConsecutiveCollect(),
		"consecutive-decomp": mis.ConsecutiveDecomp(5),
		"interleaved-decomp": mis.InterleavedDecomp(5),
		"parallel-coloring":  mis.ParallelColoring(),
	}
	for gname, g := range testGraphs(t) {
		for _, k := range []int{0, 2, g.N()} {
			preds := perturbedPreds(g, k, int64(k)+29)
			for fname, f := range factories {
				t.Run(gname+"/"+fname, func(t *testing.T) {
					runMIS(t, g, f, preds, false)
				})
			}
		}
	}
}

func TestParallelEngineMatchesSequential(t *testing.T) {
	for gname, g := range testGraphs(t) {
		preds := perturbedPreds(g, g.N()/2, 3)
		for fname, f := range map[string]runtime.Factory{
			"simple":      mis.SimpleGreedy(),
			"parallel":    mis.ParallelColoring(),
			"bw":          mis.SimpleBW(),
			"luby":        mis.SimpleLuby(3),
			"collect":     mis.SimpleCollect(),
			"consecutive": mis.ConsecutiveDecomp(3),
			"interleaved": mis.InterleavedDecomp(3),
		} {
			t.Run(gname+"/"+fname, func(t *testing.T) {
				seq := runMIS(t, g, f, preds, false)
				par := runMIS(t, g, f, preds, true)
				if seq.Rounds != par.Rounds {
					t.Fatalf("rounds differ: sequential %d, parallel %d", seq.Rounds, par.Rounds)
				}
				for i := range seq.Outputs {
					if seq.Outputs[i] != par.Outputs[i] {
						t.Fatalf("output %d differs: %v vs %v", i, seq.Outputs[i], par.Outputs[i])
					}
				}
			})
		}
	}
}

func TestParallelColoringBound(t *testing.T) {
	// Corollary 12: rounds <= min{eta2 + 4, O(Delta + log* d)}; in this
	// implementation the second term is 3 + AlignUp(vcolor.Rounds, 2) +
	// palette + 2 or so. We check the eta2 + 4 side, which is the paper's
	// headline degradation bound.
	for name, g := range testGraphs(t) {
		for _, k := range []int{0, 1, 3} {
			preds := perturbedPreds(g, k, int64(k)+41)
			active := predict.MISBaseActive(g, preds)
			comps := predict.ErrorComponents(g, active)
			eta2, err := predict.Eta2(comps)
			if err != nil {
				t.Fatalf("eta2: %v", err)
			}
			res := runMIS(t, g, mis.ParallelColoring(), preds, false)
			if res.Rounds > eta2+4 {
				t.Errorf("%s k=%d: rounds %d > eta2+4 = %d", name, k, res.Rounds, eta2+4)
			}
		}
	}
}
