package mis

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/check"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/heal"
	"repro/internal/predict"
	"repro/internal/problem"
	"repro/internal/runtime"
	"repro/internal/verify"
)

func init() { problem.Register(descriptor()) }

// descriptor registers maximal independent set: every template instantiation
// of Sections 5–7 and 9.1–10, the MIS error measures, the two-round
// distributed checker, and the Simple-Template healing machinery.
func descriptor() problem.Descriptor {
	return problem.Descriptor{
		Name:        "mis",
		Doc:         "maximal independent set (Sections 5-7, 9.1, 10)",
		OutputLabel: "in-set",
		Preds: func(g *graph.Graph, aux any, k int, seed int64) any {
			return predict.FlipBits(predict.PerfectMIS(g), k, rand.New(rand.NewSource(seed)))
		},
		EncodePreds: problem.IntPredCodec("mis"),
		Errors: func(g *graph.Graph, aux any, preds any) (string, error) {
			p, ok := preds.([]int)
			if !ok {
				return "", fmt.Errorf("mis: predictions must be []int, got %T", preds)
			}
			active := predict.MISBaseActive(g, p)
			comps := predict.ErrorComponents(g, active)
			eta2, err := predict.Eta2(comps)
			if errors.Is(err, exact.ErrTooLarge) {
				eta2 = -1
			} else if err != nil {
				return "", err
			}
			return fmt.Sprintf("eta1=%d eta2=%d eta_bw=%d components=%d",
				predict.Eta1(comps), eta2, predict.EtaBW(g, p, active), len(comps)), nil
		},
		Finalize: problem.IntFinalizer("mis", verify.MIS),
		Checker: func(sol problem.Solution) (runtime.Factory, []any, error) {
			return check.MIS(), problem.EncodeInts(sol.Node), nil
		},
		Heal: &problem.Heal{
			Verify:        verify.MIS,
			Carve:         heal.CarveMIS,
			UndecidedPred: 0,
		},
		Algorithms: []problem.Algorithm{
			{
				Name: "greedy", Template: problem.TemplateSolo,
				Reference: "Greedy MIS (Algorithm 1) alone", Bound: "mu1 <= n",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return Solo(Greedy()), nil },
			},
			{
				Name: "simple", Template: problem.TemplateSimple,
				Reference: "Init + Greedy", Bound: "eta1+3 and eta2+4",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleGreedy(), nil },
			},
			{
				Name: "base", Template: problem.TemplateSimple,
				Reference: "Base + Greedy", Bound: "eta1+3",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleBase(), nil },
			},
			{
				Name: "bw", Template: problem.TemplateSimple,
				Reference: "Init + U_bw (Section 9.1)", Bound: "O(eta_bw)",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleBW(), nil },
			},
			{
				Name: "luby", Template: problem.TemplateSimple,
				Reference: "Init + Luby", Bound: "O(log n) w.h.p.", Seeded: true,
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleLuby(c.Seed), nil },
			},
			{
				Name: "collect", Template: problem.TemplateSimple,
				Reference: "Init + collect-and-solve", Bound: "min{eta1+3, n+3}",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleCollect(), nil },
			},
			{
				Name: "uniform", Template: problem.TemplateSimple,
				Reference: "Init + Delta-doubling coloring (Section 7.1)", Bound: "O(f(Delta') + log Delta' log* d)",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return SimpleUniform(), nil },
				MaxRounds: func(g *graph.Graph) int {
					return UniformMaxRounds(runtime.NodeInfo{N: g.N(), D: g.D(), Delta: g.MaxDegree()})
				},
			},
			{
				Name: "consecutive", Template: problem.TemplateConsecutive,
				Reference: "collect-and-solve", Bound: "2eta+O(1), robust",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return ConsecutiveCollect(), nil },
			},
			{
				Name: "decomp", Template: problem.TemplateConsecutive,
				Reference: "MPX decomposition", Bound: "2eta+O(1), robust", Seeded: true,
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return ConsecutiveDecomp(c.Seed), nil },
			},
			{
				Name: "interleaved", Template: problem.TemplateInterleaved,
				Reference: "MPX decomposition", Bound: "Corollary 10", Seeded: true,
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return InterleavedDecomp(c.Seed), nil },
			},
			{
				Name: "parallel", Template: problem.TemplateParallel,
				Reference: "fault-tolerant Linial + color classes (Corollary 12)", Bound: "min{eta2+4, O(Delta^2 log* d)}",
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return ParallelColoring(), nil },
			},
			{
				Name: "lubysolo", Template: problem.TemplateSolo,
				Reference: "Luby alone (randomized baseline)", Bound: "O(log n) w.h.p.", Seeded: true,
				Build: func(c problem.BuildCtx) (runtime.Factory, error) { return Solo(Luby(c.Seed)), nil },
			},
		},
	}
}
