package mis

import (
	"repro/internal/core"
	"repro/internal/runtime"
)

// Base returns the MIS Base Algorithm (Section 4), the 3-round pruning
// algorithm that defines the problem's error components: round 1 exchanges
// predictions; the nodes with prediction 1 all of whose neighbors predict 0
// form the independent set I; round 2 they notify, output 1, and terminate;
// round 3 their neighbors notify, output 0, and terminate.
func Base() core.Stage {
	return core.Stage{Name: "mis/base", Budget: 3, New: newInitLike(false)}
}

// Init returns the MIS Initialization Algorithm (Section 4), the reasonable
// initialization used by the template instantiations: I instead consists of
// the nodes with prediction 1 whose neighbors with prediction 1 (if any) all
// have smaller identifiers; the partial solution it produces always contains
// the Base Algorithm's.
func Init() core.Stage {
	return core.Stage{Name: "mis/init", Budget: 3, New: newInitLike(true)}
}

// newInitLike builds the machine shared by Base and Init; tieBreak selects
// the Initialization Algorithm's larger independent set.
func newInitLike(tieBreak bool) core.StageFactory {
	return func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
		return &initMachine{mem: mem.(*Memory), tieBreak: tieBreak}
	}
}

type initMachine struct {
	mem      *Memory
	tieBreak bool
	sawOne   bool
}

func (m *initMachine) Send(c *core.StageCtx) []runtime.Out {
	switch c.StageRound() {
	case 1:
		return runtime.Broadcast(c.Info(), predMsg{Bit: m.mem.Pred})
	case 2:
		if m.inI(c.Info()) {
			return notifyAndOutput(c, m.mem, 1)
		}
	case 3:
		if m.sawOne {
			return notifyAndOutput(c, m.mem, 0)
		}
	}
	return nil
}

func (m *initMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	switch c.StageRound() {
	case 1:
		for _, msg := range inbox {
			if pm, ok := msg.Payload.(predMsg); ok {
				m.mem.NbrPred[msg.From] = pm.Bit
			}
		}
	case 2:
		for _, msg := range inbox {
			if nt, ok := msg.Payload.(notify); ok {
				m.mem.NbrOut[msg.From] = nt.Bit
				if nt.Bit == 1 {
					m.sawOne = true
				}
			}
		}
	case 3:
		recordNotifies(m.mem, inbox)
		c.Yield()
	}
}

// inI decides membership in the initialization's independent set.
func (m *initMachine) inI(info runtime.NodeInfo) bool {
	if m.mem.Pred != 1 {
		return false
	}
	for _, nb := range info.NeighborIDs {
		if m.mem.NbrPred[nb] != 1 {
			continue
		}
		if !m.tieBreak {
			return false // Base Algorithm: any prediction-1 neighbor disqualifies.
		}
		if nb > info.ID {
			return false // Initialization Algorithm: larger-ID prediction-1 neighbor wins.
		}
	}
	return true
}

// Cleanup returns the one-round MIS clean-up algorithm (Section 7.2): every
// active node with a neighbor that output 1 informs its active neighbors,
// outputs 0, and terminates; the resulting partial solution is extendable.
func Cleanup() core.Stage {
	return core.Stage{
		Name:   "mis/cleanup",
		Budget: 1,
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &cleanupMachine{mem: mem.(*Memory)}
		},
	}
}

type cleanupMachine struct{ mem *Memory }

func (m *cleanupMachine) Send(c *core.StageCtx) []runtime.Out {
	if m.mem.hasOutNeighbor(1) {
		return notifyAndOutput(c, m.mem, 0)
	}
	return nil
}

func (m *cleanupMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	recordNotifies(m.mem, inbox)
	c.Yield()
}
