package mis

import (
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/runtime"
	"repro/internal/vcolor"
)

// Solo runs a single MIS stage as a complete algorithm (used to measure the
// measure-uniform algorithms on their own, without predictions).
func Solo(stage core.Stage) runtime.Factory {
	return core.Sequence(NewMemory, stage)
}

// SimpleGreedy is the Simple Template (Observation 7) instantiated with the
// MIS Initialization Algorithm and the Greedy MIS Algorithm: consistency 3,
// round complexity at most η₁+3 (Lemma 1) and η₂+4 (Lemma 2).
func SimpleGreedy() runtime.Factory {
	return core.Simple(NewMemory, Init(), Greedy())
}

// SimpleBase is SimpleGreedy but starting from the Base Algorithm instead of
// the Initialization Algorithm (for comparing initializations).
func SimpleBase() runtime.Factory {
	return core.Simple(NewMemory, Base(), Greedy())
}

// SimpleBW is the Section 9.1 algorithm: initialization followed by the
// black/white alternating measure-uniform algorithm, whose round complexity
// tracks η_bw rather than η₁.
func SimpleBW() runtime.Factory {
	return core.Simple(NewMemory, Init(), BWGreedy(0))
}

// SimpleLuby is the Section 10 discussion: Luby's randomized algorithm as
// the reference of the Simple Template.
func SimpleLuby(seed int64) runtime.Factory {
	return core.Simple(NewMemory, Init(), Luby(seed))
}

// SimpleCollect is the Simple Template with the collect-and-solve reference.
func SimpleCollect() runtime.Factory {
	return core.Simple(NewMemory, Init(), Collect())
}

// consecutiveSpec shares the MIS Consecutive Template wiring: initialization,
// Greedy budgeted at the reference's bound plus one (rounded up to even so
// the interruption point carries an extendable partial solution), the
// one-round clean-up, then the reference.
func consecutiveSpec(budget func(runtime.NodeInfo) int, ref core.Stage) runtime.Factory {
	cleanup := Cleanup()
	return core.Consecutive(core.ConsecutiveSpec{
		Mem:    NewMemory,
		B:      Init(),
		U:      GreedyBudget,
		Budget: budget,
		Align:  2,
		C:      &cleanup,
		Ref:    core.FixedRef(ref),
	})
}

// ConsecutiveCollect is the Consecutive Template (Lemma 8) with the
// collect-and-solve reference: initialization, Greedy for r(n)+c'(n) rounds,
// the one-round clean-up, then the reference. Consistency 3, 2η-degrading,
// robust with respect to the reference.
func ConsecutiveCollect() runtime.Factory {
	return consecutiveSpec(func(info runtime.NodeInfo) int {
		return CollectBound(info) + 1
	}, Collect())
}

// ConsecutiveDecomp is the Consecutive Template with the decomposition
// reference (the stand-in for the paper's Ghaffari–Grunau reference [30]).
func ConsecutiveDecomp(seed int64) runtime.Factory {
	return consecutiveSpec(func(info runtime.NodeInfo) int {
		return decomp.Bound(info) + 1
	}, decomp.Stage(seed))
}

// ConsecutiveTradeoff is the Section 10 open-problem exploration: the
// Consecutive Template with a tunable measure-uniform budget λ·n instead of
// the reference's full round bound. λ ≥ 1 recovers degradation at least as
// good as the plain template (Greedy finishes any component within μ₁ ≤ n
// rounds); smaller λ caps the time spent trusting the predictions, improving
// the worst case towards the reference alone at the price of a worse
// degradation function — the consistency/robustness trade-off knob known
// from online algorithms with predictions. λ = 0 skips the measure-uniform
// stage entirely.
func ConsecutiveTradeoff(lambda float64, seed int64) runtime.Factory {
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		budget := core.AlignUp(int(lambda*float64(info.N)), 2)
		var seq runtime.Factory
		if budget <= 0 {
			seq = core.Simple(NewMemory, Init(), decomp.Stage(seed))
		} else {
			seq = core.Sequence(NewMemory, Init(), GreedyBudget(budget), Cleanup(), decomp.Stage(seed))
		}
		return seq(info, pred)
	}
}

// InterleavedDecomp is the Interleaved Template (Lemma 9, Corollary 10):
// initialization, then alternating slices of Greedy and the decomposition
// reference, one reference phase per slice.
func InterleavedDecomp(seed int64) runtime.Factory {
	return core.Interleaved(NewMemory, Init(), Greedy().New, decomp.MISReference(seed), decomp.Schedule)
}

// ParallelColoring is the Parallel Template instantiated per Corollary 12:
// initialization, then the Greedy MIS Algorithm running in parallel with the
// fault-tolerant Linial coloring (part 1 of the reference, storing its color
// locally), and finally the color-class/greedy-augmented part 2. The
// parallel section's budget is Rounds(d, Δ) rounded up to even, so the
// Greedy lane is interrupted at an extendable boundary and no clean-up stage
// is needed, exactly as in the corollary's proof.
func ParallelColoring() runtime.Factory {
	return core.Parallel(core.ParallelSpec{
		Mem: NewMemory,
		B:   Init(),
		U:   Greedy().New,
		R1:  vcolor.LinialPart1(),
		R1Budget: func(info runtime.NodeInfo) int {
			return core.AlignUp(vcolor.Rounds(info.D, info.Delta), 2)
		},
		C:  nil,
		R2: ColorToMIS(),
	})
}
