package mis

import (
	"math/bits"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/vcolor"
)

// Uniform returns the Δ-doubling MIS reference, our rendition of the
// paper's second Simple-Template example (Section 7.1): a coloring-based MIS
// algorithm that is *uniform with respect to Δ* in the sense of Korman,
// Sereni and Viennot [42] — its round complexity depends on the maximum
// degree of the subgraph it actually runs on (after an initialization, the
// error components), not on the whole graph's Δ.
//
// It proceeds in phases with doubling degree guesses D̂ = 2, 4, 8, ...; in
// each phase the active nodes whose active degree is at most D̂ become
// participants, color themselves with the Linial reduction for maximum
// degree D̂, and convert the coloring to independent-set outputs one color
// class per round. Nodes adjacent to a joiner leave, everyone else carries
// over to the next phase. Every participant terminates within its phase, so
// the algorithm ends once D̂ reaches the largest remaining degree; the total
// round count is a function of Δ' (the error components' maximum degree) and
// log* d only. The paper's O(Δ'+log* d) reference is sharper than our
// O(Δ'²+log Δ'·log* d) — a documented substitution (DESIGN.md) that
// preserves the property under test: independence of the global Δ and n.
func Uniform() core.Stage {
	return core.Stage{
		Name: "mis/uniform",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return &uniformMachine{mem: mem.(*Memory)}
		},
	}
}

// SimpleUniform is the Simple Template with the Δ-doubling reference: round
// complexity O(f(Δ') + log Δ'·log* d) where Δ' is the maximum degree inside
// the error components (paper Section 7.1, second example).
func SimpleUniform() runtime.Factory {
	return core.Simple(NewMemory, Init(), Uniform())
}

// UniformMaxRounds returns a safe engine round cap for runs involving the
// Δ-doubling reference: the sum of all phase lengths up to the first guess
// covering Δ, plus the initialization and a Greedy-scale allowance. The
// default engine cap (8n+64) targets O(n)-round algorithms and can be too
// small for this reference on small dense graphs.
func UniformMaxRounds(info runtime.NodeInfo) int {
	total := 8*info.N + 64
	for dHat := 2; ; dHat *= 2 {
		total += uniformPhaseLen(info.D, dHat)
		if dHat >= info.Delta {
			return total
		}
	}
}

// phaseLen returns the round count of phase i (0-based, guess 2^(i+1)):
// one participation round, the Linial schedule for (d, D̂), D̂+1 conversion
// rounds, and one flush round for pending exits.
func uniformPhaseLen(d, dHat int) int {
	return 1 + vcolor.Rounds(d, dHat) + (dHat + 1) + 1
}

// participate is the phase-opening announcement.
type participate struct{}

// Bits sizes the message for CONGEST accounting.
func (participate) Bits() int { return 1 }

// uColor carries a participant's current color during the phase coloring.
type uColor struct{ C int }

// Bits sizes the message for CONGEST accounting.
func (m uColor) Bits() int { return bits.Len(uint(m.C)) + 1 }

type uniformMachine struct {
	mem *Memory

	phase   int // 0-based; guess is 2^(phase+1)
	inPhase int // rounds already spent in the current phase

	participant bool
	partNbrs    []int // participating neighbors (IDs), fixed per phase
	color       int   // 0-based during coloring, 1-based class after
	steps       []vcolor.ReductionStep
	kStar       int

	pendingKill bool
}

func (m *uniformMachine) guess() int { return 1 << uint(m.phase+1) }

func (m *uniformMachine) Send(c *core.StageCtx) []runtime.Out {
	if m.pendingKill {
		return notifyAndOutput(c, m.mem, 0)
	}
	info := c.Info()
	d := info.D
	dHat := m.guess()
	r := m.inPhase + 1 // 1-based round within the phase
	colorRounds := vcolor.Rounds(d, dHat)
	switch {
	case r == 1:
		// Participation announcement.
		active := m.mem.ActiveNeighbors(info)
		m.participant = len(active) <= dHat
		m.partNbrs = nil
		if m.participant {
			m.steps, m.kStar = vcolor.Schedule(d, dHat)
			m.color = info.ID - 1
			return runtime.BroadcastTo(active, participate{})
		}
		return nil
	case r <= 1+colorRounds:
		if m.participant {
			return runtime.BroadcastTo(m.activePartNbrs(), uColor{C: m.color})
		}
		return nil
	case r <= 1+colorRounds+dHat+1:
		j := r - 1 - colorRounds // conversion class 1..dHat+1
		if m.participant && m.color+1 == j {
			return runtime.BroadcastTo(m.mem.ActiveNeighbors(info), notifyThenOutput(c, 1))
		}
		return nil
	default:
		// Flush round: pending exits were handled at the top; idle.
		return nil
	}
}

// activePartNbrs returns the participating neighbors still active.
func (m *uniformMachine) activePartNbrs() []int {
	out := make([]int, 0, len(m.partNbrs))
	for _, nb := range m.partNbrs {
		if _, gone := m.mem.NbrOut[nb]; !gone {
			out = append(out, nb)
		}
	}
	return out
}

func (m *uniformMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	info := c.Info()
	d := info.D
	dHat := m.guess()
	r := m.inPhase + 1
	colorRounds := vcolor.Rounds(d, dHat)

	var heard []int
	for _, msg := range inbox {
		switch p := msg.Payload.(type) {
		case participate:
			if r == 1 {
				m.partNbrs = append(m.partNbrs, msg.From)
			}
		case uColor:
			heard = append(heard, p.C)
		case notify:
			m.mem.NbrOut[msg.From] = p.Bit
			if p.Bit == 1 {
				m.pendingKill = true
			}
		}
	}
	if m.participant && r > 1 && r <= 1+colorRounds {
		m.applyColoringRound(r-1, heard, dHat)
	}
	m.inPhase++
	if m.inPhase >= uniformPhaseLen(d, dHat) {
		m.inPhase = 0
		m.phase++
		m.participant = false
	}
}

// applyColoringRound advances the participant-subgraph Linial coloring by
// one round (cr is 1-based within the coloring).
func (m *uniformMachine) applyColoringRound(cr int, heard []int, dHat int) {
	switch {
	case cr <= len(m.steps):
		m.color = vcolor.ApplyReduction(m.steps[cr-1], m.color, heard)
	default:
		target := m.kStar - (cr - len(m.steps))
		if m.color == target && target > dHat {
			m.color = vcolor.SmallestFreeColor(heard, dHat+1)
		}
	}
}
