package mis_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/verify"
)

// runUniform runs the Δ-doubling algorithm with its adaptive round cap.
func runUniform(t *testing.T, g *graph.Graph, preds []int) *runtime.Result {
	t.Helper()
	var anyPreds []any
	if preds != nil {
		anyPreds = make([]any, len(preds))
		for i, p := range preds {
			anyPreds[i] = p
		}
	}
	info := runtime.NodeInfo{N: g.N(), D: g.D(), Delta: g.MaxDegree()}
	res, err := runtime.Run(runtime.Config{
		Graph:       g,
		Factory:     mis.SimpleUniform(),
		Predictions: anyPreds,
		MaxRounds:   mis.UniformMaxRounds(info),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]int, g.N())
	for i, o := range res.Outputs {
		out[i] = o.(int)
	}
	if err := verify.MIS(g, out); err != nil {
		t.Fatalf("invalid MIS: %v", err)
	}
	return res
}

func TestUniformProducesMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	cases := map[string]*graph.Graph{
		"single":  graph.Line(1),
		"line20":  graph.Line(20),
		"ring15":  graph.Ring(15),
		"star16":  graph.Star(16),
		"clique9": graph.Clique(9),
		"grid6x6": graph.Grid2D(6, 6),
		"gnp50":   graph.GNP(50, 0.1, rng),
		"tree40":  graph.RandomTree(40, rng),
	}
	for name, g := range cases {
		for _, k := range []int{0, 2, g.N()} {
			preds := predict.FlipBits(predict.PerfectMIS(g), k, rng)
			t.Run(name, func(t *testing.T) {
				runUniform(t, g, preds)
			})
		}
	}
}

// TestUniformDependsOnLocalDegree is the paper's point in the second Simple
// example: the reference's round complexity is a function of the maximum
// degree inside the error components, not of the global Δ. We attach a huge
// perfectly-predicted star (Δ = 400) to a badly-predicted ring (Δ' = 2): the
// star terminates in the initialization and the remaining work only sees
// degree 2, so the rounds stay near the Δ' = 2 cost even as the star grows.
func TestUniformDependsOnLocalDegree(t *testing.T) {
	ringPreds := predict.Uniform(24, 1) // all-ones: the whole ring errs
	base := -1
	for _, starSize := range []int{50, 200, 400} {
		star := graph.Star(starSize)
		ring := graph.Ring(24)
		g := graph.DisjointUnion(star, ring)
		preds := append(predict.PerfectMIS(star), ringPreds...)
		res := runUniform(t, g, preds)
		if base < 0 {
			base = res.Rounds
		}
		// The identifier domain d grows with the star, nudging the Linial
		// schedule length by a couple of rounds; the point is that rounds do
		// NOT scale with Δ (which would be in the hundreds here).
		if diff := res.Rounds - base; diff < -8 || diff > 8 {
			t.Errorf("star %d: rounds %d far from %d — depends on global Δ", starSize, res.Rounds, base)
		}
	}
	if base > 60 {
		t.Errorf("rounds %d too large for a Δ'=2 error component", base)
	}
}

func TestTradeoffKnob(t *testing.T) {
	// Validity across λ values and prediction quality.
	rng := rand.New(rand.NewSource(92))
	g := graph.GNP(60, 0.08, rng)
	for _, lambda := range []float64{0, 0.1, 0.5, 1, 2} {
		for _, k := range []int{0, 5, g.N()} {
			preds := predict.FlipBits(predict.PerfectMIS(g), k, rng)
			var anyPreds []any
			anyPreds = make([]any, len(preds))
			for i, p := range preds {
				anyPreds[i] = p
			}
			res, err := runtime.Run(runtime.Config{
				Graph:       g,
				Factory:     mis.ConsecutiveTradeoff(lambda, 7),
				Predictions: anyPreds,
				MaxRounds:   64 * g.N(),
			})
			if err != nil {
				t.Fatalf("lambda=%v k=%d: %v", lambda, k, err)
			}
			out := make([]int, g.N())
			for i, o := range res.Outputs {
				out[i] = o.(int)
			}
			if err := verify.MIS(g, out); err != nil {
				t.Fatalf("lambda=%v k=%d: %v", lambda, k, err)
			}
			if k == 0 && res.Rounds > 3 {
				t.Errorf("lambda=%v: consistency broken (%d rounds)", lambda, res.Rounds)
			}
		}
	}
}
