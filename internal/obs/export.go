package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file is the trace serialization layer: JSONL (the native on-disk
// format, one event per line), the Chrome trace_event format (loadable in
// chrome://tracing or Perfetto), and the canonicalization/diff helpers the
// engine-parity checks build on.

// WriteJSONL writes events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace. Blank lines are ignored; a malformed
// line is an error naming its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// Canonical returns a copy of events with every wall-clock field zeroed.
// Two canonical traces of the same seeded run are identical across engine
// modes; everything except DurNS is part of the determinism contract.
func Canonical(events []Event) []Event {
	out := make([]Event, len(events))
	copy(out, events)
	for i := range out {
		out[i].DurNS = 0
	}
	return out
}

// Diff compares two canonicalized traces and returns the index and a
// description of the first difference, or ok = true when the traces match.
// Callers pass Canonical(...) of each side to compare modulo wall clock.
func Diff(a, b []Event) (index int, desc string, ok bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i, fmt.Sprintf("event %d differs:\n  a: %s\n  b: %s", i, eventLine(a[i]), eventLine(b[i])), false
		}
	}
	if len(a) != len(b) {
		return n, fmt.Sprintf("lengths differ: %d vs %d events", len(a), len(b)), false
	}
	return 0, "", true
}

// eventLine renders one event as its JSONL line (for diagnostics).
func eventLine(e Event) string {
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Sprintf("%+v", e)
	}
	return string(b)
}

// chromeEvent is one record of the Chrome trace_event format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"` // microseconds
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// roundTicks is the logical length of one round on the Chrome timeline, in
// microseconds. The timeline is round-indexed (deterministic), not
// wall-clock-indexed; real durations ride along as args.
const roundTicks = 1000

// WriteChromeTrace renders events in the Chrome trace_event JSON format:
// rounds become complete ("X") slices on thread 0, runs become slices on a
// run-level track, and node-scoped events become instants on per-node
// threads, all on a deterministic round-indexed timeline. Load the output
// in chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var out []chromeEvent
	runBase := int64(0) // timeline offset of the current run
	lastRound := int64(0)
	ts := func(round int) int64 {
		if round < 1 {
			return runBase
		}
		return runBase + int64(round-1)*roundTicks
	}
	for _, e := range events {
		if int64(e.Round) > lastRound {
			lastRound = int64(e.Round)
		}
		switch e.Type {
		case EvRunStart:
			out = append(out, chromeEvent{
				Name: "run", Cat: "run", Phase: "B", TS: runBase, PID: 1, TID: 0,
				Args: map[string]any{"n": e.Value, "m": e.Aux},
			})
		case EvRunEnd:
			end := runBase + lastRound*roundTicks
			args := map[string]any{"rounds": e.Value, "messages": e.Aux}
			if e.Err != "" {
				args["error"] = e.Err
			}
			out = append(out, chromeEvent{
				Name: "run", Cat: "run", Phase: "E", TS: end, PID: 1, TID: 0, Args: args,
			})
			// The next run (e.g. a healing run) continues further down the
			// timeline instead of overlapping this one.
			runBase = end + roundTicks
			lastRound = 0
		case EvRoundStart:
			// The matching EvRoundEnd renders the whole round; nothing here.
		case EvRoundEnd:
			args := map[string]any{"messages": e.Value, "bits": e.Aux}
			if e.DurNS > 0 {
				args["wall_ns"] = e.DurNS
			}
			if e.Err != "" {
				args["error"] = e.Err
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("round %d", e.Round), Cat: "round", Phase: "X",
				TS: ts(e.Round), Dur: roundTicks, PID: 1, TID: 0, Args: args,
			})
		case EvCrash, EvFault, EvOutput, EvSpan, EvBatch:
			name := string(e.Type)
			if e.Name != "" {
				name = fmt.Sprintf("%s:%s", e.Type, e.Name)
			}
			out = append(out, chromeEvent{
				Name: name, Cat: string(e.Type), Phase: "i",
				TS: ts(e.Round), PID: 1, TID: e.Node,
				Args: map[string]any{"value": e.Value, "aux": e.Aux},
			})
		case EvDeadline, EvPhase, EvCarve, EvEta, EvMeta:
			args := map[string]any{"value": e.Value, "aux": e.Aux}
			if e.Text != "" {
				args["text"] = e.Text
			}
			if e.Err != "" {
				args["error"] = e.Err
			}
			name := string(e.Type)
			if e.Name != "" {
				name = fmt.Sprintf("%s:%s", e.Type, e.Name)
			}
			out = append(out, chromeEvent{
				Name: name, Cat: string(e.Type), Phase: "i",
				TS: ts(e.Round), PID: 1, TID: 0, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
