package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability layer: a small
// registry of counters, gauges, and histograms with snapshot-based export
// in Prometheus text format and JSON. Metric names may carry a Prometheus
// label suffix (`dgp_faults_total{kind="drop"}`); the registry treats the
// full string as the series key and the export groups series by base name.

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (negative deltas are a caller bug but are not rejected; the
// export reports whatever was accumulated).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a floating-point metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the current value (not atomic across concurrent Adds with
// Set; the repository's emitters are single-goroutine).
func (g *Gauge) Add(d float64) { g.Set(g.Value() + d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed upper-bound buckets
// (cumulative on export, Prometheus-style; a +Inf bucket is implicit).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	inf    uint64
	sum    float64
	count  uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		h.inf++
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// DefaultDurationBuckets are upper bounds in seconds suited to per-round
// wall times: 1µs up to ~1s.
var DefaultDurationBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1,
}

// Registry holds named metric series. The zero value is not usable; call
// NewRegistry. Lookups create the series on first use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds (ascending) on first use; later calls ignore buckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
		r.histograms[name] = h
	}
	return h
}

// SeriesValue is one exported scalar series.
type SeriesValue struct {
	// Name is the full series name, including any label suffix.
	Name string `json:"name"`
	// Value is the scalar value at snapshot time.
	Value float64 `json:"value"`
}

// HistogramValue is one exported histogram series.
type HistogramValue struct {
	// Name is the series name.
	Name string `json:"name"`
	// Bounds are the bucket upper bounds; Counts are cumulative per bound.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	// Sum and Count aggregate all observations (including over-range ones).
	Sum   float64 `json:"sum"`
	Count uint64  `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, ordered by name so that
// exports are deterministic.
type Snapshot struct {
	Counters   []SeriesValue    `json:"counters"`
	Gauges     []SeriesValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// sortedKeys returns m's keys in ascending order (map iteration feeds a
// sort, never the output directly — the maporder discipline).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, SeriesValue{Name: name, Value: float64(r.counters[name].Value())})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, SeriesValue{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		h.mu.Lock()
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.sum,
			Count:  h.count,
		}
		cum := uint64(0)
		for i, c := range h.counts {
			cum += c
			hv.Counts[i] = cum
		}
		h.mu.Unlock()
		s.Histograms = append(s.Histograms, hv)
	}
	return s
}

// baseName strips a Prometheus label suffix from a series name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitSeries splits a series name into its base name and the raw label
// body (without braces); labels is "" for an unlabeled series.
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// histSeries renders a derived histogram series name (`<base>_<suffix>`)
// carrying the histogram's own labels plus any extra label pair, so labeled
// histograms keep their identity on export: a `dgp_round_seconds{phase="send"}`
// histogram exports `dgp_round_seconds_bucket{phase="send",le="..."}`
// buckets, not bare `dgp_round_seconds_bucket` lines that would collide
// across label sets.
func histSeries(name, suffix, extraLabel string) string {
	base, labels := splitSeries(name)
	switch {
	case labels == "" && extraLabel == "":
		return base + "_" + suffix
	case labels == "":
		return base + "_" + suffix + "{" + extraLabel + "}"
	case extraLabel == "":
		return base + "_" + suffix + "{" + labels + "}"
	default:
		return base + "_" + suffix + "{" + labels + "," + extraLabel + "}"
	}
}

// fmtFloat renders a metric value the way Prometheus text format expects:
// integers without a decimal point, everything else in shortest form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, series sorted by name and grouped under one TYPE line per base
// name.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	writeGroup := func(series []SeriesValue, typ string) error {
		lastBase := ""
		for _, sv := range series {
			base := baseName(sv.Name)
			if base != lastBase {
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ); err != nil {
					return err
				}
				lastBase = base
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", sv.Name, fmtFloat(sv.Value)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeGroup(s.Counters, "counter"); err != nil {
		return err
	}
	if err := writeGroup(s.Gauges, "gauge"); err != nil {
		return err
	}
	lastHistBase := ""
	for _, h := range s.Histograms {
		base := baseName(h.Name)
		if base != lastHistBase {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
				return err
			}
			lastHistBase = base
		}
		for i, b := range h.Bounds {
			le := fmt.Sprintf("le=%q", fmtFloat(b))
			if _, err := fmt.Fprintf(w, "%s %d\n", histSeries(h.Name, "bucket", le), h.Counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", histSeries(h.Name, "bucket", `le="+Inf"`), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", histSeries(h.Name, "sum", ""), fmtFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", histSeries(h.Name, "count", ""), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
