// Package obs is the repository's observability layer: a deterministic,
// allocation-conscious trace recorder and a lightweight metrics registry.
//
// The paper's claims are quantitative bounds on rounds, messages, and error
// measures; auditing them needs more than a flat per-round callback. The
// engine (internal/runtime), the template combinators (internal/core), the
// healing machinery (internal/heal), and the registry run path (package
// repro) all emit typed events into a Recorder when one is attached:
// round start/end, per-node output commits, per-sender message batches with
// bit sizes, adversary faults, watchdog deadlines, template-stage spans with
// budget metadata, heal carve/re-run phases, and η snapshots.
//
// Determinism contract: every event is emitted from the engine's main
// goroutine (or from single-goroutine wrapper code above it), in an order
// that is identical in sequential and pool engine mode. The only
// nondeterministic field is DurNS, the wall-clock duration; Canonical
// (export.go) zeroes it, after which two traces of the same seeded run are
// byte-identical across engine modes — a property the parity tests and the
// CI trace-golden step pin.
//
// Cost contract: with no Recorder attached, the instrumented paths reduce
// to a nil check (engine) or a boolean check (Env.Annotate); the
// disabled-tracing path stays inside the steady-state allocation budget of
// internal/runtime's TestSteadyStateAllocBudget.
package obs

import (
	"sync"
	"time"
)

// EventType names the kind of one trace event. The values are stable wire
// strings: they appear verbatim in JSONL exports and dgp-trace filters.
type EventType string

// The event taxonomy. See DESIGN.md §9 for the field conventions of each.
const (
	// EvRunStart opens one engine run. Value = node count, Aux = edge count.
	EvRunStart EventType = "run-start"
	// EvRunEnd closes one engine run. Value = last executed round,
	// Aux = delivered messages; Err is set when the run aborted.
	EvRunEnd EventType = "run-end"
	// EvRoundStart opens a round. Value = active node count.
	EvRoundStart EventType = "round-start"
	// EvRoundEnd closes a round. Value = delivered messages, Aux = delivered
	// payload bits, DurNS = wall time; Err is set on a terminal round (the
	// round in which the run aborted — contained panic, deadline, protocol
	// violation, CONGEST violation).
	EvRoundEnd EventType = "round-end"
	// EvCrash marks a scheduled crash taking effect. Node = identifier.
	EvCrash EventType = "crash"
	// EvFault is one adversary intervention. Name = drop | corrupt |
	// duplicate; Node = sender identifier, Aux = destination identifier,
	// Value = dropped payload bits (drop) or extra copies (duplicate).
	EvFault EventType = "fault"
	// EvBatch summarizes one sender's deliveries in a round. Node = sender
	// identifier, Value = messages delivered, Aux = payload bits.
	EvBatch EventType = "msg-batch"
	// EvOutput is a per-node decision commit: the node terminated with its
	// final output this round. Value = the output when it is an int;
	// otherwise Text names its type.
	EvOutput EventType = "output"
	// EvSpan is a machine-emitted annotation (Env.Annotate), drained by the
	// engine in node-index order at the end of the round: template stage and
	// lane transitions, with Value carrying budget metadata.
	EvSpan EventType = "span"
	// EvDeadline marks a round-deadline watchdog hit. Name = phase.
	EvDeadline EventType = "deadline"
	// EvPhase is a wrapper-level phase marker (heal: primary, valid,
	// recovery, healed).
	EvPhase EventType = "phase"
	// EvCarve reports a heal carve: Value = residual (undecided nodes),
	// Aux = decided outputs the carve demoted.
	EvCarve EventType = "carve"
	// EvEta is an error-measure snapshot. Name labels the phase (input,
	// residual, healed); Text carries the measure summary, Value a scalar.
	EvEta EventType = "eta"
	// EvMeta labels the run. Name = "problem/algorithm"; Text carries extras.
	EvMeta EventType = "meta"
	// EvSession marks dynamic-session lifecycle. Name = open | close;
	// Value = node count (open) or applied batches (close); Aux = edge count
	// (open) or total recovery rounds (close); Text = problem name.
	EvSession EventType = "session"
	// EvUpdate is one update batch's outcome in a dynamic session.
	// Name = applied | duplicate | rejected; Node = batch sequence number;
	// Value = update count; Aux = nodes whose adjacency actually changed;
	// Err = rejection cause.
	EvUpdate EventType = "update"
	// EvShardExchange is one shard's delivery ledger for a round of a
	// multi-shard run. Node = the shard index (not a node identifier);
	// Name = delivered | injected | boundary; Value = messages, Aux = their
	// sized payload bits. "delivered"/"injected" ledger traffic arriving at
	// the shard, "boundary" traffic it exported across the cut. Ledgers are
	// shard-count-dependent by nature, so the cross-shard-count trace parity
	// contract compares streams with EvShardExchange filtered out.
	EvShardExchange EventType = "shard-exchange"
	// EvRetry marks a failed incremental step escalating one rung on the
	// degradation ladder. Name = the next rung (widen | full); Value = the
	// 0-based attempt that failed; Err = the failure cause (an aborted run or
	// an invalid healed output).
	EvRetry EventType = "retry"
	// EvTruncated marks a ring-buffer wrap: the recorder overwrote Value
	// events before the oldest one it still holds. It is synthesized by
	// Events() as the first returned event whenever the ring dropped
	// anything, so exports, summaries, and parity diffs see the truncation
	// explicitly instead of silently analyzing a partial window.
	EvTruncated EventType = "truncated"
)

// Event is one trace record. The struct is flat and field meanings are
// per-type (documented on the EventType constants) so that recording is one
// ring-buffer store with no allocation, and JSONL export needs no schema.
type Event struct {
	// Type is the event kind.
	Type EventType `json:"t"`
	// Round is the 1-based round number; 0 for run-level events.
	Round int `json:"r,omitempty"`
	// Node is the node identifier (identifiers are 1-based; 0 = not
	// node-scoped).
	Node int `json:"n,omitempty"`
	// Name is the type-specific label (stage name, fault kind, phase).
	Name string `json:"name,omitempty"`
	// Value is the type-specific primary magnitude.
	Value int64 `json:"v,omitempty"`
	// Aux is the type-specific secondary magnitude.
	Aux int64 `json:"aux,omitempty"`
	// Text is free-form type-specific text (η summaries, output types).
	Text string `json:"text,omitempty"`
	// Err records the error of a terminal event.
	Err string `json:"err,omitempty"`
	// DurNS is a wall-clock duration in nanoseconds. It is the only
	// nondeterministic field; Canonical zeroes it for parity comparison.
	DurNS int64 `json:"dur,omitempty"`
}

// DefaultCapacity is the ring capacity NewRecorder uses for capacity <= 0.
const DefaultCapacity = 1 << 16

// Recorder is a fixed-capacity ring buffer of events. When the ring is
// full the oldest event is overwritten and the drop is counted, so long
// runs keep their most recent window instead of growing without bound.
//
// Emit is safe for concurrent use, though the engine's determinism contract
// means all emitters in this repository run on one goroutine per run.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	start   int
	n       int
	dropped uint64
}

// NewRecorder returns a recorder holding at most capacity events
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Emit records one event, overwriting the oldest when the ring is full.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	} else {
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns the recorded events, oldest first, as a fresh slice. When
// the ring has wrapped, the slice begins with a synthesized EvTruncated
// marker carrying the overwrite count in Value, so consumers cannot mistake
// the surviving window for the whole run: summaries surface it as a loud
// warning and trace-parity diffs fail when only one side wrapped.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n+1)
	if r.dropped > 0 {
		out = append(out, Event{Type: EvTruncated, Value: int64(r.dropped)})
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of events currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events the ring overwrote.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards all recorded events and the drop count.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.start, r.n, r.dropped = 0, 0, 0
	r.mu.Unlock()
}

// Now returns the wall-clock time for observational instrumentation: trace
// durations and metrics timestamps. It exists so that wall-clock reads in
// the deterministic packages funnel through this one audited package, which
// the seededrand analyzer exempts by a package-scoped policy
// (analysis.ObservationalClockPkgs) instead of per-line allow directives.
// The returned value must only ever decorate observational records — it
// must never feed back into scheduling, routing, or algorithm state.
func Now() time.Time { return time.Now() }

// Since returns the elapsed wall-clock time since t; see Now for the
// observational-use-only contract.
func Since(t time.Time) time.Duration { return time.Since(t) }
