package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderRingOverflow(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Type: EvRoundStart, Round: i + 1})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	ev := r.Events()
	if len(ev) != 5 {
		t.Fatalf("Events returned %d events, want 4 + truncation marker", len(ev))
	}
	if ev[0].Type != EvTruncated || ev[0].Value != 6 {
		t.Fatalf("first event = %+v, want EvTruncated marker with Value 6", ev[0])
	}
	for i, e := range ev[1:] {
		if want := 7 + i; e.Round != want {
			t.Fatalf("event %d round = %d, want %d (oldest-first window)", i, e.Round, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatalf("Reset did not clear: len=%d dropped=%d", r.Len(), r.Dropped())
	}
}

func TestTruncationSurfacesEverywhere(t *testing.T) {
	r := NewRecorder(2)
	r.Emit(Event{Type: EvRunStart, Value: 8, Aux: 8})
	for round := 1; round <= 3; round++ {
		r.Emit(Event{Type: EvRoundStart, Round: round, Value: 8})
		r.Emit(Event{Type: EvRoundEnd, Round: round, Value: 4, Aux: 16})
	}
	ev := r.Events()
	if ev[0].Type != EvTruncated {
		t.Fatalf("wrapped recorder must lead with EvTruncated, got %+v", ev[0])
	}
	s := Summarize(ev)
	if s.Truncated != ev[0].Value || s.Truncated == 0 {
		t.Fatalf("Summary.Truncated = %d, want %d", s.Truncated, ev[0].Value)
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "WARNING: trace truncated") {
		t.Fatalf("summary text does not warn about truncation:\n%s", buf.String())
	}
	snap := Aggregate(ev).Snapshot()
	var out bytes.Buffer
	if err := snap.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dgp_trace_truncated_events_total") {
		t.Fatalf("metrics snapshot does not expose truncation counter:\n%s", out.String())
	}
	// An un-wrapped recorder must stay marker-free: the parity tests rely on
	// Events() being exactly the emitted stream in the common case.
	clean := NewRecorder(16)
	clean.Emit(Event{Type: EvRunStart})
	if ev := clean.Events(); len(ev) != 1 || ev[0].Type != EvRunStart {
		t.Fatalf("unwrapped recorder emitted spurious marker: %+v", ev)
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	r := NewRecorder(0)
	if len(r.buf) != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", len(r.buf), DefaultCapacity)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{Type: EvRunStart, Value: 16, Aux: 32},
		{Type: EvRoundEnd, Round: 1, Value: 12, Aux: 480, DurNS: 1234},
		{Type: EvSpan, Round: 1, Node: 3, Name: "stage:mis/init", Value: 3},
		{Type: EvRunEnd, Value: 9, Aux: 100, Err: "round deadline exceeded"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	out, err := ReadJSONL(strings.NewReader(buf.String() + "\n\n"))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestCanonicalAndDiff(t *testing.T) {
	a := []Event{
		{Type: EvRoundEnd, Round: 1, Value: 5, DurNS: 100},
		{Type: EvRunEnd, Value: 1},
	}
	b := []Event{
		{Type: EvRoundEnd, Round: 1, Value: 5, DurNS: 900},
		{Type: EvRunEnd, Value: 1},
	}
	if _, desc, ok := Diff(Canonical(a), Canonical(b)); !ok {
		t.Fatalf("canonical traces should match: %s", desc)
	}
	if a[0].DurNS != 100 {
		t.Fatal("Canonical mutated its input")
	}
	b[1].Value = 2
	if i, _, ok := Diff(Canonical(a), Canonical(b)); ok || i != 1 {
		t.Fatalf("Diff = (%d, ok=%v), want first difference at 1", i, ok)
	}
	if i, _, ok := Diff(a, a[:1]); ok || i != 1 {
		t.Fatalf("length Diff = (%d, ok=%v), want difference at 1", i, ok)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	events := []Event{
		{Type: EvRunStart, Value: 8, Aux: 8},
		{Type: EvRoundStart, Round: 1, Value: 8},
		{Type: EvFault, Round: 1, Node: 2, Name: "drop", Value: 64},
		{Type: EvRoundEnd, Round: 1, Value: 7, Aux: 448, DurNS: 999},
		{Type: EvOutput, Round: 1, Node: 5, Value: 1},
		{Type: EvRunEnd, Value: 1, Aux: 7},
		{Type: EvPhase, Name: "recovery"},
		{Type: EvRunStart, Value: 8, Aux: 8},
		{Type: EvRoundEnd, Round: 1, Value: 3, Aux: 96},
		{Type: EvRunEnd, Value: 1, Aux: 3},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("empty chrome trace")
	}
	for i, rec := range out {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := rec[key]; !ok {
				t.Fatalf("record %d missing %q: %v", i, key, rec)
			}
		}
	}
	// The second run must start strictly after the first run's rounds.
	var runBegins []float64
	for _, rec := range out {
		if rec["name"] == "run" && rec["ph"] == "B" {
			runBegins = append(runBegins, rec["ts"].(float64))
		}
	}
	if len(runBegins) != 2 || runBegins[1] <= runBegins[0] {
		t.Fatalf("run begins = %v, want two strictly increasing timestamps", runBegins)
	}
}

func TestMetricsRegistryAndExport(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dgp_rounds_total").Add(7)
	reg.Counter("dgp_rounds_total").Inc()
	reg.Counter(`dgp_faults_total{kind="drop"}`).Add(3)
	reg.Counter(`dgp_faults_total{kind="corrupt"}`).Inc()
	reg.Gauge("dgp_eta").Set(0.25)
	h := reg.Histogram("dgp_round_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5) // over-range -> +Inf only

	if got := reg.Counter("dgp_rounds_total").Value(); got != 8 {
		t.Fatalf("counter = %d, want 8", got)
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 3 {
		t.Fatalf("counters = %d, want 3", len(snap.Counters))
	}
	// Sorted order: corrupt before drop before rounds_total.
	if !strings.Contains(snap.Counters[0].Name, "corrupt") {
		t.Fatalf("snapshot not sorted: %v", snap.Counters)
	}
	hv := snap.Histograms[0]
	if hv.Count != 3 || hv.Counts[0] != 1 || hv.Counts[1] != 2 {
		t.Fatalf("histogram cumulative counts wrong: %+v", hv)
	}

	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE dgp_faults_total counter",
		`dgp_faults_total{kind="drop"} 3`,
		"dgp_rounds_total 8",
		"# TYPE dgp_round_seconds histogram",
		`dgp_round_seconds_bucket{le="+Inf"} 3`,
		"dgp_round_seconds_count 3",
		"dgp_eta 0.25",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
	// One TYPE line per base name, even with two labeled series.
	if strings.Count(text, "# TYPE dgp_faults_total") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", text)
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON output does not parse: %v", err)
	}
	if len(back.Counters) != 3 || len(back.Histograms) != 1 {
		t.Fatalf("JSON round trip lost series: %+v", back)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Type: EvMeta, Name: "mis/simple", Text: "seed=1"},
		{Type: EvEta, Name: "input", Value: 4, Text: "eta=4"},
		{Type: EvRunStart, Value: 16, Aux: 16},
		{Type: EvRoundStart, Round: 1, Value: 16},
		{Type: EvSpan, Round: 1, Node: 1, Name: "stage:mis/init", Value: 3},
		{Type: EvSpan, Round: 1, Node: 2, Name: "stage:mis/init", Value: 3},
		{Type: EvFault, Round: 1, Node: 3, Name: "drop", Value: 64},
		{Type: EvFault, Round: 1, Node: 4, Name: "drop", Value: 32},
		{Type: EvRoundEnd, Round: 1, Value: 14, Aux: 700, DurNS: 50},
		{Type: EvRoundStart, Round: 2, Value: 16},
		{Type: EvSpan, Round: 2, Node: 1, Name: "stage:mis/base"},
		{Type: EvOutput, Round: 2, Node: 7, Value: 1},
		{Type: EvCrash, Round: 2, Node: 9},
		{Type: EvFault, Round: 2, Node: 2, Name: "corrupt"},
		{Type: EvRoundEnd, Round: 2, Value: 10, Aux: 500, DurNS: 40},
		{Type: EvRunEnd, Value: 2, Aux: 24},
		{Type: EvPhase, Name: "recovery"},
		{Type: EvRunStart, Value: 16, Aux: 16},
		{Type: EvSpan, Round: 1, Node: 1, Name: "stage:mis/init", Value: 3},
		{Type: EvRoundEnd, Round: 1, Value: 5, Aux: 250},
		{Type: EvRunEnd, Value: 1, Aux: 5},
		{Type: EvEta, Name: "healed", Value: 0, Text: "eta=0"},
	}
	s := Summarize(events)
	if s.Meta != "mis/simple" {
		t.Fatalf("Meta = %q", s.Meta)
	}
	if len(s.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(s.Runs))
	}
	r0 := s.Runs[0]
	if r0.N != 16 || r0.Rounds != 2 || r0.Messages != 24 || r0.Bits != 1200 {
		t.Fatalf("run 0 = %+v", r0)
	}
	if r0.Dropped != 2 || r0.DroppedBits != 96 || r0.Corrupted != 1 {
		t.Fatalf("run 0 fault accounting = %+v", r0)
	}
	if r0.Crashes != 1 || r0.Outputs != 1 {
		t.Fatalf("run 0 crash/output = %+v", r0)
	}
	if s.TotalRounds() != 3 {
		t.Fatalf("TotalRounds = %d, want 3", s.TotalRounds())
	}
	// Phases: (run0, mis/init), (run0, mis/base), (run1, mis/init).
	if len(s.Phases) != 3 {
		t.Fatalf("phases = %+v", s.Phases)
	}
	p := s.Phases[0]
	if p.Name != "mis/init" || p.Run != 0 || p.Entries != 2 || p.Budget != 3 || p.Rounds() != 1 || p.OverBudget() {
		t.Fatalf("phase 0 = %+v", p)
	}
	if s.Phases[2].Run != 1 {
		t.Fatalf("phase 2 should belong to run 1: %+v", s.Phases[2])
	}
	// Faults coalesce per (run, round, kind).
	if len(s.Faults) != 2 || s.Faults[0].Count != 2 || s.Faults[1].Kind != "corrupt" {
		t.Fatalf("faults = %+v", s.Faults)
	}
	if len(s.Etas) != 2 || s.Etas[1].Name != "healed" || s.Etas[1].Run != 1 {
		t.Fatalf("etas = %+v", s.Etas)
	}
	if len(s.Marks) != 1 || s.Marks[0] != "recovery" {
		t.Fatalf("marks = %+v", s.Marks)
	}

	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	for _, want := range []string{"mis/simple", "mis/init", "within", "drop", "recovery"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary text missing %q:\n%s", want, text)
		}
	}
}

func TestSummarizeOverBudget(t *testing.T) {
	events := []Event{
		{Type: EvRunStart, Value: 4, Aux: 4},
		{Type: EvSpan, Round: 1, Node: 1, Name: "stage:x", Value: 2},
		{Type: EvSpan, Round: 4, Node: 1, Name: "stage:x", Value: 2},
		{Type: EvRunEnd, Value: 4},
	}
	s := Summarize(events)
	if len(s.Phases) != 1 || !s.Phases[0].OverBudget() {
		t.Fatalf("expected over-budget phase: %+v", s.Phases)
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OVER (+2)") {
		t.Fatalf("missing OVER verdict:\n%s", buf.String())
	}
}

func TestAggregate(t *testing.T) {
	events := []Event{
		{Type: EvRunStart, Value: 8, Aux: 12},
		{Type: EvRoundEnd, Round: 1, Value: 10, Aux: 400, DurNS: 2_000_000},
		{Type: EvFault, Round: 1, Name: "drop", Value: 64},
		{Type: EvFault, Round: 1, Name: "drop", Value: 32},
		{Type: EvFault, Round: 1, Name: "corrupt"},
		{Type: EvCrash, Round: 1, Node: 3},
		{Type: EvOutput, Round: 1, Node: 2, Value: 0},
		{Type: EvRunEnd, Value: 1, Aux: 10, Err: "boom"},
		{Type: EvEta, Name: "input", Value: 3},
	}
	reg := Aggregate(events)
	checks := map[string]int64{
		"dgp_runs_total":                   1,
		"dgp_rounds_total":                 1,
		"dgp_messages_delivered_total":     10,
		"dgp_bits_delivered_total":         400,
		`dgp_faults_total{kind="drop"}`:    2,
		`dgp_faults_total{kind="corrupt"}`: 1,
		"dgp_bits_dropped_total":           96,
		"dgp_crashes_total":                1,
		"dgp_outputs_total":                1,
		"dgp_run_errors_total":             1,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge(`dgp_eta{phase="input"}`).Value(); got != 3 {
		t.Fatalf("eta gauge = %v, want 3", got)
	}
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("round histogram = %+v", snap.Histograms)
	}
}

func TestSummarizeAndAggregateSessionEvents(t *testing.T) {
	events := []Event{
		{Type: EvSession, Name: "open", Value: 100, Aux: 300, Text: "mis"},
		{Type: EvUpdate, Name: "applied", Node: 1, Value: 4, Aux: 7},
		{Type: EvUpdate, Name: "duplicate", Node: 1, Value: 4},
		{Type: EvUpdate, Name: "applied", Node: 2, Value: 2, Aux: 3},
		{Type: EvRetry, Name: "widen", Value: 0, Err: "no termination"},
		{Type: EvRetry, Name: "full", Value: 1, Err: "invalid"},
		{Type: EvUpdate, Name: "rejected", Node: 3, Value: 1, Err: "self-loop"},
		{Type: EvSession, Name: "close", Value: 2, Aux: 9},
	}
	s := Summarize(events)
	if s.Stream == nil {
		t.Fatal("session events did not materialize a StreamSummary")
	}
	want := StreamSummary{Sessions: 1, Applied: 2, Duplicates: 1, Rejected: 1, Damaged: 10, Widened: 1, FullReruns: 1}
	if *s.Stream != want {
		t.Fatalf("stream summary = %+v, want %+v", *s.Stream, want)
	}
	var buf strings.Builder
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sessions: 1 open, batches applied=2 duplicate=1 rejected=1 damaged=10 escalations: widen=1 full=1") {
		t.Fatalf("WriteText missing session line:\n%s", buf.String())
	}
	reg := Aggregate(events)
	checks := map[string]int64{
		"dgp_sessions_total":                             1,
		`dgp_session_batches_total{outcome="applied"}`:   2,
		`dgp_session_batches_total{outcome="duplicate"}`: 1,
		`dgp_session_batches_total{outcome="rejected"}`:  1,
		"dgp_session_damaged_nodes_total":                10,
		`dgp_session_retries_total{rung="widen"}`:        1,
		`dgp_session_retries_total{rung="full"}`:         1,
	}
	for name, wantV := range checks {
		if got := reg.Counter(name).Value(); got != wantV {
			t.Fatalf("%s = %d, want %d", name, got, wantV)
		}
	}
}
