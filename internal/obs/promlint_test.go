package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// A stdlib-only lint of the Prometheus text exposition format, in the spirit
// of promtool check metrics: every export path must produce output a real
// scraper parses. Checked invariants:
//
//   - metric and label names match the Prometheus grammar
//   - a # TYPE line precedes a metric's first sample, and appears only once
//   - histogram bucket counts are cumulative (monotone non-decreasing in le
//     order) and end in an explicit +Inf bucket equal to _count
//   - no duplicate series (same name + label set)
//   - every sample value parses as a float

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
)

type promSample struct {
	name   string            // metric name as written (e.g. dgp_round_seconds_bucket)
	labels map[string]string // parsed label pairs
	value  float64
	line   int
}

// parseProm lints the raw exposition text and returns its samples.
func parseProm(t *testing.T, text string) []promSample {
	t.Helper()
	var samples []promSample
	typed := map[string]string{} // base metric -> type
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	seen := map[string]bool{}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				t.Fatalf("line %d: bare comment %q (want # TYPE or # HELP)", lineNo, line)
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					t.Fatalf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !promMetricRe.MatchString(name) {
					t.Fatalf("line %d: invalid metric name %q", lineNo, name)
				}
				if typ != "counter" && typ != "gauge" && typ != "histogram" && typ != "summary" && typ != "untyped" {
					t.Fatalf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := typed[name]; dup {
					t.Fatalf("line %d: second TYPE line for %q", lineNo, name)
				}
				typed[name] = typ
			case "HELP":
				if len(fields) < 3 {
					t.Fatalf("line %d: malformed HELP line %q", lineNo, line)
				}
			default:
				t.Fatalf("line %d: unknown comment directive %q", lineNo, line)
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparsable sample %q", lineNo, line)
		}
		name, labelBody, valueText := m[1], m[2], m[3]
		if !promMetricRe.MatchString(name) {
			t.Fatalf("line %d: invalid metric name %q", lineNo, name)
		}
		v, err := strconv.ParseFloat(valueText, 64)
		if err != nil {
			// Prometheus accepts NaN/+Inf/-Inf spellings, which ParseFloat
			// already handles; anything else is a genuine error.
			t.Fatalf("line %d: unparsable value %q: %v", lineNo, valueText, err)
		}
		labels := parseLabels(t, lineNo, labelBody)
		// The TYPE line for the sample's metric must already have appeared.
		// Histogram samples are typed under their base name.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if _, ok := typed[trimmed]; ok {
					base = trimmed
				}
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q before its TYPE line", lineNo, line)
		}
		key := name + canonicalLabels(labels)
		if seen[key] {
			t.Fatalf("line %d: duplicate series %q", lineNo, key)
		}
		seen[key] = true
		samples = append(samples, promSample{name: name, labels: labels, value: v, line: lineNo})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func parseLabels(t *testing.T, lineNo int, body string) map[string]string {
	t.Helper()
	labels := map[string]string{}
	if body == "" {
		return labels
	}
	body = strings.TrimSuffix(strings.TrimPrefix(body, "{"), "}")
	for _, pair := range splitLabelPairs(body) {
		eq := strings.Index(pair, "=")
		if eq < 0 {
			t.Fatalf("line %d: malformed label pair %q", lineNo, pair)
		}
		name, raw := pair[:eq], pair[eq+1:]
		if !promLabelRe.MatchString(name) {
			t.Fatalf("line %d: invalid label name %q", lineNo, name)
		}
		val, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("line %d: label %s value %q not a quoted string: %v", lineNo, name, raw, err)
		}
		if _, dup := labels[name]; dup {
			t.Fatalf("line %d: duplicate label %q", lineNo, name)
		}
		labels[name] = val
	}
	return labels
}

// splitLabelPairs splits a label body on commas outside quotes.
func splitLabelPairs(body string) []string {
	var pairs []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				pairs = append(pairs, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		pairs = append(pairs, body[start:])
	}
	return pairs
}

func canonicalLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("{")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q,", k, labels[k])
	}
	sb.WriteString("}")
	return sb.String()
}

// lintHistograms checks bucket monotonicity and the +Inf/_count agreement
// for every histogram series in the samples.
func lintHistograms(t *testing.T, samples []promSample) {
	t.Helper()
	type histKey struct{ name, labels string }
	buckets := map[histKey][]promSample{}
	counts := map[histKey]float64{}
	for _, s := range samples {
		if strings.HasSuffix(s.name, "_bucket") {
			rest := map[string]string{}
			for k, v := range s.labels {
				if k != "le" {
					rest[k] = v
				}
			}
			if _, ok := s.labels["le"]; !ok {
				t.Fatalf("line %d: histogram bucket without le label", s.line)
			}
			k := histKey{strings.TrimSuffix(s.name, "_bucket"), canonicalLabels(rest)}
			buckets[k] = append(buckets[k], s)
		}
		if strings.HasSuffix(s.name, "_count") {
			counts[histKey{strings.TrimSuffix(s.name, "_count"), canonicalLabels(s.labels)}] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition (test expects at least one histogram)")
	}
	for k, bs := range buckets {
		// Buckets appear in export order; le must be ascending and counts
		// cumulative.
		lastLe := -1.0
		lastCount := -1.0
		sawInf := false
		for _, b := range bs {
			le := b.labels["le"]
			var bound float64
			if le == "+Inf" {
				sawInf = true
				bound = 0
			} else {
				var err error
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("line %d: unparsable le %q", b.line, le)
				}
				if sawInf {
					t.Fatalf("line %d: finite bucket after +Inf in %s%s", b.line, k.name, k.labels)
				}
				if bound <= lastLe && lastLe >= 0 {
					t.Fatalf("line %d: le %q not ascending in %s%s", b.line, le, k.name, k.labels)
				}
				lastLe = bound
			}
			if b.value < lastCount {
				t.Fatalf("line %d: bucket counts not cumulative in %s%s (%v < %v)", b.line, k.name, k.labels, b.value, lastCount)
			}
			lastCount = b.value
		}
		if !sawInf {
			t.Fatalf("%s%s: no explicit +Inf bucket", k.name, k.labels)
		}
		total, ok := counts[k]
		if !ok {
			t.Fatalf("%s%s: buckets without a _count series", k.name, k.labels)
		}
		if bs[len(bs)-1].value != total {
			t.Fatalf("%s%s: +Inf bucket %v != _count %v", k.name, k.labels, bs[len(bs)-1].value, total)
		}
	}
}

// populatedRegistry exercises every series shape the repository exports:
// bare and labeled counters and gauges, and bare and labeled histograms
// (including multiple label sets of one base name).
func populatedRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("dgp_rounds_total").Add(12)
	reg.Counter(`dgp_faults_total{kind="drop"}`).Add(3)
	reg.Counter(`dgp_faults_total{kind="dup"}`).Add(1)
	reg.Gauge("dgp_eta").Set(7.5)
	reg.Gauge(`dgp_eta{measure="flips"}`).Set(3)
	h := reg.Histogram("dgp_round_seconds", DefaultDurationBuckets)
	h.Observe(5e-6)
	h.Observe(0.002)
	for _, phase := range []string{"send", "route", "receive"} {
		lh := reg.Histogram(`dgp_round_seconds{phase="`+phase+`",shards="2"}`, DefaultDurationBuckets)
		lh.Observe(1e-5)
		lh.Observe(2.5) // lands in +Inf
	}
	return reg
}

func TestPrometheusExpositionLint(t *testing.T) {
	var sb strings.Builder
	if err := populatedRegistry().Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, sb.String())
	lintHistograms(t, samples)

	// The labeled histograms must keep their identifying labels on export.
	found := 0
	for _, s := range samples {
		if s.name == "dgp_round_seconds_bucket" && s.labels["phase"] != "" {
			if s.labels["shards"] != "2" {
				t.Fatalf("line %d: phase bucket lost its shards label: %v", s.line, s.labels)
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("labeled histogram buckets missing from exposition")
	}
}

func TestPrometheusLintTelemetrySnapshot(t *testing.T) {
	tel := NewTelemetry(populatedRegistry())
	tel.RoundHistogram("round", 4).Observe(0.01)
	tel.SampleRuntime()
	var sb strings.Builder
	if err := tel.Registry().Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lintHistograms(t, parseProm(t, sb.String()))
}
