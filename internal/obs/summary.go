package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file turns a raw event stream into the aggregate views the tooling
// exposes: Summarize builds a structured per-run/per-phase digest (the body
// of `dgp-trace summarize`), and Aggregate folds a stream into a metrics
// Registry (the body of `dgp-bench -metrics`).

// PhaseSummary aggregates the span entries of one named template stage (or
// lane/section) within one run.
type PhaseSummary struct {
	// Run is the 0-based run index within the trace (heal traces hold a
	// primary run followed by a recovery run).
	Run int `json:"run"`
	// Name is the span name without the "stage:" prefix.
	Name string `json:"name"`
	// FirstRound and LastRound bound the rounds in which the span appeared.
	FirstRound int `json:"first_round"`
	LastRound  int `json:"last_round"`
	// Entries counts span events (≈ node-rounds spent in the stage).
	Entries int `json:"entries"`
	// Budget is the stage's declared round budget (0 = none declared).
	Budget int64 `json:"budget,omitempty"`
}

// Rounds returns how many rounds the phase spanned.
func (p PhaseSummary) Rounds() int { return p.LastRound - p.FirstRound + 1 }

// OverBudget reports whether a declared budget was exceeded.
func (p PhaseSummary) OverBudget() bool {
	return p.Budget > 0 && int64(p.Rounds()) > p.Budget
}

// FaultCount is one (round, kind) fault-timeline entry.
type FaultCount struct {
	Run   int    `json:"run"`
	Round int    `json:"round"`
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// EtaPoint is one error-measure snapshot in trace order.
type EtaPoint struct {
	Run   int    `json:"run"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Text  string `json:"text,omitempty"`
}

// RunSummary aggregates one engine run within a trace.
type RunSummary struct {
	// Run is the 0-based run index.
	Run int `json:"run"`
	// N and M are the node and edge counts from the run-start event.
	N int64 `json:"n"`
	M int64 `json:"m"`
	// Rounds is the last executed round.
	Rounds int64 `json:"rounds"`
	// Messages and Bits count delivered traffic (duplicates included).
	Messages int64 `json:"messages"`
	Bits     int64 `json:"bits"`
	// Dropped and DroppedBits count adversary-dropped traffic; Corrupted
	// counts corrupted deliveries; Duplicated counts extra injected copies.
	Dropped     int64 `json:"dropped,omitempty"`
	DroppedBits int64 `json:"dropped_bits,omitempty"`
	Corrupted   int64 `json:"corrupted,omitempty"`
	Duplicated  int64 `json:"duplicated,omitempty"`
	// Crashes counts crash events; Outputs counts decision commits;
	// Deadlines counts watchdog hits.
	Crashes   int `json:"crashes,omitempty"`
	Outputs   int `json:"outputs,omitempty"`
	Deadlines int `json:"deadlines,omitempty"`
	// Err is the run's terminal error, if it aborted.
	Err string `json:"err,omitempty"`
}

// StreamSummary aggregates the dynamic-session events of a trace: how the
// update stream was consumed and how often the retry/degradation ladder
// fired.
type StreamSummary struct {
	// Sessions counts session-open events.
	Sessions int `json:"sessions"`
	// Applied, Duplicates, and Rejected count update-batch outcomes.
	Applied    int `json:"applied,omitempty"`
	Duplicates int `json:"duplicates,omitempty"`
	Rejected   int `json:"rejected,omitempty"`
	// Damaged sums the nodes whose adjacency the applied batches changed.
	Damaged int64 `json:"damaged,omitempty"`
	// Widened and FullReruns count retry-ladder escalations by rung.
	Widened    int `json:"widened,omitempty"`
	FullReruns int `json:"full_reruns,omitempty"`
}

// Summary is the structured digest of one trace.
type Summary struct {
	// Meta is the "problem/algorithm" label from the meta event, if present.
	Meta string `json:"meta,omitempty"`
	// MetaText carries the meta event's free-form text.
	MetaText string `json:"meta_text,omitempty"`
	// Runs holds one entry per engine run in trace order.
	Runs []RunSummary `json:"runs"`
	// Phases holds per-stage aggregates in first-appearance order.
	Phases []PhaseSummary `json:"phases,omitempty"`
	// Faults is the fault timeline in trace order.
	Faults []FaultCount `json:"faults,omitempty"`
	// Etas is the η trajectory in trace order.
	Etas []EtaPoint `json:"etas,omitempty"`
	// Marks are wrapper-level phase markers (heal: primary/valid/...).
	Marks []string `json:"marks,omitempty"`
	// Stream aggregates dynamic-session events; nil when the trace holds
	// none.
	Stream *StreamSummary `json:"stream,omitempty"`
	// Events is the total event count summarized.
	Events int `json:"events"`
	// Truncated is the number of events the recorder's ring overwrote before
	// the window this summary was built from (from the EvTruncated marker).
	// When it is non-zero every total in the summary is a lower bound.
	Truncated int64 `json:"truncated,omitempty"`
}

// TotalRounds sums rounds across all runs.
func (s Summary) TotalRounds() int64 {
	var t int64
	for _, r := range s.Runs {
		t += r.Rounds
	}
	return t
}

// SpanStagePrefix marks machine annotations that open a named template
// stage; the remainder of the annotation is the stage name.
const SpanStagePrefix = "stage:"

// Summarize folds an event stream into a Summary. It tolerates truncated
// traces (ring overflow): a run with no run-start still accumulates.
func Summarize(events []Event) Summary {
	var s Summary
	s.Events = len(events)
	run := -1
	ensureRun := func() *RunSummary {
		if run < 0 || run >= len(s.Runs) {
			s.Runs = append(s.Runs, RunSummary{Run: len(s.Runs)})
			run = len(s.Runs) - 1
		}
		return &s.Runs[run]
	}
	phaseIdx := make(map[string]int) // "run/name" -> index into s.Phases
	faultIdx := make(map[string]int) // "run/round/kind" -> index into s.Faults
	for _, e := range events {
		switch e.Type {
		case EvTruncated:
			s.Truncated += e.Value
		case EvMeta:
			s.Meta = e.Name
			s.MetaText = e.Text
		case EvRunStart:
			s.Runs = append(s.Runs, RunSummary{Run: len(s.Runs), N: e.Value, M: e.Aux})
			run = len(s.Runs) - 1
		case EvRunEnd:
			r := ensureRun()
			r.Rounds = e.Value
			r.Messages = e.Aux
			r.Err = e.Err
		case EvRoundEnd:
			r := ensureRun()
			r.Bits += e.Aux
			if e.Err != "" {
				r.Err = e.Err
			}
		case EvCrash:
			ensureRun().Crashes++
		case EvOutput:
			ensureRun().Outputs++
		case EvDeadline:
			ensureRun().Deadlines++
		case EvFault:
			r := ensureRun()
			switch e.Name {
			case "drop":
				r.Dropped++
				r.DroppedBits += e.Value
			case "corrupt":
				r.Corrupted++
			case "duplicate":
				r.Duplicated += e.Value
			}
			key := fmt.Sprintf("%d/%d/%s", r.Run, e.Round, e.Name)
			if i, ok := faultIdx[key]; ok {
				s.Faults[i].Count++
			} else {
				faultIdx[key] = len(s.Faults)
				s.Faults = append(s.Faults, FaultCount{Run: r.Run, Round: e.Round, Kind: e.Name, Count: 1})
			}
		case EvSpan:
			if !strings.HasPrefix(e.Name, SpanStagePrefix) {
				continue
			}
			r := ensureRun()
			name := e.Name[len(SpanStagePrefix):]
			key := fmt.Sprintf("%d/%s", r.Run, name)
			i, ok := phaseIdx[key]
			if !ok {
				i = len(s.Phases)
				phaseIdx[key] = i
				s.Phases = append(s.Phases, PhaseSummary{
					Run: r.Run, Name: name,
					FirstRound: e.Round, LastRound: e.Round,
					Budget: e.Value,
				})
			}
			p := &s.Phases[i]
			p.Entries++
			if e.Round < p.FirstRound {
				p.FirstRound = e.Round
			}
			if e.Round > p.LastRound {
				p.LastRound = e.Round
			}
			if p.Budget == 0 && e.Value > 0 {
				p.Budget = e.Value
			}
		case EvEta:
			// η snapshots may precede run-start (input η from the wrapper);
			// attribute those to the upcoming run without materializing it.
			ri := run
			if ri < 0 {
				ri = len(s.Runs)
			}
			s.Etas = append(s.Etas, EtaPoint{Run: ri, Name: e.Name, Value: e.Value, Text: e.Text})
		case EvPhase:
			s.Marks = append(s.Marks, e.Name)
		case EvSession:
			if s.Stream == nil {
				s.Stream = &StreamSummary{}
			}
			if e.Name == "open" {
				s.Stream.Sessions++
			}
		case EvUpdate:
			if s.Stream == nil {
				s.Stream = &StreamSummary{}
			}
			switch e.Name {
			case "applied":
				s.Stream.Applied++
				s.Stream.Damaged += e.Aux
			case "duplicate":
				s.Stream.Duplicates++
			case "rejected":
				s.Stream.Rejected++
			}
		case EvRetry:
			if s.Stream == nil {
				s.Stream = &StreamSummary{}
			}
			switch e.Name {
			case "widen":
				s.Stream.Widened++
			case "full":
				s.Stream.FullReruns++
			}
		}
	}
	return s
}

// WriteText renders the summary for terminal consumption, including
// per-phase budget verdicts against declared round budgets.
func (s Summary) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	if s.Truncated > 0 {
		bw.printf("WARNING: trace truncated — ring buffer overwrote %d events; every total below is a lower bound (raise the recorder capacity)\n", s.Truncated)
	}
	if s.Meta != "" {
		bw.printf("trace: %s", s.Meta)
		if s.MetaText != "" {
			bw.printf("  (%s)", s.MetaText)
		}
		bw.printf("\n")
	}
	bw.printf("events: %d\n", s.Events)
	for _, r := range s.Runs {
		bw.printf("run %d: n=%d m=%d rounds=%d messages=%d bits=%d",
			r.Run, r.N, r.M, r.Rounds, r.Messages, r.Bits)
		if r.Dropped > 0 || r.Corrupted > 0 || r.Duplicated > 0 {
			bw.printf(" dropped=%d(%d bits) corrupted=%d duplicated=%d",
				r.Dropped, r.DroppedBits, r.Corrupted, r.Duplicated)
		}
		if r.Crashes > 0 {
			bw.printf(" crashes=%d", r.Crashes)
		}
		if r.Outputs > 0 {
			bw.printf(" outputs=%d", r.Outputs)
		}
		if r.Err != "" {
			bw.printf(" error=%q", r.Err)
		}
		bw.printf("\n")
	}
	if len(s.Phases) > 0 {
		bw.printf("phases:\n")
		bw.printf("  %-4s %-24s %-12s %-8s %-8s %s\n", "run", "name", "rounds", "span", "budget", "verdict")
		for _, p := range s.Phases {
			span := fmt.Sprintf("%d-%d", p.FirstRound, p.LastRound)
			budget := "-"
			verdict := "-"
			if p.Budget > 0 {
				budget = fmt.Sprintf("%d", p.Budget)
				if p.OverBudget() {
					verdict = fmt.Sprintf("OVER (+%d)", int64(p.Rounds())-p.Budget)
				} else {
					verdict = "within"
				}
			}
			bw.printf("  %-4d %-24s %-12d %-8s %-8s %s\n", p.Run, p.Name, p.Rounds(), span, budget, verdict)
		}
	}
	if len(s.Faults) > 0 {
		bw.printf("faults:\n")
		for _, f := range s.Faults {
			bw.printf("  run %d round %-5d %-10s x%d\n", f.Run, f.Round, f.Kind, f.Count)
		}
	}
	if len(s.Etas) > 0 {
		bw.printf("eta trajectory:\n")
		for _, p := range s.Etas {
			bw.printf("  run %d %-12s %-8d %s\n", p.Run, p.Name, p.Value, p.Text)
		}
	}
	if len(s.Marks) > 0 {
		bw.printf("marks: %s\n", strings.Join(s.Marks, " -> "))
	}
	if st := s.Stream; st != nil {
		bw.printf("sessions: %d open, batches applied=%d duplicate=%d rejected=%d damaged=%d",
			st.Sessions, st.Applied, st.Duplicates, st.Rejected, st.Damaged)
		if st.Widened > 0 || st.FullReruns > 0 {
			bw.printf(" escalations: widen=%d full=%d", st.Widened, st.FullReruns)
		}
		bw.printf("\n")
	}
	return bw.err
}

// errWriter collapses repeated Fprintf error handling.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Aggregate folds an event stream into a fresh metrics Registry. Counter
// names follow Prometheus conventions; fault counters carry a kind label.
func Aggregate(events []Event) *Registry {
	return AggregateInto(NewRegistry(), events)
}

// AggregateInto folds an event stream into an existing registry (created
// when reg is nil) and returns it, so trace-derived metrics can share one
// registry with the telemetry gauges and per-phase histograms.
func AggregateInto(reg *Registry, events []Event) *Registry {
	if reg == nil {
		reg = NewRegistry()
	}
	for _, e := range events {
		switch e.Type {
		case EvTruncated:
			reg.Counter("dgp_trace_truncated_events_total").Add(e.Value)
		case EvRunStart:
			reg.Counter("dgp_runs_total").Inc()
			reg.Gauge("dgp_nodes").Set(float64(e.Value))
			reg.Gauge("dgp_edges").Set(float64(e.Aux))
		case EvRunEnd:
			reg.Counter("dgp_rounds_total").Add(e.Value)
			if e.Err != "" {
				reg.Counter("dgp_run_errors_total").Inc()
			}
		case EvRoundEnd:
			reg.Counter("dgp_messages_delivered_total").Add(e.Value)
			reg.Counter("dgp_bits_delivered_total").Add(e.Aux)
			if e.DurNS > 0 {
				reg.Histogram("dgp_round_seconds", DefaultDurationBuckets).
					Observe(float64(e.DurNS) / 1e9)
			}
		case EvFault:
			reg.Counter("dgp_faults_total{kind=\"" + e.Name + "\"}").Inc()
			if e.Name == "drop" {
				reg.Counter("dgp_bits_dropped_total").Add(e.Value)
			}
		case EvCrash:
			reg.Counter("dgp_crashes_total").Inc()
		case EvOutput:
			reg.Counter("dgp_outputs_total").Inc()
		case EvDeadline:
			reg.Counter("dgp_deadlines_total").Inc()
		case EvCarve:
			reg.Gauge("dgp_heal_residual").Set(float64(e.Value))
			reg.Gauge("dgp_heal_demoted").Set(float64(e.Aux))
		case EvEta:
			reg.Gauge("dgp_eta{phase=\"" + e.Name + "\"}").Set(float64(e.Value))
		case EvSession:
			if e.Name == "open" {
				reg.Counter("dgp_sessions_total").Inc()
			}
		case EvUpdate:
			reg.Counter("dgp_session_batches_total{outcome=\"" + e.Name + "\"}").Inc()
			if e.Name == "applied" {
				reg.Counter("dgp_session_damaged_nodes_total").Add(e.Aux)
			}
		case EvRetry:
			reg.Counter("dgp_session_retries_total{rung=\"" + e.Name + "\"}").Inc()
		case EvShardExchange:
			shard := strconv.Itoa(e.Node)
			reg.Counter("dgp_shard_messages_total{shard=\"" + shard + "\",kind=\"" + e.Name + "\"}").Add(e.Value)
			reg.Counter("dgp_shard_bits_total{shard=\"" + shard + "\",kind=\"" + e.Name + "\"}").Add(e.Aux)
		}
	}
	return reg
}
