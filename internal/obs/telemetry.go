package obs

import (
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/metrics"
	"strconv"
)

// This file is the runtime resource telemetry half of the observability
// layer: per-phase round wall-time histograms recorded by the engine, and
// runtime/metrics-sampled heap/goroutine/GC gauges, both feeding the same
// metrics Registry the trace aggregation writes to. ServeDebug bundles the
// registry's Prometheus export with /healthz and /debug/pprof — the debug
// surface the future dgp-serve daemon mounts directly.
//
// The determinism contract is untouched: telemetry only decorates the
// metrics registry (never traces, results, or scheduling), every clock read
// stays inside this package (obs.Now/obs.Since, the seededrand-audited
// funnel), and a nil *Telemetry disables everything down to a pointer
// check — the engine's 0 allocs/round steady-state budget holds with
// telemetry detached.

// Telemetry bundles a metrics Registry with the runtime resource samplers.
// The zero value is not usable; call NewTelemetry. All methods are safe on a
// nil receiver (they no-op or return nil), so call sites need no guards.
type Telemetry struct {
	reg *Registry
}

// NewTelemetry returns a Telemetry writing into reg (a fresh registry when
// reg is nil).
func NewTelemetry(reg *Registry) *Telemetry {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Telemetry{reg: reg}
}

// Registry returns the underlying metrics registry (nil on a nil receiver).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// RoundHistogram returns the per-phase round wall-time histogram
// `dgp_round_seconds{phase="<phase>",shards="<shards>"}` (seconds,
// DefaultDurationBuckets), or nil on a nil receiver. The engine resolves
// these once per run on the cold setup path and observes into the returned
// histogram from the round loop — label formatting never happens on the hot
// path. The shards label is the run's configured shard count: lanes of one
// round run concurrently, so phase wall time is measured per round at the
// supervisor, not per lane.
func (t *Telemetry) RoundHistogram(phase string, shards int) *Histogram {
	if t == nil {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	name := "dgp_round_seconds{phase=" + strconv.Quote(phase) + ",shards=" + strconv.Quote(strconv.Itoa(shards)) + "}"
	return t.reg.Histogram(name, DefaultDurationBuckets)
}

// runtimeGauges maps runtime/metrics sample names to the exported gauge
// series. Only scalar (uint64/float64) samples appear here; the GC pause
// distribution is handled separately.
var runtimeGauges = []struct {
	sample string
	gauge  string
}{
	{"/memory/classes/heap/objects:bytes", "dgp_heap_bytes"},
	{"/gc/heap/objects:objects", "dgp_heap_objects"},
	{"/sched/goroutines:goroutines", "dgp_goroutines"},
	{"/gc/cycles/total:gc-cycles", "dgp_gc_cycles_total"},
}

// gcPauseSample is the runtime/metrics GC stop-the-world pause
// distribution (seconds).
const gcPauseSample = "/sched/pauses/total/gc:seconds"

// SampleRuntime reads the Go runtime's resource metrics (runtime/metrics)
// into the registry: dgp_heap_bytes, dgp_heap_objects, dgp_goroutines,
// dgp_gc_cycles_total, dgp_gomaxprocs gauges, plus dgp_gc_pauses_total and
// dgp_gc_pause_seconds_total derived from the GC pause distribution (the
// pause sum approximates each pause by its bucket midpoint — the runtime
// exports a histogram, not a running sum). Samples the runtime does not
// support are skipped, so the set degrades gracefully across Go versions.
// No-op on a nil receiver.
func (t *Telemetry) SampleRuntime() {
	if t == nil {
		return
	}
	samples := make([]metrics.Sample, 0, len(runtimeGauges)+1)
	for _, rg := range runtimeGauges {
		samples = append(samples, metrics.Sample{Name: rg.sample})
	}
	samples = append(samples, metrics.Sample{Name: gcPauseSample})
	metrics.Read(samples)
	for i, rg := range runtimeGauges {
		switch samples[i].Value.Kind() {
		case metrics.KindUint64:
			t.reg.Gauge(rg.gauge).Set(float64(samples[i].Value.Uint64()))
		case metrics.KindFloat64:
			t.reg.Gauge(rg.gauge).Set(samples[i].Value.Float64())
		}
	}
	if pauses := samples[len(samples)-1]; pauses.Value.Kind() == metrics.KindFloat64Histogram {
		count, sum := summarizeFloat64Histogram(pauses.Value.Float64Histogram())
		t.reg.Gauge("dgp_gc_pauses_total").Set(float64(count))
		t.reg.Gauge("dgp_gc_pause_seconds_total").Set(sum)
	}
	t.reg.Gauge("dgp_gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))
}

// summarizeFloat64Histogram reduces a runtime/metrics histogram to its
// total count and a midpoint-approximated sum. Unbounded edge buckets
// (±Inf) contribute their finite edge instead of a midpoint.
func summarizeFloat64Histogram(h *metrics.Float64Histogram) (count uint64, sum float64) {
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		count += c
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if math.IsInf(lo, 0) {
			mid = hi
		} else if math.IsInf(hi, 0) {
			mid = lo
		}
		sum += float64(c) * mid
	}
	return count, sum
}

// ServeDebug returns an http.Handler bundling the operational debug
// surface:
//
//	/metrics      Prometheus text exposition of t's registry, with the
//	              runtime resource gauges re-sampled on every scrape
//	/healthz      liveness probe (200 "ok")
//	/debug/pprof  the standard Go profiling endpoints (index, profile,
//	              heap, goroutine, trace, ...)
//
// A nil t serves a fresh empty Telemetry (runtime gauges only). The handler
// is the seed of the dgp-serve daemon's debug listener; it is safe for
// concurrent scrapes (registry snapshots are taken under the registry
// lock).
func ServeDebug(t *Telemetry) http.Handler {
	if t == nil {
		t = NewTelemetry(nil)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		t.SampleRuntime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := t.Registry().Snapshot().WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is abort the body.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
