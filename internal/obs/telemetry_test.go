package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRoundHistogramNaming(t *testing.T) {
	tel := NewTelemetry(nil)
	h := tel.RoundHistogram("send", 4)
	if h == nil {
		t.Fatal("RoundHistogram returned nil on a live telemetry")
	}
	h.Observe(0.5)
	snap := tel.Registry().Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("want 1 histogram, got %d", len(snap.Histograms))
	}
	want := `dgp_round_seconds{phase="send",shards="4"}`
	if snap.Histograms[0].Name != want {
		t.Fatalf("series %q, want %q", snap.Histograms[0].Name, want)
	}
	// Shard counts below 1 normalize to the unsharded engine's 1.
	if got := tel.RoundHistogram("round", 0); got != tel.RoundHistogram("round", 1) {
		t.Fatal("shards 0 and 1 should resolve to the same series")
	}
}

func TestTelemetryNilReceiver(t *testing.T) {
	var tel *Telemetry
	if tel.RoundHistogram("send", 1) != nil {
		t.Fatal("nil telemetry should hand out nil histograms")
	}
	if tel.Registry() != nil {
		t.Fatal("nil telemetry should have a nil registry")
	}
	tel.SampleRuntime() // must not panic
}

func TestSampleRuntimeSetsGauges(t *testing.T) {
	tel := NewTelemetry(nil)
	tel.SampleRuntime()
	snap := tel.Registry().Snapshot()
	got := map[string]float64{}
	for _, g := range snap.Gauges {
		got[g.Name] = g.Value
	}
	if got["dgp_heap_bytes"] <= 0 {
		t.Fatalf("dgp_heap_bytes = %v, want > 0", got["dgp_heap_bytes"])
	}
	if got["dgp_goroutines"] < 1 {
		t.Fatalf("dgp_goroutines = %v, want >= 1", got["dgp_goroutines"])
	}
	if got["dgp_gomaxprocs"] < 1 {
		t.Fatalf("dgp_gomaxprocs = %v, want >= 1", got["dgp_gomaxprocs"])
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	tel := NewTelemetry(nil)
	tel.RoundHistogram("round", 1).Observe(0.01)
	srv := httptest.NewServer(ServeDebug(tel))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	// The scrape output must itself pass the exposition lint, and carry both
	// the round histogram and a freshly sampled resource gauge.
	lintHistograms(t, parseProm(t, body))
	if !strings.Contains(body, `dgp_round_seconds_bucket{phase="round"`) {
		t.Fatalf("/metrics missing round histogram:\n%s", body)
	}
	if !strings.Contains(body, "dgp_heap_bytes") {
		t.Fatalf("/metrics missing runtime gauges:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: %d", resp.StatusCode)
	}
}

func TestServeDebugNilTelemetry(t *testing.T) {
	srv := httptest.NewServer(ServeDebug(nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "dgp_goroutines") {
		t.Fatalf("/metrics on nil telemetry: %d\n%s", resp.StatusCode, body)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// --- export edge cases ---

func TestEmptyRegistrySnapshotExport(t *testing.T) {
	snap := NewRegistry().Snapshot()
	var prom strings.Builder
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if prom.String() != "" {
		t.Fatalf("empty registry exported %q, want nothing", prom.String())
	}
	var js strings.Builder
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "null") && !strings.Contains(js.String(), "[]") {
		t.Fatalf("empty registry JSON %q missing empty collections", js.String())
	}
}

func TestFmtFloatSpecialValues(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{0, "0"},
		{42, "42"},
		{-7, "-7"},
		{0.5, "0.5"},
		{1e-6, "1e-06"},
	}
	for _, tc := range cases {
		if got := fmtFloat(tc.in); got != tc.want {
			t.Errorf("fmtFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestHistogramObserveOnBucketBound(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h", []float64{1, 2, 4})
	h.Observe(2) // exactly on a bound: le is inclusive, so the 2-bucket takes it
	snap := reg.Snapshot()
	hv := snap.Histograms[0]
	if hv.Counts[0] != 0 || hv.Counts[1] != 1 || hv.Counts[2] != 1 {
		t.Fatalf("observation on bound 2 landed wrong: counts %v", hv.Counts)
	}
	if hv.Count != 1 || hv.Sum != 2 {
		t.Fatalf("count/sum %d/%v, want 1/2", hv.Count, hv.Sum)
	}
}
