package perf

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Direction says which way a metric is allowed to move.
type Direction int

const (
	// HigherIsWorse gates increases (rounds, allocs, residuals, traffic).
	HigherIsWorse Direction = iota
	// HigherIsBetter gates decreases (throughput).
	HigherIsBetter
	// Informational never gates: the metric is machine-dependent wall-clock
	// data, recorded for trend reading across runs of one environment.
	Informational
)

// Tolerance is the allowed movement of one metric in its bad direction:
// max(Abs, Rel*|base|). Movement in the good direction is reported as an
// improvement and never gates.
type Tolerance struct {
	Rel float64
	Abs float64
	Dir Direction
}

// Policy maps metric names to tolerances; Default applies to names without
// an entry.
type Policy struct {
	Metrics map[string]Tolerance
	Default Tolerance
}

// For returns the tolerance for the metric name.
func (p Policy) For(name string) Tolerance {
	if t, ok := p.Metrics[name]; ok {
		return t
	}
	return p.Default
}

// timingSuffixes classify wall-clock metric names as informational in the
// default policy; everything the engine counts deterministically gates.
var timingSuffixes = []string{"_seconds", "_per_sec", "_ns"}

// DefaultPolicy is the repository's noise model:
//
//   - Wall-clock metrics (suffix _seconds, _per_sec, _ns) are informational:
//     CI machines differ, so timing is recorded, never asserted.
//   - allocs_per_round gates with a small band (Abs 4, Rel 0.5): the engine
//     contract is a deterministic malloc count, but GC bookkeeping jitters
//     it by a few, and a genuine regression (the 2× fixture) still trips it.
//   - Everything else — rounds, messages, bits, residuals, cut edges,
//     boundary traffic — is a deterministic seeded counter and gates
//     exactly (any increase is a regression; a decrease is an improvement).
func DefaultPolicy() Policy {
	return Policy{
		Metrics: map[string]Tolerance{
			"allocs_per_round": {Rel: 0.5, Abs: 4, Dir: HigherIsWorse},
		},
		Default: Tolerance{Dir: HigherIsWorse},
	}
}

// classify resolves the effective tolerance of name under p, applying the
// timing-suffix rule before the default.
func (p Policy) classify(name string) Tolerance {
	if t, ok := p.Metrics[name]; ok {
		return t
	}
	for _, suf := range timingSuffixes {
		if strings.HasSuffix(name, suf) {
			return Tolerance{Dir: Informational}
		}
	}
	return p.Default
}

// Verdicts of one metric delta.
const (
	VerdictOK          = "ok"          // within tolerance
	VerdictRegression  = "regression"  // moved beyond tolerance in the bad direction
	VerdictImprovement = "improvement" // moved beyond tolerance in the good direction
	VerdictInfo        = "info"        // informational metric, not gated
)

// Delta is one metric's movement between two ledgers.
type Delta struct {
	Row, Metric string
	Base, Head  float64
	Verdict     string
	// Noise flags an informational delta within 3σ of the baseline's
	// wall-time sample spread (when the base row carries a matching hist
	// summary): the movement is indistinguishable from run-to-run noise.
	Noise bool
}

// Report is the outcome of comparing one experiment's ledgers.
type Report struct {
	Experiment string
	// EnvChanged lists human-readable environment differences.
	EnvChanged []string
	// ConfigChanged reports that the sweep configurations differ (rows are
	// still compared by name; the report flags the mismatch).
	ConfigChanged bool
	// MissingRows are baseline rows absent from head (coverage loss);
	// AddedRows are head rows absent from the baseline.
	MissingRows, AddedRows []string
	// Deltas are the per-metric movements, in (row, metric) order.
	Deltas []Delta
	// Regressions counts VerdictRegression deltas; missing rows also gate.
	Regressions int
}

// Gate reports whether the comparison passes: no regressions and no
// coverage loss.
func (r *Report) Gate() bool { return r.Regressions == 0 && len(r.MissingRows) == 0 }

// Compare diffs head against base under the policy. Both ledgers must
// validate and agree on the experiment id.
func Compare(base, head *Ledger, pol Policy) (*Report, error) {
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := head.Validate(); err != nil {
		return nil, fmt.Errorf("head: %w", err)
	}
	if base.Experiment != head.Experiment {
		return nil, fmt.Errorf("perf: comparing different experiments: %q vs %q", base.Experiment, head.Experiment)
	}
	rep := &Report{Experiment: base.Experiment}
	rep.EnvChanged = envDiff(base.Env, head.Env)
	rep.ConfigChanged = !configEqual(base.Config, head.Config)

	headRows := make(map[string]*Row, len(head.Rows))
	for i := range head.Rows {
		headRows[head.Rows[i].Name] = &head.Rows[i]
	}
	baseNames := make(map[string]bool, len(base.Rows))
	for bi := range base.Rows {
		b := &base.Rows[bi]
		baseNames[b.Name] = true
		h, ok := headRows[b.Name]
		if !ok {
			rep.MissingRows = append(rep.MissingRows, b.Name)
			continue
		}
		for _, metric := range b.metricNames() {
			bv := b.Metrics[metric]
			hv, ok := h.Metrics[metric]
			if !ok {
				rep.MissingRows = append(rep.MissingRows, b.Name+"."+metric)
				continue
			}
			d := Delta{Row: b.Name, Metric: metric, Base: bv, Head: hv}
			tol := pol.classify(metric)
			d.Verdict = verdict(bv, hv, tol)
			if d.Verdict == VerdictInfo {
				if hs, ok := b.Hists[metric]; ok && hs.Std > 0 {
					d.Noise = math.Abs(hv-bv) <= 3*hs.Std
				}
			}
			if d.Verdict == VerdictRegression {
				rep.Regressions++
			}
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	for i := range head.Rows {
		if !baseNames[head.Rows[i].Name] {
			rep.AddedRows = append(rep.AddedRows, head.Rows[i].Name)
		}
	}
	return rep, nil
}

// verdict classifies one movement under a tolerance.
func verdict(base, head float64, tol Tolerance) string {
	if tol.Dir == Informational {
		return VerdictInfo
	}
	bad := head - base // positive = worse under HigherIsWorse
	if tol.Dir == HigherIsBetter {
		bad = base - head
	}
	allowed := math.Max(tol.Abs, tol.Rel*math.Abs(base))
	switch {
	case bad > allowed:
		return VerdictRegression
	case -bad > allowed:
		return VerdictImprovement
	default:
		return VerdictOK
	}
}

// envDiff lists the fields on which two environments differ.
func envDiff(a, b Environment) []string {
	var diffs []string
	add := func(field, av, bv string) {
		if av != bv {
			diffs = append(diffs, fmt.Sprintf("%s: %q -> %q", field, av, bv))
		}
	}
	add("go_version", a.GoVersion, b.GoVersion)
	add("goos", a.GOOS, b.GOOS)
	add("goarch", a.GOARCH, b.GOARCH)
	add("gomaxprocs", fmt.Sprint(a.GOMAXPROCS), fmt.Sprint(b.GOMAXPROCS))
	add("cpu_model", a.CPUModel, b.CPUModel)
	return diffs
}

// configEqual compares sweep configs by canonical JSON-ish rendering of
// sorted keys (configs round-trip through JSON, so values are comparable
// with fmt).
func configEqual(a, b map[string]any) bool {
	return renderConfig(a) == renderConfig(b)
}

func renderConfig(m map[string]any) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%v;", k, m[k])
	}
	return sb.String()
}

// WriteMarkdown renders the report as a markdown section: a verdict line,
// environment/config caveats, and a delta table (regressions first, then
// improvements, then gated-ok rows; informational rows are summarized and
// listed only when they moved beyond the recorded noise).
func (r *Report) WriteMarkdown(w io.Writer) error {
	ew := &mdWriter{w: w}
	status := "PASS"
	if !r.Gate() {
		status = "FAIL"
	}
	ew.printf("## %s — %s\n\n", r.Experiment, status)
	for _, d := range r.EnvChanged {
		ew.printf("- environment changed: %s\n", d)
	}
	if r.ConfigChanged {
		ew.printf("- sweep config changed: rows compared by name, review deltas accordingly\n")
	}
	for _, m := range r.MissingRows {
		ew.printf("- **missing in head**: `%s` (coverage loss gates)\n", m)
	}
	for _, a := range r.AddedRows {
		ew.printf("- new in head: `%s`\n", a)
	}
	ordered := append([]Delta(nil), r.Deltas...)
	rank := map[string]int{VerdictRegression: 0, VerdictImprovement: 1, VerdictOK: 2, VerdictInfo: 3}
	sort.SliceStable(ordered, func(i, j int) bool {
		return rank[ordered[i].Verdict] < rank[ordered[j].Verdict]
	})
	shown := 0
	header := false
	infoMoved, infoNoise := 0, 0
	for _, d := range ordered {
		if d.Verdict == VerdictInfo {
			if d.Noise {
				infoNoise++
				continue
			}
			infoMoved++
		}
		if d.Verdict == VerdictOK && d.Base == d.Head {
			continue // unchanged gated metrics would drown the table
		}
		if !header {
			ew.printf("\n| row | metric | base | head | delta | verdict |\n")
			ew.printf("|---|---|---:|---:|---:|---|\n")
			header = true
		}
		verdictCell := d.Verdict
		if d.Verdict == VerdictRegression {
			verdictCell = "**regression**"
		}
		ew.printf("| %s | %s | %s | %s | %s | %s |\n",
			d.Row, d.Metric, fmtMetric(d.Base), fmtMetric(d.Head), fmtDelta(d.Base, d.Head), verdictCell)
		shown++
	}
	if shown == 0 && len(r.MissingRows) == 0 {
		ew.printf("\nNo gated metric moved")
		if infoNoise > 0 {
			ew.printf(" (%d wall-clock deltas within recorded noise)", infoNoise)
		}
		ew.printf(".\n")
	} else if infoNoise > 0 {
		ew.printf("\n%d wall-clock deltas within recorded noise omitted.\n", infoNoise)
	}
	ew.printf("\n")
	return ew.err
}

// fmtMetric renders a metric value: integers plainly, fractions with
// four significant digits.
func fmtMetric(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// fmtDelta renders head-base with a relative percentage when meaningful.
func fmtDelta(base, head float64) string {
	d := head - base
	if base != 0 {
		return fmt.Sprintf("%+.4g (%+.1f%%)", d, 100*d/base)
	}
	return fmt.Sprintf("%+.4g", d)
}

// mdWriter collapses repeated Fprintf error handling.
type mdWriter struct {
	w   io.Writer
	err error
}

func (e *mdWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
