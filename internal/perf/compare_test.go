package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func twoLedgers() (base, head *Ledger) {
	base = New("scale", map[string]any{"sizes": "1000"})
	base.AddRow("ring_1000", nil, map[string]float64{
		"rounds":           12,
		"allocs_per_round": 8,
		"rounds_per_sec":   52000,
	})
	head = New("scale", map[string]any{"sizes": "1000"})
	head.AddRow("ring_1000", nil, map[string]float64{
		"rounds":           12,
		"allocs_per_round": 8,
		"rounds_per_sec":   48000,
	})
	return base, head
}

func TestCompareIdenticalGates(t *testing.T) {
	base, head := twoLedgers()
	rep, err := Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if !rep.Gate() {
		t.Fatalf("identical gated metrics should pass: %+v", rep)
	}
	// The throughput drop is timing, so it must be informational, not a
	// regression.
	for _, d := range rep.Deltas {
		if d.Metric == "rounds_per_sec" && d.Verdict != VerdictInfo {
			t.Fatalf("rounds_per_sec classified %q, want info", d.Verdict)
		}
	}
}

func TestCompareDeterministicCounterGatesExactly(t *testing.T) {
	base, head := twoLedgers()
	head.Rows[0].Metrics["rounds"] = 13
	rep, err := Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gate() || rep.Regressions != 1 {
		t.Fatalf("one extra round must gate: %+v", rep)
	}
	// The good direction is an improvement, never a regression.
	head.Rows[0].Metrics["rounds"] = 11
	rep, err = Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Gate() {
		t.Fatalf("fewer rounds must pass: %+v", rep)
	}
}

func TestCompareAllocBand(t *testing.T) {
	base, head := twoLedgers()
	// Within the band: jitter of +3 allocs on base 8 (allowed max(4, 0.5*8)=4).
	head.Rows[0].Metrics["allocs_per_round"] = 11
	rep, err := Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Gate() {
		t.Fatalf("+3 allocs on base 8 is inside the noise band: %+v", rep)
	}
	// The synthetic 2x regression: 8 -> 16 exceeds the band.
	head.Rows[0].Metrics["allocs_per_round"] = 16
	rep, err = Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gate() {
		t.Fatalf("2x allocs_per_round must gate: %+v", rep)
	}
}

func TestCompareMissingRowGates(t *testing.T) {
	base, head := twoLedgers()
	base.AddRow("ba_1000", nil, map[string]float64{"rounds": 9})
	rep, err := Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gate() || len(rep.MissingRows) != 1 {
		t.Fatalf("coverage loss must gate: %+v", rep)
	}
	// The reverse — a new head row — is informational.
	base, head = twoLedgers()
	head.AddRow("ba_1000", nil, map[string]float64{"rounds": 9})
	rep, err = Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Gate() || len(rep.AddedRows) != 1 {
		t.Fatalf("new rows should not gate: %+v", rep)
	}
}

func TestCompareMissingMetricGates(t *testing.T) {
	base, head := twoLedgers()
	delete(head.Rows[0].Metrics, "rounds")
	rep, err := Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gate() {
		t.Fatalf("dropped metric must gate: %+v", rep)
	}
}

func TestCompareExperimentMismatch(t *testing.T) {
	base, head := twoLedgers()
	head.Experiment = "chaos"
	if _, err := Compare(base, head, DefaultPolicy()); err == nil {
		t.Fatal("Compare accepted ledgers of different experiments")
	}
}

func TestCompareSurfacesEnvAndConfigDrift(t *testing.T) {
	base, head := twoLedgers()
	base.Env.GoVersion = "go1.22.0"
	head.Env.GoVersion = "go1.24.0"
	head.Config["sizes"] = "2000"
	rep, err := Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.EnvChanged) == 0 || !rep.ConfigChanged {
		t.Fatalf("drift not surfaced: %+v", rep)
	}
}

func TestNoiseAnnotation(t *testing.T) {
	base, head := twoLedgers()
	base.Rows[0].Metrics["wall_seconds"] = 0.010
	head.Rows[0].Metrics["wall_seconds"] = 0.011
	base.Rows[0].AddHist("wall_seconds", []float64{0.009, 0.010, 0.011, 0.010})
	rep, err := Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range rep.Deltas {
		if d.Metric == "wall_seconds" {
			found = true
			if d.Verdict != VerdictInfo || !d.Noise {
				t.Fatalf("wall delta within 3 std should be flagged noise: %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("wall_seconds delta missing from report")
	}
}

func TestWriteMarkdown(t *testing.T) {
	base, head := twoLedgers()
	head.Rows[0].Metrics["allocs_per_round"] = 16
	rep, err := Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	md := sb.String()
	for _, want := range []string{"## scale — FAIL", "allocs_per_round", "**regression**", "| 8 | 16 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestCommittedFixtures pins the acceptance criterion: the gate passes when a
// ledger is compared against itself and fails on the committed synthetic 2x
// allocs/round regression.
func TestCommittedFixtures(t *testing.T) {
	basePath := filepath.Join("testdata", "baseline", "BENCH_scale.json")
	base, err := ReadFile(basePath)
	if err != nil {
		t.Fatalf("baseline fixture: %v", err)
	}
	self, err := Compare(base, base, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !self.Gate() {
		t.Fatalf("baseline vs itself must pass: %+v", self)
	}
	head, err := ReadFile(filepath.Join("testdata", "regressed", "BENCH_scale.json"))
	if err != nil {
		t.Fatalf("regressed fixture: %v", err)
	}
	rep, err := Compare(base, head, DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gate() || rep.Regressions == 0 {
		t.Fatalf("2x allocs fixture must fail the gate: %+v", rep)
	}
}
