// Package perf is the performance ledger: a machine-readable record of
// every dgp-bench sweep, and the comparison/gating machinery that keeps the
// numbers honest across commits.
//
// The repository proves the paper's bounds with text tables (EXPERIMENTS.md)
// — human-readable, but invisible to machines, so a regression in the hot
// paths (0 allocs/round, boundary-local recovery) could land silently. Each
// sweep therefore also emits a BENCH_<experiment>.json ledger: the schema
// carries the experiment id, the full sweep configuration, an environment
// capture (go version, GOMAXPROCS, CPU model), and one row per measured
// configuration with named scalar metrics plus optional wall-time sample
// summaries (internal/stats.FloatSummary).
//
// cmd/dgp-perf compares two ledgers (`compare`: markdown delta report) and
// gates CI (`gate`: non-zero exit on regression). The noise model is
// per-metric: deterministic counters (rounds, messages, residuals, cut
// edges) gate exactly, allocation counts gate with a small absolute-plus-
// relative band (GC timing jitters mallocs by a few), and wall-clock
// metrics never gate — they are recorded for trend reading, not asserted,
// because CI machines differ. See DESIGN.md §13.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"

	"repro/internal/stats"
)

// SchemaVersion identifies the ledger schema; readers reject other versions
// so stale baselines fail loudly instead of comparing garbage.
const SchemaVersion = 1

// Environment captures where a ledger's numbers were measured. Wall-clock
// metrics are only comparable within one environment; the comparison report
// surfaces environment differences instead of hiding them.
type Environment struct {
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"go_version"`
	// GOOS/GOARCH identify the platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// GOMAXPROCS and NumCPU capture the parallelism available to the run.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// CPUModel is the processor model string (best-effort: /proc/cpuinfo on
	// linux, empty elsewhere).
	CPUModel string `json:"cpu_model,omitempty"`
}

// CaptureEnvironment records the current process's environment.
func CaptureEnvironment() Environment {
	return Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
}

// cpuModel reads the first "model name" line of /proc/cpuinfo (linux);
// best-effort, "" when unavailable.
func cpuModel() string {
	if runtime.GOOS != "linux" {
		return ""
	}
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// HistSummary is a wall-time sample summary attached to a row (seconds).
// It is stats.FloatSummary under a JSON schema.
type HistSummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Sum  float64 `json:"sum"`
}

// SummarizeSeconds reduces a wall-time sample (seconds) to a HistSummary
// via internal/stats.
func SummarizeSeconds(sample []float64) HistSummary {
	s := stats.SummarizeFloats(sample)
	return HistSummary{
		N: s.N, Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max,
		P50: s.P50, P90: s.P90, P99: s.P99, Sum: s.Sum,
	}
}

// Row is one measured configuration of a sweep: a unique name (the row
// key comparisons join on), descriptive labels, named scalar metrics, and
// optional wall-time sample summaries.
type Row struct {
	Name    string                 `json:"name"`
	Labels  map[string]string      `json:"labels,omitempty"`
	Metrics map[string]float64     `json:"metrics"`
	Hists   map[string]HistSummary `json:"hists,omitempty"`
}

// Ledger is one sweep's complete benchmark record — the machine-readable
// twin of an EXPERIMENTS.md table.
type Ledger struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// Experiment identifies the sweep: enginestats, chaos, dynamic, scale,
	// shards. It also names the file: BENCH_<experiment>.json.
	Experiment string `json:"experiment"`
	// Config is the full sweep configuration (sizes, rates, seeds, engine
	// mode); comparisons require equal configs or report the mismatch.
	Config map[string]any `json:"config,omitempty"`
	// Env captures the producing environment.
	Env Environment `json:"env"`
	// Rows are the measurements, in sweep order; names are unique.
	Rows []Row `json:"rows"`
}

// New returns an empty ledger for the experiment with the current
// environment captured.
func New(experiment string, config map[string]any) *Ledger {
	return &Ledger{
		Schema:     SchemaVersion,
		Experiment: experiment,
		Config:     config,
		Env:        CaptureEnvironment(),
	}
}

// AddRow appends a row. Metrics is stored as given (not copied).
func (l *Ledger) AddRow(name string, labels map[string]string, metrics map[string]float64) *Row {
	l.Rows = append(l.Rows, Row{Name: name, Labels: labels, Metrics: metrics})
	return &l.Rows[len(l.Rows)-1]
}

// AddHist attaches a wall-time sample summary to the row.
func (r *Row) AddHist(name string, sample []float64) {
	if r.Hists == nil {
		r.Hists = make(map[string]HistSummary)
	}
	r.Hists[name] = SummarizeSeconds(sample)
}

var (
	experimentRe = regexp.MustCompile(`^[a-z][a-z0-9_-]*$`)
	metricRe     = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Validate checks the ledger against the schema: version, experiment and
// metric naming, non-empty unique rows, and finite metric values. A ledger
// that fails Validate is refused by WriteFile and by comparisons.
func (l *Ledger) Validate() error {
	if l.Schema != SchemaVersion {
		return fmt.Errorf("perf: schema %d, want %d", l.Schema, SchemaVersion)
	}
	if !experimentRe.MatchString(l.Experiment) {
		return fmt.Errorf("perf: invalid experiment id %q", l.Experiment)
	}
	if len(l.Rows) == 0 {
		return fmt.Errorf("perf: %s: no rows", l.Experiment)
	}
	seen := make(map[string]bool, len(l.Rows))
	for i, r := range l.Rows {
		if r.Name == "" {
			return fmt.Errorf("perf: %s: row %d has no name", l.Experiment, i)
		}
		if seen[r.Name] {
			return fmt.Errorf("perf: %s: duplicate row %q", l.Experiment, r.Name)
		}
		seen[r.Name] = true
		if len(r.Metrics) == 0 {
			return fmt.Errorf("perf: %s: row %q has no metrics", l.Experiment, r.Name)
		}
		for _, name := range r.metricNames() {
			if !metricRe.MatchString(name) {
				return fmt.Errorf("perf: %s: row %q: invalid metric name %q", l.Experiment, r.Name, name)
			}
			if v := r.Metrics[name]; math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("perf: %s: row %q: metric %q is %v", l.Experiment, r.Name, name, v)
			}
		}
	}
	return nil
}

// metricNames returns the row's metric names in ascending order (map
// iteration feeds a sort, never output directly).
func (r *Row) metricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for name := range r.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Filename is the on-disk name of an experiment's ledger.
func Filename(experiment string) string { return "BENCH_" + experiment + ".json" }

// WriteFile validates the ledger and writes it as indented JSON to
// dir/BENCH_<experiment>.json (creating dir), returning the path.
func (l *Ledger) WriteFile(dir string) (string, error) {
	if err := l.Validate(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, Filename(l.Experiment))
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadFile parses and validates one ledger file.
func ReadFile(path string) (*Ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &l, nil
}

// ReadDir reads every BENCH_*.json ledger in dir, keyed by experiment.
func ReadDir(dir string) (map[string]*Ledger, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ledgers := make(map[string]*Ledger)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		l, err := ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if prev, ok := ledgers[l.Experiment]; ok {
			return nil, fmt.Errorf("perf: %s: experiment %q already loaded (duplicate of %s)",
				name, l.Experiment, Filename(prev.Experiment))
		}
		ledgers[l.Experiment] = l
	}
	if len(ledgers) == 0 {
		return nil, fmt.Errorf("perf: %s: no BENCH_*.json ledgers", dir)
	}
	return ledgers, nil
}
