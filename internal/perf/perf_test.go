package perf

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func sampleLedger() *Ledger {
	l := New("scale", map[string]any{"sizes": []int{1000, 10000}, "par": false})
	l.AddRow("ring_1000", map[string]string{"family": "ring", "n": "1000"}, map[string]float64{
		"rounds":           12,
		"allocs_per_round": 1.1,
		"rounds_per_sec":   52000,
	})
	r := l.AddRow("ba_1000", map[string]string{"family": "ba", "n": "1000"}, map[string]float64{
		"rounds":           9,
		"allocs_per_round": 258.4,
	})
	r.AddHist("wall_seconds", []float64{0.010, 0.011, 0.012, 0.010})
	return l
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sampleLedger().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Ledger)
		want   string
	}{
		{"schema", func(l *Ledger) { l.Schema = 99 }, "schema"},
		{"experiment id", func(l *Ledger) { l.Experiment = "Scale Table" }, "experiment id"},
		{"no rows", func(l *Ledger) { l.Rows = nil }, "no rows"},
		{"empty row name", func(l *Ledger) { l.Rows[0].Name = "" }, "no name"},
		{"duplicate row", func(l *Ledger) { l.Rows[1].Name = l.Rows[0].Name }, "duplicate"},
		{"no metrics", func(l *Ledger) { l.Rows[0].Metrics = nil }, "no metrics"},
		{"metric name", func(l *Ledger) { l.Rows[0].Metrics["bad name"] = 1 }, "metric name"},
		{"NaN", func(l *Ledger) { l.Rows[0].Metrics["rounds"] = math.NaN() }, "NaN"},
		{"Inf", func(l *Ledger) { l.Rows[0].Metrics["rounds"] = math.Inf(1) }, "+Inf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := sampleLedger()
			tc.mutate(l)
			err := l.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken ledger")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := sampleLedger()
	path, err := l.WriteFile(dir)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if filepath.Base(path) != "BENCH_scale.json" {
		t.Fatalf("wrote %q, want BENCH_scale.json", path)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	want, _ := json.Marshal(l)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Fatalf("roundtrip mismatch:\nwrote %s\nread  %s", want, have)
	}
	if got.Rows[1].Hists["wall_seconds"].N != 4 {
		t.Fatalf("hist summary lost in roundtrip: %+v", got.Rows[1].Hists)
	}
}

func TestWriteFileRefusesInvalid(t *testing.T) {
	l := sampleLedger()
	l.Rows = nil
	if _, err := l.WriteFile(t.TempDir()); err == nil {
		t.Fatal("WriteFile accepted an invalid ledger")
	}
}

func TestReadDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := sampleLedger().WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	other := New("chaos", nil)
	other.AddRow("mis", nil, map[string]float64{"rounds": 7})
	if _, err := other.WriteFile(dir); err != nil {
		t.Fatal(err)
	}
	ledgers, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ledgers) != 2 || ledgers["scale"] == nil || ledgers["chaos"] == nil {
		t.Fatalf("ReadDir loaded %d ledgers, want scale+chaos", len(ledgers))
	}
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Fatal("ReadDir accepted a dir with no ledgers")
	}
}

func TestCaptureEnvironment(t *testing.T) {
	env := CaptureEnvironment()
	if env.GoVersion == "" || env.GOOS == "" || env.GOARCH == "" {
		t.Fatalf("incomplete environment: %+v", env)
	}
	if env.GOMAXPROCS < 1 || env.NumCPU < 1 {
		t.Fatalf("implausible parallelism: %+v", env)
	}
}

func TestSummarizeSeconds(t *testing.T) {
	s := SummarizeSeconds([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Fatalf("bad summary: %+v", s)
	}
}
