package predict

import (
	"math/rand"

	"repro/internal/exact"
	"repro/internal/graph"
)

// PerfectMIS returns an error-free MIS prediction for g: the canonical
// greedy-by-identifier maximal independent set.
func PerfectMIS(g *graph.Graph) []int {
	return exact.GreedyMISByID(g)
}

// FlipBits returns a copy of pred with k distinct random positions flipped
// (0↔1).
func FlipBits(pred []int, k int, rng *rand.Rand) []int {
	out := make([]int, len(pred))
	copy(out, pred)
	perm := rng.Perm(len(pred))
	if k > len(pred) {
		k = len(pred)
	}
	for i := 0; i < k; i++ {
		out[perm[i]] ^= 1
	}
	return out
}

// FlipProb returns a copy of pred with each bit flipped independently with
// probability p.
func FlipProb(pred []int, p float64, rng *rand.Rand) []int {
	out := make([]int, len(pred))
	copy(out, pred)
	for i := range out {
		if rng.Float64() < p {
			out[i] ^= 1
		}
	}
	return out
}

// Uniform returns a prediction vector of n copies of v.
func Uniform(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// GridBW returns the Figure 2 prediction pattern on a rows×cols grid
// (node (i, j) has index i*cols+j): prediction 1 ("black") exactly when
// i mod 4 and j mod 4 are both in {0, 1} or both in {2, 3}.
func GridBW(rows, cols int) []int {
	pred := make([]int, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a := i%4 <= 1
			b := j%4 <= 1
			if a == b {
				pred[i*cols+j] = 1
			}
		}
	}
	return pred
}

// WheelCenterOne returns the Figure 1 prediction on graph.WheelFk(k): the hub
// has prediction 1 and every other node 0, making the rim cycle an error
// component of diameter ⌊k/2⌋ in a graph of diameter 4.
func WheelCenterOne(k int) []int {
	pred := make([]int, 2*k+1)
	pred[0] = 1
	return pred
}

// Mod3Line returns the Section 9.2 prediction on a rooted directed line of
// 3k nodes (node i's parent is node i−1; node 0 is the root): prediction 0
// ("white") at distance 0 mod 3 from the root, prediction 1 otherwise.
func Mod3Line(k int) []int {
	pred := make([]int, 3*k)
	for i := range pred {
		if i%3 != 0 {
			pred[i] = 1
		}
	}
	return pred
}

// MISFromRelatedGraph solves MIS on oldG and transfers the outputs to g by
// identifier, defaulting to 0 for identifiers absent from oldG. This is the
// paper's Section 1.1 motivation: a solution computed on one network reused
// as predictions on a related one.
func MISFromRelatedGraph(g, oldG *graph.Graph) []int {
	oldOut := exact.GreedyMISByID(oldG)
	byID := make(map[int]int, oldG.N())
	for i := 0; i < oldG.N(); i++ {
		byID[oldG.ID(i)] = oldOut[i]
	}
	pred := make([]int, g.N())
	for i := 0; i < g.N(); i++ {
		pred[i] = byID[g.ID(i)]
	}
	return pred
}

// PerfectMatching returns an error-free maximal-matching prediction: a
// greedy-by-identifier maximal matching, encoded as partner identifiers with
// Unmatched (0) for unmatched nodes.
func PerfectMatching(g *graph.Graph) []int {
	return exact.GreedyMatchingByID(g)
}

// PerturbMatching rewires k random nodes' matching predictions: each selected
// node's prediction is replaced by a random neighbor's identifier or
// Unmatched.
func PerturbMatching(g *graph.Graph, pred []int, k int, rng *rand.Rand) []int {
	out := make([]int, len(pred))
	copy(out, pred)
	perm := rng.Perm(len(pred))
	if k > len(pred) {
		k = len(pred)
	}
	for i := 0; i < k; i++ {
		v := perm[i]
		nbrs := g.Neighbors(v)
		choice := rng.Intn(len(nbrs) + 1)
		if choice == len(nbrs) {
			out[v] = Unmatched
		} else {
			out[v] = g.ID(int(nbrs[choice]))
		}
	}
	return out
}

// PerfectVColor returns an error-free (Δ+1)-coloring prediction via greedy
// coloring in ascending identifier order.
func PerfectVColor(g *graph.Graph) []int {
	palette := g.MaxDegree() + 1
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && g.ID(order[j]) < g.ID(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	colors := make([]int, g.N())
	for _, v := range order {
		used := make(map[int]bool, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if colors[u] != 0 {
				used[colors[u]] = true
			}
		}
		for c := 1; c <= palette; c++ {
			if !used[c] {
				colors[v] = c
				break
			}
		}
	}
	return colors
}

// PerturbVColor re-randomizes the color predictions of k random nodes within
// the (Δ+1)-palette.
func PerturbVColor(g *graph.Graph, pred []int, k int, rng *rand.Rand) []int {
	palette := g.MaxDegree() + 1
	out := make([]int, len(pred))
	copy(out, pred)
	perm := rng.Perm(len(pred))
	if k > len(pred) {
		k = len(pred)
	}
	for i := 0; i < k; i++ {
		out[perm[i]] = 1 + rng.Intn(palette)
	}
	return out
}

// PerfectEColor returns an error-free (2Δ−1)-edge-coloring prediction via
// greedy coloring of edges in g.Edges() order, expressed per node.
func PerfectEColor(g *graph.Graph) []EdgePrediction {
	colors := make([]int, g.M())
	palette := 2*g.MaxDegree() - 1
	incident := make([][]int, g.N())
	for e, ends := range g.Edges() {
		incident[ends[0]] = append(incident[ends[0]], e)
		incident[ends[1]] = append(incident[ends[1]], e)
	}
	for e, ends := range g.Edges() {
		used := make(map[int]bool)
		for _, f := range incident[ends[0]] {
			if colors[f] != 0 {
				used[colors[f]] = true
			}
		}
		for _, f := range incident[ends[1]] {
			if colors[f] != 0 {
				used[colors[f]] = true
			}
		}
		for c := 1; c <= palette; c++ {
			if !used[c] {
				colors[e] = c
				break
			}
		}
	}
	return edgeColorsToPredictions(g, colors)
}

// edgeColorsToPredictions distributes per-edge colors to the two incident
// nodes' prediction vectors (ascending-identifier neighbor order).
func edgeColorsToPredictions(g *graph.Graph, colors []int) []EdgePrediction {
	idx := g.EdgeIndex()
	preds := make([]EdgePrediction, g.N())
	for v := 0; v < g.N(); v++ {
		nbrs := g.NeighborsByID(v)
		preds[v] = make(EdgePrediction, len(nbrs))
		for j, u := range nbrs {
			a, b := v, u
			if a > b {
				a, b = b, a
			}
			preds[v][j] = colors[idx[[2]int{a, b}]]
		}
	}
	return preds
}

// PerturbEColor re-randomizes the predicted colors of k random edges (both
// endpoints see the same new color, as a predictor based on a stale edge
// coloring would produce).
func PerturbEColor(g *graph.Graph, pred []EdgePrediction, k int, rng *rand.Rand) []EdgePrediction {
	palette := 2*g.MaxDegree() - 1
	colors := make([]int, g.M())
	idx := g.EdgeIndex()
	for v := 0; v < g.N(); v++ {
		for j, u := range g.NeighborsByID(v) {
			if v < u {
				colors[idx[[2]int{v, u}]] = pred[v][j]
			}
		}
	}
	perm := rng.Perm(g.M())
	if k > g.M() {
		k = g.M()
	}
	for i := 0; i < k; i++ {
		colors[perm[i]] = 1 + rng.Intn(palette)
	}
	return edgeColorsToPredictions(g, colors)
}
