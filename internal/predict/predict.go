// Package predict provides prediction vectors for the four problems in the
// paper, generators that control the amount of error in them, and the
// paper's error measures: η_H, η₁, η₂, η_bw, and η_t (Sections 5 and 9).
//
// Error components are always computed from the problem's *base* algorithm,
// as the paper prescribes: the error measure is part of the problem
// definition, independent of which (reasonable) initialization algorithm a
// particular algorithm with predictions happens to use.
package predict

import (
	"fmt"

	"repro/internal/exact"
	"repro/internal/graph"
)

// MISBaseActive returns, for each node, whether it would still be active
// after the MIS Base Algorithm (Section 4): the independent set I consists of
// the nodes with prediction 1 all of whose neighbors have prediction 0; I and
// its neighbors terminate.
func MISBaseActive(g *graph.Graph, pred []int) []bool {
	n := g.N()
	inI := make([]bool, n)
	for v := 0; v < n; v++ {
		if pred[v] != 1 {
			continue
		}
		ok := true
		for _, u := range g.Neighbors(v) {
			if pred[u] != 0 {
				ok = false
				break
			}
		}
		inI[v] = ok
	}
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		active[v] = !inI[v]
	}
	for v := 0; v < n; v++ {
		if !inI[v] {
			continue
		}
		for _, u := range g.Neighbors(v) {
			active[u] = false
		}
	}
	return active
}

// MatchingBaseActive returns the active nodes after the Maximal Matching Base
// Algorithm (Section 8.1). pred[i] is the identifier of the predicted partner
// of node i, or Unmatched. Nodes whose mutual predictions agree are matched
// and terminate; a node predicted unmatched terminates if all its neighbors
// were matched.
func MatchingBaseActive(g *graph.Graph, pred []int) []bool {
	n := g.N()
	matched := make([]bool, n)
	for v := 0; v < n; v++ {
		p := pred[v]
		if p == Unmatched {
			continue
		}
		u := g.IndexOfID(p)
		if u < 0 || !g.HasEdge(v, u) {
			continue
		}
		if pred[u] == g.ID(v) {
			matched[v] = true
		}
	}
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		if matched[v] {
			continue
		}
		if pred[v] == Unmatched {
			allMatched := true
			for _, u := range g.Neighbors(v) {
				if !matched[u] {
					allMatched = false
					break
				}
			}
			if allMatched {
				continue
			}
		}
		active[v] = true
	}
	return active
}

// Unmatched is the matching prediction/output value for "no partner" (the
// paper's ⊥).
const Unmatched = 0

// VColorBaseActive returns the active nodes after the (Δ+1)-Vertex Coloring
// Base Algorithm (Section 8.2): a node outputs its predicted color if it
// differs from the predictions of all its neighbors. Predictions outside
// {1, ..., Δ+1} are erroneous and keep the node active.
func VColorBaseActive(g *graph.Graph, pred []int) []bool {
	n := g.N()
	palette := g.MaxDegree() + 1
	active := make([]bool, n)
	for v := 0; v < n; v++ {
		if pred[v] < 1 || pred[v] > palette {
			active[v] = true
			continue
		}
		for _, u := range g.Neighbors(v) {
			if pred[u] == pred[v] {
				active[v] = true
				break
			}
		}
	}
	return active
}

// EdgePrediction holds a node's predicted colors for its incident edges, in
// ascending order of the neighbors' identifiers (the order node machines see
// their neighbor lists in).
type EdgePrediction []int

// EColorBaseUncolored returns, for each edge of g (in g.Edges() order),
// whether it would remain uncolored after the (2Δ−1)-Edge Coloring Base
// Algorithm (Section 8.3): a node offers its predicted color for an edge only
// if that color is unique among its own edge predictions, and the edge is
// colored when both endpoints offer the same color.
func EColorBaseUncolored(g *graph.Graph, pred []EdgePrediction) []bool {
	offers := eColorOffers(g, pred)
	uncolored := make([]bool, g.M())
	for e := range g.Edges() {
		u, v := g.Edges()[e][0], g.Edges()[e][1]
		cu, okU := offers[[2]int{u, v}]
		cv, okV := offers[[2]int{v, u}]
		uncolored[e] = !(okU && okV && cu == cv)
	}
	return uncolored
}

// eColorOffers maps (node, neighbor) to the color the node offers on that
// edge, omitting entries where the node's prediction is duplicated or out of
// range.
func eColorOffers(g *graph.Graph, pred []EdgePrediction) map[[2]int]int {
	palette := 2*g.MaxDegree() - 1
	offers := make(map[[2]int]int)
	for v := 0; v < g.N(); v++ {
		counts := make(map[int]int, len(pred[v]))
		for _, c := range pred[v] {
			counts[c]++
		}
		for j, u := range g.NeighborsByID(v) {
			c := pred[v][j]
			if c < 1 || c > palette || counts[c] > 1 {
				continue
			}
			offers[[2]int{v, u}] = c
		}
	}
	return offers
}

// ErrorComponents returns the error components: the connected components of
// the subgraph induced by the active nodes. Each component is returned as an
// induced subgraph together with its original node indices.
func ErrorComponents(g *graph.Graph, active []bool) []Component {
	nodes := make([]int, 0, g.N())
	for v, a := range active {
		if a {
			nodes = append(nodes, v)
		}
	}
	sub, orig := g.InducedSubgraph(nodes)
	var comps []Component
	for _, comp := range sub.Components() {
		inner, innerOrig := sub.InducedSubgraph(comp)
		mapped := make([]int, len(innerOrig))
		for i, idx := range innerOrig {
			mapped[i] = orig[idx]
		}
		comps = append(comps, Component{Graph: inner, Nodes: mapped})
	}
	return comps
}

// Component is one error component: its induced subgraph and the indices of
// its nodes in the original graph.
type Component struct {
	Graph *graph.Graph
	Nodes []int
}

// EdgeErrorComponents returns the error components of an edge problem: the
// components of the subgraph induced by the given edges (paper Section 4,
// edge-output problems). uncolored is indexed like g.Edges().
func EdgeErrorComponents(g *graph.Graph, uncolored []bool) []Component {
	nodeSet := make(map[int]bool)
	for e, u := range uncolored {
		if u {
			nodeSet[g.Edges()[e][0]] = true
			nodeSet[g.Edges()[e][1]] = true
		}
	}
	active := make([]bool, g.N())
	for v := range nodeSet {
		active[v] = true
	}
	// The induced subgraph on endpoint nodes may include already-colored
	// edges between endpoints of distinct uncolored edges; per the paper the
	// components are those of the subgraph induced by the *edges*, so build
	// that graph explicitly.
	idx := make(map[int]int, len(nodeSet))
	ordered := make([]int, 0, len(nodeSet))
	for v := 0; v < g.N(); v++ {
		if active[v] {
			idx[v] = len(ordered)
			ordered = append(ordered, v)
		}
	}
	b := graph.NewBuilder(len(ordered))
	b.SetDomain(g.D())
	for i, v := range ordered {
		b.SetID(i, g.ID(v))
	}
	for e, u := range uncolored {
		if u {
			b.AddEdge(idx[g.Edges()[e][0]], idx[g.Edges()[e][1]])
		}
	}
	sub := b.MustBuild()
	var comps []Component
	for _, comp := range sub.Components() {
		inner, innerOrig := sub.InducedSubgraph(comp)
		mapped := make([]int, len(innerOrig))
		for i, x := range innerOrig {
			mapped[i] = ordered[x]
		}
		comps = append(comps, Component{Graph: inner, Nodes: mapped})
	}
	return comps
}

// Eta1Edges returns the alternative edge-coloring error measure discussed in
// Section 8.3: the maximum number of edges over the error components. The
// paper notes a component with s nodes has at least s−1 edges (and possibly
// many more), which is why the node-count measure η₁ is preferred — error
// measures should return smaller values when possible.
func Eta1Edges(comps []Component) int {
	maxM := 0
	for _, c := range comps {
		if c.Graph.M() > maxM {
			maxM = c.Graph.M()
		}
	}
	return maxM
}

// Eta1 returns η₁ = max over error components of the node count (0 when the
// predictions are error-free).
func Eta1(comps []Component) int {
	maxN := 0
	for _, c := range comps {
		if c.Graph.N() > maxN {
			maxN = c.Graph.N()
		}
	}
	return maxN
}

// Eta2 returns η₂ = max over error components of μ₂ = 2·min{α, τ}.
func Eta2(comps []Component) (int, error) {
	maxMu := 0
	for _, c := range comps {
		mu, err := exact.Mu2(c.Graph)
		if err != nil {
			return 0, fmt.Errorf("eta2: %w", err)
		}
		if mu > maxMu {
			maxMu = mu
		}
	}
	return maxMu, nil
}

// EtaBW returns η_bw for the MIS problem: the maximum node count of any
// black or white component — a component of the subgraph induced by the
// active nodes with prediction 1, respectively 0 (Section 5).
func EtaBW(g *graph.Graph, pred []int, active []bool) int {
	maxN := 0
	for _, bit := range []int{0, 1} {
		nodes := make([]int, 0, g.N())
		for v := 0; v < g.N(); v++ {
			if active[v] && pred[v] == bit {
				nodes = append(nodes, v)
			}
		}
		sub, _ := g.InducedSubgraph(nodes)
		for _, comp := range sub.Components() {
			if len(comp) > maxN {
				maxN = len(comp)
			}
		}
	}
	return maxN
}

// EtaH returns η_H for the MIS problem: the minimum number of prediction bits
// that must change to obtain a maximal independent set. Exponential; only for
// small graphs (see exact.MaxHammingNodes).
func EtaH(g *graph.Graph, pred []int) (int, error) {
	return exact.MinHammingToMIS(g, pred)
}
