package predict_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ecolor"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/mis"
	"repro/internal/predict"
	"repro/internal/runtime"
	"repro/internal/vcolor"
	"repro/internal/verify"
)

// TestMISBaseActiveMatchesEngine cross-validates the combinatorial
// definition of the error components against an actual engine run of the
// MIS Base Algorithm: a node is active per the definition iff it produced no
// output by the end of the 3-round base stage.
func TestMISBaseActiveMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		g := graph.GNP(25, 0.2, rng)
		preds := predict.FlipProb(predict.PerfectMIS(g), 0.3, rng)
		want := predict.MISBaseActive(g, preds)

		var got []bool
		factory := core.Sequence(mis.NewMemory, mis.Base(), sinkStage())
		_, err := runtime.Run(runtime.Config{
			Graph:       g,
			Factory:     factory,
			Predictions: anyPreds(preds),
			Observer: func(round int, outputs []any, active []bool) {
				if round == 3 {
					got = append([]bool(nil), active...)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d node %d: definition says active=%v, engine says %v",
					trial, g.ID(i), want[i], got[i])
			}
		}
	}
}

// sinkStage terminates everyone immediately with output 0 or 1 consistent
// with an extendable completion (it only exists to let the base stage finish
// cleanly during the cross-validation).
func sinkStage() core.Stage {
	return core.Stage{
		Name: "sink",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return sinkMachine{}
		},
	}
}

type sinkMachine struct{}

func (sinkMachine) Send(c *core.StageCtx) []runtime.Out { return nil }
func (sinkMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	c.Output(-1)
}

func anyPreds(preds []int) []any {
	out := make([]any, len(preds))
	for i, p := range preds {
		out[i] = p
	}
	return out
}

// TestMatchingBaseActiveMatchesEngine does the same cross-validation for
// the Maximal Matching Base Algorithm (2 rounds).
func TestMatchingBaseActiveMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		g := graph.GNP(20, 0.25, rng)
		preds := predict.PerturbMatching(g, predict.PerfectMatching(g), 6, rng)
		want := predict.MatchingBaseActive(g, preds)
		var got []bool
		factory := core.Sequence(matching.NewMemory, matching.Base(), sinkStage())
		_, err := runtime.Run(runtime.Config{
			Graph:       g,
			Factory:     factory,
			Predictions: anyPreds(preds),
			Observer: func(round int, outputs []any, active []bool) {
				if round == 2 {
					got = append([]bool(nil), active...)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d node %d: definition %v, engine %v", trial, g.ID(i), want[i], got[i])
			}
		}
	}
}

// TestVColorBaseActiveMatchesEngine cross-validates the vertex-coloring base.
func TestVColorBaseActiveMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		g := graph.GNP(22, 0.2, rng)
		preds := predict.PerturbVColor(g, predict.PerfectVColor(g), 6, rng)
		want := predict.VColorBaseActive(g, preds)
		var got []bool
		factory := core.Sequence(vcolor.NewMemory, vcolor.Base(), sinkStage())
		_, err := runtime.Run(runtime.Config{
			Graph:       g,
			Factory:     factory,
			Predictions: anyPreds(preds),
			Observer: func(round int, outputs []any, active []bool) {
				if round == 2 {
					got = append([]bool(nil), active...)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d node %d: definition %v, engine %v", trial, g.ID(i), want[i], got[i])
			}
		}
	}
}

// TestEColorBaseMatchesEngine cross-validates the edge-coloring base:
// an edge is uncolored per the definition iff neither endpoint's final
// output colors it... here we check via the memory left by the base stage:
// run Base then a stage that outputs the per-edge colors so far.
func TestEColorBaseMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 20; trial++ {
		g := graph.GNP(16, 0.3, rng)
		if g.M() == 0 {
			continue
		}
		preds := predict.PerturbEColor(g, predict.PerfectEColor(g), 5, rng)
		wantUncolored := predict.EColorBaseUncolored(g, preds)
		factory := core.Sequence(ecolor.NewMemory, ecolor.Base(), ecolorDump())
		anyP := make([]any, len(preds))
		for i, p := range preds {
			anyP[i] = []int(p)
		}
		res, err := runtime.Run(runtime.Config{Graph: g, Factory: factory, Predictions: anyP})
		if err != nil {
			t.Fatal(err)
		}
		idx := g.EdgeIndex()
		for v := 0; v < g.N(); v++ {
			colors := res.Outputs[v].([]int)
			for j, u := range g.NeighborsByID(v) {
				a, b := v, u
				if a > b {
					a, b = b, a
				}
				e := idx[[2]int{a, b}]
				gotUncolored := colors[j] == 0
				if gotUncolored != wantUncolored[e] {
					t.Fatalf("trial %d edge %v: definition uncolored=%v, engine=%v",
						trial, g.Edges()[e], wantUncolored[e], gotUncolored)
				}
			}
		}
	}
}

// ecolorDump outputs the node's current edge-color vector (0 = uncolored).
func ecolorDump() core.Stage {
	return core.Stage{
		Name: "dump",
		New: func(info runtime.NodeInfo, pred any, mem any) core.StageMachine {
			return ecolorDumpMachine{mem: mem.(*ecolor.Memory)}
		},
	}
}

type ecolorDumpMachine struct{ mem *ecolor.Memory }

func (m ecolorDumpMachine) Send(c *core.StageCtx) []runtime.Out { return nil }
func (m ecolorDumpMachine) Receive(c *core.StageCtx, inbox []runtime.Msg) {
	c.Output(m.mem.OutputVector(c.Info()))
}

func TestKnownPatternMeasures(t *testing.T) {
	// Figure 2 grid.
	g := graph.Grid2D(8, 8)
	preds := predict.GridBW(8, 8)
	active := predict.MISBaseActive(g, preds)
	comps := predict.ErrorComponents(g, active)
	if eta1 := predict.Eta1(comps); eta1 != 64 {
		t.Errorf("grid eta1 = %d, want 64", eta1)
	}
	if etaBW := predict.EtaBW(g, preds, active); etaBW != 4 {
		t.Errorf("grid etaBW = %d, want 4", etaBW)
	}
	// Figure 1 wheel.
	w := graph.WheelFk(12)
	wp := predict.WheelCenterOne(12)
	wactive := predict.MISBaseActive(w, wp)
	wcomps := predict.ErrorComponents(w, wactive)
	if eta1 := predict.Eta1(wcomps); eta1 != 12 {
		t.Errorf("wheel eta1 = %d, want 12 (the rim)", eta1)
	}
	if len(wcomps) != 1 || wcomps[0].Graph.Diameter() != 6 {
		t.Errorf("wheel error component should be the rim cycle with diameter 6")
	}
	// Perfect predictions: no error components.
	perfect := predict.PerfectMIS(g)
	if a := predict.MISBaseActive(g, perfect); len(predict.ErrorComponents(g, a)) != 0 {
		t.Error("perfect predictions should leave no active nodes")
	}
}

// TestQuickErrorMeasureOrdering property-checks eta2 <= eta1 and
// etaBW <= eta1 on random instances (Section 5 relations).
func TestQuickErrorMeasureOrdering(t *testing.T) {
	f := func(seed int64, rawN uint8, p8 uint8) bool {
		n := int(rawN%20) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.2, rng)
		preds := predict.FlipProb(predict.PerfectMIS(g), float64(p8%100)/100, rng)
		active := predict.MISBaseActive(g, preds)
		comps := predict.ErrorComponents(g, active)
		eta1 := predict.Eta1(comps)
		eta2, err := predict.Eta2(comps)
		if err != nil {
			return false
		}
		etaBW := predict.EtaBW(g, preds, active)
		etaH, err := predict.EtaH(g, preds)
		if err != nil {
			return false
		}
		if eta2 > eta1 || etaBW > eta1 {
			return false
		}
		// etaH = 0 iff no error components.
		return (etaH == 0) == (eta1 == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickErrorRemovalMonotone checks the Im-Kumar-Qaem-Purohit criterion
// the paper adopts (Section 5): correcting one wrong prediction never
// enlarges the active set, hence never increases eta1.
func TestQuickErrorRemovalMonotone(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%18) + 4
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.25, rng)
		perfect := predict.PerfectMIS(g)
		preds := predict.FlipProb(perfect, 0.4, rng)
		activeBefore := predict.MISBaseActive(g, preds)
		eta1Before := predict.Eta1(predict.ErrorComponents(g, activeBefore))
		// Correct one wrong bit.
		fixed := make([]int, n)
		copy(fixed, preds)
		for i := range fixed {
			if fixed[i] != perfect[i] {
				fixed[i] = perfect[i]
				break
			}
		}
		activeAfter := predict.MISBaseActive(g, fixed)
		eta1After := predict.Eta1(predict.ErrorComponents(g, activeAfter))
		// Moving the prediction towards the specific solution `perfect` can
		// only shrink or keep the active set of the base algorithm when the
		// correction direction agrees with it; eta1 must not increase by
		// more than the locality of the change allows. The paper's criterion
		// is about containment of the active sets; verify it directly when
		// containment holds, and otherwise verify monotonicity of mu1 over
		// contained subgraphs.
		contained := true
		for i := range activeAfter {
			if activeAfter[i] && !activeBefore[i] {
				contained = false
				break
			}
		}
		if contained && eta1After > eta1Before {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorsProduceValidSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	graphs := []*graph.Graph{
		graph.Ring(10), graph.Clique(6), graph.Grid2D(4, 5), graph.GNP(30, 0.15, rng),
	}
	for i, g := range graphs {
		if err := verify.MIS(g, predict.PerfectMIS(g)); err != nil {
			t.Errorf("graph %d PerfectMIS: %v", i, err)
		}
		if err := verify.Matching(g, predict.PerfectMatching(g)); err != nil {
			t.Errorf("graph %d PerfectMatching: %v", i, err)
		}
		if err := verify.VColor(g, predict.PerfectVColor(g)); err != nil {
			t.Errorf("graph %d PerfectVColor: %v", i, err)
		}
		if uncolored := predict.EColorBaseUncolored(g, predict.PerfectEColor(g)); anyTrue(uncolored) {
			t.Errorf("graph %d PerfectEColor leaves uncolored edges", i)
		}
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

func TestMod3LinePattern(t *testing.T) {
	preds := predict.Mod3Line(4)
	want := []int{0, 1, 1, 0, 1, 1, 0, 1, 1, 0, 1, 1}
	for i := range want {
		if preds[i] != want[i] {
			t.Fatalf("position %d: %d, want %d", i, preds[i], want[i])
		}
	}
}

func TestFlipBitsExactCount(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	pred := predict.Uniform(50, 0)
	for _, k := range []int{0, 1, 25, 50, 80} {
		got := predict.FlipBits(pred, k, rng)
		diff := 0
		for i := range got {
			if got[i] != pred[i] {
				diff++
			}
		}
		want := k
		if want > 50 {
			want = 50
		}
		if diff != want {
			t.Errorf("k=%d: %d bits flipped, want %d", k, diff, want)
		}
	}
}

// TestEta1EdgesRelation: a connected error component with s nodes has at
// least s-1 edges, so the edge measure dominates the node measure minus one
// (Section 8.3's argument for preferring node counts).
func TestEta1EdgesRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		g := graph.GNP(20, 0.3, rng)
		if g.M() == 0 {
			continue
		}
		preds := predict.PerturbEColor(g, predict.PerfectEColor(g), 6, rng)
		uncolored := predict.EColorBaseUncolored(g, preds)
		comps := predict.EdgeErrorComponents(g, uncolored)
		eta1 := predict.Eta1(comps)
		etaEdges := predict.Eta1Edges(comps)
		if eta1 > 0 && etaEdges < eta1-1 {
			t.Fatalf("trial %d: edge measure %d < node measure %d - 1", trial, etaEdges, eta1)
		}
		if eta1 == 0 && etaEdges != 0 {
			t.Fatalf("trial %d: no components but edge measure %d", trial, etaEdges)
		}
	}
}
