// Package problem is the generic problem layer behind the templates, the
// public runners, the healing machinery, and the CLIs.
//
// The paper's framework (Section 7) is generic: the four templates are
// combinators instantiated per problem. This package makes the repository
// mirror that structure. A Descriptor captures everything problem-specific —
// how predictions are encoded for the engine, how raw outputs are decoded
// and verified, which distributed checker validates a solution, how a
// damaged output vector is carved for healing, and which algorithm variants
// exist with their template shape and round bound. Each problem package
// registers its descriptor at init time; the registry (name → descriptor →
// algorithm) then drives the generic Run path in the repro package, the
// recovery machinery, and the dgp-run/dgp-bench command lines, so adding a
// problem or an algorithm is one registration instead of edits across six
// layers.
package problem

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/runtime"
)

// Template names the paper template an algorithm instantiates.
const (
	// TemplateSolo marks a reference or measure-uniform algorithm run alone
	// (no predictions consumed).
	TemplateSolo = "solo"
	// TemplateSimple is the Simple Template (Algorithm 2, Observation 7).
	TemplateSimple = "simple"
	// TemplateConsecutive is the Consecutive Template (Algorithm 3, Lemma 8).
	TemplateConsecutive = "consecutive"
	// TemplateInterleaved is the Interleaved Template (Algorithm 4, Lemma 9).
	TemplateInterleaved = "interleaved"
	// TemplateParallel is the Parallel Template (Algorithm 5, Lemma 11).
	TemplateParallel = "parallel"
)

// BuildCtx carries the per-run inputs an algorithm factory may consume.
type BuildCtx struct {
	// Seed drives the seeded algorithms (Luby, the decomposition reference);
	// deterministic algorithms ignore it.
	Seed int64
	// Aux is the problem's extra instance data beyond the graph — the rooted
	// forest for the tree problem — produced by Descriptor.NewAux or passed
	// by a typed entry point. Nil for problems defined by the graph alone.
	Aux any
}

// Algorithm is one registered algorithm variant of a problem.
type Algorithm struct {
	// Name is the variant's CLI name, unique within its problem.
	Name string
	// Template is the paper template the variant instantiates (one of the
	// Template* constants).
	Template string
	// Reference describes the stages plugged into the template.
	Reference string
	// Bound is the documented round bound.
	Bound string
	// Seeded reports that the variant consumes BuildCtx.Seed.
	Seeded bool
	// Build constructs the engine factory for one run.
	Build func(c BuildCtx) (runtime.Factory, error)
	// MaxRounds, when non-nil, computes the engine round cap the variant
	// needs when the caller did not set one (references whose bound
	// legitimately exceeds the engine's O(n)-algorithm default).
	MaxRounds func(g *graph.Graph) int
}

// Solution is a verified output in the problem-generic shape. Int-output
// problems (MIS, matching, vertex coloring, tree MIS) fill Node; edge
// coloring fills Vectors (the raw per-node color vectors) and Edge (the
// agreed per-edge colors, indexed like g.Edges()).
type Solution struct {
	Node    []int
	Vectors [][]int
	Edge    []int
}

// Heal describes a problem's recovery machinery: how to carve a damaged
// int-vector output down to an extendable partial solution and which
// registered algorithm extends it. Problems whose outputs are not int
// vectors (edge coloring) leave Descriptor.Heal nil.
type Heal struct {
	// Verify accepts a complete output vector iff it is a valid solution.
	Verify func(g *graph.Graph, out []int) error
	// Carve reduces a damaged output vector to an extendable partial
	// solution plus the residual (undecided node indices).
	Carve func(g *graph.Graph, out []int) (partial, residual []int)
	// UndecidedPred is the prediction value standing in for an undecided
	// node in the healing run (the problem's "no prediction" value).
	UndecidedPred int
	// HealProblem and HealAlg name the registered algorithm whose Simple
	// Template extends the carved partial solution. Empty values default to
	// this problem's "simple" algorithm; the tree problem heals through the
	// general MIS template.
	HealProblem, HealAlg string
}

// Descriptor is one problem's registration: identity, codecs, validation,
// healing, and algorithm variants.
type Descriptor struct {
	// Name is the registry key (e.g. "mis").
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// OutputLabel labels the output vector in CLI display ("in-set",
	// "partners", "colors", "edge colors").
	OutputLabel string
	// NewAux builds the default per-instance auxiliary data from the graph
	// (the tree problem roots the forest); nil when no aux is needed. It may
	// reject unusable graphs (a cyclic graph for the tree problem).
	NewAux func(g *graph.Graph) (any, error)
	// Preds generates the problem's standard test predictions: an error-free
	// prediction perturbed at k positions by a generator seeded with seed.
	Preds func(g *graph.Graph, aux any, k int, seed int64) any
	// EncodePreds converts the problem's typed prediction slice (or nil) to
	// the engine's per-node values.
	EncodePreds func(preds any) ([]any, error)
	// Errors renders the instance's prediction error measures for display
	// (e.g. "eta1=3 eta2=2").
	Errors func(g *graph.Graph, aux any, preds any) (string, error)
	// Finalize decodes the engine's raw outputs and verifies them as a
	// complete solution.
	Finalize func(g *graph.Graph, aux any, outs []any) (Solution, error)
	// Checker returns the problem's constant-round distributed checker
	// (Section 1.3) and the solution encoded as its predictions.
	Checker func(sol Solution) (runtime.Factory, []any, error)
	// Heal is the recovery machinery; nil when unsupported.
	Heal *Heal
	// Algorithms are the registered variants, in registration order.
	Algorithms []Algorithm
}

// Algorithm returns the named variant.
func (d *Descriptor) Algorithm(name string) (*Algorithm, error) {
	for i := range d.Algorithms {
		if d.Algorithms[i].Name == name {
			return &d.Algorithms[i], nil
		}
	}
	return nil, fmt.Errorf("problem %s: unknown algorithm %q (registered: %v)", d.Name, name, d.algorithmNames())
}

func (d *Descriptor) algorithmNames() []string {
	names := make([]string, len(d.Algorithms))
	for i, a := range d.Algorithms {
		names[i] = a.Name
	}
	return names
}

var registry = map[string]*Descriptor{}

// Register adds a descriptor to the registry. It panics on a duplicate or
// structurally incomplete registration: registration happens at package init
// time, so a violation is a programming error, not a runtime condition.
func Register(d Descriptor) {
	if d.Name == "" {
		panic("problem: Register with empty name")
	}
	if _, dup := registry[d.Name]; dup {
		panic(fmt.Sprintf("problem: duplicate registration of %q", d.Name))
	}
	if d.EncodePreds == nil || d.Finalize == nil || d.Preds == nil || d.Errors == nil || d.Checker == nil {
		panic(fmt.Sprintf("problem: %q registered without a complete codec", d.Name))
	}
	if len(d.Algorithms) == 0 {
		panic(fmt.Sprintf("problem: %q registered without algorithms", d.Name))
	}
	seen := map[string]bool{}
	for _, a := range d.Algorithms {
		if a.Name == "" || a.Build == nil {
			panic(fmt.Sprintf("problem: %q registered an incomplete algorithm %q", d.Name, a.Name))
		}
		if seen[a.Name] {
			panic(fmt.Sprintf("problem: %q registered algorithm %q twice", d.Name, a.Name))
		}
		seen[a.Name] = true
		switch a.Template {
		case TemplateSolo, TemplateSimple, TemplateConsecutive, TemplateInterleaved, TemplateParallel:
		default:
			panic(fmt.Sprintf("problem: %q algorithm %q has unknown template %q", d.Name, a.Name, a.Template))
		}
	}
	stored := d
	registry[d.Name] = &stored
}

// Get returns the named descriptor.
func Get(name string) (*Descriptor, error) {
	d, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("problem: unknown problem %q (registered: %v)", name, Names())
	}
	return d, nil
}

// Names returns the registered problem names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns the registered descriptors sorted by name.
func All() []*Descriptor {
	names := Names()
	out := make([]*Descriptor, len(names))
	for i, name := range names {
		out[i] = registry[name]
	}
	return out
}

// EncodeInts boxes an int prediction/solution vector for the engine; nil
// stays nil (prediction-free runs).
func EncodeInts(preds []int) []any {
	if preds == nil {
		return nil
	}
	out := make([]any, len(preds))
	for i, p := range preds {
		out[i] = p
	}
	return out
}

// IntPredCodec returns the EncodePreds implementation shared by the
// int-vector problems: nil, []int, or pre-encoded []any are accepted.
func IntPredCodec(name string) func(preds any) ([]any, error) {
	return func(preds any) ([]any, error) {
		switch p := preds.(type) {
		case nil:
			return nil, nil
		case []int:
			return EncodeInts(p), nil
		case []any:
			return p, nil
		default:
			return nil, fmt.Errorf("problem %s: predictions must be []int, got %T", name, preds)
		}
	}
}

// IntFinalizer returns the Finalize implementation shared by the int-output
// problems: decode every node's int output and verify the complete vector.
func IntFinalizer(name string, verify func(g *graph.Graph, out []int) error) func(g *graph.Graph, aux any, outs []any) (Solution, error) {
	return func(g *graph.Graph, aux any, outs []any) (Solution, error) {
		out := make([]int, g.N())
		for i, o := range outs {
			v, ok := o.(int)
			if !ok {
				return Solution{}, fmt.Errorf("problem %s: node %d produced %T, want int", name, g.ID(i), o)
			}
			out[i] = v
		}
		if err := verify(g, out); err != nil {
			return Solution{}, err
		}
		return Solution{Node: out}, nil
	}
}
