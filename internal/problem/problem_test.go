package problem

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
)

// validDescriptor returns a structurally complete descriptor for registration
// tests; name keeps the registrations distinct in the shared registry.
func validDescriptor(name string) Descriptor {
	nop := func(c BuildCtx) (runtime.Factory, error) { return nil, nil }
	return Descriptor{
		Name:        name,
		Doc:         "test problem",
		OutputLabel: "out",
		Preds:       func(g *graph.Graph, aux any, k int, seed int64) any { return []int(nil) },
		EncodePreds: IntPredCodec(name),
		Errors:      func(g *graph.Graph, aux any, preds any) (string, error) { return "eta1=0", nil },
		Finalize:    IntFinalizer(name, func(g *graph.Graph, out []int) error { return nil }),
		Checker:     func(sol Solution) (runtime.Factory, []any, error) { return nil, nil, nil },
		Algorithms: []Algorithm{
			{Name: "simple", Template: TemplateSimple, Build: nop},
			{Name: "greedy", Template: TemplateSolo, Build: nop},
		},
	}
}

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want one containing %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one containing %q", r, want)
		}
	}()
	fn()
}

func TestRegisterValidation(t *testing.T) {
	mustPanic(t, "empty name", func() {
		d := validDescriptor("")
		Register(d)
	})
	mustPanic(t, "without a complete codec", func() {
		d := validDescriptor("t-no-codec")
		d.Finalize = nil
		Register(d)
	})
	mustPanic(t, "without algorithms", func() {
		d := validDescriptor("t-no-algs")
		d.Algorithms = nil
		Register(d)
	})
	mustPanic(t, "incomplete algorithm", func() {
		d := validDescriptor("t-no-build")
		d.Algorithms[0].Build = nil
		Register(d)
	})
	mustPanic(t, "twice", func() {
		d := validDescriptor("t-dup-alg")
		d.Algorithms[1].Name = d.Algorithms[0].Name
		Register(d)
	})
	mustPanic(t, "unknown template", func() {
		d := validDescriptor("t-bad-template")
		d.Algorithms[0].Template = "sequential"
		Register(d)
	})

	Register(validDescriptor("t-valid"))
	mustPanic(t, "duplicate registration", func() {
		Register(validDescriptor("t-valid"))
	})
}

func TestGetAndNames(t *testing.T) {
	Register(validDescriptor("t-lookup-b"))
	Register(validDescriptor("t-lookup-a"))

	d, err := Get("t-lookup-a")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "t-lookup-a" {
		t.Fatalf("Get returned %q", d.Name)
	}
	if _, err := Get("t-nonexistent"); err == nil {
		t.Fatal("Get of unregistered problem succeeded")
	}

	a, err := d.Algorithm("simple")
	if err != nil || a.Template != TemplateSimple {
		t.Fatalf("Algorithm(simple) = %+v, %v", a, err)
	}
	if _, err := d.Algorithm("nope"); err == nil {
		t.Fatal("unknown algorithm lookup succeeded")
	}

	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All has %d entries, Names %d", len(all), len(names))
	}
	for i, d := range all {
		if d.Name != names[i] {
			t.Fatalf("All[%d] = %q, want %q", i, d.Name, names[i])
		}
	}
}

func TestIntCodecs(t *testing.T) {
	if got := EncodeInts(nil); got != nil {
		t.Fatalf("EncodeInts(nil) = %v, want nil", got)
	}
	if got := EncodeInts([]int{3, 1}); len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("EncodeInts = %v", got)
	}

	codec := IntPredCodec("t")
	if got, err := codec(nil); err != nil || got != nil {
		t.Fatalf("codec(nil) = %v, %v", got, err)
	}
	// A typed-nil slice arriving through any must stay nil: the engine
	// distinguishes prediction-free runs by a nil prediction vector.
	if got, err := codec([]int(nil)); err != nil || got != nil {
		t.Fatalf("codec([]int(nil)) = %v, %v", got, err)
	}
	if got, err := codec([]int{7}); err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("codec([]int{7}) = %v, %v", got, err)
	}
	pre := []any{1, 2}
	if got, err := codec(pre); err != nil || len(got) != 2 {
		t.Fatalf("codec([]any) = %v, %v", got, err)
	}
	if _, err := codec("nope"); err == nil {
		t.Fatal("codec accepted a string")
	}
}
