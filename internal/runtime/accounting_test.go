package runtime_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
)

// The columnar engine routes an Env.Broadcast through a batched fast path
// (one accounting call per surviving neighbor range) and a returned []Out
// outbox through per-message accounting. These tests pin that the two paths
// book identical RoundStats and Result ledgers — delivered, dropped,
// injected, corrupted, and their bit totals — including under duplication
// faults, where a batched implementation could plausibly count the extra
// copies once per batch instead of once per copy.

// sizedPayload is a 16-bit payload for exact bit-ledger arithmetic.
type sizedPayload struct{ v int }

func (sizedPayload) Bits() int { return 16 }

// bcastMachine floods every neighbor for `limit` rounds, either through the
// batched Env.Broadcast path or the per-message []Out path.
type bcastMachine struct {
	limit   int
	batched bool
	heard   int
}

func (m *bcastMachine) Send(env *runtime.Env) []runtime.Out {
	if env.Round() > m.limit {
		env.Output(m.heard)
		env.Terminate()
		return nil
	}
	if m.batched {
		env.Broadcast(sizedPayload{v: env.ID()})
		return nil
	}
	return runtime.Broadcast(env.Info(), sizedPayload{v: env.ID()})
}

func (m *bcastMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	m.heard += len(inbox)
}

func bcastFactory(limit int, batched bool) runtime.Factory {
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		return &bcastMachine{limit: limit, batched: batched}
	}
}

func TestBatchedVsPerMessageAccounting(t *testing.T) {
	cases := []struct {
		name   string
		policy *fault.Policy // nil = no adversary
	}{
		{name: "clean", policy: nil},
		{name: "duplication-heavy", policy: &fault.Policy{Seed: 3, Duplicate: 0.5}},
		{name: "drop+duplicate", policy: &fault.Policy{Seed: 5, Drop: 0.25, Duplicate: 0.25}},
		{name: "corrupt+duplicate", policy: &fault.Policy{Seed: 7, Corrupt: 0.3, Duplicate: 0.3}},
		{name: "full-chaos", policy: &fault.Policy{Seed: 11, Drop: 0.2, Duplicate: 0.2, Corrupt: 0.2, Crash: 0.1}},
	}
	g := graph.GNP(24, 0.25, rand.New(rand.NewSource(99)))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(batched bool) (*runtime.Result, []runtime.RoundStats) {
				var stats []runtime.RoundStats
				cfg := runtime.Config{
					Graph:   g,
					Factory: bcastFactory(4, batched),
					Stats:   func(s runtime.RoundStats) { stats = append(stats, s) },
				}
				if tc.policy != nil {
					cfg.Adversary = fault.New(*tc.policy)
				}
				res, err := runtime.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res, stats
			}
			perMsgRes, perMsgStats := run(false)
			batchRes, batchStats := run(true)

			if !reflect.DeepEqual(scalarLedger(batchRes), scalarLedger(perMsgRes)) {
				t.Fatalf("result ledgers differ:\nbatched:     %+v\nper-message: %+v",
					scalarLedger(batchRes), scalarLedger(perMsgRes))
			}
			if !reflect.DeepEqual(batchRes.Outputs, perMsgRes.Outputs) {
				t.Fatal("outputs differ between batched and per-message runs")
			}
			if len(batchStats) != len(perMsgStats) {
				t.Fatalf("round counts differ: %d vs %d", len(batchStats), len(perMsgStats))
			}
			for i := range batchStats {
				b, p := batchStats[i], perMsgStats[i]
				b.Duration, p.Duration = 0, 0 // wall clock is the only legitimate difference
				if !reflect.DeepEqual(b, p) {
					t.Errorf("round %d stats differ:\nbatched:     %+v\nper-message: %+v", b.Round, b, p)
				}
			}
			if tc.policy != nil && tc.policy.Duplicate > 0 && batchRes.Injected == 0 {
				t.Error("duplication policy injected nothing; the case exercises no batching hazard")
			}
		})
	}
}

// scalarLedger extracts the comparable accounting fields of a Result.
func scalarLedger(r *runtime.Result) [8]int {
	return [8]int{r.Rounds, r.Messages, r.MaxMsgBits, r.Dropped, r.DroppedBits, r.Injected, r.Corrupted, len(r.TerminatedAt)}
}
