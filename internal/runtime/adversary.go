package runtime

// Adversary is the engine's fault-injection hook (the chaos layer). A
// non-nil Config.Adversary is consulted once per in-flight message during
// routing and may drop it, deliver extra copies, or corrupt its payload; it
// may also contribute a crash schedule merged with Config.Crashes.
//
// Determinism contract: the engine calls Crashes exactly once at the start
// of Run and then calls Intercept from a single goroutine, in the engine's
// routing order (senders by ascending identifier, each sender's outbox in
// send order) — an order that is identical in sequential and pool mode. An
// adversary that derives its decisions deterministically from that call
// sequence (e.g. a seeded PRNG, see internal/runtime/fault) therefore
// injects byte-for-byte identical faults in both engine modes. Because the
// call sequence is consumed statefully, an adversary value is single-run:
// create a fresh one per Run.
type Adversary interface {
	// Crashes returns a crash schedule for an n-node graph (node index to
	// 1-based crash round), merged with Config.Crashes; when both specify a
	// node, the earlier round wins. It may return nil. Entries must satisfy
	// the same validity rules as Config.Crashes (index in [0, n), round
	// >= 1); violations abort the run with a config error.
	Crashes(n int) map[int]int
	// Intercept returns the fate of one message about to be delivered in
	// the given round. from and to are node identifiers. It is only called
	// for messages that would otherwise be delivered (the destination is
	// active), never for messages the model already discards.
	Intercept(round, from, to int, payload Payload) Fate
}

// Fate is an adversary's verdict on one in-flight message.
type Fate struct {
	// Drop discards the message entirely; the remaining fields are ignored.
	Drop bool
	// Extra is the number of additional identical copies delivered
	// immediately after the original (message duplication). Negative values
	// are treated as zero.
	Extra int
	// Payload, when non-nil, replaces the delivered payload (corruption on
	// the wire). Every delivered copy — and the engine's per-message bit
	// accounting — uses the replacement.
	Payload Payload
}
