package runtime

// bitset is the engine's compact active-frontier representation: one bit per
// node index. Nodes only ever leave the frontier (termination or crash), so
// the engine's per-round work is proportional to the live frontier, not to
// n — settled nodes cost one cleared bit, nothing else.
type bitset []uint64

// newBitset returns an all-clear bitset able to hold n bits.
func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

// set marks bit i.
//
//dgp:hotpath
func (b bitset) set(i int) {
	b[uint(i)>>6] |= 1 << (uint(i) & 63)
}

// clear unmarks bit i.
//
//dgp:hotpath
func (b bitset) clear(i int) {
	b[uint(i)>>6] &^= 1 << (uint(i) & 63)
}

// test reports whether bit i is set.
//
//dgp:hotpath
func (b bitset) test(i int) bool {
	return b[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}
