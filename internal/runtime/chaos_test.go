package runtime_test

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
)

// panicMachine panics in Send or Receive at a given round.
type panicMachine struct {
	phase string
	round int
}

func (m *panicMachine) Send(env *runtime.Env) []runtime.Out {
	if m.phase == "send" && env.Round() == m.round {
		panic("injected send panic")
	}
	if env.Round() > 3 {
		env.Output(0)
		env.Terminate()
		return nil
	}
	return runtime.Broadcast(env.Info(), echoPayload{Round: env.Round(), From: env.ID()})
}

func (m *panicMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	if m.phase == "receive" && env.Round() == m.round {
		panic("injected receive panic")
	}
}

// TestPanicContainment: a machine panicking in Send or Receive surfaces as a
// per-node ErrMachinePanic from Run — no process crash, no leaked pool
// goroutines — in both engine modes.
func TestPanicContainment(t *testing.T) {
	for _, phase := range []string{"send", "receive"} {
		for _, parallel := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/parallel=%v", phase, parallel), func(t *testing.T) {
				before := goruntime.NumGoroutine()
				g := graph.Clique(16)
				_, err := runtime.Run(runtime.Config{
					Graph:    g,
					Parallel: parallel,
					Factory: func(info runtime.NodeInfo, pred any) runtime.Machine {
						if info.Index == 7 {
							return &panicMachine{phase: phase, round: 2}
						}
						return &panicMachine{phase: phase, round: -1}
					},
				})
				if !errors.Is(err, runtime.ErrMachinePanic) {
					t.Fatalf("want ErrMachinePanic, got %v", err)
				}
				// The error names the node, the round, and the phase.
				for _, want := range []string{fmt.Sprint("node ", g.ID(7)), "round 2"} {
					if !strings.Contains(err.Error(), want) {
						t.Errorf("error %q does not mention %q", err, want)
					}
				}
				// The pool must have shut down: goroutine count returns to the
				// baseline (allow the runtime a moment to retire workers).
				deadline := time.Now().Add(2 * time.Second)
				for goruntime.NumGoroutine() > before && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if after := goruntime.NumGoroutine(); after > before {
					t.Errorf("leaked goroutines: %d before, %d after", before, after)
				}
			})
		}
	}
}

// wedgedMachine blocks forever in Send at round 2.
type wedgedMachine struct{ block chan struct{} }

func (m *wedgedMachine) Send(env *runtime.Env) []runtime.Out {
	if env.Round() == 2 && m.block != nil {
		<-m.block
	}
	if env.Round() > 3 {
		env.Output(0)
		env.Terminate()
		return nil
	}
	return nil
}

func (m *wedgedMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {}

func TestRoundDeadline(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			// Release the wedged machine at test end so its goroutine (leaked
			// by design on a deadline abort) does not outlive the test.
			block := make(chan struct{})
			defer close(block)
			_, err := runtime.Run(runtime.Config{
				Graph:         graph.Line(4),
				Parallel:      parallel,
				RoundDeadline: 50 * time.Millisecond,
				Factory: func(info runtime.NodeInfo, pred any) runtime.Machine {
					if info.Index == 2 {
						return &wedgedMachine{block: block}
					}
					return &wedgedMachine{block: nil}
				},
			})
			if !errors.Is(err, runtime.ErrRoundDeadline) {
				t.Fatalf("want ErrRoundDeadline, got %v", err)
			}
			for _, want := range []string{"send phase", "round 2"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
	// A healthy run under a generous deadline completes normally.
	res, err := runtime.Run(runtime.Config{
		Graph:         graph.Line(4),
		RoundDeadline: 5 * time.Second,
		Factory:       echoFactory(2),
	})
	if err != nil {
		t.Fatalf("healthy run under deadline: %v", err)
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", res.Rounds)
	}
}

func TestCrashIndexValidation(t *testing.T) {
	g := graph.Line(3)
	for _, bad := range []int{-1, 3, 100} {
		_, err := runtime.Run(runtime.Config{
			Graph:   g,
			Factory: echoFactory(2),
			Crashes: map[int]int{bad: 1},
		})
		if err == nil {
			t.Errorf("crash index %d accepted; want config error", bad)
		}
	}
	// In-range indices still work.
	if _, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: echoFactory(2),
		Crashes: map[int]int{0: 1, 2: 2},
	}); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// stubAdversary contributes a fixed crash schedule and no message faults.
type stubAdversary struct{ crashes map[int]int }

func (a *stubAdversary) Crashes(n int) map[int]int { return a.crashes }
func (a *stubAdversary) Intercept(round, from, to int, payload runtime.Payload) runtime.Fate {
	return runtime.Fate{}
}

// TestAdversaryCrashMerge: adversary crash schedules merge with
// Config.Crashes, the earlier round winning, and invalid adversary entries
// are config errors.
func TestAdversaryCrashMerge(t *testing.T) {
	g := graph.Line(5) // ids 1..5
	probe := func(adv runtime.Adversary, crashes map[int]int) (*runtime.Result, error) {
		return runtime.Run(runtime.Config{
			Graph: g,
			Factory: func(runtime.NodeInfo, any) runtime.Machine {
				return &crashProbe{stopAt: 6, heard: map[int]int{}}
			},
			Crashes:   crashes,
			Adversary: adv,
		})
	}
	// Crash merge under test: index 0 at 2 (adversary only), index 1 at
	// min(3, 4) = 3 (config earlier), index 3 at min(5, 2) = 2 (adversary
	// earlier). Indices 2 and 4 survive and report what they heard.
	res, err := probe(
		&stubAdversary{crashes: map[int]int{0: 2, 1: 4, 3: 2}},
		map[int]int{1: 3, 3: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != nil || res.TerminatedAt[0] != 0 {
		t.Errorf("adversary-crashed node produced output %v", res.Outputs[0])
	}
	mid := res.Outputs[2].(map[int]int) // index 2 neighbors indices 1 and 3
	if mid[g.ID(1)] != 2 {
		t.Errorf("heard index-1 node %d times, want 2 (merged crash at 3)", mid[g.ID(1)])
	}
	if mid[g.ID(3)] != 1 {
		t.Errorf("heard index-3 node %d times, want 1 (merged crash at 2)", mid[g.ID(3)])
	}
	// Invalid adversary schedules are config errors.
	if _, err := probe(&stubAdversary{crashes: map[int]int{9: 1}}, nil); err == nil {
		t.Error("out-of-range adversary crash index accepted")
	}
	if _, err := probe(&stubAdversary{crashes: map[int]int{0: 0}}, nil); err == nil {
		t.Error("zero adversary crash round accepted")
	}
}

// fragileMachine is an echo machine that treats unrecognizable payloads as a
// protocol violation — a deterministic error surface for corruption faults.
type fragileMachine struct{ echoMachine }

func (m *fragileMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	for _, msg := range inbox {
		if _, ok := msg.Payload.(echoPayload); !ok {
			env.Fail(fmt.Errorf("node %d round %d: unrecognized payload %T from %d",
				env.ID(), env.Round(), msg.Payload, msg.From))
			return
		}
	}
	m.echoMachine.Receive(env, inbox)
}

// TestChaosEndToEnd: a high-rate policy visibly perturbs a run and the run
// remains deterministic for a fixed seed.
func TestChaosEndToEnd(t *testing.T) {
	g := graph.Clique(12)
	policy := fault.Policy{Seed: 99, Drop: 0.3, Duplicate: 0.2}
	run := func() (*runtime.Result, fault.Stats) {
		chaos := fault.New(policy)
		res, err := runtime.Run(runtime.Config{
			Graph:     g,
			Factory:   echoFactory(4),
			Adversary: chaos,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, chaos.Stats()
	}
	res1, stats1 := run()
	res2, stats2 := run()
	if stats1.Dropped == 0 || stats1.Duplicated == 0 {
		t.Fatalf("policy did not fire: %+v", stats1)
	}
	if stats1 != stats2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", stats1, stats2)
	}
	if res1.Messages != res2.Messages || res1.Rounds != res2.Rounds {
		t.Fatalf("same seed, different results: %+v vs %+v", res1, res2)
	}
	// A faulted clique delivers fewer messages than a clean one... unless
	// duplication outweighs drops; either way it must differ from clean.
	clean, err := runtime.Run(runtime.Config{Graph: g, Factory: echoFactory(4)})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Messages == res1.Messages {
		t.Errorf("chaos run delivered exactly the clean message count %d; faults had no effect?", clean.Messages)
	}
}
