package runtime

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Config describes one execution of a distributed algorithm.
type Config struct {
	// Graph is the communication graph. Required.
	Graph *graph.Graph
	// Factory builds the per-node machines. Required.
	Factory Factory
	// Predictions, when non-nil, must have length Graph.N(); Predictions[i]
	// is handed to the factory for node index i.
	Predictions []any
	// Parallel selects the goroutine-per-chunk engine; both engines have
	// identical semantics.
	Parallel bool
	// MaxRounds caps the execution; 0 selects 8*n + 64, a generous bound for
	// every algorithm in this repository (all are O(n)-round or better).
	MaxRounds int
	// Crashes maps node index to the round (1-based) at the start of which
	// the node crashes: from that round on it sends nothing, receives
	// nothing, and never outputs. Used to exercise fault-tolerant parts.
	Crashes map[int]int
	// MaxMessageBits, when positive, enforces the CONGEST model: every
	// payload must implement BitSized and report at most this many bits;
	// violations abort the run. The conventional budget is O(log n) — see
	// CongestBudget.
	MaxMessageBits int
	// Observer, when non-nil, is invoked at the end of every round with the
	// round number, the current outputs (index-aligned, nil where absent),
	// and which nodes are still active. The slices are reused; copy to keep.
	Observer func(round int, outputs []any, active []bool)
}

// Result reports the outcome of a run.
type Result struct {
	// Rounds is the round in which the last node terminated (0 if the graph
	// is empty).
	Rounds int
	// Outputs holds each node's final output, indexed by node index; nil for
	// crashed nodes that never output.
	Outputs []any
	// TerminatedAt holds the round each node terminated, 0 for crashed nodes
	// that never terminated.
	TerminatedAt []int
	// Messages is the total number of point-to-point messages delivered.
	Messages int
	// MaxMsgBits is the largest single-message size observed, in bits, over
	// payloads implementing BitSized; -1 if any payload did not implement it
	// (i.e. the run is LOCAL-only).
	MaxMsgBits int
}

// ErrNoTermination is returned when MaxRounds elapses with active nodes.
var ErrNoTermination = errors.New("runtime: algorithm did not terminate within MaxRounds")

// ErrCongestViolation is returned when MaxMessageBits is set and a message
// is unsized or too large for the CONGEST budget.
var ErrCongestViolation = errors.New("runtime: CONGEST bandwidth violation")

// CongestBudget returns the conventional CONGEST message budget for an
// n-node graph with identifier domain d: c·⌈log₂(max(n,d))⌉ bits with c = 4,
// enough for a constant number of identifiers or colors per message.
func CongestBudget(n, d int) int {
	m := n
	if d > m {
		m = d
	}
	bits := 1
	for v := m; v > 1; v >>= 1 {
		bits++
	}
	return 4 * bits
}

// Run executes the algorithm to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, errors.New("runtime: Config.Graph is required")
	}
	if cfg.Factory == nil {
		return nil, errors.New("runtime: Config.Factory is required")
	}
	g := cfg.Graph
	n := g.N()
	if cfg.Predictions != nil && len(cfg.Predictions) != n {
		return nil, fmt.Errorf("runtime: %d predictions for %d nodes", len(cfg.Predictions), n)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8*n + 64
	}

	st := newState(cfg, g, n)
	res := &Result{
		Outputs:      make([]any, n),
		TerminatedAt: make([]int, n),
		MaxMsgBits:   0,
	}

	for round := 1; st.activeCount > 0; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("%w (round %d, %d nodes active)", ErrNoTermination, maxRounds, st.activeCount)
		}
		st.beginRound(round)
		if cfg.Parallel {
			st.parallelPhase(st.sendPhase)
		} else {
			st.sequentialPhase(st.sendPhase)
		}
		if err := st.firstError(); err != nil {
			return nil, err
		}
		st.route(res)
		if cfg.Parallel {
			st.parallelPhase(st.receivePhase)
		} else {
			st.sequentialPhase(st.receivePhase)
		}
		if err := st.firstError(); err != nil {
			return nil, err
		}
		st.endRound(round, res)
		if cfg.Observer != nil {
			cfg.Observer(round, st.observedOutputs, st.observedActive)
		}
	}
	return res, nil
}

// state holds the engine's mutable execution state.
type state struct {
	cfg  Config
	g    *graph.Graph
	n    int
	envs []*Env
	mach []Machine
	// idToIndex maps identifiers to node indices for routing.
	idToIndex map[int]int
	// neighborSet[i] is the set of neighbor IDs of node i for send validation.
	neighborSet []map[int]bool
	// active[i]: node participates this round (not terminated, not crashed).
	active      []bool
	activeCount int
	// crashedAt[i] is the crash round or 0.
	crashedAt []int
	// outboxes[i] holds node i's sends this round.
	outboxes [][]Out
	// inboxes[i] holds node i's deliveries this round.
	inboxes [][]Msg
	// errs[i] records a per-node engine error (e.g. send to non-neighbor).
	errs []error
	// terminatedThisSend marks nodes that terminated during the send phase.
	terminatedThisSend []bool

	observedOutputs []any
	observedActive  []bool
}

func newState(cfg Config, g *graph.Graph, n int) *state {
	st := &state{
		cfg:                cfg,
		g:                  g,
		n:                  n,
		envs:               make([]*Env, n),
		mach:               make([]Machine, n),
		idToIndex:          make(map[int]int, n),
		neighborSet:        make([]map[int]bool, n),
		active:             make([]bool, n),
		crashedAt:          make([]int, n),
		outboxes:           make([][]Out, n),
		inboxes:            make([][]Msg, n),
		errs:               make([]error, n),
		terminatedThisSend: make([]bool, n),
		observedOutputs:    make([]any, n),
		observedActive:     make([]bool, n),
	}
	delta := g.MaxDegree()
	for i := 0; i < n; i++ {
		st.idToIndex[g.ID(i)] = i
	}
	for i := 0; i < n; i++ {
		nbrs := g.Neighbors(i)
		nbIDs := make([]int, len(nbrs))
		nbSet := make(map[int]bool, len(nbrs))
		for j, v := range nbrs {
			nbIDs[j] = g.ID(int(v))
			nbSet[nbIDs[j]] = true
		}
		sort.Ints(nbIDs)
		info := NodeInfo{
			Index:       i,
			ID:          g.ID(i),
			NeighborIDs: nbIDs,
			N:           n,
			D:           g.D(),
			Delta:       delta,
		}
		var pred any
		if cfg.Predictions != nil {
			pred = cfg.Predictions[i]
		}
		st.envs[i] = &Env{info: info}
		st.mach[i] = cfg.Factory(info, pred)
		st.neighborSet[i] = nbSet
		st.active[i] = true
	}
	st.activeCount = n
	for i, r := range cfg.Crashes {
		if i < 0 || i >= n {
			continue
		}
		st.crashedAt[i] = r
	}
	return st
}

func (st *state) beginRound(round int) {
	for i := 0; i < st.n; i++ {
		if st.active[i] && st.crashedAt[i] != 0 && round >= st.crashedAt[i] {
			// Crash takes effect: the node silently leaves the computation.
			st.active[i] = false
			st.activeCount--
		}
		if st.active[i] {
			st.envs[i].round = round
		}
		st.outboxes[i] = nil
		st.inboxes[i] = nil
		st.terminatedThisSend[i] = false
	}
}

func (st *state) sendPhase(i int) {
	if !st.active[i] {
		return
	}
	st.outboxes[i] = st.mach[i].Send(st.envs[i])
	if err := st.envs[i].err; err != nil {
		st.errs[i] = err
		return
	}
	for _, out := range st.outboxes[i] {
		if !st.neighborSet[i][out.To] {
			st.errs[i] = fmt.Errorf("node %d sent to non-neighbor %d", st.envs[i].ID(), out.To)
			return
		}
		if limit := st.cfg.MaxMessageBits; limit > 0 {
			bs, ok := out.Payload.(BitSized)
			if !ok || bs.Bits() < 0 {
				st.errs[i] = fmt.Errorf("%w: node %d sent an unsized payload %T",
					ErrCongestViolation, st.envs[i].ID(), out.Payload)
				return
			}
			if b := bs.Bits(); b > limit {
				st.errs[i] = fmt.Errorf("%w: node %d sent %d bits (limit %d)",
					ErrCongestViolation, st.envs[i].ID(), b, limit)
				return
			}
		}
	}
	if st.envs[i].terminated {
		st.terminatedThisSend[i] = true
	}
}

func (st *state) receivePhase(i int) {
	if !st.active[i] || st.terminatedThisSend[i] {
		return
	}
	st.mach[i].Receive(st.envs[i], st.inboxes[i])
	if err := st.envs[i].err; err != nil {
		st.errs[i] = err
	}
}

// route delivers this round's messages. Inboxes are ordered by sender index
// so both engine modes are byte-for-byte deterministic.
func (st *state) route(res *Result) {
	for i := 0; i < st.n; i++ {
		if !st.active[i] {
			continue
		}
		from := st.envs[i].ID()
		for _, out := range st.outboxes[i] {
			j := st.idToIndex[out.To]
			// Messages to nodes that already left the computation vanish; a
			// node terminating during this round's send phase has, by the
			// model, already assigned all outputs, so deliveries to it are
			// moot and are dropped as well.
			if !st.active[j] || st.terminatedThisSend[j] {
				continue
			}
			st.inboxes[j] = append(st.inboxes[j], Msg{From: from, Payload: out.Payload})
			res.Messages++
			if res.MaxMsgBits >= 0 {
				b := -1
				if bs, ok := out.Payload.(BitSized); ok {
					b = bs.Bits()
				}
				if b < 0 {
					// An unsized (or wrapper-of-unsized) payload makes the
					// run LOCAL-only.
					res.MaxMsgBits = -1
				} else if b > res.MaxMsgBits {
					res.MaxMsgBits = b
				}
			}
		}
	}
	for j := 0; j < st.n; j++ {
		inbox := st.inboxes[j]
		sort.Slice(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
	}
}

func (st *state) endRound(round int, res *Result) {
	for i := 0; i < st.n; i++ {
		if st.active[i] && st.envs[i].terminated {
			st.active[i] = false
			st.activeCount--
			res.Outputs[i] = st.envs[i].output
			res.TerminatedAt[i] = round
			res.Rounds = round
		}
		st.observedOutputs[i] = st.envs[i].output
		if !st.envs[i].hasOutput {
			st.observedOutputs[i] = nil
		}
		st.observedActive[i] = st.active[i]
	}
}

func (st *state) firstError() error {
	for i := 0; i < st.n; i++ {
		if st.errs[i] != nil {
			return st.errs[i]
		}
	}
	return nil
}

func (st *state) sequentialPhase(phase func(i int)) {
	for i := 0; i < st.n; i++ {
		phase(i)
	}
}

// parallelPhase executes phase(i) for all nodes on a goroutine pool with a
// barrier: the call returns only once every node's phase has completed, which
// realizes the synchronous round structure directly.
func (st *state) parallelPhase(phase func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > st.n {
		workers = st.n
	}
	if workers <= 1 {
		st.sequentialPhase(phase)
		return
	}
	var wg sync.WaitGroup
	chunk := (st.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > st.n {
			hi = st.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				phase(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
