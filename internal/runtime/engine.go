package runtime

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/shard"
)

// Config describes one execution of a distributed algorithm.
type Config struct {
	// Graph is the communication graph. Required.
	Graph *graph.Graph
	// Factory builds the per-node machines. Required.
	Factory Factory
	// Predictions, when non-nil, must have length Graph.N(); Predictions[i]
	// is handed to the factory for node index i.
	Predictions []any
	// Parallel selects the worker-pool engine: a pool of goroutines is
	// created once per Run and executes the send/receive phases of every
	// round via phase signals, with a barrier between phases. Both engines
	// have identical semantics. Combined with Shards, each shard engine gets
	// its own pool splitting GOMAXPROCS.
	Parallel bool
	// Shards, when positive, selects the sharded engine: the graph is
	// partitioned into Shards node sets (contiguous index ranges unless
	// Partition overrides the strategy) and each shard runs its phases on an
	// independent shard engine with its own inbox arena and frontier lists,
	// exchanging boundary-edge message batches at the round barrier. The
	// determinism contract extends across shard counts: results, error
	// surfaces, and trace streams (EvShardExchange ledgers excepted) are
	// identical for every Shards value, including 0 (the single-engine
	// path). See internal/runtime/shard.go.
	Shards int
	// Partition, when non-nil, fixes the node→shard assignment (e.g.
	// shard.GreedyEdgeCut); its shard count must agree with Shards when both
	// are set. nil with Shards > 0 selects shard.Contiguous.
	Partition *shard.Partition
	// MaxRounds caps the execution; 0 selects 8*n + 64, a generous bound for
	// every algorithm in this repository (all are O(n)-round or better).
	MaxRounds int
	// Crashes maps node index to the round (1-based) at the start of which
	// the node crashes: from that round on it sends nothing, receives
	// nothing, and never outputs. Used to exercise fault-tolerant parts.
	// Crash rounds must be >= 1 and node indices must be in [0, Graph.N());
	// anything else is a config error.
	Crashes map[int]int
	// Adversary, when non-nil, intercepts message routing and may contribute
	// a crash schedule; see the Adversary interface for the determinism
	// contract. Adversary state is consumed by the run: pass a fresh value
	// per Run.
	Adversary Adversary
	// RoundDeadline, when positive, bounds the wall-clock time of each send
	// and receive phase; a phase that exceeds it aborts the run with an
	// ErrRoundDeadline diagnostic. The wedged phase goroutine cannot be
	// killed and is abandoned, so a deadline abort is a terminal condition
	// for the process's engine use, not a recoverable per-round event.
	RoundDeadline time.Duration
	// MaxMessageBits, when positive, enforces the CONGEST model: every
	// payload must implement BitSized and report at most this many bits;
	// violations abort the run. The conventional budget is O(log n) — see
	// CongestBudget.
	MaxMessageBits int
	// Observer, when non-nil, is invoked at the end of every round with the
	// round number, the current outputs (index-aligned, nil where absent),
	// and which nodes are still active. The slices are reused; copy to keep.
	Observer func(round int, outputs []any, active []bool)
	// Stats, when non-nil, is invoked at the end of every round with the
	// engine's instrumentation record for that round (wall time, deliveries,
	// payload bits). Purely observational: it never affects semantics.
	Stats func(RoundStats)
	// Trace, when non-nil, receives the run's typed event stream (see
	// internal/obs for the taxonomy). All events are emitted from the
	// engine's main goroutine in an order identical across both engine
	// modes; only wall-clock durations differ. Purely observational. When
	// nil the instrumented paths reduce to a nil check.
	Trace *obs.Recorder
	// Telemetry, when non-nil, receives per-phase round wall-time
	// observations into dgp_round_seconds{phase,shards} histograms (phases:
	// send, route, receive, round). The histograms are resolved once on the
	// run's setup path; the round loop only reads the observational clock
	// and updates pre-resolved histograms, so semantics are untouched and a
	// nil Telemetry costs a single pointer check per round.
	Telemetry *obs.Telemetry
}

// RoundStats is the engine's per-round instrumentation record, reported
// through Config.Stats.
type RoundStats struct {
	// Round is the 1-based round number.
	Round int
	// Duration is the wall time of the whole round (send, route, receive,
	// bookkeeping).
	Duration time.Duration
	// Messages is the number of messages delivered this round.
	Messages int
	// Bits is the total size of the round's delivered payloads that
	// implement BitSized, in bits; unsized payloads contribute nothing.
	Bits int
	// Active is the number of nodes that participated in this round.
	Active int
	// Dropped counts messages the adversary dropped this round, and
	// DroppedBits their sized payload bits. Dropped traffic is reported
	// here, never in Messages/Bits: delivered and injected/denied traffic
	// are separate ledgers, so chaos runs don't inflate bandwidth numbers.
	Dropped     int
	DroppedBits int
	// Injected counts extra duplicate copies the adversary injected this
	// round (the copies beyond the first), and InjectedBits their sized
	// bits. The copies are real deliveries, so they also appear in
	// Messages/Bits; these fields isolate the adversary's share.
	Injected     int
	InjectedBits int
	// Corrupted counts deliveries whose payload the adversary replaced.
	Corrupted int
	// Shards holds the per-shard delivery ledgers of a multi-shard round
	// (Config.Shards >= 2; nil otherwise — a single shard's ledger is the
	// global fields above). Indexed by shard; the slice is reused across
	// rounds, copy to keep.
	Shards []ShardRoundStats
}

// ShardRoundStats is one shard's slice of a round's delivery ledgers
// (RoundStats.Shards). Delivered/Injected split exactly like the global
// fields: injected copies are real deliveries and appear in both. Boundary
// fields ledger the traffic this shard exported across the partition cut —
// the per-round cost of the exchange phase.
type ShardRoundStats struct {
	Delivered       int
	DeliveredBits   int
	Injected        int
	InjectedBits    int
	BoundaryOut     int
	BoundaryOutBits int
}

// Result reports the outcome of a run.
type Result struct {
	// Rounds is the round in which the last node terminated (0 if the graph
	// is empty).
	Rounds int
	// Outputs holds each node's final output, indexed by node index; nil for
	// crashed nodes that never output.
	Outputs []any
	// TerminatedAt holds the round each node terminated, 0 for crashed nodes
	// that never terminated.
	TerminatedAt []int
	// Messages is the total number of point-to-point messages delivered.
	Messages int
	// MaxMsgBits is the largest single-message size observed, in bits, over
	// payloads implementing BitSized. It is -1 when no sized payload was
	// ever observed: either some delivered payload did not implement
	// BitSized (the run is LOCAL-only) or the run delivered no messages at
	// all, so no bandwidth claim can be made either way.
	MaxMsgBits int
	// Dropped/DroppedBits total the adversary-dropped messages and their
	// sized bits; dropped traffic never counts toward Messages. Injected
	// totals the extra duplicate copies (which, being real deliveries, do
	// count toward Messages as well); Corrupted totals corrupted
	// deliveries. See the matching RoundStats fields.
	Dropped     int
	DroppedBits int
	Injected    int
	Corrupted   int
}

// ErrNoTermination is returned when MaxRounds elapses with active nodes.
var ErrNoTermination = errors.New("runtime: algorithm did not terminate within MaxRounds")

// ErrConfig wraps every configuration-validation error from Run (nil graph
// or factory, mismatched predictions, invalid crash schedules): the run
// never started. Callers distinguishing misconfiguration from runtime
// failure — e.g. the recovery wrapper, which can heal a damaged run but not
// an impossible one — test errors.Is(err, ErrConfig).
var ErrConfig = errors.New("runtime: invalid configuration")

// ErrCongestViolation is returned when MaxMessageBits is set and a message
// is unsized or too large for the CONGEST budget.
var ErrCongestViolation = errors.New("runtime: CONGEST bandwidth violation")

// ErrMachinePanic is returned when a machine's Send or Receive panics. The
// panic is contained: it surfaces as a per-node error from Run (wrapping
// this sentinel, with node, round, phase, and the panic value) and the
// worker pool shuts down cleanly instead of crashing the process.
var ErrMachinePanic = errors.New("runtime: machine panicked")

// ErrRoundDeadline is returned when Config.RoundDeadline is set and a send
// or receive phase exceeds it (a wedged machine). The returned error wraps
// this sentinel and names the phase and round.
var ErrRoundDeadline = errors.New("runtime: round deadline exceeded")

// ErrProtocol wraps every violation of the node-machine contract detected at
// runtime: sending to a non-neighbor, producing output after termination,
// terminating without output, or breaking a template's lockstep/lane
// discipline (internal/core). Test errors.Is(err, ErrProtocol).
var ErrProtocol = errors.New("runtime: protocol violation")

// CongestBudget returns the conventional CONGEST message budget for an
// n-node graph with identifier domain d: c·⌈log₂(max(n,d))⌉ bits with c = 4,
// enough for a constant number of identifiers or colors per message. The
// degenerate single-node case gets the one-bit floor, 4·1.
func CongestBudget(n, d int) int {
	m := n
	if d > m {
		m = d
	}
	if m < 2 {
		return 4
	}
	// bits.Len(m-1) is exactly ⌈log₂ m⌉ for m >= 2.
	return 4 * bits.Len(uint(m-1))
}

// Run executes the algorithm to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("%w: Config.Graph is required", ErrConfig)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("%w: Config.Factory is required", ErrConfig)
	}
	g := cfg.Graph
	n := g.N()
	if cfg.Predictions != nil && len(cfg.Predictions) != n {
		return nil, fmt.Errorf("%w: %d predictions for %d nodes", ErrConfig, len(cfg.Predictions), n)
	}
	crashes := cfg.Crashes
	if err := validCrashes(crashes, n, "Config.Crashes"); err != nil {
		return nil, err
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("%w: Config.Shards = %d; must be >= 0", ErrConfig, cfg.Shards)
	}
	part := cfg.Partition
	if part != nil {
		if err := part.Validate(n); err != nil {
			return nil, fmt.Errorf("%w: Config.Partition: %v", ErrConfig, err)
		}
		if cfg.Shards != 0 && cfg.Shards != part.S {
			return nil, fmt.Errorf("%w: Config.Shards = %d but Config.Partition has %d shards",
				ErrConfig, cfg.Shards, part.S)
		}
	} else if cfg.Shards > 0 {
		part = shard.Contiguous(n, cfg.Shards)
	}
	if cfg.Adversary != nil {
		adv := cfg.Adversary.Crashes(n)
		if err := validCrashes(adv, n, "Adversary.Crashes"); err != nil {
			return nil, err
		}
		if len(adv) > 0 {
			merged := make(map[int]int, len(crashes)+len(adv))
			for i, r := range crashes {
				merged[i] = r
			}
			for i, r := range adv {
				if cur, ok := merged[i]; !ok || r < cur {
					merged[i] = r
				}
			}
			crashes = merged
		}
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8*n + 64
	}

	st := newState(cfg, g, n, crashes)
	if part != nil {
		st.initLanes(part)
		// A deadline abort abandons the in-flight phase goroutine, which may
		// still be dispatching on the lanes' (or pool's) channels; closing
		// them underneath it would race, so abandoned lanes leak with it.
		defer func() {
			if !st.poolAbandoned {
				st.closeLanes()
			}
		}()
	} else if cfg.Parallel {
		st.pool = newWorkerPool(n)
		if st.pool != nil {
			defer func() {
				if !st.poolAbandoned {
					st.pool.close()
				}
			}()
		}
	}
	res := &Result{
		Outputs:      make([]any, n),
		TerminatedAt: make([]int, n),
	}
	if st.trace != nil {
		st.trace.Emit(obs.Event{Type: obs.EvRunStart, Value: int64(n), Aux: int64(g.M())})
	}

	telemetry := st.telRound != nil
	timed := cfg.Stats != nil || st.trace != nil || telemetry
	for round := 1; st.activeCount > 0; round++ {
		if round > maxRounds {
			err := fmt.Errorf("%w (round %d, %d nodes active)", ErrNoTermination, maxRounds, st.activeCount)
			// The round that overran never began; close the run after the
			// last round that did execute.
			st.traceRunEnd(maxRounds, res, err)
			return nil, err
		}
		var start, mark time.Time
		if timed {
			// Observational wall-clock only (RoundStats.Duration, trace
			// DurNS, telemetry histograms); the obs funnel is exempted
			// package-wide by the seededrand analyzer and never feeds back
			// into semantics.
			start = obs.Now()
			mark = start
		}
		st.beginRound(round)
		activeThisRound := st.activeCount
		if err := st.phase(st.sendFn, round, "send"); err != nil {
			st.traceAbort(round, res, err, "send", false)
			return nil, err
		}
		if err := st.firstError(); err != nil {
			st.traceAbort(round, res, err, "send", true)
			return nil, err
		}
		if telemetry {
			mark = telObserve(st.telSend, mark)
		}
		if len(st.lanes) > 1 {
			st.routeSharded(round, res)
		} else {
			st.route(round, res)
		}
		if telemetry {
			mark = telObserve(st.telRoute, mark)
		}
		if err := st.phase(st.receiveFn, round, "receive"); err != nil {
			st.traceAbort(round, res, err, "receive", false)
			return nil, err
		}
		if err := st.firstError(); err != nil {
			st.traceAbort(round, res, err, "receive", true)
			return nil, err
		}
		if telemetry {
			telObserve(st.telReceive, mark)
		}
		st.endRound(round, res)
		var dur time.Duration
		if timed {
			dur = obs.Since(start)
		}
		if telemetry {
			st.telRound.Observe(dur.Seconds())
		}
		if st.trace != nil {
			st.trace.Emit(obs.Event{
				Type: obs.EvRoundEnd, Round: round,
				Value: int64(st.roundMsgs), Aux: int64(st.roundBits),
				DurNS: dur.Nanoseconds(),
			})
		}
		if cfg.Stats != nil {
			cfg.Stats(RoundStats{
				Round:        round,
				Duration:     dur,
				Messages:     st.roundMsgs,
				Bits:         st.roundBits,
				Active:       activeThisRound,
				Dropped:      st.roundDropped,
				DroppedBits:  st.roundDroppedBits,
				Injected:     st.roundInjected,
				InjectedBits: st.roundInjectedBits,
				Corrupted:    st.roundCorrupted,
				Shards:       st.shardStats,
			})
		}
		if cfg.Observer != nil {
			cfg.Observer(round, st.observedOutputs, st.observedActive)
		}
	}
	res.MaxMsgBits = st.maxMsgBits
	if st.localOnly {
		res.MaxMsgBits = -1
	}
	st.traceRunEnd(res.Rounds, res, nil)
	return res, nil
}

// telObserve records the wall time elapsed since mark into the phase
// histogram and returns a fresh mark for the next phase. Callers guard with
// the telemetry flag, so h is never nil here and disabled telemetry costs
// one boolean test per phase.
func telObserve(h *obs.Histogram, mark time.Time) time.Time {
	now := obs.Now()
	h.Observe(now.Sub(mark).Seconds())
	return now
}

// traceRunEnd emits the terminal run-end event (no-op without a recorder).
func (st *state) traceRunEnd(lastRound int, res *Result, err error) {
	if st.trace == nil {
		return
	}
	e := obs.Event{Type: obs.EvRunEnd, Value: int64(lastRound), Aux: int64(res.Messages)}
	if err != nil {
		e.Err = err.Error()
	}
	st.trace.Emit(e)
}

// traceAbort closes the trace of a run aborting inside round `round`: the
// terminal round event carries the error, preceded by a deadline marker
// when the watchdog fired, then the run-end event. drain controls whether
// staged machine annotations are flushed first: phases that completed
// (protocol/panic aborts, detected after the barrier) drain; a deadline
// abort abandons the phase goroutine mid-flight, so the staging buffers may
// still be written to and must not be touched.
func (st *state) traceAbort(round int, res *Result, err error, phase string, drain bool) {
	if st.trace == nil {
		return
	}
	if drain {
		st.drainNotes(round)
	}
	if errors.Is(err, ErrRoundDeadline) {
		st.trace.Emit(obs.Event{Type: obs.EvDeadline, Round: round, Name: phase})
	}
	st.trace.Emit(obs.Event{Type: obs.EvRoundEnd, Round: round, Err: err.Error()})
	st.traceRunEnd(round, res, err)
}

// validCrashes checks a crash schedule: node indices in [0, n), rounds >= 1.
// Entries are examined in ascending index order so a schedule with several
// invalid entries reports the same one every run — the chaos parity tests
// compare error strings across engine modes.
func validCrashes(crashes map[int]int, n int, source string) error {
	idxs := make([]int, 0, len(crashes))
	for i := range crashes {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		r := crashes[i]
		if i < 0 || i >= n {
			return fmt.Errorf("%w: %s[%d] = %d; node index out of range [0, %d)", ErrConfig, source, i, r, n)
		}
		if r < 1 {
			return fmt.Errorf("%w: %s[%d] = %d; crash rounds are 1-based and must be >= 1", ErrConfig, source, i, r)
		}
	}
	return nil
}

// crashEntry is one scheduled crash; the engine consumes the schedule as a
// sorted list (by round, then node index — the index order fixes the crash
// event emission order within a round) instead of scanning an O(n) map or
// array every round.
type crashEntry struct {
	round int
	node  int32
}

func buildCrashSched(crashes map[int]int) []crashEntry {
	if len(crashes) == 0 {
		return nil
	}
	sched := make([]crashEntry, 0, len(crashes))
	for i, r := range crashes {
		sched = append(sched, crashEntry{round: r, node: int32(i)})
	}
	sort.Slice(sched, func(a, b int) bool {
		if sched[a].round != sched[b].round {
			return sched[a].round < sched[b].round
		}
		return sched[a].node < sched[b].node
	})
	return sched
}

// state holds the engine's mutable execution state in columnar form: flat
// CSR adjacency, one contiguous inbox arena per round, and compact active
// lists over a frontier bitset. Per-node slice-of-slice structures are gone
// from the hot path; what remains per node lives in the flat envs slab.
type state struct {
	cfg  Config
	g    *graph.Graph
	n    int
	envs []Env
	mach []Machine

	// csrOff/csrNbr/csrIDs are the flat CSR edge arrays, built once per Run:
	// node i's neighbors are csrNbr[csrOff[i]:csrOff[i+1]] (node indices)
	// with csrIDs aligned 1:1 holding their identifiers, each range sorted
	// ascending by identifier. NodeInfo.NeighborIDs and the send-validation
	// binary search are views into csrIDs; broadcast routing walks csrNbr
	// ranges directly.
	csrOff []int32
	csrNbr []int32
	csrIDs []int

	// frontier marks the nodes still in the computation; actByIdx (node
	// index order, phase dispatch and inbox layout) and actByID (identifier
	// order, routing) are its compact list forms. Nodes only ever leave the
	// frontier, so both lists are compacted in place at the start of each
	// round in O(live) time.
	frontier    bitset
	actByIdx    []int32
	actByID     []int32
	activeCount int

	// crashSched/crashNext consume the merged crash schedule in round order.
	crashSched []crashEntry
	crashNext  int

	// inbox is the per-round message arena; inMsgs is the slice acquired for
	// the current round. inCnt/inOff/inFill carve it into per-node regions:
	// the counting pass fills inCnt, the offset pass turns it into inOff
	// (region starts) and resets it, and the placement pass advances inFill.
	inbox  msgSlab
	inMsgs []Msg
	inCnt  []int32
	inOff  []int32
	inFill []int32

	// fateCopies/fateSwap record the adversary's verdicts from the counting
	// pass (copies delivered, 0 = dropped; replacement payload or nil) so the
	// placement pass replays them without consulting the adversary twice.
	fateCopies []int32
	fateSwap   []Payload

	// errs[i] records a per-node engine error (e.g. send to non-neighbor).
	errs []error
	// terminatedThisSend marks nodes that terminated during the send phase.
	terminatedThisSend []bool
	// pool is the persistent worker pool (Parallel mode only; nil otherwise);
	// poolAbandoned marks that a deadline abort left a phase goroutine alive
	// on it (or on the lanes' channels), so Run must not close either.
	pool          *workerPool
	poolAbandoned bool

	// lanes/laneOf/exch/shardStats/laneDone are the shard supervisor's state
	// (Config.Shards; nil/empty on the single-engine path). lanes[s] is
	// shard s's engine, laneOf maps node index to shard, exch is the
	// boundary-batch fabric, shardStats the per-shard round ledgers, and
	// laneDone the supervisor's barrier channel. See shard.go.
	lanes      []*laneState
	laneOf     []int32
	exch       *shard.Exchange[slotMsg]
	shardStats []ShardRoundStats
	laneDone   chan struct{}
	// sendFn/receiveFn are the phase functions, bound once so the per-round
	// phase dispatch does not allocate method-value closures.
	sendFn    func(int)
	receiveFn func(int)

	// maxMsgBits/localOnly accumulate Result.MaxMsgBits: the largest sized
	// payload seen (-1 before any), and whether an unsized payload was seen.
	maxMsgBits int
	localOnly  bool
	// roundMsgs/roundBits accumulate the current round's Stats record;
	// the round* adversary counters feed the delivered-vs-injected split.
	roundMsgs         int
	roundBits         int
	roundDropped      int
	roundDroppedBits  int
	roundInjected     int
	roundInjectedBits int
	roundCorrupted    int
	// trace is the attached event recorder (nil = tracing disabled).
	trace *obs.Recorder

	// Pre-resolved telemetry histograms (nil = telemetry disabled): the
	// round loop observes phase wall times into these without any label
	// formatting or map lookups on the hot path.
	telSend, telRoute, telReceive, telRound *obs.Histogram

	// observedOutputs/observedActive back Config.Observer; allocated only
	// when an observer is attached and maintained incrementally (settled
	// nodes never change after leaving the frontier).
	observedOutputs []any
	observedActive  []bool
}

// idSorter sorts a CSR neighbor range ascending by node identifier. It is
// reused across ranges so per-node sorting does not allocate a comparison
// closure per node.
type idSorter struct {
	g   *graph.Graph
	idx []int32
}

func (s *idSorter) Len() int { return len(s.idx) }
func (s *idSorter) Less(a, b int) bool {
	return s.g.ID(int(s.idx[a])) < s.g.ID(int(s.idx[b]))
}
func (s *idSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

func newState(cfg Config, g *graph.Graph, n int, crashes map[int]int) *state {
	st := &state{
		cfg:                cfg,
		g:                  g,
		n:                  n,
		envs:               make([]Env, n),
		mach:               make([]Machine, n),
		frontier:           newBitset(n),
		actByIdx:           make([]int32, n),
		actByID:            make([]int32, n),
		inCnt:              make([]int32, n),
		inOff:              make([]int32, n),
		inFill:             make([]int32, n),
		errs:               make([]error, n),
		terminatedThisSend: make([]bool, n),
		maxMsgBits:         -1,
		trace:              cfg.Trace,
	}
	if cfg.Telemetry != nil {
		shards := cfg.Shards
		if shards < 1 {
			shards = 1
		}
		st.telSend = cfg.Telemetry.RoundHistogram("send", shards)
		st.telRoute = cfg.Telemetry.RoundHistogram("route", shards)
		st.telReceive = cfg.Telemetry.RoundHistogram("receive", shards)
		st.telRound = cfg.Telemetry.RoundHistogram("round", shards)
	}
	st.sendFn = st.sendPhase
	st.receiveFn = st.receivePhase

	// Build the ID-sorted CSR. When identifiers are the identity permutation
	// (the common generator default), the graph's index-sorted adjacency is
	// already ID-sorted and can be aliased without copying or sorting.
	off, adj := g.CSR()
	st.csrOff = off
	identity := true
	for i := 0; i < n; i++ {
		if g.ID(i) != i+1 {
			identity = false
			break
		}
	}
	st.csrIDs = make([]int, len(adj))
	if identity {
		st.csrNbr = adj
		for k, v := range adj {
			st.csrIDs[k] = int(v) + 1
		}
		for i := range st.actByID {
			st.actByID[i] = int32(i)
		}
	} else {
		st.csrNbr = make([]int32, len(adj))
		copy(st.csrNbr, adj)
		srt := idSorter{g: g}
		for i := 0; i < n; i++ {
			srt.idx = st.csrNbr[off[i]:off[i+1]]
			sort.Sort(&srt)
		}
		for k, v := range st.csrNbr {
			st.csrIDs[k] = g.ID(int(v))
		}
		if g.D() == n {
			// Identifiers are a bijection onto {1..n}: place directly.
			for i := 0; i < n; i++ {
				st.actByID[g.ID(i)-1] = int32(i)
			}
		} else {
			for i := range st.actByID {
				st.actByID[i] = int32(i)
			}
			sort.Slice(st.actByID, func(a, b int) bool {
				return g.ID(int(st.actByID[a])) < g.ID(int(st.actByID[b]))
			})
		}
	}

	delta := g.MaxDegree()
	tracing := cfg.Trace != nil
	for i := 0; i < n; i++ {
		info := NodeInfo{
			Index:       i,
			ID:          g.ID(i),
			NeighborIDs: st.csrIDs[off[i]:off[i+1]],
			N:           n,
			D:           g.D(),
			Delta:       delta,
		}
		var pred any
		if cfg.Predictions != nil {
			pred = cfg.Predictions[i]
		}
		e := &st.envs[i]
		e.info = info
		e.tracing = tracing
		st.mach[i] = cfg.Factory(info, pred)
		st.actByIdx[i] = int32(i)
		st.frontier.set(i)
	}
	st.activeCount = n
	// Run has already validated the schedule (indices in range, rounds >= 1).
	st.crashSched = buildCrashSched(crashes)
	if cfg.Observer != nil {
		st.observedOutputs = make([]any, n)
		st.observedActive = make([]bool, n)
		for i := range st.observedActive {
			st.observedActive[i] = true
		}
	}
	return st
}

// beginRound applies the round's scheduled crashes, compacts the active
// lists, and resets the per-round staging of every live node. All work is
// O(live frontier + crashes this round).
//
//dgp:hotpath
func (st *state) beginRound(round int) {
	if st.trace != nil {
		st.trace.Emit(obs.Event{Type: obs.EvRoundStart, Round: round, Value: int64(st.activeCount)})
	}
	for st.crashNext < len(st.crashSched) && st.crashSched[st.crashNext].round <= round {
		i := int(st.crashSched[st.crashNext].node)
		st.crashNext++
		if !st.frontier.test(i) {
			continue
		}
		// Crash takes effect: the node silently leaves the computation.
		st.frontier.clear(i)
		st.activeCount--
		e := &st.envs[i]
		e.outs, e.dst, e.bcast = nil, nil, nil
		if st.trace != nil {
			st.trace.Emit(obs.Event{Type: obs.EvCrash, Round: round, Node: e.info.ID})
		}
		if st.cfg.Observer != nil {
			st.observedActive[i] = false
			if e.hasOutput {
				st.observedOutputs[i] = e.output
			}
		}
	}
	k := 0
	for _, si := range st.actByIdx {
		i := int(si)
		if !st.frontier.test(i) {
			continue
		}
		st.actByIdx[k] = si
		k++
		st.envs[i].round = round
		st.terminatedThisSend[i] = false
	}
	st.actByIdx = st.actByIdx[:k]
	k = 0
	for _, si := range st.actByID {
		if st.frontier.test(int(si)) {
			st.actByID[k] = si
			k++
		}
	}
	st.actByID = st.actByID[:k]
	if st.lanes != nil {
		st.compactLanes()
	}
}

// searchIDs returns the position of id in the ascending slice a, or len(a)
// if absent (caller re-checks the value). Hand-rolled so the send hot path
// never allocates a comparison closure.
//
//dgp:hotpath
func searchIDs(a []int, id int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// callSend invokes machine i's Send with panic containment: a panic is
// recorded as a per-node ErrMachinePanic instead of unwinding into the
// engine (or a pool worker goroutine, which would crash the process).
//
//dgp:hotpath
func (st *state) callSend(i int) (outs []Out, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			st.errs[i] = fmt.Errorf("%w: node %d, round %d, Send: %v",
				ErrMachinePanic, st.envs[i].info.ID, st.envs[i].round, r)
		}
	}()
	return st.mach[i].Send(&st.envs[i]), true
}

// callReceive is callSend's Receive-phase counterpart.
//
//dgp:hotpath
func (st *state) callReceive(i int) (ok bool) {
	e := &st.envs[i]
	e.inReceive = true
	defer func() {
		e.inReceive = false
		if r := recover(); r != nil {
			st.errs[i] = fmt.Errorf("%w: node %d, round %d, Receive: %v",
				ErrMachinePanic, e.info.ID, e.round, r)
		}
	}()
	st.mach[i].Receive(e, st.inboxFor(i)[st.inOff[i]:st.inFill[i]])
	return true
}

// inboxFor returns the arena holding node i's inbox region for this round:
// the owning lane's arena on the multi-shard path, the global arena
// otherwise (single-engine and 1-shard runs share st.inbox).
//
//dgp:hotpath
func (st *state) inboxFor(i int) []Msg {
	if len(st.lanes) > 1 {
		return st.lanes[st.laneOf[i]].inMsgs
	}
	return st.inMsgs
}

//dgp:hotpath
func (st *state) sendPhase(i int) {
	e := &st.envs[i]
	e.bcastSet = false
	e.bcast = nil
	e.outs = nil
	outs, ok := st.callSend(i)
	if !ok {
		return
	}
	if err := e.err; err != nil {
		st.errs[i] = err
		return
	}
	if e.bcastSet {
		if len(outs) > 0 {
			st.errs[i] = fmt.Errorf("%w: node %d mixed Env.Broadcast with returned sends", ErrProtocol, e.info.ID)
			return
		}
		// The broadcast fast path needs no per-destination validation: the
		// CSR neighbor range is the destination list. One bandwidth check
		// covers every copy.
		if limit := st.cfg.MaxMessageBits; limit > 0 {
			bs, sized := e.bcast.(BitSized)
			if !sized || bs.Bits() < 0 {
				st.errs[i] = fmt.Errorf("%w: node %d sent an unsized payload %T",
					ErrCongestViolation, e.info.ID, e.bcast)
				return
			}
			if b := bs.Bits(); b > limit {
				st.errs[i] = fmt.Errorf("%w: node %d sent %d bits (limit %d)",
					ErrCongestViolation, e.info.ID, b, limit)
				return
			}
		}
		if e.terminated {
			st.terminatedThisSend[i] = true
		}
		return
	}
	e.outs = outs
	nbIDs := st.csrIDs[st.csrOff[i]:st.csrOff[i+1]]
	nbIdx := st.csrNbr[st.csrOff[i]:st.csrOff[i+1]]
	dst := e.dst[:0]
	for _, out := range outs {
		pos := searchIDs(nbIDs, out.To)
		if pos == len(nbIDs) || nbIDs[pos] != out.To {
			st.errs[i] = fmt.Errorf("%w: node %d sent to non-neighbor %d", ErrProtocol, e.ID(), out.To)
			return
		}
		dst = append(dst, nbIdx[pos])
		if limit := st.cfg.MaxMessageBits; limit > 0 {
			bs, sized := out.Payload.(BitSized)
			if !sized || bs.Bits() < 0 {
				st.errs[i] = fmt.Errorf("%w: node %d sent an unsized payload %T",
					ErrCongestViolation, e.ID(), out.Payload)
				return
			}
			if b := bs.Bits(); b > limit {
				st.errs[i] = fmt.Errorf("%w: node %d sent %d bits (limit %d)",
					ErrCongestViolation, e.ID(), b, limit)
				return
			}
		}
	}
	e.dst = dst
	if e.terminated {
		st.terminatedThisSend[i] = true
	}
}

//dgp:hotpath
func (st *state) receivePhase(i int) {
	if st.terminatedThisSend[i] {
		return
	}
	if !st.callReceive(i) {
		return
	}
	if err := st.envs[i].err; err != nil {
		st.errs[i] = err
	}
}

// route delivers this round's messages into the inbox arena in three
// columnar passes, all on the engine's main goroutine in both modes:
//
//  1. counting — walk senders in ascending identifier order, apply the
//     model-level drop rules, consult the adversary once per surviving
//     message (recording its fate), book every delivery/drop ledger, and
//     count arriving copies per destination;
//  2. offsets — prefix-sum the counts over the live frontier into per-node
//     arena regions;
//  3. placement — walk the same sender order again, replaying recorded
//     fates, and write messages into their regions by batch copy.
//
// Inbox regions come out sorted by sender identifier exactly as the legacy
// per-message append routing produced them, and the adversary and trace
// observe the identical per-message call and event sequence — the parity
// and trace-golden tests pin both.
//
//dgp:hotpath
func (st *state) route(round int, res *Result) {
	st.roundMsgs, st.roundBits = 0, 0
	st.roundDropped, st.roundDroppedBits = 0, 0
	st.roundInjected, st.roundInjectedBits = 0, 0
	st.roundCorrupted = 0
	adv := st.cfg.Adversary
	tr := st.trace
	clear(st.fateSwap)
	st.fateCopies = st.fateCopies[:0]
	st.fateSwap = st.fateSwap[:0]
	total := 0
	for _, si := range st.actByID {
		i := int(si)
		e := &st.envs[i]
		from := e.info.ID
		batchMsgs, batchBits := 0, 0
		if e.bcastSet {
			payload := e.bcast
			dsts := st.csrNbr[st.csrOff[i]:st.csrOff[i+1]]
			if adv == nil {
				// Uniform batch: count survivors, then account the whole
				// neighbor range with a single payload-size lookup.
				delivered := 0
				for _, dj := range dsts {
					j := int(dj)
					if !st.frontier.test(j) || st.terminatedThisSend[j] {
						continue
					}
					st.inCnt[j]++
					delivered++
				}
				if delivered > 0 {
					total += delivered
					st.account(payload, delivered, &batchMsgs, &batchBits, res)
				}
			} else {
				for _, dj := range dsts {
					j := int(dj)
					if !st.frontier.test(j) || st.terminatedThisSend[j] {
						continue
					}
					copies, pl := st.consultAdversary(round, from, j, payload, res, tr)
					if copies == 0 {
						continue
					}
					st.inCnt[j] += int32(copies)
					total += copies
					st.account(pl, copies, &batchMsgs, &batchBits, res)
				}
			}
		} else {
			outs := e.outs
			for k := range outs {
				j := int(e.dst[k])
				// Messages to nodes that already left the computation vanish;
				// a node terminating during this round's send phase has, by
				// the model, already assigned all outputs, so deliveries to
				// it are moot and are dropped as well. The adversary is
				// consulted only for messages that survive these rules.
				if !st.frontier.test(j) || st.terminatedThisSend[j] {
					continue
				}
				payload := outs[k].Payload
				copies := 1
				if adv != nil {
					copies, payload = st.consultAdversary(round, from, j, payload, res, tr)
					if copies == 0 {
						continue
					}
				}
				st.inCnt[j] += int32(copies)
				total += copies
				st.account(payload, copies, &batchMsgs, &batchBits, res)
			}
		}
		st.roundMsgs += batchMsgs
		st.roundBits += batchBits
		if tr != nil && batchMsgs > 0 {
			tr.Emit(obs.Event{Type: obs.EvBatch, Round: round, Node: from, Value: int64(batchMsgs), Aux: int64(batchBits)})
		}
	}

	st.inMsgs = st.inbox.acquire(total)
	cur := int32(0)
	for _, si := range st.actByIdx {
		i := int(si)
		st.inOff[i] = cur
		cur += st.inCnt[i]
		st.inFill[i] = st.inOff[i]
		st.inCnt[i] = 0
	}

	fi := 0
	for _, si := range st.actByID {
		i := int(si)
		e := &st.envs[i]
		from := e.info.ID
		if e.bcastSet {
			payload := e.bcast
			dsts := st.csrNbr[st.csrOff[i]:st.csrOff[i+1]]
			if adv == nil {
				for _, dj := range dsts {
					j := int(dj)
					if !st.frontier.test(j) || st.terminatedThisSend[j] {
						continue
					}
					st.inMsgs[st.inFill[j]] = Msg{From: from, Payload: payload}
					st.inFill[j]++
				}
			} else {
				for _, dj := range dsts {
					j := int(dj)
					if !st.frontier.test(j) || st.terminatedThisSend[j] {
						continue
					}
					fi = st.place(from, j, payload, fi)
				}
			}
		} else {
			outs := e.outs
			for k := range outs {
				j := int(e.dst[k])
				if !st.frontier.test(j) || st.terminatedThisSend[j] {
					continue
				}
				if adv == nil {
					st.inMsgs[st.inFill[j]] = Msg{From: from, Payload: outs[k].Payload}
					st.inFill[j]++
					continue
				}
				fi = st.place(from, j, outs[k].Payload, fi)
			}
		}
	}
}

// place writes one recorded-fate message into destination j's arena region
// and returns the advanced fate cursor.
//
//dgp:hotpath
func (st *state) place(from, j int, payload Payload, fi int) int {
	copies := int(st.fateCopies[fi])
	if swap := st.fateSwap[fi]; swap != nil {
		payload = swap
	}
	fi++
	if copies == 0 {
		return fi
	}
	f := st.inFill[j]
	for c := 0; c < copies; c++ {
		st.inMsgs[f] = Msg{From: from, Payload: payload}
		f++
	}
	st.inFill[j] = f
	return fi
}

// account books count delivered copies of payload: the sender's trace batch,
// the round and result message ledgers, and the MaxMsgBits / LOCAL-only
// accumulators. One call covers a whole uniform batch.
//
//dgp:hotpath
func (st *state) account(payload Payload, count int, batchMsgs, batchBits *int, res *Result) {
	*batchMsgs += count
	res.Messages += count
	b := -1
	if bs, ok := payload.(BitSized); ok {
		b = bs.Bits()
	}
	if b < 0 {
		// An unsized (or wrapper-of-unsized) payload makes the run
		// LOCAL-only.
		st.localOnly = true
		return
	}
	*batchBits += count * b
	if b > st.maxMsgBits {
		st.maxMsgBits = b
	}
}

// consultAdversary intercepts one in-flight message: it returns the
// delivered copy count (0 = dropped) with the possibly-replaced payload,
// books the adversary ledgers, emits the fault events, and records the fate
// for the placement pass. The call sequence — senders by ascending
// identifier, each sender's messages in send order — is identical in both
// engine modes and identical to the legacy per-message router.
//
//dgp:hotpath
func (st *state) consultAdversary(round, from, j int, payload Payload, res *Result, tr *obs.Recorder) (int, Payload) {
	copies, pl, swap := st.interceptFate(round, from, j, payload, res, tr)
	if copies == 0 {
		st.fateCopies = append(st.fateCopies, 0)
		st.fateSwap = append(st.fateSwap, nil)
		return 0, nil
	}
	st.fateCopies = append(st.fateCopies, int32(copies))
	st.fateSwap = append(st.fateSwap, swap)
	return copies, pl
}

// interceptFate is the adversary verdict core shared by the single-engine
// and sharded counting passes: one Intercept call, the drop/corrupt/inject
// ledgers, and the fault events. The caller records the returned fate
// (copies; swap, nil when the payload was untouched) into its replay
// stream.
//
//dgp:hotpath
func (st *state) interceptFate(round, from, j int, payload Payload, res *Result, tr *obs.Recorder) (int, Payload, Payload) {
	to := st.envs[j].info.ID
	fate := st.cfg.Adversary.Intercept(round, from, to, payload)
	if fate.Drop {
		// Dropped traffic goes on its own ledger, never into Messages/Bits:
		// the bandwidth numbers stay delivery-only.
		db := 0
		if bs, ok := payload.(BitSized); ok && bs.Bits() > 0 {
			db = bs.Bits()
		}
		st.roundDropped++
		st.roundDroppedBits += db
		res.Dropped++
		res.DroppedBits += db
		if tr != nil {
			tr.Emit(obs.Event{Type: obs.EvFault, Round: round, Node: from, Name: "drop", Value: int64(db), Aux: int64(to)})
		}
		return 0, nil, nil
	}
	var swap Payload
	if fate.Payload != nil {
		payload = fate.Payload
		swap = fate.Payload
		st.roundCorrupted++
		res.Corrupted++
		if tr != nil {
			tr.Emit(obs.Event{Type: obs.EvFault, Round: round, Node: from, Name: "corrupt", Aux: int64(to)})
		}
	}
	copies := 1
	if fate.Extra > 0 {
		copies += fate.Extra
		st.roundInjected += fate.Extra
		res.Injected += fate.Extra
		if tr != nil {
			tr.Emit(obs.Event{Type: obs.EvFault, Round: round, Node: from, Name: "duplicate", Value: int64(fate.Extra), Aux: int64(to)})
		}
	}
	if copies > 1 {
		if bs, ok := payload.(BitSized); ok && bs.Bits() > 0 {
			st.roundInjectedBits += (copies - 1) * bs.Bits()
		}
	}
	return copies, payload, swap
}

//dgp:hotpath
func (st *state) endRound(round int, res *Result) {
	if st.trace != nil {
		st.drainNotes(round)
	}
	observing := st.cfg.Observer != nil
	for _, si := range st.actByIdx {
		i := int(si)
		e := &st.envs[i]
		if e.terminated {
			st.frontier.clear(i)
			st.activeCount--
			res.Outputs[i] = e.output
			res.TerminatedAt[i] = round
			res.Rounds = round
			if st.trace != nil {
				st.trace.Emit(outputEvent(round, e))
			}
			// Release the settled node's routing references; its frontier bit
			// stays clear for the rest of the run.
			e.outs, e.dst, e.bcast = nil, nil, nil
			if observing {
				st.observedOutputs[i] = e.output
				st.observedActive[i] = false
			}
			continue
		}
		if observing {
			if e.hasOutput {
				st.observedOutputs[i] = e.output
			} else {
				st.observedOutputs[i] = nil
			}
			st.observedActive[i] = true
		}
	}
}

// outputEvent builds the decision-commit event for a node terminating this
// round: integer outputs ride in Value, anything else is named by type.
func outputEvent(round int, e *Env) obs.Event {
	ev := obs.Event{Type: obs.EvOutput, Round: round, Node: e.info.ID}
	switch v := e.output.(type) {
	case int:
		ev.Value = int64(v)
	case bool:
		if v {
			ev.Value = 1
		}
	default:
		ev.Text = fmt.Sprintf("%T", e.output)
	}
	return ev
}

// drainNotes flushes the machines' staged annotations as span events, in
// node-index order over the live frontier. It runs on the main goroutine
// strictly after a phase barrier, which is what makes worker-goroutine
// staging race-free and the emission order identical across engine modes.
//
//dgp:hotpath
func (st *state) drainNotes(round int) {
	for _, si := range st.actByIdx {
		e := &st.envs[si]
		for _, nt := range e.notes {
			st.trace.Emit(obs.Event{Type: obs.EvSpan, Round: round, Node: e.info.ID, Name: nt.Name, Value: nt.Value})
		}
		e.notes = e.notes[:0]
	}
}

// firstError returns the first per-node error in node-index order (actByIdx
// is index-sorted, so the reported error is deterministic across modes).
//
//dgp:hotpath
func (st *state) firstError() error {
	for _, si := range st.actByIdx {
		if err := st.errs[si]; err != nil {
			return err
		}
	}
	return nil
}

// phase executes one send or receive phase, under the round deadline when
// one is configured. On a deadline hit the phase goroutine is abandoned (a
// wedged machine cannot be preempted) and the run aborts with a diagnostic;
// in pool mode the abandoned goroutine may still be mid-dispatch on the
// pool, so the pool is abandoned (leaked) with it rather than closed
// underneath it — a deadline abort is terminal by contract.
func (st *state) phase(fn func(int), round int, name string) error {
	if st.cfg.RoundDeadline <= 0 {
		st.runPhase(fn)
		return nil
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		st.runPhase(fn)
	}()
	timer := time.NewTimer(st.cfg.RoundDeadline)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		st.poolAbandoned = st.pool != nil || st.lanes != nil
		return fmt.Errorf("%w: %s phase of round %d ran past %v (%d nodes active); abandoning the run",
			ErrRoundDeadline, name, round, st.cfg.RoundDeadline, st.activeCount)
	}
}

// runPhase executes phase(i) for every node on the live frontier: across
// the shard lanes in sharded mode, on the persistent pool in Parallel mode,
// inline otherwise.
//
//dgp:hotpath
func (st *state) runPhase(phase func(int)) {
	if st.lanes != nil {
		st.lanePhase(phase)
		return
	}
	if st.pool != nil {
		st.pool.run(phase, st.actByIdx)
		return
	}
	for _, si := range st.actByIdx {
		phase(int(si))
	}
}

// poolTask is one phase dispatch to one worker: the phase function and the
// worker's contiguous share of the frontier list.
type poolTask struct {
	phase func(int)
	nodes []int32
}

// workerPool is a persistent pool of goroutines, created once per Run. Each
// phase, run splits the live frontier list into contiguous per-worker ranges
// of the shared columnar slabs and blocks until all workers signal done; run
// acts as the inter-phase barrier, which realizes the synchronous round
// structure without spawning a goroutine wave per phase per round.
type workerPool struct {
	work []chan poolTask
	done chan struct{}
}

func newWorkerPool(n int) *workerPool {
	return newWorkerPoolN(n, runtime.GOMAXPROCS(0))
}

// newWorkerPoolN builds a pool of at most workers goroutines for n nodes
// (nil when one worker would remain — the caller runs inline). The sharded
// engine uses it to split GOMAXPROCS across per-lane pools.
func newWorkerPoolN(n, workers int) *workerPool {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return nil
	}
	p := &workerPool{done: make(chan struct{}, workers)}
	for w := 0; w < workers; w++ {
		ch := make(chan poolTask, 1)
		p.work = append(p.work, ch)
		go func(ch chan poolTask) {
			for t := range ch {
				for _, si := range t.nodes {
					t.phase(int(si))
				}
				p.done <- struct{}{}
			}
		}(ch)
	}
	return p
}

// run executes phase on every worker's share of the frontier and returns
// once all workers have finished (the barrier).
//
//dgp:hotpath
func (p *workerPool) run(phase func(int), nodes []int32) {
	chunk := (len(nodes) + len(p.work) - 1) / len(p.work)
	if chunk < 1 {
		chunk = 1
	}
	for w, ch := range p.work {
		lo := w * chunk
		if lo > len(nodes) {
			lo = len(nodes)
		}
		hi := lo + chunk
		if hi > len(nodes) {
			hi = len(nodes)
		}
		ch <- poolTask{phase: phase, nodes: nodes[lo:hi]}
	}
	for range p.work {
		<-p.done
	}
}

// close shuts the workers down; the pool must not be used afterwards.
func (p *workerPool) close() {
	for _, ch := range p.work {
		close(ch)
	}
}
