package runtime

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Config describes one execution of a distributed algorithm.
type Config struct {
	// Graph is the communication graph. Required.
	Graph *graph.Graph
	// Factory builds the per-node machines. Required.
	Factory Factory
	// Predictions, when non-nil, must have length Graph.N(); Predictions[i]
	// is handed to the factory for node index i.
	Predictions []any
	// Parallel selects the worker-pool engine: a pool of goroutines is
	// created once per Run and executes the send/receive phases of every
	// round via phase signals, with a barrier between phases. Both engines
	// have identical semantics.
	Parallel bool
	// MaxRounds caps the execution; 0 selects 8*n + 64, a generous bound for
	// every algorithm in this repository (all are O(n)-round or better).
	MaxRounds int
	// Crashes maps node index to the round (1-based) at the start of which
	// the node crashes: from that round on it sends nothing, receives
	// nothing, and never outputs. Used to exercise fault-tolerant parts.
	// Crash rounds must be >= 1 and node indices must be in [0, Graph.N());
	// anything else is a config error.
	Crashes map[int]int
	// Adversary, when non-nil, intercepts message routing and may contribute
	// a crash schedule; see the Adversary interface for the determinism
	// contract. Adversary state is consumed by the run: pass a fresh value
	// per Run.
	Adversary Adversary
	// RoundDeadline, when positive, bounds the wall-clock time of each send
	// and receive phase; a phase that exceeds it aborts the run with an
	// ErrRoundDeadline diagnostic. The wedged phase goroutine cannot be
	// killed and is abandoned, so a deadline abort is a terminal condition
	// for the process's engine use, not a recoverable per-round event.
	RoundDeadline time.Duration
	// MaxMessageBits, when positive, enforces the CONGEST model: every
	// payload must implement BitSized and report at most this many bits;
	// violations abort the run. The conventional budget is O(log n) — see
	// CongestBudget.
	MaxMessageBits int
	// Observer, when non-nil, is invoked at the end of every round with the
	// round number, the current outputs (index-aligned, nil where absent),
	// and which nodes are still active. The slices are reused; copy to keep.
	Observer func(round int, outputs []any, active []bool)
	// Stats, when non-nil, is invoked at the end of every round with the
	// engine's instrumentation record for that round (wall time, deliveries,
	// payload bits). Purely observational: it never affects semantics.
	Stats func(RoundStats)
	// Trace, when non-nil, receives the run's typed event stream (see
	// internal/obs for the taxonomy). All events are emitted from the
	// engine's main goroutine in an order identical across both engine
	// modes; only wall-clock durations differ. Purely observational. When
	// nil the instrumented paths reduce to a nil check.
	Trace *obs.Recorder
}

// RoundStats is the engine's per-round instrumentation record, reported
// through Config.Stats.
type RoundStats struct {
	// Round is the 1-based round number.
	Round int
	// Duration is the wall time of the whole round (send, route, receive,
	// bookkeeping).
	Duration time.Duration
	// Messages is the number of messages delivered this round.
	Messages int
	// Bits is the total size of the round's delivered payloads that
	// implement BitSized, in bits; unsized payloads contribute nothing.
	Bits int
	// Active is the number of nodes that participated in this round.
	Active int
	// Dropped counts messages the adversary dropped this round, and
	// DroppedBits their sized payload bits. Dropped traffic is reported
	// here, never in Messages/Bits: delivered and injected/denied traffic
	// are separate ledgers, so chaos runs don't inflate bandwidth numbers.
	Dropped     int
	DroppedBits int
	// Injected counts extra duplicate copies the adversary injected this
	// round (the copies beyond the first), and InjectedBits their sized
	// bits. The copies are real deliveries, so they also appear in
	// Messages/Bits; these fields isolate the adversary's share.
	Injected     int
	InjectedBits int
	// Corrupted counts deliveries whose payload the adversary replaced.
	Corrupted int
}

// Result reports the outcome of a run.
type Result struct {
	// Rounds is the round in which the last node terminated (0 if the graph
	// is empty).
	Rounds int
	// Outputs holds each node's final output, indexed by node index; nil for
	// crashed nodes that never output.
	Outputs []any
	// TerminatedAt holds the round each node terminated, 0 for crashed nodes
	// that never terminated.
	TerminatedAt []int
	// Messages is the total number of point-to-point messages delivered.
	Messages int
	// MaxMsgBits is the largest single-message size observed, in bits, over
	// payloads implementing BitSized. It is -1 when no sized payload was
	// ever observed: either some delivered payload did not implement
	// BitSized (the run is LOCAL-only) or the run delivered no messages at
	// all, so no bandwidth claim can be made either way.
	MaxMsgBits int
	// Dropped/DroppedBits total the adversary-dropped messages and their
	// sized bits; dropped traffic never counts toward Messages. Injected
	// totals the extra duplicate copies (which, being real deliveries, do
	// count toward Messages as well); Corrupted totals corrupted
	// deliveries. See the matching RoundStats fields.
	Dropped     int
	DroppedBits int
	Injected    int
	Corrupted   int
}

// ErrNoTermination is returned when MaxRounds elapses with active nodes.
var ErrNoTermination = errors.New("runtime: algorithm did not terminate within MaxRounds")

// ErrConfig wraps every configuration-validation error from Run (nil graph
// or factory, mismatched predictions, invalid crash schedules): the run
// never started. Callers distinguishing misconfiguration from runtime
// failure — e.g. the recovery wrapper, which can heal a damaged run but not
// an impossible one — test errors.Is(err, ErrConfig).
var ErrConfig = errors.New("runtime: invalid configuration")

// ErrCongestViolation is returned when MaxMessageBits is set and a message
// is unsized or too large for the CONGEST budget.
var ErrCongestViolation = errors.New("runtime: CONGEST bandwidth violation")

// ErrMachinePanic is returned when a machine's Send or Receive panics. The
// panic is contained: it surfaces as a per-node error from Run (wrapping
// this sentinel, with node, round, phase, and the panic value) and the
// worker pool shuts down cleanly instead of crashing the process.
var ErrMachinePanic = errors.New("runtime: machine panicked")

// ErrRoundDeadline is returned when Config.RoundDeadline is set and a send
// or receive phase exceeds it (a wedged machine). The returned error wraps
// this sentinel and names the phase and round.
var ErrRoundDeadline = errors.New("runtime: round deadline exceeded")

// ErrProtocol wraps every violation of the node-machine contract detected at
// runtime: sending to a non-neighbor, producing output after termination,
// terminating without output, or breaking a template's lockstep/lane
// discipline (internal/core). Test errors.Is(err, ErrProtocol).
var ErrProtocol = errors.New("runtime: protocol violation")

// CongestBudget returns the conventional CONGEST message budget for an
// n-node graph with identifier domain d: c·⌈log₂(max(n,d))⌉ bits with c = 4,
// enough for a constant number of identifiers or colors per message. The
// degenerate single-node case gets the one-bit floor, 4·1.
func CongestBudget(n, d int) int {
	m := n
	if d > m {
		m = d
	}
	if m < 2 {
		return 4
	}
	// bits.Len(m-1) is exactly ⌈log₂ m⌉ for m >= 2.
	return 4 * bits.Len(uint(m-1))
}

// Run executes the algorithm to completion and returns the result.
func Run(cfg Config) (*Result, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("%w: Config.Graph is required", ErrConfig)
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("%w: Config.Factory is required", ErrConfig)
	}
	g := cfg.Graph
	n := g.N()
	if cfg.Predictions != nil && len(cfg.Predictions) != n {
		return nil, fmt.Errorf("%w: %d predictions for %d nodes", ErrConfig, len(cfg.Predictions), n)
	}
	crashes := cfg.Crashes
	if err := validCrashes(crashes, n, "Config.Crashes"); err != nil {
		return nil, err
	}
	if cfg.Adversary != nil {
		adv := cfg.Adversary.Crashes(n)
		if err := validCrashes(adv, n, "Adversary.Crashes"); err != nil {
			return nil, err
		}
		if len(adv) > 0 {
			merged := make(map[int]int, len(crashes)+len(adv))
			for i, r := range crashes {
				merged[i] = r
			}
			for i, r := range adv {
				if cur, ok := merged[i]; !ok || r < cur {
					merged[i] = r
				}
			}
			crashes = merged
		}
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 8*n + 64
	}

	st := newState(cfg, g, n, crashes)
	if cfg.Parallel {
		st.pool = newWorkerPool(n)
		if st.pool != nil {
			defer st.pool.close()
		}
	}
	res := &Result{
		Outputs:      make([]any, n),
		TerminatedAt: make([]int, n),
	}
	if st.trace != nil {
		st.trace.Emit(obs.Event{Type: obs.EvRunStart, Value: int64(n), Aux: int64(g.M())})
	}

	timed := cfg.Stats != nil || st.trace != nil
	for round := 1; st.activeCount > 0; round++ {
		if round > maxRounds {
			err := fmt.Errorf("%w (round %d, %d nodes active)", ErrNoTermination, maxRounds, st.activeCount)
			// The round that overran never began; close the run after the
			// last round that did execute.
			st.traceRunEnd(maxRounds, res, err)
			return nil, err
		}
		var start time.Time
		if timed {
			// Observational wall-clock only (RoundStats.Duration, trace
			// DurNS); the obs funnel is exempted package-wide by the
			// seededrand analyzer and never feeds back into semantics.
			start = obs.Now()
		}
		st.beginRound(round)
		activeThisRound := st.activeCount
		if err := st.phase(st.sendFn, round, "send"); err != nil {
			st.traceAbort(round, res, err, "send", false)
			return nil, err
		}
		if err := st.firstError(); err != nil {
			st.traceAbort(round, res, err, "send", true)
			return nil, err
		}
		st.route(round, res)
		if err := st.phase(st.receiveFn, round, "receive"); err != nil {
			st.traceAbort(round, res, err, "receive", false)
			return nil, err
		}
		if err := st.firstError(); err != nil {
			st.traceAbort(round, res, err, "receive", true)
			return nil, err
		}
		st.endRound(round, res)
		var dur time.Duration
		if timed {
			dur = obs.Since(start)
		}
		if st.trace != nil {
			st.trace.Emit(obs.Event{
				Type: obs.EvRoundEnd, Round: round,
				Value: int64(st.roundMsgs), Aux: int64(st.roundBits),
				DurNS: dur.Nanoseconds(),
			})
		}
		if cfg.Stats != nil {
			cfg.Stats(RoundStats{
				Round:        round,
				Duration:     dur,
				Messages:     st.roundMsgs,
				Bits:         st.roundBits,
				Active:       activeThisRound,
				Dropped:      st.roundDropped,
				DroppedBits:  st.roundDroppedBits,
				Injected:     st.roundInjected,
				InjectedBits: st.roundInjectedBits,
				Corrupted:    st.roundCorrupted,
			})
		}
		if cfg.Observer != nil {
			cfg.Observer(round, st.observedOutputs, st.observedActive)
		}
	}
	res.MaxMsgBits = st.maxMsgBits
	if st.localOnly {
		res.MaxMsgBits = -1
	}
	st.traceRunEnd(res.Rounds, res, nil)
	return res, nil
}

// traceRunEnd emits the terminal run-end event (no-op without a recorder).
func (st *state) traceRunEnd(lastRound int, res *Result, err error) {
	if st.trace == nil {
		return
	}
	e := obs.Event{Type: obs.EvRunEnd, Value: int64(lastRound), Aux: int64(res.Messages)}
	if err != nil {
		e.Err = err.Error()
	}
	st.trace.Emit(e)
}

// traceAbort closes the trace of a run aborting inside round `round`: the
// terminal round event carries the error, preceded by a deadline marker
// when the watchdog fired, then the run-end event. drain controls whether
// staged machine annotations are flushed first: phases that completed
// (protocol/panic aborts, detected after the barrier) drain; a deadline
// abort abandons the phase goroutine mid-flight, so the staging buffers may
// still be written to and must not be touched.
func (st *state) traceAbort(round int, res *Result, err error, phase string, drain bool) {
	if st.trace == nil {
		return
	}
	if drain {
		st.drainNotes(round)
	}
	if errors.Is(err, ErrRoundDeadline) {
		st.trace.Emit(obs.Event{Type: obs.EvDeadline, Round: round, Name: phase})
	}
	st.trace.Emit(obs.Event{Type: obs.EvRoundEnd, Round: round, Err: err.Error()})
	st.traceRunEnd(round, res, err)
}

// validCrashes checks a crash schedule: node indices in [0, n), rounds >= 1.
// Entries are examined in ascending index order so a schedule with several
// invalid entries reports the same one every run — the chaos parity tests
// compare error strings across engine modes.
func validCrashes(crashes map[int]int, n int, source string) error {
	idxs := make([]int, 0, len(crashes))
	for i := range crashes {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		r := crashes[i]
		if i < 0 || i >= n {
			return fmt.Errorf("%w: %s[%d] = %d; node index out of range [0, %d)", ErrConfig, source, i, r, n)
		}
		if r < 1 {
			return fmt.Errorf("%w: %s[%d] = %d; crash rounds are 1-based and must be >= 1", ErrConfig, source, i, r)
		}
	}
	return nil
}

// state holds the engine's mutable execution state.
type state struct {
	cfg  Config
	g    *graph.Graph
	n    int
	envs []*Env
	mach []Machine
	// nbIDs[i] is node i's neighbor identifiers, ascending; shared with
	// NodeInfo.NeighborIDs. Send validation binary-searches it.
	nbIDs [][]int
	// nbIdx[i][k] is the node index of the neighbor with identifier
	// nbIDs[i][k], so routing resolves destinations without a map.
	nbIdx [][]int32
	// senderOrder lists node indices in ascending-identifier order; route
	// walks it so inboxes come out sorted by sender without a per-round sort.
	senderOrder []int32
	// active[i]: node participates this round (not terminated, not crashed).
	active      []bool
	activeCount int
	// crashedAt[i] is the crash round or 0.
	crashedAt []int
	// outboxes[i] holds node i's sends this round.
	outboxes [][]Out
	// destIdx[i][k] is the resolved destination node index of outboxes[i][k],
	// recorded during send validation and reused across rounds.
	destIdx [][]int32
	// inboxes[i] holds node i's deliveries this round; backing arrays are
	// recycled across rounds (truncated, not nil'ed).
	inboxes [][]Msg
	// errs[i] records a per-node engine error (e.g. send to non-neighbor).
	errs []error
	// terminatedThisSend marks nodes that terminated during the send phase.
	terminatedThisSend []bool
	// pool is the persistent worker pool (Parallel mode only; nil otherwise).
	pool *workerPool
	// sendFn/receiveFn are the phase functions, bound once so the per-round
	// phase dispatch does not allocate method-value closures.
	sendFn    func(int)
	receiveFn func(int)

	// maxMsgBits/localOnly accumulate Result.MaxMsgBits: the largest sized
	// payload seen (-1 before any), and whether an unsized payload was seen.
	maxMsgBits int
	localOnly  bool
	// roundMsgs/roundBits accumulate the current round's Stats record;
	// the round* adversary counters feed the delivered-vs-injected split.
	roundMsgs         int
	roundBits         int
	roundDropped      int
	roundDroppedBits  int
	roundInjected     int
	roundInjectedBits int
	roundCorrupted    int
	// trace is the attached event recorder (nil = tracing disabled).
	trace *obs.Recorder

	observedOutputs []any
	observedActive  []bool
}

func newState(cfg Config, g *graph.Graph, n int, crashes map[int]int) *state {
	st := &state{
		cfg:                cfg,
		g:                  g,
		n:                  n,
		envs:               make([]*Env, n),
		mach:               make([]Machine, n),
		nbIDs:              make([][]int, n),
		nbIdx:              make([][]int32, n),
		senderOrder:        make([]int32, n),
		active:             make([]bool, n),
		crashedAt:          make([]int, n),
		outboxes:           make([][]Out, n),
		destIdx:            make([][]int32, n),
		inboxes:            make([][]Msg, n),
		errs:               make([]error, n),
		terminatedThisSend: make([]bool, n),
		maxMsgBits:         -1,
		observedOutputs:    make([]any, n),
		observedActive:     make([]bool, n),
		trace:              cfg.Trace,
	}
	st.sendFn = st.sendPhase
	st.receiveFn = st.receivePhase
	delta := g.MaxDegree()
	for i := 0; i < n; i++ {
		st.senderOrder[i] = int32(i)
	}
	sort.Slice(st.senderOrder, func(a, b int) bool {
		return g.ID(int(st.senderOrder[a])) < g.ID(int(st.senderOrder[b]))
	})
	for i := 0; i < n; i++ {
		nbrs := g.Neighbors(i)
		idxs := make([]int32, len(nbrs))
		copy(idxs, nbrs)
		sort.Slice(idxs, func(a, b int) bool {
			return g.ID(int(idxs[a])) < g.ID(int(idxs[b]))
		})
		nbIDs := make([]int, len(idxs))
		for j, v := range idxs {
			nbIDs[j] = g.ID(int(v))
		}
		info := NodeInfo{
			Index:       i,
			ID:          g.ID(i),
			NeighborIDs: nbIDs,
			N:           n,
			D:           g.D(),
			Delta:       delta,
		}
		var pred any
		if cfg.Predictions != nil {
			pred = cfg.Predictions[i]
		}
		st.envs[i] = &Env{info: info, tracing: cfg.Trace != nil}
		st.mach[i] = cfg.Factory(info, pred)
		st.nbIDs[i] = nbIDs
		st.nbIdx[i] = idxs
		st.active[i] = true
	}
	st.activeCount = n
	// Run has already validated the schedule (indices in range, rounds >= 1).
	for i, r := range crashes {
		st.crashedAt[i] = r
	}
	return st
}

func (st *state) beginRound(round int) {
	if st.trace != nil {
		st.trace.Emit(obs.Event{Type: obs.EvRoundStart, Round: round, Value: int64(st.activeCount)})
	}
	for i := 0; i < st.n; i++ {
		if st.active[i] && st.crashedAt[i] != 0 && round >= st.crashedAt[i] {
			// Crash takes effect: the node silently leaves the computation.
			st.active[i] = false
			st.activeCount--
			if st.trace != nil {
				st.trace.Emit(obs.Event{Type: obs.EvCrash, Round: round, Node: st.envs[i].info.ID})
			}
		}
		if st.active[i] {
			st.envs[i].round = round
		}
		// Truncate rather than nil so backing arrays are reused; steady-state
		// rounds allocate nothing in the engine.
		st.outboxes[i] = st.outboxes[i][:0]
		st.destIdx[i] = st.destIdx[i][:0]
		st.inboxes[i] = st.inboxes[i][:0]
		st.terminatedThisSend[i] = false
	}
}

// searchIDs returns the position of id in the ascending slice a, or len(a)
// if absent (caller re-checks the value). Hand-rolled so the send hot path
// never allocates a comparison closure.
func searchIDs(a []int, id int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// callSend invokes machine i's Send with panic containment: a panic is
// recorded as a per-node ErrMachinePanic instead of unwinding into the
// engine (or a pool worker goroutine, which would crash the process).
func (st *state) callSend(i int) (outs []Out, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			st.errs[i] = fmt.Errorf("%w: node %d, round %d, Send: %v",
				ErrMachinePanic, st.envs[i].info.ID, st.envs[i].round, r)
		}
	}()
	return st.mach[i].Send(st.envs[i]), true
}

// callReceive is callSend's Receive-phase counterpart.
func (st *state) callReceive(i int) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			st.errs[i] = fmt.Errorf("%w: node %d, round %d, Receive: %v",
				ErrMachinePanic, st.envs[i].info.ID, st.envs[i].round, r)
		}
	}()
	st.mach[i].Receive(st.envs[i], st.inboxes[i])
	return true
}

func (st *state) sendPhase(i int) {
	if !st.active[i] {
		return
	}
	outs, ok := st.callSend(i)
	if !ok {
		return
	}
	st.outboxes[i] = outs
	if err := st.envs[i].err; err != nil {
		st.errs[i] = err
		return
	}
	nb := st.nbIDs[i]
	dst := st.destIdx[i][:0]
	for _, out := range st.outboxes[i] {
		pos := searchIDs(nb, out.To)
		if pos == len(nb) || nb[pos] != out.To {
			st.errs[i] = fmt.Errorf("%w: node %d sent to non-neighbor %d", ErrProtocol, st.envs[i].ID(), out.To)
			return
		}
		dst = append(dst, st.nbIdx[i][pos])
		if limit := st.cfg.MaxMessageBits; limit > 0 {
			bs, ok := out.Payload.(BitSized)
			if !ok || bs.Bits() < 0 {
				st.errs[i] = fmt.Errorf("%w: node %d sent an unsized payload %T",
					ErrCongestViolation, st.envs[i].ID(), out.Payload)
				return
			}
			if b := bs.Bits(); b > limit {
				st.errs[i] = fmt.Errorf("%w: node %d sent %d bits (limit %d)",
					ErrCongestViolation, st.envs[i].ID(), b, limit)
				return
			}
		}
	}
	st.destIdx[i] = dst
	if st.envs[i].terminated {
		st.terminatedThisSend[i] = true
	}
}

func (st *state) receivePhase(i int) {
	if !st.active[i] || st.terminatedThisSend[i] {
		return
	}
	if !st.callReceive(i) {
		return
	}
	if err := st.envs[i].err; err != nil {
		st.errs[i] = err
	}
}

// route delivers this round's messages. Senders are walked in ascending
// identifier order, so each inbox is built already sorted by sender and both
// engine modes are byte-for-byte deterministic. This is also the adversary's
// interception point: route runs on the engine's single main goroutine in
// both modes, so a stateful adversary observes one deterministic call
// sequence regardless of Config.Parallel.
func (st *state) route(round int, res *Result) {
	st.roundMsgs, st.roundBits = 0, 0
	st.roundDropped, st.roundDroppedBits = 0, 0
	st.roundInjected, st.roundInjectedBits = 0, 0
	st.roundCorrupted = 0
	adv := st.cfg.Adversary
	tr := st.trace
	for _, si := range st.senderOrder {
		i := int(si)
		if !st.active[i] {
			continue
		}
		from := st.envs[i].info.ID
		dsts := st.destIdx[i]
		batchMsgs, batchBits := 0, 0
		for k, out := range st.outboxes[i] {
			j := int(dsts[k])
			// Messages to nodes that already left the computation vanish; a
			// node terminating during this round's send phase has, by the
			// model, already assigned all outputs, so deliveries to it are
			// moot and are dropped as well. The adversary is consulted only
			// for messages that survive these model-level rules.
			if !st.active[j] || st.terminatedThisSend[j] {
				continue
			}
			payload := out.Payload
			copies := 1
			if adv != nil {
				to := st.envs[j].info.ID
				fate := adv.Intercept(round, from, to, payload)
				if fate.Drop {
					// Dropped traffic goes on its own ledger, never into
					// Messages/Bits: the bandwidth numbers stay delivery-only.
					db := 0
					if bs, ok := payload.(BitSized); ok && bs.Bits() > 0 {
						db = bs.Bits()
					}
					st.roundDropped++
					st.roundDroppedBits += db
					res.Dropped++
					res.DroppedBits += db
					if tr != nil {
						tr.Emit(obs.Event{Type: obs.EvFault, Round: round, Node: from, Name: "drop", Value: int64(db), Aux: int64(to)})
					}
					continue
				}
				if fate.Payload != nil {
					payload = fate.Payload
					st.roundCorrupted++
					res.Corrupted++
					if tr != nil {
						tr.Emit(obs.Event{Type: obs.EvFault, Round: round, Node: from, Name: "corrupt", Aux: int64(to)})
					}
				}
				if fate.Extra > 0 {
					copies += fate.Extra
					st.roundInjected += fate.Extra
					res.Injected += fate.Extra
					if tr != nil {
						tr.Emit(obs.Event{Type: obs.EvFault, Round: round, Node: from, Name: "duplicate", Value: int64(fate.Extra), Aux: int64(to)})
					}
				}
			}
			b := -1
			if bs, ok := payload.(BitSized); ok {
				b = bs.Bits()
			}
			if b > 0 && copies > 1 {
				st.roundInjectedBits += (copies - 1) * b
			}
			for c := 0; c < copies; c++ {
				st.inboxes[j] = append(st.inboxes[j], Msg{From: from, Payload: payload})
				res.Messages++
				st.roundMsgs++
				batchMsgs++
				if b < 0 {
					// An unsized (or wrapper-of-unsized) payload makes the run
					// LOCAL-only.
					st.localOnly = true
				} else {
					st.roundBits += b
					batchBits += b
					if b > st.maxMsgBits {
						st.maxMsgBits = b
					}
				}
			}
		}
		if tr != nil && batchMsgs > 0 {
			tr.Emit(obs.Event{Type: obs.EvBatch, Round: round, Node: from, Value: int64(batchMsgs), Aux: int64(batchBits)})
		}
	}
}

func (st *state) endRound(round int, res *Result) {
	if st.trace != nil {
		st.drainNotes(round)
	}
	for i := 0; i < st.n; i++ {
		if st.active[i] && st.envs[i].terminated {
			st.active[i] = false
			st.activeCount--
			res.Outputs[i] = st.envs[i].output
			res.TerminatedAt[i] = round
			res.Rounds = round
			if st.trace != nil {
				st.trace.Emit(outputEvent(round, st.envs[i]))
			}
		}
		st.observedOutputs[i] = st.envs[i].output
		if !st.envs[i].hasOutput {
			st.observedOutputs[i] = nil
		}
		st.observedActive[i] = st.active[i]
	}
}

// outputEvent builds the decision-commit event for a node terminating this
// round: integer outputs ride in Value, anything else is named by type.
func outputEvent(round int, e *Env) obs.Event {
	ev := obs.Event{Type: obs.EvOutput, Round: round, Node: e.info.ID}
	switch v := e.output.(type) {
	case int:
		ev.Value = int64(v)
	case bool:
		if v {
			ev.Value = 1
		}
	default:
		ev.Text = fmt.Sprintf("%T", e.output)
	}
	return ev
}

// drainNotes flushes the machines' staged annotations as span events, in
// node-index order. It runs on the main goroutine strictly after a phase
// barrier, which is what makes worker-goroutine staging race-free and the
// emission order identical across engine modes.
func (st *state) drainNotes(round int) {
	for i := 0; i < st.n; i++ {
		e := st.envs[i]
		for _, nt := range e.notes {
			st.trace.Emit(obs.Event{Type: obs.EvSpan, Round: round, Node: e.info.ID, Name: nt.Name, Value: nt.Value})
		}
		e.notes = e.notes[:0]
	}
}

func (st *state) firstError() error {
	for i := 0; i < st.n; i++ {
		if st.errs[i] != nil {
			return st.errs[i]
		}
	}
	return nil
}

// phase executes one send or receive phase, under the round deadline when
// one is configured. On a deadline hit the phase goroutine is abandoned (a
// wedged machine cannot be preempted) and the run aborts with a diagnostic;
// pool workers that are not wedged drain normally when the deferred pool
// close runs, so only the stuck machine's goroutine leaks — by design.
func (st *state) phase(fn func(int), round int, name string) error {
	if st.cfg.RoundDeadline <= 0 {
		st.runPhase(fn)
		return nil
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		st.runPhase(fn)
	}()
	timer := time.NewTimer(st.cfg.RoundDeadline)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		return fmt.Errorf("%w: %s phase of round %d ran past %v (%d nodes active); abandoning the run",
			ErrRoundDeadline, name, round, st.cfg.RoundDeadline, st.activeCount)
	}
}

// runPhase executes phase(i) for every node: on the persistent pool in
// Parallel mode, inline otherwise.
func (st *state) runPhase(phase func(int)) {
	if st.pool != nil {
		st.pool.run(phase)
		return
	}
	for i := 0; i < st.n; i++ {
		phase(i)
	}
}

// workerPool is a persistent pool of goroutines, created once per Run. Each
// worker owns a fixed contiguous index range and blocks on its work channel
// for the next phase function; run acts as the inter-phase barrier, which
// realizes the synchronous round structure without spawning a goroutine wave
// per phase per round.
type workerPool struct {
	work []chan func(int)
	done chan struct{}
}

func newWorkerPool(n int) *workerPool {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return nil
	}
	p := &workerPool{done: make(chan struct{}, workers)}
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		ch := make(chan func(int), 1)
		p.work = append(p.work, ch)
		go func(lo, hi int, ch chan func(int)) {
			for phase := range ch {
				for i := lo; i < hi; i++ {
					phase(i)
				}
				p.done <- struct{}{}
			}
		}(lo, hi, ch)
	}
	return p
}

// run executes phase on every worker's range and returns once all workers
// have finished (the barrier).
func (p *workerPool) run(phase func(int)) {
	for _, ch := range p.work {
		ch <- phase
	}
	for range p.work {
		<-p.done
	}
}

// close shuts the workers down; the pool must not be used afterwards.
func (p *workerPool) close() {
	for _, ch := range p.work {
		close(ch)
	}
}
