package runtime_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
)

// ringBench is a minimal steady-state workload: every node broadcasts a
// fixed sized payload to its neighbors for a set number of rounds, then
// outputs how many messages it heard. The machine itself allocates nothing
// per round (the outbox slice and the boxed payload are built once), so
// benchmark and allocation numbers measure the engine, not the workload.
type ringBench struct {
	rounds int
	outs   []runtime.Out
	heard  int
}

type ringPayload struct{}

func (ringPayload) Bits() int { return 8 }

func ringBenchFactory(rounds int) runtime.Factory {
	payload := any(ringPayload{})
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		m := &ringBench{rounds: rounds, outs: make([]runtime.Out, len(info.NeighborIDs))}
		for i, nb := range info.NeighborIDs {
			m.outs[i] = runtime.Out{To: nb, Payload: payload}
		}
		return m
	}
}

func (m *ringBench) Send(env *runtime.Env) []runtime.Out {
	if env.Round() > m.rounds {
		env.Output(m.heard)
		env.Terminate()
		return nil
	}
	return m.outs
}

func (m *ringBench) Receive(env *runtime.Env, inbox []runtime.Msg) {
	m.heard += len(inbox)
}

func runRing(tb testing.TB, g *graph.Graph, rounds int, parallel bool) *runtime.Result {
	tb.Helper()
	res, err := runtime.Run(runtime.Config{
		Graph:     g,
		Factory:   ringBenchFactory(rounds),
		Parallel:  parallel,
		MaxRounds: rounds + 8,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if res.Rounds != rounds+1 {
		tb.Fatalf("rounds = %d, want %d", res.Rounds, rounds+1)
	}
	return res
}

// BenchmarkEngineThroughput measures raw engine round throughput on a
// 4096-node ring: 64 message-bearing rounds per Run, both engine modes.
// allocs/op divided by the round count is the per-round allocation figure
// the ISSUE acceptance criterion tracks.
func BenchmarkEngineThroughput(b *testing.B) {
	const n, rounds = 4096, 64
	g := graph.Ring(n)
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"seq", false}, {"par", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runRing(b, g, rounds, mode.parallel)
			}
		})
	}
}

// TestSteadyStateAllocBudget is the allocation-regression test: on a
// 4096-node ring with a zero-alloc workload, the marginal cost of an extra
// engine round must stay below a fixed allocation budget. Setup costs cancel
// in the long-run-minus-short-run difference, leaving steady-state
// allocs/round, which with buffer reuse is ~0 for the engine itself.
func TestSteadyStateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement; skipped with -short")
	}
	const n = 4096
	g := graph.Ring(n)
	measure := func(rounds int, parallel bool) float64 {
		return testing.AllocsPerRun(3, func() {
			runRing(t, g, rounds, parallel)
		})
	}
	for _, mode := range []struct {
		name     string
		parallel bool
		budget   float64
	}{
		{"seq", false, 64},
		// The pool barrier adds scheduling noise; allow more headroom.
		{"par", true, 512},
	} {
		short := measure(10, mode.parallel)
		long := measure(210, mode.parallel)
		perRound := (long - short) / 200
		t.Logf("%s: %.1f allocs over 10 rounds, %.1f over 210 -> %.3f allocs/round",
			mode.name, short, long, perRound)
		if perRound > mode.budget {
			t.Errorf("%s: %.1f allocs/round exceeds budget %.0f", mode.name, perRound, mode.budget)
		}
	}
}

// TestRoundStatsHook exercises Config.Stats: one record per round, message
// and bit totals consistent with the Result, wall time populated.
func TestRoundStatsHook(t *testing.T) {
	const n, rounds = 64, 5
	g := graph.Ring(n)
	var stats []runtime.RoundStats
	res, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: ringBenchFactory(rounds),
		Stats:   func(s runtime.RoundStats) { stats = append(stats, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != res.Rounds {
		t.Fatalf("%d stats records for %d rounds", len(stats), res.Rounds)
	}
	totalMsgs, totalBits := 0, 0
	for i, s := range stats {
		if s.Round != i+1 {
			t.Errorf("record %d has round %d", i, s.Round)
		}
		if s.Duration < 0 {
			t.Errorf("round %d: negative duration", s.Round)
		}
		if s.Active != n && s.Round <= rounds {
			t.Errorf("round %d: active = %d, want %d", s.Round, s.Active, n)
		}
		totalMsgs += s.Messages
		totalBits += s.Bits
	}
	if totalMsgs != res.Messages {
		t.Errorf("stats messages total %d, result %d", totalMsgs, res.Messages)
	}
	if want := res.Messages * 8; totalBits != want {
		t.Errorf("stats bits total %d, want %d", totalBits, want)
	}
	// Every delivered payload is sized at 8 bits.
	if res.MaxMsgBits != 8 {
		t.Errorf("MaxMsgBits = %d, want 8", res.MaxMsgBits)
	}
}
