package runtime_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
)

// ringBench is a minimal steady-state workload: every node broadcasts a
// fixed sized payload to its neighbors for a set number of rounds, then
// outputs how many messages it heard. The machine itself allocates nothing
// per round (the outbox slice and the boxed payload are built once), so
// benchmark and allocation numbers measure the engine, not the workload.
type ringBench struct {
	rounds  int
	batched bool
	payload any
	outs    []runtime.Out
	heard   int
}

type ringPayload struct{}

func (ringPayload) Bits() int { return 8 }

func ringBenchFactory(rounds int, batched bool) runtime.Factory {
	payload := any(ringPayload{})
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		m := &ringBench{rounds: rounds, batched: batched, payload: payload}
		if !batched {
			m.outs = make([]runtime.Out, len(info.NeighborIDs))
			for i, nb := range info.NeighborIDs {
				m.outs[i] = runtime.Out{To: nb, Payload: payload}
			}
		}
		return m
	}
}

func (m *ringBench) Send(env *runtime.Env) []runtime.Out {
	if env.Round() > m.rounds {
		// Keep the output below 256 so boxing it hits Go's static
		// small-value cache: longer runs must not allocate more than short
		// ones for workload reasons, or the alloc guard measures the
		// workload instead of the engine.
		env.Output(m.heard & 0xff)
		env.Terminate()
		return nil
	}
	if m.batched {
		env.Broadcast(m.payload)
		return nil
	}
	return m.outs
}

func (m *ringBench) Receive(env *runtime.Env, inbox []runtime.Msg) {
	m.heard += len(inbox)
}

func runRing(tb testing.TB, g *graph.Graph, rounds int, parallel, batched bool, shards int) *runtime.Result {
	tb.Helper()
	res, err := runtime.Run(runtime.Config{
		Graph:     g,
		Factory:   ringBenchFactory(rounds, batched),
		Parallel:  parallel,
		Shards:    shards,
		MaxRounds: rounds + 8,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if res.Rounds != rounds+1 {
		tb.Fatalf("rounds = %d, want %d", res.Rounds, rounds+1)
	}
	return res
}

// BenchmarkEngineThroughput measures raw engine round throughput on a
// 4096-node ring: 64 message-bearing rounds per Run, both engine modes.
// allocs/op divided by the round count is the per-round allocation figure
// the ISSUE acceptance criterion tracks.
func BenchmarkEngineThroughput(b *testing.B) {
	const n, rounds = 4096, 64
	g := graph.Ring(n)
	for _, mode := range []struct {
		name     string
		parallel bool
		batched  bool
		shards   int
	}{
		{"seq", false, false, 0}, {"par", true, false, 0},
		{"seq-bcast", false, true, 0}, {"par-bcast", true, true, 0},
		{"shard4", false, false, 4}, {"shard4-par", true, false, 4},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runRing(b, g, rounds, mode.parallel, mode.batched, mode.shards)
			}
		})
	}
}

// TestSteadyStateAllocBudget is the allocation-regression test: on a
// 4096-node ring with a zero-alloc workload, the marginal cost of an extra
// engine round must stay below a fixed allocation budget. Setup costs cancel
// in the long-run-minus-short-run difference, leaving steady-state
// allocs/round, which with buffer reuse is ~0 for the engine itself.
func TestSteadyStateAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement; skipped with -short")
	}
	const n = 4096
	g := graph.Ring(n)
	measure := func(rounds int, parallel, batched bool, shards int) float64 {
		return testing.AllocsPerRun(3, func() {
			runRing(t, g, rounds, parallel, batched, shards)
		})
	}
	for _, mode := range []struct {
		name     string
		parallel bool
		batched  bool
		shards   int
		budget   float64
	}{
		// The columnar layout reuses the CSR arrays, inbox slab, and fate
		// buffers across rounds: steady state measures 0 allocs/round on
		// every mode. The budgets are GC-noise headroom, not permission to
		// regress toward per-message allocation.
		{"seq", false, false, 0, 8},
		{"par", true, false, 0, 16},
		// The Env.Broadcast fast path never materializes an outbox at all:
		// the engine walks the CSR neighbor range directly.
		{"seq-bcast", false, true, 0, 8},
		{"par-bcast", true, true, 0, 16},
		// Sharded modes: a single shard takes the legacy route through one
		// lane and must hold the same ~0 figure; multi-shard rounds reuse the
		// lane slabs, boundary-batch frames, and cursor streams, so steady
		// state stays ~0 there too (the wider budget is barrier/GC noise).
		{"shard1", false, false, 1, 8},
		{"shard4", false, false, 4, 24},
		{"shard4-par", true, false, 4, 32},
	} {
		short := measure(10, mode.parallel, mode.batched, mode.shards)
		long := measure(210, mode.parallel, mode.batched, mode.shards)
		perRound := (long - short) / 200
		t.Logf("%s: %.1f allocs over 10 rounds, %.1f over 210 -> %.3f allocs/round",
			mode.name, short, long, perRound)
		if perRound > mode.budget {
			t.Errorf("%s: %.1f allocs/round exceeds budget %.0f", mode.name, perRound, mode.budget)
		}
	}
}

// TestRoundStatsHook exercises Config.Stats: one record per round, message
// and bit totals consistent with the Result, wall time populated.
func TestRoundStatsHook(t *testing.T) {
	const n, rounds = 64, 5
	g := graph.Ring(n)
	var stats []runtime.RoundStats
	res, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: ringBenchFactory(rounds, false),
		Stats:   func(s runtime.RoundStats) { stats = append(stats, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != res.Rounds {
		t.Fatalf("%d stats records for %d rounds", len(stats), res.Rounds)
	}
	totalMsgs, totalBits := 0, 0
	for i, s := range stats {
		if s.Round != i+1 {
			t.Errorf("record %d has round %d", i, s.Round)
		}
		if s.Duration < 0 {
			t.Errorf("round %d: negative duration", s.Round)
		}
		if s.Active != n && s.Round <= rounds {
			t.Errorf("round %d: active = %d, want %d", s.Round, s.Active, n)
		}
		totalMsgs += s.Messages
		totalBits += s.Bits
	}
	if totalMsgs != res.Messages {
		t.Errorf("stats messages total %d, result %d", totalMsgs, res.Messages)
	}
	if want := res.Messages * 8; totalBits != want {
		t.Errorf("stats bits total %d, want %d", totalBits, want)
	}
	// Every delivered payload is sized at 8 bits.
	if res.MaxMsgBits != 8 {
		t.Errorf("MaxMsgBits = %d, want 8", res.MaxMsgBits)
	}
}
