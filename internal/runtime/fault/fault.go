// Package fault implements seeded, reproducible chaos policies for the
// round engine: an Adversary (see internal/runtime) that drops, duplicates,
// and corrupts messages, fails links permanently, and crashes nodes, all
// driven by a single PRNG so that one seed reproduces one exact fault
// schedule.
//
// Determinism: the engine consults the adversary on its single routing
// goroutine in an order that is identical in sequential and pool mode, so a
// Chaos with the same Policy injects byte-for-byte identical faults in both
// modes. A Chaos value is single-run — its PRNG and link table are consumed
// by the run. Build a fresh one (same Policy) to replay or to compare engine
// modes.
package fault

import (
	"math/rand"
	"sort"

	"repro/internal/runtime"
	"repro/internal/shard"
)

// DefaultHorizon is the default latest round for seeded crash and link
// failures when the policy leaves the horizon zero.
const DefaultHorizon = 8

// Policy describes a chaos schedule. All probabilities are per-event in
// [0, 1]: Drop/Duplicate/Corrupt per delivered message, LinkFail per
// undirected link (once, on first use), Crash per node (once, at run start).
type Policy struct {
	// Seed drives every decision; the same Policy value reproduces the same
	// fault schedule exactly.
	Seed int64
	// Drop is the probability a message is discarded in transit.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Corrupt is the probability a message's payload is replaced by Garbage
	// of the same bit size. Only size-accounted (BitSized) payloads are
	// corrupted; unsized payloads pass through.
	Corrupt float64
	// LinkFail is the probability an undirected link fails permanently at a
	// seeded round in [1, LinkFailBy]; from that round on it delivers
	// nothing in either direction.
	LinkFail float64
	// LinkFailBy is the latest round a failing link can go down
	// (DefaultHorizon when zero).
	LinkFailBy int
	// Crash is the probability a node crashes at a seeded round in
	// [1, CrashBy].
	Crash float64
	// CrashBy is the latest round a crashing node can die (DefaultHorizon
	// when zero).
	CrashBy int
	// Partition, when non-nil, enables shard-level faults: whole shards of
	// the attached partition going dark (every node of the shard crashing at
	// the same round). LoseShards schedules them explicitly — shard index to
	// 1-based crash round — and ShardLoss draws additional losses at random:
	// each shard independently goes dark with that probability at a seeded
	// round in [1, ShardLossBy] (DefaultHorizon when zero). Shard-loss
	// crashes merge with per-node Crash draws; the earlier round wins, per
	// the engine's schedule-merge rule.
	Partition   *shard.Partition
	LoseShards  map[int]int
	ShardLoss   float64
	ShardLossBy int
}

// Stats counts the faults a Chaos actually injected.
type Stats struct {
	// Dropped counts discarded messages, including those lost to failed
	// links.
	Dropped int
	// Duplicated counts messages delivered with an extra copy.
	Duplicated int
	// Corrupted counts messages whose payload was replaced by Garbage.
	Corrupted int
	// FailedLinks counts undirected links scheduled to fail.
	FailedLinks int
	// Crashed counts nodes scheduled to crash, including nodes lost with
	// their shard.
	Crashed int
	// LostShards counts whole shards scheduled to go dark (explicit
	// LoseShards entries plus seeded ShardLoss draws).
	LostShards int
}

// Garbage is the corrupted-payload stand-in: an unrecognizable payload that
// preserves the original's bit size, so CONGEST accounting is unchanged
// while every algorithm-level type switch fails to recognize it.
type Garbage struct {
	// Size is the original payload's size in bits.
	Size int
	// Salt distinguishes independent corruptions (seeded, reproducible).
	Salt int64
}

// Bits implements runtime.BitSized.
func (g Garbage) Bits() int { return g.Size }

// Chaos is a seeded runtime.Adversary implementing Policy. Single-run; see
// the package comment.
type Chaos struct {
	p     Policy
	rng   *rand.Rand
	links map[[2]int]int // undirected link -> failure round (0 = healthy)
	stats Stats
}

// New returns a fresh Chaos for one run of the given policy.
func New(p Policy) *Chaos {
	return &Chaos{
		p:     p,
		rng:   rand.New(rand.NewSource(p.Seed)),
		links: make(map[[2]int]int),
	}
}

// Crashes implements runtime.Adversary: each node independently crashes
// with probability Policy.Crash at a seeded round in [1, CrashBy], and —
// when a Partition is attached — whole shards go dark per the LoseShards
// schedule and the seeded ShardLoss draws. Per-node draws happen first, in
// node order, then shard draws in shard order, so enabling shard loss never
// perturbs an existing seed's per-node schedule. When a node is claimed by
// both, the earlier crash round wins.
func (c *Chaos) Crashes(n int) map[int]int {
	var out map[int]int
	if c.p.Crash > 0 {
		by := c.p.CrashBy
		if by < 1 {
			by = DefaultHorizon
		}
		for i := 0; i < n; i++ {
			if c.rng.Float64() < c.p.Crash {
				if out == nil {
					out = make(map[int]int)
				}
				out[i] = 1 + c.rng.Intn(by)
				c.stats.Crashed++
			}
		}
	}
	if part := c.p.Partition; part != nil {
		// Explicit schedule first (shards ascending, for a deterministic
		// draw-free order), then the seeded draws.
		shards := make([]int, 0, len(c.p.LoseShards))
		for s := range c.p.LoseShards {
			shards = append(shards, s)
		}
		sort.Ints(shards)
		for _, s := range shards {
			out = c.loseShard(out, part, s, c.p.LoseShards[s])
		}
		if c.p.ShardLoss > 0 {
			by := c.p.ShardLossBy
			if by < 1 {
				by = DefaultHorizon
			}
			for s := 0; s < part.S; s++ {
				if c.rng.Float64() < c.p.ShardLoss {
					out = c.loseShard(out, part, s, 1+c.rng.Intn(by))
				}
			}
		}
	}
	return out
}

// loseShard schedules every node of shard s to crash at round, merging with
// any existing schedule (earlier round wins) and booking the stats. Nodes
// newly claimed count as crashed; a shard with no nodes still counts as
// lost.
func (c *Chaos) loseShard(out map[int]int, part *shard.Partition, s, round int) map[int]int {
	if s < 0 || s >= part.S {
		return out
	}
	c.stats.LostShards++
	for _, i := range part.Nodes[s] {
		if out == nil {
			out = make(map[int]int)
		}
		cur, seen := out[int(i)]
		if !seen {
			c.stats.Crashed++
		}
		if !seen || round < cur {
			out[int(i)] = round
		}
	}
	return out
}

// Intercept implements runtime.Adversary. Decisions draw from the policy's
// single PRNG in call order; each probability consumes a draw only when it
// is enabled, so a policy's draw sequence is a function of the policy alone.
func (c *Chaos) Intercept(round, from, to int, payload runtime.Payload) runtime.Fate {
	if c.p.LinkFail > 0 {
		key := [2]int{from, to}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		failAt, seen := c.links[key]
		if !seen {
			failAt = 0
			if c.rng.Float64() < c.p.LinkFail {
				by := c.p.LinkFailBy
				if by < 1 {
					by = DefaultHorizon
				}
				failAt = 1 + c.rng.Intn(by)
				c.stats.FailedLinks++
			}
			c.links[key] = failAt
		}
		if failAt != 0 && round >= failAt {
			c.stats.Dropped++
			return runtime.Fate{Drop: true}
		}
	}
	if c.p.Drop > 0 && c.rng.Float64() < c.p.Drop {
		c.stats.Dropped++
		return runtime.Fate{Drop: true}
	}
	var fate runtime.Fate
	if c.p.Corrupt > 0 && c.rng.Float64() < c.p.Corrupt {
		if bs, ok := payload.(runtime.BitSized); ok && bs.Bits() >= 0 {
			fate.Payload = Garbage{Size: bs.Bits(), Salt: c.rng.Int63()}
			c.stats.Corrupted++
		}
	}
	if c.p.Duplicate > 0 && c.rng.Float64() < c.p.Duplicate {
		fate.Extra = 1
		c.stats.Duplicated++
	}
	return fate
}

// Stats reports the faults injected so far.
func (c *Chaos) Stats() Stats { return c.stats }
