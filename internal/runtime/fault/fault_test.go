package fault

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/runtime"
	"repro/internal/shard"
)

type sized int

func (s sized) Bits() int { return int(s) }

// TestChaosDeterminism: two Chaos instances built from the same policy give
// identical verdicts on the same call sequence — the property the engine
// relies on for seq/pool parity.
func TestChaosDeterminism(t *testing.T) {
	policy := Policy{
		Seed: 42, Drop: 0.2, Duplicate: 0.15, Corrupt: 0.1,
		LinkFail: 0.1, Crash: 0.2,
	}
	a, b := New(policy), New(policy)
	if ca, cb := a.Crashes(50), b.Crashes(50); !reflect.DeepEqual(ca, cb) {
		t.Fatalf("crash schedules differ: %v vs %v", ca, cb)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		round := 1 + rng.Intn(10)
		from, to := 1+rng.Intn(20), 1+rng.Intn(20)
		payload := sized(8 + rng.Intn(8))
		fa := a.Intercept(round, from, to, payload)
		fb := b.Intercept(round, from, to, payload)
		if !reflect.DeepEqual(fa, fb) {
			t.Fatalf("call %d: fates differ: %+v vs %+v", i, fa, fb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
	s := a.Stats()
	if s.Dropped == 0 || s.Duplicated == 0 || s.Corrupted == 0 {
		t.Fatalf("expected every enabled fault shape to fire over 2000 calls: %+v", s)
	}
}

func TestChaosCrashesValid(t *testing.T) {
	c := New(Policy{Seed: 3, Crash: 0.5, CrashBy: 4})
	sched := c.Crashes(100)
	if len(sched) == 0 {
		t.Fatal("expected some crashes at rate 0.5")
	}
	for i, r := range sched {
		if i < 0 || i >= 100 {
			t.Fatalf("crash index %d out of range", i)
		}
		if r < 1 || r > 4 {
			t.Fatalf("crash round %d outside [1, 4]", r)
		}
	}
	if c.Stats().Crashed != len(sched) {
		t.Fatalf("Crashed stat %d != schedule size %d", c.Stats().Crashed, len(sched))
	}
}

// TestLinkFailurePermanent: once a link fails, every later message on it —
// in both directions — is dropped.
func TestLinkFailurePermanent(t *testing.T) {
	c := New(Policy{Seed: 1, LinkFail: 1.0, LinkFailBy: 3})
	// Probe the link until past its failure round.
	failed := -1
	for round := 1; round <= 4; round++ {
		fate := c.Intercept(round, 5, 9, sized(4))
		if fate.Drop && failed == -1 {
			failed = round
		}
		if failed != -1 && !fate.Drop {
			t.Fatalf("link healed at round %d after failing at %d", round, failed)
		}
	}
	if failed == -1 || failed > 3 {
		t.Fatalf("link should have failed by round 3, failed at %d", failed)
	}
	// Reverse direction shares the link's fate.
	if !(c.Intercept(4, 9, 5, sized(4)).Drop) {
		t.Fatal("reverse direction not affected by link failure")
	}
	if c.Stats().FailedLinks != 1 {
		t.Fatalf("FailedLinks = %d, want 1", c.Stats().FailedLinks)
	}
}

func TestGarbagePreservesBits(t *testing.T) {
	c := New(Policy{Seed: 2, Corrupt: 1.0})
	fate := c.Intercept(1, 1, 2, sized(13))
	g, ok := fate.Payload.(Garbage)
	if !ok {
		t.Fatalf("expected Garbage payload, got %T", fate.Payload)
	}
	if g.Bits() != 13 {
		t.Fatalf("Garbage.Bits() = %d, want 13 (size-preserving)", g.Bits())
	}
	// Unsized payloads pass through uncorrupted.
	if fate := c.Intercept(1, 1, 2, "local-only"); fate.Payload != nil {
		t.Fatalf("unsized payload corrupted: %+v", fate)
	}
}

// Compile-time check: Chaos satisfies the engine's Adversary interface.
var _ runtime.Adversary = (*Chaos)(nil)

// TestShardLossExplicit: an explicit LoseShards schedule crashes exactly the
// shard's nodes at the given round, draw-free, and books the stats.
func TestShardLossExplicit(t *testing.T) {
	part := shard.Contiguous(12, 3) // shards of 4: [0..3], [4..7], [8..11]
	c := New(Policy{Seed: 1, Partition: part, LoseShards: map[int]int{1: 2}})
	out := c.Crashes(12)
	if len(out) != 4 {
		t.Fatalf("crashed %d nodes, want 4: %v", len(out), out)
	}
	for i := 4; i <= 7; i++ {
		if out[i] != 2 {
			t.Fatalf("node %d crashes at %d, want 2 (map %v)", i, out[i], out)
		}
	}
	if s := c.Stats(); s.LostShards != 1 || s.Crashed != 4 {
		t.Fatalf("stats = %+v, want LostShards=1 Crashed=4", s)
	}
	// Out-of-range shard indices are ignored.
	c2 := New(Policy{Seed: 1, Partition: part, LoseShards: map[int]int{7: 1, -1: 1}})
	if out := c2.Crashes(12); out != nil {
		t.Fatalf("out-of-range shards crashed nodes: %v", out)
	}
}

// TestShardLossSeedStability: attaching an explicit (draw-free) shard-loss
// schedule must not perturb the per-node crash draws of an existing seed.
func TestShardLossSeedStability(t *testing.T) {
	base := Policy{Seed: 42, Crash: 0.3, CrashBy: 6}
	plain := New(base).Crashes(30)
	part := shard.Contiguous(30, 3) // shard 2 = nodes 20..29
	withLoss := base
	withLoss.Partition = part
	withLoss.LoseShards = map[int]int{2: 9}
	merged := New(withLoss).Crashes(30)
	for i := 0; i < 20; i++ {
		pr, pok := plain[i]
		mr, mok := merged[i]
		if pok != mok || pr != mr {
			t.Fatalf("node %d schedule perturbed: plain (%d,%v) vs merged (%d,%v)", i, pr, pok, mr, mok)
		}
	}
	// Earlier round wins when a node is claimed by both.
	for i := 20; i < 30; i++ {
		want := 9
		if pr, ok := plain[i]; ok && pr < want {
			want = pr
		}
		if merged[i] != want {
			t.Fatalf("node %d merged round %d, want %d (plain %v)", i, merged[i], want, plain[i])
		}
	}
}

// TestShardLossSeeded: ShardLoss draws are reproducible and bounded by
// ShardLossBy.
func TestShardLossSeeded(t *testing.T) {
	part := shard.Contiguous(40, 8)
	p := Policy{Seed: 9, Partition: part, ShardLoss: 0.5, ShardLossBy: 3}
	a, b := New(p).Crashes(40), New(p).Crashes(40)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded shard loss not reproducible: %v vs %v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("ShardLoss=0.5 over 8 shards lost nothing; pick another seed")
	}
	for i, r := range a {
		if r < 1 || r > 3 {
			t.Fatalf("node %d crash round %d outside [1, ShardLossBy=3]", i, r)
		}
	}
	if len(a)%5 != 0 {
		t.Fatalf("crashed node count %d is not a multiple of the shard size 5", len(a))
	}
}
