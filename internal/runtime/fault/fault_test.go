package fault

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/runtime"
)

type sized int

func (s sized) Bits() int { return int(s) }

// TestChaosDeterminism: two Chaos instances built from the same policy give
// identical verdicts on the same call sequence — the property the engine
// relies on for seq/pool parity.
func TestChaosDeterminism(t *testing.T) {
	policy := Policy{
		Seed: 42, Drop: 0.2, Duplicate: 0.15, Corrupt: 0.1,
		LinkFail: 0.1, Crash: 0.2,
	}
	a, b := New(policy), New(policy)
	if ca, cb := a.Crashes(50), b.Crashes(50); !reflect.DeepEqual(ca, cb) {
		t.Fatalf("crash schedules differ: %v vs %v", ca, cb)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		round := 1 + rng.Intn(10)
		from, to := 1+rng.Intn(20), 1+rng.Intn(20)
		payload := sized(8 + rng.Intn(8))
		fa := a.Intercept(round, from, to, payload)
		fb := b.Intercept(round, from, to, payload)
		if !reflect.DeepEqual(fa, fb) {
			t.Fatalf("call %d: fates differ: %+v vs %+v", i, fa, fb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
	s := a.Stats()
	if s.Dropped == 0 || s.Duplicated == 0 || s.Corrupted == 0 {
		t.Fatalf("expected every enabled fault shape to fire over 2000 calls: %+v", s)
	}
}

func TestChaosCrashesValid(t *testing.T) {
	c := New(Policy{Seed: 3, Crash: 0.5, CrashBy: 4})
	sched := c.Crashes(100)
	if len(sched) == 0 {
		t.Fatal("expected some crashes at rate 0.5")
	}
	for i, r := range sched {
		if i < 0 || i >= 100 {
			t.Fatalf("crash index %d out of range", i)
		}
		if r < 1 || r > 4 {
			t.Fatalf("crash round %d outside [1, 4]", r)
		}
	}
	if c.Stats().Crashed != len(sched) {
		t.Fatalf("Crashed stat %d != schedule size %d", c.Stats().Crashed, len(sched))
	}
}

// TestLinkFailurePermanent: once a link fails, every later message on it —
// in both directions — is dropped.
func TestLinkFailurePermanent(t *testing.T) {
	c := New(Policy{Seed: 1, LinkFail: 1.0, LinkFailBy: 3})
	// Probe the link until past its failure round.
	failed := -1
	for round := 1; round <= 4; round++ {
		fate := c.Intercept(round, 5, 9, sized(4))
		if fate.Drop && failed == -1 {
			failed = round
		}
		if failed != -1 && !fate.Drop {
			t.Fatalf("link healed at round %d after failing at %d", round, failed)
		}
	}
	if failed == -1 || failed > 3 {
		t.Fatalf("link should have failed by round 3, failed at %d", failed)
	}
	// Reverse direction shares the link's fate.
	if !(c.Intercept(4, 9, 5, sized(4)).Drop) {
		t.Fatal("reverse direction not affected by link failure")
	}
	if c.Stats().FailedLinks != 1 {
		t.Fatalf("FailedLinks = %d, want 1", c.Stats().FailedLinks)
	}
}

func TestGarbagePreservesBits(t *testing.T) {
	c := New(Policy{Seed: 2, Corrupt: 1.0})
	fate := c.Intercept(1, 1, 2, sized(13))
	g, ok := fate.Payload.(Garbage)
	if !ok {
		t.Fatalf("expected Garbage payload, got %T", fate.Payload)
	}
	if g.Bits() != 13 {
		t.Fatalf("Garbage.Bits() = %d, want 13 (size-preserving)", g.Bits())
	}
	// Unsized payloads pass through uncorrupted.
	if fate := c.Intercept(1, 1, 2, "local-only"); fate.Payload != nil {
		t.Fatalf("unsized payload corrupted: %+v", fate)
	}
}

// Compile-time check: Chaos satisfies the engine's Adversary interface.
var _ runtime.Adversary = (*Chaos)(nil)
