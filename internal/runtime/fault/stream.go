package fault

import "math/rand"

// This file extends the chaos model from the message layer to the update
// stream of a dynamic session: the adversary now also perturbs the sequence
// of edge-update batches a session consumes — dropping, duplicating, and
// reordering whole batches — and marks individual incremental steps to run
// under engine-level chaos (the Policy machinery above). Like Policy, a
// StreamPolicy is fully seeded: one seed reproduces one exact perturbation
// plan, and because the plan is computed outside the engine it is identical
// regardless of engine mode. The dynamic session layer consumes the plan
// abstractly (batch indices, not batch contents), which keeps this package
// free of session types.

// StreamPolicy describes chaos on an ordered update-batch stream. All
// probabilities are per-event in [0, 1].
type StreamPolicy struct {
	// Seed drives every decision; the same StreamPolicy reproduces the same
	// plan exactly.
	Seed int64
	// Drop is the probability a batch is never delivered.
	Drop float64
	// Duplicate is the probability a delivered batch is delivered twice
	// (back to back before reordering).
	Duplicate float64
	// Reorder is the probability a delivered slot is swapped with its
	// successor, modelling out-of-order arrival.
	Reorder float64
	// StepFault is the probability an individual delivered slot's
	// incremental run executes under engine chaos (Step).
	StepFault float64
	// Step is the engine fault policy template for faulted steps. Its Seed
	// field is ignored: each faulted slot derives its own seed from the
	// stream seed so that independent steps draw independent schedules.
	Step Policy
}

// StreamSlot is one delivery in a perturbed stream plan.
type StreamSlot struct {
	// Batch indexes the original (unperturbed) batch sequence.
	Batch int
	// Duplicate marks the second copy of a duplicated batch.
	Duplicate bool
	// Step, when non-nil, is the seeded engine fault policy the slot's
	// incremental run must execute under.
	Step *Policy
}

// StreamStats counts the perturbations a plan contains.
type StreamStats struct {
	// Batches is the length of the original stream.
	Batches int
	// Dropped counts batches never delivered.
	Dropped int
	// Duplicated counts batches delivered twice.
	Duplicated int
	// Reordered counts adjacent slot swaps.
	Reordered int
	// FaultedSteps counts slots whose incremental run executes under engine
	// chaos.
	FaultedSteps int
}

// PlanStream perturbs the delivery of n ordered batches under the policy
// and returns the delivery plan: which original batch arrives in which
// position, which arrivals are duplicates, and which steps run under engine
// chaos. Decisions draw from a single seeded PRNG in a fixed order (drop
// and duplicate per batch, then reorder per slot, then step faults per
// slot), so a policy and a length determine the plan exactly.
func PlanStream(p StreamPolicy, n int) ([]StreamSlot, StreamStats) {
	rng := rand.New(rand.NewSource(p.Seed))
	stats := StreamStats{Batches: n}
	slots := make([]StreamSlot, 0, n)
	for i := 0; i < n; i++ {
		if p.Drop > 0 && rng.Float64() < p.Drop {
			stats.Dropped++
			continue
		}
		slots = append(slots, StreamSlot{Batch: i})
		if p.Duplicate > 0 && rng.Float64() < p.Duplicate {
			slots = append(slots, StreamSlot{Batch: i, Duplicate: true})
			stats.Duplicated++
		}
	}
	if p.Reorder > 0 {
		for i := 0; i+1 < len(slots); i++ {
			if rng.Float64() < p.Reorder {
				slots[i], slots[i+1] = slots[i+1], slots[i]
				stats.Reordered++
				i++ // a swapped pair is settled; don't cascade the same draw
			}
		}
	}
	if p.StepFault > 0 {
		for i := range slots {
			if rng.Float64() < p.StepFault {
				pol := p.Step
				// Large odd stride keeps per-slot schedules disjoint while
				// remaining a pure function of (stream seed, slot index).
				pol.Seed = p.Seed + int64(i+1)*1_000_003
				slots[i].Step = &pol
				stats.FaultedSteps++
			}
		}
	}
	return slots, stats
}
