package fault

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestPlanStreamDeterministic(t *testing.T) {
	p := StreamPolicy{
		Seed:      42,
		Drop:      0.2,
		Duplicate: 0.3,
		Reorder:   0.25,
		StepFault: 0.5,
		Step:      Policy{Drop: 0.4, Crash: 0.1},
	}
	a, as := PlanStream(p, 40)
	b, bs := PlanStream(p, 40)
	if !reflect.DeepEqual(a, b) || as != bs {
		t.Fatalf("same policy produced different plans:\n%v %+v\n%v %+v", a, as, b, bs)
	}
	c, _ := PlanStream(StreamPolicy{Seed: 43, Drop: 0.2, Duplicate: 0.3, Reorder: 0.25}, 40)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanStreamZeroPolicyIsIdentity(t *testing.T) {
	slots, stats := PlanStream(StreamPolicy{Seed: 7}, 10)
	if len(slots) != 10 {
		t.Fatalf("got %d slots, want 10", len(slots))
	}
	for i, s := range slots {
		if s.Batch != i || s.Duplicate || s.Step != nil {
			t.Fatalf("slot %d perturbed under the zero policy: %+v", i, s)
		}
	}
	if stats != (StreamStats{Batches: 10}) {
		t.Fatalf("zero policy produced stats %+v", stats)
	}
}

func TestPlanStreamStatsMatchPlan(t *testing.T) {
	p := StreamPolicy{
		Seed:      9,
		Drop:      0.3,
		Duplicate: 0.4,
		StepFault: 0.6,
		Step:      Policy{Drop: 0.2},
	}
	slots, stats := PlanStream(p, 200)
	delivered := make(map[int]int)
	dups, faulted := 0, 0
	for _, s := range slots {
		delivered[s.Batch]++
		if s.Duplicate {
			dups++
		}
		if s.Step != nil {
			faulted++
			if s.Step.Seed == 0 || s.Step.Drop != p.Step.Drop {
				t.Fatalf("faulted slot carries wrong policy: %+v", s.Step)
			}
		}
	}
	if dups != stats.Duplicated {
		t.Fatalf("duplicate slots %d vs stats %d", dups, stats.Duplicated)
	}
	if faulted != stats.FaultedSteps {
		t.Fatalf("faulted slots %d vs stats %d", faulted, stats.FaultedSteps)
	}
	if got := 200 - len(delivered); got != stats.Dropped {
		t.Fatalf("dropped batches %d vs stats %d", got, stats.Dropped)
	}
	for b, c := range delivered {
		if c > 2 {
			t.Fatalf("batch %d delivered %d times", b, c)
		}
	}
	// Distinct faulted slots must draw distinct engine schedules.
	seeds := make(map[int64]bool)
	for _, s := range slots {
		if s.Step != nil {
			if seeds[s.Step.Seed] {
				t.Fatalf("duplicate derived step seed %d", s.Step.Seed)
			}
			seeds[s.Step.Seed] = true
		}
	}
}

// TestPlanStreamReorderHeavyDeterminism pins the reproducibility contract
// where it is most fragile: a reorder-dominated policy makes nearly every
// slot's position depend on the PRNG draw sequence, so any hidden source of
// nondeterminism (map iteration, draw-order drift) would scramble the plan.
// The same seed must yield a byte-identical plan on every one of 100 runs.
func TestPlanStreamReorderHeavyDeterminism(t *testing.T) {
	p := StreamPolicy{
		Seed:      11,
		Drop:      0.1,
		Duplicate: 0.2,
		Reorder:   0.95,
		StepFault: 0.4,
		Step:      Policy{Drop: 0.3, Corrupt: 0.2},
	}
	// render flattens a plan to bytes, dereferencing the per-slot policies so
	// the comparison is by value, not by pointer identity.
	render := func(slots []StreamSlot, stats StreamStats) string {
		var b strings.Builder
		for _, s := range slots {
			fmt.Fprintf(&b, "%d/%t", s.Batch, s.Duplicate)
			if s.Step != nil {
				fmt.Fprintf(&b, "/%+v", *s.Step)
			}
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%+v", stats)
		return b.String()
	}
	refSlots, refStats := PlanStream(p, 80)
	if refStats.Reordered == 0 {
		t.Fatal("reorder-heavy policy produced no swaps; the test exercises nothing")
	}
	ref := render(refSlots, refStats)
	for run := 1; run < 100; run++ {
		slots, stats := PlanStream(p, 80)
		if got := render(slots, stats); got != ref {
			t.Fatalf("run %d diverged from run 0:\n got %s\nwant %s", run, got, ref)
		}
	}
}

func TestPlanStreamReorderKeepsMultiset(t *testing.T) {
	p := StreamPolicy{Seed: 3, Reorder: 0.5}
	slots, stats := PlanStream(p, 50)
	if len(slots) != 50 {
		t.Fatalf("reorder changed slot count: %d", len(slots))
	}
	if stats.Reordered == 0 {
		t.Fatal("expected at least one swap at rate 0.5")
	}
	seen := make([]bool, 50)
	inOrder := true
	for i, s := range slots {
		if seen[s.Batch] {
			t.Fatalf("batch %d delivered twice without duplication", s.Batch)
		}
		seen[s.Batch] = true
		if s.Batch != i {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("plan with swaps is still in order")
	}
}
