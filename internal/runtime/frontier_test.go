package runtime_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
)

// countingMachine records which rounds its Send and Receive ran in, so the
// frontier tests can assert the engine really stops scheduling a node after
// it leaves the frontier (zero cost per round for settled nodes, not just a
// skipped effect).
type countingMachine struct {
	echoMachine
	sendRounds    []int
	receiveRounds []int
}

func (m *countingMachine) Send(env *runtime.Env) []runtime.Out {
	m.sendRounds = append(m.sendRounds, env.Round())
	return m.echoMachine.Send(env)
}

func (m *countingMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	m.receiveRounds = append(m.receiveRounds, env.Round())
	m.echoMachine.Receive(env, inbox)
}

// TestCrashedNodeNeverReentersFrontier: a node crashed by the schedule (or
// by a chaos adversary) must leave the frontier at its crash round and stay
// out — no further phase calls, no further deliveries, an Observer active
// flag that never flips back, and no sender batches in the trace.
func TestCrashedNodeNeverReentersFrontier(t *testing.T) {
	const n, crashIdx, crashRound = 32, 5, 3
	for _, parallel := range []bool{false, true} {
		g := graph.GNP(n, 0.3, rand.New(rand.NewSource(4)))
		machines := make([]*countingMachine, n)
		rec := obs.NewRecorder(0)
		activeHistory := make(map[int][]bool)
		_, err := runtime.Run(runtime.Config{
			Graph:    g,
			Parallel: parallel,
			Crashes:  map[int]int{crashIdx: crashRound},
			Trace:    rec,
			Factory: func(info runtime.NodeInfo, pred any) runtime.Machine {
				m := &countingMachine{echoMachine: echoMachine{limit: 6}}
				machines[info.Index] = m
				return m
			},
			Observer: func(round int, outputs []any, active []bool) {
				for i, a := range active {
					activeHistory[i] = append(activeHistory[i], a)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		crashed := machines[crashIdx]
		for _, r := range crashed.sendRounds {
			if r >= crashRound {
				t.Fatalf("parallel=%v: crashed node ran Send in round %d (crashed at %d)", parallel, r, crashRound)
			}
		}
		for _, r := range crashed.receiveRounds {
			if r >= crashRound {
				t.Fatalf("parallel=%v: crashed node ran Receive in round %d (crashed at %d)", parallel, r, crashRound)
			}
		}
		// The Observer's active flag drops at the crash round and never
		// returns — the frontier bit is one-way.
		wentDown := -1
		for round, a := range activeHistory[crashIdx] {
			switch {
			case a && wentDown >= 0:
				t.Fatalf("parallel=%v: node re-entered the frontier in round %d after leaving in round %d",
					parallel, round+1, wentDown+1)
			case !a && wentDown < 0:
				wentDown = round
			}
		}
		if wentDown+1 != crashRound {
			t.Fatalf("parallel=%v: node left the frontier in round %d, want crash round %d", parallel, wentDown+1, crashRound)
		}
		// The trace agrees: no sender batch from the crashed node's ID at or
		// after the crash round.
		crashedID := g.ID(crashIdx)
		for _, e := range rec.Events() {
			if e.Type == obs.EvBatch && e.Node == crashedID && e.Round >= crashRound {
				t.Fatalf("parallel=%v: batch event from crashed node in round %d", parallel, e.Round)
			}
		}
	}
}

// TestChaosCrashFrontierParity: adversary-scheduled crashes (fault.Policy
// Crash) go through the same one-way frontier, in both engine modes, with
// the Observer views byte-identical.
func TestChaosCrashFrontierParity(t *testing.T) {
	g := graph.GNP(48, 0.2, rand.New(rand.NewSource(9)))
	capture := func(parallel bool) ([][]bool, *runtime.Result) {
		var hist [][]bool
		res, err := runtime.Run(runtime.Config{
			Graph:     g,
			Parallel:  parallel,
			Factory:   echoFactory(5),
			Adversary: fault.New(fault.Policy{Seed: 17, Crash: 0.3, Drop: 0.1}),
			Observer: func(round int, outputs []any, active []bool) {
				row := make([]bool, len(active))
				copy(row, active)
				hist = append(hist, row)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return hist, res
	}
	seq, seqRes := capture(false)
	par, _ := capture(true)
	if len(seq) != len(par) {
		t.Fatalf("round counts differ: %d vs %d", len(seq), len(par))
	}
	for r := range seq {
		for i := range seq[r] {
			if seq[r][i] != par[r][i] {
				t.Fatalf("round %d node %d: active %v (seq) vs %v (par)", r+1, i, seq[r][i], par[r][i])
			}
			// One-way check across consecutive rounds.
			if r > 0 && seq[r][i] && !seq[r-1][i] {
				t.Fatalf("node %d re-entered the frontier in round %d", i, r+1)
			}
		}
	}
	// Crashed nodes are the ones that never terminated; the policy must have
	// produced some for the test to have exercised a crash-driven exit.
	crashesSeen := 0
	for i, at := range seqRes.TerminatedAt {
		if at == 0 {
			crashesSeen++
			if seqRes.Outputs[i] != nil {
				t.Fatalf("crashed node %d has an output", i)
			}
		}
	}
	if crashesSeen == 0 {
		t.Fatal("chaos policy crashed nothing; the test exercised no frontier exit")
	}
}
