package runtime_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
)

// FuzzAdversaryParity is the native-fuzz form of the randomized
// chaos/adversary parity tests: for any topology, fault policy, and machine
// flavor the fuzzer can derive from its inputs, the sequential and parallel
// engines must inject the identical fault sequence and produce
// byte-for-byte identical results — including identical error surfaces when
// fragile machines reject corrupted payloads.
//
// shape packs the topology and machine parameters byte by byte; rates packs
// the five fault probabilities. Deriving everything from integers keeps the
// corpus encoding trivial (testdata/fuzz/FuzzAdversaryParity).
func FuzzAdversaryParity(f *testing.F) {
	f.Add(int64(1), uint64(12|70<<8|3<<16), uint64(0x30_30_30_30_30), true)
	f.Add(int64(99), uint64(11|20<<8|4<<16), uint64(0x00_00_00_20_30), false)
	f.Add(int64(1234), uint64(45|90<<8|1<<16), uint64(0x15_15_15_15_15), true)
	f.Add(int64(-7), uint64(2|5<<8|2<<16), uint64(0x00_60_00_00_00), false)
	// Large-scale vector (bit 24 of shape): a 100k-node sparse ring, the
	// scale regime where the columnar engine's frontier compaction, crash
	// scheduling, and inbox slab reuse actually kick in.
	f.Add(int64(42), uint64(2<<16|1<<24), uint64(0x08_00_10_10_10), false)
	f.Fuzz(func(t *testing.T, seed int64, shape, rates uint64, fragile bool) {
		nodes := 2 + int(shape%50)
		p := 0.05 + float64((shape>>8)%100)/100*0.4
		limit := 1 + int((shape>>16)%5)
		largeScale := (shape>>24)&1 == 1
		if largeScale {
			nodes = 100_000
		}
		frac := func(b int) float64 { return float64((rates>>b)&0xff) / 255 }
		policy := fault.Policy{
			Seed:      seed,
			Drop:      frac(0) * 0.4,
			Duplicate: frac(8) * 0.4,
			Corrupt:   frac(16) * 0.4,
			LinkFail:  frac(24) * 0.25,
			Crash:     frac(32) * 0.25,
		}
		var g *graph.Graph
		if largeScale {
			// Dense GNP is quadratic; the large mode keeps the edge count
			// linear so a fuzz exec stays sub-second at 100k nodes.
			g = graph.Ring(nodes)
		} else {
			g = graph.GNP(nodes, p, rand.New(rand.NewSource(seed)))
		}
		factory := echoFactory(limit)
		if fragile {
			factory = func(info runtime.NodeInfo, pred any) runtime.Machine {
				return &fragileMachine{echoMachine{limit: limit}}
			}
		}
		run := func(parallel bool) (*runtime.Result, error, fault.Stats) {
			chaos := fault.New(policy)
			res, err := runtime.Run(runtime.Config{
				Graph:     g,
				Factory:   factory,
				Parallel:  parallel,
				Adversary: chaos,
			})
			return res, err, chaos.Stats()
		}
		seq, seqErr, seqStats := run(false)
		par, parErr, parStats := run(true)
		if seqStats != parStats {
			t.Fatalf("fault sequences differ across modes: %+v vs %+v", seqStats, parStats)
		}
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("error surfaces differ: %v vs %v", seqErr, parErr)
		}
		if seqErr != nil {
			if seqErr.Error() != parErr.Error() {
				t.Fatalf("errors differ:\n  seq: %v\n  par: %v", seqErr, parErr)
			}
			return
		}
		if seq.Rounds != par.Rounds || seq.Messages != par.Messages || seq.MaxMsgBits != par.MaxMsgBits {
			t.Fatalf("engines disagree: %+v vs %+v", seq, par)
		}
		for i := range seq.Outputs {
			if seq.Outputs[i] != par.Outputs[i] {
				t.Fatalf("node %d: outputs differ: %v vs %v", i, seq.Outputs[i], par.Outputs[i])
			}
			if seq.TerminatedAt[i] != par.TerminatedAt[i] {
				t.Fatalf("node %d: terminated at %d vs %d", i, seq.TerminatedAt[i], par.TerminatedAt[i])
			}
		}
	})
}
