// Package runtime implements the paper's computational model (Section 2): a
// synchronous message-passing system in which each node of a graph is a
// nonfaulty process. In each round, every active node first decides which
// messages to send to its neighbors (based on its state at the end of the
// previous round), then receives all messages sent to it this round, performs
// local computation, optionally assigns its output, and terminates
// immediately after producing its last output.
//
// The engine offers three execution modes with identical semantics: a
// sequential mode; a parallel mode that runs the per-node send and receive
// phases on a persistent pool of goroutines (created once per run, signalled
// each phase, with a barrier between phases); and a sharded mode
// (Config.Shards/Config.Partition, see shard.go) that splits the round loop
// into per-shard lanes exchanging boundary-edge message batches at the round
// barrier. All modes are deterministic and produce byte-identical results
// and traces; tests and FuzzShardParity assert this. Engine buffers
// (inboxes, routing state, lane slabs, exchange frames) are recycled across
// rounds, so steady-state rounds allocate nothing in the engine itself.
//
// Message sizes are accounted when payloads implement BitSized, allowing
// CONGEST-model bandwidth checks for the algorithms that fit in O(log n) bits.
package runtime

import (
	"fmt"
)

// Payload is the content of a message. In the LOCAL model payloads may be
// arbitrarily large; payloads that implement BitSized additionally permit
// CONGEST accounting.
type Payload = any

// BitSized is implemented by payloads that can report their encoded size in
// bits, enabling CONGEST-model bandwidth accounting.
type BitSized interface {
	Bits() int
}

// Msg is a message delivered to a node. From is the sender's identifier.
type Msg struct {
	From    int
	Payload Payload
}

// Out is a message a node asks the engine to send. To is a neighbor's
// identifier; sending to a non-neighbor is a protocol error.
type Out struct {
	To      int
	Payload Payload
}

// NodeInfo is the static information a node knows at the start of the
// computation, per the paper's model: its identifier, its neighbors'
// identifiers, n, d, and the maximum degree Δ.
type NodeInfo struct {
	// Index is the node's index in the underlying graph (engine-internal;
	// algorithms should not base decisions on it).
	Index int
	// ID is the node's distinct identifier in {1, ..., D}.
	ID int
	// NeighborIDs lists the identifiers of adjacent nodes, ascending.
	NeighborIDs []int
	// N is the number of nodes in the graph.
	N int
	// D is the upper bound on identifiers.
	D int
	// Delta is the maximum degree of the graph.
	Delta int
}

// Degree returns the node's own degree.
func (ni NodeInfo) Degree() int { return len(ni.NeighborIDs) }

// Machine is the per-node state machine of a distributed algorithm.
//
// Each round the engine calls Send exactly once on every active node, routes
// the returned messages, and then calls Receive exactly once on every node
// that is still active (a node that terminated during Send is not handed the
// round's inbox; by the model it has already assigned all its outputs).
type Machine interface {
	// Send decides the messages to transmit this round. It may call
	// env.Output and env.Terminate; if it terminates, the returned messages
	// are still delivered this round but Receive is skipped.
	Send(env *Env) []Out
	// Receive processes the messages delivered this round and updates state.
	// It may call env.Output and env.Terminate. The inbox slice is owned by
	// the engine and reused across rounds; copy it (not just re-slice it) to
	// retain messages beyond the call. Payload values themselves are never
	// reused by the engine.
	Receive(env *Env, inbox []Msg)
}

// Factory creates the machine for one node, given its static information and
// its prediction (nil when the algorithm takes no predictions).
type Factory func(info NodeInfo, prediction any) Machine

// Note is one machine-emitted trace annotation staged via Env.Annotate:
// a name (by convention prefixed, e.g. "stage:" for template stages) and a
// numeric value (budget metadata, lane index, ...).
type Note struct {
	Name  string
	Value int64
}

// Env is the per-node environment handed to Machine methods. It exposes the
// node's static information, the current round, and output/termination.
type Env struct {
	info       NodeInfo
	round      int
	output     any
	hasOutput  bool
	terminated bool
	err        error
	// tracing mirrors "a trace recorder is attached"; notes stages this
	// node's annotations for the round. Machine code may append via
	// Annotate from a pool worker goroutine — each Env is owned by exactly
	// one worker per phase — and the engine drains the buffer on the main
	// goroutine after the phase barrier, in node-index order.
	tracing bool
	notes   []Note
	// outs/dst stage the node's validated outbox for the routing passes:
	// outs is the slice returned by Send, dst the destination node indices
	// resolved during validation (reused across rounds). bcast/bcastSet
	// stage an Env.Broadcast payload instead; inReceive guards Broadcast
	// against receive-phase calls.
	outs      []Out
	dst       []int32
	bcast     Payload
	bcastSet  bool
	inReceive bool
}

// Info returns the node's static information.
func (e *Env) Info() NodeInfo { return e.info }

// ID returns the node's identifier.
func (e *Env) ID() int { return e.info.ID }

// Round returns the current round number (1-based).
func (e *Env) Round() int { return e.round }

// Output assigns (or overwrites) the node's output value. Per the model a
// node may produce outputs over several rounds (e.g. edge colorings); the
// value observed at termination is the node's final output.
//
//dgp:hotpath
func (e *Env) Output(v any) {
	if e.terminated {
		e.fail(fmt.Errorf("%w: output after termination", ErrProtocol))
		return
	}
	e.output = v
	e.hasOutput = true
}

// HasOutput reports whether Output has been called.
func (e *Env) HasOutput() bool { return e.hasOutput }

// CurrentOutput returns the most recently assigned output (nil if none).
func (e *Env) CurrentOutput() any { return e.output }

// Terminate marks the node as terminated at the end of the current round.
// A node must have produced an output before terminating.
//
//dgp:hotpath
func (e *Env) Terminate() {
	if !e.hasOutput {
		e.fail(fmt.Errorf("%w: terminate without output", ErrProtocol))
		return
	}
	e.terminated = true
}

// Terminated reports whether the node has terminated.
func (e *Env) Terminated() bool { return e.terminated }

// Fail records a protocol error; the engine aborts the run and surfaces the
// first recorded error. Composed machines use this to report violations such
// as lockstep breaks or running past the final stage.
func (e *Env) Fail(err error) { e.fail(err) }

// Tracing reports whether a trace recorder is attached to the run. Callers
// that build annotation strings should guard on it so the disabled-tracing
// path stays allocation-free.
func (e *Env) Tracing() bool { return e.tracing }

// Annotate stages a trace annotation for this node; the engine emits it as
// a span event at the end of the round (or discards it when tracing is
// off). Safe to call from Send/Receive in both engine modes; annotations
// surface in deterministic node-index order regardless of Config.Parallel.
//
//dgp:hotpath
func (e *Env) Annotate(name string, value int64) {
	if !e.tracing {
		return
	}
	e.notes = append(e.notes, Note{Name: name, Value: value})
}

// Broadcast asks the engine to deliver payload to every neighbor this
// round, without materializing a per-neighbor []Out. It is the zero-
// allocation counterpart of returning Broadcast(env.Info(), payload) from
// Send: the engine walks the node's CSR neighbor range directly. Call it
// from Send (at most once per round) and return nil; calling it from
// Receive, twice in a round, or alongside returned sends is a protocol
// error.
//
//dgp:hotpath
func (e *Env) Broadcast(payload Payload) {
	if e.inReceive {
		e.fail(fmt.Errorf("%w: Broadcast called during Receive", ErrProtocol))
		return
	}
	if e.bcastSet {
		e.fail(fmt.Errorf("%w: Broadcast called twice in one round", ErrProtocol))
		return
	}
	e.bcast = payload
	e.bcastSet = true
}

func (e *Env) fail(err error) {
	if e.err == nil {
		e.err = fmt.Errorf("node %d round %d: %w", e.info.ID, e.round, err)
	}
}

// Broadcast builds one Out per neighbor carrying payload.
func Broadcast(info NodeInfo, payload Payload) []Out {
	outs := make([]Out, len(info.NeighborIDs))
	for i, nb := range info.NeighborIDs {
		outs[i] = Out{To: nb, Payload: payload}
	}
	return outs
}

// BroadcastTo builds one Out per listed destination carrying payload.
func BroadcastTo(dests []int, payload Payload) []Out {
	outs := make([]Out, len(dests))
	for i, nb := range dests {
		outs[i] = Out{To: nb, Payload: payload}
	}
	return outs
}
