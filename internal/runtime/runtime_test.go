package runtime_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
)

// echoMachine broadcasts its round number until a limit, then outputs the
// multiset of (sender, payload) pairs it heard, as a canonical string.
type echoMachine struct {
	limit int
	heard []string
}

type echoPayload struct{ Round, From int }

func (p echoPayload) Bits() int { return 16 }

func (m *echoMachine) Send(env *runtime.Env) []runtime.Out {
	if env.Round() > m.limit {
		env.Output(fmt.Sprint(m.heard))
		env.Terminate()
		return nil
	}
	return runtime.Broadcast(env.Info(), echoPayload{Round: env.Round(), From: env.ID()})
}

func (m *echoMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	for _, msg := range inbox {
		m.heard = append(m.heard, fmt.Sprint(msg.From, msg.Payload))
	}
}

func echoFactory(limit int) runtime.Factory {
	return func(info runtime.NodeInfo, pred any) runtime.Machine {
		return &echoMachine{limit: limit}
	}
}

func TestSameRoundDelivery(t *testing.T) {
	// Messages sent in round r are received in round r (paper Section 2).
	g := graph.Line(2)
	var got []string
	res, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: echoFactory(2),
		Observer: func(round int, outputs []any, active []bool) {
			got = append(got, fmt.Sprint(round, outputs))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	// Each node heard exactly rounds 1 and 2 from its single neighbor.
	for i, o := range res.Outputs {
		want := fmt.Sprint([]string{
			fmt.Sprint(g.ID(1-i), echoPayload{Round: 1, From: g.ID(1 - i)}),
			fmt.Sprint(g.ID(1-i), echoPayload{Round: 2, From: g.ID(1 - i)}),
		})
		if o != want {
			t.Errorf("node %d heard %v, want %v", i, o, want)
		}
	}
}

func TestEngineModesAgreeOnRandomizedTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(30, 0.2, rng)
		run := func(parallel bool) *runtime.Result {
			res, err := runtime.Run(runtime.Config{Graph: g, Factory: echoFactory(3), Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		seq, par := run(false), run(true)
		if seq.Rounds != par.Rounds || seq.Messages != par.Messages {
			t.Fatalf("engines disagree: %+v vs %+v", seq, par)
		}
		for i := range seq.Outputs {
			if seq.Outputs[i] != par.Outputs[i] {
				t.Fatalf("node %d outputs differ", i)
			}
		}
	}
}

// terminateInSend outputs and terminates in its first Send, and fails the
// run if Receive is ever called afterwards.
type terminateInSend struct{ done bool }

func (m *terminateInSend) Send(env *runtime.Env) []runtime.Out {
	m.done = true
	env.Output(1)
	env.Terminate()
	return runtime.Broadcast(env.Info(), "bye")
}

func (m *terminateInSend) Receive(env *runtime.Env, inbox []runtime.Msg) {
	if m.done {
		env.Fail(errors.New("Receive called after terminate-in-Send"))
	}
}

func TestTerminateInSendSkipsReceive(t *testing.T) {
	g := graph.Clique(4)
	res, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: func(runtime.NodeInfo, any) runtime.Machine { return &terminateInSend{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	// All final-round messages were dropped (receivers also terminated).
	if res.Messages != 0 {
		t.Errorf("messages = %d, want 0", res.Messages)
	}
}

// protocolCases exercise engine protocol-error detection.
type badMachine struct{ mode string }

func (m *badMachine) Send(env *runtime.Env) []runtime.Out {
	switch m.mode {
	case "non-neighbor":
		return []runtime.Out{{To: env.ID(), Payload: "self"}}
	case "terminate-without-output":
		env.Terminate()
	case "output-after-terminate":
		env.Output(1)
		env.Terminate()
		env.Output(2)
	case "never-terminate":
	}
	return nil
}

func (m *badMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {}

func TestProtocolErrors(t *testing.T) {
	for _, mode := range []string{
		"non-neighbor", "terminate-without-output", "output-after-terminate", "never-terminate",
	} {
		t.Run(mode, func(t *testing.T) {
			_, err := runtime.Run(runtime.Config{
				Graph:     graph.Line(3),
				MaxRounds: 10,
				Factory: func(runtime.NodeInfo, any) runtime.Machine {
					return &badMachine{mode: mode}
				},
			})
			if err == nil {
				t.Fatalf("%s: want error", mode)
			}
			if mode == "never-terminate" && !errors.Is(err, runtime.ErrNoTermination) {
				t.Errorf("want ErrNoTermination, got %v", err)
			}
		})
	}
}

// crashProbe terminates at a fixed round and records who it heard from.
type crashProbe struct {
	stopAt int
	heard  map[int]int
}

func (m *crashProbe) Send(env *runtime.Env) []runtime.Out {
	if env.Round() >= m.stopAt {
		env.Output(m.heard)
		env.Terminate()
		return nil
	}
	return runtime.Broadcast(env.Info(), "ping")
}

func (m *crashProbe) Receive(env *runtime.Env, inbox []runtime.Msg) {
	for _, msg := range inbox {
		m.heard[msg.From]++
	}
}

func TestCrashStopsSending(t *testing.T) {
	g := graph.Line(3) // ids 1-2-3
	res, err := runtime.Run(runtime.Config{
		Graph: g,
		Factory: func(runtime.NodeInfo, any) runtime.Machine {
			return &crashProbe{stopAt: 5, heard: map[int]int{}}
		},
		Crashes: map[int]int{0: 3}, // node index 0 crashes at round 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TerminatedAt[0] != 0 || res.Outputs[0] != nil {
		t.Errorf("crashed node should have no output: %v at %d", res.Outputs[0], res.TerminatedAt[0])
	}
	// Node index 1 heard node 1 (id of index 0) only in rounds 1-2.
	heard := res.Outputs[1].(map[int]int)
	if heard[g.ID(0)] != 2 {
		t.Errorf("heard crashed node %d times, want 2", heard[g.ID(0)])
	}
	if heard[g.ID(2)] != 4 {
		t.Errorf("heard healthy node %d times, want 4", heard[g.ID(2)])
	}
}

func TestObserverSeesPartialOutputs(t *testing.T) {
	g := graph.Line(4)
	type snapshot struct {
		round   int
		actives int
	}
	var snaps []snapshot
	_, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: echoFactory(2),
		Observer: func(round int, outputs []any, active []bool) {
			count := 0
			for _, a := range active {
				if a {
					count++
				}
			}
			snaps = append(snaps, snapshot{round: round, actives: count})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 || snaps[0].actives != 4 || snaps[2].actives != 0 {
		t.Errorf("unexpected snapshots: %+v", snaps)
	}
}

func TestInboxSortedBySender(t *testing.T) {
	g := graph.ShuffleIDs(graph.Star(8), 80, rand.New(rand.NewSource(13)))
	factory := func(info runtime.NodeInfo, pred any) runtime.Machine {
		return &inboxOrderMachine{}
	}
	if _, err := runtime.Run(runtime.Config{Graph: g, Factory: factory}); err != nil {
		t.Fatal(err)
	}
}

type inboxOrderMachine struct{}

func (m *inboxOrderMachine) Send(env *runtime.Env) []runtime.Out {
	if env.Round() == 2 {
		env.Output(0)
		env.Terminate()
		return nil
	}
	return runtime.Broadcast(env.Info(), env.ID())
}

func (m *inboxOrderMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {
	for i := 1; i < len(inbox); i++ {
		if inbox[i].From < inbox[i-1].From {
			env.Fail(errors.New("inbox not sorted by sender"))
			return
		}
	}
}

func TestMaxMsgBitsAccounting(t *testing.T) {
	g := graph.Line(2)
	res, err := runtime.Run(runtime.Config{Graph: g, Factory: echoFactory(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMsgBits != 16 {
		t.Errorf("MaxMsgBits = %d, want 16", res.MaxMsgBits)
	}
	// An unsized payload flips the run to LOCAL-only.
	res, err = runtime.Run(runtime.Config{
		Graph: g,
		Factory: func(info runtime.NodeInfo, pred any) runtime.Machine {
			return &unsizedMachine{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMsgBits != -1 {
		t.Errorf("MaxMsgBits = %d, want -1", res.MaxMsgBits)
	}
}

type unsizedMachine struct{}

func (m *unsizedMachine) Send(env *runtime.Env) []runtime.Out {
	if env.Round() == 2 {
		env.Output(0)
		env.Terminate()
		return nil
	}
	return runtime.Broadcast(env.Info(), struct{ X []int }{X: []int{1, 2, 3}})
}

func (m *unsizedMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {}

func TestConfigValidation(t *testing.T) {
	if _, err := runtime.Run(runtime.Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	g := graph.Line(2)
	if _, err := runtime.Run(runtime.Config{Graph: g}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := runtime.Run(runtime.Config{
		Graph:       g,
		Factory:     echoFactory(1),
		Predictions: []any{1},
	}); err == nil {
		t.Error("mismatched prediction length accepted")
	}
}

func TestNodeInfoContents(t *testing.T) {
	g := graph.ShuffleIDs(graph.Star(5), 50, rand.New(rand.NewSource(17)))
	factory := func(info runtime.NodeInfo, pred any) runtime.Machine {
		if info.N != 5 || info.D != 50 || info.Delta != 4 {
			t.Errorf("bad static info: %+v", info)
		}
		if len(info.NeighborIDs) != g.Degree(info.Index) {
			t.Errorf("node %d: %d neighbor ids", info.ID, len(info.NeighborIDs))
		}
		for i := 1; i < len(info.NeighborIDs); i++ {
			if info.NeighborIDs[i] <= info.NeighborIDs[i-1] {
				t.Error("neighbor ids not strictly ascending")
			}
		}
		return &inboxOrderMachine{}
	}
	if _, err := runtime.Run(runtime.Config{Graph: g, Factory: factory}); err != nil {
		t.Fatal(err)
	}
}

func TestCongestEnforcement(t *testing.T) {
	g := graph.Line(3)
	// Sized payloads within budget pass.
	res, err := runtime.Run(runtime.Config{
		Graph:          g,
		Factory:        echoFactory(2),
		MaxMessageBits: 16,
	})
	if err != nil {
		t.Fatalf("sized within budget: %v", err)
	}
	if res.MaxMsgBits != 16 {
		t.Errorf("MaxMsgBits = %d", res.MaxMsgBits)
	}
	// Sized payloads above budget abort.
	_, err = runtime.Run(runtime.Config{
		Graph:          g,
		Factory:        echoFactory(2),
		MaxMessageBits: 8,
	})
	if !errors.Is(err, runtime.ErrCongestViolation) {
		t.Errorf("over-budget: got %v, want ErrCongestViolation", err)
	}
	// Unsized payloads abort under any budget.
	_, err = runtime.Run(runtime.Config{
		Graph: g,
		Factory: func(info runtime.NodeInfo, pred any) runtime.Machine {
			return &unsizedMachine{}
		},
		MaxMessageBits: 1024,
	})
	if !errors.Is(err, runtime.ErrCongestViolation) {
		t.Errorf("unsized: got %v, want ErrCongestViolation", err)
	}
}

func TestCongestBudget(t *testing.T) {
	// The budget is 4·⌈log₂(max(n,d))⌉ with a one-bit floor for m < 2.
	cases := []struct{ m, want int }{
		{1, 4},     // floor: one bit
		{2, 4},     // ⌈log₂ 2⌉ = 1
		{3, 8},     // ⌈log₂ 3⌉ = 2
		{4, 8},     // ⌈log₂ 4⌉ = 2 (power of two: not 3)
		{1023, 40}, // ⌈log₂ 1023⌉ = 10
		{1024, 40}, // ⌈log₂ 1024⌉ = 10 (power of two: not 11)
		{1025, 44}, // ⌈log₂ 1025⌉ = 11
	}
	for _, c := range cases {
		if b := runtime.CongestBudget(c.m, 1); b != c.want {
			t.Errorf("CongestBudget(%d, 1) = %d, want %d", c.m, b, c.want)
		}
		// The budget depends on max(n, d) only: passing m as the id domain
		// with a tiny n must agree.
		if b := runtime.CongestBudget(1, c.m); b != c.want {
			t.Errorf("CongestBudget(1, %d) = %d, want %d", c.m, b, c.want)
		}
	}
	if b := runtime.CongestBudget(2, 100000); b != 4*17 {
		t.Errorf("CongestBudget uses max(n, d): got %d, want 68", b)
	}
}

func TestCrashRoundValidation(t *testing.T) {
	g := graph.Line(3)
	for _, bad := range []int{0, -1, -100} {
		_, err := runtime.Run(runtime.Config{
			Graph:   g,
			Factory: echoFactory(2),
			Crashes: map[int]int{1: bad},
		})
		if err == nil {
			t.Errorf("crash round %d accepted; want config error", bad)
		}
	}
	// Round 1 is the earliest legal crash: the node does nothing at all.
	res, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: echoFactory(2),
		Crashes: map[int]int{1: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != nil || res.TerminatedAt[1] != 0 {
		t.Errorf("round-1 crash: output %v at %d; want none", res.Outputs[1], res.TerminatedAt[1])
	}
}

// silentMachine terminates in round 1 without sending anything.
type silentMachine struct{}

func (m *silentMachine) Send(env *runtime.Env) []runtime.Out {
	env.Output("done")
	env.Terminate()
	return nil
}

func (m *silentMachine) Receive(env *runtime.Env, inbox []runtime.Msg) {}

func TestMaxMsgBitsZeroMessages(t *testing.T) {
	// A run that delivers no messages has observed no sized payload; it must
	// report -1 (unknown/LOCAL-only), not 0, which would wrongly claim every
	// payload fit in zero bits.
	res, err := runtime.Run(runtime.Config{
		Graph:   graph.Line(3),
		Factory: func(runtime.NodeInfo, any) runtime.Machine { return &silentMachine{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Fatalf("messages = %d, want 0", res.Messages)
	}
	if res.MaxMsgBits != -1 {
		t.Errorf("MaxMsgBits = %d, want -1 for a zero-message run", res.MaxMsgBits)
	}
}

// TestRandomizedParityWithCrashes is the fuzz-style engine-parity test:
// random G(n,p) topologies and random crash schedules must produce identical
// rounds, outputs, and termination schedules in both engine modes.
func TestRandomizedParityWithCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(56)
		g := graph.GNP(n, 0.05+rng.Float64()*0.3, rng)
		limit := 1 + rng.Intn(5)
		crashes := map[int]int{}
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.2 {
				crashes[i] = 1 + rng.Intn(limit+2)
			}
		}
		run := func(parallel bool) *runtime.Result {
			res, err := runtime.Run(runtime.Config{
				Graph:    g,
				Factory:  echoFactory(limit),
				Crashes:  crashes,
				Parallel: parallel,
			})
			if err != nil {
				t.Fatalf("trial %d parallel=%v: %v", trial, parallel, err)
			}
			return res
		}
		seq, par := run(false), run(true)
		if seq.Rounds != par.Rounds || seq.Messages != par.Messages || seq.MaxMsgBits != par.MaxMsgBits {
			t.Fatalf("trial %d: engines disagree: %+v vs %+v", trial, seq, par)
		}
		for i := range seq.Outputs {
			if seq.Outputs[i] != par.Outputs[i] {
				t.Fatalf("trial %d node %d: outputs differ: %v vs %v", trial, i, seq.Outputs[i], par.Outputs[i])
			}
			if seq.TerminatedAt[i] != par.TerminatedAt[i] {
				t.Fatalf("trial %d node %d: terminated at %d vs %d", trial, i, seq.TerminatedAt[i], par.TerminatedAt[i])
			}
		}
	}
}

// TestRandomizedAdversaryParity extends the parity fuzz with randomized
// chaos policies (drop/duplicate/corrupt/link-fail/crash): for every policy
// the two engine modes must produce byte-for-byte identical results —
// including identical error surfaces when machines reject corrupted
// payloads — and the adversary must inject the identical fault sequence.
func TestRandomizedAdversaryParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(46)
		g := graph.GNP(n, 0.05+rng.Float64()*0.3, rng)
		limit := 1 + rng.Intn(5)
		policy := fault.Policy{
			Seed:      rng.Int63(),
			Drop:      rng.Float64() * 0.3,
			Duplicate: rng.Float64() * 0.3,
			Corrupt:   rng.Float64() * 0.3,
			LinkFail:  rng.Float64() * 0.2,
			Crash:     rng.Float64() * 0.2,
		}
		// Half the trials use a machine that fails on corrupted payloads, so
		// the fuzz also covers per-node error parity across modes.
		factory := echoFactory(limit)
		if trial%2 == 0 {
			factory = func(info runtime.NodeInfo, pred any) runtime.Machine {
				return &fragileMachine{echoMachine{limit: limit}}
			}
		}
		run := func(parallel bool) (*runtime.Result, error, fault.Stats) {
			chaos := fault.New(policy)
			res, err := runtime.Run(runtime.Config{
				Graph:     g,
				Factory:   factory,
				Parallel:  parallel,
				Adversary: chaos,
			})
			return res, err, chaos.Stats()
		}
		seq, seqErr, seqStats := run(false)
		par, parErr, parStats := run(true)
		if seqStats != parStats {
			t.Fatalf("trial %d: fault sequences differ across modes: %+v vs %+v", trial, seqStats, parStats)
		}
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("trial %d: error surfaces differ: %v vs %v", trial, seqErr, parErr)
		}
		if seqErr != nil {
			if seqErr.Error() != parErr.Error() {
				t.Fatalf("trial %d: errors differ:\n  seq: %v\n  par: %v", trial, seqErr, parErr)
			}
			continue
		}
		if seq.Rounds != par.Rounds || seq.Messages != par.Messages || seq.MaxMsgBits != par.MaxMsgBits {
			t.Fatalf("trial %d: engines disagree: %+v vs %+v", trial, seq, par)
		}
		for i := range seq.Outputs {
			if seq.Outputs[i] != par.Outputs[i] {
				t.Fatalf("trial %d node %d: outputs differ: %v vs %v", trial, i, seq.Outputs[i], par.Outputs[i])
			}
			if seq.TerminatedAt[i] != par.TerminatedAt[i] {
				t.Fatalf("trial %d node %d: terminated at %d vs %d", trial, i, seq.TerminatedAt[i], par.TerminatedAt[i])
			}
		}
	}
}
