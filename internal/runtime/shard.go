package runtime

// This file hosts the shard supervisor behind Config.Shards: S independent
// shard engines ("lanes"), each owning a disjoint slice of the frontier, its
// own inbox arena, and (in Parallel mode) its own worker pool, exchanging
// boundary-edge message batches at the round barrier over the typed-channel
// fabric in internal/shard.
//
// The determinism contract — results, error surfaces, and trace streams
// byte-identical for every shard count — rests on a strict division of
// labor between the supervisor (Run's goroutine) and the lanes:
//
//   - Everything order-sensitive stays serial on the supervisor: the
//     counting pass walks senders in global ascending-identifier order, so
//     the adversary sees the exact call sequence of the single-engine
//     router, the ledgers and EvBatch/EvFault events accrue identically,
//     and every delivery's arena slot (destination region + within-region
//     cursor) is fixed before any lane moves a byte.
//   - Everything embarrassingly parallel fans out to the lanes: the machine
//     send/receive phases, and the placement pass, where each lane replays
//     its own senders' recorded fates, writes local deliveries straight
//     into its own arena, and ships boundary deliveries — slot included —
//     to the owning lane. Lanes write only their own arenas, so placement
//     needs no locks, and because slots were assigned serially, the arena
//     contents come out byte-identical to the single-engine layout no
//     matter how the exchange interleaves.
//
// A 1-shard run degenerates to the single-engine code path (legacy route,
// global arena) dispatched through one lane, which is what makes the
// 1-shard ≡ seq half of the parity contract exact rather than merely
// equivalent.

import (
	"runtime"

	"repro/internal/obs"
	"repro/internal/shard"
)

// slotMsg is one boundary delivery in flight between lanes: the message and
// its precomputed slot in the destination lane's arena. Slots are assigned
// during the serial counting pass, so the receiving lane writes each
// message straight to its place with no per-message coordination.
type slotMsg struct {
	slot int32
	msg  Msg
}

// laneCmd is one unit of work dispatched to a lane runner: a machine phase
// to run over the lane's frontier, or (nil phase) the placement pass.
type laneCmd struct {
	phase func(int)
}

// laneState is one shard engine. The lane owns the shard's compact active
// lists, its inbox arena, the replay streams for messages its nodes sent,
// its boundary staging buffers, and a runner goroutine (plus an optional
// inner worker pool) driven by the supervisor's command channel.
type laneState struct {
	st *state
	id int32
	// actByIdx/actByID are the lane's active lists — the subsequences of the
	// global lists owned by this shard, maintained in the same two orders
	// (node index for phase dispatch and arena layout, identifier for
	// routing replay).
	actByIdx []int32
	actByID  []int32
	// inbox is the lane-local arena; inMsgs the slice acquired for the
	// round. The global inOff/inFill carve it into per-node regions.
	inbox  msgSlab
	inMsgs []Msg
	// total is the lane's delivery count for the round (set by counting).
	total int
	// fateCopies/fateSwap replay the adversary's verdicts for messages sent
	// by this lane's nodes; within replays each surviving message's
	// destination-region cursor. All three are appended by the supervisor's
	// serial counting pass and consumed by this lane's placement pass.
	fateCopies []int32
	fateSwap   []Payload
	within     []int32
	// outB[d] stages boundary deliveries for lane d, reused across rounds
	// (refilled only after the next round's counting barrier, per the
	// Exchange handover contract).
	outB [][]slotMsg
	// cmds drives the runner; the supervisor waits on st.laneDone after each
	// dispatch wave — that wait is the intra-round barrier.
	cmds chan laneCmd
	// pool is the lane's inner worker pool (Parallel mode; nil otherwise).
	pool *workerPool
}

// initLanes attaches the shard supervisor to a fresh state: one lane per
// shard with its own active lists, arena, and runner goroutine, plus the
// exchange fabric and per-shard ledgers for multi-shard runs. In Parallel
// mode each lane gets an inner pool splitting GOMAXPROCS.
func (st *state) initLanes(part *shard.Partition) {
	s := part.S
	st.laneOf = part.Of
	st.lanes = make([]*laneState, s)
	st.laneDone = make(chan struct{}, s)
	if s > 1 {
		st.exch = shard.NewExchange[slotMsg](s)
		st.shardStats = make([]ShardRoundStats, s)
	}
	workers := 0
	if st.cfg.Parallel {
		workers = (runtime.GOMAXPROCS(0) + s - 1) / s
	}
	for sh := 0; sh < s; sh++ {
		nodes := part.Nodes[sh]
		ls := &laneState{st: st, id: int32(sh), cmds: make(chan laneCmd, 1)}
		ls.actByIdx = make([]int32, len(nodes))
		copy(ls.actByIdx, nodes)
		ls.actByID = make([]int32, 0, len(nodes))
		if s > 1 {
			ls.outB = make([][]slotMsg, s)
		}
		if workers > 1 {
			ls.pool = newWorkerPoolN(len(nodes), workers)
		}
		st.lanes[sh] = ls
		go ls.run()
	}
	// The lanes' identifier-order lists are the global list filtered by
	// owner, preserving the global order within each lane.
	for _, si := range st.actByID {
		ls := st.lanes[st.laneOf[si]]
		ls.actByID = append(ls.actByID, si)
	}
}

// closeLanes shuts the lane runners and their pools down. Callable only
// between barriers (no command in flight); Run skips it after a deadline
// abort, which may have left the dispatching goroutine mid-send.
func (st *state) closeLanes() {
	for _, ls := range st.lanes {
		close(ls.cmds)
		if ls.pool != nil {
			ls.pool.close()
		}
	}
}

// run is the lane's runner goroutine: it executes dispatched machine phases
// over the lane's frontier (on the inner pool when present) and the
// placement pass, signalling the supervisor's barrier after each command.
func (ls *laneState) run() {
	for cmd := range ls.cmds {
		if cmd.phase != nil {
			if ls.pool != nil {
				ls.pool.run(cmd.phase, ls.actByIdx)
			} else {
				for _, si := range ls.actByIdx {
					cmd.phase(int(si))
				}
			}
		} else {
			ls.place()
		}
		ls.st.laneDone <- struct{}{}
	}
}

// lanePhase runs one machine phase on every lane concurrently and waits for
// all of them — the sharded engine's phase barrier.
//
//dgp:hotpath
func (st *state) lanePhase(phase func(int)) {
	for _, ls := range st.lanes {
		ls.cmds <- laneCmd{phase: phase}
	}
	for range st.lanes {
		<-st.laneDone
	}
}

// compactLanes drops settled nodes from every lane's active lists,
// mirroring beginRound's global compaction. O(live frontier) per round.
//
//dgp:hotpath
func (st *state) compactLanes() {
	for _, ls := range st.lanes {
		k := 0
		for _, si := range ls.actByIdx {
			if st.frontier.test(int(si)) {
				ls.actByIdx[k] = si
				k++
			}
		}
		ls.actByIdx = ls.actByIdx[:k]
		k = 0
		for _, si := range ls.actByID {
			if st.frontier.test(int(si)) {
				ls.actByID[k] = si
				k++
			}
		}
		ls.actByID = ls.actByID[:k]
	}
}

// routeSharded is the multi-shard router: the serial counting pass of the
// single-engine route (identical adversary calls, ledgers, and events) plus
// slot assignment and per-shard ledgers, then per-lane offsets, then the
// concurrent placement-and-exchange pass on the lanes. See the file comment
// for why this split preserves byte-identical arenas and traces.
//
//dgp:hotpath
func (st *state) routeSharded(round int, res *Result) {
	st.roundMsgs, st.roundBits = 0, 0
	st.roundDropped, st.roundDroppedBits = 0, 0
	st.roundInjected, st.roundInjectedBits = 0, 0
	st.roundCorrupted = 0
	for k := range st.shardStats {
		st.shardStats[k] = ShardRoundStats{}
	}
	for _, ls := range st.lanes {
		clear(ls.fateSwap)
		ls.fateCopies = ls.fateCopies[:0]
		ls.fateSwap = ls.fateSwap[:0]
		ls.within = ls.within[:0]
		ls.total = 0
	}
	adv := st.cfg.Adversary
	tr := st.trace
	for _, si := range st.actByID {
		i := int(si)
		e := &st.envs[i]
		from := e.info.ID
		sl := st.lanes[st.laneOf[i]]
		batchMsgs, batchBits := 0, 0
		if e.bcastSet {
			payload := e.bcast
			dsts := st.csrNbr[st.csrOff[i]:st.csrOff[i+1]]
			if adv == nil {
				delivered := 0
				for _, dj := range dsts {
					j := int(dj)
					if !st.frontier.test(j) || st.terminatedThisSend[j] {
						continue
					}
					st.countShard(sl, j, 1, payload)
					delivered++
				}
				if delivered > 0 {
					st.account(payload, delivered, &batchMsgs, &batchBits, res)
				}
			} else {
				for _, dj := range dsts {
					j := int(dj)
					if !st.frontier.test(j) || st.terminatedThisSend[j] {
						continue
					}
					copies, pl := st.consultAdversaryLane(sl, round, from, j, payload, res, tr)
					if copies == 0 {
						continue
					}
					st.countShard(sl, j, copies, pl)
					st.account(pl, copies, &batchMsgs, &batchBits, res)
				}
			}
		} else {
			outs := e.outs
			for k := range outs {
				j := int(e.dst[k])
				if !st.frontier.test(j) || st.terminatedThisSend[j] {
					continue
				}
				payload := outs[k].Payload
				copies := 1
				if adv != nil {
					copies, payload = st.consultAdversaryLane(sl, round, from, j, payload, res, tr)
					if copies == 0 {
						continue
					}
				}
				st.countShard(sl, j, copies, payload)
				st.account(payload, copies, &batchMsgs, &batchBits, res)
			}
		}
		st.roundMsgs += batchMsgs
		st.roundBits += batchBits
		if tr != nil && batchMsgs > 0 {
			tr.Emit(obs.Event{Type: obs.EvBatch, Round: round, Node: from, Value: int64(batchMsgs), Aux: int64(batchBits)})
		}
	}

	// Offsets: per-lane prefix sums over each lane's frontier carve each
	// lane's arena; region layout within a lane matches the single-engine
	// layout restricted to the lane's nodes.
	for _, ls := range st.lanes {
		ls.inMsgs = ls.inbox.acquire(ls.total)
		cur := int32(0)
		for _, si := range ls.actByIdx {
			i := int(si)
			st.inOff[i] = cur
			cur += st.inCnt[i]
			st.inFill[i] = cur
			st.inCnt[i] = 0
		}
	}

	// Placement and exchange: every lane concurrently replays its senders'
	// fates and fills the arenas (laneCmd zero value selects place).
	for _, ls := range st.lanes {
		ls.cmds <- laneCmd{}
	}
	for range st.lanes {
		<-st.laneDone
	}

	st.emitShardLedgers(round)
}

// countShard books one surviving message during the sharded counting pass:
// the slot cursor for the sender's replay stream, the destination's region
// count and lane total, and the per-shard delivered/injected/boundary
// ledgers.
//
//dgp:hotpath
func (st *state) countShard(src *laneState, j, copies int, payload Payload) {
	dst := st.laneOf[j]
	src.within = append(src.within, st.inCnt[j])
	st.inCnt[j] += int32(copies)
	st.lanes[dst].total += copies
	b := 0
	if bs, ok := payload.(BitSized); ok && bs.Bits() > 0 {
		b = bs.Bits()
	}
	ss := &st.shardStats[dst]
	ss.Delivered += copies
	ss.DeliveredBits += copies * b
	if copies > 1 {
		ss.Injected += copies - 1
		ss.InjectedBits += (copies - 1) * b
	}
	if dst != src.id {
		out := &st.shardStats[src.id]
		out.BoundaryOut += copies
		out.BoundaryOutBits += copies * b
	}
}

// consultAdversaryLane is consultAdversary recording the fate into the
// sending lane's replay stream instead of the global one.
//
//dgp:hotpath
func (st *state) consultAdversaryLane(ls *laneState, round, from, j int, payload Payload, res *Result, tr *obs.Recorder) (int, Payload) {
	copies, pl, swap := st.interceptFate(round, from, j, payload, res, tr)
	if copies == 0 {
		ls.fateCopies = append(ls.fateCopies, 0)
		ls.fateSwap = append(ls.fateSwap, nil)
		return 0, nil
	}
	ls.fateCopies = append(ls.fateCopies, int32(copies))
	ls.fateSwap = append(ls.fateSwap, swap)
	return copies, pl
}

// place is the lane's placement-and-exchange pass: replay the counting
// pass's verdicts over this lane's senders, write local deliveries straight
// into the lane arena, stage boundary deliveries per destination lane, then
// post the batches and drain the inbound ones into their precomputed slots.
// Runs concurrently across lanes; each lane writes only its own arena.
//
//dgp:hotpath
func (ls *laneState) place() {
	st := ls.st
	for d := range ls.outB {
		// Stale slotMsgs hold payload references; release them before
		// truncating, exactly like the arena's stale-tail clear.
		clear(ls.outB[d])
		ls.outB[d] = ls.outB[d][:0]
	}
	adv := st.cfg.Adversary != nil
	fi, wi := 0, 0
	for _, si := range ls.actByID {
		i := int(si)
		e := &st.envs[i]
		from := e.info.ID
		if e.bcastSet {
			payload := e.bcast
			dsts := st.csrNbr[st.csrOff[i]:st.csrOff[i+1]]
			for _, dj := range dsts {
				j := int(dj)
				if !st.frontier.test(j) || st.terminatedThisSend[j] {
					continue
				}
				pl := payload
				copies := 1
				if adv {
					copies = int(ls.fateCopies[fi])
					if swap := ls.fateSwap[fi]; swap != nil {
						pl = swap
					}
					fi++
					if copies == 0 {
						continue
					}
				}
				wi = ls.deliver(j, Msg{From: from, Payload: pl}, copies, wi)
			}
		} else {
			outs := e.outs
			for k := range outs {
				j := int(e.dst[k])
				if !st.frontier.test(j) || st.terminatedThisSend[j] {
					continue
				}
				pl := outs[k].Payload
				copies := 1
				if adv {
					copies = int(ls.fateCopies[fi])
					if swap := ls.fateSwap[fi]; swap != nil {
						pl = swap
					}
					fi++
					if copies == 0 {
						continue
					}
				}
				wi = ls.deliver(j, Msg{From: from, Payload: pl}, copies, wi)
			}
		}
	}
	self := int(ls.id)
	for d := range st.lanes {
		if d != self {
			st.exch.Post(self, d, ls.outB[d])
		}
	}
	for _, b := range st.exch.Collect(self) {
		for _, sm := range b.Msgs {
			ls.inMsgs[sm.slot] = sm.msg
		}
	}
}

// deliver writes copies of m for destination j at the slot the counting
// pass recorded for this sender stream — directly into the lane arena when
// j is local, staged for the boundary exchange otherwise. Returns the
// advanced within-cursor.
//
//dgp:hotpath
func (ls *laneState) deliver(j int, m Msg, copies, wi int) int {
	st := ls.st
	slot := st.inOff[j] + ls.within[wi]
	wi++
	if d := st.laneOf[j]; d != ls.id {
		ob := ls.outB[d]
		for c := 0; c < copies; c++ {
			ob = append(ob, slotMsg{slot: slot, msg: m})
			slot++
		}
		ls.outB[d] = ob
		return wi
	}
	for c := 0; c < copies; c++ {
		ls.inMsgs[slot] = m
		slot++
	}
	return wi
}

// emitShardLedgers publishes the round's per-shard ledgers as
// EvShardExchange events, shards ascending, skipping zero entries: one
// "delivered" (and "injected" under duplication) event per shard that
// received traffic, one "boundary" per shard that exported any. Emitted
// from the supervisor strictly after the placement barrier.
func (st *state) emitShardLedgers(round int) {
	if st.trace == nil {
		return
	}
	for s := range st.shardStats {
		ss := &st.shardStats[s]
		if ss.Delivered > 0 {
			st.trace.Emit(obs.Event{Type: obs.EvShardExchange, Round: round, Node: s, Name: "delivered", Value: int64(ss.Delivered), Aux: int64(ss.DeliveredBits)})
		}
		if ss.Injected > 0 {
			st.trace.Emit(obs.Event{Type: obs.EvShardExchange, Round: round, Node: s, Name: "injected", Value: int64(ss.Injected), Aux: int64(ss.InjectedBits)})
		}
		if ss.BoundaryOut > 0 {
			st.trace.Emit(obs.Event{Type: obs.EvShardExchange, Round: round, Node: s, Name: "boundary", Value: int64(ss.BoundaryOut), Aux: int64(ss.BoundaryOutBits)})
		}
	}
}
