package runtime_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/runtime/fault"
	"repro/internal/shard"
)

// shardRun executes one configuration and captures everything the parity
// contract covers: result, error surface, chaos fault sequence, and trace.
func shardRun(t *testing.T, g *graph.Graph, factory runtime.Factory, policy *fault.Policy, shards int, part *shard.Partition, parallel bool) (*runtime.Result, error, fault.Stats, []obs.Event) {
	t.Helper()
	rec := obs.NewRecorder(1 << 15)
	cfg := runtime.Config{
		Graph:     g,
		Factory:   factory,
		Parallel:  parallel,
		Shards:    shards,
		Partition: part,
		Trace:     rec,
	}
	var stats fault.Stats
	if policy != nil {
		chaos := fault.New(*policy)
		cfg.Adversary = chaos
		defer func() { stats = chaos.Stats() }()
	}
	res, err := runtime.Run(cfg)
	if policy != nil {
		// Stats are read after Run so the deferred capture above is not
		// needed; keep the direct read for clarity.
		stats = cfg.Adversary.(*fault.Chaos).Stats()
	}
	return res, err, stats, rec.Events()
}

// dropShardEvents filters the shard-count-dependent ledger events out of a
// stream — the documented exemption in the cross-shard trace contract.
func dropShardEvents(events []obs.Event) []obs.Event {
	out := make([]obs.Event, 0, len(events))
	for _, e := range events {
		if e.Type != obs.EvShardExchange {
			out = append(out, e)
		}
	}
	return out
}

// assertShardParity compares a sharded run against the single-engine
// reference on every axis of the contract.
func assertShardParity(t *testing.T, label string, refRes *runtime.Result, refErr error, refStats fault.Stats, refTrace []obs.Event,
	res *runtime.Result, err error, stats fault.Stats, trace []obs.Event) {
	t.Helper()
	if stats != refStats {
		t.Fatalf("%s: fault sequences differ: %+v vs %+v", label, stats, refStats)
	}
	if (err == nil) != (refErr == nil) {
		t.Fatalf("%s: error surfaces differ: %v vs %v", label, err, refErr)
	}
	if err != nil {
		if err.Error() != refErr.Error() {
			t.Fatalf("%s: errors differ:\n  sharded: %v\n  ref:     %v", label, err, refErr)
		}
		return
	}
	if res.Rounds != refRes.Rounds || res.Messages != refRes.Messages ||
		res.MaxMsgBits != refRes.MaxMsgBits || res.Dropped != refRes.Dropped ||
		res.DroppedBits != refRes.DroppedBits || res.Injected != refRes.Injected ||
		res.Corrupted != refRes.Corrupted {
		t.Fatalf("%s: results differ:\n  sharded: %+v\n  ref:     %+v", label, res, refRes)
	}
	for i := range refRes.Outputs {
		if res.Outputs[i] != refRes.Outputs[i] {
			t.Fatalf("%s: node %d output %v vs %v", label, i, res.Outputs[i], refRes.Outputs[i])
		}
		if res.TerminatedAt[i] != refRes.TerminatedAt[i] {
			t.Fatalf("%s: node %d terminated at %d vs %d", label, i, res.TerminatedAt[i], refRes.TerminatedAt[i])
		}
	}
	if idx, desc, ok := obs.Diff(obs.Canonical(dropShardEvents(trace)), obs.Canonical(dropShardEvents(refTrace))); !ok {
		t.Fatalf("%s: traces diverge at event %d: %s", label, idx, desc)
	}
}

// TestShardParityDeterministic pins the tentpole contract on fixed seeds:
// for rings, random graphs, and scale-free graphs, with and without a chaos
// adversary and with both phase-execution modes, every shard count in
// {1, 2, 4, 8} reproduces the single-engine run byte for byte — results,
// fault sequences, error surfaces, and trace streams (shard ledger events
// excepted).
func TestShardParityDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	graphs := map[string]*graph.Graph{
		"ring":  graph.Ring(64),
		"gnp":   graph.GNP(50, 0.15, rng),
		"ba":    graph.BarabasiAlbert(60, 3, rng),
		"star":  graph.Star(33),
		"small": graph.Line(3),
	}
	chaos := &fault.Policy{Seed: 5, Drop: 0.15, Duplicate: 0.15, Corrupt: 0.1, LinkFail: 0.1, Crash: 0.1}
	for name, g := range graphs {
		for _, policy := range []*fault.Policy{nil, chaos} {
			for _, parallel := range []bool{false, true} {
				label := fmt.Sprintf("%s/chaos=%v/parallel=%v", name, policy != nil, parallel)
				refRes, refErr, refStats, refTrace := shardRun(t, g, echoFactory(3), policy, 0, nil, false)
				for _, s := range []int{1, 2, 4, 8} {
					res, err, stats, trace := shardRun(t, g, echoFactory(3), policy, s, nil, parallel)
					assertShardParity(t, fmt.Sprintf("%s/shards=%d", label, s),
						refRes, refErr, refStats, refTrace, res, err, stats, trace)
				}
			}
		}
	}
}

// TestShardSingleExactTrace pins the stronger 1-shard half of the contract:
// a 1-shard run takes the single-engine routing path, so its trace is
// identical to the sequential engine's without any filtering — it contains
// no shard ledger events at all.
func TestShardSingleExactTrace(t *testing.T) {
	g := graph.GNP(40, 0.2, rand.New(rand.NewSource(3)))
	policy := &fault.Policy{Seed: 11, Drop: 0.2, Duplicate: 0.2, Corrupt: 0.1}
	_, refErr, _, refTrace := shardRun(t, g, echoFactory(4), policy, 0, nil, false)
	_, err, _, trace := shardRun(t, g, echoFactory(4), policy, 1, nil, false)
	if (err == nil) != (refErr == nil) {
		t.Fatalf("error surfaces differ: %v vs %v", err, refErr)
	}
	for _, e := range trace {
		if e.Type == obs.EvShardExchange {
			t.Fatal("1-shard run emitted a shard ledger event")
		}
	}
	if idx, desc, ok := obs.Diff(obs.Canonical(trace), obs.Canonical(refTrace)); !ok {
		t.Fatalf("unfiltered traces diverge at event %d: %s", idx, desc)
	}
}

// TestShardGreedyPartitionParity runs the contract over the seeded greedy
// edge-cut partitioner: an arbitrary (balanced) node→shard assignment must
// not change any observable either.
func TestShardGreedyPartitionParity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.BarabasiAlbert(80, 2, rng)
	off, adj := g.CSR()
	policy := &fault.Policy{Seed: 21, Drop: 0.1, Duplicate: 0.2, Corrupt: 0.1, Crash: 0.1}
	refRes, refErr, refStats, refTrace := shardRun(t, g, echoFactory(3), policy, 0, nil, false)
	for _, s := range []int{2, 4, 8} {
		part := shard.GreedyEdgeCut(g.N(), off, adj, s, 1234)
		if err := part.Validate(g.N()); err != nil {
			t.Fatal(err)
		}
		res, err, stats, trace := shardRun(t, g, echoFactory(3), policy, 0, part, true)
		assertShardParity(t, fmt.Sprintf("greedy/shards=%d", s),
			refRes, refErr, refStats, refTrace, res, err, stats, trace)
	}
}

// TestShardErrorSurfaceParity checks that per-node failures (a machine
// rejecting corrupted payloads) surface the identical first error from
// every shard count.
func TestShardErrorSurfaceParity(t *testing.T) {
	g := graph.GNP(45, 0.25, rand.New(rand.NewSource(8)))
	policy := &fault.Policy{Seed: 13, Corrupt: 0.5}
	fragile := func(info runtime.NodeInfo, pred any) runtime.Machine {
		return &fragileMachine{echoMachine{limit: 3}}
	}
	_, refErr, refStats, _ := shardRun(t, g, fragile, policy, 0, nil, false)
	if refErr == nil {
		t.Fatal("reference run surfaced no error; the case exercises nothing")
	}
	for _, s := range []int{1, 2, 4, 8} {
		_, err, stats, _ := shardRun(t, g, fragile, policy, s, nil, true)
		if err == nil || err.Error() != refErr.Error() {
			t.Fatalf("shards=%d: error %q, want %q", s, err, refErr)
		}
		if stats != refStats {
			t.Fatalf("shards=%d: fault sequences differ: %+v vs %+v", s, stats, refStats)
		}
	}
}

// TestShardRoundStatsLedgers checks the per-shard delivery ledgers: they
// appear exactly on multi-shard runs, their delivered/injected columns sum
// to the round's global ledger, and boundary traffic is bounded by the
// partition's cut (times the duplication factor when an adversary runs).
func TestShardRoundStatsLedgers(t *testing.T) {
	g := graph.Ring(48)
	const s = 4
	var rounds []runtime.RoundStats
	res, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: echoFactory(3),
		Shards:  s,
		Stats: func(rs runtime.RoundStats) {
			cp := rs
			cp.Shards = append([]runtime.ShardRoundStats(nil), rs.Shards...)
			rounds = append(rounds, cp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	part := shard.Contiguous(g.N(), s)
	off, adj := g.CSR()
	cut := part.CutEdges(off, adj)
	totalDelivered := 0
	for _, rs := range rounds {
		if len(rs.Shards) != s {
			t.Fatalf("round %d: %d shard ledgers, want %d", rs.Round, len(rs.Shards), s)
		}
		delivered, injected, boundary := 0, 0, 0
		deliveredBits := 0
		for _, ss := range rs.Shards {
			delivered += ss.Delivered
			deliveredBits += ss.DeliveredBits
			injected += ss.Injected
			boundary += ss.BoundaryOut
		}
		if delivered != rs.Messages {
			t.Fatalf("round %d: shard ledgers deliver %d, round says %d", rs.Round, delivered, rs.Messages)
		}
		if deliveredBits != rs.Bits {
			t.Fatalf("round %d: shard ledgers carry %d bits, round says %d", rs.Round, deliveredBits, rs.Bits)
		}
		if injected != rs.Injected {
			t.Fatalf("round %d: shard ledgers inject %d, round says %d", rs.Round, injected, rs.Injected)
		}
		if boundary > cut {
			t.Fatalf("round %d: %d boundary messages exceed the %d-edge cut", rs.Round, boundary, cut)
		}
		totalDelivered += delivered
	}
	if totalDelivered != res.Messages {
		t.Fatalf("ledger total %d, result says %d", totalDelivered, res.Messages)
	}

	// Single-shard runs keep the global ledgers only.
	runtimeStatsSeen := false
	_, err = runtime.Run(runtime.Config{
		Graph:   g,
		Factory: echoFactory(2),
		Shards:  1,
		Stats: func(rs runtime.RoundStats) {
			runtimeStatsSeen = true
			if rs.Shards != nil {
				t.Fatal("1-shard run reported per-shard ledgers")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !runtimeStatsSeen {
		t.Fatal("stats callback never ran")
	}
}

// TestShardLedgerTraceExport checks the observability half of the ledger
// satellite: EvShardExchange events aggregate into per-shard Prometheus
// counters.
func TestShardLedgerTraceExport(t *testing.T) {
	g := graph.Ring(32)
	rec := obs.NewRecorder(1 << 14)
	if _, err := runtime.Run(runtime.Config{
		Graph:   g,
		Factory: echoFactory(2),
		Shards:  4,
		Trace:   rec,
	}); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	seen := 0
	for _, e := range events {
		if e.Type == obs.EvShardExchange {
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("multi-shard traced run emitted no shard ledger events")
	}
	snap := obs.Aggregate(events).Snapshot()
	found := false
	for _, m := range snap.Counters {
		if m.Name == `dgp_shard_messages_total{shard="0",kind="delivered"}` && m.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("aggregated export lacks per-shard delivered counter; snapshot: %+v", snap)
	}
}

// TestShardConfigValidation pins the config error surfaces: negative shard
// counts, malformed partitions, and shard/partition disagreement are
// ErrConfig before the run starts.
func TestShardConfigValidation(t *testing.T) {
	g := graph.Ring(8)
	base := runtime.Config{Graph: g, Factory: echoFactory(1)}

	cfg := base
	cfg.Shards = -1
	if _, err := runtime.Run(cfg); !errors.Is(err, runtime.ErrConfig) {
		t.Fatalf("Shards=-1: %v, want ErrConfig", err)
	}

	cfg = base
	cfg.Shards = 2
	cfg.Partition = shard.Contiguous(8, 4)
	if _, err := runtime.Run(cfg); !errors.Is(err, runtime.ErrConfig) {
		t.Fatalf("Shards/Partition mismatch: %v, want ErrConfig", err)
	}

	cfg = base
	cfg.Partition = shard.Contiguous(6, 2) // wrong n
	if _, err := runtime.Run(cfg); !errors.Is(err, runtime.ErrConfig) {
		t.Fatalf("wrong-size partition: %v, want ErrConfig", err)
	}

	// Shards beyond n leaves some lanes empty but is legal.
	cfg = base
	cfg.Shards = 16
	if _, err := runtime.Run(cfg); err != nil {
		t.Fatalf("Shards > n: %v", err)
	}
}

// TestShardCrashParity exercises explicit crash schedules across shard
// counts: crashed nodes leave their lane's frontier exactly as they leave
// the global one.
func TestShardCrashParity(t *testing.T) {
	g := graph.Ring(40)
	crashes := map[int]int{3: 1, 11: 2, 12: 2, 39: 3}
	run := func(s int) (*runtime.Result, []obs.Event) {
		rec := obs.NewRecorder(1 << 14)
		res, err := runtime.Run(runtime.Config{
			Graph:   g,
			Factory: echoFactory(4),
			Crashes: crashes,
			Shards:  s,
			Trace:   rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, rec.Events()
	}
	refRes, refTrace := run(0)
	for _, s := range []int{1, 2, 4, 8} {
		res, trace := run(s)
		for i := range refRes.Outputs {
			if res.Outputs[i] != refRes.Outputs[i] || res.TerminatedAt[i] != refRes.TerminatedAt[i] {
				t.Fatalf("shards=%d: node %d diverges", s, i)
			}
		}
		if idx, desc, ok := obs.Diff(obs.Canonical(dropShardEvents(trace)), obs.Canonical(dropShardEvents(refTrace))); !ok {
			t.Fatalf("shards=%d: traces diverge at event %d: %s", s, idx, desc)
		}
	}
}
