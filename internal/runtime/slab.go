package runtime

// msgSlab is the engine's inbox arena: every round's deliveries live in one
// contiguous []Msg, carved into per-node regions by the precomputed offsets
// in state.inOff/inFill. Reusing one arena across rounds keeps steady-state
// rounds allocation-free, but naive truncate-don't-nil reuse has two leaks
// at scale:
//
//   - stale Msg slots beyond the current round's use keep their Payload
//     references alive, pinning arbitrary machine data;
//   - one dense round (a burst) grows the arena to its peak and the peak
//     capacity then stays resident for the rest of the run — at 10^6 nodes
//     a single all-broadcast round can pin gigabytes.
//
// acquire therefore clears the stale tail every round and applies a
// high-water shrink policy: capacity that exceeds slabShrinkFactor times the
// largest demand seen in the last slabShrinkWindow rounds is released and
// the arena is re-allocated at that high-water mark.
type msgSlab struct {
	arena []Msg
	// used is the slot count handed out by the previous acquire.
	used int
	// peak is the largest acquire seen in the current observation window;
	// ticks counts the rounds the window has been open.
	peak  int
	ticks int
}

const (
	// slabShrinkWindow is how many rounds a burst capacity survives before
	// the shrink policy reconsiders it.
	slabShrinkWindow = 32
	// slabShrinkFactor: capacity beyond factor x windowed-high-water is
	// released at the window boundary.
	slabShrinkFactor = 4
	// slabMinCap is the floor below which the arena is never shrunk.
	slabMinCap = 1024
)

// acquire returns a slice with room for exactly total messages, valid until
// the next acquire. Slots are either freshly allocated or recycled with any
// stale payload references beyond total cleared. acquire is on the round hot
// path; its two makes below are the deliberate exceptions — each fires only
// at a capacity boundary, never in steady state, and each carries a
// lint:allow explaining why.
//
//dgp:hotpath
func (s *msgSlab) acquire(total int) []Msg {
	if total > s.peak {
		s.peak = total
	}
	s.ticks++
	if s.ticks >= slabShrinkWindow {
		if want := s.peak * slabShrinkFactor; want < len(s.arena) && len(s.arena) > slabMinCap {
			next := s.peak
			if next < slabMinCap {
				next = slabMinCap
			}
			// Dropping the old arena releases both the excess slots and every
			// payload they still referenced.
			//lint:allow allocguard (shrink boundary: reallocating at the high-water mark is the whole point — it fires at most once per slabShrinkWindow rounds)
			s.arena = make([]Msg, next)
			s.used = 0
		}
		s.peak, s.ticks = total, 0
	}
	if total > len(s.arena) {
		// Grow with headroom; the old arena (and its stale references) is
		// dropped wholesale.
		//lint:allow allocguard (growth: amortized by the 25% headroom — steady-state rounds take the recycle branch and never reach this make)
		s.arena = make([]Msg, total+total/4)
	} else {
		for i := total; i < s.used; i++ {
			s.arena[i] = Msg{}
		}
	}
	s.used = total
	return s.arena[:total]
}

// capacity reports the arena's current slot capacity (test hook for the
// shrink policy).
func (s *msgSlab) capacity() int { return len(s.arena) }
