package runtime

import (
	gort "runtime"
	"testing"

	"repro/internal/graph"
)

// The slab tests pin the inbox arena's two scale-exposed fixes: stale slots
// beyond the current round must not pin payload references, and a one-round
// burst must not keep its peak capacity resident for the rest of the run.

func TestSlabClearsStaleSlots(t *testing.T) {
	var s msgSlab
	big := s.acquire(5)
	for i := range big {
		big[i] = Msg{From: i, Payload: make([]byte, 8)}
	}
	small := s.acquire(2)
	if len(small) != 2 {
		t.Fatalf("acquire(2) returned %d slots", len(small))
	}
	// The two live slots keep their (recycled) contents until overwritten;
	// everything beyond them must have been zeroed so the engine cannot pin
	// last round's payloads.
	for i := 2; i < 5; i++ {
		if s.arena[i].Payload != nil || s.arena[i].From != 0 {
			t.Errorf("stale slot %d not cleared: %+v", i, s.arena[i])
		}
	}
}

func TestSlabShrinksAfterBurst(t *testing.T) {
	var s msgSlab
	const burst = 200_000
	s.acquire(burst)
	if s.capacity() < burst {
		t.Fatalf("capacity %d after burst acquire(%d)", s.capacity(), burst)
	}
	// Steady state after the burst: the burst's peak survives one full
	// observation window (it is the windowed high-water mark), then the next
	// window measures only the steady demand and the policy releases the
	// excess.
	for i := 0; i < 2*slabShrinkWindow; i++ {
		got := s.acquire(10)
		if len(got) != 10 {
			t.Fatalf("acquire(10) returned %d slots", len(got))
		}
	}
	if s.capacity() > slabMinCap {
		t.Errorf("capacity %d still resident after %d steady rounds; want <= %d",
			s.capacity(), 2*slabShrinkWindow, slabMinCap)
	}
}

// burstMachine floods every neighbor in round 1 and then goes quiet until
// quitRound: the engine's inbox arena grows to the burst in round 1 and must
// have released it again by the end of the quiet stretch.
type burstMachine struct {
	quitRound int
}

func (m *burstMachine) Send(env *Env) []Out {
	switch {
	case env.Round() == 1:
		env.Broadcast(0)
	case env.Round() >= m.quitRound:
		env.Output(true)
		env.Terminate()
	}
	return nil
}

func (m *burstMachine) Receive(env *Env, inbox []Msg) {}

func TestEngineReleasesBurstMemory(t *testing.T) {
	// Clique on 512 nodes: the round-1 all-broadcast delivers 512*511
	// messages (~6 MB of Msg slots); afterwards no messages flow. The
	// shrink policy needs two observation windows to let the burst peak age
	// out, so the quiet stretch runs well past 2*slabShrinkWindow rounds.
	const n = 512
	quit := 2*slabShrinkWindow + 8
	g := graph.Clique(n)
	slab := make([]burstMachine, n)
	heapAt := make(map[int]uint64)
	_, err := Run(Config{
		Graph: g,
		Factory: func(info NodeInfo, pred any) Machine {
			m := &slab[info.Index]
			m.quitRound = quit
			return m
		},
		MaxRounds: quit + 4,
		Stats: func(s RoundStats) {
			if s.Round == 2 || s.Round == quit-1 {
				var ms gort.MemStats
				gort.GC()
				gort.ReadMemStats(&ms)
				heapAt[s.Round] = ms.HeapAlloc
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	after, before := heapAt[quit-1], heapAt[2]
	const arenaBytes = n * (n - 1) * 24 // Msg is 24 bytes on 64-bit
	if after > before-arenaBytes/2 {
		t.Errorf("heap after quiet stretch = %d bytes, still within %d of post-burst %d; burst arena (%d bytes) not released",
			after, before-after, before, arenaBytes)
	}
}

func TestSlabGrowsBeyondShrinkFloor(t *testing.T) {
	var s msgSlab
	for i := 0; i < 3*slabShrinkWindow; i++ {
		n := 100 + i // slowly growing demand must always be satisfied exactly
		got := s.acquire(n)
		if len(got) != n {
			t.Fatalf("tick %d: acquire(%d) returned %d slots", i, n, len(got))
		}
	}
}
