package runtime_test

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// TestEngineTelemetryPhases checks that an attached Telemetry records one
// observation per round in each phase histogram, for the seq, pool, and
// sharded engines, and that attaching it changes no result.
func TestEngineTelemetryPhases(t *testing.T) {
	const n, rounds = 64, 5
	g := graph.Ring(n)
	for _, mode := range []struct {
		name     string
		parallel bool
		shards   int
	}{
		{"seq", false, 0},
		{"par", true, 0},
		{"shard4", false, 4},
	} {
		t.Run(mode.name, func(t *testing.T) {
			bare, err := runtime.Run(runtime.Config{
				Graph:    g,
				Factory:  ringBenchFactory(rounds, false),
				Parallel: mode.parallel,
				Shards:   mode.shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			tel := obs.NewTelemetry(nil)
			res, err := runtime.Run(runtime.Config{
				Graph:     g,
				Factory:   ringBenchFactory(rounds, false),
				Parallel:  mode.parallel,
				Shards:    mode.shards,
				Telemetry: tel,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Rounds != bare.Rounds || res.Messages != bare.Messages {
				t.Fatalf("telemetry changed the run: %d rounds/%d msgs vs %d/%d",
					res.Rounds, res.Messages, bare.Rounds, bare.Messages)
			}
			snap := tel.Registry().Snapshot()
			if len(snap.Histograms) != 4 {
				t.Fatalf("want 4 phase histograms, got %d", len(snap.Histograms))
			}
			shards := mode.shards
			if shards < 1 {
				shards = 1
			}
			seen := map[string]bool{}
			for _, h := range snap.Histograms {
				if h.Count != uint64(res.Rounds) {
					t.Errorf("%s: %d observations for %d rounds", h.Name, h.Count, res.Rounds)
				}
				seen[h.Name] = true
			}
			for _, phase := range []string{"send", "route", "receive", "round"} {
				want := `dgp_round_seconds{phase="` + phase + `",shards="` + itoa(shards) + `"}`
				if !seen[want] {
					t.Errorf("missing series %s (have %v)", want, seen)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestEngineTelemetryDeterminism: with telemetry attached, traces stay
// byte-identical to a bare run — the histograms decorate the registry only.
func TestEngineTelemetryDeterminism(t *testing.T) {
	const n, rounds = 64, 5
	g := graph.Ring(n)
	trace := func(tel *obs.Telemetry) []obs.Event {
		rec := obs.NewRecorder(0)
		if _, err := runtime.Run(runtime.Config{
			Graph:     g,
			Factory:   ringBenchFactory(rounds, false),
			Trace:     rec,
			Telemetry: tel,
		}); err != nil {
			t.Fatal(err)
		}
		return rec.Events()
	}
	bare := obs.Canonical(trace(nil))
	with := obs.Canonical(trace(obs.NewTelemetry(nil)))
	if i, desc, ok := obs.Diff(bare, with); !ok {
		t.Fatalf("telemetry perturbed the trace at event %d: %s", i, desc)
	}
}
